// Fault injection for the client/server wire.
//
// The middleware's whole premise is surviving an unreliable JDBC-like
// boundary, so the wire layer can do more than delay traffic: a
// FaultInjector decides, per wire operation, whether the call is
// dropped (the request or reply is lost), stalled (the call takes far
// longer than the latency model predicts), or partially delivered
// (the payload arrives truncated). Faults are deterministic given a
// seed and a call sequence — scripted traps ("fail the 3rd FETCH")
// are exactly reproducible regardless of timing, and probabilistic
// faults replay identically on a serial schedule.
package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Op identifies one kind of wire operation, the granularity at which
// faults are injected and retries are counted.
type Op uint8

const (
	// OpExec is a non-SELECT statement round trip.
	OpExec Op = iota
	// OpQuery is a cursor OPEN (plan + first round trip).
	OpQuery
	// OpFetch is one cursor FETCH round trip.
	OpFetch
	// OpLoad is one direct-path bulk load.
	OpLoad
	// OpInsert is one conventional-path INSERT round trip.
	OpInsert
	// OpStats is a catalog statistics request.
	OpStats
	// OpWAL is a storage-layer WAL record write. It is not a wire
	// operation: the shared schedule grammar also scripts disk chaos
	// (see internal/storage.CrashScript), and bench.SplitSchedule
	// routes wal@N/page@N entries to the storage layer so one seed
	// string drives wire and disk faults together.
	OpWAL
	// OpPage is a storage-layer data-page write during a checkpoint
	// (see OpWAL).
	OpPage
	numOps
)

var opNames = [numOps]string{"exec", "query", "fetch", "load", "insert", "stats", "wal", "page"}

// StorageOp reports whether the op addresses the storage layer rather
// than the wire (wal/page entries of a shared schedule).
func (o Op) StorageOp() bool { return o == OpWAL || o == OpPage }

// String returns the schedule-syntax name of the op.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// ParseOp parses a schedule-syntax op name.
func ParseOp(s string) (Op, error) {
	for i, n := range opNames {
		if n == s {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("wire: unknown op %q", s)
}

// FaultKind classifies one injected failure.
type FaultKind uint8

const (
	// KindNone means the call proceeds normally.
	KindNone FaultKind = iota
	// KindDrop loses the request: the server does no work and the
	// caller sees a connection error. Safe to retry verbatim.
	KindDrop
	// KindStall delays the call by the injector's StallTime before it
	// proceeds; with a per-op deadline configured, the caller observes
	// a timeout while the server-side effect still happens — the
	// classic ambiguous-failure case that sequence numbers resolve.
	KindStall
	// KindPartial performs the server-side work but corrupts or loses
	// the reply (truncated payload, lost acknowledgment). Retries must
	// be deduplicated by the server.
	KindPartial
	// KindTorn is a storage-layer fault: the physical write is cut in
	// half (a torn WAL record or page frame). Only meaningful on the
	// storage ops (wal@N=torn); the wire treats it like KindPartial.
	KindTorn
	numKinds
)

var kindNames = [numKinds]string{"none", "drop", "stall", "partial", "torn"}

// String returns the schedule-syntax name of the kind.
func (k FaultKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseFaultKind parses a schedule-syntax fault kind (excluding
// "none", which is not schedulable).
func ParseFaultKind(s string) (FaultKind, error) {
	for i := 1; i < len(kindNames); i++ {
		if kindNames[i] == s {
			return FaultKind(i), nil
		}
	}
	return 0, fmt.Errorf("wire: unknown fault kind %q", s)
}

// FaultError is the typed error surfaced for a dropped or partially
// delivered wire call. It is transient by construction: the
// connection itself survives, so retrying the same operation may
// succeed.
type FaultError struct {
	Op    Op
	Kind  FaultKind
	Index int64 // 1-based per-op call index the fault hit
}

// Error renders the fault.
func (e *FaultError) Error() string {
	return fmt.Sprintf("wire: injected %s fault on %s #%d", e.Kind, e.Op, e.Index)
}

// Retryable reports whether err is (or wraps) a transient wire fault
// that an idempotent caller may retry.
func Retryable(err error) bool {
	var fe *FaultError
	return errors.As(err, &fe)
}

// Trap scripts one exact failure: the Nth call of Op fails with Kind.
type Trap struct {
	Op   Op
	Nth  int64 // 1-based per-op call index
	Kind FaultKind
}

// ProbRule injects Kind on Op with probability P per call.
type ProbRule struct {
	Op   Op
	Kind FaultKind
	P    float64
}

// DefaultStallTime is the stall duration when a schedule does not set
// one. It is deliberately short: tests run thousands of faulted ops.
const DefaultStallTime = 10 * time.Millisecond

// FaultInjector decides, per wire call, whether to inject a fault. It
// is safe for concurrent use; per-op call indexes are maintained under
// a lock so scripted traps fire deterministically even when several
// cursors run in parallel. The zero value injects nothing.
type FaultInjector struct {
	// StallTime is how long a KindStall fault delays the call; 0 uses
	// DefaultStallTime.
	StallTime time.Duration
	// MaxFaults, when > 0, caps the total number of injected faults;
	// once reached the injector goes quiet. Chaos sweeps use this to
	// guarantee probabilistic schedules eventually let a query finish.
	MaxFaults int64
	// OnFault, when set, observes every injected fault (telemetry
	// export). Called under the injector lock; keep it cheap.
	OnFault func(Op, FaultKind)

	mu       sync.Mutex //tango:lock-order fault latch
	rng      *rand.Rand
	traps    []Trap
	probs    []ProbRule
	calls    [numOps]int64
	injected int64
	byKind   map[string]int64
}

// NewFaultInjector creates an injector with a deterministic seed.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{rng: rand.New(rand.NewSource(seed)), byKind: map[string]int64{}}
}

// AddTrap schedules the nth call of op to fail with kind.
func (f *FaultInjector) AddTrap(op Op, nth int64, kind FaultKind) *FaultInjector {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.traps = append(f.traps, Trap{Op: op, Nth: nth, Kind: kind})
	return f
}

// AddProb injects kind on op with probability p per call.
func (f *FaultInjector) AddProb(op Op, kind FaultKind, p float64) *FaultInjector {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.probs = append(f.probs, ProbRule{Op: op, Kind: kind, P: p})
	return f
}

// Fault is one injection decision.
type Fault struct {
	Kind  FaultKind
	Index int64 // 1-based per-op call index
	Stall time.Duration
}

// Error materializes the decision as a typed error.
func (d Fault) Error(op Op) error {
	return &FaultError{Op: op, Kind: d.Kind, Index: d.Index}
}

// Decide records one call of op and returns the fault to inject, if
// any (Kind == KindNone means the call proceeds cleanly).
func (f *FaultInjector) Decide(op Op) Fault {
	if f == nil {
		return Fault{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[op]++
	idx := f.calls[op]
	d := Fault{Kind: KindNone, Index: idx}
	if f.MaxFaults > 0 && f.injected >= f.MaxFaults {
		return d
	}
	for _, t := range f.traps {
		if t.Op == op && t.Nth == idx {
			d.Kind = t.Kind
			break
		}
	}
	if d.Kind == KindNone && f.rng != nil {
		for _, r := range f.probs {
			if r.Op == op && f.rng.Float64() < r.P {
				d.Kind = r.Kind
				break
			}
		}
	}
	if d.Kind == KindNone {
		return d
	}
	d.Stall = f.StallTime
	if d.Stall <= 0 {
		d.Stall = DefaultStallTime
	}
	f.injected++
	if f.byKind == nil {
		f.byKind = map[string]int64{}
	}
	f.byKind[op.String()+"/"+d.Kind.String()]++
	if f.OnFault != nil {
		f.OnFault(op, d.Kind)
	}
	return d
}

// Injected returns the total number of faults injected so far.
func (f *FaultInjector) Injected() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Counts returns per-"op/kind" injection counts (a copy).
func (f *FaultInjector) Counts() map[string]int64 {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int64, len(f.byKind))
	for k, v := range f.byKind {
		out[k] = v
	}
	return out
}

// Corrupt mangles a payload the way a partial delivery would: the
// tail is cut off (at least one byte, never producing a decodable
// batch of the same length). Empty payloads come back empty.
func Corrupt(payload []byte) []byte {
	if len(payload) == 0 {
		return payload
	}
	return payload[:len(payload)/2]
}

// --- fault schedules (textual encoding) ---

// Schedule is the declarative form of a FaultInjector: a seed, a
// stall time, scripted traps, and probabilistic rules. Its textual
// encoding is what `-chaos` on cmd/tango accepts and what the fuzz
// target exercises:
//
//	seed=7;stall=5ms;fetch@3=drop;load@1=partial;exec~stall=0.05;max=10
//
// Entries are ';'- or ','-separated. `op@n=kind` is a trap on the nth
// call of op; `op~kind=p` injects kind with probability p per call;
// `seed=`, `stall=`, and `max=` set the injector knobs.
type Schedule struct {
	Seed      int64
	Stall     time.Duration
	MaxFaults int64
	Traps     []Trap
	Probs     []ProbRule
}

// Injector instantiates the schedule.
func (s Schedule) Injector() *FaultInjector {
	f := NewFaultInjector(s.Seed)
	f.StallTime = s.Stall
	f.MaxFaults = s.MaxFaults
	for _, t := range s.Traps {
		f.AddTrap(t.Op, t.Nth, t.Kind)
	}
	for _, p := range s.Probs {
		f.AddProb(p.Op, p.Kind, p.P)
	}
	return f
}

// String renders the schedule in the ParseSchedule syntax. The
// rendering is canonical: entries are emitted in a stable order, so
// Parse→String→Parse is a fixed point.
func (s Schedule) String() string {
	var parts []string
	if s.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(s.Seed, 10))
	}
	if s.Stall != 0 {
		parts = append(parts, "stall="+s.Stall.String())
	}
	if s.MaxFaults != 0 {
		parts = append(parts, "max="+strconv.FormatInt(s.MaxFaults, 10))
	}
	traps := append([]Trap(nil), s.Traps...)
	sort.SliceStable(traps, func(i, j int) bool {
		if traps[i].Op != traps[j].Op {
			return traps[i].Op < traps[j].Op
		}
		return traps[i].Nth < traps[j].Nth
	})
	for _, t := range traps {
		parts = append(parts, fmt.Sprintf("%s@%d=%s", t.Op, t.Nth, t.Kind))
	}
	probs := append([]ProbRule(nil), s.Probs...)
	sort.SliceStable(probs, func(i, j int) bool {
		if probs[i].Op != probs[j].Op {
			return probs[i].Op < probs[j].Op
		}
		return probs[i].Kind < probs[j].Kind
	})
	for _, p := range probs {
		parts = append(parts, fmt.Sprintf("%s~%s=%s", p.Op, p.Kind,
			strconv.FormatFloat(p.P, 'g', -1, 64)))
	}
	return strings.Join(parts, ";")
}

// ParseSchedule decodes the textual fault-schedule syntax. An empty
// string is a valid empty schedule.
func ParseSchedule(src string) (Schedule, error) {
	var s Schedule
	for _, entry := range strings.FieldsFunc(src, func(r rune) bool { return r == ';' || r == ',' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		eq := strings.IndexByte(entry, '=')
		if eq < 0 {
			return Schedule{}, fmt.Errorf("wire: schedule entry %q: missing '='", entry)
		}
		key, val := strings.TrimSpace(entry[:eq]), strings.TrimSpace(entry[eq+1:])
		switch {
		case key == "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Schedule{}, fmt.Errorf("wire: schedule seed %q: %v", val, err)
			}
			s.Seed = n
		case key == "stall":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Schedule{}, fmt.Errorf("wire: schedule stall %q: bad duration", val)
			}
			s.Stall = d
		case key == "max":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return Schedule{}, fmt.Errorf("wire: schedule max %q: %v", val, err)
			}
			s.MaxFaults = n
		case strings.ContainsRune(key, '@'):
			at := strings.IndexByte(key, '@')
			op, err := ParseOp(strings.TrimSpace(key[:at]))
			if err != nil {
				return Schedule{}, err
			}
			nth, err := strconv.ParseInt(strings.TrimSpace(key[at+1:]), 10, 64)
			if err != nil || nth < 1 {
				return Schedule{}, fmt.Errorf("wire: schedule trap %q: bad call index", entry)
			}
			kind, err := ParseFaultKind(val)
			if err != nil {
				return Schedule{}, err
			}
			s.Traps = append(s.Traps, Trap{Op: op, Nth: nth, Kind: kind})
		case strings.ContainsRune(key, '~'):
			tilde := strings.IndexByte(key, '~')
			op, err := ParseOp(strings.TrimSpace(key[:tilde]))
			if err != nil {
				return Schedule{}, err
			}
			kind, err := ParseFaultKind(strings.TrimSpace(key[tilde+1:]))
			if err != nil {
				return Schedule{}, err
			}
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return Schedule{}, fmt.Errorf("wire: schedule probability %q: want [0,1]", entry)
			}
			s.Probs = append(s.Probs, ProbRule{Op: op, Kind: kind, P: p})
		default:
			return Schedule{}, fmt.Errorf("wire: schedule entry %q: unknown key", entry)
		}
	}
	return s, nil
}
