package xxl

// Parallel execution support: bounded worker pools for sort-run
// generation, a stable in-memory chunk merge, and the ParallelStats
// shape report that operators hand to the executor through their
// OnStats callbacks (so this package stays free of telemetry
// dependencies).
//
// Every parallel path in this package preserves the sequential
// operator's output order exactly — the optimizer relies on list
// equivalence for middleware-resident plan parts, so "same tuples,
// same order" is a hard contract, not best effort:
//
//   - sort runs are keyed by chunk index and merged with a heap that
//     breaks ties on run index, so the external sort stays stable no
//     matter which worker finishes first;
//   - the in-memory parallel sort splits the buffer into contiguous
//     chunks and merges them with the same tie-break;
//   - partitioned operators (see partition.go) split their sorted
//     inputs at key boundaries and concatenate partition results in
//     key order.

import (
	"container/heap"
	"os"
	"sync"

	"tango/internal/types"
)

// ParallelStats describes the parallel shape of one operator
// execution: how many workers ran, how many partitions (sort runs /
// chunks, aggregation group ranges, join key ranges) they processed,
// and the partition size spread for skew monitoring.
type ParallelStats struct {
	// Op is the operator label, e.g. "Sort^M" or "TAggr^M".
	Op string
	// Workers is the number of concurrent workers used (1 = sequential).
	Workers int
	// Partitions is the number of independent work units.
	Partitions int
	// Rows is the total rows across all partitions.
	Rows int64
	// MaxPart and MinPart are the largest and smallest partition sizes
	// in rows.
	MaxPart int
	MinPart int
}

// observe folds one partition of n rows into the stats.
func (p *ParallelStats) observe(n int) {
	p.Partitions++
	p.Rows += int64(n)
	if n > p.MaxPart {
		p.MaxPart = n
	}
	if p.Partitions == 1 || n < p.MinPart {
		p.MinPart = n
	}
}

// Skew is the largest partition relative to the mean partition size;
// 1 means perfectly balanced, higher means one partition dominates.
func (p ParallelStats) Skew() float64 {
	if p.Partitions == 0 || p.Rows == 0 {
		return 1
	}
	return float64(p.MaxPart) / (float64(p.Rows) / float64(p.Partitions))
}

// runGen generates sorted spill runs for the external sort, fanning
// chunk sort + spill out to at most par workers. The coordinator keeps
// reading input while workers sort and write, which overlaps input
// (wire) latency with sort compute. Files are recorded under their
// chunk index so the merge sees them in input order.
type runGen struct {
	s   *Sort
	par int
	sem chan struct{}
	wg  sync.WaitGroup

	// Held across run-file removal on abort paths: ordered, not a
	// latch.
	mu       sync.Mutex //tango:lock-order spill
	files    map[int]*os.File
	firstErr error
	spilled  int64 // bytes written to run files

	chunks int // dispatched chunk count; coordinator-only
	stats  ParallelStats
}

func newRunGen(s *Sort, par int) *runGen {
	g := &runGen{s: s, par: par, files: make(map[int]*os.File)}
	if par > 1 {
		g.sem = make(chan struct{}, par)
	}
	return g
}

// spill takes ownership of buf, sorts it and writes it as a run
// (synchronously when sequential, on a worker otherwise), and returns
// an empty buffer the coordinator can fill next. Call err() afterwards
// to learn about failures; spill itself never blocks on completion.
func (g *runGen) spill(buf []types.Tuple) []types.Tuple {
	idx := g.chunks
	g.chunks++
	g.stats.observe(len(buf))
	if g.par <= 1 {
		g.s.sortBuf(buf)
		f, n, err := writeRun(buf)
		g.record(idx, f, n, err)
		return buf[:0] // synchronous: safe to reuse
	}
	g.sem <- struct{}{} // bound in-flight chunks (and their memory)
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() { <-g.sem }()
		g.s.sortBuf(buf) // reads only immutable keys/descs
		f, n, err := writeRun(buf)
		g.record(idx, f, n, err)
	}()
	return make([]types.Tuple, 0, cap(buf))
}

func (g *runGen) record(idx int, f *os.File, n int64, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err != nil {
		if g.firstErr == nil {
			g.firstErr = err
		}
		return
	}
	g.files[idx] = f
	g.spilled += n
}

// spilledBytes reports the bytes written across all recorded runs.
func (g *runGen) spilledBytes() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.spilled
}

// err reports the first worker failure seen so far; the coordinator
// polls it to stop reading input early on a failed spill.
func (g *runGen) err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.firstErr
}

// finish waits for all workers and hands the run files over in chunk
// order. On any worker error the files are removed and the error
// returned. After finish the generator owns nothing.
func (g *runGen) finish() ([]*os.File, error) {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.firstErr != nil {
		for _, f := range g.files {
			removeRuns([]*os.File{f})
		}
		g.files = map[int]*os.File{}
		return nil, g.firstErr
	}
	files := make([]*os.File, 0, len(g.files))
	for i := 0; i < g.chunks; i++ {
		if f, ok := g.files[i]; ok {
			files = append(files, f)
		}
	}
	g.files = map[int]*os.File{}
	return files, nil
}

// abort waits for all workers and removes every run produced; used on
// Open error paths so a failed sort leaks no temp files.
func (g *runGen) abort() {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, f := range g.files {
		removeRuns([]*os.File{f})
	}
	g.files = map[int]*os.File{}
}

// mergeSortedChunks merges sorted contiguous chunks of one underlying
// buffer into a fresh slice. Ties break on chunk index, which — for
// chunks split from a single input in order — makes the merge stable.
func mergeSortedChunks(chunks [][]types.Tuple, keys []int, descs []bool) []types.Tuple {
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := make([]types.Tuple, 0, total)
	h := &mergeHeap{keys: keys, descs: descs}
	pos := make([]int, len(chunks))
	for i, c := range chunks {
		if len(c) > 0 {
			h.items = append(h.items, mergeItem{tuple: c[0], src: i})
			pos[i] = 1
		}
	}
	heap.Init(h)
	for h.Len() > 0 {
		top := heap.Pop(h).(mergeItem)
		out = append(out, top.tuple)
		src := top.src
		if p := pos[src]; p < len(chunks[src]) {
			pos[src]++
			heap.Push(h, mergeItem{tuple: chunks[src][p], src: src})
		}
	}
	return out
}

// minParallelSort is the smallest in-memory buffer worth splitting
// across workers; below it the merge overhead dominates.
const minParallelSort = 4096

// sortParallel sorts buf with up to par workers: contiguous chunks are
// sorted concurrently and merged stably. Sequential (par <= 1) or
// small inputs use plain sortBuf. The returned slice holds the sorted
// tuples (it may be buf itself or a fresh merge output).
func (s *Sort) sortParallel(buf []types.Tuple, par int, stats *ParallelStats) []types.Tuple {
	if par <= 1 || len(buf) < minParallelSort {
		s.sortBuf(buf)
		stats.observe(len(buf))
		return buf
	}
	size := (len(buf) + par - 1) / par
	chunks := make([][]types.Tuple, 0, par)
	for lo := 0; lo < len(buf); lo += size {
		hi := lo + size
		if hi > len(buf) {
			hi = len(buf)
		}
		chunks = append(chunks, buf[lo:hi])
		stats.observe(hi - lo)
	}
	var wg sync.WaitGroup
	for _, c := range chunks {
		wg.Add(1)
		go func(c []types.Tuple) {
			defer wg.Done()
			s.sortBuf(c)
		}(c)
	}
	wg.Wait()
	return mergeSortedChunks(chunks, s.keys, s.descs)
}
