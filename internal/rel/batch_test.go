package rel

import (
	"testing"

	"tango/internal/types"
)

func batchTestRel(n int) *Relation {
	r := New(types.NewSchema(
		types.Column{Name: "A", Kind: types.KindInt},
		types.Column{Name: "B", Kind: types.KindInt},
	))
	for i := 0; i < n; i++ {
		r.Append(types.Tuple{types.Int(int64(i)), types.Int(int64(i * 2))})
	}
	return r
}

// TestSliceIterNextBatch exercises the in-memory batch fast path,
// including the short final batch and the end-of-stream zero.
func TestSliceIterNextBatch(t *testing.T) {
	r := batchTestRel(10)
	it := r.Iter()
	b, ok := it.(BatchIterator)
	if !ok {
		t.Fatal("relation iterator does not implement BatchIterator")
	}
	if _, err := b.NextBatch(make([]types.Tuple, 1)); err == nil {
		t.Fatal("NextBatch before Open should fail")
	}
	if err := b.Open(); err != nil {
		t.Fatal(err)
	}
	dst := make([]types.Tuple, 4)
	var got []types.Tuple
	for {
		n, err := b.NextBatch(dst)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		got = append(got, dst[:n]...)
	}
	if len(got) != 10 {
		t.Fatalf("got %d tuples, want 10", len(got))
	}
	for i, tu := range got {
		if tu[0].AsInt() != int64(i) {
			t.Fatalf("row %d out of order: %v", i, tu)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// reusingIter returns the same scratch tuple on every Next — the
// pathological producer the fallback adapter must defend against.
type reusingIter struct {
	n, i    int
	scratch types.Tuple
}

func (it *reusingIter) Schema() types.Schema {
	return types.NewSchema(types.Column{Name: "A", Kind: types.KindInt})
}
func (it *reusingIter) Open() error  { it.i = 0; it.scratch = make(types.Tuple, 1); return nil }
func (it *reusingIter) Close() error { return nil }
func (it *reusingIter) Next() (types.Tuple, bool, error) {
	if it.i >= it.n {
		return nil, false, nil
	}
	it.scratch[0] = types.Int(int64(it.i))
	it.i++
	return it.scratch, true, nil
}

// TestAsBatchClonesFallback proves the generic adapter yields a valid
// batch even when the producer reuses its tuple buffer.
func TestAsBatchClonesFallback(t *testing.T) {
	in := &reusingIter{n: 6}
	b := AsBatch(in)
	if err := b.Open(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	dst := make([]types.Tuple, 6)
	n, err := b.NextBatch(dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("n=%d, want 6", n)
	}
	for i := 0; i < n; i++ {
		if dst[i][0].AsInt() != int64(i) {
			t.Fatalf("batch row %d = %v: fallback did not clone", i, dst[i])
		}
	}
	if n, err := b.NextBatch(dst); err != nil || n != 0 {
		t.Fatalf("expected clean end of stream, got n=%d err=%v", n, err)
	}
}

// TestAsBatchPassthrough asserts AsBatch does not re-wrap a native
// batch producer.
func TestAsBatchPassthrough(t *testing.T) {
	it := batchTestRel(3).Iter()
	if AsBatch(it) != it.(BatchIterator) {
		t.Fatal("AsBatch re-wrapped a native BatchIterator")
	}
}

// TestNextBatchMixedWithNext checks the two protocols advance the same
// stream.
func TestNextBatchMixedWithNext(t *testing.T) {
	it := batchTestRel(5).Iter()
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	tu, ok, err := it.Next()
	if err != nil || !ok || tu[0].AsInt() != 0 {
		t.Fatalf("Next: %v %v %v", tu, ok, err)
	}
	dst := make([]types.Tuple, 2)
	n, err := NextBatch(it, dst)
	if err != nil || n != 2 || dst[0][0].AsInt() != 1 || dst[1][0].AsInt() != 2 {
		t.Fatalf("NextBatch after Next: n=%d err=%v dst=%v", n, err, dst[:n])
	}
	tu, ok, err = it.Next()
	if err != nil || !ok || tu[0].AsInt() != 3 {
		t.Fatalf("Next after NextBatch: %v %v %v", tu, ok, err)
	}
}

// BenchmarkBatchVsTuple quantifies the per-tuple interface-call saving
// of the batch protocol over an in-memory source.
func BenchmarkBatchVsTuple(b *testing.B) {
	r := batchTestRel(1 << 16)
	for _, mode := range []string{"tuple", "batch"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				it := r.Iter()
				if err := it.Open(); err != nil {
					b.Fatal(err)
				}
				rows := 0
				if mode == "tuple" {
					for {
						_, ok, err := it.Next()
						if err != nil {
							b.Fatal(err)
						}
						if !ok {
							break
						}
						rows++
					}
				} else {
					dst := make([]types.Tuple, DefaultBatchSize)
					bi := it.(BatchIterator)
					for {
						n, err := bi.NextBatch(dst)
						if err != nil {
							b.Fatal(err)
						}
						if n == 0 {
							break
						}
						rows += n
					}
				}
				if rows != 1<<16 {
					b.Fatalf("rows=%d", rows)
				}
				if err := it.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
