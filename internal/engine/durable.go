// Durable-engine support: catalog persistence and the restart path.
//
// A DB opened with OpenAt sits on a storage.FileDisk. The catalog is
// serialized to JSON and stored under the "catalog" key of the store's
// durable metadata — the storage layer stays ignorant of catalog
// formats, the engine stays ignorant of WAL formats. Every catalog
// mutation and every write commits through commitDurable: flush the
// buffer pool (logging page images) and Sync the store (the WAL
// group-commit barrier). Bulk loads are bracketed by
// BeginLoad/CommitLoad so a crash mid-load rolls the table back to its
// pre-load state — T^D transfers are atomic. On restart, OpenAt
// recovers the store, decodes the catalog, reattaches heap files, and
// rebuilds the in-memory B+-tree indexes by scanning the recovered
// heaps.
//
//tango:durability
package engine

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"tango/internal/btree"
	"tango/internal/storage"
	"tango/internal/types"
)

// catalogEntry is the persisted form of one Table.
type catalogEntry struct {
	Name    string
	Schema  types.Schema
	File    storage.FileID
	Indexes []string // indexed column keys (upper-case)
}

// catalogDoc is the persisted catalog.
type catalogDoc struct {
	Tables []catalogEntry
}

// OpenAt opens (creating if needed) a durable database in dir:
// storage recovery (WAL redo, checksum verification, load rollback)
// followed by catalog bootstrap and index rebuild. The returned stats
// describe what recovery did; the server exports them as counters and
// a startup-trace span.
func OpenAt(dir string, cfg Config) (*DB, *storage.RecoveryStats, error) {
	if cfg.BufferPoolPages <= 0 {
		cfg.BufferPoolPages = 2048
	}
	fd, stats, err := storage.Recover(dir)
	if err != nil {
		return nil, stats, err
	}
	if cfg.CheckpointBytes != 0 {
		fd.CheckpointBytes = cfg.CheckpointBytes
	}
	db := &DB{
		disk: fd,
		fd:   fd,
		pool: storage.NewBufferPool(fd, cfg.BufferPoolPages),
	}
	db.cat.Store(&catalogVersion{seq: 1, tables: map[string]*Table{}})
	db.pins.init()
	if err := db.bootstrapCatalog(); err != nil {
		return nil, stats, err
	}
	return db, stats, nil
}

// FileDisk returns the durable store backing the DB, or nil for an
// in-memory instance. Harnesses use it to arm crash scripts.
func (db *DB) FileDisk() *storage.FileDisk { return db.fd }

// Durable reports whether the DB survives restarts.
func (db *DB) Durable() bool { return db.fd != nil }

// Close makes the database durable and releases it: flush the pool,
// checkpoint, close the store. In-memory instances close trivially.
// The writer lock is held so no commit is caught mid-publish.
func (db *DB) Close() error {
	if db.fd == nil {
		return nil
	}
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	return db.fd.Close()
}

// Checkpoint forces an incremental checkpoint of the durable store.
// Snapshot readers are not blocked: they hold no lock the checkpoint
// needs, and the pool flush copies page images under pins.
func (db *DB) Checkpoint() error {
	if db.fd == nil {
		return nil
	}
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	return db.fd.Checkpoint()
}

// bootstrapCatalog decodes the persisted catalog and reattaches every
// surviving table: heap files by ID, indexes rebuilt by heap scan.
// Tables whose heap file did not survive recovery (a creation whose
// commit never became durable) are skipped.
func (db *DB) bootstrapCatalog() error {
	doc, ok := db.fd.Meta("catalog")
	if !ok {
		return nil
	}
	var cat catalogDoc
	if err := json.Unmarshal([]byte(doc), &cat); err != nil {
		return fmt.Errorf("engine: corrupt persisted catalog: %w", err)
	}
	tables := map[string]*Table{}
	for _, e := range cat.Tables {
		if !db.fd.HasFile(e.File) {
			continue
		}
		t := &Table{
			Name:    e.Name,
			Schema:  e.Schema,
			Heap:    storage.OpenHeapFile(db.pool, e.File),
			Indexes: map[string]*btree.Tree{},
		}
		for _, col := range e.Indexes {
			idx, err := buildIndexTree(t.Heap, t.Schema, col)
			if err != nil {
				return fmt.Errorf("engine: rebuild index %s(%s): %w", e.Name, col, err)
			}
			t.Indexes[col] = idx
		}
		t.pages, t.tailSlots = t.Heap.Bound()
		tables[key(e.Name)] = t
	}
	db.cat.Store(&catalogVersion{seq: 1, tables: tables})
	return nil
}

// encodeCatalog serializes a table set deterministically (tables
// sorted by key).
func encodeCatalog(tables map[string]*Table) (string, error) {
	keys := make([]string, 0, len(tables))
	for k := range tables {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	doc := catalogDoc{Tables: make([]catalogEntry, 0, len(keys))}
	for _, k := range keys {
		t := tables[k]
		idx := make([]string, 0, len(t.Indexes))
		for col := range t.Indexes {
			idx = append(idx, col)
		}
		sort.Strings(idx)
		doc.Tables = append(doc.Tables, catalogEntry{
			Name:    t.Name,
			Schema:  t.Schema,
			File:    t.Heap.File(),
			Indexes: idx,
		})
	}
	buf, err := json.Marshal(&doc)
	if err != nil {
		return "", err
	}
	return string(buf), nil
}

// saveCatalog stages the serialized next catalog into the store's
// durable metadata (it becomes durable at the next Commit). Caller
// holds wmu.
func (db *DB) saveCatalog(tables map[string]*Table) error {
	if db.fd == nil {
		return nil
	}
	doc, err := encodeCatalog(tables)
	if err != nil {
		return fmt.Errorf("engine: encode catalog: %w", err)
	}
	return db.fd.PutMeta("catalog", doc)
}

// stageDurableLocked is the first half of the engine's durability
// barrier, run under wmu: every dirty page is flushed, logging its
// WAL image into the group-commit buffer. No-op on an in-memory DB.
func (db *DB) stageDurableLocked() error {
	if db.fd == nil {
		return nil
	}
	// The barrier lives in awaitDurable (FileDisk.Commit), which every
	// writer calls after publishing with wmu released — splitting the
	// two halves is what lets N sessions share one fsync.
	//lint:ignore walorder barrier is FileDisk.Commit in awaitDurable, after the publish
	return db.pool.FlushAll()
}

// awaitDurable is the second half, run after the publish with wmu
// released: wait for the staged records to reach the fsynced log. N
// sessions awaiting together share fsyncs (storage group commit).
// The version is visible to new snapshots from the publish; a crash
// between publish and fsync may roll the commit back, which the
// session observes as this call's error.
func (db *DB) awaitDurable() error {
	if db.fd == nil {
		return nil
	}
	start := time.Now()
	err := db.fd.Commit()
	db.commitWaitNS.Add(time.Since(start).Nanoseconds())
	db.commits.Add(1)
	return err
}
