// Durable-engine support: catalog persistence and the restart path.
//
// A DB opened with OpenAt sits on a storage.FileDisk. The catalog is
// serialized to JSON and stored under the "catalog" key of the store's
// durable metadata — the storage layer stays ignorant of catalog
// formats, the engine stays ignorant of WAL formats. Every catalog
// mutation and every write commits through commitDurable: flush the
// buffer pool (logging page images) and Sync the store (the WAL
// group-commit barrier). Bulk loads are bracketed by
// BeginLoad/CommitLoad so a crash mid-load rolls the table back to its
// pre-load state — T^D transfers are atomic. On restart, OpenAt
// recovers the store, decodes the catalog, reattaches heap files, and
// rebuilds the in-memory B+-tree indexes by scanning the recovered
// heaps.
//
//tango:durability
package engine

import (
	"encoding/json"
	"fmt"
	"sort"

	"tango/internal/btree"
	"tango/internal/storage"
	"tango/internal/types"
)

// catalogEntry is the persisted form of one Table.
type catalogEntry struct {
	Name    string
	Schema  types.Schema
	File    storage.FileID
	Indexes []string // indexed column keys (upper-case)
}

// catalogDoc is the persisted catalog.
type catalogDoc struct {
	Tables []catalogEntry
}

// OpenAt opens (creating if needed) a durable database in dir:
// storage recovery (WAL redo, checksum verification, load rollback)
// followed by catalog bootstrap and index rebuild. The returned stats
// describe what recovery did; the server exports them as counters and
// a startup-trace span.
func OpenAt(dir string, cfg Config) (*DB, *storage.RecoveryStats, error) {
	if cfg.BufferPoolPages <= 0 {
		cfg.BufferPoolPages = 2048
	}
	fd, stats, err := storage.Recover(dir)
	if err != nil {
		return nil, stats, err
	}
	if cfg.CheckpointBytes != 0 {
		fd.CheckpointBytes = cfg.CheckpointBytes
	}
	db := &DB{
		disk:   fd,
		fd:     fd,
		pool:   storage.NewBufferPool(fd, cfg.BufferPoolPages),
		tables: map[string]*Table{},
	}
	if err := db.bootstrapCatalog(); err != nil {
		return nil, stats, err
	}
	return db, stats, nil
}

// FileDisk returns the durable store backing the DB, or nil for an
// in-memory instance. Harnesses use it to arm crash scripts.
func (db *DB) FileDisk() *storage.FileDisk { return db.fd }

// Durable reports whether the DB survives restarts.
func (db *DB) Durable() bool { return db.fd != nil }

// Close makes the database durable and releases it: flush the pool,
// checkpoint, close the store. In-memory instances close trivially.
func (db *DB) Close() error {
	if db.fd == nil {
		return nil
	}
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	return db.fd.Close()
}

// Checkpoint forces an incremental checkpoint of the durable store.
func (db *DB) Checkpoint() error {
	if db.fd == nil {
		return nil
	}
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	return db.fd.Checkpoint()
}

// bootstrapCatalog decodes the persisted catalog and reattaches every
// surviving table: heap files by ID, indexes rebuilt by heap scan.
// Tables whose heap file did not survive recovery (a creation whose
// commit never became durable) are skipped.
func (db *DB) bootstrapCatalog() error {
	doc, ok := db.fd.Meta("catalog")
	if !ok {
		return nil
	}
	var cat catalogDoc
	if err := json.Unmarshal([]byte(doc), &cat); err != nil {
		return fmt.Errorf("engine: corrupt persisted catalog: %w", err)
	}
	for _, e := range cat.Tables {
		if !db.fd.HasFile(e.File) {
			continue
		}
		t := &Table{
			Name:    e.Name,
			Schema:  e.Schema,
			Heap:    storage.OpenHeapFile(db.pool, e.File),
			Indexes: map[string]*btree.Tree{},
		}
		db.tables[key(e.Name)] = t
		for _, col := range e.Indexes {
			if err := db.buildIndex(t, col); err != nil {
				return fmt.Errorf("engine: rebuild index %s(%s): %w", e.Name, col, err)
			}
		}
	}
	return nil
}

// encodeCatalogLocked serializes the catalog deterministically
// (tables sorted by key). Caller holds db.mu.
func (db *DB) encodeCatalogLocked() (string, error) {
	keys := make([]string, 0, len(db.tables))
	for k := range db.tables {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	doc := catalogDoc{Tables: make([]catalogEntry, 0, len(keys))}
	for _, k := range keys {
		t := db.tables[k]
		idx := make([]string, 0, len(t.Indexes))
		for col := range t.Indexes {
			idx = append(idx, col)
		}
		sort.Strings(idx)
		doc.Tables = append(doc.Tables, catalogEntry{
			Name:    t.Name,
			Schema:  t.Schema,
			File:    t.Heap.File(),
			Indexes: idx,
		})
	}
	buf, err := json.Marshal(&doc)
	if err != nil {
		return "", err
	}
	return string(buf), nil
}

// saveCatalogLocked stages the serialized catalog into the store's
// durable metadata (it becomes durable at the next Sync). Caller holds
// db.mu.
func (db *DB) saveCatalogLocked() error {
	if db.fd == nil {
		return nil
	}
	doc, err := db.encodeCatalogLocked()
	if err != nil {
		return fmt.Errorf("engine: encode catalog: %w", err)
	}
	return db.fd.PutMeta("catalog", doc)
}

// commitDurable is the engine's durability barrier: every dirty page
// is flushed (logging its WAL image) and the store is synced. No-op on
// an in-memory DB.
func (db *DB) commitDurable() error {
	if db.fd == nil {
		return nil
	}
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	return db.fd.Sync()
}
