package engine

import (
	"errors"
	"fmt"
	"testing"

	"tango/internal/storage"
	"tango/internal/types"
)

// failureDB builds a table large enough that scans must go back to the
// disk past the buffer pool.
func failureDB(t *testing.T) *DB {
	t.Helper()
	db := Open(Config{BufferPoolPages: 2})
	if _, err := db.Exec("CREATE TABLE T (K INTEGER, V VARCHAR(200))"); err != nil {
		t.Fatal(err)
	}
	long := make([]byte, 180)
	for i := range long {
		long[i] = 'x'
	}
	for i := 0; i < 500; i++ {
		if err := db.Insert("T", types.Tuple{types.Int(int64(i)), types.Str(string(long))}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestScanSurfacesInjectedReadError(t *testing.T) {
	db := failureDB(t)
	db.Disk().FailReadsAfter(3)
	_, err := db.QueryAll("SELECT K FROM T")
	if err == nil {
		t.Fatal("scan over failing disk should error")
	}
	if !errors.Is(err, storage.ErrInjectedRead) {
		t.Errorf("error should wrap the injected failure: %v", err)
	}
	// The disk recovers; the next query works (failure is one-shot).
	out, err := db.QueryAll("SELECT COUNT(*) FROM T")
	if err != nil {
		t.Fatalf("post-failure query: %v", err)
	}
	if out.Tuples[0][0].AsInt() != 500 {
		t.Errorf("rows after recovery: %v", out)
	}
}

func TestJoinSurfacesInjectedReadError(t *testing.T) {
	db := failureDB(t)
	if _, err := db.Exec("CREATE TABLE S (K INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO S VALUES (1),(2)"); err != nil {
		t.Fatal(err)
	}
	db.Disk().FailReadsAfter(5)
	if _, err := db.QueryAll("SELECT T.K FROM T, S WHERE T.K = S.K"); err == nil {
		t.Fatal("join over failing disk should error")
	}
}

func TestInsertSurfacesInjectedWriteError(t *testing.T) {
	db := Open(Config{BufferPoolPages: 1})
	if _, err := db.Exec("CREATE TABLE W (K INTEGER, V VARCHAR(200))"); err != nil {
		t.Fatal(err)
	}
	db.Disk().FailWritesAfter(2)
	var sawErr bool
	long := make([]byte, 190)
	for i := range long {
		long[i] = 'y'
	}
	// With a one-page pool, filling pages forces evictions and disk
	// writes; the injected failure must surface as an insert error.
	for i := 0; i < 400; i++ {
		if err := db.Insert("W", types.Tuple{types.Int(int64(i)), types.Str(string(long))}); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("no insert error despite injected write failure")
	}
}

func TestBulkLoadSurfacesInjectedWriteError(t *testing.T) {
	db := Open(Config{BufferPoolPages: 1})
	if _, err := db.Exec("CREATE TABLE B (K INTEGER, V VARCHAR(200))"); err != nil {
		t.Fatal(err)
	}
	rows := make([]types.Tuple, 500)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i)), types.Str(fmt.Sprintf("%0180d", i))}
	}
	db.Disk().FailWritesAfter(2)
	if err := db.BulkLoad("B", rows); err == nil {
		t.Fatal("bulk load over failing disk should error")
	}
}
