# TANGO temporal middleware — build / verify targets.

GO ?= go

# Fuzz smoke budget per target (ci runs each fuzzer this long).
FUZZTIME ?= 10s

.PHONY: all build vet lint test race fuzz ci clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the project-specific analyzers (iterator lifecycle,
# dropped errors, mixed atomic/plain field access, hand-written
# operator schemas) over the whole tree. Exit status 1 means findings.
lint:
	$(GO) run ./cmd/tangolint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz smoke-runs both parser fuzz targets for FUZZTIME each, seeded
# from the evaluation workload. Any crasher is written to the
# package's testdata/fuzz corpus and replays under plain `go test`.
fuzz:
	$(GO) test ./internal/sqlparser/ -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/tsql/ -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME)

# ci is the full verification gate: compile everything, vet, run the
# project analyzers, smoke the fuzz targets, and run the test suite
# under the race detector (tests also planck-check every plan).
ci: build vet lint fuzz race

clean:
	$(GO) clean ./...
