package tango

import (
	"strings"
	"sync"
	"testing"

	"tango/internal/client"
	"tango/internal/engine"
	"tango/internal/rel"
	"tango/internal/server"
	"tango/internal/storage"
	"tango/internal/telemetry"
	"tango/internal/tsql"
	"tango/internal/types"
	"tango/internal/wire"
)

// openMWMetrics builds a fully wired middleware (registry through
// every layer, IOProbe at the embedded engine) over a POSITION table
// with the given row count.
func openMWMetrics(t *testing.T, rows int) (*Middleware, *telemetry.Registry) {
	t.Helper()
	db := engine.Open(engine.Config{})
	srv := server.New(db, wire.Latency{})
	reg := telemetry.NewRegistry()
	srv.RegisterMetrics(reg)
	mw := Open(srv, Options{HistogramBuckets: 8, Metrics: reg})
	mw.IOProbe = func() (storage.IOStats, storage.PoolStats) {
		return db.Disk().Snapshot(), db.Pool().Snapshot()
	}
	if _, err := mw.Conn.Exec("CREATE TABLE POSITION (PosID INTEGER, EmpName VARCHAR(40), PayRate FLOAT, T1 INTEGER, T2 INTEGER)"); err != nil {
		t.Fatal(err)
	}
	tuples := make([]types.Tuple, rows)
	for i := range tuples {
		start := int64(i % 50)
		tuples[i] = types.Tuple{
			types.Int(int64(i%7 + 1)),
			types.Str("emp"),
			types.Float(10),
			types.Int(start),
			types.Int(start + 5 + int64(i%11)),
		}
	}
	if _, err := mw.Conn.Load("POSITION", tuples); err != nil {
		t.Fatal(err)
	}
	return mw, reg
}

// TestExecutorExecStats: the instrumented executor must produce an
// operator tree mirroring the plan, with row counts that agree with
// the materialized result and Volcano Next-call accounting.
func TestExecutorExecStats(t *testing.T) {
	conn, ex := setup(t)
	_ = conn
	ex.Analyze = true
	out, err := ex.Run(paperPlanAllMW())
	if err != nil {
		t.Fatal(err)
	}
	st := ex.ExecStats()
	if st == nil {
		t.Fatal("ExecStats nil with Analyze set")
	}
	if st.Op != "Sort^M" {
		t.Errorf("root op = %q, want Sort^M", st.Op)
	}
	if st.Rows != int64(out.Cardinality()) {
		t.Errorf("root rows = %d, result = %d", st.Rows, out.Cardinality())
	}
	// The executor drains the root a batch at a time: one Next-equivalent
	// per full batch plus the EOS probe.
	wantNexts := (st.Rows+rel.DefaultBatchSize-1)/rel.DefaultBatchSize + 1
	if st.Nexts != wantNexts {
		t.Errorf("root nexts = %d, want %d (batch accounting for %d rows)", st.Nexts, wantNexts, st.Rows)
	}
	seen := map[string]*telemetry.OpStats{}
	st.Walk(func(s *telemetry.OpStats) { seen[s.Op] = s })
	for _, op := range []string{"TAggr^M", "TJoin^M", "TM"} {
		if seen[op] == nil {
			t.Fatalf("operator %s missing from stats tree:\n%s", op, st.Format())
		}
	}
	if seen["TAggr^M"].Bytes <= 0 {
		t.Errorf("TAggr^M bytes not counted")
	}
	// Every instrumented operator carries its plan node for the
	// adaptive loop.
	st.Walk(func(s *telemetry.OpStats) {
		if s.Node == nil {
			t.Errorf("operator %s has no plan node", s.Op)
		}
	})
	// Disabled instrumentation stays free.
	ex2 := &Executor{Conn: conn, Cat: ex.Cat}
	if _, err := ex2.Run(paperPlanAllDBMS()); err != nil {
		t.Fatal(err)
	}
	if ex2.ExecStats() != nil {
		t.Error("ExecStats non-nil without Analyze/Metrics")
	}
}

// TestMiddlewareTraceSpans: Run must leave a query → optimize/build/
// execute span tree with optimizer attrs and transfer child spans.
func TestMiddlewareTraceSpans(t *testing.T) {
	mw, _ := openMWMetrics(t, 200)
	plan, err := tsql.Parse("VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION GROUP BY PosID ORDER BY PosID", mw.Cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mw.Run(plan); err != nil {
		t.Fatal(err)
	}
	tr := mw.LastTrace()
	if tr == nil {
		t.Fatal("no trace after Run")
	}
	names := map[string]bool{}
	for _, c := range tr.Children() {
		names[c.Name] = true
	}
	for _, want := range []string{"optimize", "build", "execute"} {
		if !names[want] {
			t.Errorf("span %q missing; trace:\n%s", want, tr.Render())
		}
	}
	rendered := tr.Render()
	for _, want := range []string{"classes=", "rows=", "transfer", "pool_hits="} {
		if !strings.Contains(rendered, want) {
			t.Errorf("trace lacks %q:\n%s", want, rendered)
		}
	}
	if mw.LastExecStats() == nil {
		t.Error("no exec stats after instrumented Run")
	}
}

// TestAdaptiveLoopFromMeasuredOperators: executing with telemetry must
// move the middleware algorithm factors (not just the transfer
// factors) and record Q-error drift for TAggr and TJoin.
func TestAdaptiveLoopFromMeasuredOperators(t *testing.T) {
	mw, reg := openMWMetrics(t, 400)
	before := mw.Model.F
	if _, err := mw.Execute(paperPlanAllMW()); err != nil {
		t.Fatal(err)
	}
	after := mw.Model.F
	if after.TAggrM1 == before.TAggrM1 && after.TAggrM2 == before.TAggrM2 {
		t.Error("TAggr^M factors did not adapt from measured timings")
	}
	if after.JoinM == before.JoinM {
		t.Error("Join^M factor did not adapt from measured timings")
	}
	if after.TM == before.TM {
		t.Error("transfer factor did not adapt")
	}
	for _, op := range []string{"TAggr^M", "TJoin^M"} {
		h := reg.Histogram("tango_qerror", telemetry.Labels{"op": op}, telemetry.QErrorBuckets)
		if h.Count() == 0 {
			t.Errorf("no Q-error recorded for %s", op)
		}
		if q := reg.Gauge("tango_qerror_last", telemetry.Labels{"op": op}).Value(); q < 1 {
			t.Errorf("Q-error for %s = %g, want >= 1", op, q)
		}
	}
	// Per-operator series flushed under engine="mw".
	l := telemetry.Labels{"engine": "mw", "op": "TAggr^M"}
	if n := reg.Counter("tango_operator_rows_total", l).Value(); n <= 0 {
		t.Errorf("TAggr^M rows not exported: %d", n)
	}
}

// TestExplainAnalyzeReport: the report must combine span tree,
// measured operator tree, and a result summary with consistent rows.
func TestExplainAnalyzeReport(t *testing.T) {
	mw, _ := openMWMetrics(t, 200)
	plan, err := tsql.Parse("VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION GROUP BY PosID ORDER BY PosID", mw.Cat)
	if err != nil {
		t.Fatal(err)
	}
	report, out, err := mw.ExplainAnalyze(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"estimated cost", "classes", "optimize", "execute",
		"operators:", "TAggr^M", "nexts=", "self=",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report lacks %q:\n%s", want, report)
		}
	}
	st := mw.LastExecStats()
	if st == nil {
		t.Fatal("no exec stats after EXPLAIN ANALYZE")
	}
	if st.Rows != int64(out.Cardinality()) {
		t.Errorf("stats rows %d != result rows %d", st.Rows, out.Cardinality())
	}
	// The optimizer search counters were exported.
	if n := mw.Metrics.Counter("tango_optimizer_plans_costed_total", nil).Value(); n <= 0 {
		t.Errorf("plans costed not exported: %d", n)
	}
}

// TestConcurrentQueriesWithTelemetry exercises the whole telemetry
// path under concurrency (run with -race): one server and one shared
// registry, many connections running instrumented split plans at once.
func TestConcurrentQueriesWithTelemetry(t *testing.T) {
	db := engine.Open(engine.Config{})
	srv := server.New(db, wire.Latency{})
	reg := telemetry.NewRegistry()
	srv.RegisterMetrics(reg)
	boot := client.Connect(srv)
	if _, err := boot.Exec("CREATE TABLE POSITION (PosID INTEGER, EmpName VARCHAR(40), PayRate FLOAT, T1 INTEGER, T2 INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := boot.Exec("INSERT INTO POSITION VALUES (1,'Tom',12.0,2,20),(1,'Jane',9.0,5,25),(2,'Tom',12.0,5,10)"); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const runsPerWorker = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn := client.Connect(srv)
			conn.Metrics = reg
			ex := &Executor{Conn: conn, Cat: ConnCatalog{Conn: conn}, Metrics: reg}
			for i := 0; i < runsPerWorker; i++ {
				out, err := ex.Run(paperPlanAllMW().Clone())
				if err != nil {
					errs <- err
					return
				}
				if out.Cardinality() != len(figure3b) {
					errs <- errRows(out.Cardinality())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := int64(workers * runsPerWorker * len(figure3b))
	l := telemetry.Labels{"engine": "mw", "op": "Sort^M"}
	if n := reg.Counter("tango_operator_rows_total", l).Value(); n != want {
		t.Errorf("Sort^M rows total = %d, want %d", n, want)
	}
	if reg.NumSeries() < 20 {
		t.Errorf("only %d series exported, want >= 20", reg.NumSeries())
	}
}

type errRows int

func (e errRows) Error() string { return "unexpected result cardinality" }
