package analysis

// The summary cache: per-package analysis results and effect
// summaries, keyed by a content hash over the tool version, the
// analyzer set, the package's own sources, and the hashes of its
// in-run dependencies. A warm run deserializes dependency summaries
// instead of recomputing them, so the interprocedural layer costs
// nothing on packages that did not change — and a cached package's
// findings are byte-identical to a cold run's, because everything a
// finding can depend on is folded into the key.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
)

// RunOptions configures a cached, parallel analysis run.
type RunOptions struct {
	CacheDir string // "" disables the cache
	Parallel int    // max packages analyzed concurrently; <= 1 is serial
	Version  string // tool version folded into cache keys
}

// RunStats reports what a cached run did.
type RunStats struct {
	Packages int // packages analyzed
	Cached   int // of which were served from the cache
}

// cacheEntry is one package's serialized analysis result.
type cacheEntry struct {
	Package   string                   `json:"package"`
	Diags     []Diagnostic             `json:"diags,omitempty"`
	Summaries map[string]*FuncEffects  `json:"summaries,omitempty"`
	Classes   map[string]LockClassDecl `json:"classes,omitempty"`
	Edges     []OrderEdge              `json:"edges,omitempty"`
}

// RunCached is Run with a summary cache and per-package parallelism.
// Packages must arrive in dependency order (Load guarantees it).
// Summaries and lock declarations are installed serially in that
// order — from the cache when the package's hash matches, recomputed
// otherwise — and then the analyzers run in parallel over the
// packages that missed, against the now-complete index.
func RunCached(pkgs []*Package, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, RunStats, error) {
	stats := RunStats{Packages: len(pkgs)}
	ix := NewIndex()
	base := baseHash(analyzers, opts.Version)

	type job struct {
		i     int
		pkg   *Package
		facts *pkgFacts
		hash  string
	}
	results := make([][]Diagnostic, len(pkgs))
	hashes := map[string]string{}
	var jobs []job

	for i, pkg := range pkgs {
		h, err := pkgHash(base, pkg, hashes)
		if err != nil {
			return nil, stats, err
		}
		hashes[pkg.Path] = h
		if entry := readEntry(opts.CacheDir, h, pkg.Path); entry != nil {
			ix.addPackageDecls(entry.Classes, entry.Edges)
			ix.addEffects(entry.Summaries)
			results[i] = entry.Diags
			stats.Cached++
			continue
		}
		facts := buildPkgFacts(pkg, ix)
		computeSummaries(facts, ix)
		jobs = append(jobs, job{i: i, pkg: pkg, facts: facts, hash: h})
	}

	par := opts.Parallel
	if par < 1 {
		par = 1
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, j := range jobs {
		j := j
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			diags, err := runAnalyzersOn(j.pkg, j.facts, analyzers, ix)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			results[j.i] = diags
			writeEntry(opts.CacheDir, j.hash, &cacheEntry{
				Package:   j.pkg.Path,
				Diags:     diags,
				Summaries: packageSummaries(j.facts, ix),
				Classes:   j.facts.classes,
				Edges:     j.facts.edges,
			})
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, stats, firstErr
	}

	var out []Diagnostic
	for _, diags := range results {
		out = append(out, diags...)
	}
	sortDiags(out)
	return out, stats, nil
}

// packageSummaries extracts the package's own function summaries from
// the index for serialization.
func packageSummaries(facts *pkgFacts, ix *Index) map[string]*FuncEffects {
	out := map[string]*FuncEffects{}
	for key := range facts.funcs {
		if eff := ix.effects(key); eff != nil {
			out[key] = eff
		}
	}
	return out
}

// baseHash folds everything run-global into the key: tool version,
// toolchain version, and the analyzer set.
func baseHash(analyzers []*Analyzer, version string) []byte {
	h := sha256.New()
	fmt.Fprintln(h, "tangolint-cache-v1")
	fmt.Fprintln(h, version)
	fmt.Fprintln(h, runtime.Version())
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintln(h, n)
	}
	return h.Sum(nil)
}

// pkgHash hashes one package: the base hash, the package path, every
// source file's contents, and the hashes of its in-run dependencies
// (computed first thanks to the topological package order). Out-of-run
// dependencies (the standard library) ride on the toolchain version in
// the base hash.
func pkgHash(base []byte, pkg *Package, depHashes map[string]string) (string, error) {
	h := sha256.New()
	h.Write(base)
	fmt.Fprintln(h, pkg.Path)
	for _, file := range pkg.GoFiles {
		data, err := os.ReadFile(file)
		if err != nil {
			return "", fmt.Errorf("analysis: hashing %s: %w", file, err)
		}
		fmt.Fprintln(h, file, len(data))
		h.Write(data)
	}
	deps := append([]string(nil), pkg.Imports...)
	sort.Strings(deps)
	for _, dep := range deps {
		if dh, ok := depHashes[dep]; ok {
			fmt.Fprintln(h, dep, dh)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// readEntry loads a cache entry; any failure (missing, corrupt, path
// mismatch) is a miss.
func readEntry(dir, hash, pkgPath string) *cacheEntry {
	if dir == "" {
		return nil
	}
	data, err := os.ReadFile(filepath.Join(dir, hash+".json"))
	if err != nil {
		return nil
	}
	entry := new(cacheEntry)
	if err := json.Unmarshal(data, entry); err != nil || entry.Package != pkgPath {
		return nil
	}
	return entry
}

// writeEntry persists a cache entry best-effort: a full disk or
// read-only checkout degrades to an uncached run, never a failure.
func writeEntry(dir, hash string, entry *cacheEntry) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(entry)
	if err != nil {
		return
	}
	tmp := filepath.Join(dir, hash+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(dir, hash+".json"))
}
