// Package rel defines the iterator (cursor) contract shared by the
// middleware execution engine and the DBMS engine, plus materialized
// relations and the two equality notions from the paper: list equality
// (same tuples in the same order) and multiset equality (same tuples
// with the same multiplicities, order ignored).
package rel

import (
	"fmt"
	"sort"
	"strings"

	"tango/internal/types"
)

// Iterator is the pipelined cursor interface (the paper's XXL result
// sets with init()/getNext()). Open must be called before Next; Next
// returns ok=false at end of stream; Close releases resources and is
// idempotent.
type Iterator interface {
	// Schema describes the tuples the iterator produces. It must be
	// valid before Open.
	Schema() types.Schema
	// Open prepares the iterator (and, transitively, its inputs).
	Open() error
	// Next returns the next tuple. The returned tuple may be reused by
	// subsequent calls; callers that retain it must Clone it.
	Next() (types.Tuple, bool, error)
	// Close releases resources.
	Close() error
}

// Relation is a fully materialized relation: a schema plus an ordered
// list of tuples. Relations are *lists* — duplicates and order are
// significant, matching the paper's algebra.
type Relation struct {
	Schema types.Schema
	Tuples []types.Tuple
}

// New creates an empty relation with the given schema.
func New(schema types.Schema) *Relation {
	return &Relation{Schema: schema}
}

// Append adds a tuple (not copied).
func (r *Relation) Append(t types.Tuple) { r.Tuples = append(r.Tuples, t) }

// Cardinality returns the number of tuples.
func (r *Relation) Cardinality() int { return len(r.Tuples) }

// ByteSize returns the total approximate byte size of all tuples.
func (r *Relation) ByteSize() int {
	n := 0
	for _, t := range r.Tuples {
		n += t.ByteSize()
	}
	return n
}

// AvgTupleSize returns the average tuple size in bytes (0 if empty).
func (r *Relation) AvgTupleSize() float64 {
	if len(r.Tuples) == 0 {
		return 0
	}
	return float64(r.ByteSize()) / float64(len(r.Tuples))
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := New(r.Schema)
	c.Tuples = make([]types.Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		c.Tuples[i] = t.Clone()
	}
	return c
}

// SortBy sorts the relation in place by the given column names
// (ascending). Sorting is stable.
func (r *Relation) SortBy(cols ...string) {
	keys := make([]int, len(cols))
	for i, c := range cols {
		keys[i] = r.Schema.MustIndex(c)
	}
	sort.SliceStable(r.Tuples, func(i, j int) bool {
		return types.CompareTuples(r.Tuples[i], r.Tuples[j], keys, nil) < 0
	})
}

// IsSortedBy reports whether the relation is ordered by the given
// column indexes.
func (r *Relation) IsSortedBy(keys []int) bool {
	for i := 1; i < len(r.Tuples); i++ {
		if types.CompareTuples(r.Tuples[i-1], r.Tuples[i], keys, nil) > 0 {
			return false
		}
	}
	return true
}

// String renders the relation as a small table for debugging.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Schema.Names(), " | "))
	b.WriteByte('\n')
	for _, t := range r.Tuples {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = v.String()
		}
		b.WriteString(strings.Join(parts, " | "))
		b.WriteByte('\n')
	}
	return b.String()
}

// Iter returns an iterator over the relation's tuples.
func (r *Relation) Iter() Iterator { return &sliceIter{rel: r, pos: -1} }

type sliceIter struct {
	rel *Relation
	pos int
}

func (it *sliceIter) Schema() types.Schema { return it.rel.Schema }
func (it *sliceIter) Open() error          { it.pos = 0; return nil }
func (it *sliceIter) Close() error         { return nil }

func (it *sliceIter) Next() (types.Tuple, bool, error) {
	if it.pos < 0 {
		return nil, false, fmt.Errorf("rel: iterator not opened")
	}
	if it.pos >= len(it.rel.Tuples) {
		return nil, false, nil
	}
	t := it.rel.Tuples[it.pos]
	it.pos++
	return t, true, nil
}

// Drain materializes an iterator into a relation, opening and closing
// it. Tuples are cloned so the result owns its memory. Batch-native
// iterators are drained a batch at a time.
func Drain(it Iterator) (*Relation, error) {
	out := New(it.Schema())
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	if b, ok := it.(BatchIterator); ok {
		dst := make([]types.Tuple, DefaultBatchSize)
		for {
			n, err := b.NextBatch(dst)
			if err != nil {
				return nil, err
			}
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				out.Append(dst[i].Clone())
			}
		}
	} else {
		for {
			t, ok, err := it.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			out.Append(t.Clone())
		}
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// tupleKey renders a tuple into a canonical comparable string; values
// that compare equal produce equal keys (e.g. Int(2) vs Float(2)).
func tupleKey(t types.Tuple) string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		if v.IsNull() {
			b.WriteString("\x00N")
			continue
		}
		switch v.Kind() {
		case types.KindString:
			b.WriteString("s:")
			b.WriteString(v.AsString())
		default:
			fmt.Fprintf(&b, "n:%v", v.AsFloat())
		}
	}
	return b.String()
}

// EqualAsLists reports list equality: same length and pairwise equal
// tuples in order.
func EqualAsLists(a, b *Relation) bool {
	if len(a.Tuples) != len(b.Tuples) {
		return false
	}
	for i := range a.Tuples {
		if len(a.Tuples[i]) != len(b.Tuples[i]) {
			return false
		}
		for j := range a.Tuples[i] {
			if !types.Equal(a.Tuples[i][j], b.Tuples[i][j]) {
				return false
			}
		}
	}
	return true
}

// EqualAsMultisets reports multiset equality: same tuples with the same
// multiplicities, order ignored.
func EqualAsMultisets(a, b *Relation) bool {
	if len(a.Tuples) != len(b.Tuples) {
		return false
	}
	counts := make(map[string]int, len(a.Tuples))
	for _, t := range a.Tuples {
		counts[tupleKey(t)]++
	}
	for _, t := range b.Tuples {
		k := tupleKey(t)
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

// DistinctCount returns the number of distinct values in the given
// column.
func (r *Relation) DistinctCount(col string) int {
	idx := r.Schema.MustIndex(col)
	seen := make(map[string]bool)
	for _, t := range r.Tuples {
		seen[tupleKey(types.Tuple{t[idx]})] = true
	}
	return len(seen)
}
