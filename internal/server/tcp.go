// Real TCP transport for the server façade: a net.Listener accept loop
// speaking the framed binary protocol of internal/wire. Many sessions
// multiplex over one connection (the frame header carries the session
// ID); requests of one session execute strictly in arrival order on a
// per-session worker, so the cursor replay and load-dedup idempotency
// protocols behave over a socket exactly as they do in process.
//
// Sessions survive their connection: when a connection dies (chaos
// proxy sever, client crash-and-redial), its sessions detach and stay
// alive for a resume grace period. A client that reconnects proves
// ownership with the session's resume token (MsgResumeSession) and
// continues — open cursors, temp tables, sequence numbers intact — so
// the client's retry machinery rides out severed connections. Sessions
// not resumed in time are garbage-collected: cursors closed, temp
// tables dropped, nothing leaked.
//
// Shutdown is a graceful drain: stop accepting, reject new statements
// with typed errors (ErrShutdown / wire.CodeShutdown), give in-flight
// statements a bounded window to finish, then cancel the rest via the
// server's base context and collect every session.
package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"tango/internal/wire"
)

// TCPConfig tunes the TCP front end. Zero values get defaults.
type TCPConfig struct {
	// Admission, when enabled, is installed on the server.
	Admission AdmissionConfig
	// ReadTimeout is the per-connection frame-read deadline: a
	// connection idle past it is cut (its sessions detach and await
	// resumption). Default 2m.
	ReadTimeout time.Duration
	// WriteTimeout bounds one reply write. Default 30s.
	WriteTimeout time.Duration
	// ResumeGrace is how long a detached session awaits resumption
	// before it is garbage-collected. Default 10s.
	ResumeGrace time.Duration
	// DrainTimeout bounds the graceful-drain wait for in-flight
	// statements on Close. Default 5s.
	DrainTimeout time.Duration
}

func (c TCPConfig) readTimeout() time.Duration {
	if c.ReadTimeout > 0 {
		return c.ReadTimeout
	}
	return 2 * time.Minute
}

func (c TCPConfig) writeTimeout() time.Duration {
	if c.WriteTimeout > 0 {
		return c.WriteTimeout
	}
	return 30 * time.Second
}

func (c TCPConfig) resumeGrace() time.Duration {
	if c.ResumeGrace > 0 {
		return c.ResumeGrace
	}
	return 10 * time.Second
}

func (c TCPConfig) drainTimeout() time.Duration {
	if c.DrainTimeout > 0 {
		return c.DrainTimeout
	}
	return 5 * time.Second
}

// TCPServer serves a Server over real TCP.
type TCPServer struct {
	srv    *Server
	lis    net.Listener
	cfg    TCPConfig
	ctx    context.Context // canceled when the drain window closes
	cancel context.CancelFunc

	mu       sync.Mutex //tango:lock-order tcpsrv latch
	conns    map[net.Conn]struct{}
	sessions map[uint32]*remoteSession
	tokens   *rand.Rand
	closed   bool

	wg sync.WaitGroup
}

// ListenAndServe starts serving srv on addr ("127.0.0.1:0" picks a
// free port; see Addr). The admission configuration, when enabled, is
// installed on the server, and the server's simulated delays are bound
// to the drain context so shutdown cuts them short.
func ListenAndServe(srv *Server, addr string, cfg TCPConfig) (*TCPServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	t := &TCPServer{
		srv:      srv,
		lis:      lis,
		cfg:      cfg,
		ctx:      ctx,
		cancel:   cancel,
		conns:    map[net.Conn]struct{}{},
		sessions: map[uint32]*remoteSession{},
		tokens:   rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	if cfg.Admission.Enabled() {
		srv.SetAdmission(cfg.Admission)
	}
	srv.SetBaseContext(ctx)
	t.wg.Add(2)
	go t.acceptLoop()
	go t.reaper()
	return t, nil
}

// Addr returns the bound listen address.
func (t *TCPServer) Addr() string { return t.lis.Addr().String() }

// Server returns the served façade.
func (t *TCPServer) Server() *Server { return t.srv }

// LiveConns reports the number of open TCP connections.
func (t *TCPServer) LiveConns() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.conns)
}

// LiveRemoteSessions reports the number of live (attached or detached)
// TCP sessions.
func (t *TCPServer) LiveRemoteSessions() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}

// Close gracefully drains and shuts the transport down: stop
// accepting, reject new statements typed, wait DrainTimeout for
// in-flight statements, cancel stragglers, sever connections, collect
// every session (cursors closed, temp tables dropped), and join every
// goroutine.
func (t *TCPServer) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()

	err := t.lis.Close()
	t.srv.StartDrain()
	deadline := time.Now().Add(t.cfg.drainTimeout())
	for t.srv.InFlight() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	t.cancel()

	t.mu.Lock()
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	sessions := make([]*remoteSession, 0, len(t.sessions))
	for _, rs := range t.sessions {
		sessions = append(sessions, rs)
	}
	t.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	for _, rs := range sessions {
		if rs.close() {
			t.srv.CountDrained()
		}
	}
	t.wg.Wait()
	t.srv.SetBaseContext(nil)
	return err
}

func (t *TCPServer) acceptLoop() {
	defer t.wg.Done()
	for {
		nc, err := t.lis.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = nc.Close()
			return
		}
		t.conns[nc] = struct{}{}
		t.mu.Unlock()
		t.srv.CountConnection()
		t.wg.Add(1)
		go t.serveConn(nc)
	}
}

// reaper garbage-collects sessions detached longer than the resume
// grace: their client is gone for good, so their cursors, snapshots,
// and temp tables are reclaimed.
func (t *TCPServer) reaper() {
	defer t.wg.Done()
	tick := t.cfg.resumeGrace() / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-t.ctx.Done():
			return
		case <-ticker.C:
		}
		cutoff := time.Now().Add(-t.cfg.resumeGrace())
		t.mu.Lock()
		var expired []*remoteSession
		for _, rs := range t.sessions {
			rs.mu.Lock()
			if rs.owner == nil && !rs.detachedAt.IsZero() && rs.detachedAt.Before(cutoff) {
				expired = append(expired, rs)
			}
			rs.mu.Unlock()
		}
		t.mu.Unlock()
		for _, rs := range expired {
			rs.close()
		}
	}
}

// tcpConn is the per-connection server state.
type tcpConn struct {
	t  *TCPServer
	nc net.Conn

	// wmu serializes reply writes from the session workers. Held across
	// socket writes, so it is an ordered lock class, not a latch.
	wmu  sync.Mutex //tango:lock-order tcpwrite
	wbuf []byte

	// smu guards the sessions attached to this connection.
	smu      sync.Mutex //tango:lock-order tcpconn latch
	attached map[uint32]*remoteSession
}

// write encodes and sends one reply frame under the write deadline.
func (c *tcpConn) write(f wire.Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = wire.AppendFrame(c.wbuf[:0], f)
	_ = c.nc.SetWriteDeadline(time.Now().Add(c.t.cfg.writeTimeout()))
	_, err := c.nc.Write(c.wbuf)
	return err
}

// reply sends a MsgOK with the given payload.
func (c *tcpConn) reply(req wire.Frame, payload []byte) {
	_ = c.write(wire.Frame{Type: wire.MsgOK, Session: req.Session, Request: req.Request, Payload: payload})
}

// replyErr sends a MsgErr carrying err as a typed RemoteError.
func (c *tcpConn) replyErr(req wire.Frame, err error) {
	_ = c.write(wire.Frame{
		Type:    wire.MsgErr,
		Session: req.Session,
		Request: req.Request,
		Payload: wire.AppendRemoteError(nil, toRemoteError(err)),
	})
}

// toRemoteError classifies err into the wire's typed error codes so
// the client transport can reconstruct the same error types the
// in-process path surfaces.
func toRemoteError(err error) wire.RemoteError {
	var ov *ErrOverloaded
	if errors.As(err, &ov) {
		return wire.RemoteError{
			Code:    wire.CodeOverloaded,
			Msg:     ov.Reason,
			Backoff: ov.Backoff,
			Queue:   int64(ov.Queue),
		}
	}
	var fe *wire.FaultError
	if errors.As(err, &fe) {
		return wire.RemoteError{Code: wire.CodeFault, Msg: err.Error(), Op: fe.Op, Kind: fe.Kind, Index: fe.Index}
	}
	if errors.Is(err, ErrShutdown) || errors.Is(err, context.Canceled) {
		return wire.RemoteError{Code: wire.CodeShutdown, Msg: err.Error()}
	}
	return wire.RemoteError{Code: wire.CodeGeneric, Msg: err.Error()}
}

// serveConn runs one connection: handshake, then the frame dispatch
// loop. Session-scoped requests are handed to the session's worker so
// each session executes strictly in order while sessions proceed
// concurrently; a full worker queue blocks the reader — backpressure
// through the TCP window, exactly like a real pipe.
func (t *TCPServer) serveConn(nc net.Conn) {
	defer t.wg.Done()
	c := &tcpConn{t: t, nc: nc, attached: map[uint32]*remoteSession{}}
	defer func() {
		_ = nc.Close()
		t.mu.Lock()
		delete(t.conns, nc)
		t.mu.Unlock()
		c.detachAll()
	}()

	// Handshake: the first frame must be a well-formed Hello.
	_ = nc.SetReadDeadline(time.Now().Add(t.cfg.readTimeout()))
	hello, _, err := wire.ReadFrame(nc, nil)
	if err != nil || hello.Type != wire.MsgHello {
		return
	}
	if _, err := wire.CheckHello(hello.Payload); err != nil {
		c.replyErr(hello, err)
		return
	}
	if err := c.write(wire.Frame{Type: wire.MsgHelloOK, Request: hello.Request}); err != nil {
		return
	}

	for {
		_ = nc.SetReadDeadline(time.Now().Add(t.cfg.readTimeout()))
		// A fresh buffer per frame: the payload's ownership passes to the
		// session worker executing the request.
		f, _, err := wire.ReadFrame(nc, nil)
		if err != nil {
			return
		}
		switch f.Type {
		case wire.MsgOpenSession:
			t.openSession(c, f)
		case wire.MsgResumeSession:
			t.resumeSession(c, f)
		default:
			c.smu.Lock()
			rs := c.attached[f.Session]
			c.smu.Unlock()
			if rs == nil {
				c.replyErr(f, fmt.Errorf("server: unknown session %d on this connection", f.Session))
				continue
			}
			if !rs.enqueue(tcpJob{f: f, c: c}) {
				c.replyErr(f, ErrShutdown)
			}
		}
	}
}

// detachAll detaches every session attached to a dying connection;
// they await resumption (or the reaper).
func (c *tcpConn) detachAll() {
	c.smu.Lock()
	attached := c.attached
	c.attached = map[uint32]*remoteSession{}
	c.smu.Unlock()
	for _, rs := range attached {
		rs.mu.Lock()
		if rs.owner == c {
			rs.owner = nil
			rs.detachedAt = time.Now()
		}
		rs.mu.Unlock()
	}
}

// openSession creates a session, attaches it to the connection, and
// replies with its wire ID and resume token.
func (t *TCPServer) openSession(c *tcpConn, f wire.Frame) {
	if t.srv.Draining() {
		c.replyErr(f, ErrShutdown)
		return
	}
	se := t.srv.NewSession()
	rs := &remoteSession{
		t:       t,
		se:      se,
		id:      uint32(se.ID()),
		work:    make(chan tcpJob, 32),
		done:    make(chan struct{}),
		cursors: map[uint64]*cursorSlot{},
	}
	t.mu.Lock()
	rs.token = t.tokens.Uint64()
	t.sessions[rs.id] = rs
	t.mu.Unlock()
	rs.attach(c)
	t.srv.CountSessionAccepted()
	t.wg.Add(1)
	go rs.run()

	payload := binary.AppendUvarint(nil, uint64(rs.id))
	payload = binary.BigEndian.AppendUint64(payload, rs.token)
	c.reply(f, payload)
}

// resumeSession re-attaches a detached session to a new connection
// after the client proved ownership with the resume token.
func (t *TCPServer) resumeSession(c *tcpConn, f wire.Frame) {
	id64, k := binary.Uvarint(f.Payload)
	if k <= 0 || len(f.Payload[k:]) != 8 {
		c.replyErr(f, fmt.Errorf("server: malformed resume payload"))
		return
	}
	token := binary.BigEndian.Uint64(f.Payload[k:])
	t.mu.Lock()
	rs := t.sessions[uint32(id64)]
	t.mu.Unlock()
	if rs == nil {
		c.replyErr(f, fmt.Errorf("server: session %d expired (resume grace elapsed)", id64))
		return
	}
	rs.mu.Lock()
	ok := rs.token == token && !rs.closed
	old := rs.owner
	rs.mu.Unlock()
	if !ok {
		c.replyErr(f, fmt.Errorf("server: session %d resume rejected", id64))
		return
	}
	if old != nil && old != c {
		// The client redialed while the old connection is still up
		// (half-open pipe): the new connection wins.
		old.smu.Lock()
		delete(old.attached, rs.id)
		old.smu.Unlock()
	}
	rs.attach(c)
	t.srv.CountSessionAccepted()
	c.reply(f, nil)
}

// tcpJob is one session-scoped request awaiting its worker.
type tcpJob struct {
	f wire.Frame
	c *tcpConn
}

// cursorSlot is a server cursor held by a remote session, with the
// size of its last reply (the replayable batch) charged against the
// session's memory budget.
type cursorSlot struct {
	cur *Cursor
	mem int64
}

// remoteSession is the TCP-side state of one multiplexed session.
type remoteSession struct {
	t     *TCPServer
	se    *Session
	id    uint32
	token uint64
	work  chan tcpJob
	done  chan struct{}

	mu         sync.Mutex //tango:lock-order remotesess latch
	owner      *tcpConn
	detachedAt time.Time
	cursors    map[uint64]*cursorSlot
	nextCursor uint64
	closed     bool
}

// attach binds the session to a connection.
func (rs *remoteSession) attach(c *tcpConn) {
	rs.mu.Lock()
	rs.owner = c
	rs.detachedAt = time.Time{}
	rs.mu.Unlock()
	c.smu.Lock()
	c.attached[rs.id] = rs
	c.smu.Unlock()
}

// enqueue hands a request to the worker, blocking for backpressure; it
// reports false when the session (or server) is shutting down.
func (rs *remoteSession) enqueue(j tcpJob) bool {
	select {
	case rs.work <- j:
		return true
	case <-rs.done:
		return false
	case <-rs.t.ctx.Done():
		return false
	}
}

// close tears the session down: cursors closed, engine session closed
// (temp tables garbage-collected), worker released. It reports whether
// this call did the teardown (false when already closed).
func (rs *remoteSession) close() bool {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return false
	}
	rs.closed = true
	cursors := rs.cursors
	rs.cursors = map[uint64]*cursorSlot{}
	owner := rs.owner
	rs.owner = nil
	rs.mu.Unlock()

	for _, slot := range cursors {
		_ = slot.cur.Close()
	}
	_, _ = rs.se.Close()
	close(rs.done)

	rs.t.mu.Lock()
	delete(rs.t.sessions, rs.id)
	rs.t.mu.Unlock()
	if owner != nil {
		owner.smu.Lock()
		delete(owner.attached, rs.id)
		owner.smu.Unlock()
	}
	return true
}

// run is the session worker: requests execute strictly in arrival
// order, so sequence-numbered replay and load dedup see the same
// serial stream they see in process.
func (rs *remoteSession) run() {
	defer rs.t.wg.Done()
	for {
		select {
		case <-rs.done:
			return
		case <-rs.t.ctx.Done():
			return
		case j := <-rs.work:
			rs.handle(j)
			if j.f.Type == wire.MsgCloseSession {
				return
			}
		}
	}
}

// mem returns the session's resident bytes: the replayable batches of
// its open cursors.
func (rs *remoteSession) memLocked() int64 {
	var m int64
	for _, slot := range rs.cursors {
		m += slot.mem
	}
	return m
}

// overBudget enforces the per-session memory budget: the request's
// payload plus the session's resident cursor batches must fit.
func (rs *remoteSession) overBudget(extra int64) bool {
	budget := rs.t.srv.Admission().SessionBudget
	if budget <= 0 {
		return false
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.memLocked()+extra > budget
}

// handle executes one request and writes its reply.
func (rs *remoteSession) handle(j tcpJob) {
	f := j.f
	if _, gated := wire.MsgOp(f.Type); gated {
		if rs.overBudget(int64(len(f.Payload))) {
			j.c.replyErr(f, rs.t.srv.shedBudget(rs.t.srv.QueueDepth()))
			return
		}
	}
	srv := rs.t.srv
	switch f.Type {
	case wire.MsgCloseSession:
		collected, err := rs.closeRequested()
		if err != nil {
			j.c.replyErr(f, err)
			return
		}
		j.c.reply(f, binary.AppendUvarint(nil, uint64(collected)))

	case wire.MsgExec:
		hdr, rest, err := wire.CutBytes(f.Payload)
		if err != nil {
			j.c.replyErr(f, err)
			return
		}
		n, err := srv.ExecHdr(hdr, string(rest))
		if err != nil {
			j.c.replyErr(f, err)
			return
		}
		j.c.reply(f, binary.AppendVarint(nil, n))

	case wire.MsgQuery:
		hdr, rest, err := wire.CutBytes(f.Payload)
		if err != nil {
			j.c.replyErr(f, err)
			return
		}
		prefetch, k := binary.Uvarint(rest)
		if k <= 0 {
			j.c.replyErr(f, fmt.Errorf("server: malformed query payload"))
			return
		}
		cur, err := srv.QueryHdr(hdr, string(rest[k:]), int(prefetch))
		if err != nil {
			j.c.replyErr(f, err)
			return
		}
		rs.mu.Lock()
		if rs.closed {
			rs.mu.Unlock()
			_ = cur.Close()
			j.c.replyErr(f, ErrShutdown)
			return
		}
		rs.nextCursor++
		id := rs.nextCursor
		rs.cursors[id] = &cursorSlot{cur: cur}
		rs.mu.Unlock()
		payload := binary.AppendUvarint(nil, id)
		payload = wire.EncodeSchema(payload, cur.Schema())
		j.c.reply(f, payload)

	case wire.MsgFetch:
		hdr, rest, err := wire.CutBytes(f.Payload)
		if err != nil {
			j.c.replyErr(f, err)
			return
		}
		id, k := binary.Uvarint(rest)
		if k <= 0 {
			j.c.replyErr(f, fmt.Errorf("server: malformed fetch payload"))
			return
		}
		seq, k2 := binary.Varint(rest[k:])
		if k2 <= 0 {
			j.c.replyErr(f, fmt.Errorf("server: malformed fetch payload"))
			return
		}
		rs.mu.Lock()
		slot := rs.cursors[id]
		rs.mu.Unlock()
		if slot == nil {
			j.c.replyErr(f, fmt.Errorf("server: unknown cursor %d", id))
			return
		}
		batch, err := slot.cur.FetchBatchSeqHdr(hdr, seq, nil)
		if err != nil {
			j.c.replyErr(f, err)
			return
		}
		if batch == nil {
			j.c.reply(f, []byte{0}) // end of stream
			return
		}
		rs.mu.Lock()
		slot.mem = int64(len(batch))
		rs.mu.Unlock()
		j.c.reply(f, append([]byte{1}, batch...))

	case wire.MsgCloseCursor:
		id, k := binary.Uvarint(f.Payload)
		if k <= 0 {
			j.c.replyErr(f, fmt.Errorf("server: malformed close-cursor payload"))
			return
		}
		rs.mu.Lock()
		slot := rs.cursors[id]
		delete(rs.cursors, id)
		rs.mu.Unlock()
		if slot != nil {
			_ = slot.cur.Close()
		}
		// Closing an unknown cursor is idempotent: a retried close after
		// a lost acknowledgment must succeed.
		j.c.reply(f, nil)

	case wire.MsgLoad:
		hdr, rest, err := wire.CutBytes(f.Payload)
		if err != nil {
			j.c.replyErr(f, err)
			return
		}
		seq, k := binary.Varint(rest)
		if k <= 0 {
			j.c.replyErr(f, fmt.Errorf("server: malformed load payload"))
			return
		}
		table, batch, err := wire.CutString(rest[k:])
		if err != nil {
			j.c.replyErr(f, err)
			return
		}
		n, err := srv.LoadSeqHdr(hdr, table, batch, seq)
		if err != nil {
			j.c.replyErr(f, err)
			return
		}
		j.c.reply(f, binary.AppendVarint(nil, n))

	case wire.MsgInsert:
		hdr, rest, err := wire.CutBytes(f.Payload)
		if err != nil {
			j.c.replyErr(f, err)
			return
		}
		table, batch, err := wire.CutString(rest)
		if err != nil {
			j.c.replyErr(f, err)
			return
		}
		n, err := srv.InsertRowsHdr(hdr, table, batch)
		if err != nil {
			j.c.replyErr(f, err)
			return
		}
		j.c.reply(f, binary.AppendVarint(nil, n))

	case wire.MsgStats:
		hdr, rest, err := wire.CutBytes(f.Payload)
		if err != nil {
			j.c.replyErr(f, err)
			return
		}
		buckets, k := binary.Varint(rest)
		if k <= 0 {
			j.c.replyErr(f, fmt.Errorf("server: malformed stats payload"))
			return
		}
		st, err := srv.TableStatsHdr(hdr, string(rest[k:]), int(buckets))
		if err != nil {
			j.c.replyErr(f, err)
			return
		}
		j.c.reply(f, wire.AppendTableStats(nil, st))

	case wire.MsgSchema:
		schema, err := srv.TableSchema(string(f.Payload))
		if err != nil {
			j.c.replyErr(f, err)
			return
		}
		j.c.reply(f, wire.EncodeSchema(nil, schema))

	case wire.MsgRegisterTemp:
		rs.se.RegisterTemp(string(f.Payload))
		j.c.reply(f, nil)

	case wire.MsgForgetTemp:
		rs.se.ForgetTemp(string(f.Payload))
		j.c.reply(f, nil)

	default:
		j.c.replyErr(f, fmt.Errorf("server: unexpected message %s", wire.MsgName(f.Type)))
	}
}

// closeRequested handles a client-initiated MsgCloseSession: the
// engine session's temp-table GC count rides the reply.
func (rs *remoteSession) closeRequested() (int, error) {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return 0, nil
	}
	cursors := rs.cursors
	rs.cursors = map[uint64]*cursorSlot{}
	rs.mu.Unlock()
	for _, slot := range cursors {
		_ = slot.cur.Close()
	}
	collected, err := rs.se.Close()
	// Tear the rest down (worker exit, registry removal) but keep the
	// already-computed GC count.
	rs.mu.Lock()
	alreadyClosed := rs.closed
	rs.closed = true
	owner := rs.owner
	rs.owner = nil
	rs.mu.Unlock()
	if !alreadyClosed {
		close(rs.done)
		rs.t.mu.Lock()
		delete(rs.t.sessions, rs.id)
		rs.t.mu.Unlock()
		if owner != nil {
			owner.smu.Lock()
			delete(owner.attached, rs.id)
			owner.smu.Unlock()
		}
	}
	if err != nil && !errors.Is(err, io.EOF) {
		return collected, err
	}
	return collected, nil
}
