package types

// Period is a closed-open time period [Start, End) at day granularity,
// the representation the paper assumes throughout.
type Period struct {
	Start int64 // T1, inclusive
	End   int64 // T2, exclusive
}

// Valid reports whether the period is well-formed (Start < End).
func (p Period) Valid() bool { return p.Start < p.End }

// Duration returns the number of days covered.
func (p Period) Duration() int64 {
	if !p.Valid() {
		return 0
	}
	return p.End - p.Start
}

// Overlaps reports whether p and q share at least one day. With the
// closed-open convention this is p.Start < q.End && p.End > q.Start —
// the SQL condition T1 < B AND T2 > A from §3.3 of the paper.
func (p Period) Overlaps(q Period) bool {
	return p.Start < q.End && p.End > q.Start
}

// Contains reports whether day t lies within the period (timeslice
// predicate: T1 <= t AND T2 > t).
func (p Period) Contains(t int64) bool {
	return p.Start <= t && p.End > t
}

// Intersect returns the overlap of p and q; ok is false when the
// periods are disjoint. Used by temporal join: the output period is
// [GREATEST(T1,T1'), LEAST(T2,T2')).
func (p Period) Intersect(q Period) (Period, bool) {
	r := Period{Start: max64(p.Start, q.Start), End: min64(p.End, q.End)}
	return r, r.Valid()
}

// Meets reports whether p ends exactly where q starts.
func (p Period) Meets(q Period) bool { return p.End == q.Start }

// Merge returns the union of two overlapping-or-adjacent periods.
func (p Period) Merge(q Period) Period {
	return Period{Start: min64(p.Start, q.Start), End: max64(p.End, q.End)}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
