package main

// Integration tests for the driver: a throwaway module is written to a
// temp dir and analyzed in-process through run(), asserting the exit
// code contract (0 clean / 1 findings / 2 errors), the -json schema,
// deterministic finding order, and cache hit accounting.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tango/internal/analysis"
)

const leakySrc = `// Package leaky seeds one violation per concurrency analyzer so the
// driver integration test can assert the full pipeline.
package leaky

import "sync"

//tango:lock-order meta < page

// T mixes an ordered metadata lock with a page latch.
type T struct {
	metaMu sync.Mutex //tango:lock-order meta
	pageMu sync.Mutex //tango:lock-order page latch
}

// Bad inverts the declared order and blocks under the latch.
func (t *T) Bad(ch chan int) {
	t.pageMu.Lock()
	defer t.pageMu.Unlock()
	t.metaMu.Lock()
	ch <- 1
	t.metaMu.Unlock()
}

// Leak spawns a goroutine nobody will ever receive from.
func Leak() {
	c := make(chan int)
	go func() {
		c <- 1
	}()
}

// Stale carries a suppression that matches nothing.
func Stale() {
	//lint:ignore errlost nothing here drops an error
	_ = 1
}
`

// writeModule lays out a minimal module with one dirty and one clean
// package.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module lintfixture\n\ngo 1.21\n")
	write("leaky/leaky.go", leakySrc)
	write("clean/clean.go", "// Package clean has nothing to report.\npackage clean\n\n// Add adds.\nfunc Add(a, b int) int { return a + b }\n")
	return dir
}

func runDriver(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestDriverExitCodes(t *testing.T) {
	dir := writeModule(t)

	code, out, _ := runDriver(t, "-dir", dir, "./...")
	if code != 1 {
		t.Fatalf("dirty tree: exit %d, want 1\nstdout:\n%s", code, out)
	}
	for _, analyzer := range []string{"latchorder", "lockio", "goleak", "stalesuppress"} {
		if !strings.Contains(out, "("+analyzer+")") {
			t.Errorf("stdout missing a %s finding:\n%s", analyzer, out)
		}
	}

	// Same invocation, byte-identical output: finding order is part of
	// the contract (CI diffs lint output across runs).
	_, again, _ := runDriver(t, "-dir", dir, "./...")
	if again != out {
		t.Errorf("output not deterministic:\n--- first\n%s\n--- second\n%s", out, again)
	}

	code, out, _ = runDriver(t, "-dir", dir, "./clean")
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Fatalf("clean package: exit %d, stdout %q; want 0 and no findings", code, out)
	}

	code, _, stderr := runDriver(t, "-checks", "nosuch", "-dir", dir, "./clean")
	if code != 2 || !strings.Contains(stderr, "nosuch") {
		t.Fatalf("unknown analyzer: exit %d, stderr %q; want 2 naming the analyzer", code, stderr)
	}

	if code, _, _ := runDriver(t, "-not-a-flag"); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestDriverJSONAndCache(t *testing.T) {
	dir := writeModule(t)
	cache := filepath.Join(dir, ".tangolint-cache")

	decode := func(out string) jsonReport {
		t.Helper()
		var report jsonReport
		if err := json.Unmarshal([]byte(out), &report); err != nil {
			t.Fatalf("decoding -json output: %v\n%s", err, out)
		}
		return report
	}

	code, out, _ := runDriver(t, "-dir", dir, "-json", "-cache", cache, "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	cold := decode(out)
	if cold.Packages != 2 || cold.Cached != 0 {
		t.Errorf("cold run: packages=%d cached=%d, want 2/0", cold.Packages, cold.Cached)
	}
	if len(cold.Analyzers) != len(analysis.All()) {
		t.Errorf("report lists %d analyzers, want %d", len(cold.Analyzers), len(analysis.All()))
	}
	if len(cold.Findings) != 4 {
		t.Errorf("cold run: %d findings, want 4 (latchorder, lockio, goleak, stalesuppress)\n%s", len(cold.Findings), out)
	}
	for _, f := range cold.Findings {
		if f.Analyzer == "" || f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Message == "" {
			t.Errorf("finding with empty fields: %+v", f)
		}
	}

	code, out, _ = runDriver(t, "-dir", dir, "-json", "-cache", cache, "./...")
	if code != 1 {
		t.Fatalf("warm exit %d, want 1", code)
	}
	warm := decode(out)
	if warm.Cached != warm.Packages {
		t.Errorf("warm run: cached=%d of %d packages, want all", warm.Cached, warm.Packages)
	}
	if len(warm.Findings) != len(cold.Findings) {
		t.Errorf("warm findings %d != cold findings %d", len(warm.Findings), len(cold.Findings))
	}
	for i := range warm.Findings {
		if warm.Findings[i] != cold.Findings[i] {
			t.Errorf("finding %d differs warm vs cold:\n%+v\n%+v", i, warm.Findings[i], cold.Findings[i])
		}
	}

	// Editing a file invalidates exactly that package.
	leaky := filepath.Join(dir, "leaky", "leaky.go")
	src, err := os.ReadFile(leaky)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(leaky, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runDriver(t, "-dir", dir, "-json", "-cache", cache, "./...")
	if code != 1 {
		t.Fatalf("post-edit exit %d, want 1", code)
	}
	edited := decode(out)
	if edited.Cached != edited.Packages-1 {
		t.Errorf("post-edit run: cached=%d of %d, want all but the edited package", edited.Cached, edited.Packages)
	}
}

func TestDriverList(t *testing.T) {
	code, out, _ := runDriver(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit %d, want 0", code)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing %s", a.Name)
		}
	}
}
