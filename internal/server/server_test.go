package server

import (
	"testing"

	"tango/internal/engine"
	"tango/internal/types"
	"tango/internal/wire"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	db := engine.Open(engine.Config{})
	s := New(db, wire.Latency{})
	if _, err := s.Exec("CREATE TABLE T (K INTEGER, V VARCHAR(20))"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO T VALUES (1,'a'),(2,'b'),(3,'c'),(4,'d'),(5,'e')"); err != nil {
		t.Fatal(err)
	}
	return s
}

func drainCursor(t *testing.T, c *Cursor) []types.Tuple {
	t.Helper()
	var rows []types.Tuple
	for {
		payload, err := c.FetchBatch()
		if err != nil {
			t.Fatal(err)
		}
		if payload == nil {
			break
		}
		batch, err := wire.DecodeBatch(payload)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range batch {
			rows = append(rows, r.Clone())
		}
	}
	return rows
}

func TestCursorBatches(t *testing.T) {
	s := testServer(t)
	cur, err := s.Query("SELECT K FROM T ORDER BY K", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	rows := drainCursor(t, cur)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r[0].AsInt() != int64(i+1) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
	// Fetch after exhaustion stays nil.
	payload, err := cur.FetchBatch()
	if err != nil || payload != nil {
		t.Errorf("post-EOF fetch: %v, %v", payload, err)
	}
}

func TestCursorSchema(t *testing.T) {
	s := testServer(t)
	cur, err := s.Query("SELECT K, V FROM T", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if cur.Schema().Len() != 2 {
		t.Errorf("schema: %v", cur.Schema())
	}
}

func TestLoadAndCounters(t *testing.T) {
	s := testServer(t)
	if _, err := s.Exec("CREATE TABLE L (K INTEGER)"); err != nil {
		t.Fatal(err)
	}
	payload := wire.EncodeBatch(nil, []types.Tuple{{types.Int(10)}, {types.Int(20)}})
	n, err := s.Load("L", payload)
	if err != nil || n != 2 {
		t.Fatalf("load: %d, %v", n, err)
	}
	queries, rowsOut, rowsIn := s.Counters()
	if rowsIn != 2 {
		t.Errorf("rowsIn = %d", rowsIn)
	}
	cur, err := s.Query("SELECT K FROM L", 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := drainCursor(t, cur)
	cur.Close()
	if len(rows) != 2 {
		t.Fatalf("loaded rows = %d", len(rows))
	}
	queries2, rowsOut2, _ := s.Counters()
	if queries2 != queries+1 || rowsOut2 != rowsOut+2 {
		t.Errorf("counters: %d/%d → %d/%d", queries, rowsOut, queries2, rowsOut2)
	}
}

func TestInsertRowsPath(t *testing.T) {
	s := testServer(t)
	if _, err := s.Exec("CREATE TABLE I (K INTEGER)"); err != nil {
		t.Fatal(err)
	}
	payload := wire.EncodeBatch(nil, []types.Tuple{{types.Int(1)}, {types.Int(2)}, {types.Int(3)}})
	n, err := s.InsertRows("I", payload)
	if err != nil || n != 3 {
		t.Fatalf("insert rows: %d, %v", n, err)
	}
}

func TestTableStatsComputedOnDemand(t *testing.T) {
	s := testServer(t)
	stats, err := s.TableStats("T", 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cardinality != 5 {
		t.Errorf("cardinality = %d", stats.Cardinality)
	}
	if stats.Column("K").Histogram == nil {
		t.Error("on-demand ANALYZE should honor histogram buckets")
	}
	// Second call serves the cached catalog entry.
	stats2, err := s.TableStats("T", 0)
	if err != nil || stats2 != stats {
		t.Error("cached stats expected")
	}
}

func TestErrorPaths(t *testing.T) {
	s := testServer(t)
	if _, err := s.Query("SELECT * FROM NOPE", 0); err == nil {
		t.Error("bad query should fail")
	}
	if _, err := s.Load("NOPE", wire.EncodeBatch(nil, nil)); err == nil {
		t.Error("load into missing table should fail")
	}
	if _, err := s.Load("T", []byte{0xFF, 0xFF}); err == nil {
		t.Error("corrupt payload should fail")
	}
	if _, err := s.TableSchema("NOPE"); err == nil {
		t.Error("missing schema should fail")
	}
}

func TestConcurrentReaders(t *testing.T) {
	s := testServer(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 25; i++ {
				cur, err := s.Query("SELECT K, V FROM T WHERE K > 1", 2)
				if err != nil {
					done <- err
					return
				}
				n := 0
				for {
					payload, err := cur.FetchBatch()
					if err != nil {
						done <- err
						return
					}
					if payload == nil {
						break
					}
					batch, err := wire.DecodeBatch(payload)
					if err != nil {
						done <- err
						return
					}
					n += len(batch)
				}
				cur.Close()
				if n != 4 {
					done <- errRows(n)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type errRows int

func (e errRows) Error() string { return "unexpected row count" }
