// Deterministic crash injection for the durable store.
//
// A CrashScript scripts the death of the process image at an exact
// physical write point: "the 7th WAL record write is torn",
// "the 3rd data-page write is partial". The FileDisk consults the
// script at every file-level write (WAL record writes during Sync,
// data-page writes during Checkpoint); when the scripted point is
// reached the write is corrupted accordingly, whatever reached the OS
// is fsynced (the worst case a real kill -9 can leave behind), and
// the store trips dead — every subsequent operation fails with
// ErrCrashed, exactly as if the process were gone. The crash matrix
// in internal/bench/crash_test.go then reopens the directory with
// Recover and asserts the redo pass restores a committed state.
//
// Crash points reuse the wire fault Schedule grammar from PR 4
// ("wal@7=torn;page@3=partial" parses with wire.ParseSchedule; the
// bench harness splits the storage ops out with SplitSchedule), so a
// single seed string can drive wire and disk chaos together.
package storage

import (
	"errors"
	"fmt"
	"sync"
)

// ErrCrashed is returned by every operation on a store whose crash
// script has tripped: the simulated process image is dead and only
// Recover on the data directory can resurrect the state.
var ErrCrashed = errors.New("storage: simulated crash (store is dead; run Recover)")

// CrashTarget selects the class of physical write a crash point
// counts.
type CrashTarget uint8

const (
	// TargetWAL counts WAL record writes (the schedule op "wal").
	TargetWAL CrashTarget = iota
	// TargetPage counts data-page file writes (the schedule op "page").
	TargetPage
	numTargets
)

var targetNames = [numTargets]string{"wal", "page"}

// String returns the schedule-syntax name of the target.
func (t CrashTarget) String() string {
	if int(t) < len(targetNames) {
		return targetNames[t]
	}
	return fmt.Sprintf("target(%d)", int(t))
}

// ParseCrashTarget parses a schedule-syntax target name.
func ParseCrashTarget(s string) (CrashTarget, error) {
	for i, n := range targetNames {
		if n == s {
			return CrashTarget(i), nil
		}
	}
	return 0, fmt.Errorf("storage: unknown crash target %q", s)
}

// CrashMode is what happens to the scripted write.
type CrashMode uint8

const (
	// CrashNone lets the write proceed (no point scheduled here).
	CrashNone CrashMode = iota
	// CrashOmit kills the process before the write: nothing reaches
	// the file (the schedule kind "drop").
	CrashOmit
	// CrashTorn writes the first half of the record/page frame and
	// then kills the process (the schedule kind "torn").
	CrashTorn
	// CrashPartial is CrashTorn for data pages (the schedule kind
	// "partial"): half the page frame reaches the file.
	CrashPartial
)

func (m CrashMode) String() string {
	switch m {
	case CrashNone:
		return "none"
	case CrashOmit:
		return "omit"
	case CrashTorn:
		return "torn"
	case CrashPartial:
		return "partial"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// CrashPoint schedules one crash: the Nth write of Target dies with
// Mode.
type CrashPoint struct {
	Target CrashTarget
	Nth    int64 // 1-based per-target write index
	Mode   CrashMode
}

// CrashScript is the deterministic crash plan: an ordered set of
// crash points plus per-target write counters. A script with no
// points is a pure observer — it counts write points without ever
// crashing, which is how the crash matrix discovers how many points a
// workload has before sweeping them. The zero value is not usable;
// call NewCrashScript. Safe for concurrent use.
type CrashScript struct {
	mu      sync.Mutex //tango:lock-order crashscript latch
	points  []CrashPoint
	counts  [numTargets]int64
	tripped bool
}

// NewCrashScript builds a script from crash points.
func NewCrashScript(points ...CrashPoint) *CrashScript {
	return &CrashScript{points: points}
}

// Decide records one write of target and returns the crash mode to
// apply (CrashNone on the clean path). Once a point fires the script
// is tripped and every later Decide returns CrashOmit — the process
// image is dead, nothing more reaches the files.
func (s *CrashScript) Decide(target CrashTarget) CrashMode {
	if s == nil {
		return CrashNone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tripped {
		return CrashOmit
	}
	s.counts[target]++
	n := s.counts[target]
	for _, p := range s.points {
		if p.Target == target && p.Nth == n && p.Mode != CrashNone {
			s.tripped = true
			return p.Mode
		}
	}
	return CrashNone
}

// Observed returns how many writes of target the script has seen.
func (s *CrashScript) Observed(target CrashTarget) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[target]
}

// Tripped reports whether a crash point has fired.
func (s *CrashScript) Tripped() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tripped
}

// CrashDisk is a Store that wraps a durable FileDisk with a crash
// script: the scripted point kills the simulated process image
// mid-write, after which every operation — reads included — fails
// with ErrCrashed. It exists so harnesses can hand the engine a
// plain Store while keeping a handle on the script.
type CrashDisk struct {
	*FileDisk
	Script *CrashScript
}

// NewCrashDisk arms the file disk with the script and returns the
// wrapping store.
func NewCrashDisk(fd *FileDisk, script *CrashScript) *CrashDisk {
	fd.SetCrashScript(script)
	return &CrashDisk{FileDisk: fd, Script: script}
}
