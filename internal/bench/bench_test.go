package bench

import (
	"testing"
	"time"

	"tango/internal/rel"
)

// tinyScale keeps unit tests fast while exercising every code path.
func tinyScale() Scale {
	return Scale{
		PositionSizes: []int{300, 900},
		Q2Position:    900,
		Q3Position:    900,
		Q4Employee:    400,
		Histograms:    10,
	}
}

func TestQ1PlansAgreeAndDBMSSlower(t *testing.T) {
	sys, err := NewSystem(Config{PositionRows: 1500, EmployeeRows: 50, Histograms: 10})
	if err != nil {
		t.Fatal(err)
	}
	var results []*rel.Relation
	var times []time.Duration
	for _, np := range Q1Plans() {
		out, elapsed, err := sys.RunPlan(np)
		if err != nil {
			t.Fatalf("%s: %v", np.Name, err)
		}
		out.SortBy("PosID", "T1")
		results = append(results, out)
		times = append(times, elapsed)
	}
	for i := 1; i < len(results); i++ {
		if !rel.EqualAsMultisets(results[0], results[i]) {
			t.Fatalf("plan %d result differs (%d vs %d rows)",
				i, results[0].Cardinality(), results[i].Cardinality())
		}
	}
	if results[0].Cardinality() == 0 {
		t.Fatal("empty aggregation result")
	}
	// Shape check (Figure 8): the all-DBMS plan is slower than the
	// middleware plans even at this size.
	if times[2] < times[0] && times[2] < times[1] {
		t.Errorf("all-DBMS plan fastest (%v vs %v, %v) — shape broken", times[2], times[0], times[1])
	}
}

func TestQ2PlansAgree(t *testing.T) {
	sys, err := NewSystem(Config{PositionRows: 900, EmployeeRows: 50, Histograms: 10})
	if err != nil {
		t.Fatal(err)
	}
	end := Day(1996, time.January, 1)
	var results []*rel.Relation
	for _, np := range Q2Plans(end) {
		if np.Name == "P5 taggrM-nosel" {
			// Plan 5 aggregates the unfiltered relation: its counts
			// legitimately differ (the paper runs it for cost, not
			// equivalence).
			if _, _, err := sys.RunPlan(np); err != nil {
				t.Fatalf("%s: %v", np.Name, err)
			}
			continue
		}
		out, _, err := sys.RunPlan(np)
		if err != nil {
			t.Fatalf("%s: %v", np.Name, err)
		}
		results = append(results, normalizeQ2(out))
	}
	for i := 1; i < len(results); i++ {
		if !rel.EqualAsMultisets(results[0], results[i]) {
			t.Fatalf("Q2 plan %d differs: %d vs %d rows",
				i, results[0].Cardinality(), results[i].Cardinality())
		}
	}
	if results[0].Cardinality() == 0 {
		t.Fatal("Q2 produced no rows; selection too tight for test data")
	}
}

// normalizeQ2 projects results to comparable, unqualified columns.
func normalizeQ2(r *rel.Relation) *rel.Relation {
	idx := []int{
		r.Schema.MustIndex("PosID"),
		r.Schema.MustIndex("T1"),
		r.Schema.MustIndex("T2"),
		r.Schema.MustIndex("COUNTofPosID"),
		r.Schema.MustIndex("EmpName"),
	}
	out := rel.New(r.Schema.Project(idx).Unqualified())
	for _, t := range r.Tuples {
		proj := t[:0:0]
		for _, j := range idx {
			proj = append(proj, t[j])
		}
		out.Append(proj)
	}
	out.SortBy("PosID", "T1", "T2", "EmpName")
	return out
}

func TestQ3PlansAgree(t *testing.T) {
	sys, err := NewSystem(Config{PositionRows: 900, EmployeeRows: 50, Histograms: 10})
	if err != nil {
		t.Fatal(err)
	}
	cutoff := Day(1996, time.January, 1)
	plans := Q3Plans(cutoff)
	var results []*rel.Relation
	for _, np := range plans {
		out, _, err := sys.RunPlan(np)
		if err != nil {
			t.Fatalf("%s: %v", np.Name, err)
		}
		out.SortBy("A.PosID", "A.EmpName", "B.EmpName", "T1")
		results = append(results, out)
	}
	if !rel.EqualAsMultisets(results[0], results[1]) {
		t.Fatalf("Q3 plans disagree: %d vs %d rows",
			results[0].Cardinality(), results[1].Cardinality())
	}
	if results[0].Cardinality() == 0 {
		t.Fatal("Q3 produced no rows")
	}
}

func TestQ4PlansAgree(t *testing.T) {
	sys, err := NewSystem(Config{PositionRows: 900, EmployeeRows: 400, Histograms: 10})
	if err != nil {
		t.Fatal(err)
	}
	var results []*rel.Relation
	for _, np := range Q4Plans() {
		out, _, err := sys.RunPlan(np)
		if err != nil {
			t.Fatalf("%s: %v", np.Name, err)
		}
		out.SortBy("PosID", "EmpID", "EmpName")
		results = append(results, out)
	}
	for i := 1; i < len(results); i++ {
		if !rel.EqualAsMultisets(results[0], results[i]) {
			t.Fatalf("Q4 plan %d differs: %d vs %d rows",
				i, results[0].Cardinality(), results[i].Cardinality())
		}
	}
	if results[0].Cardinality() == 0 {
		t.Fatal("Q4 join empty")
	}
}

func TestRunMemoReportsAllQueries(t *testing.T) {
	counts, err := RunMemo(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 4 {
		t.Fatalf("memo rows = %d", len(counts))
	}
	for _, c := range counts {
		if c.Classes <= 0 || c.Elements < c.Classes {
			t.Errorf("%s: %d classes / %d elements", c.Query, c.Classes, c.Elements)
		}
		if c.Chosen == "" {
			t.Errorf("%s: empty chosen signature", c.Query)
		}
	}
	// Q2 (the richest query) should have the largest memo, echoing the
	// paper's 142/452 vs 12/29.
	byName := map[string]MemoCount{}
	for _, c := range counts {
		byName[c.Query] = c
	}
	if byName["Q2"].Elements <= byName["Q1"].Elements {
		t.Errorf("Q2 memo (%d) should exceed Q1 (%d)",
			byName["Q2"].Elements, byName["Q1"].Elements)
	}
}

func TestRunSelectivityShape(t *testing.T) {
	rows, err := RunSelectivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	naive, semantic := rows[0], rows[1]
	if naive.Predicted < 10*naive.Actual {
		t.Errorf("naive should be far off: predicted %.4f actual %.4f",
			naive.Predicted, naive.Actual)
	}
	if semantic.Predicted > 2.5*semantic.Actual || semantic.Predicted < semantic.Actual/2.5 {
		t.Errorf("semantic should be close: predicted %.4f actual %.4f",
			semantic.Predicted, semantic.Actual)
	}
}

func TestSmallSweepsRun(t *testing.T) {
	sc := Scale{
		PositionSizes: []int{300},
		Q2Position:    300, Q3Position: 300, Q4Employee: 200,
		Histograms: 5,
	}
	q1, err := RunQ1(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(q1.Results) != 3 {
		t.Errorf("Q1 results = %d", len(q1.Results))
	}
	q2, err := RunQ2(sc, []int{1996})
	if err != nil {
		t.Fatal(err)
	}
	if len(q2.Results) != 6 {
		t.Errorf("Q2 results = %d", len(q2.Results))
	}
	q3, err := RunQ3(sc, []int{1996})
	if err != nil {
		t.Fatal(err)
	}
	if len(q3.Results) != 2 {
		t.Errorf("Q3 results = %d", len(q3.Results))
	}
	q4, err := RunQ4(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(q4.Results) != 3 {
		t.Errorf("Q4 results = %d", len(q4.Results))
	}
	for _, s := range []*Series{q1, q2, q3, q4} {
		for _, m := range s.Results {
			if m.Err != nil {
				t.Errorf("%s %s @%s: %v", m.Query, m.Plan, m.Param, m.Err)
			}
		}
	}
}

func TestRunChoice(t *testing.T) {
	rows, err := RunChoice(tinyScale(), []int{1995, 1998})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("choice rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Chosen == "" || r.BestPlan == "" || r.WithinFactor <= 0 {
			t.Errorf("incomplete choice row: %+v", r)
		}
	}
}

func TestRunQ2Choice(t *testing.T) {
	rows, err := RunQ2Choice(tinyScale(), []int{1990, 1997})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WithHist == "" || r.WithoutHist == "" || r.NaiveEstimate == "" {
			t.Errorf("incomplete row: %+v", r)
		}
	}
}

func TestRunAdaptConverges(t *testing.T) {
	rows, err := RunAdapt(tinyScale(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Factors must move away from the default and settle: the step-to-
	// step delta should shrink.
	d1 := abs64(rows[1].PTm - rows[0].PTm)
	dLast := abs64(rows[4].PTm - rows[3].PTm)
	if rows[0].PTm <= 0 {
		t.Fatal("non-positive factor")
	}
	if dLast > d1 && d1 > 0 {
		t.Logf("adaptation not strictly settling (d1=%g dLast=%g) — acceptable on noisy timers", d1, dLast)
	}
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestPlanSignature(t *testing.T) {
	plans := Q1Plans()
	sig1 := PlanSignature(plans[0].Plan) // TAggr in MW
	sig3 := PlanSignature(plans[2].Plan) // all DBMS
	if sig1 != "TAggr^M" {
		t.Errorf("plan 1 signature = %q", sig1)
	}
	if sig3 != "TAggr^D" {
		t.Errorf("plan 3 signature = %q", sig3)
	}
	tm := Q4Plans()[1].Plan
	if got := PlanSignature(tm); got != "Join^D" {
		t.Errorf("Q4 DBMS plan signature = %q", got)
	}
}

func TestSeriesPrintSmoke(t *testing.T) {
	s := &Series{Name: "demo", XLabel: "x"}
	s.Results = append(s.Results,
		Measurement{Query: "Q", Plan: "A", Param: "1", Elapsed: 1e9},
		Measurement{Query: "Q", Plan: "B", Param: "1", Err: errProbe{}},
	)
	s.Print() // must not panic; rendering is eyeballed in cmd output
}

type errProbe struct{}

func (errProbe) Error() string { return "probe" }
