package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// SchemaProp enforces the algebra's schema-propagation invariant on
// operator constructors: a `NewXxx` function that returns an iterator
// (an XXL operator) must derive its output schema from its inputs'
// schemas — concatenating, projecting, or renaming what Schema()
// reports — never from hard-coded column literals. A literal
// types.Column{Name: "..."} inside a constructor silently diverges
// from the plan's derived schema the moment an upstream operator
// changes, breaking the list/multiset equivalence machinery the
// optimizer's rewrites rely on. Constructors that need a caller-shaped
// schema (projection, aggregation) must accept it as a parameter, the
// way NewProject and NewTAggr do.
var SchemaProp = &Analyzer{
	Name: "schemaprop",
	Doc:  "check that operator constructors derive schemas from inputs, not literals",
	Run:  runSchemaProp,
}

func runSchemaProp(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv != nil {
				continue
			}
			if !strings.HasPrefix(fn.Name.Name, "New") {
				continue
			}
			if !returnsIterator(pass, fn) {
				continue
			}
			checkSchemaLiterals(pass, fn)
		}
	}
	return nil
}

// returnsIterator reports whether any result of the function is
// iterator-shaped.
func returnsIterator(pass *Pass, fn *ast.FuncDecl) bool {
	obj, _ := pass.Info.Defs[fn.Name].(*types.Func)
	if obj == nil {
		return false
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		if isIteratorLike(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// checkSchemaLiterals flags Column composite literals with constant
// names inside the constructor body.
func checkSchemaLiterals(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[lit]
		if !ok || !isSchemaColumnType(tv.Type) {
			return true
		}
		name, node := literalColumnName(pass, lit)
		if name == "" || node == nil {
			return true
		}
		pass.Reportf(node.Pos(), "operator constructor %s hard-codes output column %q; derive the schema from the input iterators' Schema() (or take it as a parameter)",
			fn.Name.Name, name)
		return true
	})
}

// isSchemaColumnType matches the algebra's column descriptor: a named
// struct type called Column, declared in a package named (or ending
// in) "types", with a Name field.
func isSchemaColumnType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Column" {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	if pkg.Name() != "types" && !strings.HasSuffix(pkg.Path(), "/types") {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Name" {
			return true
		}
	}
	return false
}

// literalColumnName extracts a compile-time constant Name from a
// Column composite literal, or "".
func literalColumnName(pass *Pass, lit *ast.CompositeLit) (string, ast.Node) {
	constOf := func(e ast.Expr) (string, bool) {
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return "", false
		}
		return constant.StringVal(tv.Value), true
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "Name" {
				continue
			}
			if s, ok := constOf(kv.Value); ok {
				return s, kv.Value
			}
			return "", nil
		}
		// Positional form: Name is the first field.
		if i == 0 {
			if s, ok := constOf(elt); ok {
				return s, elt
			}
			return "", nil
		}
	}
	return "", nil
}
