// Package repro benchmarks regenerate the paper's tables and figures
// as Go benchmarks — one benchmark family per figure plus ablations
// for the design choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// The shapes to look for (absolute numbers depend on the machine):
//
//	Figure 8  — BenchmarkQuery1: the all-DBMS plan is superlinear and
//	            an order of magnitude slower than the middleware plans.
//	Figure 10 — BenchmarkQuery2: plan 2 (TAggr+TJoin in middleware)
//	            wins once the selection period widens; plan 6
//	            deteriorates fastest.
//	Figure 11a — BenchmarkQuery3: the middleware temporal join wins
//	            when the result outgrows the arguments.
//	Figure 11b — BenchmarkQuery4: the DBMS wins regular joins; the
//	            middleware sort-merge stays within a small factor.
package repro

import (
	"fmt"
	"testing"
	"time"

	"tango/internal/bench"
	"tango/internal/rel"
	"tango/internal/stats"
	"tango/internal/wire"
)

// newSystem builds a fresh system for one benchmark configuration.
func newSystem(b *testing.B, posRows, empRows int) *bench.System {
	b.Helper()
	sys, err := bench.NewSystem(bench.Config{
		PositionRows: posRows,
		EmployeeRows: empRows,
		Histograms:   20,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func runPlan(b *testing.B, sys *bench.System, np bench.NamedPlan) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := sys.RunPlan(np)
		if err != nil {
			b.Fatal(err)
		}
		if out.Cardinality() == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkQuery1 regenerates Figure 8 at two POSITION sizes.
func BenchmarkQuery1(b *testing.B) {
	for _, size := range []int{2000, 8000} {
		sys := newSystem(b, size, 50)
		for _, np := range bench.Q1Plans() {
			b.Run(fmt.Sprintf("n=%d/%s", size, np.Name), func(b *testing.B) {
				runPlan(b, sys, np)
			})
		}
	}
}

// BenchmarkQuery2 regenerates Figure 10 at a selective and a relaxed
// period end.
func BenchmarkQuery2(b *testing.B) {
	sys := newSystem(b, 8000, 50)
	for _, year := range []int{1990, 1997} {
		end := bench.Day(year, time.January, 1)
		for _, np := range bench.Q2Plans(end) {
			b.Run(fmt.Sprintf("end=%d/%s", year, np.Name), func(b *testing.B) {
				runPlan(b, sys, np)
			})
		}
	}
}

// BenchmarkQuery3 regenerates Figure 11(a) around the crossover.
func BenchmarkQuery3(b *testing.B) {
	sys := newSystem(b, 8000, 50)
	for _, year := range []int{1992, 1997} {
		cutoff := bench.Day(year, time.January, 1)
		for _, np := range bench.Q3Plans(cutoff) {
			b.Run(fmt.Sprintf("cutoff=%d/%s", year, np.Name), func(b *testing.B) {
				runPlan(b, sys, np)
			})
		}
	}
}

// BenchmarkQuery4 regenerates Figure 11(b).
func BenchmarkQuery4(b *testing.B) {
	for _, size := range []int{2000, 8000} {
		sys := newSystem(b, size, 5000)
		for _, np := range bench.Q4Plans() {
			b.Run(fmt.Sprintf("n=%d/%s", size, np.Name), func(b *testing.B) {
				runPlan(b, sys, np)
			})
		}
	}
}

// BenchmarkSelectivity times the §3.3 estimators (they must be cheap
// enough to run inside optimization) and the optimizer end to end.
func BenchmarkSelectivity(b *testing.B) {
	rows, err := bench.RunSelectivity()
	if err != nil {
		b.Fatal(err)
	}
	if len(rows) != 3 {
		b.Fatal("unexpected selectivity table")
	}
	_ = stats.ModeSemantic
	sys := newSystem(b, 4000, 50)
	b.Run("optimize-q2", func(b *testing.B) {
		initial := bench.Q2Initial(bench.Day(1996, time.January, 1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.MW.Optimize(initial.Clone()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBulkLoad compares TRANSFER^D's direct-path loader
// against per-row INSERTs (the §3.2 design choice).
func BenchmarkAblationBulkLoad(b *testing.B) {
	sys := newSystem(b, 4000, 50)
	gen := positionsForLoad(sys)
	for _, mode := range []struct {
		name       string
		useInserts bool
	}{{"bulk-load", false}, {"insert-rows", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				name := sys.MW.Conn.TempName()
				if err := sys.MW.Conn.CreateTable(name, gen.Schema); err != nil {
					b.Fatal(err)
				}
				var err error
				if mode.useInserts {
					_, err = sys.MW.Conn.InsertRows(name, gen.Tuples)
				} else {
					_, err = sys.MW.Conn.Load(name, gen.Tuples)
				}
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.MW.Conn.DropTable(name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPrefetch measures the wire row-prefetch setting's
// effect on TRANSFER^M (the Oracle row-prefetch observation of §3.2).
func BenchmarkAblationPrefetch(b *testing.B) {
	sys := newSystem(b, 8000, 50)
	for _, prefetch := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("prefetch=%d", prefetch), func(b *testing.B) {
			sys.MW.Conn.Prefetch = prefetch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, _, err := sys.MW.Conn.QueryAll("SELECT PosID, T1, T2 FROM POSITION")
				if err != nil {
					b.Fatal(err)
				}
				if out.Cardinality() == 0 {
					b.Fatal("empty")
				}
			}
		})
	}
	sys.MW.Conn.Prefetch = 0
}

// BenchmarkAblationLatency shows how a slower middleware–DBMS link
// shifts the transfer-heavy plans (plan 4 of Query 2).
func BenchmarkAblationLatency(b *testing.B) {
	for _, lat := range []struct {
		name string
		l    wire.Latency
	}{
		{"free", wire.Latency{}},
		{"lan", wire.Latency{RoundTrip: 200 * time.Microsecond, BytesPerSecond: 50e6}},
	} {
		sys, err := bench.NewSystem(bench.Config{
			PositionRows: 4000, EmployeeRows: 50, Histograms: 20, Latency: lat.l,
		})
		if err != nil {
			b.Fatal(err)
		}
		end := bench.Day(1990, time.January, 1)
		plans := bench.Q2Plans(end)
		for _, np := range []bench.NamedPlan{plans[1], plans[3]} { // P2 vs P4
			b.Run(lat.name+"/"+np.Name, func(b *testing.B) {
				runPlan(b, sys, np)
			})
		}
	}
}

// positionsForLoad drains a copy of POSITION for the load ablation.
func positionsForLoad(sys *bench.System) *rel.Relation {
	out, _, err := sys.MW.Conn.QueryAll("SELECT * FROM POSITION")
	if err != nil {
		panic(err)
	}
	return out
}
