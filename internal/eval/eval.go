package eval

import (
	"fmt"
	"strings"

	"tango/internal/sqlast"
	"tango/internal/types"
)

// Func evaluates an expression against one input tuple.
type Func func(types.Tuple) (types.Value, error)

// compileExpr compiles a scalar expression against a schema. Aggregate
// calls are rejected here; grouping rewrites them first.
func Compile(e sqlast.Expr, schema types.Schema) (Func, error) {
	switch x := e.(type) {
	case sqlast.Literal:
		v := x.Value
		return func(types.Tuple) (types.Value, error) { return v, nil }, nil

	case sqlast.ColumnRef:
		name := x.Name
		if x.Table != "" {
			name = x.Table + "." + x.Name
		}
		i := schema.ColumnIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("eval: unknown column %q in %v", name, schema.Names())
		}
		return func(t types.Tuple) (types.Value, error) { return t[i], nil }, nil

	case sqlast.BinaryExpr:
		left, err := Compile(x.Left, schema)
		if err != nil {
			return nil, err
		}
		right, err := Compile(x.Right, schema)
		if err != nil {
			return nil, err
		}
		return compileBinary(x.Op, left, right)

	case sqlast.UnaryExpr:
		operand, err := Compile(x.Operand, schema)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			return func(t types.Tuple) (types.Value, error) {
				v, err := operand(t)
				if err != nil {
					return types.Null, err
				}
				if v.IsNull() {
					return types.Null, nil
				}
				return types.Bool(!v.AsBool()), nil
			}, nil
		case "-":
			return func(t types.Tuple) (types.Value, error) {
				v, err := operand(t)
				if err != nil {
					return types.Null, err
				}
				return types.Sub(types.Int(0), v), nil
			}, nil
		}
		return nil, fmt.Errorf("eval: unknown unary operator %q", x.Op)

	case sqlast.FuncCall:
		if sqlast.IsAggregateName(x.Name) {
			return nil, fmt.Errorf("eval: aggregate %s outside GROUP BY context", x.Name)
		}
		return compileScalarFunc(x, schema)

	case sqlast.Between:
		operand, err := Compile(x.Expr, schema)
		if err != nil {
			return nil, err
		}
		lo, err := Compile(x.Lo, schema)
		if err != nil {
			return nil, err
		}
		hi, err := Compile(x.Hi, schema)
		if err != nil {
			return nil, err
		}
		neg := x.Not
		return func(t types.Tuple) (types.Value, error) {
			v, err := operand(t)
			if err != nil {
				return types.Null, err
			}
			l, err := lo(t)
			if err != nil {
				return types.Null, err
			}
			h, err := hi(t)
			if err != nil {
				return types.Null, err
			}
			if v.IsNull() || l.IsNull() || h.IsNull() {
				return types.Null, nil
			}
			in := types.Compare(v, l) >= 0 && types.Compare(v, h) <= 0
			if neg {
				in = !in
			}
			return types.Bool(in), nil
		}, nil

	case sqlast.IsNull:
		operand, err := Compile(x.Expr, schema)
		if err != nil {
			return nil, err
		}
		neg := x.Not
		return func(t types.Tuple) (types.Value, error) {
			v, err := operand(t)
			if err != nil {
				return types.Null, err
			}
			return types.Bool(v.IsNull() != neg), nil
		}, nil

	case sqlast.Star:
		return nil, fmt.Errorf("eval: * is not a scalar expression")

	default:
		return nil, fmt.Errorf("eval: cannot compile %T", e)
	}
}

func compileBinary(op sqlast.BinaryOp, left, right Func) (Func, error) {
	switch op {
	case sqlast.OpAnd:
		return func(t types.Tuple) (types.Value, error) {
			l, err := left(t)
			if err != nil {
				return types.Null, err
			}
			if !l.IsNull() && !l.AsBool() {
				return types.Bool(false), nil
			}
			r, err := right(t)
			if err != nil {
				return types.Null, err
			}
			if !r.IsNull() && !r.AsBool() {
				return types.Bool(false), nil
			}
			if l.IsNull() || r.IsNull() {
				return types.Null, nil
			}
			return types.Bool(true), nil
		}, nil
	case sqlast.OpOr:
		return func(t types.Tuple) (types.Value, error) {
			l, err := left(t)
			if err != nil {
				return types.Null, err
			}
			if !l.IsNull() && l.AsBool() {
				return types.Bool(true), nil
			}
			r, err := right(t)
			if err != nil {
				return types.Null, err
			}
			if !r.IsNull() && r.AsBool() {
				return types.Bool(true), nil
			}
			if l.IsNull() || r.IsNull() {
				return types.Null, nil
			}
			return types.Bool(false), nil
		}, nil
	}

	arith := map[sqlast.BinaryOp]func(a, b types.Value) types.Value{
		sqlast.OpAdd: types.Add, sqlast.OpSub: types.Sub,
		sqlast.OpMul: types.Mul, sqlast.OpDiv: types.Div,
	}
	if fn, ok := arith[op]; ok {
		return func(t types.Tuple) (types.Value, error) {
			l, err := left(t)
			if err != nil {
				return types.Null, err
			}
			r, err := right(t)
			if err != nil {
				return types.Null, err
			}
			return fn(l, r), nil
		}, nil
	}

	var test func(c int) bool
	switch op {
	case sqlast.OpEq:
		test = func(c int) bool { return c == 0 }
	case sqlast.OpNe:
		test = func(c int) bool { return c != 0 }
	case sqlast.OpLt:
		test = func(c int) bool { return c < 0 }
	case sqlast.OpLe:
		test = func(c int) bool { return c <= 0 }
	case sqlast.OpGt:
		test = func(c int) bool { return c > 0 }
	case sqlast.OpGe:
		test = func(c int) bool { return c >= 0 }
	default:
		return nil, fmt.Errorf("eval: unknown operator %v", op)
	}
	return func(t types.Tuple) (types.Value, error) {
		l, err := left(t)
		if err != nil {
			return types.Null, err
		}
		r, err := right(t)
		if err != nil {
			return types.Null, err
		}
		if l.IsNull() || r.IsNull() {
			return types.Null, nil
		}
		return types.Bool(test(types.Compare(l, r))), nil
	}, nil
}

func compileScalarFunc(x sqlast.FuncCall, schema types.Schema) (Func, error) {
	args := make([]Func, len(x.Args))
	for i, a := range x.Args {
		f, err := Compile(a, schema)
		if err != nil {
			return nil, err
		}
		args[i] = f
	}
	evalArgs := func(t types.Tuple) ([]types.Value, error) {
		vals := make([]types.Value, len(args))
		for i, f := range args {
			v, err := f(t)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return vals, nil
	}
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("eval: %s expects %d arguments, got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "GREATEST":
		if len(args) < 2 {
			return nil, fmt.Errorf("eval: GREATEST needs at least 2 arguments")
		}
		return func(t types.Tuple) (types.Value, error) {
			vals, err := evalArgs(t)
			if err != nil {
				return types.Null, err
			}
			out := vals[0]
			for _, v := range vals[1:] {
				out = types.Greatest(out, v)
			}
			return out, nil
		}, nil
	case "LEAST":
		if len(args) < 2 {
			return nil, fmt.Errorf("eval: LEAST needs at least 2 arguments")
		}
		return func(t types.Tuple) (types.Value, error) {
			vals, err := evalArgs(t)
			if err != nil {
				return types.Null, err
			}
			out := vals[0]
			for _, v := range vals[1:] {
				out = types.Least(out, v)
			}
			return out, nil
		}, nil
	case "ABS":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(t types.Tuple) (types.Value, error) {
			v, err := args[0](t)
			if err != nil || v.IsNull() {
				return types.Null, err
			}
			if v.Kind() == types.KindFloat {
				f := v.AsFloat()
				if f < 0 {
					f = -f
				}
				return types.Float(f), nil
			}
			n := v.AsInt()
			if n < 0 {
				n = -n
			}
			return types.Int(n), nil
		}, nil
	case "LENGTH":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(t types.Tuple) (types.Value, error) {
			v, err := args[0](t)
			if err != nil || v.IsNull() {
				return types.Null, err
			}
			return types.Int(int64(len(v.AsString()))), nil
		}, nil
	case "COALESCE":
		return func(t types.Tuple) (types.Value, error) {
			vals, err := evalArgs(t)
			if err != nil {
				return types.Null, err
			}
			for _, v := range vals {
				if !v.IsNull() {
					return v, nil
				}
			}
			return types.Null, nil
		}, nil
	case "MOD":
		if err := arity(2); err != nil {
			return nil, err
		}
		return func(t types.Tuple) (types.Value, error) {
			vals, err := evalArgs(t)
			if err != nil {
				return types.Null, err
			}
			if vals[0].IsNull() || vals[1].IsNull() || vals[1].AsInt() == 0 {
				return types.Null, nil
			}
			return types.Int(vals[0].AsInt() % vals[1].AsInt()), nil
		}, nil
	}
	return nil, fmt.Errorf("eval: unknown function %s", x.Name)
}

// inferKind guesses the result kind of an expression against a schema;
// used to type derived-table and result columns.
func InferKind(e sqlast.Expr, schema types.Schema) types.Kind {
	switch x := e.(type) {
	case sqlast.Literal:
		return x.Value.Kind()
	case sqlast.ColumnRef:
		name := x.Name
		if x.Table != "" {
			name = x.Table + "." + x.Name
		}
		if i := schema.ColumnIndex(name); i >= 0 {
			return schema.Cols[i].Kind
		}
		return types.KindNull
	case sqlast.BinaryExpr:
		switch x.Op {
		case sqlast.OpAnd, sqlast.OpOr, sqlast.OpEq, sqlast.OpNe,
			sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe:
			return types.KindBool
		}
		lk, rk := InferKind(x.Left, schema), InferKind(x.Right, schema)
		if lk == types.KindFloat || rk == types.KindFloat {
			return types.KindFloat
		}
		if x.Op == sqlast.OpAdd || x.Op == sqlast.OpSub {
			if lk == types.KindDate && rk != types.KindDate {
				return types.KindDate
			}
		}
		return types.KindInt
	case sqlast.UnaryExpr:
		if x.Op == "NOT" {
			return types.KindBool
		}
		return InferKind(x.Operand, schema)
	case sqlast.FuncCall:
		switch x.Name {
		case "COUNT", "LENGTH", "MOD":
			return types.KindInt
		case "AVG":
			return types.KindFloat
		case "SUM", "MIN", "MAX", "GREATEST", "LEAST", "ABS", "COALESCE":
			if len(x.Args) > 0 {
				return InferKind(x.Args[0], schema)
			}
			return types.KindNull
		}
		return types.KindNull
	case sqlast.Between, sqlast.IsNull:
		return types.KindBool
	default:
		return types.KindNull
	}
}

// outputName picks a result column name for a select item.
func OutputName(item sqlast.SelectItem, pos int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if cr, ok := item.Expr.(sqlast.ColumnRef); ok {
		return cr.Name
	}
	if f, ok := item.Expr.(sqlast.FuncCall); ok {
		return f.Name
	}
	return fmt.Sprintf("COL%d", pos+1)
}

// exprColumns collects the column names referenced by an expression.
func ExprColumns(e sqlast.Expr) []string {
	var out []string
	sqlast.Walk(e, func(x sqlast.Expr) bool {
		if cr, ok := x.(sqlast.ColumnRef); ok {
			out = append(out, cr.String())
		}
		return true
	})
	return out
}

// refersOnly reports whether every column referenced by e resolves in
// the schema.
func RefersOnly(e sqlast.Expr, schema types.Schema) bool {
	ok := true
	for _, c := range ExprColumns(e) {
		if schema.ColumnIndex(c) < 0 {
			ok = false
		}
	}
	return ok
}

// exprKey is a canonical string for expression identity (used to match
// GROUP BY expressions and aggregate calls during rewrite).
func ExprKey(e sqlast.Expr) string { return strings.ToUpper(e.String()) }
