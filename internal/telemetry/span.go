package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one timed phase of a query's lifecycle (parse → optimize →
// split → transfer → execute). Spans form a tree; each span carries
// wall time and ordered attributes (rows, bytes, I/O). A nil *Span is
// a no-op, so tracing can be disabled by simply not creating a root.
type Span struct {
	Name string

	// Trace identity: every span belongs to a 64-bit trace; spans on
	// the remote site carry the same trace ID so the two halves of a
	// query can be stitched back into one tree (see Stitch). IDs are
	// immutable after construction, so they are read without the lock.
	traceID  uint64
	spanID   uint64
	parentID uint64

	mu       sync.Mutex //tango:lock-order span latch
	start    time.Time
	elapsed  time.Duration
	done     bool
	attrs    []Attr
	children []*Span
}

// Attr is one span attribute; insertion order is preserved.
type Attr struct {
	Key   string
	Value string
}

// NewSpan starts a root span with a fresh trace ID.
func NewSpan(name string) *Span {
	return &Span{Name: name, traceID: newID(), spanID: newID(), start: time.Now()}
}

// Child starts a nested span. It inherits the parent's trace ID; its
// parent span ID is the creator's span ID.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, traceID: s.traceID, spanID: newID(), parentID: s.spanID, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// AddChild attaches an already-measured child span — used to record
// phases whose duration was observed elsewhere (e.g. wire transfers
// timed by the client feedback machinery). The returned span is
// finished; attributes may still be added.
func (s *Span) AddChild(name string, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, traceID: s.traceID, spanID: newID(), parentID: s.spanID,
		start: time.Now().Add(-d), elapsed: d, done: true}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Attach adds an existing span (typically a stitched remote span) as a
// child. The child keeps its own trace identity.
func (s *Span) Attach(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// Finish stops the span clock (idempotent) and returns the elapsed
// wall time.
func (s *Span) Finish() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		s.elapsed = time.Since(s.start)
		s.done = true
	}
	return s.elapsed
}

// Done reports whether the span has been finished.
func (s *Span) Done() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// Start returns the span's start time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// TraceID returns the 64-bit trace the span belongs to (0 for nil).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.traceID
}

// SpanID returns the span's own 64-bit ID (0 for nil).
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.spanID
}

// ParentID returns the creating span's ID (0 for roots and nil).
func (s *Span) ParentID() uint64 {
	if s == nil {
		return 0
	}
	return s.parentID
}

// Context returns the span's propagation context — what crosses the
// wire so the remote site can parent its spans under this one.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.traceID, SpanID: s.spanID}
}

// Attrs returns the span attributes (copy, insertion order).
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Elapsed returns the span duration (current running time if the span
// is not finished).
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return s.elapsed
	}
	return time.Since(s.start)
}

// Set records a string attribute.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt records an integer attribute.
func (s *Span) SetInt(key string, v int64) { s.Set(key, fmt.Sprintf("%d", v)) }

// SetFloat records a float attribute.
func (s *Span) SetFloat(key string, v float64) { s.Set(key, fmt.Sprintf("%g", v)) }

// Children returns the child spans (copy).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Render draws the span tree with durations and attributes:
//
//	query 12.3ms
//	├─ optimize 1.1ms classes=12 elements=29
//	└─ execute 11.0ms rows=733
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.render(&b, "", "")
	return b.String()
}

func (s *Span) render(b *strings.Builder, prefix, childPrefix string) {
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	b.WriteString(prefix)
	b.WriteString(s.Name)
	fmt.Fprintf(b, " %s", fmtDuration(s.Elapsed()))
	for _, a := range attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
	b.WriteByte('\n')
	for i, c := range children {
		if i == len(children)-1 {
			c.render(b, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			c.render(b, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// fmtDuration renders a duration with sensible precision.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}
