package telemetry

import (
	"fmt"
	"strings"
	"time"

	"tango/internal/rel"
	"tango/internal/types"
)

// OpStats is the measured execution profile of one physical operator:
// Next-call and row counts, produced bytes, and cumulative (inclusive)
// wall time spent in Open/Next/Close. OpStats form a tree mirroring
// the operator tree; self time is inclusive time minus the children's.
//
// Fields are written by a single goroutine (the one driving the
// iterator) and must only be read after the query completes.
type OpStats struct {
	// Op is the operator label, e.g. "TAggr^M" or "scan(POSITION)".
	Op string
	// Node optionally links back to the plan node that produced the
	// operator (an *algebra.Node for middleware plans); used by the
	// adaptive cost loop to compare estimates against observations.
	Node interface{}

	Opens int64
	Nexts int64
	Rows  int64
	Bytes int64
	// Time is the inclusive wall time (children included).
	Time time.Duration

	Children []*OpStats
}

// SelfTime is the operator's own wall time: inclusive minus children.
func (s *OpStats) SelfTime() time.Duration {
	d := s.Time
	for _, c := range s.Children {
		d -= c.Time
	}
	if d < 0 {
		d = 0
	}
	return d
}

// InputRows sums the rows produced by the direct children.
func (s *OpStats) InputRows() int64 {
	var n int64
	for _, c := range s.Children {
		n += c.Rows
	}
	return n
}

// InputBytes sums the bytes produced by the direct children.
func (s *OpStats) InputBytes() int64 {
	var n int64
	for _, c := range s.Children {
		n += c.Bytes
	}
	return n
}

// Walk visits the stats tree pre-order.
func (s *OpStats) Walk(fn func(*OpStats)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// Format renders the annotated operator tree (the body of EXPLAIN
// ANALYZE):
//
//	TAggr^M rows=733 nexts=734 bytes=23456 time=1.20ms self=0.80ms
//	└─ Sort^M rows=8400 ...
func (s *OpStats) Format() string {
	var b strings.Builder
	s.format(&b, "", "")
	return b.String()
}

func (s *OpStats) format(b *strings.Builder, prefix, childPrefix string) {
	b.WriteString(prefix)
	fmt.Fprintf(b, "%s rows=%d nexts=%d bytes=%d time=%s self=%s\n",
		s.Op, s.Rows, s.Nexts, s.Bytes, fmtDuration(s.Time), fmtDuration(s.SelfTime()))
	for i, c := range s.Children {
		if i == len(s.Children)-1 {
			c.format(b, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			c.format(b, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// Iter wraps a rel.Iterator and measures it. It satisfies rel.Iterator
// itself, so instrumentation composes transparently with any operator
// tree.
type Iter struct {
	in    rel.Iterator
	stats *OpStats
	// Sink, when set, receives the stats once on the first Close — used
	// to flush per-operator metrics into a Registry.
	Sink func(*OpStats)

	flushed bool
}

// Instrument wraps an iterator. children link the stats of already
// instrumented inputs into the tree (pass the instrumented input
// iterators; non-instrumented inputs are ignored).
func Instrument(op string, node interface{}, in rel.Iterator, children ...rel.Iterator) *Iter {
	st := &OpStats{Op: op, Node: node}
	for _, c := range children {
		if ci, ok := c.(*Iter); ok && ci != nil {
			st.Children = append(st.Children, ci.stats)
		}
	}
	return &Iter{in: in, stats: st}
}

// Stats returns the operator's stats node.
func (it *Iter) Stats() *OpStats { return it.stats }

// Unwrap returns the wrapped iterator, so code that type-asserts on
// concrete operator types (e.g. index-scan rewrites) can see through
// the instrumentation.
func (it *Iter) Unwrap() rel.Iterator { return it.in }

// Schema returns the wrapped iterator's schema.
func (it *Iter) Schema() types.Schema { return it.in.Schema() }

// Open opens the wrapped iterator, timing it.
func (it *Iter) Open() error {
	start := time.Now()
	err := it.in.Open()
	it.stats.Time += time.Since(start)
	it.stats.Opens++
	return err
}

// Next pulls the next tuple, timing the call and counting rows and
// bytes.
func (it *Iter) Next() (types.Tuple, bool, error) {
	start := time.Now()
	t, ok, err := it.in.Next()
	it.stats.Time += time.Since(start)
	it.stats.Nexts++
	if ok {
		it.stats.Rows++
		it.stats.Bytes += int64(t.ByteSize())
	}
	return t, ok, err
}

// NextBatch forwards the batch protocol through the instrumentation,
// so measured pipelines keep their batch fast paths: the wrapped
// iterator's NextBatch is used when it has one, one Next-equivalent
// call is counted per batch, and rows/bytes are attributed exactly as
// the tuple path would. When the wrapped operator is tuple-at-a-time,
// the tuples are passed through unchanged (no clone); batch validity is
// then whatever the operator provides, which for every operator in this
// codebase is a fresh or owned tuple.
func (it *Iter) NextBatch(dst []types.Tuple) (int, error) {
	start := time.Now()
	var n int
	var err error
	if b, ok := it.in.(rel.BatchIterator); ok {
		n, err = b.NextBatch(dst)
	} else {
		for n < len(dst) {
			t, ok2, e := it.in.Next()
			if e != nil || !ok2 {
				err = e
				break
			}
			dst[n] = t
			n++
		}
	}
	it.stats.Time += time.Since(start)
	it.stats.Nexts++
	it.stats.Rows += int64(n)
	for i := 0; i < n; i++ {
		it.stats.Bytes += int64(dst[i].ByteSize())
	}
	return n, err
}

// Close closes the wrapped iterator and flushes the stats to the Sink
// (once).
func (it *Iter) Close() error {
	start := time.Now()
	err := it.in.Close()
	it.stats.Time += time.Since(start)
	if !it.flushed && it.Sink != nil {
		it.flushed = true
		it.Sink(it.stats)
	}
	return err
}

// RecordOp flushes one operator's stats into the registry as
// per-operator series: tango_operator_seconds{engine,op} (self time),
// a rows-per-execution histogram, and rows/nexts/bytes totals.
func RecordOp(reg *Registry, engine string, s *OpStats) {
	if reg == nil || s == nil {
		return
	}
	l := Labels{"engine": engine, "op": s.Op}
	reg.Histogram("tango_operator_seconds", l, DurationBuckets).Observe(s.SelfTime().Seconds())
	reg.Histogram("tango_operator_rows", l, CountBuckets).Observe(float64(s.Rows))
	reg.Counter("tango_operator_rows_total", l).Add(s.Rows)
	reg.Counter("tango_operator_nexts_total", l).Add(s.Nexts)
	reg.Counter("tango_operator_bytes_total", l).Add(s.Bytes)
}

// RecordOpStats flushes a whole stats tree (every operator) into the
// registry via RecordOp.
func RecordOpStats(reg *Registry, engine string, root *OpStats) {
	if reg == nil || root == nil {
		return
	}
	root.Walk(func(s *OpStats) { RecordOp(reg, engine, s) })
}

// SinkTo returns a Sink function recording a single operator into the
// registry (used by engine-side instrumentation, where each operator
// flushes itself on Close).
func SinkTo(reg *Registry, engine string) func(*OpStats) {
	return func(s *OpStats) { RecordOp(reg, engine, s) }
}
