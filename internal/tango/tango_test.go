package tango

import (
	"strings"
	"testing"

	"tango/internal/algebra"
	"tango/internal/engine"
	"tango/internal/server"
	"tango/internal/tsql"
	"tango/internal/wire"
)

// openMW builds a middleware over a small POSITION relation.
func openMW(t *testing.T) *Middleware {
	t.Helper()
	db := engine.Open(engine.Config{})
	srv := server.New(db, wire.Latency{})
	mw := Open(srv, Options{HistogramBuckets: 8})
	mustExec := func(sql string) {
		t.Helper()
		if _, err := mw.Conn.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE POSITION (PosID INTEGER, EmpName VARCHAR(40), PayRate FLOAT, T1 INTEGER, T2 INTEGER)")
	mustExec(`INSERT INTO POSITION VALUES
		(1,'Tom',12.0,2,20),(1,'Jane',9.0,5,25),(2,'Tom',12.0,5,10),
		(2,'Ann',11.0,10,15),(3,'Bob',8.0,1,30)`)
	return mw
}

func TestMiddlewareRunEndToEnd(t *testing.T) {
	mw := openMW(t)
	plan, err := tsql.Parse(`VALIDTIME SELECT PosID, COUNT(PosID)
		FROM POSITION GROUP BY PosID ORDER BY PosID`, mw.Cat)
	if err != nil {
		t.Fatal(err)
	}
	out, res, err := mw.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cardinality() == 0 {
		t.Fatal("empty result")
	}
	if res.Classes <= 0 || res.Best == nil {
		t.Fatalf("optimizer report incomplete: %+v", res)
	}
	// The chosen plan must execute the aggregation in the middleware.
	mwAggr := false
	res.Best.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpTAggr && n.Loc() == algebra.LocMW {
			mwAggr = true
		}
	})
	if !mwAggr {
		t.Errorf("TAGGR not moved to middleware:\n%s", res.Best)
	}
}

func TestMiddlewareAdaptsFactors(t *testing.T) {
	mw := openMW(t)
	before := mw.Model.F.TM
	plan, err := tsql.Parse("VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION GROUP BY PosID", mw.Cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mw.Run(plan); err != nil {
		t.Fatal(err)
	}
	if mw.Model.F.TM == before {
		t.Error("transfer factor did not adapt from feedback")
	}
	// Adaptation disabled.
	mw2 := openMW(t)
	mw2.Alpha = -1 // negative disables (0 means "use default" in Open)
	mw2.Alpha = 0
	before2 := mw2.Model.F.TM
	plan2, _ := tsql.Parse("VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION GROUP BY PosID", mw2.Cat)
	if _, _, err := mw2.Run(plan2); err != nil {
		t.Fatal(err)
	}
	if mw2.Model.F.TM != before2 {
		t.Error("alpha=0 should disable adaptation")
	}
}

func TestMiddlewareCalibrate(t *testing.T) {
	mw := openMW(t)
	def := mw.Model.F
	if err := mw.Calibrate(1500); err != nil {
		t.Fatal(err)
	}
	if mw.Model.F == def {
		t.Error("calibration left default factors")
	}
	if mw.Model.F.TM <= 0 || mw.Model.F.TAggrD1 <= 0 {
		t.Errorf("bad calibrated factors: %+v", mw.Model.F)
	}
}

func TestMiddlewareExplain(t *testing.T) {
	mw := openMW(t)
	plan, err := tsql.Parse("VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION GROUP BY PosID", mw.Cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := mw.Explain(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cost", "classes", "TAGGR"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestCoalesceQueryEndToEnd(t *testing.T) {
	mw := openMW(t)
	// Tom holds position 9 over two meeting periods: coalescing must
	// merge them into one row.
	if _, err := mw.Conn.Exec(
		"INSERT INTO POSITION VALUES (9,'Tom',10.0,1,5),(9,'Tom',10.0,5,9)"); err != nil {
		t.Fatal(err)
	}
	sel, err := tsql.Parse(`VALIDTIME COALESCE SELECT PosID, EmpName, T1, T2
		FROM POSITION WHERE PosID = 9 ORDER BY T1`, mw.Cat)
	if err != nil {
		t.Fatal(err)
	}
	out, res, err := mw.Run(sel)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cardinality() != 1 {
		t.Fatalf("coalesce result:\n%v\nplan:\n%s", out, res.Best)
	}
	row := out.Tuples[0]
	t1 := out.Schema.MustIndex("T1")
	t2 := out.Schema.MustIndex("T2")
	if row[t1].AsInt() != 1 || row[t2].AsInt() != 9 {
		t.Errorf("merged period = [%v, %v), want [1, 9)", row[t1], row[t2])
	}
	// The coalescing must have been moved into the middleware.
	mwCoal := false
	res.Best.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpCoalesce && n.Loc() == algebra.LocMW {
			mwCoal = true
		}
	})
	if !mwCoal {
		t.Errorf("coalesce not in middleware:\n%s", res.Best)
	}
}

func TestDupElimMovable(t *testing.T) {
	mw := openMW(t)
	plan := algebra.TM(algebra.DupElim(
		algebra.ProjectCols(algebra.Scan("POSITION", ""), "EmpName")))
	res, err := mw.Optimize(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Both locations must appear among the candidates.
	locs := map[algebra.Location]bool{}
	for _, c := range res.Candidates {
		c.Plan.Walk(func(n *algebra.Node) {
			if n.Op == algebra.OpDupElim {
				locs[n.Loc()] = true
			}
		})
	}
	if !locs[algebra.LocDBMS] || !locs[algebra.LocMW] {
		t.Errorf("dupelim should be considered on both sides: %v", locs)
	}
	out, err := mw.Execute(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cardinality() != 4 { // Tom, Jane, Ann, Bob
		t.Errorf("distinct names = %d\n%v", out.Cardinality(), out)
	}
}

func TestShareTransfers(t *testing.T) {
	db := engine.Open(engine.Config{})
	srv := server.New(db, wire.Latency{})
	mw := Open(srv, Options{HistogramBuckets: 8})
	if _, err := mw.Conn.Exec("CREATE TABLE POSITION (PosID INTEGER, EmpName VARCHAR(40), PayRate FLOAT, T1 INTEGER, T2 INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.Conn.Exec(
		"INSERT INTO POSITION VALUES (1,'Tom',12.0,2,20),(1,'Jane',9.0,5,25),(2,'Tom',12.0,5,10)"); err != nil {
		t.Fatal(err)
	}
	// A self-join whose two sides issue the identical SQL — the §7
	// refinement should issue the SELECT once.
	side := func() *algebra.Node {
		return algebra.Sort(
			algebra.ProjectCols(algebra.Scan("POSITION", "A"), "A.PosID", "A.EmpName", "A.T1", "A.T2"),
			"A.PosID")
	}
	mkPlan := func() *algebra.Node {
		return algebra.TJoin(
			algebra.TM(side()), algebra.TM(side()),
			[]string{"A.PosID"}, []string{"A.PosID"})
	}

	base := &Executor{Conn: mw.Conn, Cat: mw.Cat}
	qBefore, _, _ := srv.Counters()
	ref, err := base.Run(mkPlan())
	if err != nil {
		t.Fatal(err)
	}
	qMid, _, _ := srv.Counters()
	if qMid-qBefore != 2 {
		t.Fatalf("baseline issued %d queries, want 2", qMid-qBefore)
	}

	shared := &Executor{Conn: mw.Conn, Cat: mw.Cat, ShareTransfers: true}
	got, err := shared.Run(mkPlan())
	if err != nil {
		t.Fatal(err)
	}
	qAfter, _, _ := srv.Counters()
	if qAfter-qMid != 1 {
		t.Errorf("shared run issued %d queries, want 1", qAfter-qMid)
	}
	if got.Cardinality() != ref.Cardinality() || got.Cardinality() == 0 {
		t.Fatalf("shared transfers changed the result: %d vs %d rows",
			got.Cardinality(), ref.Cardinality())
	}
}
