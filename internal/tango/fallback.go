// Plan-level graceful degradation: when a transfer fails with a
// transient infrastructure error that survived the client's whole
// retry budget, the middleware does not give up — it re-sites the
// query by picking, from the optimizer's already-enumerated candidate
// list, the cheapest plan that avoids the failed wire direction, and
// executes that instead. The fallback is reported in the query's span
// tree ("fallback" child) and in tango_plan_fallbacks_total.
package tango

import (
	"errors"

	"tango/internal/algebra"
	"tango/internal/client"
	"tango/internal/optimizer"
	"tango/internal/planck"
	"tango/internal/rel"
	"tango/internal/telemetry"
	"tango/internal/wire"
)

// transferCounts tallies a plan's wire crossings.
func transferCounts(plan *algebra.Node) (tm, td int) {
	plan.Walk(func(n *algebra.Node) {
		switch n.Op {
		case algebra.OpTM:
			tm++
		case algebra.OpTD:
			td++
		}
	})
	return tm, td
}

// failedOp names the wire operation behind a degradable error
// ("query", "fetch", "load", "create", "drop", "exec", "stats", or ""
// when unknown).
func failedOp(err error) string {
	var oe *client.OpError
	if errors.As(err, &oe) {
		return oe.Op
	}
	var fe *wire.FaultError
	if errors.As(err, &fe) {
		return fe.Op.String()
	}
	return ""
}

// fallbackPlan picks a replacement plan from the candidate list after
// err killed res.Best. The choice re-sites the query away from the
// failed wire direction:
//
//   - load/insert/create/drop failures poison the middleware → DBMS
//     direction, so the fallback is the cheapest candidate with no T^D
//     (nothing is ever shipped down again);
//   - fetch/query/stats failures indicate a generally flaky wire, so
//     the fallback minimizes total wire crossings (T^M + T^D),
//     breaking ties by cost (candidates are cost-sorted).
//
// The fallback must differ from the failed plan (by plan key); ok is
// false when no such candidate exists.
func fallbackPlan(res *optimizer.Result, err error) (cand optimizer.Candidate, ok bool) {
	if res == nil || len(res.Candidates) < 2 {
		return optimizer.Candidate{}, false
	}
	failedKey := res.Best.Key()
	switch failedOp(err) {
	case "load", "insert", "create", "drop", "exec":
		for _, c := range res.Candidates {
			if c.Plan.Key() == failedKey {
				continue
			}
			if _, td := transferCounts(c.Plan); td == 0 {
				return c, true
			}
		}
	default: // "query", "fetch", "stats", or unknown: minimize crossings
		best := optimizer.Candidate{}
		bestCross := -1
		for _, c := range res.Candidates {
			if c.Plan.Key() == failedKey {
				continue
			}
			tm, td := transferCounts(c.Plan)
			if cross := tm + td; bestCross < 0 || cross < bestCross {
				best, bestCross = c, cross
			}
		}
		if bestCross >= 0 {
			return best, true
		}
	}
	return optimizer.Candidate{}, false
}

// runWithFallback executes res.Best and, when it fails with a
// degradable infrastructure error, re-sites the query onto a fallback
// candidate and retries once. The returned executor is the one whose
// run produced the result (for feedback absorption); the fallback, if
// taken, appears as a "fallback" child of root and bumps
// tango_plan_fallbacks_total{op}.
func (m *Middleware) runWithFallback(res *optimizer.Result, root *telemetry.Span, analyze bool) (*rel.Relation, *Executor, error) {
	ex := m.newExecutor(root, analyze)
	out, err := ex.Run(res.Best)
	if err == nil {
		return out, ex, nil
	}
	if !client.Degradable(err) {
		return nil, nil, err
	}
	cand, ok := fallbackPlan(res, err)
	if !ok {
		return nil, nil, err
	}
	op := failedOp(err)
	sp := root.Child("fallback")
	sp.Set("cause", err.Error())
	sp.Set("op", op)
	sp.SetFloat("cost", cand.Cost)
	tm, td := transferCounts(cand.Plan)
	sp.SetInt("tm", int64(tm))
	sp.SetInt("td", int64(td))
	if m.Metrics != nil {
		m.Metrics.Counter("tango_plan_fallbacks_total", telemetry.Labels{"op": op}).Inc()
	}
	if m.CheckPlans {
		if cerr := planck.Check(cand.Plan, m.Cat); cerr != nil {
			sp.Finish()
			return nil, nil, errors.Join(err, cerr)
		}
	}
	ex2 := m.newExecutor(sp, analyze)
	out, err2 := ex2.Run(cand.Plan)
	sp.Finish()
	if err2 != nil {
		// Both plans failed; surface the original infrastructure error
		// with the fallback's failure attached.
		return nil, nil, errors.Join(err, err2)
	}
	return out, ex2, nil
}
