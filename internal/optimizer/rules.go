// Package optimizer implements TANGO's query optimizer: a
// Volcano-style transformation engine over the middleware algebra. The
// transformation rules are the paper's T1–T12 heuristics and E1–E5
// equivalences (§4); candidate plans are enumerated in phase one and
// costed with the cost model in phase two, and the optimizer reports
// its equivalence-class and element counts the way the paper does for
// each experiment query.
package optimizer

import (
	"strings"

	"tango/internal/algebra"
	"tango/internal/eval"
	"tango/internal/sqlast"
)

// Rule is one transformation: given a subtree root, it returns zero or
// more rewritten subtree roots (freshly cloned).
type Rule struct {
	Name  string
	Group int // heuristic group (1, 2) or 0 for equivalences
	Apply func(n *algebra.Node) []*algebra.Node
}

// DefaultRules returns the rule set of §4. The catalog is needed by
// the heuristic-group-4 selection pushdown, which must resolve which
// join input a predicate refers to.
func DefaultRules(cat algebra.Catalog) []Rule {
	return []Rule{
		{Name: "T1-taggr-to-mw", Group: 1, Apply: ruleT1},
		{Name: "T2-join-to-mw", Group: 1, Apply: ruleT2},
		{Name: "T3-tjoin-to-mw", Group: 1, Apply: ruleT3},
		{Name: "T4-select-above-tm", Group: 1, Apply: ruleT4},
		{Name: "T5-project-above-tm", Group: 1, Apply: ruleT5},
		{Name: "T6-sort-above-tm", Group: 1, Apply: ruleT6},
		{Name: "T7-collapse-tm-td", Group: 2, Apply: ruleT7},
		{Name: "T8-collapse-td-tm", Group: 2, Apply: ruleT8},
		{Name: "T10-drop-redundant-sort", Group: 2, Apply: ruleT10},
		{Name: "T11-drop-sort-before-td", Group: 2, Apply: ruleT11},
		{Name: "T12-collapse-sorts", Group: 2, Apply: ruleT12},
		{Name: "E1-project-select-commute", Group: 0, Apply: ruleE1},
		{Name: "E2-join-commute", Group: 0, Apply: joinCommute(cat)},
		{Name: "E4-sort-select-commute", Group: 0, Apply: ruleE4},
		{Name: "E5-sort-project-commute", Group: 0, Apply: ruleE5},
		{Name: "G4-select-below-join", Group: 4, Apply: selectBelowJoin(cat)},
		{Name: "G4-narrow-taggr-input", Group: 4, Apply: narrowTAggrInput(cat)},
		{Name: "T5r-project-below-tm", Group: 4, Apply: ruleProjectBelowTM},
		{Name: "TC1-coalesce-to-mw", Group: 1, Apply: coalesceToMW(cat)},
		{Name: "TD1-dupelim-to-mw", Group: 1, Apply: ruleDupElimToMW},
		{Name: "VC1-select-coalesce-commute", Group: 0, Apply: ruleSelectCoalesce},
	}
}

// coalesceToMW moves a DBMS-resident coalescing to the middleware —
// mandatory, since coalescing has no SQL translation (the paper lists
// it among the operators "that may later be added to TANGO"):
// coal(r) →M T^D(coal(T^M(sort_{attrs,T1}(r)))). COALESCE^M requires
// its input sorted on all non-time attributes and T1.
func coalesceToMW(cat algebra.Catalog) func(n *algebra.Node) []*algebra.Node {
	return func(n *algebra.Node) []*algebra.Node {
		if n.Op != algebra.OpCoalesce || n.Loc() != algebra.LocDBMS {
			return nil
		}
		schema, err := n.Left.Schema(cat)
		if err != nil {
			return nil
		}
		t1, t2 := algebra.TimeColumns(schema)
		if t1 < 0 || t2 < 0 {
			return nil
		}
		var keys []string
		for i, c := range schema.Cols {
			if i != t1 && i != t2 {
				keys = append(keys, c.Name)
			}
		}
		keys = append(keys, schema.Cols[t1].Name)
		moved := algebra.TD(algebra.Coalesce(
			algebra.TM(algebra.Sort(n.Left.Clone(), keys...))))
		return []*algebra.Node{moved}
	}
}

// ruleDupElimToMW offers a middleware alternative for duplicate
// elimination (hash-based, no sort requirement):
// rdup(r) →M T^D(rdup(T^M(r))).
func ruleDupElimToMW(n *algebra.Node) []*algebra.Node {
	if n.Op != algebra.OpDupElim || n.Loc() != algebra.LocDBMS {
		return nil
	}
	return []*algebra.Node{
		algebra.TD(algebra.DupElim(algebra.TM(n.Left.Clone()))),
	}
}

// ruleSelectCoalesce adopts Vassilakis's coalesce/selection
// optimization (§6 of the paper): a non-temporal selection commutes
// with coalescing, σ_P(coal(r)) ≡ coal(σ_P(r)), letting the selection
// shrink the coalescing argument. Predicates over T1/T2 must not move:
// coalescing changes the periods.
func ruleSelectCoalesce(n *algebra.Node) []*algebra.Node {
	timeFree := func(pred sqlast.Expr) bool {
		for _, c := range eval.ExprColumns(pred) {
			u := strings.ToUpper(algebra.Unqualify(c))
			if u == "T1" || u == "T2" {
				return false
			}
		}
		return true
	}
	var out []*algebra.Node
	if n.Op == algebra.OpSelect && n.Left.Op == algebra.OpCoalesce && timeFree(n.Pred) {
		out = append(out, algebra.Coalesce(algebra.Select(n.Left.Left.Clone(), n.Pred)))
	}
	if n.Op == algebra.OpCoalesce && n.Left.Op == algebra.OpSelect && timeFree(n.Left.Pred) {
		out = append(out, algebra.Select(algebra.Coalesce(n.Left.Left.Clone()), n.Left.Pred))
	}
	return out
}

// ruleT1 moves a DBMS-resident temporal aggregation to the middleware:
// ξ(r) →M T^D(ξ(T^M(sort_{G,T1}(r)))). The sort feeds the TAGGR^M
// requirement of §3.4.
func ruleT1(n *algebra.Node) []*algebra.Node {
	if n.Op != algebra.OpTAggr || n.Loc() != algebra.LocDBMS {
		return nil
	}
	keys := append(append([]string{}, n.GroupBy...), "T1")
	moved := algebra.TD(algebra.TAggr(
		algebra.TM(algebra.Sort(n.Left.Clone(), keys...)),
		append([]string{}, n.GroupBy...),
		append([]algebra.Agg{}, n.Aggs...)...))
	return []*algebra.Node{moved}
}

// ruleT2 moves a DBMS join to the middleware as a sort-merge join:
// r1 ⋈ r2 →M T^D(T^M(sort_{a1}(r1)) ⋈ T^M(sort_{a2}(r2))).
func ruleT2(n *algebra.Node) []*algebra.Node {
	if n.Op != algebra.OpJoin || n.Loc() != algebra.LocDBMS {
		return nil
	}
	moved := algebra.TD(algebra.Join(
		algebra.TM(algebra.Sort(n.Left.Clone(), n.LeftCols...)),
		algebra.TM(algebra.Sort(n.Right.Clone(), n.RightCols...)),
		append([]string{}, n.LeftCols...),
		append([]string{}, n.RightCols...)))
	return []*algebra.Node{moved}
}

// ruleT3 is T2 for temporal joins.
func ruleT3(n *algebra.Node) []*algebra.Node {
	if n.Op != algebra.OpTJoin || n.Loc() != algebra.LocDBMS {
		return nil
	}
	moved := algebra.TD(algebra.TJoin(
		algebra.TM(algebra.Sort(n.Left.Clone(), n.LeftCols...)),
		algebra.TM(algebra.Sort(n.Right.Clone(), n.RightCols...)),
		append([]string{}, n.LeftCols...),
		append([]string{}, n.RightCols...)))
	return []*algebra.Node{moved}
}

// ruleT4: T^M(σ_P(r)) →M σ_P(T^M(r)) — evaluate the selection in the
// middleware instead.
func ruleT4(n *algebra.Node) []*algebra.Node {
	if n.Op != algebra.OpTM || n.Left.Op != algebra.OpSelect {
		return nil
	}
	return []*algebra.Node{
		algebra.Select(algebra.TM(n.Left.Left.Clone()), n.Left.Pred),
	}
}

// ruleT5: T^M(π(r)) →M π(T^M(r)).
func ruleT5(n *algebra.Node) []*algebra.Node {
	if n.Op != algebra.OpTM || n.Left.Op != algebra.OpProject {
		return nil
	}
	return []*algebra.Node{
		algebra.Project(algebra.TM(n.Left.Left.Clone()), append([]algebra.ProjCol{}, n.Left.Cols...)...),
	}
}

// ruleT6: T^M(sort_A(r)) →L sort_A(T^M(r)) — list equivalence because
// T^M preserves order.
func ruleT6(n *algebra.Node) []*algebra.Node {
	if n.Op != algebra.OpTM || n.Left.Op != algebra.OpSort {
		return nil
	}
	return []*algebra.Node{
		algebra.Sort(algebra.TM(n.Left.Left.Clone()), append([]string{}, n.Left.Keys...)...),
	}
}

// ruleT7: T^M(T^D(r)) →M r.
func ruleT7(n *algebra.Node) []*algebra.Node {
	if n.Op != algebra.OpTM || n.Left.Op != algebra.OpTD {
		return nil
	}
	return []*algebra.Node{n.Left.Left.Clone()}
}

// ruleT8: T^D(T^M(r)) →M r.
func ruleT8(n *algebra.Node) []*algebra.Node {
	if n.Op != algebra.OpTD || n.Left.Op != algebra.OpTM {
		return nil
	}
	return []*algebra.Node{n.Left.Left.Clone()}
}

// ruleT10: sort_A(r) →L r when A is a prefix of Order(r).
func ruleT10(n *algebra.Node) []*algebra.Node {
	if n.Op != algebra.OpSort {
		return nil
	}
	if isPrefixOf(n.Keys, Order(n.Left)) {
		return []*algebra.Node{n.Left.Clone()}
	}
	return nil
}

// ruleT11: sort_A(r) →M r when the order is destroyed immediately
// anyway — we apply the paper's multiset-equivalence sort elimination
// in its one always-safe spot: a sort directly under a T^D (loading
// into a DBMS table discards order).
func ruleT11(n *algebra.Node) []*algebra.Node {
	if n.Op != algebra.OpTD || n.Left.Op != algebra.OpSort {
		return nil
	}
	return []*algebra.Node{algebra.TD(n.Left.Left.Clone())}
}

// ruleT12: sort_A(sort_B(r)) →L sort_A(r) when B is a prefix of A.
func ruleT12(n *algebra.Node) []*algebra.Node {
	if n.Op != algebra.OpSort || n.Left.Op != algebra.OpSort {
		return nil
	}
	if isPrefixOf(n.Left.Keys, n.Keys) {
		return []*algebra.Node{algebra.Sort(n.Left.Left.Clone(), n.Keys...)}
	}
	return nil
}

// ruleE1: π(σ_P(r)) ≡L σ_P(π(r)), left-to-right only when the
// predicate's attributes survive the projection; both directions
// generated where legal.
func ruleE1(n *algebra.Node) []*algebra.Node {
	var out []*algebra.Node
	if n.Op == algebra.OpProject && n.Left.Op == algebra.OpSelect {
		// π(σ(r)) → σ(π(r)) requires attrs(P) ⊆ projected outputs.
		if predColsSurvive(n.Left.Pred, n.Cols) {
			out = append(out, algebra.Select(
				algebra.Project(n.Left.Left.Clone(), append([]algebra.ProjCol{}, n.Cols...)...),
				renamePred(n.Left.Pred, n.Cols)))
		}
	}
	if n.Op == algebra.OpSelect && n.Left.Op == algebra.OpProject {
		// σ(π(r)) → π(σ(r)): rewrite the predicate to source names.
		if pred, ok := unrenamePred(n.Pred, n.Left.Cols); ok {
			out = append(out, algebra.Project(
				algebra.Select(n.Left.Left.Clone(), pred),
				append([]algebra.ProjCol{}, n.Left.Cols...)...))
		}
	}
	return out
}

// joinCommute is E2: r1 ⋈ r2 ≡M r2 ⋈ r1. Commuting swaps the output
// column order, so the rewrite wraps the swapped join in a projection
// restoring the original order — making the plans equivalent as
// relations, not merely up to column permutation. The rule skips
// inputs whose schemas cannot be resolved or whose column names
// collide (an unaliased self-join).
func joinCommute(cat algebra.Catalog) func(n *algebra.Node) []*algebra.Node {
	return func(n *algebra.Node) []*algebra.Node {
		if n.Op != algebra.OpJoin {
			return nil
		}
		orig, err := n.Schema(cat)
		if err != nil {
			return nil
		}
		seen := map[string]bool{}
		cols := make([]algebra.ProjCol, orig.Len())
		for i, c := range orig.Cols {
			key := strings.ToUpper(c.Name)
			if seen[key] {
				return nil
			}
			seen[key] = true
			cols[i] = algebra.ProjCol{Src: c.Name, As: c.Name}
		}
		swapped := algebra.Join(
			n.Right.Clone(), n.Left.Clone(),
			append([]string{}, n.RightCols...),
			append([]string{}, n.LeftCols...))
		return []*algebra.Node{algebra.Project(swapped, cols...)}
	}
}

// ruleE4: sort_A(σ_P(r)) ≡L σ_P(sort_A(r)); used only when the
// operations are middleware-resident (the paper's restriction).
func ruleE4(n *algebra.Node) []*algebra.Node {
	var out []*algebra.Node
	if n.Op == algebra.OpSort && n.Left.Op == algebra.OpSelect && n.Loc() == algebra.LocMW {
		out = append(out, algebra.Select(
			algebra.Sort(n.Left.Left.Clone(), append([]string{}, n.Keys...)...),
			n.Left.Pred))
	}
	if n.Op == algebra.OpSelect && n.Left.Op == algebra.OpSort && n.Loc() == algebra.LocMW {
		out = append(out, algebra.Sort(
			algebra.Select(n.Left.Left.Clone(), n.Pred),
			append([]string{}, n.Left.Keys...)...))
	}
	return out
}

// narrowTAggrInput is the paper's "reduce the arguments of expensive
// operations" applied to projection: temporal aggregation needs only
// its grouping columns, aggregate columns, and the period; extra input
// columns only inflate sorts and transfers. The rule inserts that
// projection directly below the aggregation; E5/T5r then push it
// toward the scan.
func narrowTAggrInput(cat algebra.Catalog) func(n *algebra.Node) []*algebra.Node {
	return func(n *algebra.Node) []*algebra.Node {
		if n.Op != algebra.OpTAggr {
			return nil
		}
		if n.Left.Op == algebra.OpProject {
			return nil // already narrowed (or user-projected)
		}
		in, err := n.Left.Schema(cat)
		if err != nil {
			return nil
		}
		needed := map[int]bool{}
		keep := func(col string) bool {
			j := in.ColumnIndex(col)
			if j < 0 {
				return false
			}
			needed[j] = true
			return true
		}
		for _, g := range n.GroupBy {
			if !keep(g) {
				return nil
			}
		}
		for _, a := range n.Aggs {
			if !keep(a.Col) {
				return nil
			}
		}
		t1, t2 := algebra.TimeColumns(in)
		if t1 < 0 || t2 < 0 {
			return nil
		}
		needed[t1], needed[t2] = true, true
		if len(needed) >= in.Len() {
			return nil // nothing to trim
		}
		var cols []algebra.ProjCol
		for i, c := range in.Cols {
			if needed[i] {
				cols = append(cols, algebra.ProjCol{Src: c.Name, As: c.Name})
			}
		}
		out := n.Clone()
		out.Left = algebra.Project(n.Left.Clone(), cols...)
		return []*algebra.Node{out}
	}
}

// ruleProjectBelowTM is T5 read right-to-left: π(T^M(r)) →M T^M(π(r)),
// pushing a projection into the DBMS so the transfer ships fewer
// bytes. (The paper notes that introducing projections into DBMS parts
// helps the optimizer estimate — and here reduce — transfer costs.)
//
// When the DBMS subtree is topped by a sort, the projection must land
// BELOW it — T^M only preserves order when the sort stays on top of
// the translated SQL (it becomes the statement's ORDER BY). Burying
// the sort under a projection would silently drop the order a
// downstream TAGGR^M or merge join depends on; the rule therefore only
// fires when the sort keys survive the projection, and keeps the sort
// outermost.
func ruleProjectBelowTM(n *algebra.Node) []*algebra.Node {
	if n.Op != algebra.OpProject || n.Left.Op != algebra.OpTM {
		return nil
	}
	inner := n.Left.Left
	cols := append([]algebra.ProjCol{}, n.Cols...)
	if inner.Op != algebra.OpSort {
		return []*algebra.Node{algebra.TM(algebra.Project(inner.Clone(), cols...))}
	}
	keys, ok := outputKeys(inner.Keys, cols)
	if !ok {
		return nil // a sort key would not survive the projection
	}
	return []*algebra.Node{
		algebra.TM(algebra.Sort(algebra.Project(inner.Left.Clone(), cols...), keys...)),
	}
}

// ruleE5: sort_A(π(r)) ≡L π(sort_A(r)). The paper restricts E4/E5 to
// middleware-resident operations except where a rewrite helps the
// optimizer estimate DBMS costs — pushing projections below sorts
// changes (and reduces) estimated transfer sizes, so the
// project-below-sort direction is allowed in both locations.
func ruleE5(n *algebra.Node) []*algebra.Node {
	var out []*algebra.Node
	if n.Op == algebra.OpSort && n.Left.Op == algebra.OpProject && n.Loc() == algebra.LocMW {
		// Keys are output names; translate them to source names.
		if keys, ok := sourceKeys(n.Keys, n.Left.Cols); ok {
			out = append(out, algebra.Project(
				algebra.Sort(n.Left.Left.Clone(), keys...),
				append([]algebra.ProjCol{}, n.Left.Cols...)...))
		}
	}
	if n.Op == algebra.OpProject && n.Left.Op == algebra.OpSort {
		// π(sort_A(r)) → sort_A'(π(r)) requires A to survive the
		// projection under its output name. Allowed in both locations
		// (see the doc comment above).
		if keys, ok := outputKeys(n.Left.Keys, n.Cols); ok {
			out = append(out, algebra.Sort(
				algebra.Project(n.Left.Left.Clone(), append([]algebra.ProjCol{}, n.Cols...)...),
				keys...))
		}
	}
	return out
}

// selectBelowJoin is a heuristic-group-4 rewrite ("reduce the
// arguments of expensive operations"): σ_P(r1 ⋈ r2) is rewritten to
// push P into the join input that can resolve all its columns,
// shrinking the expensive operator's argument.
func selectBelowJoin(cat algebra.Catalog) func(n *algebra.Node) []*algebra.Node {
	return func(n *algebra.Node) []*algebra.Node {
		if n.Op != algebra.OpSelect {
			return nil
		}
		j := n.Left
		if j.Op != algebra.OpJoin && j.Op != algebra.OpTJoin {
			return nil
		}
		cols := eval.ExprColumns(n.Pred)
		if j.Op == algebra.OpTJoin {
			// The temporal join replaces T1/T2 with the intersected
			// period; predicates over them cannot move below it.
			for _, c := range cols {
				u := strings.ToUpper(algebra.Unqualify(c))
				if u == "T1" || u == "T2" {
					return nil
				}
			}
		}
		resolves := func(in *algebra.Node) bool {
			schema, err := in.Schema(cat)
			if err != nil {
				return false
			}
			for _, c := range cols {
				if schema.ColumnIndex(c) < 0 {
					return false
				}
			}
			return true
		}
		mk := func(left, right *algebra.Node) *algebra.Node {
			out := j.Clone()
			out.Left, out.Right = left, right
			return out
		}
		var rewrites []*algebra.Node
		if resolves(j.Left) {
			rewrites = append(rewrites, mk(algebra.Select(j.Left.Clone(), n.Pred), j.Right.Clone()))
		}
		if resolves(j.Right) {
			rewrites = append(rewrites, mk(j.Left.Clone(), algebra.Select(j.Right.Clone(), n.Pred)))
		}
		return rewrites
	}
}

// --- helpers ---

// Order computes the output order of a subtree (column names), the
// paper's Order(r). Middleware algorithms preserve order. In the DBMS,
// order exists only through the statement's final ORDER BY: a sort is
// authoritative exactly when it is the topmost operator the SQL
// translation sees, so any DBMS-resident operator ABOVE a sort
// destroys the guarantee (the translator skips mid-plan sorts, as real
// DBMSs give no order promises on subqueries).
func Order(n *algebra.Node) []string {
	if n == nil {
		return nil
	}
	switch n.Op {
	case algebra.OpSort:
		// Authoritative where directly consumed: a MW sort always
		// orders; a DBMS sort orders its consumer only when nothing
		// DBMS-resident sits above it, which the cases below enforce by
		// refusing to propagate order through DBMS operators.
		return n.Keys
	case algebra.OpScan, algebra.OpTD:
		return nil
	case algebra.OpTAggr:
		// TAGGR^M emits groups in input group order with ascending T1.
		if n.Loc() == algebra.LocMW {
			return append(append([]string{}, n.GroupBy...), "T1")
		}
		return nil
	case algebra.OpTM:
		return Order(n.Left)
	case algebra.OpSelect, algebra.OpDupElim, algebra.OpCoalesce:
		if n.Loc() == algebra.LocDBMS {
			return nil // would bury any sort below it in the SQL
		}
		return Order(n.Left)
	case algebra.OpProject:
		if n.Loc() == algebra.LocDBMS {
			return nil
		}
		// Order survives if its columns survive the projection.
		in := Order(n.Left)
		var out []string
		for _, k := range in {
			kept := ""
			for _, pc := range n.Cols {
				if strings.EqualFold(pc.Src, k) || strings.EqualFold(algebra.Unqualify(pc.Src), algebra.Unqualify(k)) {
					kept = pc.Out()
					break
				}
			}
			if kept == "" {
				break
			}
			out = append(out, kept)
		}
		return out
	case algebra.OpJoin, algebra.OpTJoin:
		if n.Loc() == algebra.LocMW {
			return Order(n.Left) // merge joins follow the left input
		}
		return nil
	default:
		return nil
	}
}

// isPrefixOf reports whether a is a (case-insensitive, qualifier
// tolerant) prefix of b.
func isPrefixOf(a, b []string) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i], b[i]) &&
			!strings.EqualFold(algebra.Unqualify(a[i]), algebra.Unqualify(b[i])) {
			return false
		}
	}
	return true
}

// predColsSurvive reports whether every predicate column appears among
// the projection sources (so the predicate can run after projection).
func predColsSurvive(pred sqlast.Expr, cols []algebra.ProjCol) bool {
	for _, c := range eval.ExprColumns(pred) {
		found := false
		for _, pc := range cols {
			if strings.EqualFold(pc.Src, c) || strings.EqualFold(algebra.Unqualify(pc.Src), algebra.Unqualify(c)) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// renamePred rewrites predicate column references from projection
// sources to outputs.
func renamePred(pred sqlast.Expr, cols []algebra.ProjCol) sqlast.Expr {
	mapping := map[string]string{}
	for _, pc := range cols {
		mapping[strings.ToUpper(pc.Src)] = pc.Out()
		mapping[strings.ToUpper(algebra.Unqualify(pc.Src))] = pc.Out()
	}
	return mapCols(pred, mapping)
}

// unrenamePred rewrites predicate column references from projection
// outputs back to sources; fails when a referenced column is not an
// output.
func unrenamePred(pred sqlast.Expr, cols []algebra.ProjCol) (sqlast.Expr, bool) {
	mapping := map[string]string{}
	for _, pc := range cols {
		mapping[strings.ToUpper(pc.Out())] = pc.Src
	}
	ok := true
	for _, c := range eval.ExprColumns(pred) {
		if _, found := mapping[strings.ToUpper(c)]; !found {
			ok = false
		}
	}
	if !ok {
		return nil, false
	}
	return mapCols(pred, mapping), true
}

func mapCols(e sqlast.Expr, mapping map[string]string) sqlast.Expr {
	switch x := e.(type) {
	case sqlast.ColumnRef:
		name := x.Name
		if x.Table != "" {
			name = x.Table + "." + x.Name
		}
		if to, ok := mapping[strings.ToUpper(name)]; ok {
			return colRefOf(to)
		}
		return x
	case sqlast.BinaryExpr:
		return sqlast.BinaryExpr{Op: x.Op, Left: mapCols(x.Left, mapping), Right: mapCols(x.Right, mapping)}
	case sqlast.UnaryExpr:
		return sqlast.UnaryExpr{Op: x.Op, Operand: mapCols(x.Operand, mapping)}
	case sqlast.FuncCall:
		args := make([]sqlast.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = mapCols(a, mapping)
		}
		return sqlast.FuncCall{Name: x.Name, Args: args, Distinct: x.Distinct}
	case sqlast.Between:
		return sqlast.Between{Expr: mapCols(x.Expr, mapping), Lo: mapCols(x.Lo, mapping), Hi: mapCols(x.Hi, mapping), Not: x.Not}
	case sqlast.IsNull:
		return sqlast.IsNull{Expr: mapCols(x.Expr, mapping), Not: x.Not}
	default:
		return e
	}
}

func colRefOf(name string) sqlast.ColumnRef {
	if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
		return sqlast.ColumnRef{Table: name[:dot], Name: name[dot+1:]}
	}
	return sqlast.ColumnRef{Name: name}
}

// sourceKeys maps sort keys expressed as projection outputs back to
// source names.
func sourceKeys(keys []string, cols []algebra.ProjCol) ([]string, bool) {
	out := make([]string, len(keys))
	for i, k := range keys {
		found := false
		for _, pc := range cols {
			if strings.EqualFold(pc.Out(), k) {
				out[i] = pc.Src
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}

// outputKeys maps sort keys expressed as source names to projection
// outputs.
func outputKeys(keys []string, cols []algebra.ProjCol) ([]string, bool) {
	out := make([]string, len(keys))
	for i, k := range keys {
		found := false
		for _, pc := range cols {
			if strings.EqualFold(pc.Src, k) || strings.EqualFold(algebra.Unqualify(pc.Src), algebra.Unqualify(k)) {
				out[i] = pc.Out()
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}
