package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"tango/internal/storage"
	"tango/internal/types"
)

// gateStore wraps a Store and parks AppendPage on a channel once
// armed: the reader-not-blocked proof freezes a bulk load mid-extent
// while snapshot readers keep querying.
type gateStore struct {
	storage.Store
	mu      sync.Mutex
	armed   bool
	after   int // appends to allow before parking
	parked  chan struct{}
	release chan struct{}
}

func newGateStore() *gateStore {
	return &gateStore{
		Store:   storage.NewDisk(),
		parked:  make(chan struct{}),
		release: make(chan struct{}),
	}
}

// arm makes the n+1-th AppendPage from now block until release is
// closed.
func (g *gateStore) arm(n int) {
	g.mu.Lock()
	g.armed, g.after = true, n
	g.mu.Unlock()
}

func (g *gateStore) AppendPage(id storage.FileID) (int32, error) {
	g.mu.Lock()
	trip := g.armed && g.after <= 0
	if g.armed {
		g.after--
	}
	g.mu.Unlock()
	if trip {
		g.mu.Lock()
		g.armed = false
		g.mu.Unlock()
		close(g.parked)
		<-g.release
	}
	return g.Store.AppendPage(id)
}

// TestSnapshotReaderNotBlockedByLoad is the tentpole proof: a T^D bulk
// load parked inside a storage AppendPage must not block snapshot
// readers — they complete queries against both pre-existing tables and
// the load target (seeing its pre-load state) while the load is frozen.
func TestSnapshotReaderNotBlockedByLoad(t *testing.T) {
	gate := newGateStore()
	db := OpenWith(gate, Config{})

	if _, err := db.Exec("CREATE TABLE SRC (K INTEGER, V INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Insert("SRC", types.Tuple{types.Int(int64(i)), types.Int(int64(i * 2))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("CREATE TABLE BIG (K INTEGER, V INTEGER)"); err != nil {
		t.Fatal(err)
	}
	preSeq := db.CommitSeq()

	// Park the load after two fresh extents.
	gate.arm(2)
	rows := make([]types.Tuple, 2000)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(i))}
	}
	loadDone := make(chan error, 1)
	go func() { loadDone <- db.BulkLoad("BIG", rows) }()

	select {
	case <-gate.parked:
	case <-time.After(5 * time.Second):
		t.Fatal("load never reached the gate")
	case err := <-loadDone:
		t.Fatalf("load finished without parking: %v", err)
	}

	// The load is frozen inside the store. Every read below must
	// complete; a reader that blocks behind the writer deadlocks the
	// test (the gate only opens after the reads finish).
	r, err := db.QueryAll("SELECT COUNT(K) FROM SRC")
	if err != nil {
		t.Fatalf("read during load: %v", err)
	}
	if got := r.Tuples[0][0].AsInt(); got != 50 {
		t.Fatalf("SRC count during load = %d, want 50", got)
	}
	r, err = db.QueryAll("SELECT COUNT(K) FROM BIG")
	if err != nil {
		t.Fatalf("read load target during load: %v", err)
	}
	if got := r.Tuples[0][0].AsInt(); got != 0 {
		t.Fatalf("BIG visible mid-load: count = %d, want 0 (torn read)", got)
	}
	if seq := db.CommitSeq(); seq != preSeq {
		t.Fatalf("commit seq advanced mid-load: %d -> %d", preSeq, seq)
	}

	close(gate.release)
	if err := <-loadDone; err != nil {
		t.Fatalf("load: %v", err)
	}
	r, err = db.QueryAll("SELECT COUNT(K) FROM BIG")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Tuples[0][0].AsInt(); got != int64(len(rows)) {
		t.Fatalf("BIG after load = %d, want %d", got, len(rows))
	}
	if n := db.SnapshotsOpen(); n != 0 {
		t.Fatalf("leaked %d snapshots", n)
	}
}

// TestSnapshotRepeatableRead pins a snapshot, commits more rows, and
// verifies the snapshot still sees exactly its bound while fresh
// statements see the new state.
func TestSnapshotRepeatableRead(t *testing.T) {
	db := Open(Config{})
	if _, err := db.Exec("CREATE TABLE T (K INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.Insert("T", types.Tuple{types.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.Snapshot()
	defer snap.Release()

	for i := 10; i < 25; i++ {
		if err := db.Insert("T", types.Tuple{types.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}

	// The pinned snapshot: 10 rows, repeatably.
	for pass := 0; pass < 2; pass++ {
		it, err := snap.Query("SELECT COUNT(K) FROM T")
		if err != nil {
			t.Fatal(err)
		}
		r, err := drainCount(it)
		if err != nil {
			t.Fatal(err)
		}
		if r != 10 {
			t.Fatalf("pass %d: snapshot count = %d, want 10", pass, r)
		}
	}
	// A fresh statement: 25 rows.
	r := queryAll(t, db, "SELECT COUNT(K) FROM T")
	if got := r.Tuples[0][0].AsInt(); got != 25 {
		t.Fatalf("current count = %d, want 25", got)
	}
}

// TestSnapshotDeferredDrop drops a table while a snapshot still pins
// it: the pinned reader keeps scanning the heap, and the pages are
// reclaimed only at release.
func TestSnapshotDeferredDrop(t *testing.T) {
	db := Open(Config{})
	if _, err := db.Exec("CREATE TABLE D (K INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := db.Insert("D", types.Tuple{types.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.Snapshot()
	tbl, err := snap.Table("D")
	if err != nil {
		t.Fatal(err)
	}
	heapFile := tbl.Heap.File()
	pagesBefore := db.Disk().NumPages(heapFile)
	if pagesBefore == 0 {
		t.Fatal("expected a non-empty heap")
	}

	if _, err := db.Exec("DROP TABLE D"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("D"); err == nil {
		t.Fatal("D still visible in current version after drop")
	}
	// The drop is deferred: the pinned snapshot still reads the heap.
	it, err := snap.Query("SELECT COUNT(K) FROM D")
	if err != nil {
		t.Fatalf("pinned read after drop: %v", err)
	}
	n, err := drainCount(it)
	if err != nil {
		t.Fatalf("pinned scan after drop: %v", err)
	}
	if n != 500 {
		t.Fatalf("pinned count after drop = %d, want 500", n)
	}
	if got := db.Disk().NumPages(heapFile); got != pagesBefore {
		t.Fatalf("heap reclaimed while pinned: %d pages, want %d", got, pagesBefore)
	}

	snap.Release()
	if got := db.Disk().NumPages(heapFile); got != 0 {
		t.Fatalf("heap not reclaimed at release: %d pages", got)
	}
	if n := db.SnapshotsOpen(); n != 0 {
		t.Fatalf("leaked %d snapshots", n)
	}
}

// drainCount reads a single-row COUNT iterator and closes it.
func drainCount(it interface {
	Open() error
	Next() (types.Tuple, bool, error)
	Close() error
}) (int64, error) {
	if err := it.Open(); err != nil {
		return 0, err
	}
	defer it.Close()
	tup, ok, err := it.Next()
	if err != nil || !ok {
		return 0, fmt.Errorf("count row missing: ok=%v err=%v", ok, err)
	}
	return tup[0].AsInt(), nil
}

// TestSnapshotIsolationProperty is the seeded-scheduler isolation
// check: K writers append tagged rows to their own tables while M
// readers pin snapshots at random points. The commit hook records the
// serial publish history; every reader's observation must equal the
// history's exact prefix at its pinned commit sequence — no torn
// counts, no rows from the future, independent of interleaving.
func TestSnapshotIsolationProperty(t *testing.T) {
	const (
		writers        = 4
		readers        = 4
		rowsPerWriter  = 60
		readsPerReader = 40
	)
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			db := Open(Config{})
			tables := make([]string, writers)
			for w := 0; w < writers; w++ {
				tables[w] = fmt.Sprintf("W%d", w)
				if _, err := db.Exec(fmt.Sprintf("CREATE TABLE %s (WR INTEGER, I INTEGER)", tables[w])); err != nil {
					t.Fatal(err)
				}
			}

			// Serial history: inserted-row count per table keyed by the
			// publishing commit sequence. The hook runs under the writer
			// lock in sequence order, before the version is loadable.
			var (
				histMu  sync.Mutex
				history = map[uint64][writers]int{}
				counts  [writers]int
			)
			history[db.CommitSeq()] = counts
			db.SetCommitHook(func(seq uint64, table, op string) {
				histMu.Lock()
				defer histMu.Unlock()
				if op == "insert" {
					for w, name := range tables {
						if key(name) == key(table) {
							counts[w]++
						}
					}
				}
				history[seq] = counts
			})

			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
					for i := 0; i < rowsPerWriter; i++ {
						if err := db.Insert(tables[w], types.Tuple{types.Int(int64(w)), types.Int(int64(i))}); err != nil {
							t.Error(err)
							return
						}
						if rng.Intn(4) == 0 {
							time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
						}
					}
				}(w)
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed*2000 + int64(r)))
					for i := 0; i < readsPerReader; i++ {
						snap := db.Snapshot()
						seq := snap.Seq()
						histMu.Lock()
						want, ok := history[seq]
						histMu.Unlock()
						if !ok {
							snap.Release()
							t.Errorf("reader %d: no history for pinned seq %d", r, seq)
							return
						}
						order := rng.Perm(writers)
						for _, w := range order {
							it, err := snap.Query(fmt.Sprintf("SELECT COUNT(WR) FROM %s", tables[w]))
							if err != nil {
								snap.Release()
								t.Error(err)
								return
							}
							got, err := drainCount(it)
							if err != nil {
								snap.Release()
								t.Error(err)
								return
							}
							if got != int64(want[w]) {
								snap.Release()
								t.Errorf("reader %d seq %d: table %s count = %d, want %d (serial history prefix)",
									r, seq, tables[w], got, want[w])
								return
							}
						}
						snap.Release()
						if rng.Intn(3) == 0 {
							time.Sleep(time.Duration(rng.Intn(30)) * time.Microsecond)
						}
					}
				}(r)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			// Final state: every table holds all its writer's rows.
			for w := 0; w < writers; w++ {
				r := queryAll(t, db, fmt.Sprintf("SELECT COUNT(WR) FROM %s", tables[w]))
				if got := r.Tuples[0][0].AsInt(); got != rowsPerWriter {
					t.Fatalf("table %s final count = %d, want %d", tables[w], got, rowsPerWriter)
				}
			}
			if n := db.SnapshotsOpen(); n != 0 {
				t.Fatalf("leaked %d snapshots", n)
			}
		})
	}
}

// TestConcurrentQueriesDuringInserts drives full SELECT pipelines
// (joins, aggregates) while writers commit — a smoke check that the
// executor stack over pinned versions is race-free end to end.
func TestConcurrentQueriesDuringInserts(t *testing.T) {
	db := testDB(t)
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		// Capped: an unbounded writer grows the join inputs quadratically
		// and turns the readers' fixed workload into an unbounded one.
		for i := 0; i < 2000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Insert("POSITION", types.Tuple{
				types.Int(int64(3 + i)), types.Str("W"),
				types.Int(int64(i)), types.Int(int64(i + 5)),
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	queries := []string{
		"SELECT COUNT(PosID) FROM POSITION",
		"SELECT EmpName, T1 FROM POSITION WHERE PosID = 1 ORDER BY T1",
		"SELECT P.EmpName, E.Salary FROM POSITION P, EMP E WHERE P.EmpName = E.EmpName",
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; i < 30; i++ {
				if _, err := db.QueryAll(queries[(r+i)%len(queries)]); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { readers.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent workload wedged")
	}
	close(stop)
	writer.Wait()
	if n := db.SnapshotsOpen(); n != 0 {
		t.Fatalf("leaked %d snapshots", n)
	}
}
