// Command experiments regenerates every table and figure of the
// paper's evaluation section (§5) against the synthetic UIS dataset:
//
//	experiments -run q1        Figure 8   (Query 1 plan times vs |POSITION|)
//	experiments -run q2        Figure 10  (Query 2 plan times vs period end)
//	experiments -run q3        Figure 11a (Query 3 plan times vs start cutoff)
//	experiments -run q4        Figure 11b (Query 4 plan times vs |POSITION|)
//	experiments -run sel       §3.3 selectivity worked example
//	experiments -run memo      per-query optimizer classes/elements
//	experiments -run choice    optimizer plan choice vs measured best (Q3)
//	experiments -run q2choice  optimizer choice with/without histograms (Q2)
//	experiments -run adapt     cost-factor feedback convergence
//	experiments -run all       everything
//
// -scale quick (default) runs a ~10x reduced sweep that preserves the
// published shapes; -scale paper runs the full §5.1 sizes (slow — the
// all-DBMS temporal aggregation plans are intentionally superlinear).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tango/internal/bench"
)

func main() {
	run := flag.String("run", "all", "experiment: q1,q2,q3,q4,sel,memo,choice,q2choice,adapt,all")
	scaleName := flag.String("scale", "quick", "quick or paper")
	flag.Parse()

	var sc bench.Scale
	switch *scaleName {
	case "paper":
		sc = bench.PaperScale()
	case "quick":
		sc = bench.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, r := range strings.Split(*run, ",") {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	if all || want["sel"] {
		rows, err := bench.RunSelectivity()
		if err != nil {
			fail(err)
		}
		fmt.Println("## Selectivity estimation (§3.3 worked example)")
		fmt.Println("Overlaps(1997-02-01, 1997-02-08) on 100k uniform 7-day periods, 1995–2000")
		fmt.Printf("%-38s %12s %12s %8s\n", "method", "predicted", "actual", "ratio")
		for _, r := range rows {
			ratio := r.Predicted / r.Actual
			fmt.Printf("%-38s %11.3f%% %11.3f%% %7.1fx\n",
				r.Method, 100*r.Predicted, 100*r.Actual, ratio)
		}
		fmt.Println()
	}

	if all || want["memo"] {
		counts, err := bench.RunMemo(sc)
		if err != nil {
			fail(err)
		}
		fmt.Println("## Optimizer accounting (paper: Q1 12/29, Q2 142/452, Q3 104/301, Q4 13/30)")
		fmt.Printf("%-5s %8s %9s %10s  %s\n", "query", "classes", "elements", "cost(µs)", "chosen plan")
		for _, c := range counts {
			fmt.Printf("%-5s %8d %9d %10.0f  %s\n", c.Query, c.Classes, c.Elements, c.Cost, c.Chosen)
		}
		fmt.Println()
	}

	if all || want["q1"] {
		s, err := bench.RunQ1(sc)
		if err != nil {
			fail(err)
		}
		s.Print()
	}
	if all || want["q2"] {
		s, err := bench.RunQ2(sc, nil)
		if err != nil {
			fail(err)
		}
		s.Print()
	}
	if all || want["q3"] {
		s, err := bench.RunQ3(sc, nil)
		if err != nil {
			fail(err)
		}
		s.Print()
	}
	if all || want["q4"] {
		s, err := bench.RunQ4(sc)
		if err != nil {
			fail(err)
		}
		s.Print()
	}

	if all || want["q2choice"] {
		rows, err := bench.RunQ2Choice(sc, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println("## Query 2 optimizer choice by estimator (§5.2 with/without histograms)")
		fmt.Printf("%-10s %-24s %-24s %-24s\n", "period end", "with histograms", "without histograms", "naive")
		for _, r := range rows {
			fmt.Printf("%-10s %-24s %-24s %-24s\n", r.Param, r.WithHist, r.WithoutHist, r.NaiveEstimate)
		}
		fmt.Println()
	}

	if all || want["adapt"] {
		rows, err := bench.RunAdapt(sc, 6)
		if err != nil {
			fail(err)
		}
		fmt.Println("## Adaptive cost factors (p_tm after each executed query)")
		fmt.Printf("%-6s %12s\n", "step", "p_tm (µs/B)")
		for _, r := range rows {
			fmt.Printf("%-6d %12.5f\n", r.Step, r.PTm)
		}
		fmt.Println()
	}

	if all || want["choice"] {
		rows, err := bench.RunChoice(sc, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println("## Optimizer choice vs measured best (Query 3 sweep)")
		fmt.Printf("%-8s %-22s %12s %-22s %12s %8s\n",
			"cutoff", "chosen", "chosen(s)", "best plan", "best(s)", "factor")
		for _, r := range rows {
			fmt.Printf("%-8s %-22s %12.3f %-22s %12.3f %8.2f\n",
				r.Param, r.Chosen, r.ChosenTime.Seconds(),
				r.BestPlan, r.BestTime.Seconds(), r.WithinFactor)
		}
		fmt.Println()
	}
}
