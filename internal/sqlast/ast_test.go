package sqlast

import (
	"strings"
	"testing"

	"tango/internal/types"
)

func col(name string) ColumnRef { return ColumnRef{Name: name} }

func lit(v int64) Literal { return Literal{Value: types.Int(v)} }

func TestConjunctsAndAndAll(t *testing.T) {
	a := BinaryExpr{Op: OpEq, Left: col("a"), Right: lit(1)}
	b := BinaryExpr{Op: OpGt, Left: col("b"), Right: lit(2)}
	c := BinaryExpr{Op: OpLt, Left: col("c"), Right: lit(3)}
	and := BinaryExpr{Op: OpAnd, Left: BinaryExpr{Op: OpAnd, Left: a, Right: b}, Right: c}
	conj := Conjuncts(and)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	// OR at the top is one conjunct.
	or := BinaryExpr{Op: OpOr, Left: a, Right: b}
	if len(Conjuncts(or)) != 1 {
		t.Error("OR must not split")
	}
	if Conjuncts(nil) != nil {
		t.Error("nil predicate has no conjuncts")
	}
	back := AndAll(conj)
	if len(Conjuncts(back)) != 3 {
		t.Error("AndAll/Conjuncts should round trip")
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
}

func TestWalkPrunes(t *testing.T) {
	e := BinaryExpr{
		Op:   OpAnd,
		Left: FuncCall{Name: "COUNT", Args: []Expr{col("x")}},
		Right: Between{
			Expr: col("y"), Lo: lit(1), Hi: UnaryExpr{Op: "-", Operand: lit(2)},
		},
	}
	visited := 0
	Walk(e, func(Expr) bool { visited++; return true })
	if visited != 8 {
		t.Errorf("visited %d nodes", visited)
	}
	// Prune at FuncCall.
	visited = 0
	Walk(e, func(x Expr) bool {
		visited++
		_, isCall := x.(FuncCall)
		return !isCall
	})
	if visited != 7 { // col("x") skipped
		t.Errorf("pruned walk visited %d", visited)
	}
}

func TestHasAggregate(t *testing.T) {
	if !HasAggregate(FuncCall{Name: "SUM", Args: []Expr{col("x")}}) {
		t.Error("SUM is an aggregate")
	}
	if HasAggregate(FuncCall{Name: "GREATEST", Args: []Expr{col("x"), lit(1)}}) {
		t.Error("GREATEST is not an aggregate")
	}
	nested := BinaryExpr{Op: OpAdd, Left: lit(1), Right: FuncCall{Name: "MAX", Args: []Expr{col("x")}}}
	if !HasAggregate(nested) {
		t.Error("nested aggregate missed")
	}
	if !IsAggregateName("AVG") || IsAggregateName("LENGTH") {
		t.Error("IsAggregateName wrong")
	}
}

func TestStatementStrings(t *testing.T) {
	sel := &SelectStmt{
		Hint:     HintMerge,
		Distinct: true,
		Items:    []SelectItem{{Expr: col("a"), Alias: "x"}, {Expr: Star{}}},
		From:     []TableRef{TableName{Name: "T", Alias: "t"}, Derived{Select: &SelectStmt{Items: []SelectItem{{Expr: lit(1)}}}, Alias: "d"}},
		Where:    IsNull{Expr: col("a"), Not: true},
		GroupBy:  []Expr{col("a")},
		Having:   BinaryExpr{Op: OpGt, Left: FuncCall{Name: "COUNT", Args: []Expr{Star{}}}, Right: lit(1)},
		OrderBy:  []OrderItem{{Expr: col("a"), Desc: true}},
		Limit:    7,
	}
	s := sel.String()
	for _, want := range []string{"USE_MERGE", "DISTINCT", "AS x", "T t", ") d",
		"IS NOT NULL", "GROUP BY", "HAVING", "ORDER BY a DESC", "LIMIT 7"} {
		if !contains(s, want) {
			t.Errorf("SELECT rendering missing %q:\n%s", want, s)
		}
	}

	stmts := []Statement{
		&CreateTable{Name: "T", Columns: []ColumnDef{{Name: "a", Kind: types.KindInt}}},
		&DropTable{Name: "T", IfExists: true},
		&Insert{Table: "T", Columns: []string{"a"}, Values: [][]Expr{{lit(1)}, {lit(2)}}},
		&Insert{Table: "T", Select: &SelectStmt{Items: []SelectItem{{Expr: Star{}}}, From: []TableRef{TableName{Name: "S"}}}},
		&CreateIndex{Name: "i", Table: "T", Column: "a"},
		&Analyze{Table: "T", HistogramBuckets: 5},
		&Analyze{Table: "T"},
	}
	for _, st := range stmts {
		if st.String() == "" {
			t.Errorf("%T renders empty", st)
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
