package types

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns. Column names are matched
// case-insensitively, and may be qualified ("A.PosID"); an unqualified
// lookup matches the unqualified part.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) Schema { return Schema{Cols: cols} }

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Cols) }

// ColumnIndex finds the index of the named column, or -1. A qualified
// name must match exactly (case-insensitive); an unqualified name
// matches the first column whose unqualified part equals it.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	if !strings.Contains(name, ".") {
		for i, c := range s.Cols {
			if dot := strings.LastIndexByte(c.Name, '.'); dot >= 0 &&
				strings.EqualFold(c.Name[dot+1:], name) {
				return i
			}
		}
	}
	return -1
}

// MustIndex is ColumnIndex but panics if the column is missing; for
// internal plan construction where schemas were already validated.
func (s Schema) MustIndex(name string) int {
	i := s.ColumnIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("types: no column %q in schema %v", name, s.Names()))
	}
	return i
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	names := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		names[i] = c.Name
	}
	return names
}

// Project returns the schema restricted to the given column indexes.
func (s Schema) Project(idx []int) Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Cols[j]
	}
	return Schema{Cols: cols}
}

// Concat returns the concatenation of two schemas (join output). Column
// names from the right side that collide with the left are kept as-is;
// callers qualify names to disambiguate.
func (s Schema) Concat(t Schema) Schema {
	cols := make([]Column, 0, len(s.Cols)+len(t.Cols))
	cols = append(cols, s.Cols...)
	cols = append(cols, t.Cols...)
	return Schema{Cols: cols}
}

// Qualify returns a copy of the schema with every unqualified column
// name prefixed by alias.
func (s Schema) Qualify(alias string) Schema {
	cols := make([]Column, len(s.Cols))
	for i, c := range s.Cols {
		name := c.Name
		if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
			name = name[dot+1:]
		}
		cols[i] = Column{Name: alias + "." + name, Kind: c.Kind}
	}
	return Schema{Cols: cols}
}

// Unqualified returns a copy of the schema with qualifiers stripped.
func (s Schema) Unqualified() Schema {
	cols := make([]Column, len(s.Cols))
	for i, c := range s.Cols {
		name := c.Name
		if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
			name = name[dot+1:]
		}
		cols[i] = Column{Name: name, Kind: c.Kind}
	}
	return Schema{Cols: cols}
}

// String renders the schema as "(name TYPE, ...)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two schemas have the same column names
// (case-insensitive) and kinds in the same order.
func (s Schema) Equal(t Schema) bool {
	if len(s.Cols) != len(t.Cols) {
		return false
	}
	for i := range s.Cols {
		if !strings.EqualFold(s.Cols[i].Name, t.Cols[i].Name) || s.Cols[i].Kind != t.Cols[i].Kind {
			return false
		}
	}
	return true
}

// Tuple is one row of a relation.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// ByteSize returns the approximate size of the tuple in bytes.
func (t Tuple) ByteSize() int {
	n := 0
	for _, v := range t {
		n += v.ByteSize()
	}
	return n
}

// String renders the tuple for debugging.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// CompareTuples orders tuples by the given key column indexes; missing
// keys (index out of range) compare equal. desc[i], when provided,
// reverses key i.
func CompareTuples(a, b Tuple, keys []int, desc []bool) int {
	for i, k := range keys {
		if k >= len(a) || k >= len(b) {
			continue
		}
		c := Compare(a[k], b[k])
		if c != 0 {
			if i < len(desc) && desc[i] {
				return -c
			}
			return c
		}
	}
	return 0
}

// TupleEqualOn reports whether two tuples agree on the given columns.
func TupleEqualOn(a, b Tuple, keys []int) bool {
	for _, k := range keys {
		if !Equal(a[k], b[k]) {
			return false
		}
	}
	return true
}
