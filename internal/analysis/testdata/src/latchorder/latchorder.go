// Package latchorder seeds violations of the declared lock hierarchy
// for the latchorder analyzer: ordered nesting is fine, inversions and
// class re-entry are not, and both must be caught through helper calls
// via the interprocedural effect summaries.
package latchorder

import "sync"

//tango:lock-order catalog < pool < store

// DB guards schema metadata.
type DB struct {
	cmu sync.RWMutex //tango:lock-order catalog
}

// Pool guards in-memory frames; a latch, though latchorder does not
// care — only lockio distinguishes latches.
type Pool struct {
	mu sync.Mutex //tango:lock-order pool latch
}

// Store serializes durable I/O.
type Store struct {
	mu sync.Mutex //tango:lock-order store
}

// Side is declared but deliberately unrelated to the chain: the order
// is partial, and incomparable classes are unconstrained.
type Side struct {
	mu sync.Mutex //tango:lock-order side
}

type sys struct {
	db   *DB
	pool *Pool
	st   *Store
}

// okNested acquires along the declared order.
func (s *sys) okNested() {
	s.db.cmu.Lock()
	defer s.db.cmu.Unlock()
	s.pool.mu.Lock()
	defer s.pool.mu.Unlock()
}

// okSequential releases before acquiring against the order.
func (s *sys) okSequential() {
	s.st.mu.Lock()
	s.st.mu.Unlock()
	s.db.cmu.Lock()
	s.db.cmu.Unlock()
}

// badInversion acquires catalog while pool is held: catalog < pool.
func (s *sys) badInversion() {
	s.pool.mu.Lock()
	defer s.pool.mu.Unlock()
	s.db.cmu.Lock() // want `acquires lock class "catalog" while holding "pool"`
	s.db.cmu.Unlock()
}

// badReentry re-enters a held class — a self-deadlock on the same
// instance and an undeclared nesting on another.
func (s *sys) badReentry(other *Pool) {
	s.pool.mu.Lock()
	defer s.pool.mu.Unlock()
	other.mu.Lock() // want `re-enters lock class "pool"`
	other.mu.Unlock()
}

// loadMeta acquires catalog on behalf of its callers.
func (s *sys) loadMeta() {
	s.db.cmu.RLock()
	defer s.db.cmu.RUnlock()
}

// badThroughHelper holds store and calls a helper whose summary
// acquires catalog: the inversion is charged at the call site.
func (s *sys) badThroughHelper() {
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	s.loadMeta() // want `acquires lock class "catalog" while holding "store".*via`
}

// okThroughHelper calls the same helper with nothing held.
func (s *sys) okThroughHelper() {
	s.loadMeta()
}

// okUnrelated holds an incomparable class: no declared relation, no
// finding.
func (s *sys) okUnrelated(side *Side) {
	side.mu.Lock()
	defer side.mu.Unlock()
	s.db.cmu.Lock()
	s.db.cmu.Unlock()
}

// Bad carries a malformed directive: class names are lower-case.
type Bad struct {
	mu sync.Mutex //tango:lock-order NotAClass // want `malformed //tango:lock-order directive`
}

func use(b *Bad) { b.mu.Lock(); b.mu.Unlock() }

// dropAndRelock releases the caller's pool latch around slow work and
// reacquires it: restoring the caller's hold, not a fresh acquisition.
func (p *Pool) dropAndRelock() {
	p.mu.Unlock()
	p.mu.Lock()
}

// okHandOverHand calls the drop/relock helper with the latch held; the
// reacquire inside must not count as class re-entry.
func (p *Pool) okHandOverHand() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dropAndRelock()
}

// --- Commit-path classes of the versioned store ---
//
// The group-commit admission latch may only be taken under the WAL
// sync lock, and the snapshot pin registry is a leaf under catalog.

//tango:lock-order walsync < groupcommit
//tango:lock-order catalog < snapreg

// WAL serializes durability barriers; held across fsync by design.
type WAL struct {
	mu sync.Mutex //tango:lock-order walsync
}

// Batch is the group-commit admission latch.
type Batch struct {
	mu sync.Mutex //tango:lock-order groupcommit latch
}

// Reg is the snapshot pin registry.
type Reg struct {
	mu sync.Mutex //tango:lock-order snapreg latch
}

// okCommitPath nests the commit path in declared order: the leader
// takes the sync lock, then closes the batch under the admission
// latch.
func okCommitPath(w *WAL, b *Batch) {
	w.mu.Lock()
	defer w.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

// badCommitInversion takes the sync lock under the admission latch —
// a follower would deadlock against the leader.
func badCommitInversion(w *WAL, b *Batch) {
	b.mu.Lock()
	defer b.mu.Unlock()
	w.mu.Lock() // want `acquires lock class "walsync" while holding "groupcommit"`
	w.mu.Unlock()
}

// badCatalogUnderSnapReg pins a version while holding the registry
// leaf: catalog < snapreg, so the writer lock must come first.
func badCatalogUnderSnapReg(db *DB, r *Reg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	db.cmu.Lock() // want `acquires lock class "catalog" while holding "snapreg"`
	db.cmu.Unlock()
}

// okPinUnderCatalog is the deferred-drop protocol: the dropper holds
// the catalog writer lock and registers the drop in the registry.
func okPinUnderCatalog(db *DB, r *Reg) {
	db.cmu.Lock()
	defer db.cmu.Unlock()
	r.mu.Lock()
	r.mu.Unlock()
}
