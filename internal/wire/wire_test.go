package wire

import (
	"testing"
	"time"

	"tango/internal/types"
)

func TestBatchRoundTrip(t *testing.T) {
	rows := []types.Tuple{
		{types.Int(1), types.Str("Tom"), types.Date(9862)},
		{types.Int(2), types.Null, types.Float(2.5)},
	}
	enc := EncodeBatch(nil, rows)
	got, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %d", len(got))
	}
	for i := range rows {
		for j := range rows[i] {
			if !types.Equal(got[i][j], rows[i][j]) {
				t.Errorf("row %d col %d: %v vs %v", i, j, got[i][j], rows[i][j])
			}
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	enc := EncodeBatch(nil, nil)
	got, err := DecodeBatch(enc)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v, %v", got, err)
	}
}

func TestBatchCorruption(t *testing.T) {
	enc := EncodeBatch(nil, []types.Tuple{{types.Str("hello")}})
	if _, err := DecodeBatch(enc[:len(enc)-2]); err == nil {
		t.Error("truncated batch should fail")
	}
	if _, err := DecodeBatch(append(enc, 0xFF)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := types.NewSchema(
		types.Column{Name: "PosID", Kind: types.KindInt},
		types.Column{Name: "A.T1", Kind: types.KindDate},
	)
	enc := EncodeSchema(nil, s)
	got, n, err := DecodeSchema(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if !got.Equal(s) {
		t.Errorf("schema: %v vs %v", got, s)
	}
}

func TestLatencyTransmit(t *testing.T) {
	var free Latency
	if free.Transmit(1<<20) != 0 {
		t.Error("zero latency should be free")
	}
	l := Latency{BytesPerSecond: 1e6}
	if d := l.Transmit(1e6); d != time.Second {
		t.Errorf("Transmit = %v", d)
	}
	start := time.Now()
	free.Charge(1 << 20) // must not sleep
	if time.Since(start) > 5*time.Millisecond {
		t.Error("zero latency slept")
	}
}
