package client

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"tango/internal/telemetry"
	"tango/internal/wire"
)

// genPolicy derives an arbitrary-but-plausible policy from quick's
// raw inputs (the fields are reduced into sane ranges; normalization
// of degenerate values is itself part of the contract under test).
func genPolicy(attempts uint8, base, max uint32, mult, jitter float64) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: int(attempts%16) + 1,
		BaseDelay:   time.Duration(base%1_000_000) * time.Microsecond,
		MaxDelay:    time.Duration(max%10_000_000) * time.Microsecond,
		Multiplier:  mult,
		JitterFrac:  jitter,
		Deadline:    time.Duration(max%5_000_000) * time.Microsecond,
	}
}

// TestBackoffMonotone: the pre-jitter backoff never decreases with
// the attempt number and never exceeds the (normalized) cap.
func TestBackoffMonotone(t *testing.T) {
	prop := func(attempts uint8, base, max uint32, mult, jitter float64) bool {
		p := genPolicy(attempts, base, max, mult, jitter)
		cap := p.BaseBackoff(1 << 20) // far past any growth: the cap
		prev := time.Duration(0)
		for a := 1; a <= 64; a++ {
			d := p.BaseBackoff(a)
			if d < prev || d <= 0 || d > cap {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBackoffJitterBounded: jitter only ever adds, and adds at most
// JitterFrac (clamped to [0,1]) of the base backoff.
func TestBackoffJitterBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func(attempts uint8, base, max uint32, mult, jitter float64, seed int64) bool {
		p := genPolicy(attempts, base, max, mult, jitter)
		frac := p.JitterFrac
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		for a := 1; a <= 16; a++ {
			b := p.BaseBackoff(a)
			j := p.Backoff(a, rng)
			if j < b {
				return false // jitter must not shrink the delay
			}
			if float64(j-b) > frac*float64(b)+1 { // +1ns rounding slack
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBackoffScheduleWithinDeadline: the cumulative jittered schedule
// never sleeps past the policy deadline, and never schedules more
// than MaxAttempts-1 backoffs.
func TestBackoffScheduleWithinDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(attempts uint8, base, max uint32, mult, jitter float64) bool {
		p := genPolicy(attempts, base, max, mult, jitter)
		sched := p.BackoffSchedule(rng)
		if len(sched) > p.MaxAttempts-1 {
			return false
		}
		var total time.Duration
		for _, d := range sched {
			if d < 0 {
				return false
			}
			total += d
		}
		if p.Deadline > 0 && total > p.Deadline {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBackoffDeterministicPerSeed: equal seeds produce equal jittered
// schedules (the chaos suite depends on replayable runs).
func TestBackoffDeterministicPerSeed(t *testing.T) {
	prop := func(attempts uint8, base, max uint32, mult, jitter float64, seed int64) bool {
		p := genPolicy(attempts, base, max, mult, jitter)
		a := p.BackoffSchedule(rand.New(rand.NewSource(seed)))
		b := p.BackoffSchedule(rand.New(rand.NewSource(seed)))
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDoRetriesTransientThenSucceeds: a fault that clears after k
// failures is absorbed iff k < MaxAttempts, and the telemetry
// counters record every retry.
func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	for _, k := range []int{0, 1, 2, 3} {
		reg := telemetry.NewRegistry()
		c := &Conn{
			Metrics: reg,
			Retry: RetryPolicy{
				MaxAttempts: 3,
				BaseDelay:   time.Microsecond,
				MaxDelay:    10 * time.Microsecond,
			},
			jitter: newJitterSrc(1),
		}
		calls := 0
		err := c.do("load", func(_ *telemetry.Span) error {
			calls++
			if calls <= k {
				return &wire.FaultError{Op: wire.OpLoad, Kind: wire.KindDrop, Index: int64(calls)}
			}
			return nil
		})
		wantOK := k < c.Retry.MaxAttempts
		if (err == nil) != wantOK {
			t.Fatalf("k=%d: err=%v, want success=%v", k, err, wantOK)
		}
		if !wantOK {
			var oe *OpError
			if !errors.As(err, &oe) || oe.Attempts != c.Retry.MaxAttempts {
				t.Fatalf("k=%d: want OpError with %d attempts, got %v", k, c.Retry.MaxAttempts, err)
			}
			if !Degradable(err) {
				t.Fatalf("k=%d: exhausted transient failure must be degradable", k)
			}
		}
		wantRetries := int64(k)
		if k >= c.Retry.MaxAttempts {
			wantRetries = int64(c.Retry.MaxAttempts - 1)
		}
		if got := reg.Counter("tango_client_retries_total", telemetry.Labels{"op": "load"}).Value(); got != wantRetries {
			t.Fatalf("k=%d: retries counter = %d, want %d", k, got, wantRetries)
		}
	}
}

// TestDoNonRetryableSurfacesImmediately: semantic errors are not
// retried and are returned unwrapped.
func TestDoNonRetryableSurfacesImmediately(t *testing.T) {
	c := &Conn{
		Retry:  RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond},
		jitter: newJitterSrc(1),
	}
	sem := errors.New("no such table FOO")
	calls := 0
	err := c.do("exec", func(_ *telemetry.Span) error { calls++; return sem })
	if !errors.Is(err, sem) || calls != 1 {
		t.Fatalf("got err=%v after %d call(s), want the semantic error after exactly 1", err, calls)
	}
	if Degradable(err) {
		t.Fatal("semantic error must not be degradable")
	}
}

// TestDoContextCancellation: canceling the connection context aborts
// the retry loop with a typed OpError wrapping context.Canceled.
func TestDoContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := &Conn{
		Ctx: ctx,
		Retry: RetryPolicy{
			MaxAttempts: 100,
			BaseDelay:   time.Millisecond,
			MaxDelay:    time.Millisecond,
		},
		jitter: newJitterSrc(1),
	}
	calls := 0
	err := c.do("fetch", func(_ *telemetry.Span) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return &wire.FaultError{Op: wire.OpFetch, Kind: wire.KindDrop, Index: int64(calls)}
	})
	var oe *OpError
	if !errors.As(err, &oe) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want OpError wrapping context.Canceled, got %v", err)
	}
	if calls > 3 {
		t.Fatalf("retry loop survived cancellation for %d calls", calls)
	}
}

// TestOpTimeoutAbandonsAndDiscards: an attempt that outlives its
// per-call deadline is abandoned (the loop classifies it as a
// timeout) and the value it eventually produces is handed to the
// discard hook instead of leaking.
func TestOpTimeoutAbandonsAndDiscards(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := &Conn{
		Metrics: reg,
		Retry: RetryPolicy{
			MaxAttempts: 2,
			BaseDelay:   time.Microsecond,
			OpTimeout:   5 * time.Millisecond,
		},
		jitter: newJitterSrc(1),
	}
	release := make(chan struct{})
	discarded := make(chan int, 2)
	// Attempts run concurrently with their abandoned predecessors (by
	// design), so the attempt counter must be atomic.
	var calls atomic.Int64
	v, err := doVal(c, "query", func(_ *telemetry.Span) (int, error) {
		if calls.Add(1) == 1 {
			<-release // first attempt stalls past its deadline
			return 41, nil
		}
		return 42, nil
	}, func(abandoned int) { discarded <- abandoned })
	if err != nil || v != 42 {
		t.Fatalf("got (%d, %v), want (42, nil)", v, err)
	}
	close(release)
	select {
	case got := <-discarded:
		if got != 41 {
			t.Fatalf("discarded %d, want the abandoned attempt's 41", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abandoned attempt's value never reached the discard hook")
	}
	if got := reg.Counter("tango_client_op_timeouts_total", telemetry.Labels{"op": "query"}).Value(); got != 1 {
		t.Fatalf("op timeout counter = %d, want 1", got)
	}
	if !IsTimeout(opError("query", 1, errOpTimeout)) {
		t.Fatal("IsTimeout must recognize a timeout OpError")
	}
}
