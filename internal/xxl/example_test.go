package xxl_test

import (
	"fmt"

	"tango/internal/rel"
	"tango/internal/types"
	"tango/internal/xxl"
)

// ExampleTAggr reproduces Figure 3(c) of the paper: the number of
// employees per position over time, computed by the sweep-line
// temporal aggregation.
func ExampleTAggr() {
	position := rel.New(types.NewSchema(
		types.Column{Name: "PosID", Kind: types.KindInt},
		types.Column{Name: "EmpName", Kind: types.KindString},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
	))
	position.Append(types.Tuple{types.Int(1), types.Str("Tom"), types.Int(2), types.Int(20)})
	position.Append(types.Tuple{types.Int(1), types.Str("Jane"), types.Int(5), types.Int(25)})
	position.Append(types.Tuple{types.Int(2), types.Str("Tom"), types.Int(5), types.Int(10)})

	// TAGGR^M requires its input sorted on the grouping attributes and T1.
	position.SortBy("PosID", "T1")

	out := types.NewSchema(
		types.Column{Name: "PosID", Kind: types.KindInt},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
		types.Column{Name: "COUNT", Kind: types.KindInt},
	)
	ta := xxl.NewTAggr(position.Iter(), []int{0}, 2, 3,
		[]xxl.AggSpec{{Kind: xxl.AggCount}}, out)
	result, err := rel.Drain(ta)
	if err != nil {
		panic(err)
	}
	for _, row := range result.Tuples {
		fmt.Printf("position %v: [%v, %v) count %v\n", row[0], row[1], row[2], row[3])
	}
	// Output:
	// position 1: [2, 5) count 1
	// position 1: [5, 20) count 2
	// position 1: [20, 25) count 1
	// position 2: [5, 10) count 1
}

// ExampleCoalesce merges value-equivalent tuples whose periods meet or
// overlap.
func ExampleCoalesce() {
	history := rel.New(types.NewSchema(
		types.Column{Name: "Name", Kind: types.KindString},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
	))
	history.Append(types.Tuple{types.Str("Tom"), types.Int(1), types.Int(5)})
	history.Append(types.Tuple{types.Str("Tom"), types.Int(5), types.Int(9)})
	history.Append(types.Tuple{types.Str("Tom"), types.Int(12), types.Int(15)})
	history.SortBy("Name", "T1")

	out, err := rel.Drain(xxl.NewCoalesce(history.Iter(), 1, 2))
	if err != nil {
		panic(err)
	}
	for _, row := range out.Tuples {
		fmt.Printf("%v: [%v, %v)\n", row[0], row[1], row[2])
	}
	// Output:
	// Tom: [1, 9)
	// Tom: [12, 15)
}
