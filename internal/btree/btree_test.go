package btree

import (
	"math/rand"
	"sort"
	"testing"

	"tango/internal/storage"
	"tango/internal/types"
)

func rid(n int) storage.RecordID {
	return storage.RecordID{Page: int32(n / 100), Slot: int32(n % 100)}
}

func TestInsertLookup(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(types.Int(int64(i)), rid(i))
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, k := range []int64{0, 1, 499, 998, 999} {
		rids := tr.Lookup(types.Int(k))
		if len(rids) != 1 || rids[0] != rid(int(k)) {
			t.Errorf("Lookup(%d) = %v", k, rids)
		}
	}
	if rids := tr.Lookup(types.Int(5000)); len(rids) != 0 {
		t.Errorf("Lookup(missing) = %v", rids)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New()
	for i := 0; i < 300; i++ {
		tr.Insert(types.Int(int64(i%10)), rid(i))
	}
	for k := int64(0); k < 10; k++ {
		if got := len(tr.Lookup(types.Int(k))); got != 30 {
			t.Errorf("key %d has %d entries, want 30", k, got)
		}
	}
}

func TestAscendOrdered(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(5))
	keys := make([]int64, 5000)
	for i := range keys {
		keys[i] = rng.Int63n(2000)
		tr.Insert(types.Int(keys[i]), rid(i))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var got []int64
	tr.Ascend(func(e Entry) bool {
		got = append(got, e.Key.AsInt())
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("Ascend saw %d entries, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("position %d: got %d, want %d", i, got[i], keys[i])
		}
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(types.Int(int64(i)), rid(i))
	}
	collect := func(lo, hi types.Value, incl bool) []int64 {
		var out []int64
		tr.AscendRange(lo, hi, incl, func(e Entry) bool {
			out = append(out, e.Key.AsInt())
			return true
		})
		return out
	}
	if got := collect(types.Int(10), types.Int(15), true); len(got) != 6 || got[0] != 10 || got[5] != 15 {
		t.Errorf("inclusive range = %v", got)
	}
	if got := collect(types.Int(10), types.Int(15), false); len(got) != 5 || got[4] != 14 {
		t.Errorf("exclusive range = %v", got)
	}
	if got := collect(types.Null, types.Int(2), true); len(got) != 3 {
		t.Errorf("open lo = %v", got)
	}
	if got := collect(types.Int(97), types.Null, true); len(got) != 3 {
		t.Errorf("open hi = %v", got)
	}
	// Early stop.
	n := 0
	tr.AscendRange(types.Null, types.Null, true, func(Entry) bool { n++; return n < 7 })
	if n != 7 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New()
	words := []string{"pear", "apple", "fig", "banana", "cherry", "apple"}
	for i, w := range words {
		tr.Insert(types.Str(w), rid(i))
	}
	var got []string
	tr.Ascend(func(e Entry) bool { got = append(got, e.Key.AsString()); return true })
	want := []string{"apple", "apple", "banana", "cherry", "fig", "pear"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: %v", got)
		}
	}
}

func TestClusteringFactor(t *testing.T) {
	// Clustered: keys inserted in heap order.
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(types.Int(int64(i)), rid(i))
	}
	clustered := tr.ClusteringFactor()
	// Unclustered: random key order vs heap position.
	tr2 := New()
	rng := rand.New(rand.NewSource(9))
	perm := rng.Perm(1000)
	for i, p := range perm {
		tr2.Insert(types.Int(int64(p)), rid(i))
	}
	unclustered := tr2.ClusteringFactor()
	if clustered >= unclustered {
		t.Errorf("clustering factor should separate: clustered=%d unclustered=%d", clustered, unclustered)
	}
	if clustered != 10 { // 1000 rids over 10 pages in order
		t.Errorf("clustered factor = %d, want 10", clustered)
	}
}

func TestRandomizedAgainstSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New()
	type kv struct {
		k int64
		r storage.RecordID
	}
	var all []kv
	for i := 0; i < 20000; i++ {
		k := rng.Int63n(5000)
		tr.Insert(types.Int(k), rid(i))
		all = append(all, kv{k, rid(i)})
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].k < all[j].k })
	i := 0
	tr.Ascend(func(e Entry) bool {
		if e.Key.AsInt() != all[i].k {
			t.Fatalf("entry %d: key %d, want %d", i, e.Key.AsInt(), all[i].k)
		}
		i++
		return true
	})
	if i != len(all) {
		t.Fatalf("visited %d of %d", i, len(all))
	}
}
