package wire

import (
	"encoding/binary"
	"fmt"
)

// Trace-context header: every request crossing the middleware↔DBMS
// boundary may carry the caller's trace identity, so the DBMS site can
// parent its spans under the exact client span (attempt, load, exec)
// that issued the request. The header is versioned so either side can
// be upgraded independently; an empty header means "no trace" and is
// always valid.
//
// Layout (version 1):
//
//	byte 0      header version
//	bytes 1-8   trace ID  (big-endian fixed64)
//	bytes 9-16  span ID   (big-endian fixed64)
//
// The package deliberately carries raw uint64s, not telemetry types —
// wire stays dependency-free below the telemetry layer.

// HeaderVersion is the current trace-header version.
const HeaderVersion = 1

// headerLen is the encoded size of a version-1 header.
const headerLen = 17

// Header is the decoded trace context of one request.
type Header struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the header names a real trace.
func (h Header) Valid() bool { return h.TraceID != 0 }

// AppendHeader appends the version-1 encoding of h to dst. A zero
// header (no trace) encodes to nothing: callers pass the result
// through unchanged and the receiver sees "no trace".
func AppendHeader(dst []byte, h Header) []byte {
	if !h.Valid() {
		return dst
	}
	dst = append(dst, HeaderVersion)
	dst = binary.BigEndian.AppendUint64(dst, h.TraceID)
	dst = binary.BigEndian.AppendUint64(dst, h.SpanID)
	return dst
}

// DecodeHeader decodes a trace header. Empty input is a valid "no
// trace" header. Unknown versions and truncated input are errors, so
// a skewed peer is detected rather than silently mis-parsed.
func DecodeHeader(data []byte) (Header, error) {
	if len(data) == 0 {
		return Header{}, nil
	}
	if data[0] != HeaderVersion {
		return Header{}, fmt.Errorf("wire: unknown trace header version %d", data[0])
	}
	if len(data) != headerLen {
		return Header{}, fmt.Errorf("wire: trace header length %d, want %d", len(data), headerLen)
	}
	return Header{
		TraceID: binary.BigEndian.Uint64(data[1:9]),
		SpanID:  binary.BigEndian.Uint64(data[9:17]),
	}, nil
}
