package xxl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tango/internal/rel"
	"tango/internal/types"
)

// genRelation builds a random two-column relation from quick's fuzz
// values.
func genRelation(keys []int16, payload []int8) *rel.Relation {
	r := rel.New(types.NewSchema(
		types.Column{Name: "K", Kind: types.KindInt},
		types.Column{Name: "V", Kind: types.KindInt},
	))
	for i, k := range keys {
		v := int64(0)
		if i < len(payload) {
			v = int64(payload[i])
		}
		r.Append(types.Tuple{types.Int(int64(k)), types.Int(v)})
	}
	return r
}

func TestQuickSortIsPermutationAndOrdered(t *testing.T) {
	f := func(keys []int16, payload []int8) bool {
		in := genRelation(keys, payload)
		s := NewSort(in.Iter(), []int{0})
		s.MemTuples = 16 // force spills on larger fuzz inputs
		out, err := rel.Drain(s)
		if err != nil {
			return false
		}
		if !rel.EqualAsMultisets(in, out) {
			return false
		}
		for i := 1; i < out.Cardinality(); i++ {
			if out.Tuples[i-1][0].AsInt() > out.Tuples[i][0].AsInt() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickDupElimIdempotentAndMinimal(t *testing.T) {
	f := func(keys []int16) bool {
		in := genRelation(keys, nil)
		once, err := rel.Drain(NewDupElim(in.Iter()))
		if err != nil {
			return false
		}
		twice, err := rel.Drain(NewDupElim(once.Iter()))
		if err != nil {
			return false
		}
		if !rel.EqualAsLists(once, twice) {
			return false
		}
		// Count distinct keys the boring way.
		distinct := map[int16]bool{}
		for _, k := range keys {
			distinct[k] = true
		}
		return once.Cardinality() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeJoinMatchesNestedLoop(t *testing.T) {
	f := func(lkeys, rkeys []uint8) bool {
		l := genRelation(widen(lkeys), nil)
		r := genRelation(widen(rkeys), nil)
		l.SortBy("K")
		r.SortBy("K")
		mj, err := rel.Drain(NewMergeJoin(l.Iter(), r.Iter(), []int{0}, []int{0}))
		if err != nil {
			return false
		}
		// Reference: nested loop.
		want := 0
		for _, lt := range l.Tuples {
			for _, rt := range r.Tuples {
				if types.Equal(lt[0], rt[0]) {
					want++
				}
			}
		}
		return mj.Cardinality() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func widen(xs []uint8) []int16 {
	out := make([]int16, len(xs))
	for i, x := range xs {
		out[i] = int16(x % 16) // dense keys → plenty of matches
	}
	return out
}

// TestQuickTAggrCoverage checks the sweep's coverage invariant: for
// every input tuple and every day in its period, exactly the intervals
// containing that day count it — i.e. summing interval-length × count
// over the output equals summing durations over the input.
func TestQuickTAggrCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(80)
		in := rel.New(types.NewSchema(
			types.Column{Name: "G", Kind: types.KindInt},
			types.Column{Name: "T1", Kind: types.KindInt},
			types.Column{Name: "T2", Kind: types.KindInt},
		))
		var totalDays int64
		for i := 0; i < n; i++ {
			s := rng.Int63n(60)
			e := s + 1 + rng.Int63n(25)
			in.Append(types.Tuple{types.Int(rng.Int63n(3)), types.Int(s), types.Int(e)})
			totalDays += e - s
		}
		in.SortBy("G", "T1")
		out := types.NewSchema(
			types.Column{Name: "G", Kind: types.KindInt},
			types.Column{Name: "T1", Kind: types.KindInt},
			types.Column{Name: "T2", Kind: types.KindInt},
			types.Column{Name: "N", Kind: types.KindInt},
		)
		ta := NewTAggr(in.Iter(), []int{0}, 1, 2, []AggSpec{{Kind: AggCount}}, out)
		got, err := rel.Drain(ta)
		if err != nil {
			t.Fatal(err)
		}
		var covered int64
		for _, row := range got.Tuples {
			covered += (row[2].AsInt() - row[1].AsInt()) * row[3].AsInt()
		}
		if covered != totalDays {
			t.Fatalf("trial %d: covered %d tuple-days, want %d", trial, covered, totalDays)
		}
	}
}

// TestQuickCoalescePreservesCoverage: coalescing must keep exactly the
// same set of (value, day) facts.
func TestQuickCoalescePreservesCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	coverage := func(r *rel.Relation) map[[2]int64]bool {
		m := map[[2]int64]bool{}
		for _, t := range r.Tuples {
			for d := t[1].AsInt(); d < t[2].AsInt(); d++ {
				m[[2]int64{t[0].AsInt(), d}] = true
			}
		}
		return m
	}
	for trial := 0; trial < 30; trial++ {
		in := rel.New(types.NewSchema(
			types.Column{Name: "G", Kind: types.KindInt},
			types.Column{Name: "T1", Kind: types.KindInt},
			types.Column{Name: "T2", Kind: types.KindInt},
		))
		for i := 0; i < 1+rng.Intn(50); i++ {
			s := rng.Int63n(40)
			in.Append(types.Tuple{types.Int(rng.Int63n(4)), types.Int(s), types.Int(s + 1 + rng.Int63n(15))})
		}
		in.SortBy("G", "T1")
		out, err := rel.Drain(NewCoalesce(in.Iter(), 1, 2))
		if err != nil {
			t.Fatal(err)
		}
		want := coverage(in)
		got := coverage(out)
		if len(want) != len(got) {
			t.Fatalf("trial %d: coverage %d vs %d", trial, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: lost fact %v", trial, k)
			}
		}
	}
}

// TestQuickSortKeysSubsetStable: sorting by a prefix then the full key
// must equal sorting by the full key (T12's correctness condition).
func TestQuickSortPrefixComposition(t *testing.T) {
	f := func(keys []int16, payload []int8) bool {
		in := genRelation(keys, payload)
		full, err := rel.Drain(NewSort(in.Iter(), []int{0, 1}))
		if err != nil {
			return false
		}
		prefixed, err := rel.Drain(NewSort(in.Iter(), []int{0}))
		if err != nil {
			return false
		}
		composed, err := rel.Drain(NewSort(prefixed.Iter(), []int{0, 1}))
		if err != nil {
			return false
		}
		return rel.EqualAsLists(full, composed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Sanity: the quick generators produce non-trivial inputs.
func TestQuickGeneratorsSane(t *testing.T) {
	r := genRelation([]int16{3, 1, 2}, []int8{9, 8, 7})
	if r.Cardinality() != 3 || r.Tuples[0][1].AsInt() != 9 {
		t.Fatalf("generator: %v", r)
	}
	ws := widen([]uint8{0, 15, 16, 255})
	if ws[2] != 0 || ws[3] != 15 {
		t.Fatalf("widen should fold keys mod 16: %v", ws)
	}
}
