// Package walorder is a fixture for the walorder analyzer: flushing
// the buffer pool only stages page images into the WAL buffer, so a
// FlushAll that is not followed by a durability barrier has published
// state that a crash can still lose.
//
//tango:durability
package walorder

type pool struct{}

func (pool) FlushAll() error { return nil }

type store struct{}

func (store) Sync() error       { return nil }
func (store) Checkpoint() error { return nil }
func (store) CommitLoad() error { return nil }
func (store) Close() error      { return nil }

// flushThenSync is the canonical good shape: the barrier follows the
// flush, so the staged page images are forced to disk.
func flushThenSync(p pool, s store) error {
	if err := p.FlushAll(); err != nil {
		return err
	}
	return s.Sync()
}

// flushThenCheckpoint uses a different barrier; still fine.
func flushThenCheckpoint(p pool, s store) error {
	if err := p.FlushAll(); err != nil {
		return err
	}
	return s.Checkpoint()
}

// flushInLoadBracket commits an atomic load after flushing.
func flushInLoadBracket(p pool, s store) error {
	if err := p.FlushAll(); err != nil {
		return err
	}
	return s.CommitLoad()
}

// bareFlush publishes staged pages with no barrier at all.
func bareFlush(p pool) error {
	return p.FlushAll() // want `FlushAll without a following durability barrier`
}

// barrierBeforeFlush has the ordering backwards: the sync cannot
// cover page images staged after it ran.
func barrierBeforeFlush(p pool, s store) error {
	if err := s.Sync(); err != nil {
		return err
	}
	return p.FlushAll() // want `FlushAll without a following durability barrier`
}

// callerOwnsBarrier documents the one legitimate escape hatch: the
// caller (checkpointLoop) issues the Sync immediately after.
func callerOwnsBarrier(p pool) error {
	//lint:ignore walorder barrier lives in checkpointLoop, the only caller
	return p.FlushAll()
}
