// Package uis generates a synthetic University Information System
// dataset standing in for the TIMECENTER UIS CD-1 data the paper
// evaluates on (that CD is not publicly distributable). The generator
// reproduces the published shape facts that the experiments depend on:
//
//   - EMPLOYEE: 49,972 tuples × 31 attributes (≈13.8 MB, ≈276 B/row);
//   - POSITION: 83,857 tuples × 8 attributes (≈6.7 MB, ≈80 B/row);
//   - eight POSITION subsets of 8k, 17k, 27k, 36k, 46k, 55k, 64k, 74k
//     tuples (prefixes of the full relation);
//   - most POSITION data concentrated after 1992, with about 65 % of
//     time periods starting in 1995 or later (drives Query 2's knee
//     and Query 3's crossover);
//   - a skewed PosID frequency distribution (breaks the optimizer's
//     uniform join-selectivity assumption exactly where the paper
//     reports mispredictions in Query 3).
//
// Generation is deterministic for a given seed.
package uis

import (
	"fmt"
	"math/rand"
	"time"

	"tango/internal/client"
	"tango/internal/types"
)

// Full-size cardinalities from the paper.
const (
	EmployeeRows = 49972
	PositionRows = 83857
)

// SubsetSizes are the eight POSITION variants of §5.1.
var SubsetSizes = []int{8000, 17000, 27000, 36000, 46000, 55000, 64000, 74000}

// PositionSchema is the 8-attribute POSITION relation.
func PositionSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "PosID", Kind: types.KindInt},
		types.Column{Name: "EmpID", Kind: types.KindInt},
		types.Column{Name: "EmpName", Kind: types.KindString},
		types.Column{Name: "Dept", Kind: types.KindString},
		types.Column{Name: "PayRate", Kind: types.KindFloat},
		types.Column{Name: "Title", Kind: types.KindString},
		types.Column{Name: "T1", Kind: types.KindDate},
		types.Column{Name: "T2", Kind: types.KindDate},
	)
}

// EmployeeSchema is the 31-attribute EMPLOYEE relation.
func EmployeeSchema() types.Schema {
	cols := []types.Column{
		{Name: "EmpID", Kind: types.KindInt},
		{Name: "EmpName", Kind: types.KindString},
		{Name: "Addr", Kind: types.KindString},
		{Name: "City", Kind: types.KindString},
		{Name: "State", Kind: types.KindString},
		{Name: "Zip", Kind: types.KindString},
		{Name: "Phone", Kind: types.KindString},
		{Name: "Email", Kind: types.KindString},
		{Name: "BirthDate", Kind: types.KindDate},
		{Name: "HireDate", Kind: types.KindDate},
	}
	for i := 1; i <= 21; i++ {
		kind := types.KindString
		if i%3 == 0 {
			kind = types.KindInt
		}
		cols = append(cols, types.Column{Name: fmt.Sprintf("Attr%02d", i), Kind: kind})
	}
	return types.Schema{Cols: cols}
}

var (
	firstNames = []string{"Tom", "Jane", "Ann", "Bob", "Cat", "Dan", "Eve", "Fay",
		"Gus", "Hal", "Ida", "Jon", "Kim", "Lee", "Mia", "Ned", "Ola", "Pam",
		"Quin", "Ray", "Sue", "Ted", "Uma", "Vic", "Wes", "Xia", "Yan", "Zoe"}
	lastNames = []string{"Smith", "Jones", "Brown", "Olsen", "Young", "Lopez",
		"Nguyen", "Kumar", "Chen", "Ivanov", "Muller", "Silva", "Sato", "Kim"}
	departments = []string{"CS", "Math", "Physics", "Biology", "History",
		"English", "Law", "Medicine", "Economics", "Music"}
	titles = []string{"Assistant", "Associate", "Professor", "Lecturer",
		"Instructor", "Researcher", "TA", "RA", "Staff", "Visiting"}
	cities = []string{"Tucson", "Aalborg", "Phoenix", "Copenhagen", "Tempe", "Aarhus"}
)

// Generator produces the two relations.
type Generator struct {
	Seed int64
}

// Positions generates n POSITION tuples. PosIDs follow a skewed
// (approximately Zipfian) frequency distribution; period starts are
// bimodal: ~35 % uniform over 1980–1994, ~65 % over 1995–1998.
func (g *Generator) Positions(n int) []types.Tuple {
	rng := rand.New(rand.NewSource(g.Seed + 101))
	zipf := rand.NewZipf(rng, 1.3, 4, 799) // PosIDs 1..800, skewed
	early1 := types.DayOf(1980, time.January, 1)
	early2 := types.DayOf(1995, time.January, 1)
	late2 := types.DayOf(1998, time.July, 1)
	rows := make([]types.Tuple, n)
	for i := range rows {
		posID := int64(zipf.Uint64()) + 1
		empID := rng.Int63n(EmployeeRows) + 1
		var start int64
		if rng.Float64() < 0.65 {
			// Period starts 1995 or later.
			start = early2 + rng.Int63n(late2-early2)
		} else {
			// Mostly after 1992 within the early mass too: weight the
			// tail of 1980–1994 so that "most data is concentrated
			// after 1992" (§5.2, Query 2).
			if rng.Float64() < 0.6 {
				start = types.DayOf(1992, time.January, 1) +
					rng.Int63n(early2-types.DayOf(1992, time.January, 1))
			} else {
				start = early1 + rng.Int63n(types.DayOf(1992, time.January, 1)-early1)
			}
		}
		duration := 30 + rng.Int63n(1400) // one month to ~4 years
		rows[i] = types.Tuple{
			types.Int(posID),
			types.Int(empID),
			types.Str(name(rng)),
			types.Str(departments[rng.Intn(len(departments))]),
			types.Float(5 + float64(rng.Intn(4500))/100), // $5.00–$50.00
			types.Str(titles[rng.Intn(len(titles))]),
			types.Date(start),
			types.Date(start + duration),
		}
	}
	return rows
}

// Employees generates n EMPLOYEE tuples (n ≤ 0 means the full
// 49,972). Filler attributes pad each row to roughly the paper's
// ≈276-byte average.
func (g *Generator) Employees(n int) []types.Tuple {
	if n <= 0 {
		n = EmployeeRows
	}
	rng := rand.New(rand.NewSource(g.Seed + 202))
	schema := EmployeeSchema()
	rows := make([]types.Tuple, n)
	for i := range rows {
		empName := name(rng)
		row := types.Tuple{
			types.Int(int64(i) + 1),
			types.Str(empName),
			types.Str(fmt.Sprintf("%d %s St", 1+rng.Intn(9999), lastNames[rng.Intn(len(lastNames))])),
			types.Str(cities[rng.Intn(len(cities))]),
			types.Str("AZ"),
			types.Str(fmt.Sprintf("%05d", rng.Intn(99999))),
			types.Str(fmt.Sprintf("(520) %03d-%04d", rng.Intn(1000), rng.Intn(10000))),
			types.Str(fmt.Sprintf("%s.%d@uis.edu", empName, i+1)),
			types.Date(types.DayOf(1940+rng.Intn(40), time.Month(1+rng.Intn(12)), 1+rng.Intn(28))),
			types.Date(types.DayOf(1975+rng.Intn(22), time.Month(1+rng.Intn(12)), 1+rng.Intn(28))),
		}
		for c := 10; c < schema.Len(); c++ {
			if schema.Cols[c].Kind == types.KindInt {
				row = append(row, types.Int(rng.Int63n(100000)))
			} else {
				row = append(row, types.Str(filler(rng, 8)))
			}
		}
		rows[i] = row
	}
	return rows
}

func name(rng *rand.Rand) string {
	return firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
}

func filler(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

// Load creates and bulk-loads the UIS relations into the DBMS:
// POSITION (positionRows tuples; ≤0 means full size), EMPLOYEE
// (employeeRows; ≤0 full), plus ANALYZE with the given histogram
// buckets. It returns the names of the loaded tables.
func Load(conn *client.Conn, positionRows, employeeRows, histogramBuckets int) ([]string, error) {
	g := &Generator{Seed: 1}
	if positionRows <= 0 {
		positionRows = PositionRows
	}
	if err := conn.CreateTable("POSITION", PositionSchema()); err != nil {
		return nil, err
	}
	if _, err := conn.Load("POSITION", g.Positions(positionRows)); err != nil {
		return nil, err
	}
	if err := conn.CreateTable("EMPLOYEE", EmployeeSchema()); err != nil {
		return nil, err
	}
	if _, err := conn.Load("EMPLOYEE", g.Employees(employeeRows)); err != nil {
		return nil, err
	}
	// Secondary indexes: the DBMS join methods of Query 4 (index
	// nested loop) and the clustering statistics need them.
	for _, ddl := range []string{
		"CREATE INDEX pos_posid ON POSITION (PosID)",
		"CREATE INDEX pos_empid ON POSITION (EmpID)",
		"CREATE INDEX emp_empid ON EMPLOYEE (EmpID)",
	} {
		if _, err := conn.Exec(ddl); err != nil {
			return nil, err
		}
	}
	for _, t := range []string{"POSITION", "EMPLOYEE"} {
		if _, err := conn.Exec(fmt.Sprintf("ANALYZE %s HISTOGRAM %d", t, histogramBuckets)); err != nil {
			return nil, err
		}
	}
	return []string{"POSITION", "EMPLOYEE"}, nil
}
