// Package analysis is a small, dependency-free static-analysis
// framework in the spirit of golang.org/x/tools/go/analysis, plus the
// project-specific analyzers that machine-check TANGO's iterator and
// plan-building contracts:
//
//   - iterclose: every opened rel.Iterator-shaped value is Closed on
//     all paths (a leaked Close pins buffer-pool pages and skews the
//     telemetry that feeds the adaptive cost loop), and Next is not
//     called on an exhausted iterator without re-Open;
//   - errlost: errors from Close/Next/Open and wire-layer calls are
//     not silently dropped;
//   - atomicfield: struct fields touched by both sync/atomic calls and
//     plain loads/stores (the class of data race behind the TempName
//     counter fix);
//   - schemaprop: operator constructors derive their output schema
//     from their input schemas instead of hard-coding column literals,
//     preserving the algebra's schema-propagation invariant;
//   - faultpath: wire/client call sites neither sever their caller's
//     context.Context nor classify resilience failures with
//     unwrap-unsafe type assertions (see faultpath.go);
//   - walorder: in durability-tagged packages (//tango:durability), a
//     BufferPool.FlushAll is followed by a WAL durability barrier
//     (Sync/Checkpoint/Close/CommitLoad), keeping the WAL-before-data
//     protocol machine-checked at its weakest seam (see walorder.go);
//   - spanfinish: every created telemetry.Span-shaped value is
//     Finished on all paths (an unfinished span never reaches the
//     flight recorder or the latency histograms), mirroring the
//     iterclose lifecycle contract for trace spans (see spanfinish.go);
//   - latchorder: lock acquisitions respect the //tango:lock-order
//     hierarchy — no re-entry of a held class, no acquisition against
//     the declared partial order — checked through calls via
//     interprocedural effect summaries (see latchorder.go);
//   - lockio: no blocking operation (store/file I/O, WAL sync, wire
//     round trip, unguarded channel op, sleep) is reachable while a
//     latch-class lock is held (see lockio.go);
//   - goleak: every spawned goroutine is provably joinable — its
//     blocking channel ops are buffered, guarded by a done/ctx
//     select, or matched by a guaranteed counterpart in the spawner
//     (see goleak.go).
//
// The last three are interprocedural: summary.go classifies every
// function into effect events, callgraph.go folds them bottom-up over
// the SCC condensation of the call graph into per-function summaries
// (lock classes acquired, blocking operations reachable, channel ops
// on parameters), and the analyzers replay each function's critical
// sections against the summaries of everything it calls. Summaries
// are serializable; cache.go reuses them across runs keyed on content
// hashes, so dependency packages are not recomputed.
//
// The framework loads and type-checks packages with the standard
// library only: `go list -export -json -deps` supplies file lists and
// compiler export data, go/parser and go/types do the rest. Findings
// can be suppressed with a
//
//	//lint:ignore <analyzer> <reason>
//
// comment on the flagged line or the line above it, or for a whole
// file with //lint:file-ignore <analyzer> <reason>. A suppression
// that no longer matches any finding is itself reported (analyzer
// name "stalesuppress"), so silenced findings cannot outlive their
// fix.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in reports and suppressions.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run inspects the package reachable through the pass and reports
	// findings via pass.Reportf.
	Run func(*Pass) error
}

// All returns every analyzer in the suite, in a stable order.
func All() []*Analyzer {
	return []*Analyzer{IterClose, ErrLost, AtomicField, SchemaProp, FaultPath, WALOrder, SpanFinish, LatchOrder, LockIO, GoLeak}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(list string) ([]*Analyzer, error) {
	if strings.TrimSpace(list) == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	pkgInfo *Package
	facts   *pkgFacts
	index   *Index

	diags []Diagnostic
}

// pkg returns the full loaded package behind the pass.
func (p *Pass) pkg() *Package { return p.pkgInfo }

// Diagnostic is one finding. Suggestion, when non-empty, is a
// machine-applyable fix hint printed by `tangolint -fix` and carried
// in the JSON report.
type Diagnostic struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suggestion string
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at the given position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportfFix records a finding with a machine-applyable suggestion.
func (p *Pass) ReportfFix(pos token.Pos, suggestion, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer:   p.Analyzer.Name,
		Pos:        p.Fset.Position(pos),
		Message:    fmt.Sprintf(format, args...),
		Suggestion: suggestion,
	})
}

// Run applies the analyzers to the packages and returns the combined,
// suppression-filtered findings sorted by position. Packages should
// arrive in dependency order (Load guarantees it) so the
// interprocedural analyzers see dependency summaries; packages
// analyzed in isolation simply see fewer cross-package effects.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ix := NewIndex()
	var out []Diagnostic
	for _, pkg := range pkgs {
		diags, err := AnalyzePackage(pkg, analyzers, ix)
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	sortDiags(out)
	return out, nil
}

// AnalyzePackage computes the package's effect summaries (installing
// them into ix for downstream packages), runs the analyzers, applies
// suppressions, and reports stale suppressions. The cache layer calls
// this per package; Run wraps it for whole-slice use.
func AnalyzePackage(pkg *Package, analyzers []*Analyzer, ix *Index) ([]Diagnostic, error) {
	facts := buildPkgFacts(pkg, ix)
	computeSummaries(facts, ix)
	return runAnalyzersOn(pkg, facts, analyzers, ix)
}

// runAnalyzersOn runs the analyzers over a package whose facts and
// summaries are already in the index. Safe to call concurrently for
// different packages: the analyzers only read the shared index.
func runAnalyzersOn(pkg *Package, facts *pkgFacts, analyzers []*Analyzer, ix *Index) ([]Diagnostic, error) {
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			pkgInfo:  pkg,
			facts:    facts,
			index:    ix,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range pass.diags {
			if sup.suppressed(d) {
				continue
			}
			out = append(out, d)
		}
	}
	out = append(out, sup.stale(analyzers)...)
	sortDiags(out)
	return out, nil
}

func sortDiags(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// --- suppressions ---

// StaleSuppressName is the analyzer name under which unused
// suppressions are reported. It is a driver-level check, not a
// regular analyzer: it can only be evaluated after every requested
// analyzer has run, and it cannot itself be suppressed.
const StaleSuppressName = "stalesuppress"

// suppression is one //lint:ignore or //lint:file-ignore directive.
type suppression struct {
	analyzer  string
	file      string
	line      int // 0 for file-level directives
	pos       token.Position
	fileLevel bool
	used      bool
}

type suppressionSet struct {
	list []*suppression
}

// collectSuppressions finds //lint:ignore and //lint:file-ignore
// directives. A line directive suppresses findings on its own line
// (trailing comment) and on the following line (own-line comment); a
// file directive suppresses the named analyzer in its whole file.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressionSet {
	sup := &suppressionSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				fileLevel := false
				switch {
				case strings.HasPrefix(text, "lint:file-ignore"):
					fileLevel = true
				case strings.HasPrefix(text, "lint:ignore"):
				default:
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // no analyzer name: malformed, ignore
				}
				pos := fset.Position(c.Pos())
				s := &suppression{analyzer: fields[1], file: pos.Filename, pos: pos, fileLevel: fileLevel}
				if !fileLevel {
					s.line = pos.Line
				}
				sup.list = append(sup.list, s)
			}
		}
	}
	return sup
}

// suppressed reports whether the diagnostic is covered by a directive,
// marking every covering directive as used.
func (s *suppressionSet) suppressed(d Diagnostic) bool {
	hit := false
	for _, sp := range s.list {
		if sp.file != d.Pos.Filename {
			continue
		}
		if sp.analyzer != d.Analyzer && sp.analyzer != "all" {
			continue
		}
		if sp.fileLevel || sp.line == d.Pos.Line || sp.line+1 == d.Pos.Line {
			sp.used = true
			hit = true
		}
	}
	return hit
}

// stale returns a diagnostic for every directive that names an
// analyzer in the run set but matched no finding — a suppression that
// has outlived its finding hides the next real one, so it must go.
func (s *suppressionSet) stale(analyzers []*Analyzer) []Diagnostic {
	inSet := map[string]bool{"all": true}
	for _, a := range analyzers {
		inSet[a.Name] = true
	}
	var out []Diagnostic
	for _, sp := range s.list {
		if sp.used || !inSet[sp.analyzer] {
			continue
		}
		form := "//lint:ignore"
		if sp.fileLevel {
			form = "//lint:file-ignore"
		}
		out = append(out, Diagnostic{
			Analyzer:   StaleSuppressName,
			Pos:        sp.pos,
			Message:    fmt.Sprintf("stale suppression: %s %s matches no finding; delete it", form, sp.analyzer),
			Suggestion: "delete the suppression comment",
		})
	}
	return out
}

// --- shared type helpers ---

var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is the built-in error type.
func isErrorType(t types.Type) bool { return t != nil && types.Identical(t, errorType) }

// methodSig finds a method by name in the method set of t (or *t for
// addressable named types) and returns its signature, or nil.
func methodSig(t types.Type, name string) *types.Signature {
	if t == nil {
		return nil
	}
	for _, typ := range []types.Type{t, pointerTo(t)} {
		if typ == nil {
			continue
		}
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i)
			if m.Obj().Name() != name {
				continue
			}
			if sig, ok := m.Obj().Type().(*types.Signature); ok {
				return sig
			}
		}
	}
	return nil
}

// pointerTo returns *t for named non-interface, non-pointer types and
// nil otherwise (the cases where the pointer method set adds methods).
func pointerTo(t types.Type) types.Type {
	if _, ok := t.Underlying().(*types.Pointer); ok {
		return nil
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		return nil
	}
	if _, ok := t.(*types.Named); ok {
		return types.NewPointer(t)
	}
	return nil
}

// isIteratorLike reports whether t follows the rel.Iterator cursor
// contract: Open() error, Close() error, and Next() (T, bool, error).
// Matching is structural so the analyzers work on any package (engine
// cursors, client row sets, test fixtures) without importing rel.
func isIteratorLike(t types.Type) bool {
	open := methodSig(t, "Open")
	if open == nil || open.Params().Len() != 0 || open.Results().Len() != 1 ||
		!isErrorType(open.Results().At(0).Type()) {
		return false
	}
	cl := methodSig(t, "Close")
	if cl == nil || cl.Params().Len() != 0 || cl.Results().Len() != 1 ||
		!isErrorType(cl.Results().At(0).Type()) {
		return false
	}
	next := methodSig(t, "Next")
	if next == nil || next.Params().Len() != 0 || next.Results().Len() != 3 {
		return false
	}
	res := next.Results()
	if b, ok := res.At(1).Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Bool {
		return false
	}
	return isErrorType(res.At(2).Type())
}

// callReturnsError reports whether the call's only or last result is
// an error, and returns the index of that result (-1 if none).
func errResultIndex(sig *types.Signature) int {
	if sig == nil {
		return -1
	}
	n := sig.Results().Len()
	if n == 0 {
		return -1
	}
	if isErrorType(sig.Results().At(n - 1).Type()) {
		return n - 1
	}
	return -1
}

// calleeFunc resolves the called function or method object of a call
// expression, or nil for calls through function values, conversions,
// and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// callSignature returns the signature of the called expression, or nil
// (e.g. for conversions and builtins).
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
