package bench

import (
	"runtime"
	"testing"
	"time"

	"tango/internal/algebra"
	"tango/internal/tango"
	"tango/internal/telemetry"
	"tango/internal/wire"
)

// benchLatency approximates a LAN round trip between the middleware
// and the DBMS. It is installed after loading, so setup runs at
// in-process speed and only the measured queries pay the wire.
var benchLatency = wire.Latency{RoundTrip: benchRT}

const benchRT = 2 * time.Millisecond

// newBenchSystem loads a System at wire speed, then installs the
// benchmark latency.
func newBenchSystem(b *testing.B, posRows int) *System {
	b.Helper()
	sys, err := NewSystem(Config{PositionRows: posRows, EmployeeRows: 50, Histograms: 10})
	if err != nil {
		b.Fatal(err)
	}
	sys.Srv.SetLatency(benchLatency)
	return sys
}

// runPlanBench executes one plan per iteration with Parallelism bound
// to GOMAXPROCS, exactly as the executor's auto setting resolves it —
// so `-cpu 1` measures the sequential algorithms and `-cpu N` (N>1)
// the parallel ones: windowed fetch pipelining, prefetched transfers,
// background sort runs, and pipelined partitioned aggregation. On a
// single hardware thread the win is latency overlap (up to N fetch
// round trips in flight while compute drains earlier batches); on
// real cores the partition workers add CPU fan-out.
func runPlanBench(b *testing.B, sys *System, np NamedPlan, sortMem int) {
	par := runtime.GOMAXPROCS(0)
	rows := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := &tango.Executor{Conn: sys.MW.Conn, Cat: sys.MW.Cat, Hint: np.Hint,
			CheckPlans: true, Parallelism: par, SortMemory: sortMem}
		out, err := ex.Run(np.Plan.Clone())
		if err != nil {
			b.Fatal(err)
		}
		rows = out.Cardinality()
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 && rows > 0 {
		b.ReportMetric(float64(rows)*float64(b.N)/sec, "rows/s")
	}
}

// BenchmarkQuery1 is the paper's Query 1 under its best plan (Figure
// 7, plan 1): the DBMS sorts, TAGGR^M aggregates above the transfer.
// With parallelism the aggregation is the pipelined partitioned
// TAGGR^M fed by a double-buffered transfer with a windowed fetch
// pipeline, so group sweeps and consecutive fetch round trips all
// overlap.
func BenchmarkQuery1(b *testing.B) {
	sys := newBenchSystem(b, 8400)
	runPlanBench(b, sys, Q1Plans()[0], 0)
}

// BenchmarkQuery1Tracing is BenchmarkQuery1 with this PR's telemetry
// pipeline live: a root span per query, trace headers on every wire
// op, per-attempt client spans, DBMS-side remote spans collected and
// stitched, the per-op and end-to-end latency histograms, and a
// flight-recorder snapshot. The registry is attached to the client
// only — not to the engine, whose per-tuple operator instrumentation
// is the separate, pre-existing -metrics cost. The delta against
// BenchmarkQuery1 is the tracing tax; the acceptance bar is <= 5%
// (archived in BENCH_6.json by bench-json).
func BenchmarkQuery1Tracing(b *testing.B) {
	reg := telemetry.NewRegistry()
	sys, err := NewSystem(Config{PositionRows: 8400, EmployeeRows: 50, Histograms: 10,
		Trace: true})
	if err != nil {
		b.Fatal(err)
	}
	sys.Srv.SetLatency(benchLatency)
	sys.MW.Conn.Metrics = reg
	np := Q1Plans()[0]
	par := runtime.GOMAXPROCS(0)
	rows := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := telemetry.NewSpan("query")
		ex := &tango.Executor{Conn: sys.MW.Conn, Cat: sys.MW.Cat, Hint: np.Hint,
			CheckPlans: true, Parallelism: par, Trace: root, WALProbe: sys.MW.WALProbe}
		out, err := ex.Run(np.Plan.Clone())
		if err != nil {
			b.Fatal(err)
		}
		root.Finish()
		telemetry.Stitch(root, sys.MW.Conn.TakeRemoteSpans(root.TraceID()))
		reg.Histogram("tango_query_seconds", nil, telemetry.LatencyBuckets).
			Observe(root.Elapsed().Seconds())
		sys.Flight.Record(root, np.Name, nil)
		rows = out.Cardinality()
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 && rows > 0 {
		b.ReportMetric(float64(rows)*float64(b.N)/sec, "rows/s")
	}
}

// BenchmarkSortM is SORT^M over an unsorted transfer with a small
// memory budget, so the sort spills runs. With parallelism the run
// generation happens on background workers while the windowed
// transfer keeps several fetches in flight, hiding the run sorts and
// writes under overlapped wire latency.
func BenchmarkSortM(b *testing.B) {
	sys := newBenchSystem(b, 8400)
	plan := algebra.Sort(algebra.TM(
		algebra.ProjectCols(algebra.Scan("POSITION", ""), "PosID", "EmpName", "T1", "T2")),
		"PosID", "T1")
	runPlanBench(b, sys, NamedPlan{Name: "sortM", Plan: plan}, 1024)
}
