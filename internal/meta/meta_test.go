package meta

import (
	"math/rand"
	"testing"

	"tango/internal/types"
)

func uniformValues(n int, lo, hi int64, seed int64) []types.Value {
	rng := rand.New(rand.NewSource(seed))
	out := make([]types.Value, n)
	for i := range out {
		out[i] = types.Int(lo + rng.Int63n(hi-lo+1))
	}
	return out
}

func TestBuildHistogramBasics(t *testing.T) {
	h := BuildHistogram(uniformValues(10000, 0, 999, 1), 10)
	if h == nil {
		t.Fatal("nil histogram")
	}
	if h.NumBuckets() != 10 || h.Rows != 10000 {
		t.Fatalf("buckets=%d rows=%d", h.NumBuckets(), h.Rows)
	}
	if h.B1(0) > 5 || h.B2(9) < 994 {
		t.Errorf("bounds off: %v", h.Bounds)
	}
}

func TestHistogramFractionBelowUniform(t *testing.T) {
	h := BuildHistogram(uniformValues(50000, 0, 9999, 2), 20)
	for _, a := range []float64{0, 1000, 2500, 5000, 7500, 9999} {
		got := h.FractionBelow(a)
		want := a / 10000
		if diff := got - want; diff < -0.02 || diff > 0.02 {
			t.Errorf("FractionBelow(%g) = %g, want ≈ %g", a, got, want)
		}
	}
	if h.FractionBelow(-5) != 0 || h.FractionBelow(20000) != 1 {
		t.Error("clamping failed")
	}
}

func TestHistogramSkewed(t *testing.T) {
	// Height-balanced histograms should track skew: 90% of values at
	// [0,100), 10% at [100,10000).
	rng := rand.New(rand.NewSource(3))
	vals := make([]types.Value, 0, 10000)
	for i := 0; i < 9000; i++ {
		vals = append(vals, types.Int(rng.Int63n(100)))
	}
	for i := 0; i < 1000; i++ {
		vals = append(vals, types.Int(100+rng.Int63n(9900)))
	}
	h := BuildHistogram(vals, 20)
	got := h.FractionBelow(100)
	if got < 0.85 || got > 0.95 {
		t.Errorf("FractionBelow(100) = %g, want ≈ 0.9", got)
	}
	// A uniform assumption would give 1%; make sure we are far from it.
	if got < 0.1 {
		t.Error("histogram behaves like uniform assumption")
	}
}

func TestHistogramMonotonic(t *testing.T) {
	h := BuildHistogram(uniformValues(5000, 0, 999, 4), 15)
	prev := -1.0
	for a := 0.0; a <= 1000; a += 37 {
		f := h.FractionBelow(a)
		if f < prev {
			t.Fatalf("FractionBelow not monotonic at %g: %g < %g", a, f, prev)
		}
		prev = f
	}
}

func TestHistogramBNo(t *testing.T) {
	h := BuildHistogram(uniformValues(1000, 0, 99, 5), 10)
	for i := 0; i < h.NumBuckets(); i++ {
		mid := (h.B1(i) + h.B2(i)) / 2
		if h.B1(i) == h.B2(i) {
			continue
		}
		if got := h.BNo(mid); got != i {
			t.Errorf("BNo(%g) = %d, want %d", mid, got, i)
		}
	}
	if h.BNo(-100) != 0 {
		t.Error("BNo below range should clamp to 0")
	}
	if h.BNo(1e9) != h.NumBuckets()-1 {
		t.Error("BNo above range should clamp to last")
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	if BuildHistogram(nil, 10) != nil {
		t.Error("empty input should give nil")
	}
	if BuildHistogram([]types.Value{types.Null, types.Null}, 10) != nil {
		t.Error("all-null input should give nil")
	}
	h := BuildHistogram([]types.Value{types.Int(5)}, 10)
	if h == nil || h.Rows != 1 {
		t.Fatal("single value histogram")
	}
	// Constant column: every value the same.
	vals := make([]types.Value, 100)
	for i := range vals {
		vals[i] = types.Int(7)
	}
	hc := BuildHistogram(vals, 5)
	if hc.FractionBelow(7) != 0 || hc.FractionBelow(8) != 1 {
		t.Errorf("constant column fractions: below7=%g below8=%g",
			hc.FractionBelow(7), hc.FractionBelow(8))
	}
}

func TestTableStatsHelpers(t *testing.T) {
	ts := &TableStats{
		Table:        "POSITION",
		Cardinality:  100,
		AvgTupleSize: 50,
		Columns: map[string]*ColumnStats{
			"POSID": {Name: "PosID", Distinct: 10},
		},
	}
	if ts.Size() != 5000 {
		t.Errorf("Size = %g", ts.Size())
	}
	if ts.Column("posid") == nil || ts.Column("PosID").Distinct != 10 {
		t.Error("case-insensitive column lookup failed")
	}
	if ts.Column("missing") != nil {
		t.Error("missing column should be nil")
	}
	var nilStats *TableStats
	if nilStats.Column("x") != nil {
		t.Error("nil receiver should be safe")
	}
}
