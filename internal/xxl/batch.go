package xxl

// This file holds the batch-native fast paths for the middleware
// operators. FILTER^M and PROJECT^M sit on the hottest pipelines
// (directly above TRANSFER^M); moving tuples through them a batch at a
// time removes one dynamic-dispatch Next call per tuple and lets the
// batch flow straight from the wire decoder to the consumer.

import (
	"tango/internal/rel"
	"tango/internal/types"
)

// NextBatch filters a batch at a time: it pulls input batches (using
// the input's own batch fast path when available) and compacts the
// qualifying tuples into dst. It only returns 0 at end of stream.
func (f *Filter) NextBatch(dst []types.Tuple) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if cap(f.scratch) < len(dst) {
		f.scratch = make([]types.Tuple, len(dst))
	}
	scratch := f.scratch[:len(dst)]
	for {
		n, err := rel.NextBatch(f.in, scratch)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return 0, nil
		}
		out := 0
		for _, t := range scratch[:n] {
			v, err := f.pred(t)
			if err != nil {
				return 0, err
			}
			if !v.IsNull() && v.AsBool() {
				dst[out] = t
				out++
			}
		}
		if out > 0 {
			return out, nil
		}
		// Whole batch filtered away: pull the next one rather than
		// returning a spurious end-of-stream.
	}
}

// NextBatch projects a batch at a time. Output tuples are built from a
// single backing allocation per batch, amortizing the per-tuple
// make+copy of the scalar path.
func (p *Project) NextBatch(dst []types.Tuple) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if cap(p.scratch) < len(dst) {
		p.scratch = make([]types.Tuple, len(dst))
	}
	scratch := p.scratch[:len(dst)]
	n, err := rel.NextBatch(p.in, scratch)
	if err != nil || n == 0 {
		return 0, err
	}
	w := len(p.idx)
	backing := make(types.Tuple, n*w)
	for i, t := range scratch[:n] {
		out := backing[i*w : (i+1)*w : (i+1)*w]
		for j, k := range p.idx {
			out[j] = t[k]
		}
		dst[i] = out
	}
	return n, nil
}

// NextBatch on SORT^M serves the in-memory sorted buffer a batch at a
// time; the external (spilled) case falls back to the tuple merge.
func (s *Sort) NextBatch(dst []types.Tuple) (int, error) {
	if s.merger != nil {
		n := 0
		for n < len(dst) {
			t, ok, err := s.merger.next()
			if err != nil {
				return n, err
			}
			if !ok {
				break
			}
			dst[n] = t
			n++
		}
		return n, nil
	}
	n := copy(dst, s.rows[s.pos:])
	s.pos += n
	return n, nil
}

// NextBatch on a shared-transfer reader copies tuple headers straight
// from the materialized buffer.
func (r *SharedReader) NextBatch(dst []types.Tuple) (int, error) {
	if r.pos < 0 {
		_, _, err := r.Next() // canonical not-opened error
		return 0, err
	}
	n := copy(dst, r.src.rel.Tuples[r.pos:])
	r.pos += n
	return n, nil
}

// NextBatch streams a wire batch through TRANSFER^M without the
// per-tuple indirection: the rows decoded from one fetch are handed to
// the consumer as one execution batch.
func (t *TransferM) NextBatch(dst []types.Tuple) (int, error) {
	if t.rows == nil {
		_, _, err := t.Next() // canonical not-opened error
		return 0, err
	}
	n, err := t.rows.NextBatch(dst)
	if err != nil || n == 0 {
		t.fb = t.rows.Feedback()
	}
	return n, err
}
