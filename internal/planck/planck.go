// Package planck is TANGO's runtime plan validator ("plan check"): a
// debug-mode complement to the static tangolint suite. It walks a
// physical plan bottom-up, independently re-deriving the properties
// the optimizer and executor rely on, and rejects plans that violate
// them before a single row flows:
//
//   - schema propagation: every column a predicate, sort, join,
//     grouping, or aggregate references must resolve in its input
//     schema, and planck's independently derived root schema must
//     agree with the algebra's own derivation;
//   - sort-order annotations: middleware algorithms are order-REQUIRING
//     as well as order-preserving — a merge join needs both inputs
//     sorted on the equi columns, TAGGR^M needs (GroupBy..., T1),
//     COALESCE^M needs all non-time columns then T1. planck proves the
//     required order is actually established by the plan below, using
//     the same order semantics the optimizer's list equivalences assume
//     (DBMS order exists only through a topmost SORT; T^M preserves it,
//     T^D destroys it);
//   - duplicate annotations: rdup, coalesce, and temporal aggregation
//     yield duplicate-free outputs; the annotation is tracked so tests
//     and EXPLAIN can surface it;
//   - transfer placement: T^M only over DBMS-resident input, T^D only
//     over middleware-resident input, join inputs co-located, and the
//     plan root middleware-resident.
//
// The checks run after optimization (is the chosen plan well-formed?)
// and again in the executor's build step (did rewriting or hand-built
// plans sneak past?), under the middleware's CheckPlans switch, which
// the bench harness turns on for every test run.
package planck

import (
	"fmt"
	"strings"

	"tango/internal/algebra"
	"tango/internal/eval"
	"tango/internal/types"
)

// Props are the derived physical properties of a subtree.
type Props struct {
	// Schema is planck's independently derived output schema.
	Schema types.Schema
	// Order lists the column names the output is sorted on (a prefix
	// guarantee), nil when no order is promised.
	Order []string
	// DupFree reports whether the output provably carries no duplicate
	// tuples.
	DupFree bool
	// Loc is where the subtree's root operator executes.
	Loc algebra.Location
}

// Check validates a complete physical plan against the invariants
// above. The plan is not modified.
func Check(plan *algebra.Node, cat algebra.Catalog) error {
	p, err := Infer(plan, cat)
	if err != nil {
		return err
	}
	if p.Loc != algebra.LocMW {
		return fmt.Errorf("planck: plan root executes in the DBMS; a complete plan delivers to the middleware (add a T^M)")
	}
	// Cross-check the independent schema derivation against the
	// algebra's own: a mismatch means one of the two propagation
	// implementations is wrong, which is exactly what this validator
	// exists to catch.
	want, err := plan.Schema(cat)
	if err != nil {
		return fmt.Errorf("planck: algebra schema derivation failed: %w", err)
	}
	if err := sameSchema(want, p.Schema); err != nil {
		return fmt.Errorf("planck: schema derivations disagree at the root: %w", err)
	}
	return nil
}

// CheckIterator asserts that a built iterator's schema matches the
// plan's derived schema, the executor-side half of the schema
// propagation invariant.
func CheckIterator(plan *algebra.Node, cat algebra.Catalog, got types.Schema) error {
	want, err := plan.Schema(cat)
	if err != nil {
		return fmt.Errorf("planck: deriving plan schema: %w", err)
	}
	if err := sameSchema(want, got); err != nil {
		return fmt.Errorf("planck: executor iterator schema diverges from the plan: %w", err)
	}
	return nil
}

// Infer derives the physical properties of a subtree, failing on the
// first invariant violation.
func Infer(n *algebra.Node, cat algebra.Catalog) (Props, error) {
	if n == nil {
		return Props{}, fmt.Errorf("planck: nil plan node")
	}
	switch n.Op {
	case algebra.OpScan:
		s, err := cat.TableSchema(n.Table)
		if err != nil {
			return Props{}, fmt.Errorf("planck: scan %s: %w", n.Table, err)
		}
		if n.Alias != "" {
			s = s.Qualify(n.Alias)
		}
		return Props{Schema: s, Loc: algebra.LocDBMS}, nil

	case algebra.OpSelect:
		in, err := Infer(n.Left, cat)
		if err != nil {
			return Props{}, err
		}
		if n.Pred == nil {
			return Props{}, fmt.Errorf("planck: %s: selection without a predicate", n.Label())
		}
		for _, c := range eval.ExprColumns(n.Pred) {
			if in.Schema.ColumnIndex(c) < 0 {
				return Props{}, fmt.Errorf("planck: %s: predicate references %q, not in input schema %v",
					n.Label(), c, in.Schema.Names())
			}
		}
		loc := n.Loc()
		if loc == algebra.LocMW {
			// The executor will compile this predicate against exactly
			// this schema; fail now rather than at build time.
			if _, err := eval.Compile(n.Pred, in.Schema); err != nil {
				return Props{}, fmt.Errorf("planck: %s: predicate does not compile: %w", n.Label(), err)
			}
		}
		return Props{Schema: in.Schema, Order: regionOrder(loc, in.Order), DupFree: in.DupFree, Loc: loc}, nil

	case algebra.OpProject:
		in, err := Infer(n.Left, cat)
		if err != nil {
			return Props{}, err
		}
		if len(n.Cols) == 0 {
			return Props{}, fmt.Errorf("planck: %s: projection keeps no columns", n.Label())
		}
		cols := make([]types.Column, len(n.Cols))
		for i, pc := range n.Cols {
			j := in.Schema.ColumnIndex(pc.Src)
			if j < 0 {
				return Props{}, fmt.Errorf("planck: %s: projects %q, not in input schema %v",
					n.Label(), pc.Src, in.Schema.Names())
			}
			cols[i] = types.Column{Name: pc.Out(), Kind: in.Schema.Cols[j].Kind}
		}
		loc := n.Loc()
		return Props{
			Schema: types.Schema{Cols: cols},
			Order:  projectOrder(regionOrder(loc, in.Order), n.Cols),
			// A projection can collapse distinct tuples onto one another.
			DupFree: false,
			Loc:     loc,
		}, nil

	case algebra.OpSort:
		in, err := Infer(n.Left, cat)
		if err != nil {
			return Props{}, err
		}
		if len(n.Keys) == 0 {
			return Props{}, fmt.Errorf("planck: %s: sort without keys", n.Label())
		}
		for _, k := range n.Keys {
			if in.Schema.ColumnIndex(k) < 0 {
				return Props{}, fmt.Errorf("planck: %s: sort key %q not in input schema %v",
					n.Label(), k, in.Schema.Names())
			}
		}
		return Props{Schema: in.Schema, Order: append([]string{}, n.Keys...), DupFree: in.DupFree, Loc: n.Loc()}, nil

	case algebra.OpJoin, algebra.OpTJoin:
		return inferJoin(n, cat)

	case algebra.OpTAggr:
		return inferTAggr(n, cat)

	case algebra.OpDupElim:
		in, err := Infer(n.Left, cat)
		if err != nil {
			return Props{}, err
		}
		loc := n.Loc()
		// RDUP^M hashes first occurrences: order preserving, no sort
		// requirement.
		return Props{Schema: in.Schema, Order: regionOrder(loc, in.Order), DupFree: true, Loc: loc}, nil

	case algebra.OpCoalesce:
		return inferCoalesce(n, cat)

	case algebra.OpTM:
		in, err := Infer(n.Left, cat)
		if err != nil {
			return Props{}, err
		}
		if in.Loc != algebra.LocDBMS {
			return Props{}, fmt.Errorf("planck: T^M over a middleware-resident input (%s); transfers are only legal at the DBMS↔middleware boundary", n.Left.Label())
		}
		// T^M preserves order (the paper's list equivalence T6): the
		// final ORDER BY of the shipped statement is observed row order.
		return Props{Schema: in.Schema, Order: in.Order, DupFree: in.DupFree, Loc: algebra.LocMW}, nil

	case algebra.OpTD:
		in, err := Infer(n.Left, cat)
		if err != nil {
			return Props{}, err
		}
		if in.Loc != algebra.LocMW {
			return Props{}, fmt.Errorf("planck: T^D over a DBMS-resident input (%s); transfers are only legal at the DBMS↔middleware boundary", n.Left.Label())
		}
		// Loading into a DBMS table discards order (multiset semantics),
		// which is what licenses the optimizer's sort elimination T11.
		return Props{Schema: in.Schema, Order: nil, DupFree: in.DupFree, Loc: algebra.LocDBMS}, nil

	default:
		return Props{}, fmt.Errorf("planck: unknown operator %v", n.Op)
	}
}

func inferJoin(n *algebra.Node, cat algebra.Catalog) (Props, error) {
	l, err := Infer(n.Left, cat)
	if err != nil {
		return Props{}, err
	}
	r, err := Infer(n.Right, cat)
	if err != nil {
		return Props{}, err
	}
	if l.Loc != r.Loc {
		return Props{}, fmt.Errorf("planck: %s: inputs in different locations (%v vs %v); a join cannot straddle the boundary",
			n.Label(), l.Loc, r.Loc)
	}
	if len(n.LeftCols) != len(n.RightCols) {
		return Props{}, fmt.Errorf("planck: %s: %d left vs %d right equi columns",
			n.Label(), len(n.LeftCols), len(n.RightCols))
	}
	for _, c := range n.LeftCols {
		if l.Schema.ColumnIndex(c) < 0 {
			return Props{}, fmt.Errorf("planck: %s: left equi column %q not in %v", n.Label(), c, l.Schema.Names())
		}
	}
	for _, c := range n.RightCols {
		if r.Schema.ColumnIndex(c) < 0 {
			return Props{}, fmt.Errorf("planck: %s: right equi column %q not in %v", n.Label(), c, r.Schema.Names())
		}
	}
	loc := n.Loc()
	if loc == algebra.LocMW {
		// The middleware join is a sort-merge: both inputs must arrive
		// sorted on the equi columns or Next will fail mid-stream.
		if !isOrderPrefix(n.LeftCols, l.Order) {
			return Props{}, fmt.Errorf("planck: %s: left input not sorted on %v (input order %v)",
				n.Label(), n.LeftCols, l.Order)
		}
		if !isOrderPrefix(n.RightCols, r.Order) {
			return Props{}, fmt.Errorf("planck: %s: right input not sorted on %v (input order %v)",
				n.Label(), n.RightCols, r.Order)
		}
	}

	var cols []types.Column
	if n.Op == algebra.OpJoin {
		cols = append(append([]types.Column{}, l.Schema.Cols...), r.Schema.Cols...)
	} else {
		// Temporal join: T1/T2 required on both sides; the left pair
		// carries the intersected period, the right pair is dropped.
		lt1, lt2 := algebra.TimeColumns(l.Schema)
		rt1, rt2 := algebra.TimeColumns(r.Schema)
		if lt1 < 0 || lt2 < 0 {
			return Props{}, fmt.Errorf("planck: %s: left input has no T1/T2 in %v", n.Label(), l.Schema.Names())
		}
		if rt1 < 0 || rt2 < 0 {
			return Props{}, fmt.Errorf("planck: %s: right input has no T1/T2 in %v", n.Label(), r.Schema.Names())
		}
		cols = append([]types.Column{}, l.Schema.Cols...)
		for i, c := range r.Schema.Cols {
			if i == rt1 || i == rt2 {
				continue
			}
			cols = append(cols, c)
		}
	}
	return Props{
		Schema: types.Schema{Cols: cols},
		// Merge joins emit in left-input order (order preserving).
		Order:   regionOrder(loc, l.Order),
		DupFree: false,
		Loc:     loc,
	}, nil
}

func inferTAggr(n *algebra.Node, cat algebra.Catalog) (Props, error) {
	in, err := Infer(n.Left, cat)
	if err != nil {
		return Props{}, err
	}
	t1, t2 := algebra.TimeColumns(in.Schema)
	if t1 < 0 || t2 < 0 {
		return Props{}, fmt.Errorf("planck: %s: input has no T1/T2 in %v", n.Label(), in.Schema.Names())
	}
	var cols []types.Column
	for _, g := range n.GroupBy {
		j := in.Schema.ColumnIndex(g)
		if j < 0 {
			return Props{}, fmt.Errorf("planck: %s: grouping column %q not in %v", n.Label(), g, in.Schema.Names())
		}
		cols = append(cols, types.Column{Name: algebra.Unqualify(g), Kind: in.Schema.Cols[j].Kind})
	}
	cols = append(cols,
		types.Column{Name: "T1", Kind: in.Schema.Cols[t1].Kind},
		types.Column{Name: "T2", Kind: in.Schema.Cols[t2].Kind})
	for _, a := range n.Aggs {
		kind := types.KindInt
		switch a.Fn {
		case "AVG":
			kind = types.KindFloat
		case "SUM", "MIN", "MAX":
			j := in.Schema.ColumnIndex(a.Col)
			if j < 0 {
				return Props{}, fmt.Errorf("planck: %s: aggregate column %q not in %v", n.Label(), a.Col, in.Schema.Names())
			}
			kind = in.Schema.Cols[j].Kind
		case "COUNT":
			// no argument column required
		default:
			return Props{}, fmt.Errorf("planck: %s: unknown aggregate %q", n.Label(), a.Fn)
		}
		cols = append(cols, types.Column{Name: a.OutName(), Kind: kind})
	}

	loc := n.Loc()
	var order []string
	if loc == algebra.LocMW {
		// §3.4: the sweep needs the argument sorted on the grouping
		// attributes and then T1.
		need := append(append([]string{}, n.GroupBy...), "T1")
		if !isOrderPrefix(need, in.Order) {
			return Props{}, fmt.Errorf("planck: %s: input not sorted on %v (input order %v)",
				n.Label(), need, in.Order)
		}
		for _, g := range n.GroupBy {
			order = append(order, algebra.Unqualify(g))
		}
		order = append(order, "T1")
	}
	return Props{Schema: types.Schema{Cols: cols}, Order: order, DupFree: true, Loc: loc}, nil
}

func inferCoalesce(n *algebra.Node, cat algebra.Catalog) (Props, error) {
	in, err := Infer(n.Left, cat)
	if err != nil {
		return Props{}, err
	}
	t1, t2 := algebra.TimeColumns(in.Schema)
	if t1 < 0 || t2 < 0 {
		return Props{}, fmt.Errorf("planck: %s: input has no T1/T2 in %v", n.Label(), in.Schema.Names())
	}
	loc := n.Loc()
	if loc == algebra.LocMW {
		// COALESCE^M merges adjacent value-equivalent periods in one
		// pass: the input must be sorted on every non-time column (any
		// permutation) and then T1.
		var nonTime []string
		for i, c := range in.Schema.Cols {
			if i != t1 && i != t2 {
				nonTime = append(nonTime, c.Name)
			}
		}
		if len(in.Order) < len(nonTime)+1 {
			return Props{}, fmt.Errorf("planck: %s: input order %v too short; need all of %v then T1",
				n.Label(), in.Order, nonTime)
		}
		if !sameColumnSet(in.Order[:len(nonTime)], nonTime) {
			return Props{}, fmt.Errorf("planck: %s: input order %v does not cover the non-time columns %v before T1",
				n.Label(), in.Order, nonTime)
		}
		if !colEq(in.Order[len(nonTime)], in.Schema.Cols[t1].Name) {
			return Props{}, fmt.Errorf("planck: %s: input order %v does not continue with T1 after the non-time columns",
				n.Label(), in.Order)
		}
	}
	// Coalescing maximal periods leaves no two tuples equal on all
	// columns: any such pair would have merged.
	return Props{Schema: in.Schema, Order: regionOrder(loc, in.Order), DupFree: true, Loc: loc}, nil
}

// --- order helpers ---

// regionOrder applies the region rule: DBMS-resident operators bury
// any sort below them in the generated SQL (real DBMSs promise no
// subquery order), so only middleware operators propagate order.
func regionOrder(loc algebra.Location, order []string) []string {
	if loc == algebra.LocDBMS {
		return nil
	}
	return order
}

// projectOrder maps an input order through a projection: the order
// survives as long as its columns are kept, renamed to their output
// names; the first dropped column truncates it.
func projectOrder(in []string, cols []algebra.ProjCol) []string {
	var out []string
	for _, k := range in {
		kept := ""
		for _, pc := range cols {
			if colEq(pc.Src, k) {
				kept = pc.Out()
				break
			}
		}
		if kept == "" {
			break
		}
		out = append(out, kept)
	}
	return out
}

// isOrderPrefix reports whether need is a prefix of order, matching
// column names case-insensitively and tolerating qualifiers.
func isOrderPrefix(need, order []string) bool {
	if len(need) > len(order) {
		return false
	}
	for i := range need {
		if !colEq(need[i], order[i]) {
			return false
		}
	}
	return true
}

// sameColumnSet reports whether a and b contain the same column names
// (qualifier tolerant), in any permutation.
func sameColumnSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
outer:
	for _, x := range a {
		for j, y := range b {
			if !used[j] && colEq(x, y) {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// colEq matches column names case-insensitively, tolerating a
// qualifier on either side.
func colEq(a, b string) bool {
	return strings.EqualFold(a, b) ||
		strings.EqualFold(algebra.Unqualify(a), algebra.Unqualify(b))
}

// sameSchema requires equal length, names, and kinds.
func sameSchema(want, got types.Schema) error {
	if want.Len() != got.Len() {
		return fmt.Errorf("%d columns vs %d (%v vs %v)", want.Len(), got.Len(), want.Names(), got.Names())
	}
	for i := range want.Cols {
		w, g := want.Cols[i], got.Cols[i]
		if !strings.EqualFold(w.Name, g.Name) {
			return fmt.Errorf("column %d named %q vs %q", i, w.Name, g.Name)
		}
		if w.Kind != g.Kind {
			return fmt.Errorf("column %d (%s) kind %v vs %v", i, w.Name, w.Kind, g.Kind)
		}
	}
	return nil
}
