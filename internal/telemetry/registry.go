// Package telemetry is the observability substrate of the middleware:
// a concurrency-safe metrics registry (counters, gauges, histograms
// with fixed buckets) with Prometheus-text and JSON exposition, a
// query-lifecycle span tracer, and an instrumented iterator that
// measures every physical operator (rows, Next calls, bytes, wall
// time) for EXPLAIN ANALYZE and the adaptive cost loop.
//
// All entry points are nil-safe: a nil *Registry (or nil metric, or
// nil *Span) is an always-on no-op, so instrumented code paths never
// need to guard against disabled telemetry.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attach dimensions to a metric series ({op="TAggr",loc="MW"}).
type Labels map[string]string

// labelKey renders labels deterministically (sorted by key). This is
// the registry's internal identity key, not the exposition format —
// %q is unambiguous, which is all a map key needs.
func labelKey(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote, and newline — and
// nothing else (Go's %q would emit \xNN and \t escapes that
// Prometheus parsers reject).
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promLabels renders labels for the Prometheus exposition (sorted,
// values escaped per the text format).
func promLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// metricKind discriminates the series types.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one registered (name, labels) pair.
type series struct {
	name   string
	labels Labels
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Registry is a concurrency-safe collection of metric series.
// The zero value is not usable; use NewRegistry. A nil *Registry is a
// no-op sink.
type Registry struct {
	mu     sync.RWMutex //tango:lock-order metrics latch
	series map[string]*series
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: map[string]*series{}}
}

func (r *Registry) get(name string, labels Labels, kind metricKind) (*series, bool) {
	key := name + labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %v (was %v)", key, kind, s.kind))
		}
		return s, true
	}
	cp := Labels{}
	for k, v := range labels {
		cp[k] = v
	}
	s := &series{name: name, labels: cp, kind: kind}
	r.series[key] = s
	return s, false
}

// Counter returns (creating if needed) the counter series.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	s, existed := r.get(name, labels, kindCounter)
	if !existed {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns (creating if needed) the gauge series.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	s, existed := r.get(name, labels, kindGauge)
	if !existed {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers (or replaces) a gauge whose value is computed at
// collection time — used for ratios and externally owned counters.
func (r *Registry) GaugeFunc(name string, labels Labels, fn func() float64) {
	if r == nil {
		return
	}
	s, _ := r.get(name, labels, kindGaugeFunc)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns (creating if needed) the histogram series with the
// given upper bucket bounds (ascending; +Inf is implicit). Bounds are
// fixed at first registration.
func (r *Registry) Histogram(name string, labels Labels, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	s, existed := r.get(name, labels, kindHistogram)
	if !existed {
		s.hist = newHistogram(buckets)
	}
	return s.hist
}

// NumSeries returns the number of distinct registered series.
func (r *Registry) NumSeries() int {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.series)
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increases the counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge value.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64

	// exemplars pin one representative observation per bucket (e.g.
	// the trace that produced the worst Q-error landing there), so a
	// reader of the histogram can jump straight to a concrete trace.
	exMu      sync.Mutex  //tango:lock-order exemplar latch
	exemplars []*Exemplar // lazily allocated, len(buckets) when present
}

// Exemplar links one observed value to the trace that produced it.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
	// Label is a short annotation, e.g. the offending operator.
	Label string `json:"label,omitempty"`
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveExemplar records one sample and pins it as the exemplar of
// the bucket it lands in, replacing any previous exemplar there.
func (h *Histogram) ObserveExemplar(v float64, traceID, label string) {
	if h == nil {
		return
	}
	h.Observe(v)
	i := sort.SearchFloat64s(h.bounds, v)
	h.exMu.Lock()
	if h.exemplars == nil {
		h.exemplars = make([]*Exemplar, len(h.buckets))
	}
	h.exemplars[i] = &Exemplar{Value: v, TraceID: traceID, Label: label}
	h.exMu.Unlock()
}

// SetExemplar pins v's trace as the exemplar of the bucket v lands in
// WITHOUT observing it — for callers that already Observed the value
// and later learn which trace best represents it (e.g. the worst
// Q-error operator of a query).
func (h *Histogram) SetExemplar(v float64, traceID, label string) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exMu.Lock()
	if h.exemplars == nil {
		h.exemplars = make([]*Exemplar, len(h.buckets))
	}
	h.exemplars[i] = &Exemplar{Value: v, TraceID: traceID, Label: label}
	h.exMu.Unlock()
}

// Exemplars returns the per-bucket exemplars (nil when none were ever
// recorded; entries may be nil).
func (h *Histogram) Exemplars() []*Exemplar {
	if h == nil {
		return nil
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if h.exemplars == nil {
		return nil
	}
	return append([]*Exemplar(nil), h.exemplars...)
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the bucket the rank falls into — the same
// estimate Prometheus's histogram_quantile computes. Observations in
// the +Inf bucket clamp to the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return quantileFromBuckets(h.bounds, counts, q)
}

// quantileFromBuckets is the shared quantile estimator over raw
// (non-cumulative) bucket counts.
func quantileFromBuckets(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		fc := float64(c)
		if cum+fc >= rank && fc > 0 {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			frac := (rank - cum) / fc
			return lo + (bounds[i]-lo)*frac
		}
		cum += fc
	}
	return bounds[len(bounds)-1]
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DurationBuckets are the default bounds (seconds) for operator and
// query timing histograms: 1µs … 10s.
var DurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}

// CountBuckets are the default bounds for row/byte-count histograms.
var CountBuckets = []float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7}

// QErrorBuckets are the default bounds for Q-error (estimated vs.
// observed cardinality drift) histograms: exact=1 up to 1000×.
var QErrorBuckets = []float64{1, 1.5, 2, 4, 8, 16, 64, 256, 1000}

// ExpBuckets generates n exponentially spaced bounds start, start×f,
// start×f², … — the stdlib-only stand-in for HDR histograms: constant
// relative error (factor 2 → ≤100% bucket width) across the range.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, 0, n)
	v := start
	for i := 0; i < n; i++ {
		out = append(out, v)
		v *= factor
	}
	return out
}

// LatencyBuckets are log-scale bounds (seconds) for per-op and
// end-to-end latency histograms: 1µs doubling up to ~16.8s, 25
// buckets — fine enough that p999 interpolation stays within a factor
// of two of the true value anywhere in the range.
var LatencyBuckets = ExpBuckets(1e-6, 2, 25)

// SeriesSnapshot is one collected series, used by both expositions.
type SeriesSnapshot struct {
	Name   string
	Labels Labels
	Kind   string
	// Value is set for counters and gauges.
	Value float64
	// Histogram data (Kind == "histogram").
	Bounds       []float64
	BucketCounts []int64 // len(Bounds)+1; last is the +Inf bucket
	Count        int64
	Sum          float64
	// Exemplars holds per-bucket exemplars (nil when none recorded).
	Exemplars []*Exemplar
}

// Quantile estimates a quantile from the snapshot's buckets.
func (s SeriesSnapshot) Quantile(q float64) float64 {
	return quantileFromBuckets(s.Bounds, s.BucketCounts, q)
}

// Snapshot collects every series, sorted by name then labels.
func (r *Registry) Snapshot() []SeriesSnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return labelKey(all[i].labels) < labelKey(all[j].labels)
	})
	out := make([]SeriesSnapshot, 0, len(all))
	for _, s := range all {
		snap := SeriesSnapshot{Name: s.name, Labels: s.labels, Kind: s.kind.String()}
		switch s.kind {
		case kindCounter:
			snap.Value = float64(s.counter.Value())
		case kindGauge:
			snap.Value = s.gauge.Value()
		case kindGaugeFunc:
			r.mu.RLock()
			fn := s.fn
			r.mu.RUnlock()
			if fn != nil {
				snap.Value = fn()
			}
		case kindHistogram:
			snap.Bounds = s.hist.bounds
			snap.BucketCounts = make([]int64, len(s.hist.buckets))
			for i := range s.hist.buckets {
				snap.BucketCounts[i] = s.hist.buckets[i].Load()
			}
			snap.Count = s.hist.Count()
			snap.Sum = s.hist.Sum()
			snap.Exemplars = s.hist.Exemplars()
		}
		out = append(out, snap)
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastName := ""
	for _, s := range r.Snapshot() {
		if s.Name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, promKind(s.Kind)); err != nil {
				return err
			}
			lastName = s.Name
		}
		lbl := promLabels(s.Labels)
		switch s.Kind {
		case "histogram":
			cum := int64(0)
			for i, c := range s.BucketCounts {
				cum += c
				le := "+Inf"
				if i < len(s.Bounds) {
					le = formatFloat(s.Bounds[i])
				}
				line := fmt.Sprintf("%s_bucket%s %d", s.Name, mergeLabel(s.Labels, "le", le), cum)
				// OpenMetrics-style exemplar suffix on the bucket line.
				if i < len(s.Exemplars) && s.Exemplars[i] != nil {
					ex := s.Exemplars[i]
					line += fmt.Sprintf(" # {trace_id=\"%s\",label=\"%s\"} %s",
						escapeLabelValue(ex.TraceID), escapeLabelValue(ex.Label), formatFloat(ex.Value))
				}
				if _, err := fmt.Fprintln(w, line); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, lbl, formatFloat(s.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, lbl, s.Count); err != nil {
				return err
			}
			if s.Count > 0 {
				for _, q := range [...]struct {
					suffix string
					q      float64
				}{{"p50", 0.50}, {"p99", 0.99}, {"p999", 0.999}} {
					if _, err := fmt.Fprintf(w, "%s_%s%s %s\n", s.Name, q.suffix, lbl, formatFloat(s.Quantile(q.q))); err != nil {
						return err
					}
				}
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, lbl, formatFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func promKind(k string) string {
	if k == "counter" || k == "gauge" || k == "histogram" {
		return k
	}
	return "gauge"
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// mergeLabel renders labels with one extra pair appended (the
// histogram "le" bound), escaped for the exposition format.
func mergeLabel(l Labels, k, v string) string {
	m := Labels{k: v}
	for kk, vv := range l {
		m[kk] = vv
	}
	return promLabels(m)
}

// WriteJSON renders the registry as a JSON object keyed by
// name{labels}; histograms become objects with count/sum/buckets.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := map[string]interface{}{}
	for _, s := range r.Snapshot() {
		key := s.Name + labelKey(s.Labels)
		switch s.Kind {
		case "histogram":
			buckets := map[string]int64{}
			cum := int64(0)
			for i, c := range s.BucketCounts {
				cum += c
				le := "+Inf"
				if i < len(s.Bounds) {
					le = formatFloat(s.Bounds[i])
				}
				buckets[le] = cum
			}
			h := map[string]interface{}{
				"count": s.Count, "sum": s.Sum, "buckets": buckets,
			}
			if s.Count > 0 {
				h["p50"] = s.Quantile(0.50)
				h["p99"] = s.Quantile(0.99)
				h["p999"] = s.Quantile(0.999)
			}
			if exs := nonNilExemplars(s.Exemplars); len(exs) > 0 {
				h["exemplars"] = exs
			}
			out[key] = h
		default:
			out[key] = s.Value
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// nonNilExemplars filters the per-bucket exemplar slice down to the
// recorded ones.
func nonNilExemplars(exs []*Exemplar) []*Exemplar {
	var out []*Exemplar
	for _, e := range exs {
		if e != nil {
			out = append(out, e)
		}
	}
	return out
}
