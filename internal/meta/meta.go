// Package meta defines the catalog statistics shared between the DBMS
// engine (which computes them via ANALYZE) and the middleware's
// Statistics Collector (which fetches them over the wire). These are
// exactly the "standard statistics" the paper lists in §3: block
// counts, numbers of tuples, and average tuple sizes for relations;
// minimum values, maximum values, numbers of distinct values,
// histograms, and index availability for attributes; and clusterings
// for indexes.
package meta

import (
	"fmt"
	"sort"

	"tango/internal/types"
)

// TableStats carries relation-level and per-attribute statistics.
type TableStats struct {
	Table        string
	Cardinality  int64
	Blocks       int64
	AvgTupleSize float64
	Columns      map[string]*ColumnStats // keyed by upper-case column name
}

// ColumnStats carries per-attribute statistics.
type ColumnStats struct {
	Name      string
	Min, Max  types.Value
	Distinct  int64
	NullCount int64
	Histogram *Histogram // nil when not collected
	// HasIndex reports whether a secondary index exists on the column;
	// ClusteringFactor is meaningful only when HasIndex.
	HasIndex         bool
	ClusteringFactor int64
}

// Size returns cardinality × average tuple size — the paper's size(r)
// used throughout the cost formulas.
func (s *TableStats) Size() float64 {
	return float64(s.Cardinality) * s.AvgTupleSize
}

// Column returns stats for the named column (case-insensitive), or nil.
func (s *TableStats) Column(name string) *ColumnStats {
	if s == nil || s.Columns == nil {
		return nil
	}
	return s.Columns[upper(name)]
}

func upper(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'a' && b[i] <= 'z' {
			b[i] -= 'a' - 'A'
		}
	}
	return string(b)
}

// Histogram is a height-balanced (equi-depth) histogram: each bucket
// holds approximately the same number of values. Buckets are defined by
// their boundaries over the sorted values, Oracle-style. The paper's
// estimation functions b1, b2, bVal, and bNo (§3.3) are methods here.
type Histogram struct {
	// Bounds has NumBuckets+1 entries: bucket i covers
	// [Bounds[i], Bounds[i+1]] (as positions in the sorted value list).
	Bounds []float64
	// Rows is the total number of (non-null) values the histogram
	// describes.
	Rows int64
}

// BuildHistogram builds a height-balanced histogram with the given
// number of buckets over the values (which are sorted internally).
// Values are reduced to their numeric axis (AsFloat), which is exact
// for the int/date attributes the temporal estimators target.
func BuildHistogram(values []types.Value, buckets int) *Histogram {
	if len(values) == 0 || buckets < 1 {
		return nil
	}
	xs := make([]float64, 0, len(values))
	for _, v := range values {
		if v.IsNull() {
			continue
		}
		xs = append(xs, v.AsFloat())
	}
	if len(xs) == 0 {
		return nil
	}
	sort.Float64s(xs)
	if buckets > len(xs) {
		buckets = len(xs)
	}
	h := &Histogram{Rows: int64(len(xs))}
	h.Bounds = make([]float64, buckets+1)
	for i := 0; i <= buckets; i++ {
		pos := i * (len(xs) - 1) / buckets
		if i == buckets {
			pos = len(xs) - 1
		}
		h.Bounds[i] = xs[pos]
	}
	return h
}

// NumBuckets returns the bucket count.
func (h *Histogram) NumBuckets() int { return len(h.Bounds) - 1 }

// B1 returns the start value of bucket i (0-based) — the paper's
// b1(i, H).
func (h *Histogram) B1(i int) float64 { return h.Bounds[i] }

// B2 returns the end value of bucket i — the paper's b2(i, H).
func (h *Histogram) B2(i int) float64 { return h.Bounds[i+1] }

// BVal returns the number of attribute values in bucket i — the
// paper's bVal(i, H). Height balance makes this Rows/NumBuckets.
func (h *Histogram) BVal(i int) float64 {
	return float64(h.Rows) / float64(h.NumBuckets())
}

// BNo returns the index of the bucket containing value a — the paper's
// bNo(A, H). Values outside the range clamp to the first/last bucket.
func (h *Histogram) BNo(a float64) int {
	n := h.NumBuckets()
	if a <= h.Bounds[0] {
		return 0
	}
	if a >= h.Bounds[n] {
		return n - 1
	}
	i := sort.SearchFloat64s(h.Bounds, a)
	// Bounds[i-1] < a <= Bounds[i]; a belongs to bucket i-1.
	if i > 0 {
		i--
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// FractionBelow estimates the fraction of values strictly below a,
// summing full preceding buckets plus a linear share of the bucket
// containing a — the histogram branch of the paper's StartBefore
// formula.
func (h *Histogram) FractionBelow(a float64) float64 {
	n := h.NumBuckets()
	if a <= h.Bounds[0] {
		return 0
	}
	if a >= h.Bounds[n] {
		return 1
	}
	i := h.BNo(a)
	total := float64(h.Rows)
	below := float64(i) * h.BVal(i)
	lo, hi := h.B1(i), h.B2(i)
	if hi > lo {
		below += (a - lo) / (hi - lo) * h.BVal(i)
	}
	f := below / total
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("Histogram{%d buckets, %d rows, [%g..%g]}",
		h.NumBuckets(), h.Rows, h.Bounds[0], h.Bounds[len(h.Bounds)-1])
}
