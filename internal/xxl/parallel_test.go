package xxl

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"tango/internal/rel"
	"tango/internal/types"
)

// checkGoroutines fails the test if the goroutine count has not
// returned to (about) its starting level — parallel operators must not
// leak workers, even on error or early-Close paths. Call it as
// `defer checkGoroutines(t)()` before creating the operator.
func checkGoroutines(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			runtime.GC() // nudge finalizers; workers should already be joined
			if n := runtime.NumGoroutine(); n <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d -> %d\n%s",
					before, runtime.NumGoroutine(), truncStack(string(buf[:n])))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func truncStack(s string) string {
	if len(s) > 4000 {
		return s[:4000] + "\n...(truncated)"
	}
	return s
}

// randomRel builds n rows of (K, Seq, V) with duplicate-heavy keys so
// stability is observable via the Seq column.
func randomRel(n, keySpace int, seed int64) *rel.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := rel.New(types.NewSchema(
		types.Column{Name: "K", Kind: types.KindInt},
		types.Column{Name: "Seq", Kind: types.KindInt},
		types.Column{Name: "V", Kind: types.KindString},
	))
	for i := 0; i < n; i++ {
		r.Append(types.Tuple{
			types.Int(rng.Int63n(int64(keySpace))),
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("v%d", i)),
		})
	}
	return r
}

// TestSortParallelMatchesSequential: the parallel sort must produce a
// tuple-for-tuple identical (list-equal) result to the sequential
// sort, for both the in-memory and the spilling path — order
// preservation and stability are contractual, not best-effort.
func TestSortParallelMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name      string
		n         int
		memTuples int
	}{
		{"inmemory", 20000, 0},        // single buffer, chunk-parallel sort
		{"spill", 30000, 1000},        // ~30 runs, worker-pool generation
		{"spill-tiny-runs", 5000, 64}, // many small runs
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer checkGoroutines(t)()
			in := randomRel(tc.n, 50, 7)

			seq := NewSort(in.Iter(), []int{0})
			seq.MemTuples = tc.memTuples
			want, err := rel.Drain(seq)
			if err != nil {
				t.Fatal(err)
			}

			for _, par := range []int{2, 4, 7} {
				p := NewSort(in.Iter(), []int{0})
				p.MemTuples = tc.memTuples
				p.Parallelism = par
				var st ParallelStats
				p.OnStats = func(s ParallelStats) { st = s }
				got, err := rel.Drain(p)
				if err != nil {
					t.Fatal(err)
				}
				if !rel.EqualAsLists(want, got) {
					t.Fatalf("par=%d: parallel sort differs from sequential", par)
				}
				if st.Partitions == 0 || st.Rows != int64(tc.n) {
					t.Errorf("par=%d: stats = %+v", par, st)
				}
				if st.Skew() < 1 {
					t.Errorf("par=%d: skew %g < 1", par, st.Skew())
				}
			}
		})
	}
}

// TestSortParallelDesc: descending multi-key parallel sort matches
// sequential.
func TestSortParallelDesc(t *testing.T) {
	in := randomRel(8000, 20, 11)
	seq := NewSortDesc(in.Iter(), []int{0, 2}, []bool{true, false})
	want, err := rel.Drain(seq)
	if err != nil {
		t.Fatal(err)
	}
	p := NewSortDesc(in.Iter(), []int{0, 2}, []bool{true, false})
	p.Parallelism = 4
	p.MemTuples = 500
	got, err := rel.Drain(p)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.EqualAsLists(want, got) {
		t.Fatal("parallel desc sort differs from sequential")
	}
}

// errAfterIter yields n tuples then fails, to exercise worker-pool
// error paths.
type errAfterIter struct {
	schema types.Schema
	n      int
	pos    int
}

func (e *errAfterIter) Schema() types.Schema { return e.schema }
func (e *errAfterIter) Open() error          { e.pos = 0; return nil }
func (e *errAfterIter) Close() error         { return nil }
func (e *errAfterIter) Next() (types.Tuple, bool, error) {
	if e.pos >= e.n {
		return nil, false, fmt.Errorf("xxl_test: synthetic input failure")
	}
	e.pos++
	return types.Tuple{types.Int(int64(e.n - e.pos)), types.Int(int64(e.pos))}, true, nil
}

// TestSortParallelInputError: an input error mid-spill must surface,
// leak no goroutines, and leave no run files behind.
func TestSortParallelInputError(t *testing.T) {
	defer checkGoroutines(t)()
	s2 := types.NewSchema(
		types.Column{Name: "K", Kind: types.KindInt},
		types.Column{Name: "Seq", Kind: types.KindInt},
	)
	srt := NewSort(&errAfterIter{schema: s2, n: 5000}, []int{0})
	srt.MemTuples = 256
	srt.Parallelism = 4
	err := srt.Open()
	if err == nil {
		_ = srt.Close()
		t.Fatal("expected input error")
	}
	if !strings.Contains(err.Error(), "synthetic input failure") {
		t.Fatalf("wrong error: %v", err)
	}
}

// TestSortParallelCloseEarly: closing a spilled parallel sort before
// exhausting it must release every run file and worker.
func TestSortParallelCloseEarly(t *testing.T) {
	defer checkGoroutines(t)()
	in := randomRel(10000, 30, 3)
	s := NewSort(in.Iter(), []int{0})
	s.MemTuples = 512
	s.Parallelism = 4
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // read a few, then abandon
		if _, ok, err := s.Next(); err != nil || !ok {
			t.Fatalf("next %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMergeSortedChunksStability: equal keys across chunk boundaries
// must come out in chunk order (= original input order).
func TestMergeSortedChunksStability(t *testing.T) {
	mk := func(k, seq int64) types.Tuple { return types.Tuple{types.Int(k), types.Int(seq)} }
	chunks := [][]types.Tuple{
		{mk(1, 0), mk(2, 1), mk(2, 2)},
		{mk(1, 3), mk(2, 4)},
		{mk(0, 5), mk(2, 6)},
	}
	out := mergeSortedChunks(chunks, []int{0}, nil)
	wantSeq := []int64{5, 0, 3, 1, 2, 4, 6}
	if len(out) != len(wantSeq) {
		t.Fatalf("len = %d", len(out))
	}
	for i, w := range wantSeq {
		if out[i][1].AsInt() != w {
			t.Fatalf("pos %d: seq %d, want %d (order %v)", i, out[i][1].AsInt(), w, out)
		}
	}
}

// temporalRel builds n rows of (G, V, T1, T2) sorted on (G, T1).
func temporalRel(n, groups int, seed int64) *rel.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := rel.New(types.NewSchema(
		types.Column{Name: "G", Kind: types.KindInt},
		types.Column{Name: "V", Kind: types.KindInt},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
	))
	for i := 0; i < n; i++ {
		s := rng.Int63n(300)
		r.Append(types.Tuple{
			types.Int(rng.Int63n(int64(groups))),
			types.Int(rng.Int63n(100)),
			types.Int(s),
			types.Int(s + 1 + rng.Int63n(40)),
		})
	}
	r.SortBy("G", "T1")
	return r
}

// TestPTAggrMatchesSequential: the partitioned temporal aggregation
// must be list-equal to the streaming TAggr for every aggregate kind.
func TestPTAggrMatchesSequential(t *testing.T) {
	defer checkGoroutines(t)()
	in := temporalRel(6000, 37, 5)
	out := types.NewSchema(
		types.Column{Name: "G", Kind: types.KindInt},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
		types.Column{Name: "A", Kind: types.KindInt},
	)
	for _, agg := range []AggSpec{
		{Kind: AggCount}, {Kind: AggSum, Col: 1}, {Kind: AggAvg, Col: 1},
		{Kind: AggMin, Col: 1}, {Kind: AggMax, Col: 1},
	} {
		seq := NewTAggr(in.Iter(), []int{0}, 2, 3, []AggSpec{agg}, out)
		want, err := rel.Drain(seq)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 2, 4, 8} {
			pa := NewPTAggr(in.Iter(), []int{0}, 2, 3, []AggSpec{agg}, out, par)
			var st ParallelStats
			pa.OnStats = func(s ParallelStats) { st = s }
			got, err := rel.Drain(pa)
			if err != nil {
				t.Fatal(err)
			}
			if !rel.EqualAsLists(want, got) {
				t.Fatalf("agg %s par %d: partitioned TAggr differs from sequential", agg.Kind, par)
			}
			if par > 1 && st.Partitions < 2 {
				t.Errorf("agg %s par %d: expected multiple partitions, got %+v", agg.Kind, par, st)
			}
		}
	}
}

// TestPTAggrRejectsUnsortedInput: same contract violation, same error
// as the sequential operator.
func TestPTAggrRejectsUnsortedInput(t *testing.T) {
	defer checkGoroutines(t)()
	in := temporalRel(2000, 11, 9)
	// Swap two rows to break (G, T1) order.
	in.Tuples[100], in.Tuples[1500] = in.Tuples[1500], in.Tuples[100]
	out := types.NewSchema(types.Column{Name: "G", Kind: types.KindInt},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
		types.Column{Name: "N", Kind: types.KindInt})
	pa := NewPTAggr(in.Iter(), []int{0}, 2, 3, []AggSpec{{Kind: AggCount}}, out, 4)
	// As in the sequential operator, the violation surfaces mid-stream.
	_, err := rel.Drain(pa)
	if err == nil {
		t.Fatal("expected unsorted-input error")
	} else if !strings.Contains(err.Error(), "not sorted on grouping attributes") {
		t.Fatalf("wrong error: %v", err)
	}
}

// joinRels builds two relations sorted on their key columns for join
// tests.
func joinRels(n, keys int, seed int64) (*rel.Relation, *rel.Relation) {
	rng := rand.New(rand.NewSource(seed))
	left := rel.New(types.NewSchema(
		types.Column{Name: "K", Kind: types.KindInt},
		types.Column{Name: "LV", Kind: types.KindInt},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
	))
	right := rel.New(types.NewSchema(
		types.Column{Name: "K", Kind: types.KindInt},
		types.Column{Name: "RV", Kind: types.KindString},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
	))
	for i := 0; i < n; i++ {
		s := rng.Int63n(200)
		left.Append(types.Tuple{
			types.Int(rng.Int63n(int64(keys))), types.Int(int64(i)),
			types.Int(s), types.Int(s + 1 + rng.Int63n(30)),
		})
		s = rng.Int63n(200)
		right.Append(types.Tuple{
			types.Int(rng.Int63n(int64(keys))), types.Str(fmt.Sprintf("r%d", i)),
			types.Int(s), types.Int(s + 1 + rng.Int63n(30)),
		})
	}
	left.SortBy("K", "LV") // deterministic secondary order
	right.SortBy("K", "RV")
	return left, right
}

// TestPJoinMatchesSequential: partitioned equi and temporal merge
// joins must be list-equal to their sequential counterparts.
func TestPJoinMatchesSequential(t *testing.T) {
	defer checkGoroutines(t)()
	left, right := joinRels(1600, 60, 21)

	seqMJ, err := rel.Drain(NewMergeJoin(left.Iter(), right.Iter(), []int{0}, []int{0}))
	if err != nil {
		t.Fatal(err)
	}
	seqTJ, err := rel.Drain(NewTJoin(left.Iter(), right.Iter(), []int{0}, []int{0}, 2, 3, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 4, 8} {
		pmj := NewPMergeJoin(left.Iter(), right.Iter(), []int{0}, []int{0}, par)
		gotMJ, err := rel.Drain(pmj)
		if err != nil {
			t.Fatal(err)
		}
		if !rel.EqualAsLists(seqMJ, gotMJ) {
			t.Fatalf("par %d: partitioned merge join differs from sequential", par)
		}
		ptj := NewPTJoin(left.Iter(), right.Iter(), []int{0}, []int{0}, 2, 3, 2, 3, par)
		var st ParallelStats
		ptj.OnStats = func(s ParallelStats) { st = s }
		gotTJ, err := rel.Drain(ptj)
		if err != nil {
			t.Fatal(err)
		}
		if !rel.EqualAsLists(seqTJ, gotTJ) {
			t.Fatalf("par %d: partitioned temporal join differs from sequential", par)
		}
		if gotTJ.Schema.Len() != seqTJ.Schema.Len() {
			t.Fatalf("par %d: schema mismatch", par)
		}
		if par > 1 && st.Partitions < 2 {
			t.Errorf("par %d: expected multiple partitions, got %+v", par, st)
		}
	}
}

// TestPJoinRejectsUnsortedInputs: both sides validated, sequential
// error text preserved.
func TestPJoinRejectsUnsortedInputs(t *testing.T) {
	defer checkGoroutines(t)()
	left, right := joinRels(2000, 7, 31)
	badLeft := left.Clone()
	badLeft.Tuples[10], badLeft.Tuples[1700] = badLeft.Tuples[1700], badLeft.Tuples[10]
	j := NewPMergeJoin(badLeft.Iter(), right.Iter(), []int{0}, []int{0}, 4)
	if err := j.Open(); err == nil || !strings.Contains(err.Error(), "left input not sorted") {
		t.Fatalf("left: err = %v", err)
	}
	badRight := right.Clone()
	badRight.Tuples[5], badRight.Tuples[1900] = badRight.Tuples[1900], badRight.Tuples[5]
	j2 := NewPMergeJoin(left.Iter(), badRight.Iter(), []int{0}, []int{0}, 4)
	if err := j2.Open(); err == nil || !strings.Contains(err.Error(), "right input not sorted") {
		t.Fatalf("right: err = %v", err)
	}
}

// TestSplitAtKeyBoundaries: partitions must be contiguous, cover the
// input, and never split a key group.
func TestSplitAtKeyBoundaries(t *testing.T) {
	in := randomRel(5000, 19, 41)
	in.SortBy("K")
	parts := splitAtKeyBoundaries(in.Tuples, []int{0}, 4)
	if len(parts) < 2 {
		t.Fatalf("expected multiple partitions, got %d", len(parts))
	}
	total := 0
	for i, p := range parts {
		total += len(p)
		if len(p) == 0 {
			t.Fatalf("partition %d empty", i)
		}
		if i > 0 {
			prevLast := parts[i-1][len(parts[i-1])-1]
			if types.CompareTuples(prevLast, p[0], []int{0}, nil) == 0 {
				t.Fatalf("key group split across partitions %d/%d", i-1, i)
			}
		}
	}
	if total != len(in.Tuples) {
		t.Fatalf("partitions cover %d of %d rows", total, len(in.Tuples))
	}
}

// TestPrefetchMatchesDirect: prefetched streams are tuple-for-tuple
// identical to direct iteration, for tuple and batch consumers.
func TestPrefetchMatchesDirect(t *testing.T) {
	defer checkGoroutines(t)()
	in := randomRel(5000, 40, 51)
	want := in.Clone()

	p := NewPrefetch(in.Iter())
	var st ParallelStats
	p.OnStats = func(s ParallelStats) { st = s }
	got, err := rel.Drain(p)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.EqualAsLists(want, got) {
		t.Fatal("prefetched stream differs from direct")
	}
	if st.Rows != int64(want.Cardinality()) || st.Partitions == 0 {
		t.Errorf("prefetch stats = %+v", st)
	}

	// Tuple-at-a-time consumption too.
	p2 := NewPrefetch(in.Iter())
	p2.BatchSize = 64
	if err := p2.Open(); err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		_, ok, err := p2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	if n != want.Cardinality() {
		t.Fatalf("tuple path rows = %d, want %d", n, want.Cardinality())
	}
}

// TestPrefetchCloseEarly: abandoning a prefetched stream mid-flight
// must stop and join the worker without leaks and still close the
// wrapped iterator.
func TestPrefetchCloseEarly(t *testing.T) {
	defer checkGoroutines(t)()
	in := randomRel(10000, 40, 53)
	p := NewPrefetch(in.Iter())
	p.BatchSize = 32
	if err := p.Open(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok, err := p.Next(); !ok || err != nil {
			t.Fatalf("next: ok=%v err=%v", ok, err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchErrorPropagates: a producer error mid-stream surfaces to
// the consumer and the worker exits.
func TestPrefetchErrorPropagates(t *testing.T) {
	defer checkGoroutines(t)()
	s2 := types.NewSchema(
		types.Column{Name: "K", Kind: types.KindInt},
		types.Column{Name: "Seq", Kind: types.KindInt},
	)
	p := NewPrefetch(&errAfterIter{schema: s2, n: 100})
	p.BatchSize = 16
	if err := p.Open(); err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for {
		_, ok, err := p.Next()
		if err != nil {
			sawErr = err
			break
		}
		if !ok {
			break
		}
	}
	if sawErr == nil || !strings.Contains(sawErr.Error(), "synthetic input failure") {
		t.Fatalf("error not propagated: %v", sawErr)
	}
	// The error is sticky.
	if _, ok, err := p.Next(); ok || err == nil {
		t.Fatal("error must be sticky")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchReopen: a closed prefetcher can be opened again (plans
// are occasionally re-run).
func TestPrefetchReopen(t *testing.T) {
	defer checkGoroutines(t)()
	in := randomRel(2000, 10, 57)
	p := NewPrefetch(in.Iter())
	for round := 0; round < 2; round++ {
		got, err := rel.Drain(p)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got.Cardinality() != in.Cardinality() {
			t.Fatalf("round %d: rows = %d", round, got.Cardinality())
		}
	}
}

// TestStackedPipelineStress layers every parallel operator into one
// pipeline — Prefetch{ Sort^M(parallel, spilling){ Prefetch{ scan }}}
// — and hammers it under the race detector: full drains, partial
// consumptions with early Close, and random batch sizes. Whatever the
// consumption pattern, no workers may leak and full drains must equal
// the sequential order.
func TestStackedPipelineStress(t *testing.T) {
	defer checkGoroutines(t)()
	in := randomRel(6000, 40, 99)
	want, err := rel.Drain(NewSort(in.Iter(), []int{0}))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		inner := NewPrefetch(in.Iter())
		inner.BatchSize = 1 + rng.Intn(300)
		srt := NewSort(inner, []int{0})
		srt.MemTuples = 512 // force spilling runs
		srt.Parallelism = 2 + rng.Intn(6)
		outer := NewPrefetch(srt)
		outer.BatchSize = 1 + rng.Intn(300)

		stop := rng.Intn(3) // 0: full drain, 1: tuple-partial, 2: batch-partial
		switch stop {
		case 0:
			got, err := rel.Drain(outer)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if !rel.EqualAsLists(got, want) {
				t.Fatalf("round %d: parallel pipeline diverged from sequential sort", round)
			}
		case 1:
			if err := outer.Open(); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			limit := rng.Intn(in.Cardinality())
			for i := 0; i < limit; i++ {
				if _, ok, err := outer.Next(); err != nil || !ok {
					t.Fatalf("round %d: next %d: ok=%v err=%v", round, i, ok, err)
				}
			}
			if err := outer.Close(); err != nil {
				t.Fatalf("round %d: close: %v", round, err)
			}
		case 2:
			if err := outer.Open(); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			buf := make([]types.Tuple, 1+rng.Intn(64))
			batches := rng.Intn(10)
			for i := 0; i < batches; i++ {
				if _, err := outer.NextBatch(buf); err != nil {
					t.Fatalf("round %d: batch %d: %v", round, i, err)
				}
			}
			if err := outer.Close(); err != nil {
				t.Fatalf("round %d: close: %v", round, err)
			}
		}
	}
}
