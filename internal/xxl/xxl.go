package xxl

import (
	"fmt"

	"tango/internal/eval"
	"tango/internal/rel"
	"tango/internal/sqlast"
	"tango/internal/types"
)

// Filter is FILTER^M: predicate selection in the middleware. Order
// preserving.
type Filter struct {
	in      rel.Iterator
	pred    eval.Func
	scratch []types.Tuple // batch fast-path input buffer
}

// NewFilter compiles the predicate against the input schema.
func NewFilter(in rel.Iterator, pred sqlast.Expr) (*Filter, error) {
	f, err := eval.Compile(pred, in.Schema())
	if err != nil {
		return nil, err
	}
	return &Filter{in: in, pred: f}, nil
}

// Schema returns the input schema.
func (f *Filter) Schema() types.Schema { return f.in.Schema() }

// Open opens the input.
func (f *Filter) Open() error { return f.in.Open() }

// Close closes the input.
func (f *Filter) Close() error { return f.in.Close() }

// Next returns the next tuple satisfying the predicate.
func (f *Filter) Next() (types.Tuple, bool, error) {
	for {
		t, ok, err := f.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		v, err := f.pred(t)
		if err != nil {
			return nil, false, err
		}
		if !v.IsNull() && v.AsBool() {
			return t, true, nil
		}
	}
}

// Project is PROJECT^M: column selection/renaming by position. Order
// preserving.
type Project struct {
	in      rel.Iterator
	idx     []int
	schema  types.Schema
	scratch []types.Tuple // batch fast-path input buffer
}

// NewProject keeps the input columns at the given indexes, renaming
// them per the output schema.
func NewProject(in rel.Iterator, idx []int, out types.Schema) *Project {
	return &Project{in: in, idx: idx, schema: out}
}

// Schema returns the output schema.
func (p *Project) Schema() types.Schema { return p.schema }

// Open opens the input.
func (p *Project) Open() error { return p.in.Open() }

// Close closes the input.
func (p *Project) Close() error { return p.in.Close() }

// Next projects the next tuple.
func (p *Project) Next() (types.Tuple, bool, error) {
	t, ok, err := p.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(types.Tuple, len(p.idx))
	for i, j := range p.idx {
		out[i] = t[j]
	}
	return out, true, nil
}

// MergeJoin is JOIN^M: a sort-merge equi-join. Both inputs must be
// sorted on their join columns. Output order follows the left input
// (order preserving in the paper's sense).
type MergeJoin struct {
	left, right  rel.Iterator
	lkeys, rkeys []int
	schema       types.Schema

	lcur   types.Tuple
	lkey   types.Tuple
	run    []types.Tuple // right tuples matching lkey
	ri     int
	rnext  types.Tuple // lookahead on right
	rdone  bool
	ldone  bool
	opened bool
}

// NewMergeJoin joins sorted inputs on pairwise key columns.
func NewMergeJoin(left, right rel.Iterator, lkeys, rkeys []int) *MergeJoin {
	return &MergeJoin{
		left: left, right: right, lkeys: lkeys, rkeys: rkeys,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema returns the concatenated schema.
func (j *MergeJoin) Schema() types.Schema { return j.schema }

// Open opens both inputs.
func (j *MergeJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	j.lcur, j.lkey, j.run, j.ri = nil, nil, nil, 0
	j.rnext, j.rdone, j.ldone = nil, false, false
	j.opened = true
	if err := j.advanceRight(); err != nil {
		return err
	}
	return nil
}

func (j *MergeJoin) advanceRight() error {
	t, ok, err := j.right.Next()
	if err != nil {
		return err
	}
	if !ok {
		j.rnext = nil
		j.rdone = true
		return nil
	}
	// Validate the sorted-input contract: silently accepting unsorted
	// input would drop join matches.
	if j.rnext != nil {
		if types.CompareTuples(keyTuple(j.rnext, j.rkeys), keyTuple(t, j.rkeys), seqIdx(len(j.rkeys)), nil) > 0 {
			return errJoinUnsorted("right")
		}
	}
	j.rnext = t.Clone()
	return nil
}

func keyTuple(t types.Tuple, keys []int) types.Tuple {
	k := make(types.Tuple, len(keys))
	for i, idx := range keys {
		k[i] = t[idx]
	}
	return k
}

func seqIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func (j *MergeJoin) keyOf(t types.Tuple, keys []int) types.Tuple {
	k := make(types.Tuple, len(keys))
	for i, idx := range keys {
		k[i] = t[idx]
	}
	return k
}

func cmpKeys(a, b types.Tuple) int {
	idx := make([]int, len(a))
	for i := range idx {
		idx[i] = i
	}
	return types.CompareTuples(a, b, idx, nil)
}

// Next produces the next joined tuple.
func (j *MergeJoin) Next() (types.Tuple, bool, error) {
	if !j.opened {
		return nil, false, fmt.Errorf("xxl: merge join not opened")
	}
	for {
		// Emit pairs from the current run.
		if j.lcur != nil && j.ri < len(j.run) {
			r := j.run[j.ri]
			j.ri++
			out := make(types.Tuple, 0, len(j.lcur)+len(r))
			out = append(out, j.lcur...)
			out = append(out, r...)
			return out, true, nil
		}
		// Advance left.
		t, ok, err := j.left.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		j.lcur = t.Clone()
		k := j.keyOf(j.lcur, j.lkeys)
		if j.lkey != nil {
			switch cmpKeys(k, j.lkey) {
			case 0:
				j.ri = 0 // same key: reuse the run
				continue
			case -1:
				return nil, false, errJoinUnsorted("left")
			}
		}
		j.lkey = k
		// Advance right until its key >= k, collecting the matching run.
		j.run = j.run[:0]
		j.ri = 0
		for !j.rdone {
			rk := j.keyOf(j.rnext, j.rkeys)
			c := cmpKeys(rk, k)
			if c < 0 {
				if err := j.advanceRight(); err != nil {
					return nil, false, err
				}
				continue
			}
			if c > 0 {
				break
			}
			j.run = append(j.run, j.rnext)
			if err := j.advanceRight(); err != nil {
				return nil, false, err
			}
		}
	}
}

// Close closes both inputs.
func (j *MergeJoin) Close() error {
	err1 := j.left.Close()
	err2 := j.right.Close()
	j.run = nil
	if err1 != nil {
		return err1
	}
	return err2
}

// TJoin is TJOIN^M: a temporal sort-merge join. Inputs sorted on their
// equi-join columns; within each matching group, pairs with
// overlapping [T1, T2) periods are emitted with the intersected
// period. The output schema is the left schema (T1/T2 now the
// intersection) plus the right schema minus its time columns.
type TJoin struct {
	mj         *MergeJoin
	lt1, lt2   int
	rt1, rt2   int // offsets within the right tuple
	rightWidth int
	schema     types.Schema
}

// NewTJoin builds a temporal join over inputs sorted by their equi
// columns. lt1/lt2 index the left input's period; rt1/rt2 the right's.
func NewTJoin(left, right rel.Iterator, lkeys, rkeys []int, lt1, lt2, rt1, rt2 int) *TJoin {
	rs := right.Schema()
	return &TJoin{
		mj:  NewMergeJoin(left, right, lkeys, rkeys),
		lt1: lt1, lt2: lt2, rt1: rt1, rt2: rt2,
		rightWidth: rs.Len(),
		schema:     tjoinSchema(left.Schema(), rs, rt1, rt2),
	}
}

// tjoinSchema is the temporal-join output schema: the left schema
// (T1/T2 will carry the intersected period) plus the right schema
// minus its time columns.
func tjoinSchema(ls, rs types.Schema, rt1, rt2 int) types.Schema {
	cols := append([]types.Column{}, ls.Cols...)
	for i, c := range rs.Cols {
		if i == rt1 || i == rt2 {
			continue
		}
		cols = append(cols, c)
	}
	return types.Schema{Cols: cols}
}

// errJoinUnsorted is the sorted-input contract violation for merge
// joins; the partitioned and sequential joins report it identically.
func errJoinUnsorted(side string) error {
	return fmt.Errorf("xxl: merge join %s input not sorted on join keys", side)
}

// errNotOpened reports use of an operator before Open.
func errNotOpened(op string) error {
	return fmt.Errorf("xxl: %s not opened", op)
}

// Schema returns the temporal-join output schema.
func (j *TJoin) Schema() types.Schema { return j.schema }

// Open opens the underlying merge join.
func (j *TJoin) Open() error { return j.mj.Open() }

// Close closes the underlying merge join.
func (j *TJoin) Close() error { return j.mj.Close() }

// Next returns the next overlapping pair with its intersected period.
func (j *TJoin) Next() (types.Tuple, bool, error) {
	leftWidth := j.mj.left.Schema().Len()
	for {
		t, ok, err := j.mj.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		lp := types.Period{Start: t[j.lt1].AsInt(), End: t[j.lt2].AsInt()}
		rp := types.Period{Start: t[leftWidth+j.rt1].AsInt(), End: t[leftWidth+j.rt2].AsInt()}
		inter, ok2 := lp.Intersect(rp)
		if !ok2 {
			continue
		}
		out := make(types.Tuple, 0, j.schema.Len())
		for i := 0; i < leftWidth; i++ {
			switch i {
			case j.lt1:
				out = append(out, coerceTime(t[j.lt1], inter.Start))
			case j.lt2:
				out = append(out, coerceTime(t[j.lt2], inter.End))
			default:
				out = append(out, t[i])
			}
		}
		for i := 0; i < j.rightWidth; i++ {
			if i == j.rt1 || i == j.rt2 {
				continue
			}
			out = append(out, t[leftWidth+i])
		}
		return out, true, nil
	}
}

// coerceTime builds a time value of the same kind as the sample.
func coerceTime(sample types.Value, day int64) types.Value {
	if sample.Kind() == types.KindDate {
		return types.Date(day)
	}
	return types.Int(day)
}

// DupElim is DUPELIM^M: hash-based duplicate elimination, keeping the
// first occurrence (order preserving).
type DupElim struct {
	in   rel.Iterator
	seen map[string]bool
}

// NewDupElim removes duplicate tuples.
func NewDupElim(in rel.Iterator) *DupElim { return &DupElim{in: in} }

// Schema returns the input schema.
func (d *DupElim) Schema() types.Schema { return d.in.Schema() }

// Open opens the input and resets state.
func (d *DupElim) Open() error {
	d.seen = map[string]bool{}
	return d.in.Open()
}

// Close closes the input.
func (d *DupElim) Close() error {
	d.seen = nil
	return d.in.Close()
}

// Next returns the next first-occurrence tuple.
func (d *DupElim) Next() (types.Tuple, bool, error) {
	for {
		t, ok, err := d.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := canonKey(t)
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		return t.Clone(), true, nil
	}
}

// Coalesce is COALESCE^M: merges value-equivalent tuples whose periods
// overlap or meet. The input must be sorted on all non-time columns
// and then T1.
type Coalesce struct {
	in      rel.Iterator
	t1, t2  int
	pending types.Tuple
	done    bool
}

// NewCoalesce coalesces periods at columns t1/t2 of a sorted input.
func NewCoalesce(in rel.Iterator, t1, t2 int) *Coalesce {
	return &Coalesce{in: in, t1: t1, t2: t2}
}

// Schema returns the input schema.
func (c *Coalesce) Schema() types.Schema { return c.in.Schema() }

// Open opens the input.
func (c *Coalesce) Open() error {
	c.pending = nil
	c.done = false
	return c.in.Open()
}

// Close closes the input.
func (c *Coalesce) Close() error { return c.in.Close() }

// valueEquivalent compares all non-time columns.
func (c *Coalesce) valueEquivalent(a, b types.Tuple) bool {
	for i := range a {
		if i == c.t1 || i == c.t2 {
			continue
		}
		if !types.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Next returns the next maximal coalesced tuple.
func (c *Coalesce) Next() (types.Tuple, bool, error) {
	if c.done {
		return nil, false, nil
	}
	for {
		t, ok, err := c.in.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			c.done = true
			if c.pending != nil {
				out := c.pending
				c.pending = nil
				return out, true, nil
			}
			return nil, false, nil
		}
		if c.pending == nil {
			c.pending = t.Clone()
			continue
		}
		p := types.Period{Start: c.pending[c.t1].AsInt(), End: c.pending[c.t2].AsInt()}
		q := types.Period{Start: t[c.t1].AsInt(), End: t[c.t2].AsInt()}
		if c.valueEquivalent(c.pending, t) && q.Start <= p.End {
			// Extend the pending period.
			m := p.Merge(q)
			c.pending[c.t1] = coerceTime(c.pending[c.t1], m.Start)
			c.pending[c.t2] = coerceTime(c.pending[c.t2], m.End)
			continue
		}
		out := c.pending
		c.pending = t.Clone()
		return out, true, nil
	}
}

// canonKey renders a tuple so equal tuples produce equal keys.
func canonKey(t types.Tuple) string {
	buf := make([]byte, 0, 32)
	for _, v := range t {
		switch {
		case v.IsNull():
			buf = append(buf, 0, 'N')
		case v.Kind() == types.KindString:
			buf = append(buf, 's', ':')
			buf = append(buf, v.AsString()...)
		default:
			buf = append(buf, 'n', ':')
			buf = append(buf, fmt.Sprintf("%v", v.AsFloat())...)
		}
		buf = append(buf, 0x1f)
	}
	return string(buf)
}
