# TANGO temporal middleware — build / verify targets.

GO ?= go

.PHONY: all build vet test race ci clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ci is the full verification gate: compile everything, vet, and run
# the test suite under the race detector.
ci: build vet race

clean:
	$(GO) clean ./...
