// Command tango is an interactive shell for the temporal middleware:
// it boots an embedded DBMS, loads the synthetic UIS dataset, and
// accepts temporal SQL at a prompt. Regular SQL is forwarded to the
// DBMS untouched; VALIDTIME queries go through the middleware
// optimizer and its split execution.
//
//	tango> VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION GROUP BY PosID ORDER BY PosID
//	tango> EXPLAIN VALIDTIME SELECT ...
//	tango> EXPLAIN ANALYZE VALIDTIME SELECT ...
//	tango> SELECT COUNT(*) FROM POSITION
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tango/internal/bench"
	"tango/internal/client"
	"tango/internal/rel"
	"tango/internal/storage"
	"tango/internal/telemetry"
	"tango/internal/tsql"
	"tango/internal/wire"
)

func main() {
	posRows := flag.Int("position", 8400, "POSITION rows to generate (0 = paper full size)")
	empRows := flag.Int("employee", 5000, "EMPLOYEE rows to generate (0 = paper full size)")
	calibrate := flag.Int("calibrate", 0, "calibration sample rows (0 = default cost factors)")
	command := flag.String("c", "", "run one statement and exit (scriptable mode)")
	metricsAddr := flag.String("metrics", "", `serve /metrics, /debug/vars, and /debug/pprof on this address (e.g. "127.0.0.1:9090")`)
	checkPlans := flag.Bool("checkplans", true, "validate every optimized plan and executor build with the planck plan checker")
	parallelism := flag.Int("parallelism", 0, "middleware operator fan-out: 0 = GOMAXPROCS, 1 = sequential algorithms")
	retries := flag.Int("retries", client.DefaultRetryPolicy().MaxAttempts, "max attempts per idempotent wire call (1 = no retries, 0 = disable the resilience layer)")
	opTimeout := flag.Duration("op-timeout", client.DefaultRetryPolicy().OpTimeout, "per-attempt deadline for a wire call (0 = none)")
	chaos := flag.String("chaos", "", `inject a deterministic fault schedule into the wire, e.g. "seed=7;stall=2ms;fetch@3=drop;load~partial=0.05"`)
	chaosSeed := flag.Int64("chaos-seed", 0, "override the fault schedule's seed (replays a chaos run; 0 = keep the schedule's own seed)")
	dataDir := flag.String("data-dir", "", "persist the database in this directory (WAL-backed durable store; a directory that already holds a database is recovered and reopened; empty = in-memory)")
	crash := flag.String("crash", "", `kill the store at scripted write points, e.g. "wal@7=torn;page@3=partial" — shares the -chaos grammar; requires -data-dir; restart with the same -data-dir to recover`)
	flag.Parse()

	quiet := *command != ""
	if !quiet {
		fmt.Println("TANGO temporal middleware — loading UIS data...")
	}
	retry := client.RetryPolicy{} // -retries=0 disables the resilience layer
	if *retries > 0 {
		retry = client.DefaultRetryPolicy()
		retry.MaxAttempts = *retries
		retry.OpTimeout = *opTimeout
	}
	var faults *wire.FaultInjector
	var crashPoints []storage.CrashPoint
	if *chaos != "" {
		sched, err := wire.ParseSchedule(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		if *chaosSeed != 0 {
			sched.Seed = *chaosSeed
		}
		// The grammar is shared with the storage crash harness: wire
		// rules feed the injector, wal@/page@ traps feed the store.
		wireSched, points, err := bench.SplitSchedule(sched)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		crashPoints = append(crashPoints, points...)
		faults = wireSched.Injector()
		if !quiet {
			fmt.Printf("chaos: injecting %q\n", sched.String())
		}
	}
	if *crash != "" {
		sched, err := wire.ParseSchedule(*crash)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crash:", err)
			os.Exit(1)
		}
		wireSched, points, err := bench.SplitSchedule(sched)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crash:", err)
			os.Exit(1)
		}
		if len(wireSched.Traps) != 0 || len(wireSched.Probs) != 0 {
			fmt.Fprintln(os.Stderr, "crash: wire faults (exec/query/fetch/load/insert/stats) belong to -chaos")
			os.Exit(1)
		}
		crashPoints = append(crashPoints, points...)
	}
	var crashScript *storage.CrashScript
	if len(crashPoints) > 0 {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "crash: storage crash points require -data-dir (the in-memory store has no write points)")
			os.Exit(1)
		}
		crashScript = storage.NewCrashScript(crashPoints...)
		if !quiet {
			fmt.Printf("crash: %d scripted write point(s) armed; the store dies there — restart with -data-dir %s to recover\n",
				len(crashPoints), *dataDir)
		}
	}
	reg := telemetry.NewRegistry()
	sys, err := bench.NewSystem(bench.Config{
		PositionRows: *posRows,
		EmployeeRows: *empRows,
		Histograms:   20,
		Calibrate:    *calibrate,
		Metrics:      reg,
		Parallelism:  *parallelism,
		Retry:        retry,
		Faults:       faults,
		DataDir:      *dataDir,
		Crash:        crashScript,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "boot:", err)
		os.Exit(1)
	}
	defer sys.Close()
	sys.MW.CheckPlans = *checkPlans
	if st := sys.Recovery; st != nil && !quiet {
		fmt.Printf("data-dir %s: recovered in %v — %d WAL record(s) replayed, %d torn tail(s), %d checksum failure(s) repaired, %d load(s) rolled back, %d temp table(s) collected\n",
			*dataDir, st.Duration.Round(time.Millisecond), st.ReplayedRecords,
			st.TornTails, st.ChecksumFailures, st.RolledBackLoads, sys.GCCollected)
		if sys.Reopened {
			fmt.Println("existing database reopened; UIS load skipped (run ANALYZE output is fresh)")
		}
	}
	if *metricsAddr != "" {
		addr, stop, err := telemetry.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		defer stop()
		if !quiet {
			fmt.Printf("metrics on http://%s/metrics (also /debug/vars, /debug/pprof)\n", addr)
		}
	}
	if *command != "" {
		if err := dispatch(sys, strings.TrimSpace(*command)); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("loaded POSITION (%d rows), EMPLOYEE (%d rows)\n", sys.PositionRows, sys.EmployeeRows)
	fmt.Println(`type temporal SQL ("VALIDTIME SELECT ..."), regular SQL, EXPLAIN <query>,`)
	fmt.Println(`EXPLAIN ANALYZE <query> (measured span + operator profile), \tables,`)
	fmt.Println(`\stats <table>, \factors, \trace (last query's spans), \metrics, or \q`)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("tango> ")
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit"):
			return
		}
		if err := dispatch(sys, line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

func dispatch(sys *bench.System, line string) error {
	upper := strings.ToUpper(line)
	switch {
	case line == `\tables`:
		for _, name := range sys.DB.TableNames() {
			t, err := sys.DB.Table(name)
			if err != nil {
				return err
			}
			fmt.Printf("%-24s %s\n", name, t.Schema)
		}
		return nil

	case strings.HasPrefix(line, `\stats `):
		table := strings.TrimSpace(line[len(`\stats `):])
		stats, err := sys.MW.Conn.TableStats(table, 20)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d rows, %d blocks, %.1f B/row\n",
			stats.Table, stats.Cardinality, stats.Blocks, stats.AvgTupleSize)
		schema, err := sys.MW.Conn.TableSchema(table)
		if err != nil {
			return err
		}
		for _, col := range schema.Cols {
			cs := stats.Column(col.Name)
			if cs == nil {
				continue
			}
			hist := ""
			if cs.Histogram != nil {
				hist = fmt.Sprintf(", %d-bucket histogram", cs.Histogram.NumBuckets())
			}
			idx := ""
			if cs.HasIndex {
				idx = fmt.Sprintf(", indexed (clustering %d)", cs.ClusteringFactor)
			}
			fmt.Printf("  %-12s min=%v max=%v distinct=%d%s%s\n",
				cs.Name, cs.Min, cs.Max, cs.Distinct, hist, idx)
		}
		return nil

	case line == `\factors`:
		f := sys.MW.Model.F
		fmt.Printf("p_tm=%.5f p_td=%.5f p_sem=%.5f\n", f.TM, f.TD, f.SelM)
		fmt.Printf("p_taggm1=%.5f p_taggm2=%.5f p_taggd1=%.5f p_taggd2=%.5f\n",
			f.TAggrM1, f.TAggrM2, f.TAggrD1, f.TAggrD2)
		fmt.Printf("sortM=%.5f sortD=%.5f joinM=%.5f joinD=%.5f scanD=%.5f\n",
			f.SortM, f.SortD, f.JoinM, f.JoinD, f.ScanD)
		return nil

	case line == `\trace`:
		tr := sys.MW.LastTrace()
		if tr == nil {
			return fmt.Errorf("no traced query yet")
		}
		fmt.Print(tr.Render())
		return nil

	case line == `\metrics`:
		return sys.Metrics.WritePrometheus(os.Stdout)

	case strings.HasPrefix(upper, "EXPLAIN ANALYZE "):
		query := strings.TrimSpace(line[len("EXPLAIN ANALYZE "):])
		plan, err := tsql.Parse(query, sys.MW.Cat)
		if err != nil {
			return err
		}
		report, _, err := sys.MW.ExplainAnalyze(plan)
		if err != nil {
			return err
		}
		fmt.Print(report)
		return nil

	case strings.HasPrefix(upper, "EXPLAIN "):
		query := strings.TrimSpace(line[len("EXPLAIN "):])
		plan, err := tsql.Parse(query, sys.MW.Cat)
		if err != nil {
			return err
		}
		out, err := sys.MW.Explain(plan)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil

	case strings.HasPrefix(upper, "VALIDTIME"):
		plan, err := tsql.Parse(line, sys.MW.Cat)
		if err != nil {
			return err
		}
		start := time.Now()
		out, res, err := sys.MW.Run(plan)
		if err != nil {
			return err
		}
		printRelation(out, 40)
		fmt.Printf("%d rows in %.3fs (optimizer: %d classes, %d elements, plan %s)\n",
			out.Cardinality(), time.Since(start).Seconds(),
			res.Classes, res.Elements, bench.PlanSignature(res.Best))
		return nil

	case strings.HasPrefix(upper, "SELECT"):
		start := time.Now()
		out, _, err := sys.MW.Conn.QueryAll(line)
		if err != nil {
			return err
		}
		printRelation(out, 40)
		fmt.Printf("%d rows in %.3fs (DBMS passthrough)\n", out.Cardinality(), time.Since(start).Seconds())
		return nil

	default:
		// DDL/DML passthrough.
		n, err := sys.MW.Conn.Exec(line)
		if err != nil {
			return err
		}
		fmt.Printf("ok (%d rows)\n", n)
		return nil
	}
}

func printRelation(r *rel.Relation, limit int) {
	fmt.Println(strings.Join(r.Schema.Names(), " | "))
	for i, t := range r.Tuples {
		if i >= limit {
			fmt.Printf("... (%d more rows)\n", r.Cardinality()-limit)
			return
		}
		parts := make([]string, len(t))
		for j, v := range t {
			parts[j] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
}
