package optimizer

import (
	"testing"
)

// TestSearchStatisticsExported checks the telemetry accounting the
// optimizer attaches to every Result: classes/elements, the number of
// plans priced in phase two, per-rule firing counts, and wall time.
func TestSearchStatisticsExported(t *testing.T) {
	o := newOptimizer()
	res, err := o.Optimize(query1Initial())
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes <= 0 || res.Elements <= 0 {
		t.Fatalf("memo accounting missing: %d classes, %d elements", res.Classes, res.Elements)
	}
	if res.Elements < res.Classes {
		t.Errorf("elements (%d) < classes (%d)", res.Elements, res.Classes)
	}
	if res.PlansCosted != len(res.Candidates) {
		t.Errorf("PlansCosted = %d, candidates = %d", res.PlansCosted, len(res.Candidates))
	}
	if res.PlansCosted <= 1 {
		t.Errorf("expected several costed plans for Query 1, got %d", res.PlansCosted)
	}
	if res.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", res.Elapsed)
	}
	if len(res.RulesFired) == 0 {
		t.Fatal("no rule firings recorded")
	}
	total := 0
	for rule, n := range res.RulesFired {
		if rule == "" {
			t.Error("unnamed rule fired")
		}
		if n <= 0 {
			t.Errorf("rule %s fired %d times", rule, n)
		}
		total += n
	}
	// Moving the aggregation to the middleware requires at least the
	// transfer-introduction rules to have fired; the closure fires far
	// more rewrites than distinct plans survive deduplication.
	if total < res.PlansCosted {
		t.Errorf("total firings %d < plans costed %d", total, res.PlansCosted)
	}
}

// TestRulesFiredStableAcrossRuns: rule accounting must be
// deterministic, like the rest of the optimizer.
func TestRulesFiredStableAcrossRuns(t *testing.T) {
	a, err := newOptimizer().Optimize(query1Initial())
	if err != nil {
		t.Fatal(err)
	}
	b, err := newOptimizer().Optimize(query1Initial())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.RulesFired) != len(b.RulesFired) {
		t.Fatalf("rule sets differ: %v vs %v", a.RulesFired, b.RulesFired)
	}
	for rule, n := range a.RulesFired {
		if b.RulesFired[rule] != n {
			t.Errorf("rule %s: %d vs %d firings", rule, n, b.RulesFired[rule])
		}
	}
}
