package engine

import (
	"fmt"
	"sort"

	"tango/internal/btree"
	"tango/internal/rel"
	"tango/internal/storage"
	"tango/internal/types"
)

// --- Heap scan ---

// heapScan streams all live tuples of a table page-at-a-time through
// the buffer pool: memory use is one page of decoded tuples, and the
// pool's read accounting reflects the scan.
type heapScan struct {
	table  *Table
	schema types.Schema

	numPages int
	pageNo   int32
	buf      []types.Tuple
	pos      int
	opened   bool
}

func newHeapScan(t *Table, qualifier string) *heapScan {
	schema := t.Schema
	if qualifier != "" {
		schema = schema.Qualify(qualifier)
	}
	return &heapScan{table: t, schema: schema}
}

func (s *heapScan) Schema() types.Schema { return s.schema }

func (s *heapScan) Open() error {
	// The scan covers exactly the pinned version's visibility bound:
	// pages appended by concurrent commits lie past it, and the tail
	// page is cut at the version's slot count.
	s.numPages = int(s.table.pages)
	s.pageNo = 0
	s.buf = s.buf[:0]
	s.pos = 0
	s.opened = true
	return nil
}

func (s *heapScan) Next() (types.Tuple, bool, error) {
	if !s.opened {
		return nil, false, fmt.Errorf("engine: scan not opened")
	}
	for s.pos >= len(s.buf) {
		if int(s.pageNo) >= s.numPages {
			return nil, false, nil
		}
		maxSlots := -1
		if int(s.pageNo) == s.numPages-1 {
			maxSlots = int(s.table.tailSlots)
		}
		var err error
		s.buf, err = s.table.Heap.PageTuplesN(s.pageNo, maxSlots, s.buf[:0])
		if err != nil {
			return nil, false, err
		}
		s.pageNo++
		s.pos = 0
	}
	t := s.buf[s.pos]
	s.pos++
	return t, true, nil
}

func (s *heapScan) Close() error { s.buf = nil; return nil }

// --- Index scan ---

// indexScan reads tuples via a secondary index in key order, optionally
// restricted to a key range.
type indexScan struct {
	table  *Table
	col    string
	schema types.Schema
	lo, hi types.Value
	hiIncl bool
	rids   []storage.RecordID
	pos    int
}

func newIndexScan(t *Table, qualifier, col string, lo, hi types.Value, hiIncl bool) *indexScan {
	schema := t.Schema
	if qualifier != "" {
		schema = schema.Qualify(qualifier)
	}
	return &indexScan{table: t, col: col, schema: schema, lo: lo, hi: hi, hiIncl: hiIncl}
}

func (s *indexScan) Schema() types.Schema { return s.schema }

func (s *indexScan) Open() error {
	idx := s.table.Index(s.col)
	if idx == nil {
		return fmt.Errorf("engine: no index on %s.%s", s.table.Name, s.col)
	}
	s.rids = s.rids[:0]
	s.pos = 0
	// Index trees may be shared with later versions (in-place single
	// row inserts); the version's visibility bound filters entries the
	// snapshot must not see.
	idx.AscendRange(s.lo, s.hi, s.hiIncl, func(e btree.Entry) bool {
		if s.table.visible(e.RID) {
			s.rids = append(s.rids, e.RID)
		}
		return true
	})
	return nil
}

func (s *indexScan) Next() (types.Tuple, bool, error) {
	if s.pos >= len(s.rids) {
		return nil, false, nil
	}
	t, err := s.table.Heap.Get(s.rids[s.pos])
	if err != nil {
		return nil, false, err
	}
	s.pos++
	return t, true, nil
}

func (s *indexScan) Close() error { s.rids = nil; return nil }

// --- Filter ---

type filterIter struct {
	in   rel.Iterator
	pred evalFunc
}

func newFilter(in rel.Iterator, pred evalFunc) *filterIter {
	return &filterIter{in: in, pred: pred}
}

func (f *filterIter) Schema() types.Schema { return f.in.Schema() }
func (f *filterIter) Open() error          { return f.in.Open() }
func (f *filterIter) Close() error         { return f.in.Close() }

func (f *filterIter) Next() (types.Tuple, bool, error) {
	for {
		t, ok, err := f.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		v, err := f.pred(t)
		if err != nil {
			return nil, false, err
		}
		if !v.IsNull() && v.AsBool() {
			return t, true, nil
		}
	}
}

// --- Project ---

type projectIter struct {
	in     rel.Iterator
	schema types.Schema
	exprs  []evalFunc
	out    types.Tuple
}

func newProject(in rel.Iterator, schema types.Schema, exprs []evalFunc) *projectIter {
	return &projectIter{in: in, schema: schema, exprs: exprs, out: make(types.Tuple, len(exprs))}
}

func (p *projectIter) Schema() types.Schema { return p.schema }
func (p *projectIter) Open() error          { return p.in.Open() }
func (p *projectIter) Close() error         { return p.in.Close() }

func (p *projectIter) Next() (types.Tuple, bool, error) {
	t, ok, err := p.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(types.Tuple, len(p.exprs))
	for i, e := range p.exprs {
		v, err := e(t)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

// --- Sort ---

// sortIter materializes its input and sorts it by key expressions.
type sortIter struct {
	in    rel.Iterator
	keys  []evalFunc
	descs []bool
	rows  []types.Tuple
	pos   int
}

func newSort(in rel.Iterator, keys []evalFunc, descs []bool) *sortIter {
	return &sortIter{in: in, keys: keys, descs: descs}
}

func (s *sortIter) Schema() types.Schema { return s.in.Schema() }

func (s *sortIter) Open() error {
	if err := s.in.Open(); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	s.pos = 0
	type keyed struct {
		t  types.Tuple
		ks types.Tuple
	}
	var rows []keyed
	for {
		t, ok, err := s.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ks := make(types.Tuple, len(s.keys))
		for i, k := range s.keys {
			v, err := k(t)
			if err != nil {
				return err
			}
			ks[i] = v
		}
		rows = append(rows, keyed{t: t.Clone(), ks: ks})
	}
	idx := make([]int, len(s.keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return types.CompareTuples(rows[i].ks, rows[j].ks, idx, s.descs) < 0
	})
	for _, r := range rows {
		s.rows = append(s.rows, r.t)
	}
	return s.in.Close()
}

func (s *sortIter) Next() (types.Tuple, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}

func (s *sortIter) Close() error { s.rows = nil; return nil }

// --- Nested-loop join ---

// nlJoin is a block nested-loop join: the right input is materialized
// once, the left input streams; pred (may be nil) filters the
// concatenated tuple.
type nlJoin struct {
	left, right rel.Iterator
	pred        evalFunc
	schema      types.Schema
	rightRows   []types.Tuple
	cur         types.Tuple
	ri          int
}

func newNLJoin(left, right rel.Iterator, pred evalFunc) *nlJoin {
	return &nlJoin{
		left: left, right: right, pred: pred,
		schema: left.Schema().Concat(right.Schema()),
	}
}

func (j *nlJoin) Schema() types.Schema { return j.schema }

func (j *nlJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	j.rightRows = j.rightRows[:0]
	for {
		t, ok, err := j.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		j.rightRows = append(j.rightRows, t.Clone())
	}
	j.cur = nil
	j.ri = 0
	return j.right.Close()
}

func (j *nlJoin) Next() (types.Tuple, bool, error) {
	for {
		if j.cur == nil {
			t, ok, err := j.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.cur = t.Clone()
			j.ri = 0
		}
		for j.ri < len(j.rightRows) {
			r := j.rightRows[j.ri]
			j.ri++
			out := make(types.Tuple, 0, len(j.cur)+len(r))
			out = append(out, j.cur...)
			out = append(out, r...)
			if j.pred != nil {
				v, err := j.pred(out)
				if err != nil {
					return nil, false, err
				}
				if v.IsNull() || !v.AsBool() {
					continue
				}
			}
			return out, true, nil
		}
		j.cur = nil
	}
}

func (j *nlJoin) Close() error {
	j.rightRows = nil
	return j.left.Close()
}

// --- Index nested-loop join ---

// indexNLJoin probes an index on the inner table for each outer tuple.
// The join must be an equality on outerKey = inner indexed column;
// residual (may be nil) filters the concatenated tuple.
type indexNLJoin struct {
	outer    rel.Iterator
	inner    *Table
	innerQ   string // qualifier for inner schema
	innerCol string // indexed column (unqualified)
	outerKey evalFunc
	residual evalFunc
	schema   types.Schema

	cur     types.Tuple
	matches []types.Tuple
	mi      int
}

func newIndexNLJoin(outer rel.Iterator, inner *Table, innerQ, innerCol string, outerKey evalFunc, residual evalFunc) *indexNLJoin {
	is := inner.Schema
	if innerQ != "" {
		is = is.Qualify(innerQ)
	}
	return &indexNLJoin{
		outer: outer, inner: inner, innerQ: innerQ, innerCol: innerCol,
		outerKey: outerKey, residual: residual,
		schema: outer.Schema().Concat(is),
	}
}

func (j *indexNLJoin) Schema() types.Schema { return j.schema }

func (j *indexNLJoin) Open() error {
	if j.inner.Index(j.innerCol) == nil {
		return fmt.Errorf("engine: no index on %s.%s", j.inner.Name, j.innerCol)
	}
	j.cur = nil
	return j.outer.Open()
}

func (j *indexNLJoin) Next() (types.Tuple, bool, error) {
	idx := j.inner.Index(j.innerCol)
	for {
		if j.cur == nil {
			t, ok, err := j.outer.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.cur = t.Clone()
			key, err := j.outerKey(j.cur)
			if err != nil {
				return nil, false, err
			}
			j.matches = j.matches[:0]
			if !key.IsNull() {
				for _, rid := range idx.Lookup(key) {
					if !j.inner.visible(rid) {
						continue
					}
					it, err := j.inner.Heap.Get(rid)
					if err != nil {
						return nil, false, err
					}
					j.matches = append(j.matches, it)
				}
			}
			j.mi = 0
		}
		for j.mi < len(j.matches) {
			r := j.matches[j.mi]
			j.mi++
			out := make(types.Tuple, 0, len(j.cur)+len(r))
			out = append(out, j.cur...)
			out = append(out, r...)
			if j.residual != nil {
				v, err := j.residual(out)
				if err != nil {
					return nil, false, err
				}
				if v.IsNull() || !v.AsBool() {
					continue
				}
			}
			return out, true, nil
		}
		j.cur = nil
	}
}

func (j *indexNLJoin) Close() error { return j.outer.Close() }

// --- Hash join ---

// hashJoin builds a hash table on the right input keyed by the right
// key expressions and probes with the left; residual (may be nil)
// filters concatenated tuples.
type hashJoin struct {
	left, right         rel.Iterator
	leftKeys, rightKeys []evalFunc
	residual            evalFunc
	schema              types.Schema

	table  map[uint64][]types.Tuple
	cur    types.Tuple
	bucket []types.Tuple
	bi     int
}

func newHashJoin(left, right rel.Iterator, leftKeys, rightKeys []evalFunc, residual evalFunc) *hashJoin {
	return &hashJoin{
		left: left, right: right,
		leftKeys: leftKeys, rightKeys: rightKeys, residual: residual,
		schema: left.Schema().Concat(right.Schema()),
	}
}

func (j *hashJoin) Schema() types.Schema { return j.schema }

func hashKeys(t types.Tuple, keys []evalFunc) (uint64, bool, error) {
	var h uint64 = 14695981039346656037
	for _, k := range keys {
		v, err := k(t)
		if err != nil {
			return 0, false, err
		}
		if v.IsNull() {
			return 0, false, nil // NULL keys never join
		}
		h = h*1099511628211 ^ v.Hash()
	}
	return h, true, nil
}

func (j *hashJoin) Open() error {
	if err := j.right.Open(); err != nil {
		return err
	}
	j.table = map[uint64][]types.Tuple{}
	for {
		t, ok, err := j.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		h, valid, err := hashKeys(t, j.rightKeys)
		if err != nil {
			return err
		}
		if valid {
			j.table[h] = append(j.table[h], t.Clone())
		}
	}
	if err := j.right.Close(); err != nil {
		return err
	}
	j.cur = nil
	return j.left.Open()
}

func (j *hashJoin) Next() (types.Tuple, bool, error) {
	for {
		if j.cur == nil {
			t, ok, err := j.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.cur = t.Clone()
			h, valid, err := hashKeys(j.cur, j.leftKeys)
			if err != nil {
				return nil, false, err
			}
			if valid {
				j.bucket = j.table[h]
			} else {
				j.bucket = nil
			}
			j.bi = 0
		}
		for j.bi < len(j.bucket) {
			r := j.bucket[j.bi]
			j.bi++
			// Verify key equality (hash collisions).
			match := true
			for k := range j.leftKeys {
				lv, err := j.leftKeys[k](j.cur)
				if err != nil {
					return nil, false, err
				}
				rv, err := j.rightKeys[k](r)
				if err != nil {
					return nil, false, err
				}
				if lv.IsNull() || rv.IsNull() || !types.Equal(lv, rv) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			out := make(types.Tuple, 0, len(j.cur)+len(r))
			out = append(out, j.cur...)
			out = append(out, r...)
			if j.residual != nil {
				v, err := j.residual(out)
				if err != nil {
					return nil, false, err
				}
				if v.IsNull() || !v.AsBool() {
					continue
				}
			}
			return out, true, nil
		}
		j.cur = nil
	}
}

func (j *hashJoin) Close() error {
	j.table = nil
	return j.left.Close()
}

// --- Sort-merge join ---

// mergeJoin performs a sort-merge equi-join on single key expressions
// from each side. Inputs are materialized and sorted on their keys;
// residual filters output tuples.
type mergeJoin struct {
	left, right       rel.Iterator
	leftKey, rightKey evalFunc
	residual          evalFunc
	schema            types.Schema

	lrows, rrows []types.Tuple
	lkeys, rkeys []types.Value
	li, rj       int
	// group state: matching right-run [rstart, rend) for current left key
	rstart, rend int
	gi           int
}

func newMergeJoin(left, right rel.Iterator, leftKey, rightKey evalFunc, residual evalFunc) *mergeJoin {
	return &mergeJoin{
		left: left, right: right,
		leftKey: leftKey, rightKey: rightKey, residual: residual,
		schema: left.Schema().Concat(right.Schema()),
	}
}

func (j *mergeJoin) Schema() types.Schema { return j.schema }

func materializeKeyed(in rel.Iterator, key evalFunc) (_ []types.Tuple, _ []types.Value, err error) {
	if err := in.Open(); err != nil {
		return nil, nil, err
	}
	// Close on every path, including key-evaluation errors; an input
	// left open here used to leak the underlying cursor.
	defer func() {
		if cerr := in.Close(); err == nil {
			err = cerr
		}
	}()
	var rows []types.Tuple
	var keys []types.Value
	for {
		t, ok, err := in.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		v, err := key(t)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, t.Clone())
		keys = append(keys, v)
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return types.Less(keys[idx[a]], keys[idx[b]])
	})
	srows := make([]types.Tuple, len(rows))
	skeys := make([]types.Value, len(rows))
	for i, p := range idx {
		srows[i] = rows[p]
		skeys[i] = keys[p]
	}
	return srows, skeys, nil
}

func (j *mergeJoin) Open() error {
	var err error
	j.lrows, j.lkeys, err = materializeKeyed(j.left, j.leftKey)
	if err != nil {
		return err
	}
	j.rrows, j.rkeys, err = materializeKeyed(j.right, j.rightKey)
	if err != nil {
		return err
	}
	j.li, j.rj = 0, 0
	j.rstart, j.rend, j.gi = 0, 0, 0
	return nil
}

func (j *mergeJoin) Next() (types.Tuple, bool, error) {
	for {
		// Emit remaining pairs for the current left row's right-run.
		if j.gi < j.rend {
			l := j.lrows[j.li]
			r := j.rrows[j.gi]
			j.gi++
			out := make(types.Tuple, 0, len(l)+len(r))
			out = append(out, l...)
			out = append(out, r...)
			if j.residual != nil {
				v, err := j.residual(out)
				if err != nil {
					return nil, false, err
				}
				if v.IsNull() || !v.AsBool() {
					continue
				}
			}
			return out, true, nil
		}
		// Current left row exhausted its run; advance left.
		if j.rstart < j.rend {
			j.li++
			if j.li < len(j.lkeys) && types.Equal(j.lkeys[j.li], j.lkeys[j.li-1]) {
				j.gi = j.rstart // same key: reuse the run
				continue
			}
			j.rj = j.rend
			j.rstart, j.rend = 0, 0
			continue
		}
		// Find the next matching key runs.
		if j.li >= len(j.lkeys) || j.rj >= len(j.rkeys) {
			return nil, false, nil
		}
		lk, rk := j.lkeys[j.li], j.rkeys[j.rj]
		if lk.IsNull() {
			j.li++
			continue
		}
		if rk.IsNull() {
			j.rj++
			continue
		}
		c := types.Compare(lk, rk)
		switch {
		case c < 0:
			j.li++
		case c > 0:
			j.rj++
		default:
			j.rstart = j.rj
			j.rend = j.rj
			for j.rend < len(j.rkeys) && types.Equal(j.rkeys[j.rend], rk) {
				j.rend++
			}
			j.gi = j.rstart
		}
	}
}

func (j *mergeJoin) Close() error {
	j.lrows, j.rrows = nil, nil
	return nil
}

// --- Distinct ---

type distinctIter struct {
	in   rel.Iterator
	seen map[string]bool
}

func newDistinct(in rel.Iterator) *distinctIter { return &distinctIter{in: in} }

func (d *distinctIter) Schema() types.Schema { return d.in.Schema() }

func (d *distinctIter) Open() error {
	d.seen = map[string]bool{}
	return d.in.Open()
}

func (d *distinctIter) Next() (types.Tuple, bool, error) {
	for {
		t, ok, err := d.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := canonicalKey(t)
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		return t, true, nil
	}
}

func (d *distinctIter) Close() error {
	d.seen = nil
	return d.in.Close()
}

// canonicalKey renders a tuple such that equal tuples (per
// types.Equal) yield equal keys.
func canonicalKey(t types.Tuple) string {
	buf := make([]byte, 0, 32)
	for _, v := range t {
		if v.IsNull() {
			buf = append(buf, 0, 'N')
		} else if v.Kind() == types.KindString {
			buf = append(buf, 's', ':')
			buf = append(buf, v.AsString()...)
		} else {
			buf = append(buf, 'n', ':')
			buf = append(buf, fmt.Sprintf("%v", v.AsFloat())...)
		}
		buf = append(buf, 0x1f)
	}
	return string(buf)
}

// --- Union ---

// unionIter concatenates two inputs with identical arity.
type unionIter struct {
	a, b   rel.Iterator
	onB    bool
	schema types.Schema
}

func newUnionAll(a, b rel.Iterator) *unionIter {
	return &unionIter{a: a, b: b, schema: a.Schema()}
}

func (u *unionIter) Schema() types.Schema { return u.schema }

func (u *unionIter) Open() error {
	u.onB = false
	if err := u.a.Open(); err != nil {
		return err
	}
	return u.b.Open()
}

func (u *unionIter) Next() (types.Tuple, bool, error) {
	if !u.onB {
		t, ok, err := u.a.Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return t, true, nil
		}
		u.onB = true
	}
	return u.b.Next()
}

func (u *unionIter) Close() error {
	err1 := u.a.Close()
	err2 := u.b.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
