package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path    string
	Dir     string
	GoFiles []string // absolute paths, for content hashing
	Imports []string // direct imports, for dependency-ordered caching
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Export     string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list` with the given arguments in dir and decodes
// the JSON package stream.
func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json=ImportPath,Dir,Name,GoFiles,CgoFiles,Imports,Export,Standard,Incomplete"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// exportLookup builds the importer lookup table (import path → export
// data file) from a `go list -export -deps` run.
type exportLookup map[string]string

func (m exportLookup) open(path string) (io.ReadCloser, error) {
	file, ok := m[path]
	if !ok || file == "" {
		return nil, fmt.Errorf("analysis: no export data for %q", path)
	}
	return os.Open(file)
}

// Load loads, parses, and type-checks the packages matched by the
// patterns (relative to dir; "" means the current directory), plus
// nothing else: dependencies are consumed as compiler export data, so
// a whole-tree run stays fast.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One -deps walk supplies both the target list and the export data
	// for every dependency.
	deps, err := goList(dir, append([]string{"-export", "-deps", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	targets, err := goList(dir, append([]string{"--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	wanted := map[string]bool{}
	for _, t := range targets {
		wanted[t.ImportPath] = true
	}

	exports := exportLookup{}
	byPath := map[string]*listPkg{}
	for _, p := range deps {
		byPath[p.ImportPath] = p
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exports.open)

	var out []*Package
	for _, path := range topoOrder(wanted, byPath) {
		p := byPath[path]
		if p == nil || p.Standard || p.Name == "" {
			continue
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, which the loader does not support", path)
		}
		pkg, err := checkPackage(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.Imports = append(pkg.Imports, p.Imports...)
		for _, name := range p.GoFiles {
			pkg.GoFiles = append(pkg.GoFiles, filepath.Join(p.Dir, name))
		}
		out = append(out, pkg)
	}
	return out, nil
}

// topoOrder sorts the wanted packages so that every package follows
// the wanted packages it imports — the order the interprocedural
// summary pipeline needs (callee summaries before callers). Ties and
// cycles (impossible in valid Go) fall back to path order for
// determinism.
func topoOrder(wanted map[string]bool, byPath map[string]*listPkg) []string {
	paths := make([]string, 0, len(wanted))
	for path := range wanted {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var out []string
	var visit func(path string)
	visit = func(path string) {
		if state[path] != 0 {
			return
		}
		state[path] = 1
		if p := byPath[path]; p != nil {
			for _, dep := range p.Imports {
				if wanted[dep] {
					visit(dep)
				}
			}
		}
		state[path] = 2
		out = append(out, path)
	}
	for _, path := range paths {
		visit(path)
	}
	return out
}

// LoadDir parses and type-checks the single package rooted at dir
// (every non-test .go file), resolving its imports through `go list
// -export`. It exists for analyzer tests over testdata trees, which
// the go tool itself refuses to list.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	fset := token.NewFileSet()
	var parsed []*ast.File
	importSet := map[string]bool{}
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err == nil && path != "unsafe" {
				importSet[path] = true
			}
		}
	}

	exports := exportLookup{}
	if len(importSet) > 0 {
		var imports []string
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		deps, err := goList(dir, append([]string{"-export", "-deps", "--"}, imports...)...)
		if err != nil {
			return nil, err
		}
		for _, p := range deps {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", exports.open)
	pkg, err := checkPackageFiles(fset, imp, parsed[0].Name.Name, dir, parsed)
	if err != nil {
		return nil, err
	}
	for _, name := range files {
		pkg.GoFiles = append(pkg.GoFiles, filepath.Join(dir, name))
	}
	return pkg, nil
}

// checkPackage parses the named files and type-checks them as one
// package.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var parsed []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	pkg, err := checkPackageFiles(fset, imp, path, dir, parsed)
	if err != nil {
		return nil, err
	}
	pkg.Path = path
	return pkg, nil
}

// checkPackageFiles type-checks already-parsed files.
func checkPackageFiles(fset *token.FileSet, imp types.Importer, path, dir string, parsed []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil && len(typeErrs) == 0 {
		typeErrs = append(typeErrs, err)
	}
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for i, e := range typeErrs {
			if i == 8 {
				msgs = append(msgs, "...")
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type checking %s:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: parsed, Types: tpkg, Info: info}, nil
}
