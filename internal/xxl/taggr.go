package xxl

import (
	"container/heap"
	"fmt"
	"sort"

	"tango/internal/rel"
	"tango/internal/types"
)

// AggKind names a temporal aggregate function.
type AggKind string

// Supported temporal aggregates.
const (
	AggCount AggKind = "COUNT"
	AggSum   AggKind = "SUM"
	AggAvg   AggKind = "AVG"
	AggMin   AggKind = "MIN"
	AggMax   AggKind = "MAX"
)

// AggSpec is one aggregate over a value column.
type AggSpec struct {
	Kind AggKind
	Col  int // value column index in the input; ignored for COUNT
}

// TAggr is TAGGR^M, the paper's temporal aggregation algorithm (§3.4):
// the argument must arrive sorted on the grouping attributes and T1
// (that external sort is a separate SORT^M or SORT^D step); the
// algorithm internally sorts a second copy of each group on T2 and
// sweeps both orders like a sort-merge, computing the aggregate values
// group by group over the constant intervals between event points.
// Memory use is one group at a time. Order preserving on the grouping
// attributes.
type TAggr struct {
	in      rel.Iterator
	groupBy []int
	t1, t2  int
	aggs    []AggSpec
	schema  types.Schema

	out     []types.Tuple // intervals of the current group
	pos     int
	nextRow types.Tuple // lookahead into the next group
	prevRow types.Tuple // order validation
	inDone  bool
	opened  bool
	sortKey []int // groupBy + T1, for input order validation
}

// NewTAggr creates a temporal aggregation over input columns. The
// output schema is the group columns, T1, T2, then one column per
// aggregate; the caller supplies it (derived from the algebra).
func NewTAggr(in rel.Iterator, groupBy []int, t1, t2 int, aggs []AggSpec, out types.Schema) *TAggr {
	return &TAggr{in: in, groupBy: groupBy, t1: t1, t2: t2, aggs: aggs, schema: out}
}

// Schema returns the output schema.
func (a *TAggr) Schema() types.Schema { return a.schema }

// Open opens the input.
func (a *TAggr) Open() error {
	if err := a.in.Open(); err != nil {
		return err
	}
	a.out = nil
	a.pos = 0
	a.nextRow = nil
	a.prevRow = nil
	a.inDone = false
	a.opened = true
	a.sortKey = append(append([]int{}, a.groupBy...), a.t1)
	return nil
}

// Close closes the input.
func (a *TAggr) Close() error {
	a.out = nil
	return a.in.Close()
}

// errTAggrUnsorted is the sorted-input contract violation (§3.4) for
// temporal aggregation; sequential and partitioned TAggr report it
// identically.
func errTAggrUnsorted(prev, cur types.Tuple) error {
	return fmt.Errorf("xxl: taggr input not sorted on grouping attributes and T1 (saw %v after %v)", cur, prev)
}

// Next returns the next constant-interval aggregate row.
func (a *TAggr) Next() (types.Tuple, bool, error) {
	if !a.opened {
		return nil, false, errNotOpened("taggr")
	}
	for a.pos >= len(a.out) {
		group, err := a.readGroup()
		if err != nil {
			return nil, false, err
		}
		if group == nil {
			return nil, false, nil
		}
		a.out = a.sweep(group)
		a.pos = 0
	}
	t := a.out[a.pos]
	a.pos++
	return t, true, nil
}

// readGroup collects the next run of input tuples sharing the grouping
// attribute values (the input is sorted on them). nil means end of
// input.
func (a *TAggr) readGroup() ([]types.Tuple, error) {
	var group []types.Tuple
	if a.nextRow != nil {
		group = append(group, a.nextRow)
		a.nextRow = nil
	}
	for !a.inDone {
		t, ok, err := a.in.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			a.inDone = true
			break
		}
		t = t.Clone()
		// The algorithm's contract (§3.4) requires the argument sorted
		// on the grouping attributes and T1; a violation means a broken
		// plan, and silent acceptance would produce wrong aggregates.
		if a.prevRow != nil && types.CompareTuples(a.prevRow, t, a.sortKey, nil) > 0 {
			return nil, errTAggrUnsorted(a.prevRow, t)
		}
		a.prevRow = t
		if len(group) > 0 && types.CompareTuples(group[0], t, a.groupBy, nil) != 0 {
			a.nextRow = t
			break
		}
		group = append(group, t)
	}
	if len(group) == 0 {
		return nil, nil
	}
	return group, nil
}

// sweep computes the constant intervals for one group. The group
// arrives sorted by T1; a second copy is sorted by T2 (the paper's
// internal sort), and the two orders are merged as event streams.
func (a *TAggr) sweep(group []types.Tuple) []types.Tuple {
	byEnd := make([]types.Tuple, len(group))
	copy(byEnd, group)
	sort.SliceStable(byEnd, func(i, j int) bool {
		return byEnd[i][a.t2].AsInt() < byEnd[j][a.t2].AsInt()
	})

	states := make([]aggRun, len(a.aggs))
	for i, spec := range a.aggs {
		states[i] = newAggRun(spec)
	}

	timeSample := group[0][a.t1]
	var out []types.Tuple
	emit := func(from, to int64, active int) {
		if from >= to || active == 0 {
			return
		}
		row := make(types.Tuple, 0, a.schema.Len())
		for _, g := range a.groupBy {
			row = append(row, group[0][g])
		}
		row = append(row, coerceTime(timeSample, from), coerceTime(timeSample, to))
		for i := range states {
			row = append(row, states[i].result())
		}
		out = append(out, row)
	}

	si, ei := 0, 0 // cursors into starts (group) and ends (byEnd)
	active := 0
	var prev int64
	first := true
	for ei < len(byEnd) {
		// Next event point: the smaller of next start and next end.
		var p int64
		if si < len(group) {
			s := group[si][a.t1].AsInt()
			e := byEnd[ei][a.t2].AsInt()
			if s < e {
				p = s
			} else {
				p = e
			}
		} else {
			p = byEnd[ei][a.t2].AsInt()
		}
		if !first {
			emit(prev, p, active)
		}
		// Ends at p leave before starts at p arrive (closed-open).
		for ei < len(byEnd) && byEnd[ei][a.t2].AsInt() == p {
			for i := range states {
				states[i].remove(byEnd[ei])
			}
			active--
			ei++
		}
		for si < len(group) && group[si][a.t1].AsInt() == p {
			for i := range states {
				states[i].add(group[si])
			}
			active++
			si++
		}
		prev = p
		first = false
	}
	return out
}

// --- running aggregates ---

// aggRun maintains one aggregate under tuple arrival and departure.
type aggRun interface {
	add(t types.Tuple)
	remove(t types.Tuple)
	result() types.Value
}

func newAggRun(spec AggSpec) aggRun {
	switch spec.Kind {
	case AggCount:
		return &countRun{}
	case AggSum:
		return &sumRun{col: spec.Col}
	case AggAvg:
		return &sumRun{col: spec.Col, avg: true}
	case AggMin:
		return newExtremeRun(spec.Col, true)
	case AggMax:
		return newExtremeRun(spec.Col, false)
	default:
		return &countRun{}
	}
}

type countRun struct{ n int64 }

func (c *countRun) add(types.Tuple)     { c.n++ }
func (c *countRun) remove(types.Tuple)  { c.n-- }
func (c *countRun) result() types.Value { return types.Int(c.n) }

type sumRun struct {
	col   int
	sum   float64
	isInt bool
	any   bool
	n     int64
	avg   bool
}

func (s *sumRun) add(t types.Tuple) {
	v := t[s.col]
	if v.IsNull() {
		return
	}
	if !s.any {
		s.isInt = v.Kind() != types.KindFloat
		s.any = true
	}
	s.sum += v.AsFloat()
	s.n++
}

func (s *sumRun) remove(t types.Tuple) {
	v := t[s.col]
	if v.IsNull() {
		return
	}
	s.sum -= v.AsFloat()
	s.n--
}

func (s *sumRun) result() types.Value {
	if s.n == 0 {
		return types.Null
	}
	if s.avg {
		return types.Float(s.sum / float64(s.n))
	}
	if s.isInt {
		return types.Int(int64(s.sum))
	}
	return types.Float(s.sum)
}

// extremeRun tracks MIN or MAX with a lazy-deletion heap plus a live
// multiset, giving O(log n) amortized updates during the sweep.
type extremeRun struct {
	col  int
	min  bool
	h    valueHeap
	live map[string]int
}

func newExtremeRun(col int, min bool) *extremeRun {
	return &extremeRun{col: col, min: min, live: map[string]int{}}
}

func (e *extremeRun) key(v types.Value) string { return canonKey(types.Tuple{v}) }

func (e *extremeRun) add(t types.Tuple) {
	v := t[e.col]
	if v.IsNull() {
		return
	}
	e.live[e.key(v)]++
	heap.Push(&e.h, heapVal{v: v, min: e.min})
}

func (e *extremeRun) remove(t types.Tuple) {
	v := t[e.col]
	if v.IsNull() {
		return
	}
	k := e.key(v)
	if e.live[k] > 0 {
		e.live[k]--
		if e.live[k] == 0 {
			delete(e.live, k)
		}
	}
}

func (e *extremeRun) result() types.Value {
	for e.h.Len() > 0 {
		top := e.h.vals[0]
		if e.live[e.key(top.v)] > 0 {
			return top.v
		}
		heap.Pop(&e.h) // lazily discard departed values
	}
	return types.Null
}

type heapVal struct {
	v   types.Value
	min bool
}

type valueHeap struct{ vals []heapVal }

func (h *valueHeap) Len() int { return len(h.vals) }
func (h *valueHeap) Less(i, j int) bool {
	if h.vals[i].min {
		return types.Less(h.vals[i].v, h.vals[j].v)
	}
	return types.Less(h.vals[j].v, h.vals[i].v)
}
func (h *valueHeap) Swap(i, j int)      { h.vals[i], h.vals[j] = h.vals[j], h.vals[i] }
func (h *valueHeap) Push(x interface{}) { h.vals = append(h.vals, x.(heapVal)) }
func (h *valueHeap) Pop() interface{} {
	old := h.vals
	n := len(old)
	v := old[n-1]
	h.vals = old[:n-1]
	return v
}
