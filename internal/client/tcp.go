// TCP transport: the Backend implemented over a real socket speaking
// the framed protocol of internal/wire. One Transport multiplexes many
// sessions over a single connection (request IDs pair replies to
// callers; session IDs ride the frame header), redials transparently
// when the connection is lost, and resumes its sessions server-side
// with their resume tokens — so the retry machinery above (sequence-
// numbered fetch replay, load dedup, drop-and-recreate) works over a
// severed, stalled, or truncated wire exactly as it does in process.
//
// A lost connection surfaces as a typed, retryable ErrConnLost; typed
// server errors (wire faults, admission sheds, shutdown) are
// reconstructed from the RemoteError codec so errors.As/Is chains
// behave identically on both transports.
package client

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tango/internal/meta"
	"tango/internal/server"
	"tango/internal/telemetry"
	"tango/internal/types"
	"tango/internal/wire"
)

// ErrConnLost is the typed failure of a request whose connection died
// under it (severed by chaos, closed by the server, unreachable). It
// is retryable: the next attempt redials and resumes the session.
type ErrConnLost struct {
	Addr string
	Err  error
}

// Error renders the loss.
func (e *ErrConnLost) Error() string {
	return fmt.Sprintf("client: connection to %s lost: %v", e.Addr, e.Err)
}

// Unwrap exposes the cause.
func (e *ErrConnLost) Unwrap() error { return e.Err }

// Transport is a multiplexed client connection to a TCP server; many
// sessions (Conn) share one. Safe for concurrent use.
type Transport struct {
	addr        string
	dialTimeout time.Duration

	// mu guards the live connection and is held across redials
	// (blocking dial + handshake I/O), so it is an ordered lock class,
	// not a latch.
	mu     sync.Mutex //tango:lock-order tcpdial
	nc     net.Conn
	epoch  uint64 // bumped per successful dial; sessions resume on change
	closed bool

	// wmu serializes frame writes (held across socket writes).
	wmu  sync.Mutex //tango:lock-order tcpxmit
	wbuf []byte

	pmu     sync.Mutex //tango:lock-order tcppending latch
	pending map[uint64]*pendingCall

	reqID atomic.Uint64
	wg    sync.WaitGroup
}

// pendingCall is one in-flight request awaiting its reply.
type pendingCall struct {
	ch chan rpcResult
	nc net.Conn // the connection the request went out on
}

// rpcResult is one reply (or transport failure).
type rpcResult struct {
	payload []byte
	err     error
}

// DialTransport creates a transport for addr. The first connection is
// established lazily on the first request.
func DialTransport(addr string) *Transport {
	return &Transport{
		addr:        addr,
		dialTimeout: 5 * time.Second,
		pending:     map[uint64]*pendingCall{},
	}
}

// Close severs the connection and fails every in-flight request; open
// sessions become unusable.
func (t *Transport) Close() error {
	t.mu.Lock()
	t.closed = true
	nc := t.nc
	t.nc = nil
	t.mu.Unlock()
	if nc != nil {
		_ = nc.Close()
		t.failPending(nc, errors.New("transport closed"))
	}
	t.wg.Wait()
	return nil
}

// ensureConn returns the live connection, dialing (and handshaking)
// when there is none. The returned epoch identifies the dial so
// sessions know when they must resume.
func (t *Transport) ensureConn() (net.Conn, uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, 0, &ErrConnLost{Addr: t.addr, Err: errors.New("transport closed")}
	}
	if t.nc != nil {
		return t.nc, t.epoch, nil
	}
	nc, err := net.DialTimeout("tcp", t.addr, t.dialTimeout)
	if err != nil {
		return nil, 0, &ErrConnLost{Addr: t.addr, Err: err}
	}
	// Handshake synchronously — the reader starts only on success.
	hello := wire.Frame{Type: wire.MsgHello, Request: t.reqID.Add(1), Payload: wire.AppendHello(nil)}
	_ = nc.SetDeadline(time.Now().Add(t.dialTimeout))
	if _, err := nc.Write(wire.AppendFrame(nil, hello)); err != nil {
		_ = nc.Close()
		return nil, 0, &ErrConnLost{Addr: t.addr, Err: err}
	}
	reply, _, err := wire.ReadFrame(nc, nil)
	if err != nil {
		_ = nc.Close()
		return nil, 0, &ErrConnLost{Addr: t.addr, Err: err}
	}
	if reply.Type != wire.MsgHelloOK {
		_ = nc.Close()
		if reply.Type == wire.MsgErr {
			if re, derr := wire.DecodeRemoteError(reply.Payload); derr == nil {
				return nil, 0, remoteToError(re)
			}
		}
		return nil, 0, &ErrConnLost{Addr: t.addr, Err: fmt.Errorf("handshake got %s", wire.MsgName(reply.Type))}
	}
	_ = nc.SetDeadline(time.Time{})
	t.nc = nc
	t.epoch++
	epoch := t.epoch
	t.wg.Add(1)
	go t.reader(nc)
	return nc, epoch, nil
}

// reader pumps replies off one connection, pairing them to their
// pending calls by request ID; on connection death it fails that
// connection's in-flight calls with ErrConnLost.
func (t *Transport) reader(nc net.Conn) {
	defer t.wg.Done()
	for {
		f, _, err := wire.ReadFrame(nc, nil)
		if err != nil {
			t.dropConn(nc, err)
			return
		}
		t.pmu.Lock()
		pc := t.pending[f.Request]
		if pc != nil {
			delete(t.pending, f.Request)
		}
		t.pmu.Unlock()
		if pc == nil {
			continue // reply to an abandoned request
		}
		switch f.Type {
		case wire.MsgOK:
			pc.ch <- rpcResult{payload: f.Payload}
		case wire.MsgErr:
			re, derr := wire.DecodeRemoteError(f.Payload)
			if derr != nil {
				pc.ch <- rpcResult{err: derr}
			} else {
				pc.ch <- rpcResult{err: remoteToError(re)}
			}
		default:
			pc.ch <- rpcResult{err: fmt.Errorf("client: unexpected reply %s", wire.MsgName(f.Type))}
		}
	}
}

// dropConn retires a dead connection and fails its in-flight calls.
func (t *Transport) dropConn(nc net.Conn, cause error) {
	t.mu.Lock()
	if t.nc == nc {
		t.nc = nil
	}
	t.mu.Unlock()
	_ = nc.Close()
	t.failPending(nc, cause)
}

// failPending fails every pending call registered on nc.
func (t *Transport) failPending(nc net.Conn, cause error) {
	t.pmu.Lock()
	var failed []*pendingCall
	for id, pc := range t.pending {
		if pc.nc == nc {
			failed = append(failed, pc)
			delete(t.pending, id)
		}
	}
	t.pmu.Unlock()
	for _, pc := range failed {
		pc.ch <- rpcResult{err: &ErrConnLost{Addr: t.addr, Err: cause}}
	}
}

// remoteToError reconstructs the typed error a RemoteError carried.
func remoteToError(re wire.RemoteError) error {
	switch re.Code {
	case wire.CodeOverloaded:
		return &server.ErrOverloaded{Backoff: re.Backoff, Queue: int(re.Queue), Reason: re.Msg}
	case wire.CodeFault:
		return &wire.FaultError{Op: re.Op, Kind: re.Kind, Index: re.Index}
	case wire.CodeShutdown:
		return fmt.Errorf("%w (%s)", server.ErrShutdown, re.Msg)
	default:
		return errors.New(re.Msg)
	}
}

// rpcOn sends one request on an already-resolved connection and waits
// for its reply.
func (t *Transport) rpcOn(nc net.Conn, mt byte, session uint32, payload []byte) ([]byte, error) {
	id := t.reqID.Add(1)
	pc := &pendingCall{ch: make(chan rpcResult, 1), nc: nc}
	t.pmu.Lock()
	t.pending[id] = pc
	t.pmu.Unlock()

	t.wmu.Lock()
	t.wbuf = wire.AppendFrame(t.wbuf[:0], wire.Frame{Type: mt, Session: session, Request: id, Payload: payload})
	_, werr := nc.Write(t.wbuf)
	t.wmu.Unlock()
	if werr != nil {
		t.pmu.Lock()
		delete(t.pending, id)
		t.pmu.Unlock()
		t.dropConn(nc, werr)
		return nil, &ErrConnLost{Addr: t.addr, Err: werr}
	}
	r := <-pc.ch
	return r.payload, r.err
}

// rpc resolves the connection and sends one session-scoped request.
func (t *Transport) rpc(mt byte, session uint32, payload []byte) ([]byte, error) {
	nc, _, err := t.ensureConn()
	if err != nil {
		return nil, err
	}
	return t.rpcOn(nc, mt, session, payload)
}

// Conn opens a new session over the transport and wraps it in a
// middleware connection.
func (t *Transport) Conn() (*Conn, error) {
	be, err := t.openSession(false)
	if err != nil {
		return nil, err
	}
	return NewConn(be), nil
}

// openSession performs the MsgOpenSession exchange.
func (t *Transport) openSession(own bool) (*remoteConn, error) {
	nc, epoch, err := t.ensureConn()
	if err != nil {
		return nil, err
	}
	reply, err := t.rpcOn(nc, wire.MsgOpenSession, 0, nil)
	if err != nil {
		return nil, err
	}
	id, k := binary.Uvarint(reply)
	if k <= 0 || len(reply[k:]) != 8 {
		return nil, fmt.Errorf("client: malformed open-session reply")
	}
	return &remoteConn{
		t:     t,
		id:    uint32(id),
		token: binary.BigEndian.Uint64(reply[k:]),
		epoch: epoch,
		own:   own,
	}, nil
}

// Dial opens a single connection with its own private transport; the
// transport is closed with the connection.
func Dial(addr string) (*Conn, error) {
	t := DialTransport(addr)
	be, err := t.openSession(true)
	if err != nil {
		_ = t.Close()
		return nil, err
	}
	return NewConn(be), nil
}

// remoteConn is one session over a Transport: the TCP Backend.
type remoteConn struct {
	t     *Transport
	id    uint32
	token uint64
	own   bool // the transport is private to this session

	// mu serializes resumption against requests; held across the
	// resume round trip, so ordered, not a latch.
	mu     sync.Mutex //tango:lock-order tcpresume
	epoch  uint64     // transport epoch this session last attached on
	closed bool
}

// call sends one session-scoped request, resuming the session first
// when the transport has redialed since the session last attached.
func (s *remoteConn) call(mt byte, payload []byte) ([]byte, error) {
	nc, epoch, err := s.t.ensureConn()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("client: session closed")
	}
	if s.epoch != epoch {
		resume := binary.AppendUvarint(nil, uint64(s.id))
		resume = binary.BigEndian.AppendUint64(resume, s.token)
		if _, err := s.t.rpcOn(nc, wire.MsgResumeSession, 0, resume); err != nil {
			s.mu.Unlock()
			return nil, err
		}
		s.epoch = epoch
	}
	s.mu.Unlock()
	return s.t.rpcOn(nc, mt, s.id, payload)
}

func (s *remoteConn) ExecHdr(hdr []byte, sql string) (int64, error) {
	reply, err := s.call(wire.MsgExec, append(wire.AppendBytes(nil, hdr), sql...))
	if err != nil {
		return 0, err
	}
	n, k := binary.Varint(reply)
	if k <= 0 {
		return 0, fmt.Errorf("client: malformed exec reply")
	}
	return n, nil
}

func (s *remoteConn) QueryHdr(hdr []byte, sql string, prefetch int) (Cursor, error) {
	payload := wire.AppendBytes(nil, hdr)
	payload = binary.AppendUvarint(payload, uint64(prefetch))
	payload = append(payload, sql...)
	reply, err := s.call(wire.MsgQuery, payload)
	if err != nil {
		return nil, err
	}
	id, k := binary.Uvarint(reply)
	if k <= 0 {
		return nil, fmt.Errorf("client: malformed query reply")
	}
	schema, _, err := wire.DecodeSchema(reply[k:])
	if err != nil {
		return nil, err
	}
	return &remoteCursor{s: s, id: id, schema: schema}, nil
}

func (s *remoteConn) LoadSeqHdr(hdr []byte, table string, payload []byte, seq int64) (int64, error) {
	req := wire.AppendBytes(nil, hdr)
	req = binary.AppendVarint(req, seq)
	req = wire.AppendString(req, table)
	req = append(req, payload...)
	reply, err := s.call(wire.MsgLoad, req)
	if err != nil {
		return 0, err
	}
	n, k := binary.Varint(reply)
	if k <= 0 {
		return 0, fmt.Errorf("client: malformed load reply")
	}
	return n, nil
}

func (s *remoteConn) InsertRowsHdr(hdr []byte, table string, payload []byte) (int64, error) {
	req := wire.AppendBytes(nil, hdr)
	req = wire.AppendString(req, table)
	req = append(req, payload...)
	reply, err := s.call(wire.MsgInsert, req)
	if err != nil {
		return 0, err
	}
	n, k := binary.Varint(reply)
	if k <= 0 {
		return 0, fmt.Errorf("client: malformed insert reply")
	}
	return n, nil
}

func (s *remoteConn) TableStatsHdr(hdr []byte, table string, histogramBuckets int) (*meta.TableStats, error) {
	req := wire.AppendBytes(nil, hdr)
	req = binary.AppendVarint(req, int64(histogramBuckets))
	req = append(req, table...)
	reply, err := s.call(wire.MsgStats, req)
	if err != nil {
		return nil, err
	}
	return wire.DecodeTableStats(reply)
}

func (s *remoteConn) TableSchema(table string) (types.Schema, error) {
	reply, err := s.call(wire.MsgSchema, []byte(table))
	if err != nil {
		return types.Schema{}, err
	}
	schema, _, err := wire.DecodeSchema(reply)
	return schema, err
}

// RegisterTemp and ForgetTemp maintain the server-side GC set; the
// interface is fire-and-forget, so transport failures fall through to
// the reaper (an unresumed session GCs its temps anyway).
func (s *remoteConn) RegisterTemp(name string) {
	_, _ = s.call(wire.MsgRegisterTemp, []byte(name))
}

func (s *remoteConn) ForgetTemp(name string) {
	_, _ = s.call(wire.MsgForgetTemp, []byte(name))
}

func (s *remoteConn) SessionID() int64 { return int64(s.id) }

// TakeRemoteSpans returns nil over TCP: spans stay in the server's
// collector (trace stitching is a server-side concern there).
func (s *remoteConn) TakeRemoteSpans(uint64) []*telemetry.Span { return nil }

func (s *remoteConn) Close() (int, error) {
	reply, err := s.call(wire.MsgCloseSession, nil)
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if s.own {
		defer func() { _ = s.t.Close() }()
	}
	if err != nil {
		return 0, err
	}
	collected, k := binary.Uvarint(reply)
	if k <= 0 {
		return 0, fmt.Errorf("client: malformed close reply")
	}
	return int(collected), nil
}

// remoteCursor is one open server cursor over TCP.
type remoteCursor struct {
	s      *remoteConn
	id     uint64
	schema types.Schema

	next   atomic.Int64 // for the seq-less FetchBatchHdr path
	closed atomic.Bool
}

func (c *remoteCursor) Schema() types.Schema { return c.schema }

// fetch performs one sequence-numbered FETCH round trip.
func (c *remoteCursor) fetch(hdr []byte, seq int64, dst []byte) ([]byte, error) {
	req := wire.AppendBytes(nil, hdr)
	req = binary.AppendUvarint(req, c.id)
	req = binary.AppendVarint(req, seq)
	reply, err := c.s.call(wire.MsgFetch, req)
	if err != nil {
		return nil, err
	}
	if len(reply) < 1 {
		return nil, fmt.Errorf("client: malformed fetch reply")
	}
	if reply[0] == 0 {
		return nil, nil // end of stream
	}
	return append(dst[:0], reply[1:]...), nil
}

// FetchBatchHdr is the seq-less path: the cursor numbers its own
// fetches so the transport's replay machinery still applies.
func (c *remoteCursor) FetchBatchHdr(hdr []byte) ([]byte, error) {
	seq := c.next.Load() + 1
	payload, err := c.fetch(hdr, seq, nil)
	if err == nil {
		c.next.Store(seq)
	}
	return payload, err
}

func (c *remoteCursor) FetchBatchSeqHdr(hdr []byte, seq int64, dst []byte) ([]byte, error) {
	return c.fetch(hdr, seq, dst)
}

// FetchBatchPipelinedSeqHdr reports zero propagation delay: over a
// real socket the wire itself is the delay.
func (c *remoteCursor) FetchBatchPipelinedSeqHdr(hdr []byte, seq int64, dst []byte) ([]byte, time.Duration, error) {
	payload, err := c.fetch(hdr, seq, dst)
	return payload, 0, err
}

// Close releases the server cursor (idempotent server-side; repeated
// local closes are elided).
func (c *remoteCursor) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	_, err := c.s.call(wire.MsgCloseCursor, binary.AppendUvarint(nil, c.id))
	return err
}
