package tango

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"tango/internal/algebra"
	"tango/internal/client"
	"tango/internal/cost"
	"tango/internal/optimizer"
	"tango/internal/planck"
	"tango/internal/rel"
	"tango/internal/server"
	"tango/internal/sqlgen"
	"tango/internal/stats"
	"tango/internal/storage"
	"tango/internal/telemetry"
)

// Middleware is TANGO: the temporal middleware sitting between an
// application and a conventional DBMS. It optimizes temporal query
// plans, splits them between itself and the DBMS, executes them, and
// adapts its cost factors from execution feedback.
type Middleware struct {
	Conn  *client.Conn
	Cat   algebra.Catalog
	Est   *stats.Estimator
	Model *cost.Model
	Opt   *optimizer.Optimizer

	// Alpha is the feedback adaptation rate (0 disables adaptation).
	Alpha float64

	// CheckPlans enables the planck runtime plan validator on every
	// optimized plan and every executor build (debug mode; on in all
	// tests via the bench harness).
	CheckPlans bool

	// Parallelism bounds the middleware operators' worker fan-out (see
	// Executor.Parallelism): 0 resolves to runtime.GOMAXPROCS(0), 1
	// forces the sequential algorithms. Results are identical at any
	// setting.
	Parallelism int

	// Metrics, when set, receives middleware telemetry: per-operator
	// series (engine="mw"), optimizer search statistics, per-operator
	// cardinality drift (Q-error), and query counters. It is also
	// handed to the executor for operator instrumentation.
	Metrics *telemetry.Registry
	// IOProbe forwards engine I/O counters into the execute span of
	// the query trace (wired by in-process harnesses that can reach
	// the DBMS instance directly).
	IOProbe func() (storage.IOStats, storage.PoolStats)
	// WALProbe forwards the durable store's WAL counters (bytes,
	// records) into the execute span and per-session accounting.
	WALProbe func() (int64, int64)
	// Flight, when set, receives the finished (stitched) span tree of
	// every query — the ring-buffer flight recorder a post-mortem reads.
	Flight *telemetry.Flight

	mu        sync.Mutex //tango:lock-order middleware latch
	lastTrace *telemetry.Span
	lastStats *telemetry.OpStats
}

// Options configures the middleware.
type Options struct {
	// HistogramBuckets controls the statistics collector; 0 disables
	// histograms (the paper evaluates Query 2 both ways).
	HistogramBuckets int
	// Naive switches temporal selectivity estimation to the
	// independent-predicate straw man (for the §3.3 comparison).
	Naive bool
	// Alpha is the EWMA feedback rate; default 0.2.
	Alpha float64
	// Prefetch is the wire rows-per-fetch; 0 uses the default.
	Prefetch int
	// Metrics attaches a telemetry registry to the middleware (see
	// Middleware.Metrics); nil disables metrics.
	Metrics *telemetry.Registry
	// CheckPlans turns on the planck plan validator (see
	// Middleware.CheckPlans).
	CheckPlans bool
	// Parallelism bounds middleware operator fan-out (see
	// Middleware.Parallelism); 0 means runtime.GOMAXPROCS(0).
	Parallelism int
	// Retry configures the connection's wire resilience layer (per-call
	// deadlines, capped jittered backoff); the zero value disables it.
	Retry client.RetryPolicy
	// Flight attaches a flight recorder (see Middleware.Flight); nil
	// disables it.
	Flight *telemetry.Flight
}

// Open connects the middleware to an in-process DBMS server.
func Open(srv *server.Server, opts Options) *Middleware {
	return OpenConn(client.Connect(srv), opts)
}

// OpenConn builds the middleware on an already-open client connection
// — the seam the TCP transport plugs into (client.Dial /
// Transport.Conn); the in-process Open goes through here too.
func OpenConn(conn *client.Conn, opts Options) *Middleware {
	conn.Prefetch = opts.Prefetch
	conn.Metrics = opts.Metrics
	conn.Retry = opts.Retry
	cat := ConnCatalog{Conn: conn}
	est := stats.NewEstimator(cat, conn)
	est.HistogramBuckets = opts.HistogramBuckets
	if opts.Naive {
		est.Mode = stats.ModeNaive
	}
	model := cost.NewModel(est)
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = 0.2
	}
	return &Middleware{
		Conn:        conn,
		Cat:         cat,
		Est:         est,
		Model:       model,
		Opt:         optimizer.New(cat, model),
		Alpha:       alpha,
		Metrics:     opts.Metrics,
		CheckPlans:  opts.CheckPlans,
		Parallelism: opts.Parallelism,
		Flight:      opts.Flight,
	}
}

// Calibrate derives the cost factors from sample runs against the
// connected DBMS (the Cost Estimator component). rows ≤ 0 uses the
// default sample size.
func (m *Middleware) Calibrate(rows int) error {
	cal := &cost.Calibrator{Conn: m.Conn, Rows: rows, Seed: 1}
	f, err := cal.Calibrate()
	if err != nil {
		return fmt.Errorf("tango: calibration: %w", err)
	}
	m.Model.F = f
	return nil
}

// Optimize runs the two-phase optimizer on an initial plan.
func (m *Middleware) Optimize(initial *algebra.Node) (*optimizer.Result, error) {
	res, elapsed, err := m.timedOptimize(initial, nil)
	_ = elapsed
	return res, err
}

// timedOptimize runs the optimizer under an "optimize" child span and
// exports the search statistics to the registry.
func (m *Middleware) timedOptimize(initial *algebra.Node, root *telemetry.Span) (*optimizer.Result, time.Duration, error) {
	sp := root.Child("optimize")
	start := time.Now()
	res, err := m.Opt.Optimize(initial)
	elapsed := time.Since(start)
	sp.Finish()
	if err != nil {
		return nil, elapsed, err
	}
	sp.SetInt("classes", int64(res.Classes))
	sp.SetInt("elements", int64(res.Elements))
	sp.SetInt("plans", int64(len(res.Candidates)))
	sp.SetFloat("cost", res.BestCost)
	if m.CheckPlans {
		if cerr := planck.Check(res.Best, m.Cat); cerr != nil {
			return nil, elapsed, fmt.Errorf("tango: optimizer chose an invalid plan: %w", cerr)
		}
	}
	m.recordOptimizer(res, elapsed)
	return res, elapsed, nil
}

// recordOptimizer exports one optimization's search statistics.
func (m *Middleware) recordOptimizer(res *optimizer.Result, elapsed time.Duration) {
	reg := m.Metrics
	if reg == nil {
		return
	}
	reg.Counter("tango_queries_total", nil).Inc()
	reg.Histogram("tango_optimize_seconds", nil, telemetry.DurationBuckets).Observe(elapsed.Seconds())
	reg.Histogram("tango_optimizer_classes", nil, telemetry.CountBuckets).Observe(float64(res.Classes))
	reg.Histogram("tango_optimizer_elements", nil, telemetry.CountBuckets).Observe(float64(res.Elements))
	reg.Counter("tango_optimizer_plans_costed_total", nil).Add(int64(res.PlansCosted))
	for rule, n := range res.RulesFired {
		reg.Counter("tango_optimizer_rule_fired_total", telemetry.Labels{"rule": rule}).Add(int64(n))
	}
}

// newExecutor builds an executor configured with the middleware's
// telemetry. Instrumentation is on when a registry is attached, when
// adaptation is enabled (the per-operator feedback loop needs measured
// timings), or when analyze is forced.
func (m *Middleware) newExecutor(root *telemetry.Span, analyze bool) *Executor {
	return &Executor{
		Conn:        m.Conn,
		Cat:         m.Cat,
		Metrics:     m.Metrics,
		Analyze:     analyze || m.Alpha > 0,
		Trace:       root,
		IOProbe:     m.IOProbe,
		WALProbe:    m.WALProbe,
		CheckPlans:  m.CheckPlans,
		Parallelism: m.Parallelism,
	}
}

// Execute runs a physical plan and feeds the observed transfer and
// per-operator costs back into the cost factors.
func (m *Middleware) Execute(plan *algebra.Node) (out *rel.Relation, err error) {
	root := telemetry.NewSpan("query")
	pop := m.Conn.PushTrace(root)
	defer func() { pop(); m.finish(root, planLabel(plan), err) }()
	return m.execute(plan, root)
}

func (m *Middleware) execute(plan *algebra.Node, root *telemetry.Span) (*rel.Relation, error) {
	ex := m.newExecutor(root, false)
	out, err := ex.Run(plan)
	if err != nil {
		return nil, err
	}
	m.absorb(ex, root)
	m.mu.Lock()
	m.lastStats = ex.ExecStats()
	m.mu.Unlock()
	return out, nil
}

// finish completes one query's trace: it closes the root span,
// stitches in the DBMS-side spans the server collected for this trace
// ID, observes the end-to-end latency (and error count), hands the
// finished tree to the flight recorder, and stores it as the last
// trace. Call it exactly once per root — the latency histogram counts
// queries.
func (m *Middleware) finish(root *telemetry.Span, query string, err error) {
	if root == nil {
		return
	}
	root.Finish()
	if m.Conn != nil {
		telemetry.Stitch(root, m.Conn.TakeRemoteSpans(root.TraceID()))
	}
	if m.Metrics != nil {
		m.Metrics.Histogram("tango_query_seconds", nil, telemetry.LatencyBuckets).Observe(root.Elapsed().Seconds())
		if err != nil {
			m.Metrics.Counter("tango_query_errors_total", nil).Inc()
		}
	}
	m.Flight.Record(root, query, err)
	m.mu.Lock()
	m.lastTrace = root
	m.mu.Unlock()
}

// planLabel renders a compact plan description for the flight log.
func planLabel(plan *algebra.Node) string {
	if plan == nil {
		return ""
	}
	s := plan.String()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 120 {
		s = s[:120] + "…"
	}
	return s
}

// absorb feeds one execution's measurements back into the model: the
// whole-transfer EWMA (T^M/T^D factors), the per-operator factor
// refinement, and the Q-error drift metrics comparing the optimizer's
// cardinality estimates against observed row counts.
func (m *Middleware) absorb(ex *Executor, root *telemetry.Span) {
	if m.Alpha > 0 {
		m.mu.Lock()
		for _, fb := range ex.Feedback() {
			isLoad := strings.HasPrefix(fb.SQL, "LOAD")
			m.Model.F.Adapt(fb, isLoad, m.Alpha)
		}
		m.mu.Unlock()
	}
	st := ex.ExecStats()
	if st == nil {
		return
	}
	var worstQ float64
	var worstOp string
	st.Walk(func(s *telemetry.OpStats) {
		n, ok := s.Node.(*algebra.Node)
		if !ok || n == nil {
			return
		}
		if m.Alpha > 0 {
			obs := cost.ObservedOp{
				Op:       n.Op,
				Loc:      n.Loc(),
				InBytes:  float64(s.InputBytes()),
				OutBytes: float64(s.Bytes),
				InCard:   float64(s.InputRows()),
				OutCard:  float64(s.Rows),
				Micros:   float64(s.SelfTime()) / float64(time.Microsecond),
			}
			if n.Op == algebra.OpSelect && n.Pred != nil {
				obs.PredTerms = cost.PredTerms(n.Pred)
			}
			m.mu.Lock()
			m.Model.F.AdaptOp(obs, m.Alpha)
			m.mu.Unlock()
		}
		if m.Metrics != nil && s.Rows > 0 {
			if est, err := m.Est.Estimate(n); err == nil && est.Card > 0 {
				q := est.Card / float64(s.Rows)
				if q < 1 {
					q = 1 / q
				}
				l := telemetry.Labels{"op": s.Op}
				m.Metrics.Histogram("tango_qerror", l, telemetry.QErrorBuckets).Observe(q)
				m.Metrics.Gauge("tango_qerror_last", l).Set(q)
				if q > worstQ {
					worstQ, worstOp = q, s.Op
				}
			}
		}
	})
	// Pin the worst-drifting operator of this query as the exemplar of
	// the bucket its Q-error landed in, so the histogram points back at
	// a concrete trace to read.
	if m.Metrics != nil && worstQ > 0 && root.TraceID() != 0 {
		m.Metrics.Histogram("tango_qerror", telemetry.Labels{"op": worstOp}, telemetry.QErrorBuckets).
			SetExemplar(worstQ, fmt.Sprintf("%016x", root.TraceID()), worstOp)
	}
}

// Run optimizes an initial plan and executes the winner, returning
// the result and the optimizer's report. The whole lifecycle is
// traced (optimize → build → execute → transfers); LastTrace returns
// the span tree. When the winning plan dies of a transient
// infrastructure failure, Run degrades gracefully by re-siting the
// query onto a fallback candidate (see runWithFallback).
func (m *Middleware) Run(initial *algebra.Node) (out *rel.Relation, res *optimizer.Result, err error) {
	root := telemetry.NewSpan("query")
	pop := m.Conn.PushTrace(root)
	defer func() { pop(); m.finish(root, planLabel(initial), err) }()
	res, _, err = m.timedOptimize(initial, root)
	if err != nil {
		return nil, nil, err
	}
	out, err = m.ExecuteResult(res, root)
	if err != nil {
		return nil, res, err
	}
	return out, res, nil
}

// ExecuteResult executes an optimizer result under the given trace
// root (nil for untraced), degrading to a fallback candidate when the
// best plan fails with a transient infrastructure error, and feeds the
// winning execution back into the cost model. Exposed so harnesses can
// drive the degradation path with synthetic candidate lists.
func (m *Middleware) ExecuteResult(res *optimizer.Result, root *telemetry.Span) (*rel.Relation, error) {
	out, ex, err := m.runWithFallback(res, root, false)
	if err != nil {
		return nil, err
	}
	m.absorb(ex, root)
	m.mu.Lock()
	m.lastStats = ex.ExecStats()
	m.mu.Unlock()
	return out, nil
}

// LastTrace returns the span tree of the most recent
// Run/Execute/ExplainAnalyze (nil before the first query).
func (m *Middleware) LastTrace() *telemetry.Span {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastTrace
}

// SetStartupTrace seeds the trace slot with a startup span (e.g. the
// server's recovery span after a durable reopen) so `\trace` shows
// what the restart did before the first query replaces it. A nil span
// is ignored.
func (m *Middleware) SetStartupTrace(sp *telemetry.Span) {
	if sp == nil {
		return
	}
	m.mu.Lock()
	m.lastTrace = sp
	m.mu.Unlock()
}

// LastExecStats returns the measured operator tree of the most recent
// execution, or nil when instrumentation was off.
func (m *Middleware) LastExecStats() *telemetry.OpStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastStats
}

// Explain renders the best plan, its estimated cost, and the SQL each
// TRANSFER^M would issue, without executing anything.
func (m *Middleware) Explain(initial *algebra.Node) (string, error) {
	res, err := m.Optimize(initial)
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf("cost %.0f µs, %d classes, %d elements\n%s",
		res.BestCost, res.Classes, res.Elements, res.Best)
	sqls, err := TransferSQL(m.Cat, res.Best)
	if err == nil && len(sqls) > 0 {
		out += "\nDBMS statements:\n"
		for i, s := range sqls {
			out += fmt.Sprintf("  [%d] %s\n", i+1, s)
		}
	}
	return out, nil
}

// ExplainAnalyze optimizes and executes the plan with full
// instrumentation and renders the measured profile: the estimated
// cost, the query-lifecycle span tree, and the per-operator tree with
// observed rows, Next calls, bytes, and self times. The materialized
// result is returned alongside the report.
func (m *Middleware) ExplainAnalyze(initial *algebra.Node) (string, *rel.Relation, error) {
	root := telemetry.NewSpan("query")
	pop := m.Conn.PushTrace(root)
	res, _, err := m.timedOptimize(initial, root)
	if err != nil {
		pop()
		m.finish(root, planLabel(initial), err)
		return "", nil, err
	}
	out, ex, err := m.runWithFallback(res, root, true)
	pop()
	if err != nil {
		m.finish(root, planLabel(initial), err)
		return "", nil, err
	}
	m.absorb(ex, root)
	m.mu.Lock()
	m.lastStats = ex.ExecStats()
	m.mu.Unlock()
	// Finish (and stitch) before rendering so the report shows the
	// remote spans and the settled root duration.
	m.finish(root, planLabel(initial), nil)

	var b strings.Builder
	fmt.Fprintf(&b, "estimated cost %.0f µs, %d classes, %d elements, %d plans costed\n",
		res.BestCost, res.Classes, res.Elements, res.PlansCosted)
	b.WriteString(root.Render())
	if st := ex.ExecStats(); st != nil {
		b.WriteString("operators:\n")
		b.WriteString(st.Format())
	}
	fmt.Fprintf(&b, "result: %d rows\n", out.Cardinality())
	return b.String(), out, nil
}

// TransferSQL returns the SQL statement under every T^M of a plan (in
// plan order). T^D-created temp tables appear under placeholder names.
func TransferSQL(cat algebra.Catalog, plan *algebra.Node) ([]string, error) {
	var out []string
	var firstErr error
	tempNo := 0
	plan.Walk(func(n *algebra.Node) {
		if n.Op != algebra.OpTM || firstErr != nil {
			return
		}
		gen := &sqlgen.Gen{Cat: cat, TempTables: map[*algebra.Node]string{}}
		n.Left.Walk(func(d *algebra.Node) {
			if d.Op == algebra.OpTD {
				tempNo++
				gen.TempTables[d] = fmt.Sprintf("TMP_%d", tempNo)
			}
		})
		sql, _, err := gen.SQL(n.Left)
		if err != nil {
			firstErr = err
			return
		}
		out = append(out, sql)
	})
	return out, firstErr
}
