// Restart support: what the server does when it comes back up on a
// durable store. Recovery itself belongs to the storage layer
// (storage.Recover) and catalog bootstrap to the engine (OpenAt); the
// server's share is the session contract — §3.2's "temp tables are
// dropped at query end" must hold across a crash, so the orphan GC
// that normally runs at session close re-runs once at startup — plus
// exporting what recovery did as counters and a startup-trace span.
package server

import (
	"strings"

	"tango/internal/storage"
	"tango/internal/telemetry"
)

// StartupGC drops every transfer temp table left behind by sessions
// that died with the previous process. It is the startup edition of
// Session.Close's orphan sweep: after a crash there are no live
// sessions, so anything under TempPrefix is garbage by construction.
// It returns the number of tables collected.
func (s *Server) StartupGC() (int, error) {
	collected := 0
	var first error
	for _, name := range s.db.TableNames() {
		if !strings.HasPrefix(name, TempPrefix) {
			continue
		}
		if err := s.db.DropTable(name, true); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		s.forgetLoadMark(name)
		collected++
	}
	return collected, first
}

// RegisterRecovery exports one restart's recovery outcome into the
// registry as monotonic totals. The counters are set once at startup
// (recovery happens before the server accepts traffic), matching the
// _total naming so dashboards can rate() them across restarts.
func RegisterRecovery(reg *telemetry.Registry, stats *storage.RecoveryStats) {
	if reg == nil || stats == nil {
		return
	}
	reg.Counter("tango_recovery_replayed_records_total", nil).Add(stats.ReplayedRecords)
	reg.Counter("tango_recovery_torn_tails_total", nil).Add(stats.TornTails)
	reg.Counter("tango_recovery_checksum_failures_total", nil).Add(stats.ChecksumFailures)
	reg.Counter("tango_recovery_repaired_pages_total", nil).Add(stats.RepairedPages)
	reg.Counter("tango_recovery_rolled_back_loads_total", nil).Add(stats.RolledBackLoads)
}

// RecoverySpan renders one restart's recovery outcome as a span for
// the startup trace: duration from the recovery pass itself, WAL
// volume and damage tallies as attributes, and a gc child once the
// startup temp-table sweep has run.
func RecoverySpan(stats *storage.RecoveryStats, gcCollected int) *telemetry.Span {
	if stats == nil {
		return nil
	}
	sp := telemetry.NewSpan("recovery")
	sp.SetInt("wal_bytes", stats.WALBytes)
	sp.SetInt("replayed_records", stats.ReplayedRecords)
	sp.SetInt("torn_tails", stats.TornTails)
	sp.SetInt("checksum_failures", stats.ChecksumFailures)
	sp.SetInt("repaired_pages", stats.RepairedPages)
	sp.SetInt("rolled_back_loads", stats.RolledBackLoads)
	gc := sp.AddChild("startup_gc", 0)
	gc.SetInt("temp_tables_collected", int64(gcCollected))
	sp.AddChild("storage_recover", stats.Duration)
	sp.Finish()
	return sp
}
