package client

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"tango/internal/engine"
	"tango/internal/server"
	"tango/internal/types"
	"tango/internal/wire"
)

// tcpServer builds a loaded server and serves it on a loopback TCP
// listener with a short resume grace (tests sever connections and want
// prompt GC) — closed via cleanup.
func tcpServer(t *testing.T, rows int, cfg server.TCPConfig) *server.TCPServer {
	t.Helper()
	db := engine.Open(engine.Config{})
	srv := server.New(db, wire.Latency{})
	if _, err := srv.Exec("CREATE TABLE POSITION (PosID INTEGER, EmpName VARCHAR(40), T1 INTEGER, T2 INTEGER)"); err != nil {
		t.Fatal(err)
	}
	se := srv.NewSession()
	c := Connect(srv)
	tuples := make([]types.Tuple, rows)
	for i := range tuples {
		tuples[i] = types.Tuple{
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("emp-%d", i%37)),
			types.Int(int64(i % 50)),
			types.Int(int64(50 + i%50)),
		}
	}
	if _, err := c.Load("POSITION", tuples); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	_, _ = se.Close()
	if cfg.ResumeGrace == 0 {
		cfg.ResumeGrace = 200 * time.Millisecond
	}
	ts, err := server.ListenAndServe(srv, "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ts.Close() })
	return ts
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTCPRoundTrip drives the full Backend surface over a real socket
// — query (batched fetches), exec, bulk load, schema, stats, and the
// temp-table protocol — and verifies the results match the in-process
// path byte for byte.
func TestTCPRoundTrip(t *testing.T) {
	ts := tcpServer(t, 500, server.TCPConfig{})
	defer leakCheck(t)()
	srv := ts.Server()

	c, err := Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}

	// Reference result from the in-process path.
	ref := Connect(srv)
	want, _, err := ref.QueryAll("SELECT PosID, EmpName FROM POSITION ORDER BY PosID")
	if err != nil {
		t.Fatal(err)
	}
	got, fb, err := c.QueryAll("SELECT PosID, EmpName FROM POSITION ORDER BY PosID")
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != want.Cardinality() || got.Cardinality() != 500 {
		t.Fatalf("TCP query: %d rows, want %d", got.Cardinality(), want.Cardinality())
	}
	for i, row := range got.Tuples {
		if row.String() != want.Tuples[i].String() {
			t.Fatalf("row %d differs: %v vs %v", i, row, want.Tuples[i])
		}
	}
	if fb.Rows != 500 || fb.Bytes == 0 {
		t.Fatalf("feedback: %+v", fb)
	}

	// Exec + schema + stats cross the wire typed.
	if _, err := c.Exec("INSERT INTO POSITION VALUES (999, 'extra', 1, 2)"); err != nil {
		t.Fatal(err)
	}
	schema, err := c.TableSchema("POSITION")
	if err != nil {
		t.Fatal(err)
	}
	if schema.Len() != 4 {
		t.Fatalf("schema arity %d, want 4", schema.Len())
	}
	st, err := c.TableStats("POSITION", 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cardinality != 501 {
		t.Fatalf("stats cardinality %d, want 501", st.Cardinality)
	}
	wantStats, err := ref.TableStats("POSITION", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Columns) != len(wantStats.Columns) {
		t.Fatalf("stats columns %d vs %d", len(st.Columns), len(wantStats.Columns))
	}
	for key, wc := range wantStats.Columns {
		pc := st.Columns[key]
		if pc == nil || pc.Distinct != wc.Distinct || pc.NullCount != wc.NullCount ||
			pc.HasIndex != wc.HasIndex || (pc.Histogram == nil) != (wc.Histogram == nil) {
			t.Fatalf("column %s stats differ over the wire: %+v vs %+v", key, pc, wc)
		}
		if wc.Histogram != nil && pc.Histogram.NumBuckets() != wc.Histogram.NumBuckets() {
			t.Fatalf("column %s histogram differs: %d vs %d buckets",
				key, pc.Histogram.NumBuckets(), wc.Histogram.NumBuckets())
		}
	}

	// Temp-table protocol: create registers, load fills, drop forgets.
	tmp := c.TempName()
	if err := c.CreateTable(tmp, want.Schema); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(tmp, want.Tuples[:10]); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable(tmp); err != nil {
		t.Fatal(err)
	}

	// Bulk insert path.
	ins := []types.Tuple{
		{types.Int(1000), types.Str("ins-a"), types.Int(1), types.Int(2)},
		{types.Int(1001), types.Str("ins-b"), types.Int(3), types.Int(4)},
	}
	if _, err := c.InsertRows("POSITION", ins); err != nil {
		t.Fatal(err)
	}

	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "sessions collected", func() bool {
		return ts.LiveRemoteSessions() == 0 && srv.LiveSessions() == 0
	})
	if temps := srv.TempTables(); len(temps) != 0 {
		t.Fatalf("temp tables leaked: %v", temps)
	}
}

// TestTCPResumeAfterSever: a chaos proxy severs the connection mid
// query; the transport redials, resumes the session by token, and the
// sequence-numbered fetch replay finishes the stream — same rows, no
// leaks.
func TestTCPResumeAfterSever(t *testing.T) {
	ts := tcpServer(t, 2000, server.TCPConfig{ResumeGrace: 2 * time.Second})
	defer leakCheck(t)()
	srv := ts.Server()

	sched, err := wire.ParseSchedule("seed=3;fetch@4=drop;fetch@9=drop")
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := wire.NewProxy(ts.Addr(), sched.Injector())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c, err := Dial(proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.Retry = RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   200 * time.Microsecond,
		MaxDelay:    5 * time.Millisecond,
		Multiplier:  2,
		OpTimeout:   time.Second,
		Deadline:    10 * time.Second,
	}
	c.Prefetch = 64 // many fetch round trips, so the traps land mid-stream

	out, _, err := c.QueryAll("SELECT PosID FROM POSITION ORDER BY PosID")
	if err != nil {
		t.Fatalf("query across severed connections: %v", err)
	}
	if out.Cardinality() != 2000 {
		t.Fatalf("got %d rows, want 2000", out.Cardinality())
	}
	for i, row := range out.Tuples {
		if row[0].AsInt() != int64(i) {
			t.Fatalf("row %d = %v after replay", i, row)
		}
	}
	if proxy.Severed() == 0 {
		t.Fatal("proxy never severed the connection — the test exercised nothing")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close after resume: %v", err)
	}
	waitFor(t, "sessions collected", func() bool {
		return ts.LiveRemoteSessions() == 0 && srv.LiveSessions() == 0
	})
	if n := srv.OpenCursors(); n != 0 {
		t.Fatalf("%d cursor(s) leaked", n)
	}
}

// TestTCPExpiredSessionGC: a session whose client vanishes for longer
// than the resume grace is garbage-collected server-side — cursors
// closed, temp tables dropped — and a later resume is refused.
func TestTCPExpiredSessionGC(t *testing.T) {
	ts := tcpServer(t, 100, server.TCPConfig{ResumeGrace: 50 * time.Millisecond})
	defer leakCheck(t)()
	srv := ts.Server()

	tr := DialTransport(ts.Addr())
	c, err := tr.Conn()
	if err != nil {
		t.Fatal(err)
	}
	// An open cursor and a registered temp table ride the session.
	rows, err := c.Query("SELECT PosID FROM POSITION")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := rows.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	tmp := c.TempName()
	if err := c.CreateTable(tmp, rows.Schema()); err != nil {
		t.Fatal(err)
	}
	// Kill the transport: the session detaches and the grace expires.
	_ = tr.Close()
	waitFor(t, "expired session GC", func() bool {
		return ts.LiveRemoteSessions() == 0 && srv.LiveSessions() == 0
	})
	if n := srv.OpenCursors(); n != 0 {
		t.Fatalf("%d cursor(s) survived session GC", n)
	}
	if temps := srv.TempTables(); len(temps) != 0 {
		t.Fatalf("temp tables survived session GC: %v", temps)
	}
}

// TestTCPDrainTyped: a draining server answers new statements with
// ErrShutdown across the wire, and Close leaves no live sessions or
// connections behind.
func TestTCPDrainTyped(t *testing.T) {
	ts := tcpServer(t, 50, server.TCPConfig{DrainTimeout: 200 * time.Millisecond})
	defer leakCheck(t)()
	srv := ts.Server()
	srv.SetAdmission(server.AdmissionConfig{MaxInFlight: 4})

	c, err := Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.QueryAll("SELECT PosID FROM POSITION"); err != nil {
		t.Fatal(err)
	}
	srv.StartDrain()
	_, _, err = c.QueryAll("SELECT PosID FROM POSITION")
	if !errors.Is(err, server.ErrShutdown) {
		t.Fatalf("draining server answered %v, want ErrShutdown", err)
	}
	if err := ts.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitFor(t, "teardown", func() bool {
		return ts.LiveRemoteSessions() == 0 && ts.LiveConns() == 0 && srv.LiveSessions() == 0
	})
}

// TestTCPOverloadShedAndRetry: overloading a capacity-1 TCP server
// sheds with a typed ErrOverloaded whose server-suggested backoff the
// client honors — the shed statement succeeds on retry once capacity
// frees, with no session leaks.
func TestTCPOverloadShedAndRetry(t *testing.T) {
	ts := tcpServer(t, 100, server.TCPConfig{
		Admission: server.AdmissionConfig{MaxInFlight: 1, MaxQueue: 0, RetryAfter: 2 * time.Millisecond},
	})
	defer leakCheck(t)()
	srv := ts.Server()

	tr := DialTransport(ts.Addr())
	defer tr.Close()
	holder, err := tr.Conn()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := holder.Query("SELECT PosID FROM POSITION")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := rows.Next(); err != nil || !ok {
		t.Fatalf("holder first row: ok=%v err=%v", ok, err)
	}

	// Without retries: typed shed, backoff attached.
	bare, err := tr.Conn()
	if err != nil {
		t.Fatal(err)
	}
	_, _, qerr := bare.QueryAll("SELECT PosID FROM POSITION")
	var ov *server.ErrOverloaded
	if !errors.As(qerr, &ov) {
		t.Fatalf("got %v, want ErrOverloaded", qerr)
	}
	if ov.Backoff != 2*time.Millisecond {
		t.Fatalf("suggested backoff %v, want 2ms", ov.Backoff)
	}
	shedBefore := srv.Shed()
	if shedBefore == 0 {
		t.Fatal("shed counter never moved")
	}

	// With retries: the cursor closes mid-backoff, so the retry lands.
	retrier, err := tr.Conn()
	if err != nil {
		t.Fatal(err)
	}
	retrier.Retry = RetryPolicy{
		MaxAttempts: 50,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		OpTimeout:   time.Second,
		Deadline:    10 * time.Second,
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		_ = rows.Close()
	}()
	out, _, err := retrier.QueryAll("SELECT PosID FROM POSITION")
	if err != nil {
		t.Fatalf("retry after shed: %v", err)
	}
	if out.Cardinality() != 100 {
		t.Fatalf("got %d rows, want 100", out.Cardinality())
	}

	for _, c := range []*Conn{holder, bare, retrier} {
		if err := c.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	waitFor(t, "sessions collected", func() bool {
		return ts.LiveRemoteSessions() == 0 && srv.LiveSessions() == 0
	})
	if got := srv.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after teardown", got)
	}
}
