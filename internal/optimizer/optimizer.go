package optimizer

import (
	"fmt"
	"sort"
	"time"

	"tango/internal/algebra"
	"tango/internal/cost"
)

// Optimizer enumerates candidate plans by transformation-rule closure
// (phase one) and costs each candidate with the cost model (phase
// two), exactly the two-phase structure of §2.1.
type Optimizer struct {
	Cat   algebra.Catalog
	Model *cost.Model
	// MaxPlans caps the enumeration (a safety valve; the paper's
	// queries stay in the hundreds of elements).
	MaxPlans int
	// DisabledGroups turns heuristic groups off for ablation
	// experiments (e.g. {1: true} disables the move-to-middleware
	// rules, leaving stratum-style all-DBMS plans).
	DisabledGroups map[int]bool
}

// New creates an optimizer.
func New(cat algebra.Catalog, model *cost.Model) *Optimizer {
	return &Optimizer{Cat: cat, Model: model, MaxPlans: 512}
}

// Candidate is one enumerated plan with its estimated cost.
type Candidate struct {
	Plan *algebra.Node
	Cost float64
}

// Result carries the chosen plan and the optimizer accounting the
// paper reports per query: equivalence classes and class elements,
// plus search statistics for the telemetry exporter.
type Result struct {
	Best       *algebra.Node
	BestCost   float64
	Candidates []Candidate // sorted by ascending cost
	Classes    int
	Elements   int
	// PlansCosted is the number of complete plans priced in phase two.
	PlansCosted int
	// RulesFired counts successful rule applications by rule name
	// (including rewrites later deduplicated or invalidated).
	RulesFired map[string]int
	// Elapsed is the wall time of the whole optimization.
	Elapsed time.Duration
}

// Optimize runs both phases on an initial plan (which, per §2.1,
// assigns all processing to the DBMS with a single T^M on top).
func (o *Optimizer) Optimize(initial *algebra.Node) (*Result, error) {
	start := time.Now()
	if err := initial.Validate(); err != nil {
		return nil, fmt.Errorf("optimizer: initial plan: %w", err)
	}
	maxPlans := o.MaxPlans
	if maxPlans <= 0 {
		maxPlans = 512
	}
	rules := o.activeRules()

	// Phase one: transformation closure with memoized plan keys.
	memo := newMemo()
	seen := map[string]*algebra.Node{}
	var order []string
	add := func(p *algebra.Node) {
		k := p.Key()
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = p
		order = append(order, k)
		memo.addPlan(p)
	}
	fired := map[string]int{}
	add(initial.Clone())
	for i := 0; i < len(order) && len(order) < maxPlans; i++ {
		plan := seen[order[i]]
		for _, rewritten := range applyRulesEverywhere(plan, rules, memo, fired) {
			if len(order) >= maxPlans {
				break
			}
			if rewritten.Validate() != nil {
				continue
			}
			add(rewritten)
		}
	}

	// Phase two: cost every candidate.
	res := &Result{RulesFired: fired}
	for _, k := range order {
		plan := seen[k]
		// Only complete plans (root delivering to the middleware) are
		// executable.
		if plan.Loc() != algebra.LocMW {
			continue
		}
		c, err := o.Model.PlanCost(plan)
		if err != nil {
			return nil, err
		}
		res.Candidates = append(res.Candidates, Candidate{Plan: plan, Cost: c})
		res.PlansCosted++
	}
	if len(res.Candidates) == 0 {
		return nil, fmt.Errorf("optimizer: no executable candidate plans")
	}
	sort.SliceStable(res.Candidates, func(i, j int) bool {
		return res.Candidates[i].Cost < res.Candidates[j].Cost
	})
	res.Best = res.Candidates[0].Plan
	res.BestCost = res.Candidates[0].Cost
	res.Classes, res.Elements = memo.counts()
	res.Elapsed = time.Since(start)
	return res, nil
}

func (o *Optimizer) activeRules() []Rule {
	all := DefaultRules(o.Cat)
	if len(o.DisabledGroups) == 0 {
		return all
	}
	var out []Rule
	for _, r := range all {
		if !o.DisabledGroups[r.Group] {
			out = append(out, r)
		}
	}
	return out
}

// applyRulesEverywhere applies every rule at every node of the plan,
// returning full rewritten plans. The memo records subtree
// equivalences for the class/element accounting; fired counts
// successful applications per rule name.
func applyRulesEverywhere(plan *algebra.Node, rules []Rule, memo *memoTable, fired map[string]int) []*algebra.Node {
	var out []*algebra.Node
	// Enumerate node positions by a path of 0 (left) / 1 (right).
	var walk func(n *algebra.Node, path []int)
	walk = func(n *algebra.Node, path []int) {
		if n == nil {
			return
		}
		for _, r := range rules {
			for _, sub := range r.Apply(n) {
				if fired != nil {
					fired[r.Name]++
				}
				memo.recordEquiv(n, sub)
				out = append(out, replaceAt(plan, path, sub))
			}
		}
		walk(n.Left, append(append([]int{}, path...), 0))
		walk(n.Right, append(append([]int{}, path...), 1))
	}
	walk(plan, nil)
	return out
}

// replaceAt clones the plan with the subtree at path replaced.
func replaceAt(plan *algebra.Node, path []int, sub *algebra.Node) *algebra.Node {
	if len(path) == 0 {
		return sub.Clone()
	}
	c := *plan
	cp := &c
	cp.Left = plan.Left
	cp.Right = plan.Right
	if path[0] == 0 {
		cp.Left = replaceAt(plan.Left, path[1:], sub)
	} else {
		cp.Right = replaceAt(plan.Right, path[1:], sub)
	}
	return cp
}

// --- Volcano-style accounting ---

// memoTable tracks distinct subexpressions (elements) grouped into
// equivalence classes via union-find, mirroring the class/element
// counts the Volcano memo would hold.
type memoTable struct {
	parent map[string]string
	known  map[string]bool
}

func newMemo() *memoTable {
	return &memoTable{parent: map[string]string{}, known: map[string]bool{}}
}

func (m *memoTable) find(k string) string {
	p, ok := m.parent[k]
	if !ok {
		m.parent[k] = k
		return k
	}
	if p == k {
		return k
	}
	root := m.find(p)
	m.parent[k] = root
	return root
}

func (m *memoTable) union(a, b string) {
	ra, rb := m.find(a), m.find(b)
	if ra != rb {
		m.parent[ra] = rb
	}
}

// addPlan registers every subtree of the plan as an element.
func (m *memoTable) addPlan(p *algebra.Node) {
	p.Walk(func(n *algebra.Node) {
		k := n.Key()
		m.known[k] = true
		m.find(k)
	})
}

// recordEquiv marks two subtrees as members of one equivalence class.
func (m *memoTable) recordEquiv(a, b *algebra.Node) {
	ka, kb := a.Key(), b.Key()
	m.known[ka] = true
	m.known[kb] = true
	m.union(ka, kb)
	// Their subtrees are elements too.
	m.addPlan(b)
}

// counts returns (classes, elements).
func (m *memoTable) counts() (int, int) {
	roots := map[string]bool{}
	for k := range m.known {
		roots[m.find(k)] = true
	}
	return len(roots), len(m.known)
}
