package types

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func tuplesRoundTrip(t Tuple) bool {
	enc := EncodeTuple(nil, t)
	got, n, err := DecodeTuple(enc)
	if err != nil || n != len(enc) || len(got) != len(t) {
		return false
	}
	for i := range t {
		if got[i].Kind() != t[i].Kind() || !Equal(got[i], t[i]) {
			return false
		}
	}
	return true
}

func TestCodecRoundTrip(t *testing.T) {
	cases := []Tuple{
		{},
		{Null},
		{Int(0), Int(-1), Int(1 << 40)},
		{Float(3.14159), Float(-0.0)},
		{Str(""), Str("hello"), Str("O'Hara\n\x00")},
		{Bool(true), Bool(false)},
		{Date(9862), Null, Str("x"), Int(7)},
	}
	for i, c := range cases {
		if !tuplesRoundTrip(c) {
			t.Errorf("case %d (%v) failed round trip", i, c)
		}
	}
}

func TestCodecQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gen := func() Tuple {
		n := rng.Intn(6)
		tp := make(Tuple, n)
		for i := range tp {
			switch rng.Intn(6) {
			case 0:
				tp[i] = Null
			case 1:
				tp[i] = Int(rng.Int63() - rng.Int63())
			case 2:
				tp[i] = Float(rng.NormFloat64())
			case 3:
				b := make([]byte, rng.Intn(30))
				rng.Read(b)
				tp[i] = Str(string(b))
			case 4:
				tp[i] = Bool(rng.Intn(2) == 0)
			default:
				tp[i] = Date(rng.Int63n(30000))
			}
		}
		return tp
	}
	f := func() bool { return tuplesRoundTrip(gen()) }
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCodecStream(t *testing.T) {
	// Multiple tuples back-to-back decode at correct offsets.
	a := Tuple{Int(1), Str("x")}
	b := Tuple{Float(2.5)}
	buf := EncodeTuple(nil, a)
	buf = EncodeTuple(buf, b)
	got1, n1, err := DecodeTuple(buf)
	if err != nil {
		t.Fatal(err)
	}
	got2, n2, err := DecodeTuple(buf[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if n1+n2 != len(buf) || !Equal(got1[0], Int(1)) || !Equal(got2[0], Float(2.5)) {
		t.Error("stream decode mismatch")
	}
}

func TestCodecCorruption(t *testing.T) {
	enc := EncodeTuple(nil, Tuple{Str("hello world"), Int(42)})
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := DecodeTuple(enc[:cut]); err == nil {
			// A truncation that still parses must consume <= cut bytes —
			// acceptable only if it decodes a full prefix; kind tags make
			// most cuts fail. Just ensure no panic happened.
			continue
		}
	}
	bad := bytes.Clone(enc)
	bad[1] = 250 // invalid kind tag
	if _, _, err := DecodeTuple(bad); err == nil {
		t.Error("invalid kind should error")
	}
}

func TestEncodedSize(t *testing.T) {
	tp := Tuple{Int(5), Str("abc")}
	if EncodedSize(tp) != len(EncodeTuple(nil, tp)) {
		t.Error("EncodedSize mismatch")
	}
}
