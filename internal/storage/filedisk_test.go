package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tango/internal/types"
)

// --- WAL codec ---

func walRecordFixtures() []*walRecord {
	img := make([]byte, PageSize)
	for i := range img {
		img[i] = byte(i * 7)
	}
	return []*walRecord{
		{typ: recCreate, file: 3},
		{typ: recDrop, file: 9},
		{typ: recAppend, file: 3, pageNo: 17},
		{typ: recImage, file: 3, pageNo: 17, image: img},
		{typ: recBeginLoad, file: 4, pagesBefore: 2, name: "EMPLOYEE"},
		{typ: recCommitLoad, file: 4},
		{typ: recMeta, key: "catalog", val: `{"tables":[]}`},
		{typ: recMeta, key: "", val: ""},
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	var buf []byte
	fixtures := walRecordFixtures()
	for i, r := range fixtures {
		r.lsn = uint64(i + 1)
		buf = encodeWALRecord(buf, r)
	}
	recs, validLen, torn := readWALRecords(buf)
	if torn {
		t.Fatal("clean log reported torn")
	}
	if validLen != len(buf) {
		t.Fatalf("validLen = %d, want %d", validLen, len(buf))
	}
	if len(recs) != len(fixtures) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(fixtures))
	}
	for i, got := range recs {
		want := fixtures[i]
		if got.lsn != want.lsn || got.typ != want.typ || got.file != want.file ||
			got.pageNo != want.pageNo || got.pagesBefore != want.pagesBefore ||
			got.name != want.name || got.key != want.key || got.val != want.val ||
			!bytes.Equal(got.image, want.image) {
			t.Errorf("record %d (%v) did not round-trip", i, want.typ)
		}
	}
}

func TestWALTornTailTruncation(t *testing.T) {
	var buf []byte
	for i, r := range walRecordFixtures() {
		r.lsn = uint64(i + 1)
		buf = encodeWALRecord(buf, r)
	}
	full, fullLen, _ := readWALRecords(buf)
	// Every strict prefix must decode to a prefix of the records with a
	// torn tail (unless it lands exactly on a frame boundary).
	for cut := 0; cut < len(buf); cut += 97 {
		recs, validLen, torn := readWALRecords(buf[:cut])
		if validLen > cut {
			t.Fatalf("cut %d: validLen %d beyond data", cut, validLen)
		}
		if !torn && validLen != cut {
			t.Fatalf("cut %d: tail not reported torn", cut)
		}
		for i, r := range recs {
			if r.lsn != full[i].lsn {
				t.Fatalf("cut %d: record %d lsn %d, want %d", cut, i, r.lsn, full[i].lsn)
			}
		}
	}
	// Flipping a byte inside a frame severs the log at that frame.
	mut := append([]byte(nil), buf...)
	mut[fullLen/2] ^= 0xff
	recs, _, torn := readWALRecords(mut)
	if !torn {
		t.Fatal("corrupted log not reported torn")
	}
	if len(recs) >= len(full) {
		t.Fatalf("corruption lost no records (%d of %d)", len(recs), len(full))
	}
}

func FuzzWALDecode(f *testing.F) {
	for i, r := range walRecordFixtures() {
		r.lsn = uint64(i + 1)
		f.Add(encodeWALRecord(nil, r))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic, and the valid prefix must re-encode to the
		// exact bytes it was decoded from.
		recs, validLen, _ := readWALRecords(data)
		if validLen > len(data) {
			t.Fatalf("validLen %d > len %d", validLen, len(data))
		}
		var re []byte
		for _, r := range recs {
			cp := *r
			if cp.image != nil {
				cp.image = append([]byte(nil), cp.image...)
			}
			re = encodeWALRecord(re, &cp)
		}
		if !bytes.Equal(re, data[:validLen]) {
			t.Fatalf("re-encode mismatch: %d bytes vs %d valid", len(re), validLen)
		}
	})
}

// --- page frames ---

func TestPageFrameChecksum(t *testing.T) {
	payload := make([]byte, PageSize)
	copy(payload, "temporal middleware")
	frame := encodePageFrame(nil, 5, 11, payload)
	if len(frame) != pageFrameSize {
		t.Fatalf("frame size %d, want %d", len(frame), pageFrameSize)
	}
	if !verifyPageFrame(5, 11, frame) {
		t.Fatal("clean frame failed verification")
	}
	// The CRC binds the frame to its (file, page) address.
	if verifyPageFrame(6, 11, frame) || verifyPageFrame(5, 12, frame) {
		t.Fatal("frame verified at the wrong address")
	}
	frame[100] ^= 1
	if verifyPageFrame(5, 11, frame) {
		t.Fatal("corrupted frame verified")
	}
}

// --- FileDisk: durability and recovery ---

func pageWithRecord(t *testing.T, rec string) *Page {
	t.Helper()
	var p Page
	p.Reset()
	if _, err := p.Insert([]byte(rec)); err != nil {
		t.Fatal(err)
	}
	return &p
}

func readRecord(t *testing.T, s Store, pid PageID) string {
	t.Helper()
	var p Page
	if err := s.ReadPage(pid, &p); err != nil {
		t.Fatalf("ReadPage %v: %v", pid, err)
	}
	rec, err := p.Record(0)
	if err != nil {
		t.Fatalf("Record %v: %v", pid, err)
	}
	return string(rec)
}

func TestFileDiskPersistAcrossRecover(t *testing.T) {
	dir := t.TempDir()
	fd, st, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.ReplayedRecords != 0 || st.ChecksumFailures != 0 {
		t.Fatalf("fresh dir recovery stats: %+v", st)
	}
	f := fd.CreateFile()
	for i := 0; i < 3; i++ {
		if _, err := fd.AppendPage(f); err != nil {
			t.Fatal(err)
		}
		if err := fd.WritePage(PageID{File: f, No: int32(i)}, pageWithRecord(t, fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := fd.PutMeta("catalog", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := fd.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulated kill -9: no Close, no checkpoint — the WAL alone must
	// carry the state.
	fd2, st2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ReplayedRecords == 0 {
		t.Fatal("no WAL records replayed")
	}
	for i := 0; i < 3; i++ {
		if got, want := readRecord(t, fd2, PageID{File: f, No: int32(i)}), fmt.Sprintf("rec-%d", i); got != want {
			t.Errorf("page %d = %q, want %q", i, got, want)
		}
	}
	if v, ok := fd2.Meta("catalog"); !ok || v != "v1" {
		t.Errorf("meta = %q, %v", v, ok)
	}
	// Clean close writes a checkpoint; a third recovery replays nothing.
	if err := fd2.Close(); err != nil {
		t.Fatal(err)
	}
	fd3, st3, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st3.ReplayedRecords != 0 {
		t.Errorf("post-checkpoint recovery replayed %d records", st3.ReplayedRecords)
	}
	if got := readRecord(t, fd3, PageID{File: f, No: 1}); got != "rec-1" {
		t.Errorf("after checkpoint: %q", got)
	}
	if fd3.Close() != nil {
		t.Fatal("close")
	}
}

func TestFileDiskUnsyncedWritesDoNotSurvive(t *testing.T) {
	dir := t.TempDir()
	fd, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := fd.CreateFile()
	if _, err := fd.AppendPage(f); err != nil {
		t.Fatal(err)
	}
	if err := fd.WritePage(PageID{File: f, No: 0}, pageWithRecord(t, "durable")); err != nil {
		t.Fatal(err)
	}
	if err := fd.Sync(); err != nil {
		t.Fatal(err)
	}
	// Past the barrier: never synced, must vanish.
	if err := fd.WritePage(PageID{File: f, No: 0}, pageWithRecord(t, "volatile")); err != nil {
		t.Fatal(err)
	}
	g := fd.CreateFile()
	if _, err := fd.AppendPage(g); err != nil {
		t.Fatal(err)
	}
	fd2, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := readRecord(t, fd2, PageID{File: f, No: 0}); got != "durable" {
		t.Errorf("recovered %q, want %q", got, "durable")
	}
	if fd2.HasFile(g) {
		t.Error("unsynced file survived recovery")
	}
}

func TestFileDiskDropFileRecover(t *testing.T) {
	dir := t.TempDir()
	fd, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	keep, drop := fd.CreateFile(), fd.CreateFile()
	for _, f := range []FileID{keep, drop} {
		if _, err := fd.AppendPage(f); err != nil {
			t.Fatal(err)
		}
		if err := fd.WritePage(PageID{File: f, No: 0}, pageWithRecord(t, "x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := fd.Checkpoint(); err != nil { // both files reach the directory
		t.Fatal(err)
	}
	fd.DropFile(drop)
	if err := fd.Sync(); err != nil {
		t.Fatal(err)
	}
	fd2, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !fd2.HasFile(keep) || fd2.HasFile(drop) {
		t.Fatalf("HasFile: keep=%v drop=%v", fd2.HasFile(keep), fd2.HasFile(drop))
	}
	// The dropped file's page file must be gone from the directory.
	if _, err := os.Stat(dataPath(dir, drop)); !os.IsNotExist(err) {
		t.Errorf("dropped page file still present: %v", err)
	}
	// File IDs keep advancing past the dropped one.
	if id := fd2.CreateFile(); id <= drop {
		t.Errorf("recovered allocator reissued id %d", id)
	}
}

func TestFileDiskLoadRollback(t *testing.T) {
	dir := t.TempDir()
	fd, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := fd.CreateFile()
	if _, err := fd.AppendPage(f); err != nil {
		t.Fatal(err)
	}
	if err := fd.WritePage(PageID{File: f, No: 0}, pageWithRecord(t, "before")); err != nil {
		t.Fatal(err)
	}
	if err := fd.Sync(); err != nil {
		t.Fatal(err)
	}
	// An uncommitted bulk load: the begin mark and the loaded pages are
	// synced, but the commit never happens.
	if err := fd.BeginLoad(f, "EMPLOYEE"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := fd.AppendPage(f); err != nil {
			t.Fatal(err)
		}
		if err := fd.WritePage(PageID{File: f, No: int32(i)}, pageWithRecord(t, "loaded")); err != nil {
			t.Fatal(err)
		}
	}
	if err := fd.Sync(); err != nil {
		t.Fatal(err)
	}
	fd2, st, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.RolledBackLoads != 1 {
		t.Errorf("RolledBackLoads = %d, want 1", st.RolledBackLoads)
	}
	if n := fd2.NumPages(f); n != 1 {
		t.Fatalf("after rollback NumPages = %d, want 1", n)
	}
	if got := readRecord(t, fd2, PageID{File: f, No: 0}); got != "before" {
		t.Errorf("pre-load page = %q", got)
	}
	// A committed load survives.
	if err := fd2.BeginLoad(f, "EMPLOYEE"); err != nil {
		t.Fatal(err)
	}
	if _, err := fd2.AppendPage(f); err != nil {
		t.Fatal(err)
	}
	if err := fd2.WritePage(PageID{File: f, No: 1}, pageWithRecord(t, "loaded")); err != nil {
		t.Fatal(err)
	}
	if err := fd2.CommitLoad(f); err != nil {
		t.Fatal(err)
	}
	if err := fd2.Sync(); err != nil {
		t.Fatal(err)
	}
	fd3, st3, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st3.RolledBackLoads != 0 {
		t.Errorf("committed load rolled back")
	}
	if n := fd3.NumPages(f); n != 2 {
		t.Errorf("after committed load NumPages = %d, want 2", n)
	}
}

func TestFileDiskCrashScriptWAL(t *testing.T) {
	// Count the WAL write points of a fixed workload with an observer
	// script, then crash at each one and verify the recovered state is
	// a clean prefix of the sync history.
	workload := func(fd *FileDisk) (FileID, error) {
		f := fd.CreateFile()
		for i := 0; i < 4; i++ {
			if _, err := fd.AppendPage(f); err != nil {
				return f, err
			}
			if err := fd.WritePage(PageID{File: f, No: int32(i)}, pageWithRecord(t, fmt.Sprintf("v%d", i))); err != nil {
				return f, err
			}
			if err := fd.Sync(); err != nil {
				return f, err
			}
		}
		return f, nil
	}
	dir := t.TempDir()
	fd, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	observer := NewCrashScript()
	fd.SetCrashScript(observer)
	if _, err := workload(fd); err != nil {
		t.Fatal(err)
	}
	total := observer.Observed(TargetWAL)
	if total == 0 {
		t.Fatal("workload produced no WAL write points")
	}
	for n := int64(1); n <= total; n++ {
		for _, mode := range []CrashMode{CrashOmit, CrashTorn} {
			dir := t.TempDir()
			fd, _, err := Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			script := NewCrashScript(CrashPoint{Target: TargetWAL, Nth: n, Mode: mode})
			fd.SetCrashScript(script)
			f, werr := workload(fd)
			if !errors.Is(werr, ErrCrashed) {
				t.Fatalf("wal@%d=%d: workload error %v, want ErrCrashed", n, mode, werr)
			}
			if !fd.Crashed() {
				t.Fatalf("wal@%d: store not dead", n)
			}
			// Dead store rejects everything.
			if err := fd.Sync(); !errors.Is(err, ErrCrashed) {
				t.Fatalf("Sync on dead store: %v", err)
			}
			if _, err := fd.AppendPage(f); !errors.Is(err, ErrCrashed) {
				t.Fatalf("AppendPage on dead store: %v", err)
			}
			rec, st, err := Recover(dir)
			if err != nil {
				t.Fatalf("wal@%d=%d: recover: %v", n, mode, err)
			}
			if mode == CrashTorn && st.TornTails == 0 {
				t.Errorf("wal@%d=torn: no torn tail detected", n)
			}
			// Recovered pages must be a prefix of the write history:
			// page i holds v<i> or — only if the crash fell between its
			// append and image records — is empty; once one page is
			// empty every later page must be absent or empty too.
			np := rec.NumPages(f)
			if !rec.HasFile(f) {
				np = 0
			}
			content := true
			for i := 0; i < np; i++ {
				var p Page
				if err := rec.ReadPage(PageID{File: f, No: int32(i)}, &p); err != nil {
					t.Fatalf("wal@%d=%d: read page %d: %v", n, mode, i, err)
				}
				r, err := p.Record(0)
				switch {
				case err == nil:
					if !content {
						t.Errorf("wal@%d=%d: page %d has content after an empty page", n, mode, i)
					}
					if got, want := string(r), fmt.Sprintf("v%d", i); got != want {
						t.Errorf("wal@%d=%d: page %d = %q, want %q", n, mode, i, got, want)
					}
				case errors.Is(err, ErrNoRecord):
					content = false
				default:
					t.Fatalf("wal@%d=%d: page %d: %v", n, mode, i, err)
				}
			}
		}
	}
}

func TestFileDiskCrashScriptCheckpoint(t *testing.T) {
	// Crash at every data-page write point of an *incremental*
	// checkpoint: first a clean checkpoint puts version-1 pages in the
	// directory, then every page is rewritten to version 2 and the
	// second checkpoint crashes mid-write. A partial write tears a
	// version-1 frame in place; recovery must detect it by checksum and
	// repair it from the version-2 WAL image synced at the start of the
	// crashed checkpoint.
	prep := func(dir string) (*FileDisk, FileID) {
		fd, _, err := Recover(dir)
		if err != nil {
			t.Fatal(err)
		}
		f := fd.CreateFile()
		for i := 0; i < 5; i++ {
			if _, err := fd.AppendPage(f); err != nil {
				t.Fatal(err)
			}
			if err := fd.WritePage(PageID{File: f, No: int32(i)}, pageWithRecord(t, fmt.Sprintf("p%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := fd.Checkpoint(); err != nil { // version 1 durably in the directory
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := fd.WritePage(PageID{File: f, No: int32(i)}, pageWithRecord(t, fmt.Sprintf("q%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return fd, f
	}
	obsDir := t.TempDir()
	fd, _ := prep(obsDir)
	observer := NewCrashScript()
	fd.SetCrashScript(observer)
	if err := fd.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	total := observer.Observed(TargetPage)
	if total != 5 {
		t.Fatalf("checkpoint wrote %d page points, want 5", total)
	}
	for n := int64(1); n <= total; n++ {
		for _, mode := range []CrashMode{CrashOmit, CrashPartial} {
			dir := t.TempDir()
			fd, f := prep(dir)
			fd.SetCrashScript(NewCrashScript(CrashPoint{Target: TargetPage, Nth: n, Mode: mode}))
			if err := fd.Checkpoint(); !errors.Is(err, ErrCrashed) {
				t.Fatalf("page@%d=%d: checkpoint error %v", n, mode, err)
			}
			rec, st, err := Recover(dir)
			if err != nil {
				t.Fatalf("page@%d=%d: recover: %v", n, mode, err)
			}
			if mode == CrashPartial && st.ChecksumFailures == 0 {
				t.Errorf("page@%d=partial: torn page not detected by checksum", n)
			}
			if st.ChecksumFailures > 0 && st.RepairedPages == 0 {
				t.Errorf("page@%d=%d: damaged page not repaired from WAL", n, mode)
			}
			// The version-2 images were durable before any page write, so
			// recovery always lands on version 2.
			for i := 0; i < 5; i++ {
				if got, want := readRecord(t, rec, PageID{File: f, No: int32(i)}), fmt.Sprintf("q%d", i); got != want {
					t.Errorf("page@%d=%d: page %d = %q, want %q", n, mode, i, got, want)
				}
			}
		}
	}
}

func TestFileDiskAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	fd, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	fd.CheckpointBytes = 4 * PageSize
	f := fd.CreateFile()
	for i := 0; i < 8; i++ {
		if _, err := fd.AppendPage(f); err != nil {
			t.Fatal(err)
		}
		if err := fd.WritePage(PageID{File: f, No: int32(i)}, pageWithRecord(t, fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := fd.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	// The threshold must have forced at least one checkpoint: the data
	// file exists, and the current WAL is shorter than the full history.
	if _, err := os.Stat(dataPath(dir, f)); err != nil {
		t.Fatalf("no checkpointed data file: %v", err)
	}
	bytes, _ := fd.WALStats()
	if bytes >= int64(8*PageSize) {
		t.Errorf("WAL never truncated by checkpoint: %d bytes", bytes)
	}
	fd2, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if got, want := readRecord(t, fd2, PageID{File: f, No: int32(i)}), fmt.Sprintf("a%d", i); got != want {
			t.Errorf("page %d = %q, want %q", i, got, want)
		}
	}
}

func TestRecoverRejectsUncoveredCorruption(t *testing.T) {
	dir := t.TempDir()
	fd, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := fd.CreateFile()
	if _, err := fd.AppendPage(f); err != nil {
		t.Fatal(err)
	}
	if err := fd.WritePage(PageID{File: f, No: 0}, pageWithRecord(t, "x")); err != nil {
		t.Fatal(err)
	}
	if err := fd.Close(); err != nil { // checkpoint: WAL now empty
		t.Fatal(err)
	}
	// Flip a byte in the checkpointed page file. With an empty WAL there
	// is no image to repair from: recovery must refuse.
	path := dataPath(dir, f)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, st, err := Recover(dir); err == nil {
		t.Fatalf("recovery accepted uncovered corruption (stats %+v)", st)
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("error does not mention checksum: %v", err)
	}
}

func TestCrashScriptParseTarget(t *testing.T) {
	for _, tgt := range []CrashTarget{TargetWAL, TargetPage} {
		got, err := ParseCrashTarget(tgt.String())
		if err != nil || got != tgt {
			t.Errorf("ParseCrashTarget(%q) = %v, %v", tgt.String(), got, err)
		}
	}
	if _, err := ParseCrashTarget("fetch"); err == nil {
		t.Error("wire op accepted as crash target")
	}
}

// --- BufferPool.FlushAll partial-failure semantics (regression) ---

func TestFlushAllPartialFailureKeepsFramesDirty(t *testing.T) {
	d := NewDisk()
	f := d.CreateFile()
	bp := NewBufferPool(d, 8)
	for i := 0; i < 4; i++ {
		pid, p, err := bp.NewPage(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Insert([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(pid)
	}
	if got := bp.Dirty(); got != 4 {
		t.Fatalf("Dirty = %d, want 4", got)
	}
	// Fail the second write: page 1 must stay dirty while 0, 2, 3 flush.
	d.FailWritesAfter(1)
	err := bp.FlushAll()
	if err == nil {
		t.Fatal("FlushAll swallowed the injected write failure")
	}
	if !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("error lost the cause: %v", err)
	}
	if got := bp.Dirty(); got != 1 {
		t.Fatalf("after partial flush Dirty = %d, want 1 (failed frame stays dirty)", got)
	}
	// A retry with the injection disarmed completes the flush.
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got := bp.Dirty(); got != 0 {
		t.Fatalf("after retry Dirty = %d", got)
	}
	// Every page is durable on the disk.
	for i := int32(0); i < 4; i++ {
		var p Page
		if err := d.ReadPage(PageID{File: f, No: i}, &p); err != nil {
			t.Fatal(err)
		}
		rec, err := p.Record(0)
		if err != nil || rec[0] != byte('a'+i) {
			t.Fatalf("page %d: %q, %v", i, rec, err)
		}
	}
}

func TestDropFileInvalidateInteraction(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 8)
	h := NewHeapFile(bp)
	for i := 0; i < 100; i++ {
		if _, err := h.Insert(tup(i, "v")); err != nil {
			t.Fatal(err)
		}
	}
	if bp.CachedPages(h.File()) == 0 {
		t.Fatal("no pages cached before drop")
	}
	h.Drop()
	if n := bp.CachedPages(h.File()); n != 0 {
		t.Fatalf("%d frames survived Invalidate", n)
	}
	if d.hasFile(h.File()) {
		t.Fatal("file survived DropFile")
	}
	// A new heap file must not see stale frames even if it reuses
	// low page numbers.
	h2 := NewHeapFile(bp)
	if _, err := h2.Insert(tup(1, "fresh")); err != nil {
		t.Fatal(err)
	}
	n := 0
	h2.Scan(func(_ RecordID, tp types.Tuple) bool { n++; return true })
	if n != 1 {
		t.Fatalf("fresh heap scan saw %d tuples", n)
	}
}

// --- heapfile/btree-style iteration over a recovered store ---

func TestHeapFileIterationOverRecoveredStore(t *testing.T) {
	dir := t.TempDir()
	fd, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	bp := NewBufferPool(fd, 16)
	h := NewHeapFile(bp)
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := h.Insert(tup(i, fmt.Sprintf("name-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := fd.Sync(); err != nil {
		t.Fatal(err)
	}
	file := h.File()
	// Abandon without Close (kill -9), recover, reattach.
	fd2, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	bp2 := NewBufferPool(fd2, 16)
	h2 := OpenHeapFile(bp2, file)
	if h2.NumPages() != h.NumPages() {
		t.Fatalf("recovered pages %d, want %d", h2.NumPages(), h.NumPages())
	}
	var sum int64
	count := 0
	if err := h2.Scan(func(_ RecordID, tp types.Tuple) bool {
		count++
		sum += tp[0].AsInt()
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != n || sum != int64(n)*(n-1)/2 {
		t.Fatalf("recovered scan: count %d sum %d", count, sum)
	}
	// Appends continue on the recovered heap without clobbering.
	if _, err := h2.Insert(tup(n, "appended")); err != nil {
		t.Fatal(err)
	}
	count = 0
	h2.Scan(func(RecordID, types.Tuple) bool { count++; return true })
	if count != n+1 {
		t.Fatalf("after append count = %d", count)
	}
}

func TestRecoverStaleTmpFilesIgnored(t *testing.T) {
	// A crash between tmp write and rename leaves *.tmp litter; recovery
	// must ignore and not trip over it.
	dir := t.TempDir()
	fd, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := fd.CreateFile()
	if _, err := fd.AppendPage(f); err != nil {
		t.Fatal(err)
	}
	if err := fd.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, junk := range []string{"meta.tango.tmp", "wal.log.tmp", "f00000042.pg.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fd2, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !fd2.HasFile(f) || fd2.NumPages(f) != 1 {
		t.Fatal("state lost amid tmp litter")
	}
}
