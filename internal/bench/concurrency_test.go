// Multi-session concurrency matrix: the crash and chaos sweeps of
// PR 4/5 re-run with many live sessions sharing one server — and
// therefore one buffer pool, one WAL, and one versioned catalog. The
// contracts are the single-session ones, quantified over sessions:
// every reader observes a full pre-load or post-load state (never a
// torn prefix), failures are typed, and nothing leaks across sessions
// — cursors, temp tables, snapshots, goroutines, or pinned frames.
package bench

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tango/internal/engine"
	"tango/internal/rel"
	"tango/internal/storage"
	"tango/internal/tango"
	"tango/internal/tsql"
	"tango/internal/types"
	"tango/internal/wire"
)

// loadRows builds the payload for the concurrent T^D load target.
func loadRows(n int) []types.Tuple {
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i)), types.Str(fmt.Sprintf("pad-%04d", i))}
	}
	return rows
}

// crashedErr reports whether err stems from the scripted store death
// (any operation on a dead store, possibly wrapped by the wire or
// retry layers).
func crashedErr(err error) bool {
	return errors.Is(err, storage.ErrCrashed) || typedFailure(err)
}

// TestCrashConcurrentLoad kills the durable store mid-T^D-load while
// 16 live reader sessions stream the evaluation workload. While the
// load runs, no reader may observe a torn prefix of the load target —
// its count is exactly pre-load (0) or post-load (all rows) — and
// after recovery the reopened store holds a full pre- or post-load
// state with zero cursors, temp tables, snapshots, pinned frames, or
// goroutines leaked.
func TestCrashConcurrentLoad(t *testing.T) {
	defer chaosLeakCheck(t)()
	const (
		readerSessions = 16
		loadN          = 3000
	)
	dir := t.TempDir()
	sys, err := NewSystem(crashConfig(dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.MW.Conn.Exec("CREATE TABLE LOADT (ID INTEGER, PAD VARCHAR(40))"); err != nil {
		t.Fatal(err)
	}

	// Fault-free reference for the readers' workload.
	refs := make([]*rel.Relation, len(SeedQueries))
	for i, q := range SeedQueries {
		plan, err := tsql.Parse(q, sys.MW.Cat)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := sys.MW.Run(plan)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = out
	}

	// The crash script is armed only when the load starts (below), so
	// reader WAL traffic before that cannot trip it.
	script := storage.NewCrashScript(storage.CrashPoint{
		Target: storage.TargetWAL, Nth: 10, Mode: storage.CrashTorn,
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, readerSessions)
	for r := 0; r < readerSessions; r++ {
		mw := sys.NewSessionMW()
		wg.Add(1)
		go func(r int, mw *tango.Middleware) {
			defer wg.Done()
			defer func() { _ = mw.Conn.Close() }()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Stream one seed query through this session's own
				// middleware: full plan/transfer pipeline.
				q := SeedQueries[(r+i)%len(SeedQueries)]
				plan, err := tsql.Parse(q, mw.Cat)
				if err != nil {
					if !crashedErr(err) {
						errCh <- fmt.Errorf("reader %d: parse: %w", r, err)
					}
					continue
				}
				out, _, err := mw.Run(plan)
				switch {
				case err != nil:
					if !crashedErr(err) {
						errCh <- fmt.Errorf("reader %d: untyped failure: %w", r, err)
						return
					}
				case !rel.EqualAsLists(out, refs[(r+i)%len(SeedQueries)]) &&
					!rel.EqualAsMultisets(out, refs[(r+i)%len(SeedQueries)]):
					errCh <- fmt.Errorf("reader %d: result diverged from fault-free reference", r)
					return
				}
				// Probe the load target: its visible count must be
				// exactly pre-load or post-load, never a torn prefix.
				cnt, _, err := mw.Conn.QueryAll("SELECT COUNT(ID) FROM LOADT")
				if err != nil {
					if !crashedErr(err) {
						errCh <- fmt.Errorf("reader %d: probe: %w", r, err)
						return
					}
					continue
				}
				if got := cnt.Tuples[0][0].AsInt(); got != 0 && got != loadN {
					errCh <- fmt.Errorf("reader %d: torn read of LOADT: count=%d (want 0 or %d)", r, got, loadN)
					return
				}
			}
		}(r, mw)
	}

	// Let the readers get into a steady stream, then arm the crash and
	// fire the load: the Nth WAL write — deep inside the bulk load's
	// page stream — kills the store under all 17 sessions.
	time.Sleep(50 * time.Millisecond)
	sys.DB.FileDisk().SetCrashScript(script)
	_, loadErr := sys.MW.Conn.Load("LOADT", loadRows(loadN))
	if !script.Tripped() {
		t.Fatalf("crash point never tripped (load err: %v)", loadErr)
	}
	if loadErr == nil && !sys.DB.FileDisk().Crashed() {
		t.Fatal("script tripped but store still alive")
	}
	// Give readers a window to observe the dead store, then stop them.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	// The dying system must not hold MVCC pins once every session quit.
	if n := sys.DB.SnapshotsOpen(); n != 0 {
		t.Fatalf("%d snapshot(s) leaked on the crashed system", n)
	}
	if n := sys.Srv.OpenCursors(); n != 0 {
		t.Fatalf("%d cursor(s) leaked on the crashed system", n)
	}

	// Recover through the full stack and check the committed state.
	rec, err := NewSystem(crashConfig(dir, nil))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		if err := rec.Close(); err != nil {
			t.Errorf("close recovered system: %v", err)
		}
	}()
	if rec.Recovery == nil {
		t.Fatal("recovered system has no recovery stats")
	}
	if _, err := rec.DB.Table("LOADT"); err == nil {
		got := int64(len(tableRows(t, rec, "LOADT")))
		if got != 0 && got != loadN {
			t.Fatalf("recovered LOADT torn: %d rows (want 0 or %d)", got, loadN)
		}
	}
	// Recovered queries reproduce the fault-free reference.
	plan, err := tsql.Parse(SeedQueries[0], rec.MW.Cat)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := rec.MW.Run(plan)
	if err != nil {
		t.Fatalf("query over recovered store: %v", err)
	}
	if !rel.EqualAsLists(out, refs[0]) {
		t.Fatalf("recovered store answers differently: %d vs %d rows",
			out.Cardinality(), refs[0].Cardinality())
	}
	if temps := rec.Srv.TempTables(); len(temps) != 0 {
		t.Fatalf("temp tables survived startup GC: %v", temps)
	}
	if pinned := rec.DB.Pool().Pinned(); pinned != 0 {
		t.Fatalf("%d buffer-pool frame(s) still pinned", pinned)
	}
	if n := rec.Srv.OpenCursors(); n != 0 {
		t.Fatalf("%d cursor(s) leaked", n)
	}
	if n := rec.DB.SnapshotsOpen(); n != 0 {
		t.Fatalf("%d snapshot(s) leaked", n)
	}
}

// TestChaosConcurrentSessions runs the wire-fault sweep with 8
// concurrent sessions sharing one server. Per session the
// single-session contract holds — fault-free-equal results or typed
// clean errors — and no session's failure may leak cursors or temp
// tables into another's view of the server.
func TestChaosConcurrentSessions(t *testing.T) {
	const sessions = 8
	sys, err := NewSystem(Config{
		PositionRows: 300, EmployeeRows: 120, Histograms: 10,
		Parallelism: 1, Retry: chaosPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fault-free references from the primary session.
	refs := make([]*rel.Relation, len(SeedQueries))
	for i, q := range SeedQueries {
		plan, err := tsql.Parse(q, sys.MW.Cat)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := sys.MW.Run(plan)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = out
	}

	schedules := []string{
		"seed=31;stall=1ms;fetch@2=drop",
		"seed=32;stall=1ms;query@1=partial",
		"seed=33;stall=1ms;load@1=drop",
		"seed=34;stall=1ms;fetch~partial=0.05",
	}
	if testing.Short() {
		schedules = schedules[:2]
	}
	for _, src := range schedules {
		src := src
		t.Run(src, func(t *testing.T) {
			defer chaosLeakCheck(t)()
			sched, err := wire.ParseSchedule(src)
			if err != nil {
				t.Fatal(err)
			}
			sys.Srv.SetFaults(sched.Injector())
			defer sys.Srv.SetFaults(nil)

			var wg sync.WaitGroup
			errCh := make(chan error, sessions*len(SeedQueries))
			for sess := 0; sess < sessions; sess++ {
				wg.Add(1)
				go func(sess int) {
					defer wg.Done()
					mw := sys.NewSessionMW()
					defer func() { _ = mw.Conn.Close() }()
					for i, q := range SeedQueries {
						plan, err := tsql.Parse(q, mw.Cat)
						if err != nil {
							errCh <- fmt.Errorf("session %d q%d: parse: %w", sess, i, err)
							return
						}
						out, _, err := mw.Run(plan)
						switch {
						case err != nil:
							if !typedFailure(err) {
								errCh <- fmt.Errorf("session %d q%d: untyped failure under %q: %w", sess, i, src, err)
								return
							}
						case rel.EqualAsLists(out, refs[i]):
							// Retries absorbed the faults.
						case rel.EqualAsMultisets(out, refs[i]):
							// A deterministic plan fallback re-sited the
							// query; ordering may differ for statements
							// without a total order.
						default:
							errCh <- fmt.Errorf("session %d q%d: wrong result under %q (%d vs %d rows)",
								sess, i, src, out.Cardinality(), refs[i].Cardinality())
							return
						}
					}
				}(sess)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Error(err)
			}
			// Cross-session leak checks: with every extra session closed,
			// the server is back to the primary session's baseline.
			if n := sys.Srv.OpenCursors(); n != 0 {
				t.Fatalf("%d cursor(s) leaked across sessions under %q", n, src)
			}
			if temps := sys.Srv.TempTables(); len(temps) != 0 {
				t.Fatalf("temp tables leaked across sessions under %q: %v", src, temps)
			}
			if n := sys.DB.SnapshotsOpen(); n != 0 {
				t.Fatalf("%d snapshot(s) leaked under %q", n, src)
			}
			if n := sys.Srv.LiveSessions(); n != 1 {
				t.Fatalf("%d session(s) live after sweep (want 1: the primary)", n)
			}
		})
	}
	if err := sys.MW.Conn.Close(); err != nil {
		t.Fatal(err)
	}
	if n := sys.Srv.LiveSessions(); n != 0 {
		t.Fatalf("%d session(s) still live", n)
	}
}

// groupCommitDB opens a bare durable engine for the group-commit
// measurements.
func groupCommitDB(tb testing.TB) *engine.DB {
	tb.Helper()
	db, _, err := engine.OpenAt(tb.TempDir(), engine.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE GCT (K INTEGER, PAD VARCHAR(40))"); err != nil {
		tb.Fatal(err)
	}
	return db
}

// gcInsert writes one row through the full commit path (WAL stage,
// publish, group-commit barrier).
func gcInsert(db *engine.DB, k int64) error {
	return db.Insert("GCT", types.Tuple{types.Int(k), types.Str("pad-payload-for-wal")})
}

// TestGroupCommitAmortizes checks the group-commit invariant directly:
// N sessions committing concurrently fsync strictly fewer than N
// times per N commits — followers ride the leader's barrier — while a
// lone committer still gets exactly one durability point per commit.
func TestGroupCommitAmortizes(t *testing.T) {
	db := groupCommitDB(t)
	defer db.Close()

	// Solo baseline: every commit awaits its own barrier.
	commits0, _ := db.CommitStats()
	for i := 0; i < 10; i++ {
		if err := gcInsert(db, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	commits1, _ := db.CommitStats()
	if got := commits1 - commits0; got != 10 {
		t.Fatalf("solo commits = %d, want 10", got)
	}

	// Contended phase: 16 writers, 40 commits each.
	const (
		writers = 16
		perW    = 40
	)
	_, _, fsyncs0 := db.FileDisk().GroupCommitStats()
	commits0, _ = db.CommitStats()
	var (
		wg  sync.WaitGroup
		key atomic.Int64
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if err := gcInsert(db, 1000+key.Add(1)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	commits1, wait := db.CommitStats()
	gcCommits, batches, fsyncs1 := db.FileDisk().GroupCommitStats()
	commits := commits1 - commits0
	fsyncs := fsyncs1 - fsyncs0
	if commits != writers*perW {
		t.Fatalf("contended commits = %d, want %d", commits, writers*perW)
	}
	if fsyncs >= commits {
		t.Fatalf("group commit did not amortize: %d fsyncs for %d commits (want < 1 fsync/commit)", fsyncs, commits)
	}
	t.Logf("contended: %d commits, %d fsyncs (%.3f fsyncs/commit), %d barrier entries in %d batches, total wait %v",
		commits, fsyncs, float64(fsyncs)/float64(commits), gcCommits, batches, wait)
	// Everything is durable: reopen and count.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkGroupCommit measures commit latency and fsyncs/commit at
// 1, 8, and 64 concurrent sessions hammering one durable store. The
// archived metric of record is fsyncs/commit: it must fall below 1
// under contention (bench-json archives it into BENCH_9.json).
func BenchmarkGroupCommit(b *testing.B) {
	for _, sessions := range []int{1, 8, 64} {
		sessions := sessions
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			db := groupCommitDB(b)
			defer db.Close()
			commits0, wait0 := db.CommitStats()
			_, _, fsyncs0 := db.FileDisk().GroupCommitStats()
			var (
				wg  sync.WaitGroup
				ctr atomic.Int64
			)
			b.ResetTimer()
			for s := 0; s < sessions; s++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := ctr.Add(1)
						if i > int64(b.N) {
							return
						}
						if err := gcInsert(db, i); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			commits1, wait1 := db.CommitStats()
			_, _, fsyncs1 := db.FileDisk().GroupCommitStats()
			commits := commits1 - commits0
			if commits > 0 {
				b.ReportMetric(float64(fsyncs1-fsyncs0)/float64(commits), "fsyncs/commit")
				b.ReportMetric(float64((wait1-wait0).Nanoseconds())/float64(commits), "commit-wait-ns")
			}
		})
	}
}
