package wire

import (
	"errors"
	"testing"
	"time"
)

// TestTrapDeterminism: a scripted trap fires on exactly the scheduled
// per-op call index, independent of other ops interleaved.
func TestTrapDeterminism(t *testing.T) {
	f := NewFaultInjector(1).AddTrap(OpFetch, 3, KindDrop)
	for i := 1; i <= 5; i++ {
		f.Decide(OpExec) // unrelated traffic must not consume fetch indexes
		d := f.Decide(OpFetch)
		if want := i == 3; (d.Kind == KindDrop) != want {
			t.Fatalf("fetch #%d: kind %v", i, d.Kind)
		}
		if d.Index != int64(i) {
			t.Fatalf("fetch #%d: index %d", i, d.Index)
		}
	}
	if got := f.Injected(); got != 1 {
		t.Fatalf("injected %d, want 1", got)
	}
	if c := f.Counts(); c["fetch/drop"] != 1 {
		t.Fatalf("counts %v", c)
	}
}

// TestProbSeedReplay: the same seed yields the same probabilistic
// fault sequence on a serial call schedule.
func TestProbSeedReplay(t *testing.T) {
	run := func() []FaultKind {
		f := NewFaultInjector(42).AddProb(OpFetch, KindPartial, 0.3)
		var out []FaultKind
		for i := 0; i < 64; i++ {
			out = append(out, f.Decide(OpFetch).Kind)
		}
		return out
	}
	a, b := run(), run()
	var faults int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] != KindNone {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("p=0.3 over 64 calls injected nothing")
	}
}

// TestMaxFaultsQuiesces: the cap guarantees eventual progress.
func TestMaxFaultsQuiesces(t *testing.T) {
	f := NewFaultInjector(7).AddProb(OpLoad, KindDrop, 1.0)
	f.MaxFaults = 2
	var injected int
	for i := 0; i < 10; i++ {
		if f.Decide(OpLoad).Kind != KindNone {
			injected++
		}
	}
	if injected != 2 {
		t.Fatalf("injected %d, want 2", injected)
	}
}

// TestFaultErrorRetryable: the typed error classifies as retryable,
// wrapped or not; ordinary errors do not.
func TestFaultErrorRetryable(t *testing.T) {
	err := (&FaultInjector{}).Decide(OpExec) // nil-safe zero value path
	_ = err
	fe := Fault{Kind: KindDrop, Index: 4}.Error(OpFetch)
	if !Retryable(fe) {
		t.Fatal("FaultError not retryable")
	}
	if !Retryable(errWrap{fe}) {
		t.Fatal("wrapped FaultError not retryable")
	}
	if Retryable(errors.New("schema mismatch")) {
		t.Fatal("plain error classified retryable")
	}
	if got := fe.Error(); got != "wire: injected drop fault on fetch #4" {
		t.Fatalf("render: %q", got)
	}
}

type errWrap struct{ e error }

func (w errWrap) Error() string { return "wrap: " + w.e.Error() }
func (w errWrap) Unwrap() error { return w.e }

// TestCorrupt: partial payloads never decode cleanly.
func TestCorrupt(t *testing.T) {
	payload := EncodeBatch(nil, nil)
	if len(Corrupt(nil)) != 0 {
		t.Fatal("corrupting empty grew it")
	}
	long := append(payload, make([]byte, 64)...)
	c := Corrupt(long)
	if len(c) >= len(long) {
		t.Fatal("corrupt did not truncate")
	}
}

// TestScheduleRoundTrip: Parse→String→Parse is a fixed point and the
// injector honors every entry.
func TestScheduleRoundTrip(t *testing.T) {
	src := "seed=7;stall=5ms;max=3;fetch@2=drop;load@1=partial;exec~stall=0.25"
	s, err := ParseSchedule(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || s.Stall != 5*time.Millisecond || s.MaxFaults != 3 ||
		len(s.Traps) != 2 || len(s.Probs) != 1 {
		t.Fatalf("parsed %+v", s)
	}
	canon := s.String()
	s2, err := ParseSchedule(canon)
	if err != nil {
		t.Fatalf("reparse %q: %v", canon, err)
	}
	if s2.String() != canon {
		t.Fatalf("not canonical: %q vs %q", s2.String(), canon)
	}
	f := s.Injector()
	if d := f.Decide(OpFetch); d.Kind != KindNone {
		t.Fatalf("fetch #1: %v", d.Kind)
	}
	if d := f.Decide(OpFetch); d.Kind != KindDrop || d.Stall != 5*time.Millisecond {
		t.Fatalf("fetch #2: %+v", d)
	}
	if d := f.Decide(OpLoad); d.Kind != KindPartial {
		t.Fatalf("load #1: %v", d.Kind)
	}
}

// TestScheduleRejects: malformed schedules fail with errors, never
// panic, and reject out-of-range values.
func TestScheduleRejects(t *testing.T) {
	for _, src := range []string{
		"fetch@0=drop",     // 1-based indexes
		"fetch@x=drop",     // bad index
		"nosuch@1=drop",    // unknown op
		"fetch@1=explode",  // unknown kind
		"fetch~drop=1.5",   // p out of range
		"fetch~drop=-0.1",  // p out of range
		"stall=-5ms",       // negative stall
		"max=-1",           // negative cap
		"seed=abc",         // bad seed
		"bogus",            // missing '='
		"wat=1",            // unknown key
		"fetch~nosuch=0.1", // unknown kind in prob
		"nosuch~drop=0.1",  // unknown op in prob
	} {
		if _, err := ParseSchedule(src); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", src)
		}
	}
	if s, err := ParseSchedule("  ;  , "); err != nil || s.String() != "" {
		t.Errorf("empty schedule: %+v, %v", s, err)
	}
}
