// Package wire implements the client/server boundary between the
// middleware and the DBMS: batched binary row serialization (every row
// crossing the boundary is really encoded and decoded, as over JDBC)
// and an optional latency model for round trips and bandwidth. The
// batch size is the paper's Oracle "row prefetch" setting.
package wire

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"tango/internal/types"
)

// DefaultPrefetch is the default number of rows per fetch batch.
const DefaultPrefetch = 256

// bufPool recycles encode scratch buffers across batches. Steady-state
// fetch and load traffic encodes one batch at a time; without the pool
// every batch allocates (and grows) a fresh byte slice.
var bufPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 1<<14)
		return &b
	},
}

// maxPooledBuf caps the buffers the pool retains; one-off giant batches
// (bulk loads of whole relations) should not pin megabytes forever.
const maxPooledBuf = 1 << 22

// GetBuf borrows an empty scratch buffer from the encode pool.
func GetBuf() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuf returns a scratch buffer to the encode pool. The caller must
// not touch the slice afterwards.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// EncodeBatch appends the encoding of rows to dst: a row count
// followed by each tuple.
func EncodeBatch(dst []byte, rows []types.Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	for _, r := range rows {
		dst = types.EncodeTuple(dst, r)
	}
	return dst
}

// DecodeBatch decodes a batch produced by EncodeBatch.
func DecodeBatch(data []byte) ([]types.Tuple, error) {
	return DecodeBatchInto(nil, data)
}

// DecodeBatchInto decodes a batch appending to dst, so a steady-state
// consumer can recycle one row-header slice across fetches (the decoded
// tuples themselves are fresh allocations — consumers may retain them).
func DecodeBatchInto(dst []types.Tuple, data []byte) ([]types.Tuple, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("wire: bad batch header")
	}
	pos := k
	if dst == nil {
		dst = make([]types.Tuple, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		t, used, err := types.DecodeTuple(data[pos:])
		if err != nil {
			return nil, fmt.Errorf("wire: row %d: %w", i, err)
		}
		pos += used
		dst = append(dst, t)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(data)-pos)
	}
	return dst, nil
}

// EncodeSchema serializes a schema (names and kinds).
func EncodeSchema(dst []byte, s types.Schema) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.Len()))
	for _, c := range s.Cols {
		dst = binary.AppendUvarint(dst, uint64(len(c.Name)))
		dst = append(dst, c.Name...)
		dst = append(dst, byte(c.Kind))
	}
	return dst
}

// DecodeSchema deserializes a schema and returns the bytes consumed.
func DecodeSchema(data []byte) (types.Schema, int, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return types.Schema{}, 0, fmt.Errorf("wire: bad schema header")
	}
	pos := k
	cols := make([]types.Column, n)
	for i := range cols {
		l, k2 := binary.Uvarint(data[pos:])
		if k2 <= 0 || pos+k2+int(l)+1 > len(data) {
			return types.Schema{}, 0, fmt.Errorf("wire: truncated schema")
		}
		pos += k2
		cols[i].Name = string(data[pos : pos+int(l)])
		pos += int(l)
		cols[i].Kind = types.Kind(data[pos])
		pos++
	}
	return types.Schema{Cols: cols}, pos, nil
}

// Latency models the network between middleware and DBMS. The zero
// value is a free network (no sleeping), appropriate for unit tests;
// experiments configure realistic values to make transfer costs
// visible, as they are over a real JDBC connection.
type Latency struct {
	// RoundTrip is charged once per request (query, fetch, exec).
	RoundTrip time.Duration
	// BytesPerSecond throttles payload transfer; 0 means unlimited.
	BytesPerSecond float64
}

// Transmit returns the time to ship n payload bytes one way.
func (l Latency) Transmit(n int) time.Duration {
	if l.BytesPerSecond <= 0 {
		return 0
	}
	return time.Duration(float64(n) / l.BytesPerSecond * float64(time.Second))
}

// Wire returns the delay of one request/response exchange carrying n
// payload bytes: one round trip plus the transmit time.
func (l Latency) Wire(n int) time.Duration {
	return l.RoundTrip + l.Transmit(n)
}

// Charge sleeps for one round trip plus the transmit time of n bytes.
// It is a no-op for the zero Latency. Callers that hold a cancelable
// context should use ChargeCtx so a dead session does not sleep out a
// simulated stall.
func (l Latency) Charge(n int) {
	l.ChargeCtx(context.Background(), n)
}

// ChargeCtx is Charge bounded by ctx: the sleep is cut short when the
// context is canceled (the session died, the server is draining), so
// simulated latency can never pin a connection past its lifetime. The
// remaining delay is simply not slept — the caller's next step will
// observe ctx.Err() through its own paths.
func (l Latency) ChargeCtx(ctx context.Context, n int) {
	d := l.Wire(n)
	if d <= 0 {
		return
	}
	SleepCtx(ctx, d)
}

// SleepCtx sleeps for d or until ctx is canceled, whichever comes
// first. It is the context-aware form every simulated delay in the
// wire layer (latency charges, injected stalls) goes through.
func SleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
