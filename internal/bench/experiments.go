package bench

import (
	"fmt"
	"math/rand"
	"time"

	"tango/internal/algebra"
	"tango/internal/meta"
	"tango/internal/stats"
	"tango/internal/types"
	"tango/internal/uis"
	"tango/internal/wire"
)

// Scale configures how large the sweeps run. Scale 1.0 reproduces the
// paper's full sizes (slow: the DBMS temporal aggregation is
// intentionally superlinear); the default experiments run at a reduced
// scale that preserves every shape.
type Scale struct {
	// PositionSizes are the POSITION cardinalities swept in Q1/Q4.
	PositionSizes []int
	// Q2MaxPosition / Q3Position / Q4Employee size the fixed relations.
	Q2Position int
	Q3Position int
	Q4Employee int
	// Latency models the middleware–DBMS link.
	Latency wire.Latency
	// Calibrate is the calibration sample size (0 = defaults factors).
	Calibrate int
	// Histograms is the ANALYZE bucket count.
	Histograms int
}

// PaperScale is the full published experiment (sizes from §5.1).
func PaperScale() Scale {
	sizes := append(append([]int{}, uis.SubsetSizes...), uis.PositionRows)
	return Scale{
		PositionSizes: sizes,
		Q2Position:    uis.PositionRows,
		Q3Position:    uis.PositionRows,
		Q4Employee:    uis.EmployeeRows,
		Latency:       wire.Latency{RoundTrip: 500 * time.Microsecond, BytesPerSecond: 40e6},
		Calibrate:     20000,
		Histograms:    20,
	}
}

// QuickScale is a ~10x reduced sweep for CI and benchmarks. The
// latency model approximates a fast LAN so that transfer costs remain
// visible (plans 4/5 of Query 2 are only distinguishable when moving a
// relation across the boundary is not free).
func QuickScale() Scale {
	return Scale{
		PositionSizes: []int{800, 1700, 2700, 3600, 4600, 5500, 6400, 7400, 8400},
		Q2Position:    8400,
		Q3Position:    8400,
		Q4Employee:    5000,
		Latency:       wire.Latency{RoundTrip: 200 * time.Microsecond, BytesPerSecond: 20e6},
		Calibrate:     0,
		Histograms:    20,
	}
}

// Series is one experiment's output: rows of (x, plan, seconds).
type Series struct {
	Name    string
	XLabel  string
	Results []Measurement
}

// Print renders the series as the paper-style table.
func (s *Series) Print() {
	fmt.Printf("## %s\n", s.Name)
	// Collect plans and xs preserving order.
	var plans, xs []string
	seenP, seenX := map[string]bool{}, map[string]bool{}
	cell := map[string]Measurement{}
	for _, m := range s.Results {
		if !seenP[m.Plan] {
			seenP[m.Plan] = true
			plans = append(plans, m.Plan)
		}
		if !seenX[m.Param] {
			seenX[m.Param] = true
			xs = append(xs, m.Param)
		}
		cell[m.Param+"\x00"+m.Plan] = m
	}
	fmt.Printf("%-14s", s.XLabel)
	for _, p := range plans {
		fmt.Printf(" %20s", p)
	}
	fmt.Println()
	for _, x := range xs {
		fmt.Printf("%-14s", x)
		for _, p := range plans {
			m, ok := cell[x+"\x00"+p]
			switch {
			case !ok:
				fmt.Printf(" %20s", "-")
			case m.Err != nil:
				fmt.Printf(" %20s", "ERR")
			default:
				fmt.Printf(" %19.3fs", m.Seconds())
			}
		}
		fmt.Println()
	}
	fmt.Println()
}

// RunQ1 regenerates Figure 8: the three Query 1 plans over the
// POSITION size sweep.
func RunQ1(sc Scale) (*Series, error) {
	s := &Series{Name: "Query 1 (Figure 8): temporal aggregation", XLabel: "|POSITION|"}
	for _, size := range sc.PositionSizes {
		sys, err := NewSystem(Config{
			PositionRows: size, EmployeeRows: 100,
			Latency: sc.Latency, Histograms: sc.Histograms, Calibrate: sc.Calibrate,
		})
		if err != nil {
			return nil, err
		}
		for _, np := range Q1Plans() {
			s.Results = append(s.Results, sys.Measure("Q1", fmt.Sprint(size), np))
		}
	}
	return s, nil
}

// RunQ2 regenerates Figure 10: the six Query 2 plans while the
// selection period end sweeps 1984..1998.
func RunQ2(sc Scale, years []int) (*Series, error) {
	if len(years) == 0 {
		for y := 1984; y <= 1998; y += 2 {
			years = append(years, y)
		}
	}
	s := &Series{Name: "Query 2 (Figure 10): selection + TAggr + TJoin", XLabel: "period end"}
	sys, err := NewSystem(Config{
		PositionRows: sc.Q2Position, EmployeeRows: 100,
		Latency: sc.Latency, Histograms: sc.Histograms, Calibrate: sc.Calibrate,
	})
	if err != nil {
		return nil, err
	}
	for _, y := range years {
		end := Day(y, time.January, 1)
		for _, np := range Q2Plans(end) {
			s.Results = append(s.Results, sys.Measure("Q2", fmt.Sprint(y), np))
		}
	}
	return s, nil
}

// RunQ3 regenerates Figure 11(a): the two Query 3 plans while the
// time-period start cutoff sweeps.
func RunQ3(sc Scale, years []int) (*Series, error) {
	if len(years) == 0 {
		for y := 1988; y <= 1998; y++ {
			years = append(years, y)
		}
	}
	s := &Series{Name: "Query 3 (Figure 11a): temporal self-join", XLabel: "start cutoff"}
	sys, err := NewSystem(Config{
		PositionRows: sc.Q3Position, EmployeeRows: 100,
		Latency: sc.Latency, Histograms: sc.Histograms, Calibrate: sc.Calibrate,
	})
	if err != nil {
		return nil, err
	}
	for _, y := range years {
		cutoff := Day(y, time.January, 1)
		for _, np := range Q3Plans(cutoff) {
			s.Results = append(s.Results, sys.Measure("Q3", fmt.Sprint(y), np))
		}
	}
	return s, nil
}

// RunQ4 regenerates Figure 11(b): the three Query 4 plans over the
// POSITION size sweep.
func RunQ4(sc Scale) (*Series, error) {
	s := &Series{Name: "Query 4 (Figure 11b): regular join", XLabel: "|POSITION|"}
	for _, size := range sc.PositionSizes {
		sys, err := NewSystem(Config{
			PositionRows: size, EmployeeRows: sc.Q4Employee,
			Latency: sc.Latency, Histograms: sc.Histograms, Calibrate: sc.Calibrate,
		})
		if err != nil {
			return nil, err
		}
		for _, np := range Q4Plans() {
			s.Results = append(s.Results, sys.Measure("Q4", fmt.Sprint(size), np))
		}
	}
	return s, nil
}

// MemoCount is the optimizer accounting for one query (the paper
// reports 12/29, 142/452, 104/301, 13/30 for its Volcano memo).
type MemoCount struct {
	Query    string
	Classes  int
	Elements int
	Chosen   string // signature of the chosen plan
	Cost     float64
}

// RunMemo reports the per-query optimizer accounting.
func RunMemo(sc Scale) ([]MemoCount, error) {
	sys, err := NewSystem(Config{
		PositionRows: sc.Q2Position, EmployeeRows: sc.Q4Employee,
		Histograms: sc.Histograms, Calibrate: sc.Calibrate,
	})
	if err != nil {
		return nil, err
	}
	var out []MemoCount
	cases := []struct {
		name    string
		initial *algebra.Node
	}{
		{"Q1", Q1Initial()},
		{"Q2", Q2Initial(Day(1990, time.January, 1))},
		{"Q3", Q3Initial(Day(1990, time.January, 1))},
		{"Q4", Q4Initial()},
	}
	for _, c := range cases {
		res, err := sys.MW.Optimize(c.initial)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		out = append(out, MemoCount{
			Query:    c.name,
			Classes:  res.Classes,
			Elements: res.Elements,
			Chosen:   PlanSignature(res.Best),
			Cost:     res.BestCost,
		})
	}
	return out, nil
}

// SelectivityRow is one line of the §3.3 worked-example table.
type SelectivityRow struct {
	Method    string
	Predicted float64 // predicted result fraction
	Actual    float64
}

// RunSelectivity reproduces the §3.3 worked example on live synthetic
// data: 100k uniform 7-day periods over 1995–2000, Overlaps(Feb 1
// 1997, Feb 8 1997).
func RunSelectivity() ([]SelectivityRow, error) {
	const n = 100000
	rng := rand.New(rand.NewSource(5))
	lo := Day(1995, time.January, 1)
	hi := Day(1999, time.December, 25)
	a := Day(1997, time.February, 1)
	b := Day(1997, time.February, 8)
	actual := 0
	var t1s, t2s []types.Value
	for i := 0; i < n; i++ {
		s := lo + rng.Int63n(hi-lo+1)
		e := s + 7
		if s < b && e > a {
			actual++
		}
		t1s = append(t1s, types.Date(s))
		t2s = append(t2s, types.Date(e))
	}
	actualFrac := float64(actual) / n

	in := statsRel(t1s, t2s, n)
	predSrc := fmt.Sprintf("T1 < %s AND T2 > %s", dateLit(b), dateLit(a))
	p := pred(predSrc)

	naive := (&stats.Estimator{Mode: stats.ModeNaive}).Selectivity(p, in)
	semantic := (&stats.Estimator{Mode: stats.ModeSemantic}).Selectivity(p, in)

	// With histograms.
	inH := statsRelWithHistograms(t1s, t2s, n, 20)
	semanticH := (&stats.Estimator{Mode: stats.ModeSemantic}).Selectivity(p, inH)

	return []SelectivityRow{
		{Method: "naive (independent predicates)", Predicted: naive, Actual: actualFrac},
		{Method: "StartBefore/EndBefore", Predicted: semantic, Actual: actualFrac},
		{Method: "StartBefore/EndBefore + histograms", Predicted: semanticH, Actual: actualFrac},
	}, nil
}

// statsRel builds RelStats from generated T1/T2 values (min/max and
// distinct counts only — the "standard statistics").
func statsRel(t1s, t2s []types.Value, card int) *stats.RelStats {
	return &stats.RelStats{
		Card:         float64(card),
		AvgTupleSize: 24,
		Cols: map[string]*meta.ColumnStats{
			"T1": colStats("T1", t1s, nil),
			"T2": colStats("T2", t2s, nil),
		},
	}
}

// statsRelWithHistograms additionally attaches height-balanced
// histograms.
func statsRelWithHistograms(t1s, t2s []types.Value, card, buckets int) *stats.RelStats {
	return &stats.RelStats{
		Card:         float64(card),
		AvgTupleSize: 24,
		Cols: map[string]*meta.ColumnStats{
			"T1": colStats("T1", t1s, meta.BuildHistogram(t1s, buckets)),
			"T2": colStats("T2", t2s, meta.BuildHistogram(t2s, buckets)),
		},
	}
}

func colStats(name string, vals []types.Value, h *meta.Histogram) *meta.ColumnStats {
	cs := &meta.ColumnStats{Name: name, Histogram: h}
	distinct := map[int64]bool{}
	for _, v := range vals {
		if cs.Min.IsNull() || types.Less(v, cs.Min) {
			cs.Min = v
		}
		if cs.Max.IsNull() || types.Less(cs.Max, v) {
			cs.Max = v
		}
		distinct[v.AsInt()] = true
	}
	cs.Distinct = int64(len(distinct))
	return cs
}

// ChoiceRow reports, for one sweep point, what the optimizer chose and
// how it compares to the measured-best named plan (the robustness
// question of §5.1: is the chosen plan within ~20% of the best?).
type ChoiceRow struct {
	Param        string
	Chosen       string        // signature of the optimizer's plan
	ChosenTime   time.Duration // measured time of the optimizer's plan
	BestPlan     string        // name of the fastest named plan
	BestTime     time.Duration
	WithinFactor float64 // ChosenTime / BestTime
}

// RunChoice evaluates the optimizer's plan choice on Query 3 (where
// the paper reports the crossover and the misprediction band) across
// the cutoff sweep.
func RunChoice(sc Scale, years []int) ([]ChoiceRow, error) {
	if len(years) == 0 {
		years = []int{1990, 1993, 1995, 1996, 1997, 1998}
	}
	sys, err := NewSystem(Config{
		PositionRows: sc.Q3Position, EmployeeRows: 100,
		Latency: sc.Latency, Histograms: sc.Histograms, Calibrate: sc.Calibrate,
	})
	if err != nil {
		return nil, err
	}
	var out []ChoiceRow
	for _, y := range years {
		cutoff := Day(y, time.January, 1)
		res, err := sys.MW.Optimize(Q3Initial(cutoff))
		if err != nil {
			return nil, err
		}
		_, chosenTime, err := sys.RunPlan(NamedPlan{Name: "chosen", Plan: res.Best})
		if err != nil {
			return nil, err
		}
		best := Measurement{Elapsed: 1<<62 - 1}
		for _, np := range Q3Plans(cutoff) {
			m := sys.Measure("Q3", fmt.Sprint(y), np)
			if m.Err == nil && m.Elapsed < best.Elapsed {
				best = m
			}
		}
		row := ChoiceRow{
			Param:      fmt.Sprint(y),
			Chosen:     PlanSignature(res.Best),
			ChosenTime: chosenTime,
			BestPlan:   best.Plan,
			BestTime:   best.Elapsed,
		}
		if best.Elapsed > 0 {
			row.WithinFactor = float64(chosenTime) / float64(best.Elapsed)
		}
		out = append(out, row)
	}
	return out, nil
}

// Q2ChoiceRow reports the optimizer's Query 2 plan choice under three
// estimator configurations — the §5.2 comparison: "When used without
// histograms, the optimizer returned the second plan for [early ends]
// and the first plan for all other queries. When used with histograms,
// the optimizer always returned the second plan."
type Q2ChoiceRow struct {
	Param         string
	WithHist      string // chosen signature, semantic + histograms
	WithoutHist   string // semantic, no histograms
	NaiveEstimate string // naive independent-predicate estimation
}

// RunQ2Choice optimizes Query 2 across the period-end sweep under each
// estimator configuration.
func RunQ2Choice(sc Scale, years []int) ([]Q2ChoiceRow, error) {
	if len(years) == 0 {
		for y := 1984; y <= 1998; y += 2 {
			years = append(years, y)
		}
	}
	configs := []struct {
		name  string
		hist  int
		naive bool
	}{
		{"hist", sc.Histograms, false},
		{"nohist", 0, false},
		{"naive", 0, true},
	}
	chosen := map[string]map[int]string{}
	for _, cfg := range configs {
		sys, err := NewSystem(Config{
			PositionRows: sc.Q2Position, EmployeeRows: 100,
			Histograms: cfg.hist, Naive: cfg.naive, Calibrate: sc.Calibrate,
		})
		if err != nil {
			return nil, err
		}
		chosen[cfg.name] = map[int]string{}
		for _, y := range years {
			res, err := sys.MW.Optimize(Q2Initial(Day(y, time.January, 1)))
			if err != nil {
				return nil, err
			}
			chosen[cfg.name][y] = PlanSignature(res.Best)
		}
	}
	var out []Q2ChoiceRow
	for _, y := range years {
		out = append(out, Q2ChoiceRow{
			Param:         fmt.Sprint(y),
			WithHist:      chosen["hist"][y],
			WithoutHist:   chosen["nohist"][y],
			NaiveEstimate: chosen["naive"][y],
		})
	}
	return out, nil
}

// AdaptRow traces one step of the cost-factor feedback loop.
type AdaptRow struct {
	Step     int
	PTm      float64 // µs per byte after this step
	Observed float64 // µs per byte measured in this step's transfers
}

// RunAdapt repeatedly executes the Query 1 middleware plan and traces
// how the transfer factor p_tm converges from its default toward the
// measured byte rate (the paper's §7 feedback direction, implemented
// as EWMA adaptation).
func RunAdapt(sc Scale, steps int) ([]AdaptRow, error) {
	if steps <= 0 {
		steps = 6
	}
	sys, err := NewSystem(Config{
		PositionRows: sc.Q2Position, EmployeeRows: 100,
		Latency: sc.Latency, Histograms: sc.Histograms,
	})
	if err != nil {
		return nil, err
	}
	var out []AdaptRow
	for i := 1; i <= steps; i++ {
		res, err := sys.MW.Optimize(Q1Initial())
		if err != nil {
			return nil, err
		}
		if _, err := sys.MW.Execute(res.Best); err != nil {
			return nil, err
		}
		out = append(out, AdaptRow{Step: i, PTm: sys.MW.Model.F.TM})
	}
	return out, nil
}
