package client

import (
	"testing"
	"time"

	"tango/internal/engine"
	"tango/internal/rel"
	"tango/internal/server"
	"tango/internal/types"
	"tango/internal/wire"
)

func testConn(t *testing.T) *Conn {
	t.Helper()
	db := engine.Open(engine.Config{})
	srv := server.New(db, wire.Latency{})
	c := Connect(srv)
	if _, err := c.Exec("CREATE TABLE POSITION (PosID INTEGER, EmpName VARCHAR(40), T1 INTEGER, T2 INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO POSITION VALUES (1,'Tom',2,20),(1,'Jane',5,25),(2,'Tom',5,10)"); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestQueryOverWire(t *testing.T) {
	c := testConn(t)
	r, fb, err := c.QueryAll("SELECT PosID, T1 FROM POSITION ORDER BY PosID, T1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Cardinality() != 3 {
		t.Fatalf("rows: %v", r)
	}
	if fb.Rows != 3 || fb.Bytes == 0 {
		t.Errorf("feedback = %+v", fb)
	}
	if r.Schema.Cols[0].Name != "PosID" {
		t.Errorf("schema: %v", r.Schema)
	}
}

func TestBatchingAcrossPrefetch(t *testing.T) {
	c := testConn(t)
	for _, prefetch := range []int{1, 2, 256} {
		c.Prefetch = prefetch
		r, fb, err := c.QueryAll("SELECT EmpName FROM POSITION")
		if err != nil {
			t.Fatal(err)
		}
		if r.Cardinality() != 3 {
			t.Fatalf("prefetch %d: %d rows", prefetch, r.Cardinality())
		}
		if fb.Rows != 3 {
			t.Errorf("prefetch %d feedback: %+v", prefetch, fb)
		}
	}
}

func TestCreateLoadRoundTrip(t *testing.T) {
	c := testConn(t)
	schema := types.NewSchema(
		types.Column{Name: "A.K", Kind: types.KindInt},
		types.Column{Name: "V", Kind: types.KindString},
	)
	name := c.TempName()
	if err := c.CreateTable(name, schema); err != nil {
		t.Fatal(err)
	}
	rows := []types.Tuple{
		{types.Int(1), types.Str("x")},
		{types.Int(2), types.Str("y")},
	}
	fb, err := c.Load(name, rows)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Rows != 2 {
		t.Errorf("load feedback: %+v", fb)
	}
	// The qualified column "A.K" is mangled to A$K on the DBMS side.
	r, _, err := c.QueryAll("SELECT A$K, V FROM " + name + " ORDER BY A$K")
	if err != nil {
		t.Fatal(err)
	}
	if r.Cardinality() != 2 || r.Tuples[1][1].AsString() != "y" {
		t.Fatalf("loaded data: %v", r)
	}
	if err := c.DropTable(name); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.QueryAll("SELECT * FROM " + name); err == nil {
		t.Error("query after drop should fail")
	}
}

func TestInsertRowsPath(t *testing.T) {
	c := testConn(t)
	name := c.TempName()
	if err := c.CreateTable(name, types.NewSchema(types.Column{Name: "K", Kind: types.KindInt})); err != nil {
		t.Fatal(err)
	}
	fb, err := c.InsertRows(name, []types.Tuple{{types.Int(1)}, {types.Int(2)}, {types.Int(3)}})
	if err != nil || fb.Rows != 3 {
		t.Fatalf("insert rows: %+v, %v", fb, err)
	}
}

func TestStatsOverWire(t *testing.T) {
	c := testConn(t)
	stats, err := c.TableStats("POSITION", 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cardinality != 3 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.Column("T1") == nil || stats.Column("T1").Histogram == nil {
		t.Error("histogram missing")
	}
	schema, err := c.TableSchema("POSITION")
	if err != nil || schema.Len() != 4 {
		t.Fatalf("schema: %v, %v", schema, err)
	}
}

func TestLatencyCharged(t *testing.T) {
	db := engine.Open(engine.Config{})
	srv := server.New(db, wire.Latency{RoundTrip: 5 * time.Millisecond})
	c := Connect(srv)
	start := time.Now()
	if _, err := c.Exec("CREATE TABLE T (K INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("round-trip latency not charged")
	}
}

func TestTempNamesUnique(t *testing.T) {
	c := testConn(t)
	a, b := c.TempName(), c.TempName()
	if a == b {
		t.Errorf("TempName not unique: %s", a)
	}
}

func TestRowsIterableAsRelIterator(t *testing.T) {
	c := testConn(t)
	rows, err := c.Query("SELECT PosID FROM POSITION")
	if err != nil {
		t.Fatal(err)
	}
	var it rel.Iterator = rows // compile-time interface check
	got, err := rel.Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 3 {
		t.Fatalf("drain: %v", got)
	}
}

func TestRowsCloseMidStream(t *testing.T) {
	c := testConn(t)
	c.Prefetch = 1
	rows, err := c.Query("SELECT PosID FROM POSITION")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := rows.Next(); err != nil || !ok {
		t.Fatalf("first row: %v %v", ok, err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	// Feedback is finalized on early close.
	fb := rows.Feedback()
	if fb.Rows != 1 || fb.Elapsed <= 0 {
		t.Errorf("feedback after early close: %+v", fb)
	}
	// Next after close returns cleanly.
	if _, ok, _ := rows.Next(); ok {
		t.Error("Next after Close should not produce rows")
	}
}
