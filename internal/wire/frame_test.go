package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestFrameRoundTrip is the property test: any frame with a valid
// message type survives Append → Decode and Append → ReadFrame
// unchanged.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prop := func(session uint32, request uint64, n uint16) bool {
		f := Frame{
			Type:    byte(1 + rng.Intn(int(msgTypeEnd)-1)),
			Session: session,
			Request: request,
			Payload: make([]byte, int(n)%4096),
		}
		rng.Read(f.Payload)
		enc := AppendFrame(nil, f)

		got, used, err := DecodeFrame(enc)
		if err != nil || used != len(enc) {
			t.Logf("DecodeFrame: used=%d err=%v", used, err)
			return false
		}
		if got.Type != f.Type || got.Session != f.Session || got.Request != f.Request || !bytes.Equal(got.Payload, f.Payload) {
			return false
		}

		rf, _, err := ReadFrame(bytes.NewReader(enc), nil)
		if err != nil {
			t.Logf("ReadFrame: %v", err)
			return false
		}
		return rf.Type == f.Type && rf.Session == f.Session && rf.Request == f.Request && bytes.Equal(rf.Payload, f.Payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestFrameDecodeErrors: truncated, oversized, and garbage frames
// must surface the typed errors, never panic.
func TestFrameDecodeErrors(t *testing.T) {
	valid := AppendFrame(nil, Frame{Type: MsgExec, Session: 3, Request: 9, Payload: []byte("SQL")})

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrFrameTruncated},
		{"short prefix", valid[:2], ErrFrameTruncated},
		{"cut body", valid[:len(valid)-1], ErrFrameTruncated},
		{"header only prefix", binary.BigEndian.AppendUint32(nil, 4), ErrBadFrame},
		{"oversized", binary.BigEndian.AppendUint32(nil, MaxFrameSize+1), ErrFrameTooLarge},
		{"zero msg type", AppendFrame(nil, Frame{Type: 0}), ErrBadFrame},
		{"unknown msg type", AppendFrame(nil, Frame{Type: msgTypeEnd}), ErrBadFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := DecodeFrame(tc.data); !errors.Is(err, tc.want) {
				t.Fatalf("DecodeFrame: err=%v, want %v", err, tc.want)
			}
			_, _, err := ReadFrame(bytes.NewReader(tc.data), nil)
			if tc.name == "empty" {
				// A clean hangup at a frame boundary is io.EOF, not a
				// truncation: the connection loop distinguishes them.
				if err != io.EOF {
					t.Fatalf("ReadFrame(empty): err=%v, want io.EOF", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("ReadFrame: err=%v, want %v", err, tc.want)
			}
		})
	}
}

// TestHello covers the handshake codec.
func TestHello(t *testing.T) {
	v, err := CheckHello(AppendHello(nil))
	if err != nil || v != ProtocolVersion {
		t.Fatalf("CheckHello(AppendHello): v=%d err=%v", v, err)
	}
	if _, err := CheckHello([]byte("NOPE\x01")); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("bad magic: %v", err)
	}
	bad := AppendHello(nil)
	bad[len(bad)-1] = ProtocolVersion + 1
	if _, err := CheckHello(bad); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("version skew: %v", err)
	}
	if _, err := CheckHello(nil); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("empty hello: %v", err)
	}
}

// TestRemoteErrorRoundTrip: every error code survives the MsgErr
// payload codec with all its fields.
func TestRemoteErrorRoundTrip(t *testing.T) {
	cases := []RemoteError{
		{Code: CodeGeneric, Msg: "engine: no such table FOO"},
		{Code: CodeOverloaded, Msg: "queue full", Backoff: 5 * time.Millisecond, Queue: 17},
		{Code: CodeFault, Msg: "injected", Op: OpFetch, Kind: KindDrop, Index: 3},
		{Code: CodeShutdown, Msg: "draining"},
		{Code: CodeGeneric, Msg: ""},
	}
	for _, e := range cases {
		got, err := DecodeRemoteError(AppendRemoteError(nil, e))
		if err != nil {
			t.Fatalf("decode %+v: %v", e, err)
		}
		if got != e {
			t.Fatalf("round trip: got %+v, want %+v", got, e)
		}
	}
	for _, bad := range [][]byte{nil, {byte(CodeGeneric)}, AppendRemoteError(nil, cases[0])[:4]} {
		if _, err := DecodeRemoteError(bad); err == nil {
			t.Fatalf("DecodeRemoteError(%x) accepted garbage", bad)
		}
	}
}

// TestChargeCtx: a canceled context cuts a simulated stall short
// instead of sleeping it out.
func TestChargeCtx(t *testing.T) {
	lat := Latency{RoundTrip: 30 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	lat.ChargeCtx(ctx, 0)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("ChargeCtx slept %v under a canceled context", d)
	}
	// The zero latency is free on both paths.
	Latency{}.ChargeCtx(context.Background(), 1<<20)
	Latency{}.Charge(1 << 20)
}
