// Package client is the middleware's connection to the DBMS server —
// the JDBC analogue. Query results arrive as serialized batches and
// are exposed through the shared iterator interface; per-query
// feedback (rows, bytes, wall time) feeds the middleware's adaptive
// cost calibration.
package client

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tango/internal/meta"
	"tango/internal/rel"
	"tango/internal/server"
	"tango/internal/telemetry"
	"tango/internal/types"
	"tango/internal/wire"
)

// Conn is a middleware-side connection.
type Conn struct {
	srv *server.Server
	// Prefetch is the rows-per-fetch setting (the paper's Oracle
	// row-prefetch); 0 uses the wire default.
	Prefetch int
	// Metrics, when set, receives wire-level series: serialized bytes
	// by direction (tango_wire_bytes_total{dir="in"|"out"}), row
	// counts, statement counters, and per-transfer timing histograms.
	Metrics *telemetry.Registry
}

// record feeds one completed transfer into the wire metrics. dir is
// "in" (DBMS → middleware) or "out" (middleware → DBMS).
func (c *Conn) record(dir, kind string, fb Feedback) {
	reg := c.Metrics
	if reg == nil {
		return
	}
	l := telemetry.Labels{"dir": dir}
	reg.Counter("tango_wire_bytes_total", l).Add(fb.Bytes)
	reg.Counter("tango_wire_rows_total", l).Add(fb.Rows)
	kl := telemetry.Labels{"kind": kind}
	reg.Counter("tango_client_statements_total", kl).Inc()
	reg.Histogram("tango_transfer_seconds", kl, telemetry.DurationBuckets).Observe(fb.Elapsed.Seconds())
}

// Connect opens a connection to a server.
func Connect(srv *server.Server) *Conn {
	return &Conn{srv: srv}
}

// Feedback summarizes one completed transfer for the adaptive cost
// model.
type Feedback struct {
	SQL     string
	Rows    int64
	Bytes   int64
	Elapsed time.Duration
}

// Exec runs a non-SELECT statement on the DBMS.
func (c *Conn) Exec(sql string) (int64, error) {
	return c.srv.Exec(sql)
}

// Query opens a SELECT on the DBMS and returns a pipelined iterator
// over the deserialized rows. Feedback() on the returned Rows is valid
// after the iterator is drained or closed.
func (c *Conn) Query(sql string) (*Rows, error) {
	start := time.Now()
	cur, err := c.srv.Query(sql, c.Prefetch)
	if err != nil {
		return nil, err
	}
	return &Rows{conn: c, cur: cur, schema: cur.Schema().Unqualified(), start: start, sql: sql}, nil
}

// QueryWindowed is Query with a pipelined fetch window: up to window
// FETCH round trips are outstanding at once, so the wire latency of
// consecutive batches overlaps instead of accumulating (the cursor
// still produces batches strictly in order). window <= 1 degenerates
// to the synchronous Query path.
func (c *Conn) QueryWindowed(sql string, window int) (*Rows, error) {
	r, err := c.Query(sql)
	if err != nil {
		return nil, err
	}
	if window > 1 {
		r.startPipeline(window)
	}
	return r, nil
}

// Rows iterates a query result fetched in batches over the wire.
type Rows struct {
	conn   *Conn
	cur    *server.Cursor
	schema types.Schema
	sql    string

	batch []types.Tuple
	pos   int
	done  bool

	win *fetchPipeline // non-nil in windowed mode

	start time.Time
	fb    Feedback
}

// fetchPipeline is the windowed-fetch machinery: a requester goroutine
// issues FETCHes back to back against the serial cursor, and each
// reply's wire delay is slept in its own delivery goroutine, so up to
// `window` round trips are in flight concurrently. Replies are
// reassembled in issue order through a queue of single-use futures.
type fetchPipeline struct {
	slots chan chan inflight // futures, in fetch order
	free  chan []byte        // encode buffers on loan to in-flight replies
	stop  chan struct{}
	done  chan struct{}
}

// inflight is one decoded reply.
type inflight struct {
	rows  []types.Tuple
	bytes int
	err   error
}

// startPipeline launches the requester with the given window.
func (r *Rows) startPipeline(window int) {
	p := &fetchPipeline{
		slots: make(chan chan inflight, window),
		free:  make(chan []byte, window+1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for i := 0; i < window+1; i++ {
		p.free <- wire.GetBuf()
	}
	r.win = p
	go r.requester(p)
}

// requester drives the pipelined cursor until end of stream, error,
// or stop. The final future (nil rows) carries the error/EOS signal,
// after which the slot queue is closed.
func (r *Rows) requester(p *fetchPipeline) {
	defer close(p.done)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		var buf []byte
		select {
		case <-p.stop:
			return
		case buf = <-p.free:
		}
		payload, delay, err := r.cur.FetchBatchPipelined(buf)
		res := make(chan inflight, 1)
		select {
		case <-p.stop:
			p.free <- buf // never blocks: window+1 buffers, window+1 slots
			return
		case p.slots <- res:
		}
		if err != nil || payload == nil {
			p.free <- buf
			res <- inflight{err: err}
			close(p.slots)
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Propagation: the reply is on the wire while later
			// fetches are issued and earlier batches are consumed.
			if delay > 0 {
				time.Sleep(delay)
			}
			rows, derr := wire.DecodeBatch(payload)
			res <- inflight{rows: rows, bytes: len(payload), err: derr}
			// EncodeBatch may have grown the buffer; recycle the
			// backing array actually used.
			p.free <- payload[:0]
		}()
	}
}

// fetchWindowed installs the next in-order pipelined batch.
func (r *Rows) fetchWindowed() error {
	res, ok := <-r.win.slots
	if !ok {
		r.done = true
		r.finish()
		return nil
	}
	b := <-res
	if b.err != nil {
		return b.err
	}
	if b.rows == nil {
		r.done = true
		r.finish()
		return nil
	}
	r.fb.Bytes += int64(b.bytes)
	r.batch = b.rows
	r.pos = 0
	return nil
}

// Schema returns the result schema (unqualified column names, as a
// JDBC ResultSetMetaData would present them).
func (r *Rows) Schema() types.Schema { return r.schema }

// Open is a no-op; the cursor is opened by Query.
func (r *Rows) Open() error { return nil }

// Next returns the next row, fetching a new batch when the current
// one is exhausted.
func (r *Rows) Next() (types.Tuple, bool, error) {
	for {
		if r.pos < len(r.batch) {
			t := r.batch[r.pos]
			r.pos++
			r.fb.Rows++
			return t, true, nil
		}
		if r.done {
			return nil, false, nil
		}
		if err := r.fetch(); err != nil {
			return nil, false, err
		}
		if r.done {
			return nil, false, nil
		}
	}
}

// fetch pulls and decodes the next wire batch, reusing the row-header
// slice across fetches (the tuples themselves are fresh allocations, so
// consumers that retain them are unaffected). Sets done at end of
// stream. In windowed mode it takes the next in-order batch from the
// pipeline instead.
func (r *Rows) fetch() error {
	if r.win != nil {
		return r.fetchWindowed()
	}
	payload, err := r.cur.FetchBatch()
	if err != nil {
		return err
	}
	if payload == nil {
		r.done = true
		r.finish()
		return nil
	}
	r.fb.Bytes += int64(len(payload))
	batch, err := wire.DecodeBatchInto(r.batch[:0], payload)
	if err != nil {
		return err
	}
	r.batch = batch
	r.pos = 0
	return nil
}

// NextBatch exposes the wire fetch granularity to the middleware's
// batch protocol: one call hands over (up to) a whole decoded fetch
// batch, paying zero per-tuple interface calls.
func (r *Rows) NextBatch(dst []types.Tuple) (int, error) {
	for {
		if r.pos < len(r.batch) {
			n := copy(dst, r.batch[r.pos:])
			r.pos += n
			r.fb.Rows += int64(n)
			return n, nil
		}
		if r.done {
			return 0, nil
		}
		if err := r.fetch(); err != nil {
			return 0, err
		}
		if r.done {
			return 0, nil
		}
	}
}

// Close stops the fetch pipeline (waiting for in-flight replies, so
// the serial cursor is quiescent), recycles its wire buffers, and
// releases the server cursor.
func (r *Rows) Close() error {
	if p := r.win; p != nil {
		r.win = nil
		close(p.stop)
		<-p.done
		for {
			select {
			case buf := <-p.free:
				wire.PutBuf(buf)
				continue
			default:
			}
			break
		}
	}
	if !r.done {
		r.done = true
		r.finish()
	}
	return r.cur.Close()
}

func (r *Rows) finish() {
	r.fb.Elapsed = time.Since(r.start)
	r.fb.SQL = r.sql
	if r.conn != nil {
		r.conn.record("in", "query", r.fb)
	}
}

// Feedback returns transfer statistics; valid after the rows are
// drained or closed.
func (r *Rows) Feedback() Feedback { return r.fb }

// QueryAll runs a query and materializes the result, returning the
// transfer feedback.
func (c *Conn) QueryAll(sql string) (*rel.Relation, Feedback, error) {
	rows, err := c.Query(sql)
	if err != nil {
		return nil, Feedback{}, err
	}
	out, err := rel.Drain(rows)
	if err != nil {
		// Drain closes the iterator on every path; this re-close of an
		// idempotent cursor is belt-and-braces only.
		_ = rows.Close()
		return nil, Feedback{}, err
	}
	return out, rows.Feedback(), nil
}

// CreateTable issues a CREATE TABLE for the given schema. Qualified
// column names are mangled ("A.PosID" → "A$PosID") so self-join
// outputs stay unambiguous; SQL generation uses the same mangling.
func (c *Conn) CreateTable(name string, schema types.Schema) error {
	cols := make([]string, schema.Len())
	for i, col := range schema.Cols {
		cols[i] = Mangle(col.Name) + " " + col.Kind.String()
	}
	_, err := c.srv.Exec("CREATE TABLE " + name + " (" + strings.Join(cols, ", ") + ")")
	return err
}

// Mangle converts a (possibly qualified) algebra column name into a
// valid SQL identifier.
func Mangle(name string) string {
	return strings.ReplaceAll(name, ".", "$")
}

// Load bulk-loads rows into an existing table via the direct-path
// loader, returning transfer feedback.
func (c *Conn) Load(table string, rows []types.Tuple) (Feedback, error) {
	start := time.Now()
	payload := wire.EncodeBatch(wire.GetBuf(), rows)
	defer wire.PutBuf(payload)
	n, err := c.srv.Load(table, payload)
	if err != nil {
		return Feedback{}, err
	}
	fb := Feedback{
		SQL:     "LOAD " + table,
		Rows:    n,
		Bytes:   int64(len(payload)),
		Elapsed: time.Since(start),
	}
	c.record("out", "load", fb)
	return fb, nil
}

// InsertRows loads rows with per-row INSERTs (the slow conventional
// path, for the ablation experiment).
func (c *Conn) InsertRows(table string, rows []types.Tuple) (Feedback, error) {
	start := time.Now()
	payload := wire.EncodeBatch(wire.GetBuf(), rows)
	defer wire.PutBuf(payload)
	n, err := c.srv.InsertRows(table, payload)
	if err != nil {
		return Feedback{}, err
	}
	fb := Feedback{
		SQL:     "INSERT " + table,
		Rows:    n,
		Bytes:   int64(len(payload)),
		Elapsed: time.Since(start),
	}
	c.record("out", "insert", fb)
	return fb, nil
}

// DropTable drops a table, ignoring missing tables (used to clean up
// transfer temporaries).
func (c *Conn) DropTable(name string) error {
	_, err := c.srv.Exec("DROP TABLE IF EXISTS " + name)
	return err
}

// TableStats fetches catalog statistics for the Statistics Collector.
func (c *Conn) TableStats(table string, histogramBuckets int) (*meta.TableStats, error) {
	return c.srv.TableStats(table, histogramBuckets)
}

// TableSchema fetches a table schema.
func (c *Conn) TableSchema(table string) (types.Schema, error) {
	return c.srv.TableSchema(table)
}

// tempCounter numbers transfer temp tables; atomic so concurrent
// connections never hand out the same name.
var tempCounter atomic.Int64

// TempName generates a unique temporary table name; the caller must
// drop it when the query completes (as §3.2 of the paper requires).
func (c *Conn) TempName() string {
	return fmt.Sprintf("TMP_TANGO_%d", tempCounter.Add(1))
}
