package cost

import (
	"tango/internal/algebra"
)

// ObservedOp is one middleware operator's measured execution profile,
// as collected by the telemetry-instrumented iterators: observed input
// and output volumes plus the operator's own (self) wall time. It is
// the per-operator analogue of client.Feedback, and drives the §7
// feedback loop at algorithm granularity instead of only at transfer
// granularity.
type ObservedOp struct {
	Op  algebra.Op
	Loc algebra.Location
	// InBytes/InCard are the volumes produced by the operator's direct
	// inputs; OutBytes/OutCard are what the operator itself produced.
	InBytes  float64
	OutBytes float64
	InCard   float64
	OutCard  float64
	// PredTerms is f(P) for selections (number of atomic predicate
	// terms); values < 1 are treated as 1.
	PredTerms float64
	// Micros is the operator's measured self time in microseconds.
	Micros float64
}

// AdaptOp refines the cost factor(s) of one middleware algorithm from
// a measured execution. The prediction is re-priced with the observed
// sizes (so the update corrects the factor, not the cardinality
// estimate), the observed/predicted ratio is clamped to [0.1, 10], and
// each involved factor moves by an EWMA step of rate alpha:
//
//	f' = f · (1 + α·(ratio − 1))
//
// Transfers (T^M, T^D) are excluded — Factors.Adapt already updates
// them from whole-transfer feedback — as are DBMS-resident operators,
// whose cost the middleware can only observe mixed into transfer time.
// It reports whether any factor was updated.
func (f *Factors) AdaptOp(o ObservedOp, alpha float64) bool {
	if alpha <= 0 || o.Micros <= 0 || o.Loc != algebra.LocMW {
		return false
	}
	scale := func(observed, predicted float64, targets ...*float64) bool {
		if predicted <= 0 || observed <= 0 {
			return false
		}
		ratio := observed / predicted
		if ratio < 0.1 {
			ratio = 0.1
		} else if ratio > 10 {
			ratio = 10
		}
		k := 1 + alpha*(ratio-1)
		for _, t := range targets {
			*t *= k
		}
		return true
	}
	switch o.Op {
	case algebra.OpSelect:
		terms := o.PredTerms
		if terms < 1 {
			terms = 1
		}
		return scale(o.Micros, f.SelM*terms*o.InBytes, &f.SelM)

	case algebra.OpSort:
		return scale(o.Micros, f.SortM*o.InBytes*log2(o.InCard), &f.SortM)

	case algebra.OpJoin, algebra.OpTJoin:
		// The formula weighs bytes moved: both inputs plus the output.
		return scale(o.Micros, f.JoinM*(o.InBytes+o.OutBytes), &f.JoinM)

	case algebra.OpTAggr:
		// Figure 6 prices TAGGR^M as an internal sort (SortM) plus two
		// linear terms. Deduct the sort share from the measurement and
		// fit p_taggm1/p_taggm2 against the residual.
		resid := o.Micros - f.SortM*o.InBytes*log2(o.InCard)
		if resid <= 0 {
			resid = o.Micros / 10
		}
		return scale(resid, f.TAggrM1*o.InBytes+f.TAggrM2*o.OutBytes, &f.TAggrM1, &f.TAggrM2)

	case algebra.OpDupElim:
		return scale(o.Micros, f.DupM*o.InBytes, &f.DupM)

	case algebra.OpCoalesce:
		return scale(o.Micros, f.CoalM*o.InBytes, &f.CoalM)
	}
	return false
}

// PredTerms exposes the selection-condition weight f(P) the cost
// formulas use (the number of atomic predicate terms), so callers
// assembling ObservedOp values price selections consistently.
func PredTerms(pred interface{ String() string }) float64 {
	return predWeight(pred)
}
