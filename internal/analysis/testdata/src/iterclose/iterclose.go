// Package iterclose seeds lifecycle violations for the iterclose
// analyzer: iterators opened but never closed, closes reachable only
// past early returns, and Next calls on exhausted iterators.
package iterclose

type tuple []int

// iter is shaped like rel.Iterator, which the analyzer matches
// structurally.
type iter struct{ done bool }

func (*iter) Open() error                { return nil }
func (*iter) Close() error               { return nil }
func (*iter) Next() (tuple, bool, error) { return nil, false, nil }

// conn has the cursor-opening method the analyzer treats as an
// acquisition.
type conn struct{}

func (*conn) Query(sql string) (*iter, error) { return &iter{}, nil }

func badPrecondition() bool { return false }

// neverClosed acquires a cursor and drops it on the floor.
func neverClosed(c *conn) error {
	rows, err := c.Query("SELECT 1") // want `rows is opened but never closed`
	if err != nil {
		return err
	}
	_, _, nerr := rows.Next()
	return nerr
}

// leakOnError closes only on the success path; the precondition return
// leaks the open iterator.
func leakOnError(c *conn) error {
	it := &iter{}
	if err := it.Open(); err != nil {
		return err
	}
	if badPrecondition() {
		return nil // want `return leaks it: opened at line \d+`
	}
	return it.Close()
}

// nextAfterExhaustion calls Next again after the consuming loop
// without re-opening.
func nextAfterExhaustion(c *conn) error {
	rows, err := c.Query("SELECT 2")
	if err != nil {
		return err
	}
	defer rows.Close()
	for {
		_, ok, err := rows.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
	}
	_, _, err = rows.Next() // want `rows\.Next\(\) after the consuming loop at line \d+`
	return err
}

// drained is the sanctioned shape: defer the close right after the
// acquisition's error check, keep the final close's error.
func drained(c *conn) (int, error) {
	rows, err := c.Query("SELECT 3")
	if err != nil {
		return 0, err
	}
	defer rows.Close()
	n := 0
	for {
		_, ok, err := rows.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		n++
	}
	return n, rows.Close()
}

// opened hands ownership to the caller; no finding.
func opened(c *conn) (*iter, error) {
	rows, err := c.Query("SELECT 4")
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// suppressed leaks on purpose; the directive keeps the finding quiet
// and the harness verifies no diagnostic surfaces here.
func suppressed(c *conn) error {
	//lint:ignore iterclose fixture: the leak is the point of this test
	rows, err := c.Query("SELECT 5")
	if err != nil {
		return err
	}
	_, _, nerr := rows.Next()
	return nerr
}

// batchIter is shaped like a rel.BatchIterator: the cursor contract
// plus the batch protocol. The analyzer treats NextBatch as a
// consuming use exactly like Next.
type batchIter struct{ done bool }

func (*batchIter) Open() error                        { return nil }
func (*batchIter) Close() error                       { return nil }
func (*batchIter) Next() (tuple, bool, error)         { return nil, false, nil }
func (*batchIter) NextBatch(dst []tuple) (int, error) { return 0, nil }

// batchNeverClosed consumes through the batch protocol but never
// closes; NextBatch must not read as an ownership escape.
func batchNeverClosed() error {
	it := &batchIter{}
	if err := it.Open(); err != nil { // want `it is opened but never closed`
		return err
	}
	buf := make([]tuple, 8)
	_, err := it.NextBatch(buf)
	return err
}

// batchNextAfterExhaustion drains with NextBatch, then asks for more
// without re-opening.
func batchNextAfterExhaustion() error {
	it := &batchIter{}
	if err := it.Open(); err != nil {
		return err
	}
	defer it.Close()
	buf := make([]tuple, 8)
	for {
		n, err := it.NextBatch(buf)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
	}
	_, err := it.NextBatch(buf) // want `it\.NextBatch\(\) after the consuming loop at line \d+`
	return err
}

// batchDrained is the sanctioned batch-protocol shape: deferred close,
// NextBatch loop to n == 0.
func batchDrained() (int, error) {
	it := &batchIter{}
	if err := it.Open(); err != nil {
		return 0, err
	}
	defer it.Close()
	buf := make([]tuple, 8)
	total := 0
	for {
		n, err := it.NextBatch(buf)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			break
		}
		total += n
	}
	return total, it.Close()
}

// prefetcher is a parallel wrapper fixture: it owns a wrapped iterator
// in a field (exempt — closed by the wrapper's own Close), and exposes
// Unwrap like the real prefetch operator. Unwrap is a neutral use.
type prefetcher struct{ in *batchIter }

func (p *prefetcher) Open() error                { return p.in.Open() }
func (p *prefetcher) Close() error               { return p.in.Close() }
func (p *prefetcher) Next() (tuple, bool, error) { return p.in.Next() }
func (p *prefetcher) Unwrap() *batchIter         { return p.in }

// wrappedDrain opens a prefetch wrapper and closes only the wrapper;
// peeking through Unwrap must not demand a second close.
func wrappedDrain() error {
	p := &prefetcher{in: &batchIter{}}
	if err := p.Open(); err != nil {
		return err
	}
	defer p.Close()
	_ = p.Unwrap()
	for {
		_, ok, err := p.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
	}
	return nil
}
