// Package errlostdur is the durability-tagged counterpart of the
// errlost fixture: here `defer f.Close()` is NOT a sanctioned cleanup
// idiom. On a durability path Close is where buffered writes and the
// final fsync surface their failure, so deferring it without capturing
// the error reports a torn file as committed.
//
//tango:durability
package errlostdur

type file struct{}

func (*file) Close() error { return nil }
func (*file) Open() error  { return nil }

// badDeferredClose drops the one error that proves the commit.
func badDeferredClose(f *file) error {
	defer f.Close() // want `error returned by deferred file\.Close is silently dropped on a durability path`
	return nil
}

// okCapturedClose threads the close error into the named return.
func okCapturedClose(f *file) (err error) {
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return nil
}

// okExplicitClose handles the error in line.
func okExplicitClose(f *file) error {
	return f.Close()
}

// okDeferredNonClose: only Close carries the commit semantics; other
// deferred lifecycle calls keep the plain-package exemption.
func okDeferredNonClose(f *file) {
	defer f.Open()
}
