package analysis

// Per-function effect summaries: what a function acquires, releases,
// blocks on, and spawns. Summaries are computed bottom-up over the
// call graph's SCC condensation (callgraph.go), so a caller's summary
// includes everything reachable through its callees — that is what
// makes latchorder, lockio, and goleak interprocedural where the older
// analyzers are per-function.
//
// Two //tango:lock-order directive forms feed the model:
//
//	mu sync.Mutex //tango:lock-order bufferpool latch
//
// on a mutex/latch field declares that field's lock class (the
// optional trailing word "latch" marks a latch class: a short critical
// section that must never reach blocking I/O — enforced by lockio),
// and a standalone comment
//
//	//tango:lock-order catalog < bufferpool < store
//
// declares a chain of the lock-acquisition partial order. Chains from
// every analyzed package merge into one global order; acquiring
// against it (or re-entering a held class) is a latchorder finding.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockClassDecl is one annotated mutex field.
type LockClassDecl struct {
	Class string `json:"class"`
	Latch bool   `json:"latch,omitempty"`
}

// OrderEdge is one declared `less < greater` pair with the position of
// its declaration (for diagnostics about the order itself).
type OrderEdge struct {
	Less    string `json:"less"`
	Greater string `json:"greater"`
	Pos     string `json:"pos"`
}

// BlockEffect is one blocking operation reachable from a function,
// with a witness call path ("f (file:line)" frames, outermost first).
// Unlocked lists lock classes the function provably released before
// the block — the hand-over-hand pattern where a helper drops the
// caller's latch, does the slow work, and relocks (the buffer pool's
// eviction write-back). lockio skips a block whose Unlocked set covers
// the held latch; a block recorded with an empty set is charged
// against every held class.
type BlockEffect struct {
	Kind     string   `json:"kind"`   // "store-io", "file-io", "wal-sync", "chan-send", "chan-recv", "sleep", "wait", "net-io"
	Detail   string   `json:"detail"` // e.g. "(*os.File).Sync"
	Path     []string `json:"path,omitempty"`
	Unlocked []string `json:"unlocked,omitempty"`
}

// ChanParamOp records an unguarded blocking channel operation a
// function performs directly on one of its own parameters, so a
// spawner (`go helper(ch)`) can reason about the channel it passed in.
type ChanParamOp struct {
	Param int    `json:"param"` // 0-based index into the signature's parameters
	Send  bool   `json:"send"`
	Pos   string `json:"pos"`
}

// FuncEffects is the serializable summary of one function: the lock
// classes it may (transitively) acquire, the blocking operations it
// may reach, and the unguarded channel ops it performs on its own
// parameters. Witness paths keep diagnostics explainable across
// package boundaries.
type FuncEffects struct {
	Key      string              `json:"key"`
	Acquires map[string][]string `json:"acquires,omitempty"` // class -> witness path
	Blocks   []BlockEffect       `json:"blocks,omitempty"`
	ChanOps  []ChanParamOp       `json:"chanOps,omitempty"`
}

// --- intra-function facts (not serialized) ---

type eventKind uint8

const (
	evAcquire eventKind = iota
	evRelease
	evDeferRelease
	evCall
	evBlock
	evChanOp
	evSpawn
)

// funcEvent is one effect-relevant action, in source-position order.
type funcEvent struct {
	kind eventKind
	pos  token.Pos

	class string // evAcquire/evRelease/evDeferRelease
	rlock bool

	calleeKey string // evCall/evSpawn (empty when unresolvable)
	call      *ast.CallExpr

	block BlockEffect // evBlock

	// evChanOp
	send    bool
	guarded bool     // inside a select with a default or done/ctx case
	chanEx  ast.Expr // the channel operand
	inDefer bool

	goStmt *ast.GoStmt // evSpawn
}

// funcFacts is the per-function record the interprocedural analyzers
// replay: classified events plus the function's direct effects.
type funcFacts struct {
	key    string
	name   string // display name ("(*BufferPool).Fetch")
	decl   *ast.FuncDecl
	events []funcEvent
}

// pkgFacts carries everything summary extraction learned about one
// package.
type pkgFacts struct {
	pkg     *Package
	funcs   map[string]*funcFacts // keyed by summary key
	order   []*funcFacts          // declaration order
	classes map[string]LockClassDecl
	edges   []OrderEdge
}

// funcKey builds the stable cross-package summary key for a function
// object: "pkgpath.Recv.Name" (Recv omitted for plain functions).
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	recv := ""
	if sig != nil && sig.Recv() != nil {
		recv = namedRecvName(sig.Recv().Type()) + "."
	}
	return fn.Pkg().Path() + "." + recv + fn.Name()
}

func namedRecvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	if iface, ok := t.(*types.Interface); ok {
		_ = iface
		return "iface"
	}
	return strings.ReplaceAll(t.String(), " ", "")
}

// fieldLockKey builds the stable key of an annotated lock field:
// "pkgpath.Struct.field". The struct name comes from the enclosing
// type declaration at collection time and from the selection's
// receiver type at use time.
func fieldLockKey(pkgPath, structName, fieldName string) string {
	return pkgPath + "." + structName + "." + fieldName
}

// --- directive collection ---

const lockOrderDirective = "//tango:lock-order"

// collectLockDirectives scans a package for both forms of the
// //tango:lock-order directive. Malformed directives are reported as
// diagnostics by the latchorder analyzer (collected here).
func collectLockDirectives(pkg *Package) (classes map[string]LockClassDecl, edges []OrderEdge, malformed []Diagnostic) {
	classes = map[string]LockClassDecl{}

	// Field-form directives: the comment must be the field's trailing
	// comment (or the line directly above it inside the struct).
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			structName := enclosingTypeName(f, st)
			for _, field := range st.Fields.List {
				var texts []*ast.Comment
				if field.Comment != nil {
					texts = append(texts, field.Comment.List...)
				}
				if field.Doc != nil {
					texts = append(texts, field.Doc.List...)
				}
				for _, c := range texts {
					text := strings.TrimSpace(c.Text)
					if !strings.HasPrefix(text, lockOrderDirective) {
						continue
					}
					rest := stripTrailingComment(strings.TrimSpace(strings.TrimPrefix(text, lockOrderDirective)))
					if strings.Contains(rest, "<") {
						// Chain form on a field line: treat as a chain.
						es, diags := parseOrderChain(pkg, c)
						edges = append(edges, es...)
						malformed = append(malformed, diags...)
						continue
					}
					words := strings.Fields(rest)
					if len(words) == 0 || len(words) > 2 || (len(words) == 2 && words[1] != "latch") || !validClassName(words[0]) {
						malformed = append(malformed, directiveDiag(pkg, c.Pos(),
							"malformed //tango:lock-order directive: want `//tango:lock-order <class> [latch]` on a lock field or `//tango:lock-order a < b < c`"))
						continue
					}
					decl := LockClassDecl{Class: words[0], Latch: len(words) == 2}
					for _, name := range field.Names {
						key := fieldLockKey(pkg.Types.Path(), structName, name.Name)
						classes[key] = decl
					}
				}
			}
			return true
		})
	}

	// Chain-form directives anywhere else in the package.
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, lockOrderDirective) {
					continue
				}
				rest := stripTrailingComment(strings.TrimSpace(strings.TrimPrefix(text, lockOrderDirective)))
				if !strings.Contains(rest, "<") {
					continue // field form, handled above (or malformed there)
				}
				es, diags := parseOrderChain(pkg, c)
				edges = append(edges, es...)
				malformed = append(malformed, diags...)
			}
		}
	}
	return classes, edges, malformed
}

// stripTrailingComment cuts directive text at an embedded `//`, so a
// trailing annotation (fixture want markers, prose) is not parsed as
// part of the directive.
func stripTrailingComment(s string) string {
	if i := strings.Index(s, "//"); i >= 0 {
		return strings.TrimSpace(s[:i])
	}
	return s
}

// parseOrderChain parses `//tango:lock-order a < b < c` into edges.
func parseOrderChain(pkg *Package, c *ast.Comment) ([]OrderEdge, []Diagnostic) {
	text := stripTrailingComment(strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), lockOrderDirective)))
	parts := strings.Split(text, "<")
	var names []string
	for _, p := range parts {
		names = append(names, strings.TrimSpace(p))
	}
	pos := pkg.Fset.Position(c.Pos())
	if len(names) < 2 {
		return nil, []Diagnostic{directiveDiag(pkg, c.Pos(), "malformed //tango:lock-order chain: want at least two classes, e.g. `//tango:lock-order catalog < bufferpool`")}
	}
	var edges []OrderEdge
	for i, name := range names {
		if !validClassName(name) {
			return nil, []Diagnostic{directiveDiag(pkg, c.Pos(), fmt.Sprintf("malformed //tango:lock-order chain: bad class name %q", name))}
		}
		if i > 0 {
			edges = append(edges, OrderEdge{Less: names[i-1], Greater: name, Pos: fmt.Sprintf("%s:%d", pos.Filename, pos.Line)})
		}
	}
	return edges, nil
}

func directiveDiag(pkg *Package, pos token.Pos, msg string) Diagnostic {
	return Diagnostic{Analyzer: "latchorder", Pos: pkg.Fset.Position(pos), Message: msg}
}

func validClassName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !(r == '-' || r == '_' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')) {
			return false
		}
	}
	return true
}

// enclosingTypeName finds the TypeSpec name whose type contains st.
func enclosingTypeName(f *ast.File, st *ast.StructType) string {
	name := "anon"
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		if ts.Pos() <= st.Pos() && st.End() <= ts.End() {
			name = ts.Name.Name
		}
		return true
	})
	return name
}

// --- event extraction ---

// buildPkgFacts classifies every function body in the package into
// events. The index supplies lock-class declarations from dependency
// packages (for cross-package field locks).
func buildPkgFacts(pkg *Package, index *Index) *pkgFacts {
	classes, edges, _ := collectLockDirectives(pkg)
	pf := &pkgFacts{pkg: pkg, funcs: map[string]*funcFacts{}, classes: classes, edges: edges}
	index.addPackageDecls(classes, edges)

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			ff := &funcFacts{key: funcKey(obj), name: displayFuncName(fn), decl: fn}
			w := &eventWalker{pkg: pkg, index: index, ff: ff}
			w.walkBody(fn.Body, walkCtx{})
			pf.funcs[ff.key] = ff
			pf.order = append(pf.order, ff)
		}
	}
	return pf
}

func displayFuncName(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		t := fn.Recv.List[0].Type
		if se, ok := t.(*ast.StarExpr); ok {
			t = se.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fn.Name.Name
		}
		if idx, ok := t.(*ast.IndexExpr); ok {
			if id, ok := idx.X.(*ast.Ident); ok {
				return "(*" + id.Name + ")." + fn.Name.Name
			}
		}
	}
	return fn.Name.Name
}

// walkCtx carries the syntactic context of the walk.
type walkCtx struct {
	inDefer bool
	guarded bool // inside a select case with a default or done/ctx sibling
}

type eventWalker struct {
	pkg   *Package
	index *Index
	ff    *funcFacts
}

func (w *eventWalker) emit(e funcEvent) { w.ff.events = append(w.ff.events, e) }

// walkBody visits statements in source order, classifying effects.
// Function literals are NOT descended into for the enclosing
// function's event stream (their bodies run elsewhere); goleak walks
// go-statement literals on demand, and deferred literals contribute
// their Unlock calls as deferred releases.
func (w *eventWalker) walkBody(n ast.Node, ctx walkCtx) {
	if n == nil {
		return
	}
	switch s := n.(type) {
	case *ast.FuncLit:
		return
	case *ast.GoStmt:
		// Spawn event; the body's own blocking runs on another
		// goroutine and does not block the spawner.
		key := ""
		if fn := calleeFunc(w.pkg.Info, s.Call); fn != nil {
			key = funcKey(fn)
		}
		w.emit(funcEvent{kind: evSpawn, pos: s.Pos(), calleeKey: key, call: s.Call, goStmt: s})
		// Arguments are evaluated by the spawner.
		for _, arg := range s.Call.Args {
			w.walkBody(arg, ctx)
		}
		return
	case *ast.DeferStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// A deferred closure: its Unlock calls release at exit; its
			// other effects run after the function's own critical
			// sections and are ignored here.
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if class, rl, ok2 := w.lockOp(call); ok2 == lockRelease {
						w.emit(funcEvent{kind: evDeferRelease, pos: s.Pos(), class: class, rlock: rl})
					}
				}
				return true
			})
			return
		}
		w.walkBody(s.Call, walkCtx{inDefer: true, guarded: ctx.guarded})
		return
	case *ast.SelectStmt:
		guarded := selectIsGuarded(w.pkg.Info, s)
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			sub := ctx
			sub.guarded = ctx.guarded || guarded
			// The comm operation itself blocks only as much as the
			// select does; a select with a default never blocks.
			w.walkBody(cc.Comm, sub)
			for _, st := range cc.Body {
				w.walkBody(st, sub)
			}
		}
		return
	case *ast.SendStmt:
		w.walkBody(s.Chan, ctx)
		w.walkBody(s.Value, ctx)
		w.emit(funcEvent{kind: evChanOp, pos: s.Pos(), send: true, guarded: ctx.guarded, chanEx: s.Chan, inDefer: ctx.inDefer,
			block: BlockEffect{Kind: "chan-send", Detail: exprString(s.Chan)}})
		return
	case *ast.UnaryExpr:
		if s.Op == token.ARROW {
			w.walkBody(s.X, ctx)
			w.emit(funcEvent{kind: evChanOp, pos: s.Pos(), send: false, guarded: ctx.guarded, chanEx: s.X, inDefer: ctx.inDefer,
				block: BlockEffect{Kind: "chan-recv", Detail: exprString(s.X)}})
			return
		}
	case *ast.RangeStmt:
		w.walkBody(s.X, ctx)
		if tv, ok := w.pkg.Info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.emit(funcEvent{kind: evChanOp, pos: s.X.Pos(), send: false, guarded: ctx.guarded, chanEx: s.X, inDefer: ctx.inDefer,
					block: BlockEffect{Kind: "chan-recv", Detail: "range " + exprString(s.X)}})
			}
		}
		w.walkBody(s.Body, ctx)
		return
	case *ast.CallExpr:
		// Arguments first (evaluation order).
		for _, arg := range s.Args {
			w.walkBody(arg, ctx)
		}
		w.classifyCall(s, ctx)
		return
	}
	// Default: descend to children in source order.
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		if c != nil {
			w.walkBody(c, ctx)
		}
		return false
	})
}

type lockOpKind int

const (
	lockNone lockOpKind = iota
	lockAcquire
	lockRelease
)

// lockOp classifies a call as an acquire/release of an annotated lock
// class. It matches `recv.field.Lock()` / `Unlock` / `RLock` /
// `RUnlock` / `TryLock` where field carries a //tango:lock-order
// directive (looked up through the global index so cross-package
// fields resolve too).
func (w *eventWalker) lockOp(call *ast.CallExpr) (class string, rlock bool, kind lockOpKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, lockNone
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		kind = lockAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return "", false, lockNone
	}
	rlock = strings.HasPrefix(sel.Sel.Name, "R") || strings.HasPrefix(sel.Sel.Name, "TryR")
	// The operand must be a field selection (x.mu) or a bare
	// identifier resolving to an annotated field var.
	key := w.lockFieldKey(sel.X)
	if key == "" {
		return "", false, lockNone
	}
	decl, ok := w.index.lockClass(key)
	if !ok {
		return "", false, lockNone
	}
	return decl.Class, rlock, kind
}

// lockFieldKey resolves the expression to an annotated field key, or
// "".
func (w *eventWalker) lockFieldKey(x ast.Expr) string {
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	sl, ok := w.pkg.Info.Selections[sel]
	if !ok || sl.Kind() != types.FieldVal {
		return ""
	}
	fieldVar, ok := sl.Obj().(*types.Var)
	if !ok || fieldVar.Pkg() == nil {
		return ""
	}
	recvName := namedRecvName(sl.Recv())
	return fieldLockKey(fieldVar.Pkg().Path(), recvName, fieldVar.Name())
}

// classifyCall emits acquire/release, direct blocking, or plain call
// events for one call expression.
func (w *eventWalker) classifyCall(call *ast.CallExpr, ctx walkCtx) {
	if class, rl, kind := w.lockOp(call); kind != lockNone {
		switch {
		case kind == lockAcquire:
			w.emit(funcEvent{kind: evAcquire, pos: call.Pos(), class: class, rlock: rl})
		case ctx.inDefer:
			w.emit(funcEvent{kind: evDeferRelease, pos: call.Pos(), class: class, rlock: rl})
		default:
			w.emit(funcEvent{kind: evRelease, pos: call.Pos(), class: class, rlock: rl})
		}
		return
	}
	if be, ok := blockingCall(w.pkg.Info, call); ok {
		if !ctx.guarded {
			w.emit(funcEvent{kind: evBlock, pos: call.Pos(), block: be, call: call})
		}
		return
	}
	fn := calleeFunc(w.pkg.Info, call)
	if fn == nil {
		return
	}
	w.emit(funcEvent{kind: evCall, pos: call.Pos(), calleeKey: funcKey(fn), call: call})
}

// blockingCall reports whether the call is a known directly-blocking
// operation: file/store I/O, durability barriers, sleeps, waits.
// Module-internal blocking (wire round trips, WAL syncs behind
// helpers) is reached transitively through summaries instead.
func blockingCall(info *types.Info, call *ast.CallExpr) (BlockEffect, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return BlockEffect{}, false
	}
	pkgPath := fn.Pkg().Path()
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	recv := ""
	if sig != nil && sig.Recv() != nil {
		recv = namedRecvName(sig.Recv().Type())
	}
	detail := fn.Pkg().Name() + "." + name
	if recv != "" {
		detail = "(*" + recv + ")." + name
	}
	switch pkgPath {
	case "time":
		if name == "Sleep" {
			return BlockEffect{Kind: "sleep", Detail: "time.Sleep"}, true
		}
	case "sync":
		// Cond.Wait is deliberately NOT here: it releases its Locker
		// while parked, which is exactly how latch protocols wait for
		// in-flight I/O to settle — flagging it would ban condition
		// variables under latches, their entire purpose.
		if name == "Wait" && recv == "WaitGroup" {
			return BlockEffect{Kind: "wait", Detail: detail}, true
		}
	case "os":
		if recv == "File" {
			switch name {
			case "Read", "ReadAt", "Write", "WriteAt", "Sync", "Truncate":
				return BlockEffect{Kind: "file-io", Detail: detail}, true
			}
		}
		switch name {
		case "Open", "OpenFile", "Create", "ReadFile", "WriteFile", "Remove", "RemoveAll", "Rename", "Mkdir", "MkdirAll", "ReadDir":
			return BlockEffect{Kind: "file-io", Detail: detail}, true
		}
	case "net":
		return BlockEffect{Kind: "net-io", Detail: detail}, true
	}
	// Store-shaped page I/O and durability barriers, wherever the
	// Store-like type is declared (matched by method name + receiver so
	// fixtures with their own Store shapes are covered too).
	if recv != "" {
		switch name {
		case "ReadPage", "WritePage", "AppendPage":
			return BlockEffect{Kind: "store-io", Detail: detail}, true
		case "Sync", "Checkpoint":
			if strings.HasSuffix(pkgPath, "internal/storage") || recvHasPageIO(sig) {
				return BlockEffect{Kind: "wal-sync", Detail: detail}, true
			}
		}
	}
	return BlockEffect{}, false
}

// recvHasPageIO reports whether the method's receiver type also has a
// ReadPage or WritePage method — the structural mark of a Store-shaped
// type, so a fixture's `Sync` counts without importing the real
// storage package.
func recvHasPageIO(sig *types.Signature) bool {
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	return methodSig(t, "ReadPage") != nil || methodSig(t, "WritePage") != nil
}

// selectIsGuarded reports whether the select statement cannot block
// forever on its comm cases: it has a default clause, or one case
// receives from a done-shaped channel (a `Done()`-style call, a
// `chan struct{}`, or `time.After`).
func selectIsGuarded(info *types.Info, sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default clause
		}
		var recv ast.Expr
		switch c := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := c.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				recv = u.X
			}
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				if u, ok := c.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					recv = u.X
				}
			}
		}
		if recv == nil {
			continue
		}
		if isDoneChan(info, recv) {
			return true
		}
	}
	return false
}

// isDoneChan matches done/ctx-shaped channel expressions: a call to a
// method named Done, a call to time.After, or any expression of type
// chan struct{} / <-chan struct{}.
func isDoneChan(info *types.Info, x ast.Expr) bool {
	x = ast.Unparen(x)
	if call, ok := x.(*ast.CallExpr); ok {
		if fn := calleeFunc(info, call); fn != nil {
			if fn.Name() == "Done" {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "time" && (fn.Name() == "After" || fn.Name() == "Tick") {
				return true
			}
		}
	}
	if tv, ok := info.Types[x]; ok {
		if ch, ok := tv.Type.Underlying().(*types.Chan); ok {
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true
			}
		}
	}
	return false
}

// paramIndex resolves an expression to the 0-based index of the
// function parameter it names directly, or -1 (fields, locals, and
// captured variables do not qualify).
func paramIndex(pkg *Package, decl *ast.FuncDecl, x ast.Expr) int {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok || decl == nil || decl.Type.Params == nil {
		return -1
	}
	obj, _ := pkg.Info.Uses[id].(*types.Var)
	if obj == nil {
		return -1
	}
	idx := 0
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if def, _ := pkg.Info.Defs[name].(*types.Var); def == obj {
				return idx
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	return -1
}

func exprString(x ast.Expr) string {
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	default:
		return "chan"
	}
}
