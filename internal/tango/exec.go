// Package tango is the temporal middleware façade: it owns the
// connection to the DBMS, the statistics collector, the cost
// estimator, the optimizer, and the execution engine, and exposes the
// public API a client application uses to run temporal queries.
package tango

import (
	"fmt"
	"runtime"

	"tango/internal/algebra"
	"tango/internal/client"
	"tango/internal/planck"
	"tango/internal/rel"
	"tango/internal/sqlgen"
	"tango/internal/storage"
	"tango/internal/telemetry"
	"tango/internal/types"
	"tango/internal/xxl"
)

// Executor turns a validated physical plan (an algebra tree with
// transfer operators) into a pipelined iterator: DBMS-resident parts
// are translated to SQL and pulled through TRANSFER^M; middleware
// parts run on the XXL algorithms.
type Executor struct {
	Conn *client.Conn
	Cat  algebra.Catalog
	// Hint pins the DBMS join method in generated SQL (Query 4 uses
	// this the way the paper uses Oracle hints).
	Hint string
	// UseInserts makes TRANSFER^D take the conventional per-row INSERT
	// path instead of the bulk loader (ablation).
	UseInserts bool
	// ShareTransfers enables the §7 refinement: identical T^M
	// statements within one plan are issued once and their result is
	// shared by all consumers.
	ShareTransfers bool
	// CheckPlans enables the planck debug validator: every plan is
	// checked against the schema-propagation, sort-order, and
	// transfer-placement invariants before building, and the built
	// iterator's schema is asserted against the algebra's derivation
	// afterwards. The bench harness keeps this on for all tests.
	CheckPlans bool
	// Parallelism bounds the worker fan-out of the middleware
	// operators: parallel SORT^M run generation, partitioned TAGGR^M
	// and merge joins, and double-buffered T^M prefetching. 0 resolves
	// to runtime.GOMAXPROCS(0); 1 forces the sequential algorithms.
	// Results are tuple-for-tuple identical at any setting — every
	// parallel operator preserves the sequential output order.
	Parallelism int
	// SortMemory overrides the middleware sort's in-memory run size in
	// tuples (the paper's middleware memory budget); 0 keeps
	// xxl.DefaultSortMemory. Smaller budgets spill more runs, which the
	// parallel sort generates in the background while the input drain
	// continues.
	SortMemory int

	// Metrics, when set, enables per-operator instrumentation and
	// flushes the measured operator tree into the registry after each
	// run (series under engine="mw").
	Metrics *telemetry.Registry
	// Analyze enables per-operator instrumentation even without a
	// registry, so ExecStats is populated (EXPLAIN ANALYZE).
	Analyze bool
	// Trace, when set, receives build/execute/transfer child spans for
	// the query-lifecycle trace.
	Trace *telemetry.Span
	// IOProbe, when set, snapshots the engine's I/O counters around
	// execution so the execute span carries per-query disk and
	// buffer-pool deltas (wired by in-process harnesses that can reach
	// the DBMS instance).
	IOProbe func() (storage.IOStats, storage.PoolStats)
	// WALProbe, when set, snapshots the durable store's WAL counters
	// (bytes, records) around execution so the execute span and the
	// per-session accounting carry the query's redo volume.
	WALProbe func() (int64, int64)

	transfersM []*xxl.TransferM
	transfersD []*xxl.TransferD
	shared     map[string]*xxl.SharedSource
	sorts      []*xxl.Sort
	root       *telemetry.Iter
	parStats   []xxl.ParallelStats
}

// par resolves the effective worker bound.
func (e *Executor) par() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// observeParallel collects one operator's parallel shape (workers,
// partitions, skew) for the execute span and exports it as registry
// series. Callbacks fire on the goroutine driving the query.
func (e *Executor) observeParallel(s xxl.ParallelStats) {
	e.parStats = append(e.parStats, s)
	if e.Metrics == nil {
		return
	}
	l := telemetry.Labels{"op": s.Op}
	e.Metrics.Gauge("tango_parallel_workers", l).Set(float64(s.Workers))
	e.Metrics.Histogram("tango_parallel_partitions", l, telemetry.CountBuckets).Observe(float64(s.Partitions))
	e.Metrics.Gauge("tango_parallel_skew_last", l).Set(s.Skew())
	e.Metrics.Counter("tango_parallel_rows_total", l).Add(s.Rows)
}

// Build compiles the plan into an iterator. The plan root must be
// middleware-resident (a complete plan always has a T^M at its root).
func (e *Executor) Build(plan *algebra.Node) (rel.Iterator, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if plan.Loc() != algebra.LocMW {
		return nil, fmt.Errorf("tango: plan root must be middleware-resident (add a T^M)")
	}
	if e.CheckPlans {
		if err := planck.Check(plan, e.Cat); err != nil {
			return nil, fmt.Errorf("tango: plan check before build: %w", err)
		}
	}
	e.transfersM = nil
	e.transfersD = nil
	e.shared = map[string]*xxl.SharedSource{}
	e.sorts = nil
	e.root = nil
	e.parStats = nil
	it, err := e.buildMW(plan)
	if err != nil {
		return nil, err
	}
	if e.CheckPlans {
		if cerr := planck.CheckIterator(plan, e.Cat, it.Schema()); cerr != nil {
			_ = it.Close() // not yet opened; release eagerly-built state
			return nil, fmt.Errorf("tango: plan check after build: %w", cerr)
		}
	}
	return it, nil
}

// Run builds and drains the plan, returning the materialized result.
// The executor's trace span is pushed onto the connection for the
// duration, so every wire op of the run carries the query's trace
// context across to the DBMS.
func (e *Executor) Run(plan *algebra.Node) (*rel.Relation, error) {
	pop := e.Conn.PushTrace(e.Trace)
	defer pop()
	sb := e.Trace.Child("build")
	it, err := e.Build(plan)
	sb.Finish()
	if err != nil {
		return nil, err
	}
	se := e.Trace.Child("execute")
	var ioBase storage.IOStats
	var poolBase storage.PoolStats
	if e.IOProbe != nil {
		ioBase, poolBase = e.IOProbe()
	}
	var walBase, walRecBase int64
	if e.WALProbe != nil {
		walBase, walRecBase = e.WALProbe()
	}
	out, err := rel.Drain(it)
	if cerr := it.Close(); err == nil {
		err = cerr
	}
	if out != nil {
		se.SetInt("rows", int64(out.Cardinality()))
		se.SetInt("bytes", int64(out.ByteSize()))
	}
	if e.IOProbe != nil {
		io, pool := e.IOProbe()
		dio, dpool := io.Sub(ioBase), pool.Sub(poolBase)
		se.SetInt("disk_reads", dio.Reads)
		se.SetInt("disk_writes", dio.Writes)
		se.SetInt("pool_hits", dpool.Hits)
		se.SetInt("pool_misses", dpool.Misses)
		se.SetInt("pool_evictions", dpool.Evictions)
		e.Conn.AddSessionStat("pool_hits", dpool.Hits)
		e.Conn.AddSessionStat("pool_misses", dpool.Misses)
		e.Conn.AddSessionStat("pool_evictions", dpool.Evictions)
	}
	if e.WALProbe != nil {
		wb, wr := e.WALProbe()
		se.SetInt("wal_bytes", wb-walBase)
		se.SetInt("wal_records", wr-walRecBase)
		e.Conn.AddSessionStat("wal_bytes", wb-walBase)
	}
	var spill int64
	for _, s := range e.sorts {
		spill += s.SpilledBytes()
	}
	if spill > 0 {
		se.SetInt("spill_bytes", spill)
		e.Conn.AddSessionStat("spill_bytes", spill)
	}
	var tempBytes int64
	for _, td := range e.transfersD {
		tempBytes += td.Feedback().Bytes
	}
	if tempBytes > 0 {
		se.SetInt("temp_bytes", tempBytes)
		e.Conn.AddSessionStat("temp_bytes", tempBytes)
	}
	for _, fb := range e.Feedback() {
		c := se.AddChild("transfer", fb.Elapsed)
		c.SetInt("rows", fb.Rows)
		c.SetInt("bytes", fb.Bytes)
		c.SetInt("batches", fb.Batches)
		c.Set("sql", abbreviate(fb.SQL, 48))
	}
	for _, ps := range e.parStats {
		c := se.AddChild("parallel", 0)
		c.Set("op", ps.Op)
		c.SetInt("workers", int64(ps.Workers))
		c.SetInt("partitions", int64(ps.Partitions))
		c.SetFloat("skew", ps.Skew())
	}
	se.Finish()
	if e.Metrics != nil && e.root != nil {
		telemetry.RecordOpStats(e.Metrics, "mw", e.root.Stats())
	}
	return out, err
}

// ExecStats returns the measured operator tree of the last run, or nil
// when instrumentation was disabled (neither Metrics nor Analyze set).
// Valid after the iterator is drained and closed.
func (e *Executor) ExecStats() *telemetry.OpStats {
	if e.root == nil {
		return nil
	}
	return e.root.Stats()
}

// Feedback returns the transfer statistics observed by the last run
// (valid after the iterator is drained and closed). Used to adapt the
// cost factors.
func (e *Executor) Feedback() []client.Feedback {
	var out []client.Feedback
	for _, t := range e.transfersM {
		out = append(out, t.Feedback())
	}
	for _, t := range e.transfersD {
		out = append(out, t.Feedback())
	}
	return out
}

func (e *Executor) instrumented() bool { return e.Analyze || e.Metrics != nil }

// instrument wraps a middleware operator with telemetry, labeling it
// in the paper's notation (TAggr^M, TJoin^M, TM, TD) and linking the
// already-instrumented inputs as children in the stats tree. The plan
// node is attached so the adaptive cost loop can match measurements
// back to estimates. The last wrapper built is the plan root (buildMW
// wraps bottom-up).
func (e *Executor) instrument(n *algebra.Node, it rel.Iterator, inputs ...rel.Iterator) rel.Iterator {
	if !e.instrumented() {
		return it
	}
	label := n.Op.String() + "^M"
	switch n.Op {
	case algebra.OpTM:
		label = "TM"
	case algebra.OpTD:
		label = "TD"
	}
	w := telemetry.Instrument(label, n, it, inputs...)
	e.root = w
	return w
}

func (e *Executor) buildMW(n *algebra.Node) (rel.Iterator, error) {
	switch n.Op {
	case algebra.OpTM:
		return e.buildTM(n)

	case algebra.OpSelect:
		in, err := e.buildMW(n.Left)
		if err != nil {
			return nil, err
		}
		f, err := xxl.NewFilter(in, n.Pred)
		if err != nil {
			return nil, err
		}
		return e.instrument(n, f, in), nil

	case algebra.OpProject:
		in, err := e.buildMW(n.Left)
		if err != nil {
			return nil, err
		}
		inSchema := in.Schema()
		outSchema, err := n.Schema(e.Cat)
		if err != nil {
			return nil, err
		}
		idx := make([]int, len(n.Cols))
		for i, pc := range n.Cols {
			j := inSchema.ColumnIndex(pc.Src)
			if j < 0 {
				return nil, fmt.Errorf("tango: project: no column %q in %v", pc.Src, inSchema.Names())
			}
			idx[i] = j
		}
		return e.instrument(n, xxl.NewProject(in, idx, outSchema), in), nil

	case algebra.OpSort:
		in, err := e.buildMW(n.Left)
		if err != nil {
			return nil, err
		}
		keys, err := colIndexes(in.Schema(), n.Keys)
		if err != nil {
			return nil, err
		}
		srt := xxl.NewSort(in, keys)
		e.sorts = append(e.sorts, srt)
		if e.SortMemory > 0 {
			srt.MemTuples = e.SortMemory
		}
		if p := e.par(); p > 1 {
			srt.Parallelism = p
			srt.OnStats = e.observeParallel
		}
		return e.instrument(n, srt, in), nil

	case algebra.OpJoin, algebra.OpTJoin:
		left, err := e.buildMW(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.buildMW(n.Right)
		if err != nil {
			return nil, err
		}
		lkeys, err := colIndexes(left.Schema(), n.LeftCols)
		if err != nil {
			return nil, err
		}
		rkeys, err := colIndexes(right.Schema(), n.RightCols)
		if err != nil {
			return nil, err
		}
		if n.Op == algebra.OpJoin {
			if p := e.par(); p > 1 {
				pj := xxl.NewPMergeJoin(left, right, lkeys, rkeys, p)
				pj.OnStats = e.observeParallel
				return e.instrument(n, pj, left, right), nil
			}
			return e.instrument(n, xxl.NewMergeJoin(left, right, lkeys, rkeys), left, right), nil
		}
		lt1, lt2 := algebra.TimeColumns(left.Schema())
		rt1, rt2 := algebra.TimeColumns(right.Schema())
		if lt1 < 0 || lt2 < 0 || rt1 < 0 || rt2 < 0 {
			return nil, fmt.Errorf("tango: temporal join inputs lack T1/T2")
		}
		if p := e.par(); p > 1 {
			ptj := xxl.NewPTJoin(left, right, lkeys, rkeys, lt1, lt2, rt1, rt2, p)
			ptj.OnStats = e.observeParallel
			return e.instrument(n, ptj, left, right), nil
		}
		tj := xxl.NewTJoin(left, right, lkeys, rkeys, lt1, lt2, rt1, rt2)
		return e.instrument(n, tj, left, right), nil

	case algebra.OpTAggr:
		in, err := e.buildMW(n.Left)
		if err != nil {
			return nil, err
		}
		inSchema := in.Schema()
		groupBy, err := colIndexes(inSchema, n.GroupBy)
		if err != nil {
			return nil, err
		}
		t1, t2 := algebra.TimeColumns(inSchema)
		if t1 < 0 || t2 < 0 {
			return nil, fmt.Errorf("tango: taggr input lacks T1/T2: %v", inSchema.Names())
		}
		outSchema, err := n.Schema(e.Cat)
		if err != nil {
			return nil, err
		}
		aggs := make([]xxl.AggSpec, len(n.Aggs))
		for i, a := range n.Aggs {
			spec := xxl.AggSpec{Kind: xxl.AggKind(a.Fn)}
			if a.Fn != "COUNT" {
				j := inSchema.ColumnIndex(a.Col)
				if j < 0 {
					return nil, fmt.Errorf("tango: taggr: no column %q", a.Col)
				}
				spec.Col = j
			}
			aggs[i] = spec
		}
		if p := e.par(); p > 1 {
			pta := xxl.NewPTAggr(in, groupBy, t1, t2, aggs, outSchema, p)
			pta.OnStats = e.observeParallel
			return e.instrument(n, pta, in), nil
		}
		ta := xxl.NewTAggr(in, groupBy, t1, t2, aggs, outSchema)
		return e.instrument(n, ta, in), nil

	case algebra.OpDupElim:
		in, err := e.buildMW(n.Left)
		if err != nil {
			return nil, err
		}
		return e.instrument(n, xxl.NewDupElim(in), in), nil

	case algebra.OpCoalesce:
		in, err := e.buildMW(n.Left)
		if err != nil {
			return nil, err
		}
		t1, t2 := algebra.TimeColumns(in.Schema())
		if t1 < 0 || t2 < 0 {
			return nil, fmt.Errorf("tango: coalesce input lacks T1/T2")
		}
		return e.instrument(n, xxl.NewCoalesce(in, t1, t2), in), nil

	default:
		return nil, fmt.Errorf("tango: operator %v cannot run in the middleware", n.Op)
	}
}

// buildTM translates the DBMS subtree under a T^M to SQL, wiring in
// TRANSFER^D dependencies for any middleware-resident islands below.
func (e *Executor) buildTM(n *algebra.Node) (rel.Iterator, error) {
	gen := &sqlgen.Gen{Cat: e.Cat, TempTables: map[*algebra.Node]string{}, Hint: e.Hint}
	var deps []*xxl.TransferD
	var tdIters []rel.Iterator
	// Find T^D nodes in the DBMS region (stop descending at them).
	var visit func(m *algebra.Node) error
	visit = func(m *algebra.Node) error {
		if m == nil {
			return nil
		}
		if m.Op == algebra.OpTD {
			in, err := e.buildMW(m.Left)
			if err != nil {
				return err
			}
			// The T^D wrapper measures the transfer's read side (the
			// rows shipped to the DBMS) and links the middleware island
			// into the stats tree as a child of the enclosing T^M.
			in = e.instrument(m, in, in)
			tdIters = append(tdIters, in)
			name := e.Conn.TempName()
			td := xxl.NewTransferD(e.Conn, in, name)
			td.UseInserts = e.UseInserts
			gen.TempTables[m] = name
			deps = append(deps, td)
			e.transfersD = append(e.transfersD, td)
			return nil
		}
		if err := visit(m.Left); err != nil {
			return err
		}
		return visit(m.Right)
	}
	if err := visit(n.Left); err != nil {
		return nil, err
	}
	sql, _, err := gen.SQL(n.Left)
	if err != nil {
		return nil, err
	}
	schema, err := n.Schema(e.Cat)
	if err != nil {
		return nil, err
	}
	tm := xxl.NewTransferM(e.Conn, sql, schema, deps...)
	if p := e.par(); p > 1 {
		// Pipelined fetch: keep up to p FETCH round trips in flight so
		// the wire latency of consecutive batches overlaps instead of
		// accumulating.
		tm.Window = p
	}
	e.transfersM = append(e.transfersM, tm)
	// §7 refinement: identical transfer statements (no T^D
	// dependencies) are issued once per plan execution.
	if e.ShareTransfers && len(deps) == 0 {
		if src, ok := e.shared[sql]; ok {
			return e.instrument(n, src.Reader()), nil
		}
		src := xxl.NewSharedSource(tm)
		e.shared[sql] = src
		return e.instrument(n, src.Reader()), nil
	}
	var it rel.Iterator = tm
	if e.par() > 1 {
		// Double-buffer the transfer: a worker prefetches the next wire
		// batch while the middleware consumes the current one, hiding
		// round-trip latency. Shared sources skip this — they
		// materialize once anyway.
		pf := xxl.NewPrefetch(tm)
		pf.OnStats = e.observeParallel
		it = pf
	}
	return e.instrument(n, it, tdIters...), nil
}

func colIndexes(s types.Schema, names []string) ([]int, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		j := s.ColumnIndex(n)
		if j < 0 {
			return nil, fmt.Errorf("tango: no column %q in %v", n, s.Names())
		}
		idx[i] = j
	}
	return idx, nil
}

// abbreviate shortens a SQL statement for span attributes.
func abbreviate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// ConnCatalog adapts a client connection to the algebra's Catalog
// interface.
type ConnCatalog struct{ Conn *client.Conn }

// TableSchema fetches a base-table schema from the DBMS.
func (c ConnCatalog) TableSchema(name string) (types.Schema, error) {
	return c.Conn.TableSchema(name)
}
