// Package cost implements the middleware's Cost Estimator: the cost
// formulas of Figure 6 of the paper (plus the "generic" DBMS formulas
// for scan, sort, and join), the cost factors they weigh statistics
// with, Du et al.-style calibration that derives the factors from
// sample runs, and the adaptive feedback loop that refines the
// transfer factors from measured execution (the "adaptable" in the
// paper's title). All costs are in microseconds, the paper's unit.
package cost

import (
	"fmt"
	"math"

	"tango/internal/algebra"
	"tango/internal/stats"
)

// Factors are the calibration constants (µs per byte unless noted).
// The paper's p_tm, p_td, p_sem, p_taggm1, p_taggm2, p_taggd1,
// p_taggd2 appear under those names; the rest parameterize the generic
// DBMS formulas and the remaining middleware algorithms.
type Factors struct {
	TM      float64 // p_tm: TRANSFER^M per byte
	TD      float64 // p_td: TRANSFER^D per byte
	SelM    float64 // p_sem: FILTER^M per byte per predicate term
	TAggrM1 float64 // p_taggm1: TAGGR^M per input byte
	TAggrM2 float64 // p_taggm2: TAGGR^M per output byte
	TAggrD1 float64 // p_taggd1: TAGGR^D per input byte
	TAggrD2 float64 // p_taggd2: TAGGR^D per output byte
	SortM   float64 // SORT^M per byte per log2(card)
	SortD   float64 // generic DBMS sort per byte per log2(card)
	JoinM   float64 // JOIN^M / TJOIN^M per byte moved (in+out)
	JoinD   float64 // generic DBMS join per byte moved
	ScanD   float64 // full table scan per byte
	DupM    float64 // DUPELIM^M per byte
	CoalM   float64 // COALESCE^M per byte
}

// DefaultFactors are rough priors used before calibration (a modern
// machine moves roughly a byte per few nanoseconds through these code
// paths; transfers are an order of magnitude more expensive than
// scans).
func DefaultFactors() Factors {
	return Factors{
		TM: 0.02, TD: 0.03,
		SelM:    0.002,
		TAggrM1: 0.01, TAggrM2: 0.01,
		TAggrD1: 0.2, TAggrD2: 0.2,
		SortM: 0.001, SortD: 0.001,
		JoinM: 0.005, JoinD: 0.004,
		ScanD: 0.002,
		DupM:  0.004, CoalM: 0.003,
	}
}

// Model prices plans: statistics come from the estimator, weights from
// the factors.
type Model struct {
	F   Factors
	Est *stats.Estimator
}

// NewModel builds a model with default factors.
func NewModel(est *stats.Estimator) *Model {
	return &Model{F: DefaultFactors(), Est: est}
}

// PlanCost returns the estimated cost (µs) of the whole plan: the sum
// of the per-operator costs given the derived statistics.
func (m *Model) PlanCost(n *algebra.Node) (float64, error) {
	if n == nil {
		return 0, nil
	}
	c, err := m.opCost(n)
	if err != nil {
		return 0, err
	}
	l, err := m.PlanCost(n.Left)
	if err != nil {
		return 0, err
	}
	r, err := m.PlanCost(n.Right)
	if err != nil {
		return 0, err
	}
	return c + l + r, nil
}

// opCost prices one operator (excluding its inputs).
func (m *Model) opCost(n *algebra.Node) (float64, error) {
	inStats := func() (*stats.RelStats, error) { return m.Est.Estimate(n.Left) }
	outStats := func() (*stats.RelStats, error) { return m.Est.Estimate(n) }

	switch n.Op {
	case algebra.OpScan:
		out, err := outStats()
		if err != nil {
			return 0, err
		}
		return m.F.ScanD * out.Size(), nil

	case algebra.OpTM:
		in, err := inStats()
		if err != nil {
			return 0, err
		}
		return m.F.TM * in.Size(), nil

	case algebra.OpTD:
		in, err := inStats()
		if err != nil {
			return 0, err
		}
		return m.F.TD * in.Size(), nil

	case algebra.OpSelect:
		if n.Loc() == algebra.LocDBMS {
			return 0, nil // the paper assumes zero-cost DBMS selection
		}
		in, err := inStats()
		if err != nil {
			return 0, err
		}
		return m.F.SelM * predWeight(n.Pred) * in.Size(), nil

	case algebra.OpProject:
		return 0, nil // zero output-forming cost for projection

	case algebra.OpSort:
		in, err := inStats()
		if err != nil {
			return 0, err
		}
		f := m.F.SortD
		if n.Loc() == algebra.LocMW {
			f = m.F.SortM
		}
		return f * in.Size() * log2(in.Card), nil

	case algebra.OpJoin, algebra.OpTJoin:
		l, err := m.Est.Estimate(n.Left)
		if err != nil {
			return 0, err
		}
		r, err := m.Est.Estimate(n.Right)
		if err != nil {
			return 0, err
		}
		out, err := outStats()
		if err != nil {
			return 0, err
		}
		f := m.F.JoinD
		if n.Loc() == algebra.LocMW {
			f = m.F.JoinM
		}
		return f * (l.Size() + r.Size() + out.Size()), nil

	case algebra.OpTAggr:
		in, err := inStats()
		if err != nil {
			return 0, err
		}
		out, err := outStats()
		if err != nil {
			return 0, err
		}
		if n.Loc() == algebra.LocMW {
			// Figure 6: internal second sort + linear terms.
			internalSort := m.F.SortM * in.Size() * log2(in.Card)
			return internalSort + m.F.TAggrM1*in.Size() + m.F.TAggrM2*out.Size(), nil
		}
		return m.F.TAggrD1*in.Size() + m.F.TAggrD2*out.Size(), nil

	case algebra.OpDupElim:
		in, err := inStats()
		if err != nil {
			return 0, err
		}
		if n.Loc() == algebra.LocMW {
			return m.F.DupM * in.Size(), nil
		}
		return m.F.SortD * in.Size() * log2(in.Card), nil

	case algebra.OpCoalesce:
		if n.Loc() == algebra.LocDBMS {
			// Coalescing has no SQL translation; a plan that leaves it
			// in the DBMS is not executable.
			return math.Inf(1), nil
		}
		in, err := inStats()
		if err != nil {
			return 0, err
		}
		return m.F.CoalM * in.Size(), nil

	default:
		return 0, fmt.Errorf("cost: unknown op %v", n.Op)
	}
}

// predWeight is the paper's f(P): a coefficient for the selection
// condition — here the number of atomic predicate terms.
func predWeight(pred interface{ String() string }) float64 {
	if pred == nil {
		return 1
	}
	// Count comparison-ish tokens crudely but deterministically by
	// splitting on AND/OR.
	s := pred.String()
	terms := 1.0
	for i := 0; i+4 < len(s); i++ {
		if s[i:i+5] == " AND " || (i+4 <= len(s) && s[i:i+4] == " OR ") {
			terms++
		}
	}
	return terms
}

func log2(card float64) float64 {
	if card < 2 {
		return 1
	}
	return math.Log2(card)
}
