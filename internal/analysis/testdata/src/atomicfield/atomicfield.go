// Package atomicfield seeds the mixed atomic/plain access pattern the
// atomicfield analyzer exists to catch: the same struct field touched
// through sync/atomic in one place and with plain loads or stores in
// another.
package atomicfield

import "sync/atomic"

type counter struct {
	n    int64 // mixed: atomic in inc, plain in read/reset
	hot  int64 // consistent: always atomic
	cold int64 // consistent: never atomic
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return c.n // want `field n is accessed with sync/atomic at .* but plainly here`
}

func (c *counter) reset() {
	c.n = 0 // want `field n is accessed with sync/atomic at .* but plainly here`
}

func (c *counter) incHot() {
	atomic.AddInt64(&c.hot, 1)
}

func (c *counter) loadHot() int64 {
	return atomic.LoadInt64(&c.hot)
}

func (c *counter) bumpCold() {
	c.cold++
}

// newCounter initializes n before the value is shared; the directive
// records why the plain store is safe, and the harness verifies the
// finding stays quiet.
func newCounter() *counter {
	c := &counter{}
	//lint:ignore atomicfield constructor: the value is not shared yet
	c.n = 42
	return c
}
