package analysis

import (
	"go/token"
	"strings"
)

// LockIO forbids blocking operations while a latch-class lock is
// held. A latch (`//tango:lock-order <class> latch` on the field) is
// a short in-memory critical section — the page-latch / session-table
// / metrics-registry discipline — and nothing that can wait on the
// outside world may run under one: no store or file I/O, no WAL
// fsync, no wire round trip, no unbounded channel send/receive, no
// sleep. The canonical positive pattern is the WAL group commit:
// hold the latch, append to the in-memory buffer, release, THEN Sync.
//
// The check is interprocedural: a call made under a latch is charged
// with every blocking effect in its transitive summary, and the
// diagnostic carries the witness call path. Channel operations inside
// a select with a `default` (or a done/ctx case) are non-blocking and
// exempt. Ordered (non-latch) classes — the store lock that
// serializes durable I/O, the cursor lock that serializes fetches —
// are deliberately out of scope: blocking under them is their job.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc:  "check that no blocking operation is reachable while a latch-class lock is held",
	Run:  runLockIO,
}

func runLockIO(pass *Pass) error {
	for _, ff := range pass.facts.order {
		ff := ff
		simulateHeld(ff, func(ev funcEvent, held []heldLock) {
			latch, latchPos := firstHeldLatch(pass, held)
			if latch == "" {
				return
			}
			switch ev.kind {
			case evBlock:
				pass.Reportf(ev.pos, "%s performs blocking %s (%s) while latch-class lock %q is held (since line %d): release the latch before blocking",
					ff.name, ev.block.Kind, ev.block.Detail, latch, pass.Fset.Position(latchPos).Line)
			case evChanOp:
				if ev.guarded {
					return
				}
				op := "receive from"
				if ev.send {
					op = "send on"
				}
				pass.Reportf(ev.pos, "%s performs blocking channel %s %q while latch-class lock %q is held (since line %d): use a buffered/guarded send or release the latch",
					ff.name, op, ev.block.Detail, latch, pass.Fset.Position(latchPos).Line)
			case evCall:
				eff := pass.index.effects(ev.calleeKey)
				if eff == nil {
					return
				}
				for _, b := range eff.Blocks {
					// A block whose Unlocked set covers the held latch runs
					// hand-over-hand: the callee provably releases the
					// caller's latch before blocking and relocks after.
					if containsClass(b.Unlocked, latch) {
						continue
					}
					pass.Reportf(ev.pos, "%s calls into blocking %s (%s, via %s) while latch-class lock %q is held (since line %d)",
						ff.name, b.Kind, b.Detail, strings.Join(b.Path, " -> "), latch, pass.Fset.Position(latchPos).Line)
					return
				}
			}
		})
	}
	return nil
}

// containsClass reports whether the sorted class list contains c.
func containsClass(list []string, c string) bool {
	for _, k := range list {
		if k == c {
			return true
		}
	}
	return false
}

// firstHeldLatch returns the first latch-marked class in the held set.
func firstHeldLatch(pass *Pass, held []heldLock) (string, token.Pos) {
	for _, h := range held {
		if pass.index.isLatch(h.class) {
			return h.class, h.pos
		}
	}
	return "", token.NoPos
}
