// Package algebra defines the middleware's query algebra: the regular
// operators (scan, selection, projection, sort, join) and the temporal
// operators (temporal join, temporal aggregation, coalescing), plus
// the two transfer operators T^M (DBMS → middleware) and T^D
// (middleware → DBMS) that partition a plan between the two engines.
//
// A query plan is a tree of Nodes. Operators below a T^M (down to the
// leaves or to a T^D) execute in the DBMS and are translated to SQL;
// operators above execute in the middleware. Every complete plan has a
// T^M at the root: results are always delivered to the middleware.
package algebra

import (
	"fmt"
	"strings"

	"tango/internal/sqlast"
	"tango/internal/types"
)

// Op enumerates the algebra operators.
type Op uint8

// Operators.
const (
	OpScan     Op = iota // base relation
	OpSelect             // σ_P
	OpProject            // π_f1..fn (with optional renaming)
	OpSort               // sort_A
	OpJoin               // ⋈ (equi-join)
	OpTJoin              // ⋈^T (equi-join + period overlap, periods intersected)
	OpTAggr              // ξ^T (temporal aggregation)
	OpDupElim            // rdup
	OpCoalesce           // coal (merge value-equivalent adjacent periods)
	OpTM                 // T^M transfer DBMS → middleware
	OpTD                 // T^D transfer middleware → DBMS
)

var opNames = map[Op]string{
	OpScan: "Scan", OpSelect: "Select", OpProject: "Project", OpSort: "Sort",
	OpJoin: "Join", OpTJoin: "TJoin", OpTAggr: "TAggr", OpDupElim: "DupElim",
	OpCoalesce: "Coalesce", OpTM: "TM", OpTD: "TD",
}

// String returns the operator name.
func (op Op) String() string { return opNames[op] }

// Location says where an operator executes.
type Location uint8

// Locations.
const (
	LocDBMS Location = iota
	LocMW
)

// String returns "DBMS" or "MW".
func (l Location) String() string {
	if l == LocMW {
		return "MW"
	}
	return "DBMS"
}

// Agg is one aggregate computed by temporal aggregation. The output
// column is named Fn + "of" + Col (e.g. COUNTofPosID, following the
// paper's example).
type Agg struct {
	Fn  string // COUNT, SUM, AVG, MIN, MAX
	Col string // aggregated attribute
}

// OutName returns the result column name.
func (a Agg) OutName() string { return a.Fn + "of" + unqualify(a.Col) }

// ProjCol is one projection output: source column (or the result of
// keeping a column under a new name).
type ProjCol struct {
	Src string // input column name
	As  string // output name; "" keeps the (unqualified) source name
}

// Out returns the output column name.
func (p ProjCol) Out() string {
	if p.As != "" {
		return p.As
	}
	return unqualify(p.Src)
}

// Node is one operator in a query plan. Exactly the fields relevant to
// Op are set. Plans are trees (no sharing); use Clone before rewriting.
type Node struct {
	Op    Op
	Left  *Node // nil for Scan
	Right *Node // only joins

	// Scan
	Table string
	Alias string // optional; qualifies the scan's column names

	// Select
	Pred sqlast.Expr

	// Project
	Cols []ProjCol

	// Sort
	Keys []string

	// Join / TJoin equi condition: LeftCols[i] = RightCols[i]
	LeftCols  []string
	RightCols []string

	// TAggr
	GroupBy []string
	Aggs    []Agg
}

// --- Constructors ---

// Scan reads a base relation; alias (optional) qualifies columns.
func Scan(table, alias string) *Node { return &Node{Op: OpScan, Table: table, Alias: alias} }

// Select filters by a predicate.
func Select(in *Node, pred sqlast.Expr) *Node { return &Node{Op: OpSelect, Left: in, Pred: pred} }

// Project keeps (and optionally renames) columns.
func Project(in *Node, cols ...ProjCol) *Node { return &Node{Op: OpProject, Left: in, Cols: cols} }

// ProjectCols keeps columns by name without renaming.
func ProjectCols(in *Node, names ...string) *Node {
	cols := make([]ProjCol, len(names))
	for i, n := range names {
		cols[i] = ProjCol{Src: n, As: n}
	}
	return Project(in, cols...)
}

// Sort orders by the given columns (ascending).
func Sort(in *Node, keys ...string) *Node { return &Node{Op: OpSort, Left: in, Keys: keys} }

// Join is an equi-join on pairwise columns.
func Join(l, r *Node, leftCols, rightCols []string) *Node {
	return &Node{Op: OpJoin, Left: l, Right: r, LeftCols: leftCols, RightCols: rightCols}
}

// TJoin is a temporal equi-join: equality on the column pairs plus
// overlap of the [T1, T2) periods; output periods are intersected.
func TJoin(l, r *Node, leftCols, rightCols []string) *Node {
	return &Node{Op: OpTJoin, Left: l, Right: r, LeftCols: leftCols, RightCols: rightCols}
}

// TAggr is temporal aggregation grouped by the given columns.
func TAggr(in *Node, groupBy []string, aggs ...Agg) *Node {
	return &Node{Op: OpTAggr, Left: in, GroupBy: groupBy, Aggs: aggs}
}

// DupElim removes duplicate tuples.
func DupElim(in *Node) *Node { return &Node{Op: OpDupElim, Left: in} }

// Coalesce merges value-equivalent tuples with adjacent or overlapping
// periods.
func Coalesce(in *Node) *Node { return &Node{Op: OpCoalesce, Left: in} }

// TM transfers the input from the DBMS to the middleware.
func TM(in *Node) *Node { return &Node{Op: OpTM, Left: in} }

// TD transfers the input from the middleware to the DBMS.
func TD(in *Node) *Node { return &Node{Op: OpTD, Left: in} }

// --- Catalog ---

// Catalog resolves base-relation schemas (the middleware gets them
// from the DBMS).
type Catalog interface {
	TableSchema(name string) (types.Schema, error)
}

// --- Schema derivation ---

// Schema computes the output schema of the subtree.
func (n *Node) Schema(cat Catalog) (types.Schema, error) {
	switch n.Op {
	case OpScan:
		s, err := cat.TableSchema(n.Table)
		if err != nil {
			return types.Schema{}, err
		}
		if n.Alias != "" {
			s = s.Qualify(n.Alias)
		}
		return s, nil

	case OpSelect, OpDupElim, OpCoalesce, OpSort, OpTM, OpTD:
		return n.Left.Schema(cat)

	case OpProject:
		in, err := n.Left.Schema(cat)
		if err != nil {
			return types.Schema{}, err
		}
		cols := make([]types.Column, len(n.Cols))
		for i, pc := range n.Cols {
			j := in.ColumnIndex(pc.Src)
			if j < 0 {
				return types.Schema{}, fmt.Errorf("algebra: project: no column %q in %v", pc.Src, in.Names())
			}
			cols[i] = types.Column{Name: pc.Out(), Kind: in.Cols[j].Kind}
		}
		return types.Schema{Cols: cols}, nil

	case OpJoin:
		l, err := n.Left.Schema(cat)
		if err != nil {
			return types.Schema{}, err
		}
		r, err := n.Right.Schema(cat)
		if err != nil {
			return types.Schema{}, err
		}
		return l.Concat(r), nil

	case OpTJoin:
		l, err := n.Left.Schema(cat)
		if err != nil {
			return types.Schema{}, err
		}
		r, err := n.Right.Schema(cat)
		if err != nil {
			return types.Schema{}, err
		}
		// Left keeps all columns (T1/T2 carry the intersected period);
		// the right side loses its time columns.
		lt1, lt2 := timeCols(l)
		if lt1 < 0 || lt2 < 0 {
			return types.Schema{}, fmt.Errorf("algebra: temporal join: left input has no T1/T2 in %v", l.Names())
		}
		rt1, rt2 := timeCols(r)
		if rt1 < 0 || rt2 < 0 {
			return types.Schema{}, fmt.Errorf("algebra: temporal join: right input has no T1/T2 in %v", r.Names())
		}
		cols := append([]types.Column{}, l.Cols...)
		for i, c := range r.Cols {
			if i == rt1 || i == rt2 {
				continue
			}
			cols = append(cols, c)
		}
		return types.Schema{Cols: cols}, nil

	case OpTAggr:
		in, err := n.Left.Schema(cat)
		if err != nil {
			return types.Schema{}, err
		}
		var cols []types.Column
		for _, g := range n.GroupBy {
			j := in.ColumnIndex(g)
			if j < 0 {
				return types.Schema{}, fmt.Errorf("algebra: taggr: no column %q in %v", g, in.Names())
			}
			cols = append(cols, types.Column{Name: unqualify(g), Kind: in.Cols[j].Kind})
		}
		t1, t2 := timeCols(in)
		if t1 < 0 || t2 < 0 {
			return types.Schema{}, fmt.Errorf("algebra: taggr: input has no T1/T2 in %v", in.Names())
		}
		cols = append(cols,
			types.Column{Name: "T1", Kind: in.Cols[t1].Kind},
			types.Column{Name: "T2", Kind: in.Cols[t2].Kind})
		for _, a := range n.Aggs {
			kind := types.KindInt
			switch a.Fn {
			case "AVG":
				kind = types.KindFloat
			case "SUM", "MIN", "MAX":
				j := in.ColumnIndex(a.Col)
				if j < 0 {
					return types.Schema{}, fmt.Errorf("algebra: taggr: no column %q in %v", a.Col, in.Names())
				}
				kind = in.Cols[j].Kind
			}
			cols = append(cols, types.Column{Name: a.OutName(), Kind: kind})
		}
		return types.Schema{Cols: cols}, nil

	default:
		return types.Schema{}, fmt.Errorf("algebra: unknown op %v", n.Op)
	}
}

// timeCols finds the T1 and T2 columns of a schema (unqualified match;
// the first pair found).
func timeCols(s types.Schema) (t1, t2 int) {
	return s.ColumnIndex("T1"), s.ColumnIndex("T2")
}

// TimeColumns exposes timeCols for the execution and sqlgen layers.
func TimeColumns(s types.Schema) (t1, t2 int) { return timeCols(s) }

func unqualify(name string) string {
	if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
		return name[dot+1:]
	}
	return name
}

// Unqualify strips a column qualifier.
func Unqualify(name string) string { return unqualify(name) }

// --- Location ---

// Loc computes the execution location of this node: middleware if the
// nearest transfer below-or-at this node is a T^M, DBMS otherwise.
// Scan leaves are always in the DBMS. The transfers themselves execute
// at the boundary; we assign T^M to the middleware (it pulls rows) and
// T^D to the DBMS (it creates and loads a table).
func (n *Node) Loc() Location {
	switch n.Op {
	case OpScan:
		return LocDBMS
	case OpTM:
		return LocMW
	case OpTD:
		return LocDBMS
	case OpJoin, OpTJoin:
		// Both inputs must agree for a well-formed plan; the left
		// decides (Validate enforces agreement).
		return n.Left.Loc()
	default:
		return n.Left.Loc()
	}
}

// Validate checks structural plan invariants: transfers alternate
// properly and join inputs are co-located.
func (n *Node) Validate() error {
	switch n.Op {
	case OpScan:
		return nil
	case OpTM:
		if n.Left.Loc() != LocDBMS {
			return fmt.Errorf("algebra: T^M over a middleware-resident input")
		}
	case OpTD:
		if n.Left.Loc() != LocMW {
			return fmt.Errorf("algebra: T^D over a DBMS-resident input")
		}
	case OpJoin, OpTJoin:
		if n.Left.Loc() != n.Right.Loc() {
			return fmt.Errorf("algebra: join inputs in different locations (%v vs %v)",
				n.Left.Loc(), n.Right.Loc())
		}
	}
	if n.Left != nil {
		if err := n.Left.Validate(); err != nil {
			return err
		}
	}
	if n.Right != nil {
		if err := n.Right.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// --- Utilities ---

// Clone deep-copies the subtree (expressions are shared: they are
// immutable value trees).
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := *n
	c.Left = n.Left.Clone()
	c.Right = n.Right.Clone()
	c.Cols = append([]ProjCol(nil), n.Cols...)
	c.Keys = append([]string(nil), n.Keys...)
	c.LeftCols = append([]string(nil), n.LeftCols...)
	c.RightCols = append([]string(nil), n.RightCols...)
	c.GroupBy = append([]string(nil), n.GroupBy...)
	c.Aggs = append([]Agg(nil), n.Aggs...)
	return &c
}

// Walk visits the subtree pre-order.
func (n *Node) Walk(fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	n.Left.Walk(fn)
	n.Right.Walk(fn)
}

// Count returns the number of operators in the subtree.
func (n *Node) Count() int {
	c := 0
	n.Walk(func(*Node) { c++ })
	return c
}

// Key returns a canonical string for the subtree, usable as an
// identity for memoization and duplicate-plan detection.
func (n *Node) Key() string {
	var b strings.Builder
	n.writeKey(&b)
	return b.String()
}

func (n *Node) writeKey(b *strings.Builder) {
	if n == nil {
		b.WriteString("·")
		return
	}
	b.WriteString(n.Op.String())
	switch n.Op {
	case OpScan:
		fmt.Fprintf(b, "(%s %s)", n.Table, n.Alias)
		return
	case OpSelect:
		fmt.Fprintf(b, "[%s]", strings.ToUpper(n.Pred.String()))
	case OpProject:
		parts := make([]string, len(n.Cols))
		for i, c := range n.Cols {
			parts[i] = c.Src + ">" + c.Out()
		}
		fmt.Fprintf(b, "[%s]", strings.ToUpper(strings.Join(parts, ",")))
	case OpSort:
		fmt.Fprintf(b, "[%s]", strings.ToUpper(strings.Join(n.Keys, ",")))
	case OpJoin, OpTJoin:
		fmt.Fprintf(b, "[%s=%s]",
			strings.ToUpper(strings.Join(n.LeftCols, ",")),
			strings.ToUpper(strings.Join(n.RightCols, ",")))
	case OpTAggr:
		aggs := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			aggs[i] = a.Fn + "(" + a.Col + ")"
		}
		fmt.Fprintf(b, "[%s;%s]",
			strings.ToUpper(strings.Join(n.GroupBy, ",")),
			strings.ToUpper(strings.Join(aggs, ",")))
	}
	b.WriteString("(")
	n.Left.writeKey(b)
	if n.Right != nil {
		b.WriteString(",")
		n.Right.writeKey(b)
	}
	b.WriteString(")")
}

// String renders the plan as an indented tree with locations, in the
// style of the paper's figures (SORT^D, TAGGR^M, ...).
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	if n == nil {
		return
	}
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Label())
	b.WriteByte('\n')
	n.Left.render(b, depth+1)
	n.Right.render(b, depth+1)
}

// Label is the one-line description of the operator with its location
// superscript.
func (n *Node) Label() string {
	loc := "D"
	if n.Loc() == LocMW {
		loc = "M"
	}
	switch n.Op {
	case OpScan:
		if n.Alias != "" {
			return fmt.Sprintf("SCAN^D %s %s", n.Table, n.Alias)
		}
		return "SCAN^D " + n.Table
	case OpSelect:
		return fmt.Sprintf("FILTER^%s %s", loc, n.Pred)
	case OpProject:
		outs := make([]string, len(n.Cols))
		for i, c := range n.Cols {
			outs[i] = c.Out()
		}
		return fmt.Sprintf("PROJECT^%s %s", loc, strings.Join(outs, ","))
	case OpSort:
		return fmt.Sprintf("SORT^%s %s", loc, strings.Join(n.Keys, ","))
	case OpJoin:
		return fmt.Sprintf("JOIN^%s %s=%s", loc, strings.Join(n.LeftCols, ","), strings.Join(n.RightCols, ","))
	case OpTJoin:
		return fmt.Sprintf("TJOIN^%s %s=%s", loc, strings.Join(n.LeftCols, ","), strings.Join(n.RightCols, ","))
	case OpTAggr:
		aggs := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			aggs[i] = a.Fn + "(" + a.Col + ")"
		}
		return fmt.Sprintf("TAGGR^%s by %s: %s", loc, strings.Join(n.GroupBy, ","), strings.Join(aggs, ","))
	case OpDupElim:
		return "DUPELIM^" + loc
	case OpCoalesce:
		return "COALESCE^" + loc
	case OpTM:
		return "TRANSFER^M"
	case OpTD:
		return "TRANSFER^D"
	}
	return "?"
}
