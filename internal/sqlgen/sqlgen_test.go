package sqlgen

import (
	"strings"
	"testing"

	"tango/internal/algebra"
	"tango/internal/engine"
	"tango/internal/rel"
	"tango/internal/sqlparser"
	"tango/internal/types"
)

// liveCatalog resolves schemas from a real engine so generated SQL can
// be executed and checked.
type liveCatalog struct{ db *engine.DB }

func (c liveCatalog) TableSchema(name string) (types.Schema, error) {
	t, err := c.db.Table(name)
	if err != nil {
		return types.Schema{}, err
	}
	return t.Schema, nil
}

func testDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.Open(engine.Config{})
	for _, sql := range []string{
		"CREATE TABLE POSITION (PosID INTEGER, EmpName VARCHAR(40), PayRate FLOAT, T1 INTEGER, T2 INTEGER)",
		"INSERT INTO POSITION VALUES (1,'Tom',12.0,2,20),(1,'Jane',9.0,5,25),(2,'Tom',12.0,5,10)",
	} {
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	return db
}

// genAndRun translates a plan and executes the SQL on the engine.
func genAndRun(t *testing.T, db *engine.DB, n *algebra.Node) (*rel.Relation, string) {
	t.Helper()
	g := &Gen{Cat: liveCatalog{db}, TempTables: map[*algebra.Node]string{}}
	sql, schema, err := g.SQL(n)
	if err != nil {
		t.Fatalf("sqlgen: %v", err)
	}
	if _, err := sqlparser.Parse(sql); err != nil {
		t.Fatalf("generated SQL does not parse: %v\n%s", err, sql)
	}
	out, err := db.QueryAll(sql)
	if err != nil {
		t.Fatalf("generated SQL fails: %v\n%s", err, sql)
	}
	if out.Schema.Len() != schema.Len() {
		t.Fatalf("schema width %d, declared %d", out.Schema.Len(), schema.Len())
	}
	return out, sql
}

func TestScanDirect(t *testing.T) {
	db := testDB(t)
	out, sql := genAndRun(t, db, algebra.Scan("POSITION", "A"))
	if out.Cardinality() != 3 {
		t.Fatalf("rows: %v", out)
	}
	// A direct scan must not wrap itself in a derived table.
	if strings.Contains(sql, "(SELECT") {
		t.Errorf("scan should be flat SQL: %s", sql)
	}
	if !strings.Contains(sql, "A$PosID") {
		t.Errorf("qualified names should be mangled: %s", sql)
	}
}

func TestSelectStaysDirect(t *testing.T) {
	db := testDB(t)
	sel, _ := sqlparser.ParseSelect("SELECT 1 WHERE PayRate > 10")
	n := algebra.Select(algebra.Scan("POSITION", ""), sel.Where)
	out, sql := genAndRun(t, db, n)
	if out.Cardinality() != 2 {
		t.Fatalf("rows: %v", out)
	}
	if strings.Contains(sql, "(SELECT") {
		t.Errorf("selection over scan should stay flat: %s", sql)
	}
}

func TestProjectOverSelectDirect(t *testing.T) {
	db := testDB(t)
	sel, _ := sqlparser.ParseSelect("SELECT 1 WHERE PayRate > 10")
	n := algebra.ProjectCols(algebra.Select(algebra.Scan("POSITION", ""), sel.Where),
		"PosID", "T1")
	out, sql := genAndRun(t, db, n)
	if out.Cardinality() != 2 || out.Schema.Len() != 2 {
		t.Fatalf("project: %v", out)
	}
	if strings.Contains(sql, "(SELECT") {
		t.Errorf("project over select over scan should stay flat: %s", sql)
	}
}

func TestTopSortBecomesOrderBy(t *testing.T) {
	db := testDB(t)
	n := algebra.Sort(algebra.Scan("POSITION", ""), "T1")
	out, sql := genAndRun(t, db, n)
	if !strings.Contains(sql, "ORDER BY") {
		t.Fatalf("no ORDER BY: %s", sql)
	}
	t1 := out.Schema.MustIndex("T1")
	for i := 1; i < out.Cardinality(); i++ {
		if out.Tuples[i-1][t1].AsInt() > out.Tuples[i][t1].AsInt() {
			t.Fatalf("not sorted:\n%v", out)
		}
	}
}

func TestJoinDirectBothSides(t *testing.T) {
	db := testDB(t)
	n := algebra.Join(
		algebra.Scan("POSITION", "A"),
		algebra.Scan("POSITION", "B"),
		[]string{"A.PosID"}, []string{"B.PosID"})
	out, sql := genAndRun(t, db, n)
	// PosID 1 has 2 tuples → 4 pairs; PosID 2 → 1. Total 5.
	if out.Cardinality() != 5 {
		t.Fatalf("join rows = %d\n%s", out.Cardinality(), sql)
	}
	if strings.Contains(sql, "(SELECT") {
		t.Errorf("direct two-sided join should be flat: %s", sql)
	}
	if !strings.Contains(sql, "FROM POSITION A, POSITION B") {
		t.Errorf("base tables not inlined: %s", sql)
	}
}

func TestUnaliasedSelfJoinDemotesRight(t *testing.T) {
	db := testDB(t)
	n := algebra.Join(
		algebra.Scan("POSITION", ""),
		algebra.Scan("POSITION", ""),
		[]string{"PosID"}, []string{"PosID"})
	out, sql := genAndRun(t, db, n)
	if out.Cardinality() != 5 {
		t.Fatalf("self join rows = %d\n%s", out.Cardinality(), sql)
	}
	if !strings.Contains(sql, "(SELECT") {
		t.Errorf("colliding aliases must demote one side: %s", sql)
	}
}

func TestTemporalJoinSQL(t *testing.T) {
	db := testDB(t)
	n := algebra.TJoin(
		algebra.ProjectCols(algebra.Scan("POSITION", "A"), "A.PosID", "A.EmpName", "A.T1", "A.T2"),
		algebra.ProjectCols(algebra.Scan("POSITION", "B"), "B.PosID", "B.EmpName", "B.T1", "B.T2"),
		[]string{"A.PosID"}, []string{"B.PosID"})
	out, sql := genAndRun(t, db, n)
	if !strings.Contains(sql, "GREATEST(") || !strings.Contains(sql, "LEAST(") {
		t.Fatalf("no period intersection: %s", sql)
	}
	// Overlapping pairs: PosID1 (Tom,Tom),(Tom,Jane),(Jane,Tom),(Jane,Jane);
	// PosID2 (Tom,Tom) = 5.
	if out.Cardinality() != 5 {
		t.Fatalf("tjoin rows = %d\n%v", out.Cardinality(), out)
	}
	// Every output period must be a valid intersection. The raw SQL
	// result carries mangled names (TRANSFER^M restores the algebra
	// names positionally in real execution).
	t1 := out.Schema.MustIndex("A$T1")
	t2 := out.Schema.MustIndex("A$T2")
	for _, row := range out.Tuples {
		if row[t1].AsInt() >= row[t2].AsInt() {
			t.Fatalf("invalid period: %v", row)
		}
	}
}

func TestTAggrSQLMatchesFigure3c(t *testing.T) {
	db := testDB(t)
	n := algebra.TAggr(
		algebra.ProjectCols(algebra.Scan("POSITION", ""), "PosID", "T1", "T2"),
		[]string{"PosID"}, algebra.Agg{Fn: "COUNT", Col: "PosID"})
	out, _ := genAndRun(t, db, algebra.Sort(n, "PosID", "T1"))
	want := [][4]int64{{1, 2, 5, 1}, {1, 5, 20, 2}, {1, 20, 25, 1}, {2, 5, 10, 1}}
	if out.Cardinality() != len(want) {
		t.Fatalf("rows:\n%v", out)
	}
	for i, w := range want {
		for j := 0; j < 4; j++ {
			if out.Tuples[i][j].AsInt() != w[j] {
				t.Fatalf("row %d = %v, want %v", i, out.Tuples[i], w)
			}
		}
	}
}

func TestTAggrSQLOtherAggregates(t *testing.T) {
	db := testDB(t)
	for _, fn := range []string{"SUM", "MIN", "MAX", "AVG"} {
		n := algebra.TAggr(
			algebra.ProjectCols(algebra.Scan("POSITION", ""), "PosID", "PayRate", "T1", "T2"),
			[]string{"PosID"}, algebra.Agg{Fn: fn, Col: "PayRate"})
		out, sql := genAndRun(t, db, n)
		if out.Cardinality() != 4 {
			t.Fatalf("%s rows = %d\n%s", fn, out.Cardinality(), sql)
		}
	}
}

func TestDupElimSQL(t *testing.T) {
	db := testDB(t)
	n := algebra.DupElim(algebra.ProjectCols(algebra.Scan("POSITION", ""), "EmpName"))
	out, _ := genAndRun(t, db, n)
	if out.Cardinality() != 2 {
		t.Fatalf("distinct: %v", out)
	}
}

func TestCoalesceRejected(t *testing.T) {
	db := testDB(t)
	g := &Gen{Cat: liveCatalog{db}, TempTables: map[*algebra.Node]string{}}
	if _, _, err := g.SQL(algebra.Coalesce(algebra.Scan("POSITION", ""))); err == nil {
		t.Error("coalescing must be rejected by the SQL translator")
	}
	if _, _, err := g.SQL(algebra.TM(algebra.Scan("POSITION", ""))); err == nil {
		t.Error("T^M inside a DBMS region must be rejected")
	}
	td := algebra.TD(algebra.TM(algebra.Scan("POSITION", "")))
	if _, _, err := g.SQL(td); err == nil {
		t.Error("unassigned T^D must be rejected")
	}
}

func TestHintInjection(t *testing.T) {
	db := testDB(t)
	g := &Gen{Cat: liveCatalog{db}, TempTables: map[*algebra.Node]string{}, Hint: "/*+ USE_NL */"}
	sql, _, err := g.SQL(algebra.Join(
		algebra.Scan("POSITION", "A"), algebra.Scan("POSITION", "B"),
		[]string{"A.PosID"}, []string{"B.PosID"}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sql, "SELECT /*+ USE_NL */") {
		t.Errorf("hint not injected: %s", sql)
	}
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Hint == 0 {
		t.Error("hint lost in parsing")
	}
}

func TestMidPlanSortSkipped(t *testing.T) {
	db := testDB(t)
	// A sort below a join is meaningless to the DBMS (multiset
	// semantics) and must not produce ORDER BY in a derived table.
	n := algebra.Join(
		algebra.Sort(algebra.Scan("POSITION", "A"), "A.T1"),
		algebra.Scan("POSITION", "B"),
		[]string{"A.PosID"}, []string{"B.PosID"})
	out, sql := genAndRun(t, db, n)
	if strings.Contains(sql, "ORDER BY") {
		t.Errorf("mid-plan sort leaked into SQL: %s", sql)
	}
	if out.Cardinality() != 5 {
		t.Fatalf("rows = %d", out.Cardinality())
	}
}
