// Package faultpath seeds resilience-contract violations for the
// faultpath analyzer: functions that sever their caller's context by
// minting a fresh one, and fault classification that breaks on
// wrapped errors.
package faultpath

import (
	"context"
	"errors"

	"tango/internal/client"
	"tango/internal/wire"
)

// severs receives a context and then mints a fresh one: cancellation
// no longer reaches the call below.
func severs(ctx context.Context) context.Context {
	return context.Background() // want `context\.Background\(\) inside a function that receives ctx`
}

// seversTODO is the TODO variant of the same bug.
func seversTODO(ctx context.Context) context.Context {
	return context.TODO() // want `context\.TODO\(\) inside a function that receives ctx`
}

// seversInLiteral drops the context inside a nested closure, where
// the outer parameter is still in scope.
func seversInLiteral(ctx context.Context) func() context.Context {
	return func() context.Context {
		return context.Background() // want `context\.Background\(\) inside a function that receives ctx`
	}
}

// threads is the clean idiom: the caller's context flows through.
func threads(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

// roots has no context parameter, so minting one is legitimate.
func roots() context.Context {
	return context.Background()
}

// optsOut explicitly discards its context parameter; the blank name
// is the sanctioned opt-out.
func optsOut(_ context.Context) context.Context {
	return context.Background()
}

// suppressed documents a deliberate detach (a background janitor that
// must outlive the request).
func suppressed(ctx context.Context) context.Context {
	//lint:ignore faultpath the janitor must outlive the request context
	return context.Background()
}

// asserts classifies a resilience failure with a bare type assertion:
// any wrapping (fmt.Errorf %w, OpError) makes it miss.
func asserts(err error) bool {
	_, ok := err.(*wire.FaultError) // want `type assertion on wire\.FaultError misses wrapped errors`
	return ok
}

// assertsOp does the same on the client's typed failure.
func assertsOp(err error) bool {
	if oe, ok := err.(*client.OpError); ok { // want `type assertion on client\.OpError misses wrapped errors`
		return oe.Timeout
	}
	return false
}

// switches hides the same bug in a type switch.
func switches(err error) string {
	switch err.(type) {
	case *wire.FaultError: // want `type assertion on wire\.FaultError misses wrapped errors`
		return "fault"
	case *client.OpError: // want `type assertion on client\.OpError misses wrapped errors`
		return "op"
	default:
		return "other"
	}
}

// classifies is the clean idiom: errors.As survives wrapping, as do
// the packages' own helpers.
func classifies(err error) bool {
	var fe *wire.FaultError
	if errors.As(err, &fe) {
		return true
	}
	var oe *client.OpError
	if errors.As(err, &oe) {
		return oe.Timeout
	}
	return wire.Retryable(err) || client.Degradable(err)
}
