package xxl

import (
	"fmt"
	"math/rand"
	"testing"

	"tango/internal/rel"
	"tango/internal/types"
)

func benchRelation(n int, groups int64, maxDur int64, seed int64) *rel.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := rel.New(types.NewSchema(
		types.Column{Name: "G", Kind: types.KindInt},
		types.Column{Name: "V", Kind: types.KindInt},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
	))
	for i := 0; i < n; i++ {
		s := rng.Int63n(100000)
		r.Append(types.Tuple{
			types.Int(rng.Int63n(groups)), types.Int(rng.Int63n(1000)),
			types.Int(s), types.Int(s + 1 + rng.Int63n(maxDur)),
		})
	}
	r.SortBy("G", "T1")
	return r
}

// BenchmarkTAggrSweep measures the §3.4 sweep across aggregate kinds.
func BenchmarkTAggrSweep(b *testing.B) {
	in := benchRelation(50000, 100, 2000, 1)
	out := types.NewSchema(
		types.Column{Name: "G", Kind: types.KindInt},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
		types.Column{Name: "A", Kind: types.KindInt},
	)
	for _, spec := range []AggSpec{
		{Kind: AggCount}, {Kind: AggSum, Col: 1}, {Kind: AggMax, Col: 1},
	} {
		b.Run(string(spec.Kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ta := NewTAggr(in.Iter(), []int{0}, 2, 3, []AggSpec{spec}, out)
				got, err := rel.Drain(ta)
				if err != nil {
					b.Fatal(err)
				}
				if got.Cardinality() == 0 {
					b.Fatal("empty")
				}
			}
		})
	}
}

// BenchmarkSortSpill compares in-memory and spilling external sorts.
func BenchmarkSortSpill(b *testing.B) {
	in := benchRelation(100000, 1000, 100, 2)
	for _, mem := range []int{1 << 20, 4096} {
		name := "in-memory"
		if mem < 100000 {
			name = fmt.Sprintf("spill-%d", mem)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := NewSort(in.Iter(), []int{2})
				s.MemTuples = mem
				got, err := rel.Drain(s)
				if err != nil {
					b.Fatal(err)
				}
				if got.Cardinality() != in.Cardinality() {
					b.Fatal("lost rows")
				}
			}
		})
	}
}

// BenchmarkTJoinOverlap measures the temporal merge join.
func BenchmarkTJoinOverlap(b *testing.B) {
	l := benchRelation(20000, 500, 1000, 3)
	r := benchRelation(20000, 500, 1000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tj := NewTJoin(l.Iter(), r.Iter(), []int{0}, []int{0}, 2, 3, 2, 3)
		got, err := rel.Drain(tj)
		if err != nil {
			b.Fatal(err)
		}
		if got.Cardinality() == 0 {
			b.Fatal("empty join")
		}
	}
}

// BenchmarkMergeJoin measures the regular sort-merge join.
func BenchmarkMergeJoin(b *testing.B) {
	l := benchRelation(50000, 2000, 100, 5)
	r := benchRelation(50000, 2000, 100, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mj := NewMergeJoin(l.Iter(), r.Iter(), []int{0}, []int{0})
		got, err := rel.Drain(mj)
		if err != nil {
			b.Fatal(err)
		}
		if got.Cardinality() == 0 {
			b.Fatal("empty join")
		}
	}
}
