// Package iterclose seeds lifecycle violations for the iterclose
// analyzer: iterators opened but never closed, closes reachable only
// past early returns, and Next calls on exhausted iterators.
package iterclose

type tuple []int

// iter is shaped like rel.Iterator, which the analyzer matches
// structurally.
type iter struct{ done bool }

func (*iter) Open() error                { return nil }
func (*iter) Close() error               { return nil }
func (*iter) Next() (tuple, bool, error) { return nil, false, nil }

// conn has the cursor-opening method the analyzer treats as an
// acquisition.
type conn struct{}

func (*conn) Query(sql string) (*iter, error) { return &iter{}, nil }

func badPrecondition() bool { return false }

// neverClosed acquires a cursor and drops it on the floor.
func neverClosed(c *conn) error {
	rows, err := c.Query("SELECT 1") // want `rows is opened but never closed`
	if err != nil {
		return err
	}
	_, _, nerr := rows.Next()
	return nerr
}

// leakOnError closes only on the success path; the precondition return
// leaks the open iterator.
func leakOnError(c *conn) error {
	it := &iter{}
	if err := it.Open(); err != nil {
		return err
	}
	if badPrecondition() {
		return nil // want `return leaks it: opened at line \d+`
	}
	return it.Close()
}

// nextAfterExhaustion calls Next again after the consuming loop
// without re-opening.
func nextAfterExhaustion(c *conn) error {
	rows, err := c.Query("SELECT 2")
	if err != nil {
		return err
	}
	defer rows.Close()
	for {
		_, ok, err := rows.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
	}
	_, _, err = rows.Next() // want `rows\.Next\(\) after the consuming loop at line \d+`
	return err
}

// drained is the sanctioned shape: defer the close right after the
// acquisition's error check, keep the final close's error.
func drained(c *conn) (int, error) {
	rows, err := c.Query("SELECT 3")
	if err != nil {
		return 0, err
	}
	defer rows.Close()
	n := 0
	for {
		_, ok, err := rows.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		n++
	}
	return n, rows.Close()
}

// opened hands ownership to the caller; no finding.
func opened(c *conn) (*iter, error) {
	rows, err := c.Query("SELECT 4")
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// suppressed leaks on purpose; the directive keeps the finding quiet
// and the harness verifies no diagnostic surfaces here.
func suppressed(c *conn) error {
	//lint:ignore iterclose fixture: the leak is the point of this test
	rows, err := c.Query("SELECT 5")
	if err != nil {
		return err
	}
	_, _, nerr := rows.Next()
	return nerr
}
