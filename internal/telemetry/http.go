package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry over HTTP:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON exposition
//	/debug/vars    expvar-style JSON (alias of /metrics.json)
//	/debug/pprof/  Go profiling endpoints
//	/healthz       liveness probe (always 200 without a health check)
func Handler(reg *Registry) http.Handler {
	return HandlerWith(reg, nil)
}

// HandlerWith is Handler plus a health check: /healthz returns 200
// "ok" while health() returns nil, and 503 with the error text once
// it does not (engine closed, store crashed). A nil health func means
// always healthy.
func HandlerWith(reg *Registry, health func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	jsonHandler := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	}
	mux.HandleFunc("/metrics.json", jsonHandler)
	mux.HandleFunc("/debug/vars", jsonHandler)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if health != nil {
			if err := health(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "unhealthy: %v\n", err)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve exposes the registry on addr (e.g. "localhost:9090" or
// ":0" for an ephemeral port) in a background goroutine. It returns
// the bound address and a shutdown function.
func Serve(addr string, reg *Registry) (string, func() error, error) {
	return ServeWith(addr, reg, nil)
}

// ServeWith is Serve with a /healthz health check attached.
func ServeWith(addr string, reg *Registry, health func() error) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: HandlerWith(reg, health)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
