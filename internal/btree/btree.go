// Package btree implements a B+-tree used for the engine's secondary
// indexes: keys are attribute values, payloads are heap-file record
// IDs. Duplicate keys are supported. The tree supports point lookups
// and ordered range scans, and can compute its clustering factor (how
// well index order matches heap order), one of the statistics the
// paper's middleware collects.
package btree

import (
	"sort"
	"sync"

	"tango/internal/storage"
	"tango/internal/types"
)

// degree is the maximum number of keys per node.
const degree = 64

// Entry is one key/record pair stored in a leaf.
type Entry struct {
	Key types.Value
	RID storage.RecordID
}

type node struct {
	leaf     bool
	keys     []types.Value
	children []*node // internal: len(keys)+1
	entries  []Entry // leaf
	next     *node   // leaf-level chain
}

// Tree is a B+-tree. The zero value is not usable; call New.
//
// The tree is goroutine-safe: a single structural writer (Insert,
// serialized by the engine's catalog lock) excludes readers via an
// internal latch; lookups and range scans take it shared. Every
// operation under the latch is memory-only — scan callbacks run while
// it is held, so they must not block. Index latches sit below frame
// latches in the hierarchy (an index build scans heap pages and
// inserts from the scan).
//
//tango:lock-order frame < index
type Tree struct {
	mu   sync.RWMutex //tango:lock-order index latch
	root *node
	size int
}

// New creates an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of entries.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Insert adds an entry; duplicate keys are allowed.
func (t *Tree) Insert(key types.Value, rid storage.RecordID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.size++
	mid, right := t.root.insert(key, rid)
	if right != nil {
		t.root = &node{
			keys:     []types.Value{mid},
			children: []*node{t.root, right},
		}
	}
}

// insert adds the entry to the subtree; on split it returns the
// separator key and the new right sibling.
func (n *node) insert(key types.Value, rid storage.RecordID) (types.Value, *node) {
	if n.leaf {
		i := sort.Search(len(n.entries), func(i int) bool {
			return types.Compare(n.entries[i].Key, key) > 0
		})
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = Entry{Key: key, RID: rid}
		if len(n.entries) <= degree {
			return types.Null, nil
		}
		// Split leaf.
		mid := len(n.entries) / 2
		right := &node{leaf: true, entries: append([]Entry(nil), n.entries[mid:]...), next: n.next}
		n.entries = n.entries[:mid]
		n.next = right
		return right.entries[0].Key, right
	}
	i := sort.Search(len(n.keys), func(i int) bool {
		return types.Compare(n.keys[i], key) > 0
	})
	sep, right := n.children[i].insert(key, rid)
	if right == nil {
		return types.Null, nil
	}
	n.keys = append(n.keys, types.Null)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.keys) <= degree {
		return types.Null, nil
	}
	// Split internal node.
	mid := len(n.keys) / 2
	sepKey := n.keys[mid]
	r := &node{
		keys:     append([]types.Value(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return sepKey, r
}

// findLeaf descends to the leftmost leaf that can contain key,
// returning the leaf and the index of the first entry >= key in it
// (possibly len(entries), meaning the scan continues in the next
// leaf). Descending on >= rather than > matters for duplicate keys: a
// split can leave duplicates of a separator in the left subtree.
func (t *Tree) findLeaf(key types.Value) (*node, int) {
	n := t.root
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool {
			return types.Compare(n.keys[i], key) >= 0
		})
		n = n.children[i]
	}
	i := sort.Search(len(n.entries), func(i int) bool {
		return types.Compare(n.entries[i].Key, key) >= 0
	})
	return n, i
}

// Lookup returns the record IDs of all entries with the given key.
func (t *Tree) Lookup(key types.Value) []storage.RecordID {
	var out []storage.RecordID
	t.AscendRange(key, key, true, func(e Entry) bool {
		out = append(out, e.RID)
		return true
	})
	return out
}

// AscendRange visits entries with lo <= key <= hi (hi inclusive when
// hiIncl) in key order. fn returning false stops the scan. A NULL lo
// starts at the smallest key; a NULL hi scans to the end. fn runs
// under the tree's shared latch: it may read freely but must not
// block or re-enter the tree.
func (t *Tree) AscendRange(lo, hi types.Value, hiIncl bool, fn func(Entry) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.ascendRangeLocked(lo, hi, hiIncl, fn)
}

func (t *Tree) ascendRangeLocked(lo, hi types.Value, hiIncl bool, fn func(Entry) bool) {
	var n *node
	var i int
	if lo.IsNull() {
		n = t.root
		for !n.leaf {
			n = n.children[0]
		}
		i = 0
	} else {
		n, i = t.findLeaf(lo)
	}
	for n != nil {
		for ; i < len(n.entries); i++ {
			e := n.entries[i]
			if !hi.IsNull() {
				c := types.Compare(e.Key, hi)
				if c > 0 || (c == 0 && !hiIncl) {
					return
				}
			}
			if !fn(e) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// Ascend visits all entries in key order.
func (t *Tree) Ascend(fn func(Entry) bool) {
	t.AscendRange(types.Null, types.Null, true, fn)
}

// ClusteringFactor returns the number of heap-page transitions seen
// when reading the index in key order — the Oracle-style clustering
// factor. A value close to the number of heap pages means a clustered
// index; close to the entry count means unclustered.
func (t *Tree) ClusteringFactor() int {
	cf := 0
	last := int32(-1)
	t.Ascend(func(e Entry) bool {
		if e.RID.Page != last {
			cf++
			last = e.RID.Page
		}
		return true
	})
	return cf
}
