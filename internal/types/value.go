// Package types defines the value model shared by every layer of the
// system: scalar values, attribute types, schemas, tuples, and the
// closed-open time-period conventions used by the temporal operators.
//
// The paper (Slivinskas, Jensen, Snodgrass, SIGMOD 2001) works at day
// granularity with closed-open periods [T1, T2); Date values here are
// integer day numbers relative to 1970-01-01.
package types

import (
	"fmt"
	"hash/maphash"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the attribute types supported by the engine and the
// middleware.
type Kind uint8

// Supported attribute kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate // day number since 1970-01-01
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	n    int64   // int, bool (0/1), date
	f    float64 // float
	s    string  // string
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, n: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var n int64
	if v {
		n = 1
	}
	return Value{kind: KindBool, n: n}
}

// Date returns a date value holding a day number since 1970-01-01.
func Date(day int64) Value { return Value{kind: KindDate, n: day} }

// DateYMD returns a date value for the given calendar day (UTC).
func DateYMD(year int, month time.Month, day int) Value {
	return Date(DayOf(year, month, day))
}

// DayOf converts a calendar date to a day number since 1970-01-01.
func DayOf(year int, month time.Month, day int) int64 {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return t.Unix() / 86400
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the value as int64. Dates and booleans convert; floats
// truncate. NULL converts to 0.
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt, KindBool, KindDate:
		return v.n
	case KindFloat:
		return int64(v.f)
	case KindString:
		n, _ := strconv.ParseInt(v.s, 10, 64)
		return n
	default:
		return 0
	}
}

// AsFloat returns the value as float64.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt, KindBool, KindDate:
		return float64(v.n)
	case KindFloat:
		return v.f
	case KindString:
		f, _ := strconv.ParseFloat(v.s, 64)
		return f
	default:
		return 0
	}
}

// AsString returns the value as a string. For non-strings this is the
// display form.
func (v Value) AsString() string {
	if v.kind == KindString {
		return v.s
	}
	return v.String()
}

// AsBool returns the value as a boolean; non-zero numerics are true.
func (v Value) AsBool() bool {
	switch v.kind {
	case KindBool, KindInt, KindDate:
		return v.n != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s != ""
	default:
		return false
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.n, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.n != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindDate:
		return time.Unix(v.n*86400, 0).UTC().Format("2006-01-02")
	default:
		return "?"
	}
}

// SQL renders the value as an SQL literal.
func (v Value) SQL() string {
	switch v.kind {
	case KindString:
		return "'" + escapeSQL(v.s) + "'"
	case KindDate:
		return "DATE '" + v.String() + "'"
	default:
		return v.String()
	}
}

func escapeSQL(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'')
		}
		out = append(out, s[i])
	}
	return string(out)
}

// numericKind reports whether the kind is ordered along the numeric axis.
func numericKind(k Kind) bool {
	switch k {
	case KindInt, KindFloat, KindBool, KindDate:
		return true
	}
	return false
}

// Compare orders two values. NULL sorts before everything; numerics
// (including dates and booleans) compare on the numeric axis, strings
// lexicographically. Comparing a numeric with a string compares the
// numeric's display form.
func Compare(a, b Value) int {
	switch {
	case a.kind == KindNull && b.kind == KindNull:
		return 0
	case a.kind == KindNull:
		return -1
	case b.kind == KindNull:
		return 1
	}
	if numericKind(a.kind) && numericKind(b.kind) {
		if a.kind == KindFloat || b.kind == KindFloat {
			af, bf := a.AsFloat(), b.AsFloat()
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
		switch {
		case a.n < b.n:
			return -1
		case a.n > b.n:
			return 1
		default:
			return 0
		}
	}
	as, bs := a.AsString(), b.AsString()
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Less reports whether a orders before b.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

var hashSeed = maphash.MakeSeed()

// Hash returns a hash of the value consistent with Equal (for hash
// joins and duplicate elimination).
func (v Value) Hash() uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	switch {
	case v.kind == KindNull:
		h.WriteByte(0)
	case numericKind(v.kind):
		// Normalize all numerics through float64 so Int(2), Float(2.0)
		// and Date(2) hash alike, matching Compare.
		var buf [9]byte
		buf[0] = 1
		bits := math.Float64bits(v.AsFloat())
		for i := 0; i < 8; i++ {
			buf[1+i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	default:
		h.WriteByte(2)
		h.WriteString(v.s)
	}
	return h.Sum64()
}

// Add returns a+b with numeric promotion. String addition concatenates.
// NULL propagates.
func Add(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if a.kind == KindString || b.kind == KindString {
		return Str(a.AsString() + b.AsString())
	}
	if a.kind == KindFloat || b.kind == KindFloat {
		return Float(a.AsFloat() + b.AsFloat())
	}
	if a.kind == KindDate || b.kind == KindDate {
		return Date(a.AsInt() + b.AsInt())
	}
	return Int(a.AsInt() + b.AsInt())
}

// Sub returns a-b with numeric promotion. NULL propagates.
func Sub(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if a.kind == KindFloat || b.kind == KindFloat {
		return Float(a.AsFloat() - b.AsFloat())
	}
	if a.kind == KindDate && b.kind == KindDate {
		return Int(a.n - b.n) // date difference is a day count
	}
	if a.kind == KindDate {
		return Date(a.n - b.AsInt())
	}
	return Int(a.AsInt() - b.AsInt())
}

// Mul returns a*b with numeric promotion. NULL propagates.
func Mul(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if a.kind == KindFloat || b.kind == KindFloat {
		return Float(a.AsFloat() * b.AsFloat())
	}
	return Int(a.AsInt() * b.AsInt())
}

// Div returns a/b. Integer division by zero yields NULL.
func Div(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if a.kind == KindFloat || b.kind == KindFloat {
		bf := b.AsFloat()
		if bf == 0 {
			return Null
		}
		return Float(a.AsFloat() / bf)
	}
	bi := b.AsInt()
	if bi == 0 {
		return Null
	}
	return Int(a.AsInt() / bi)
}

// Greatest returns the larger of a and b (SQL GREATEST, used by the
// temporal-join SQL translation). NULL propagates.
func Greatest(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if Compare(a, b) >= 0 {
		return a
	}
	return b
}

// Least returns the smaller of a and b (SQL LEAST). NULL propagates.
func Least(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if Compare(a, b) <= 0 {
		return a
	}
	return b
}

// ByteSize returns the approximate in-memory/wire size of the value in
// bytes; used for size(r) statistics.
func (v Value) ByteSize() int {
	switch v.kind {
	case KindString:
		return 4 + len(v.s)
	case KindNull:
		return 1
	default:
		return 8
	}
}
