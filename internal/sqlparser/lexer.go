// Package sqlparser lexes and parses the engine's SQL subset into
// sqlast trees.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString // 'quoted'
	tokSymbol // punctuation and operators
	tokHint   // /*+ ... */
)

type token struct {
	kind tokenKind
	text string // upper-cased for idents; raw for strings/numbers
	raw  string // original spelling
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && strings.HasPrefix(l.src[l.pos:], "/*+"):
			start := l.pos + 3
			end := strings.Index(l.src[start:], "*/")
			if end < 0 {
				return token{}, fmt.Errorf("sqlparser: unterminated hint at %d", l.pos)
			}
			t := token{kind: tokHint, text: strings.ToUpper(strings.TrimSpace(l.src[start : start+end])), pos: l.pos}
			l.pos = start + end + 2
			return t, nil
		case c == '/' && strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, fmt.Errorf("sqlparser: unterminated comment at %d", l.pos)
			}
			l.pos += 2 + end + 2
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		raw := l.src[start:l.pos]
		return token{kind: tokIdent, text: strings.ToUpper(raw), raw: raw, pos: start}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		seenDot := false
		for l.pos < len(l.src) {
			d := l.src[l.pos]
			if d == '.' {
				if seenDot {
					break
				}
				seenDot = true
				l.pos++
				continue
			}
			if d < '0' || d > '9' {
				break
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], raw: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) {
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), raw: sb.String(), pos: start}, nil
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{}, fmt.Errorf("sqlparser: unterminated string at %d", start)
	default:
		// Multi-char symbols first.
		for _, sym := range []string{"<>", "<=", ">=", "!=", "||"} {
			if strings.HasPrefix(l.src[l.pos:], sym) {
				l.pos += len(sym)
				return token{kind: tokSymbol, text: sym, raw: sym, pos: start}, nil
			}
		}
		switch c {
		case '(', ')', ',', '*', '+', '-', '/', '=', '<', '>', '.', ';':
			l.pos++
			return token{kind: tokSymbol, text: string(c), raw: string(c), pos: start}, nil
		}
		return token{}, fmt.Errorf("sqlparser: unexpected character %q at %d", c, start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '$' || c == '#' || unicode.IsLetter(rune(c)) || c >= '0' && c <= '9'
}
