package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak checks that every spawned goroutine is provably joinable.
// A goroutine leaks when it blocks forever on a channel nobody will
// ever service — the PR-4 windowed-fetch delivery bug: a delivery
// goroutine sent its batch on an unbuffered future channel, and when
// the consumer abandoned the window (Close, error, early EOF) the
// send blocked forever, pinning the batch and the goroutine.
//
// For each `go` statement the analyzer examines the goroutine body
// (function literal, or the callee's effect summary for `go f(ch)` —
// the interprocedural case, including literals that call a helper
// with the channel as an argument) and collects its *unguarded*
// blocking channel operations: sends/receives not inside a select
// with a `default` or a done/ctx/timeout case. An unguarded op is a
// leak unless the channel is provably serviced:
//
//   - the channel was made with a buffer (`make(chan T, n)`, n >= 1):
//     the send completes even if the consumer walks away — exactly
//     the PR-4 fix; or
//   - the spawning function unconditionally services the other end
//     after the spawn (a top-level receive/range for a send, a
//     top-level send or close — deferred close counts — for a
//     receive).
//
// A receive inside a select with competing cases is NOT a guaranteed
// receiver — that is precisely how the PR-4 leak escaped review.
// Channels whose origin is invisible (parameters, fields, unknown
// buffer sizes) are skipped: the analyzer is conservative-but-quiet.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "check that spawned goroutines cannot block forever on an unserviced channel",
	Run:  runGoLeak,
}

// chanUse is one unguarded blocking channel op attributed to a spawn.
type chanUse struct {
	obj  *types.Var // the channel variable in the spawning function
	send bool
	pos  token.Pos // op position (literal body) or the go statement
	via  string    // helper name for interprocedural ops ("" = direct)
}

func runGoLeak(pass *Pass) error {
	for _, ff := range pass.facts.order {
		for _, ev := range ff.events {
			if ev.kind != evSpawn {
				continue
			}
			checkSpawn(pass, ff, ev.goStmt)
		}
	}
	return nil
}

func checkSpawn(pass *Pass, ff *funcFacts, g *ast.GoStmt) {
	uses := spawnChanUses(pass, ff, g)
	for _, u := range uses {
		buffered, known := chanBuffering(pass, ff.decl, u.obj)
		if !known || buffered {
			continue
		}
		if spawnerServices(pass, ff.decl, g, u.obj, u.send) {
			continue
		}
		op := "receiving from"
		fix := "guarantee a sender or select on a done/ctx channel"
		if u.send {
			op = "sending on"
			fix = "buffer the channel, guarantee a receiver, or select on a done/ctx channel"
		}
		via := ""
		if u.via != "" {
			via = " (via " + u.via + ")"
		}
		pass.Reportf(g.Pos(), "goroutine may block forever %s unbuffered channel %q%s with no guaranteed counterpart in the spawner: %s",
			op, u.obj.Name(), via, fix)
	}
}

// spawnChanUses collects the unguarded blocking channel ops the
// spawned goroutine can perform on channels that resolve to variables
// of the spawning function: directly in a literal body, or through a
// called function's summary (parameter-passed channels).
func spawnChanUses(pass *Pass, ff *funcFacts, g *ast.GoStmt) []chanUse {
	var uses []chanUse
	lit, _ := g.Call.Fun.(*ast.FuncLit)
	addExpr := func(x ast.Expr, send bool, pos token.Pos, via string) {
		obj := localChanVar(pass, ff.decl, x)
		if obj == nil {
			return
		}
		if lit != nil && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return // channel local to the goroutine itself: its lifecycle is its own
		}
		uses = append(uses, chanUse{obj: obj, send: send, pos: pos, via: via})
	}

	// Helper-call handling shared by both shapes: map the callee's
	// parameter-channel ops back to the argument expressions.
	addCallOps := func(call *ast.CallExpr, via bool) {
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return
		}
		eff := pass.index.effects(funcKey(fn))
		if eff == nil {
			return
		}
		name := fn.Name()
		for _, op := range eff.ChanOps {
			if op.Param < 0 || op.Param >= len(call.Args) {
				continue
			}
			addExpr(call.Args[op.Param], op.Send, call.Pos(), name+" at "+op.Pos)
		}
	}

	if lit != nil {
		// Walk the literal body with the same event classification the
		// summaries use, so select guarding matches exactly.
		tmp := &funcFacts{key: "", name: ff.name + ".func", decl: ff.decl}
		w := &eventWalker{pkg: pass.pkg(), index: pass.index, ff: tmp}
		w.walkBody(lit.Body, walkCtx{})
		for _, ev := range tmp.events {
			switch ev.kind {
			case evChanOp:
				if !ev.guarded {
					addExpr(ev.chanEx, ev.send, ev.pos, "")
				}
			case evCall:
				addCallOps(ev.call, true)
			}
		}
		return uses
	}
	addCallOps(g.Call, false)
	return uses
}

// localChanVar resolves a channel expression to a variable declared in
// the spawning function (its body or parameters); nil for fields,
// globals, and anything else.
func localChanVar(pass *Pass, decl *ast.FuncDecl, x ast.Expr) *types.Var {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil
	}
	obj, _ := pass.Info.Uses[id].(*types.Var)
	if obj == nil {
		obj, _ = pass.Info.Defs[id].(*types.Var)
	}
	if obj == nil || obj.IsField() {
		return nil
	}
	if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
		return nil
	}
	if decl == nil || obj.Pos() < decl.Pos() || obj.Pos() > decl.End() {
		return nil // not declared within the spawning function
	}
	return obj
}

// chanBuffering finds the `make(chan ...)` that defines the variable
// inside the function and reports whether it is buffered. known is
// false when no visible make with a constant capacity defines it.
func chanBuffering(pass *Pass, decl *ast.FuncDecl, obj *types.Var) (buffered, known bool) {
	if decl == nil || decl.Body == nil {
		return false, false
	}
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		var lhs []ast.Expr
		var rhs []ast.Expr
		switch s := n.(type) {
		case *ast.AssignStmt:
			lhs, rhs = s.Lhs, s.Rhs
		case *ast.ValueSpec:
			for _, name := range s.Names {
				lhs = append(lhs, name)
			}
			rhs = s.Values
		default:
			return true
		}
		if len(lhs) != len(rhs) {
			return true
		}
		for i, l := range lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok {
				continue
			}
			def, _ := pass.Info.Defs[id].(*types.Var)
			if def == nil {
				def, _ = pass.Info.Uses[id].(*types.Var)
			}
			if def != obj {
				continue
			}
			call, ok := ast.Unparen(rhs[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || fid.Name != "make" {
				continue
			}
			if len(call.Args) == 1 {
				buffered, known, found = false, true, true
				return false
			}
			if len(call.Args) >= 2 {
				if tv, ok := pass.Info.Types[call.Args[1]]; ok && tv.Value != nil {
					if v, err := constInt(tv.Value.ExactString()); err == nil {
						buffered, known, found = v >= 1, true, true
						return false
					}
				}
			}
		}
		return true
	})
	return buffered, known
}

func constInt(s string) (int64, error) {
	var v int64
	var neg bool
	for i, r := range s {
		if i == 0 && r == '-' {
			neg = true
			continue
		}
		if r < '0' || r > '9' {
			return 0, errNotInt
		}
		v = v*10 + int64(r-'0')
	}
	if neg {
		v = -v
	}
	return v, nil
}

var errNotInt = errNotIntType{}

type errNotIntType struct{}

func (errNotIntType) Error() string { return "not an integer" }

// spawnerServices reports whether the spawning function guarantees the
// counterpart operation after the go statement: for a goroutine SEND,
// an unconditional receive (top-level `<-ch`, assignment from `<-ch`,
// or `for range ch`); for a goroutine RECEIVE, an unconditional send
// or a close (a deferred close anywhere counts — defers run on all
// paths).
func spawnerServices(pass *Pass, decl *ast.FuncDecl, g *ast.GoStmt, obj *types.Var, goroutineSends bool) bool {
	if decl == nil || decl.Body == nil {
		return false
	}
	sameChan := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		if !ok {
			return false
		}
		use, _ := pass.Info.Uses[id].(*types.Var)
		return use == obj
	}
	isRecv := func(x ast.Expr) bool {
		u, ok := ast.Unparen(x).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW && sameChan(u.X)
	}
	isClose := func(x ast.Expr) bool {
		call, ok := ast.Unparen(x).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "close" && sameChan(call.Args[0])
	}

	// Deferred closes anywhere in the function count for receives.
	if !goroutineSends {
		closed := false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			d, ok := n.(*ast.DeferStmt)
			if !ok {
				return true
			}
			if isClose(d.Call) {
				closed = true
			}
			if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if es, ok := m.(*ast.ExprStmt); ok && isClose(es.X) {
						closed = true
					}
					return true
				})
			}
			return !closed
		})
		if closed {
			return true
		}
	}

	// Top-level statements after the spawn.
	for _, st := range decl.Body.List {
		if st.Pos() <= g.End() {
			continue
		}
		switch s := st.(type) {
		case *ast.ExprStmt:
			if goroutineSends && isRecv(s.X) {
				return true
			}
			if !goroutineSends && isClose(s.X) {
				return true
			}
		case *ast.AssignStmt:
			if goroutineSends {
				for _, r := range s.Rhs {
					if isRecv(r) {
						return true
					}
				}
			}
		case *ast.SendStmt:
			if !goroutineSends && sameChan(s.Chan) {
				return true
			}
		case *ast.RangeStmt:
			if goroutineSends && sameChan(s.X) {
				return true
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if goroutineSends && isRecv(r) {
					return true
				}
			}
		}
	}
	return false
}
