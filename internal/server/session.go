// Session-scoped temp-table accounting: TRANSFER^D materializes
// middleware islands into uniquely named temp tables that §3.2
// requires dropped at query end. Under wire faults the client-side
// cleanup can fail (or the client can die mid-query), so the server
// keeps its own ledger per session and garbage-collects whatever is
// left when the session ends.
package server

import (
	"strings"
	"sync/atomic"
)

// TempPrefix is the naming prefix of transfer temp tables; the
// client's TempName generator and the server's orphan scan agree on
// it.
const TempPrefix = "TMP_TANGO_"

// Session is the server-side state of one client connection: the set
// of temp tables it created and has not yet dropped.
type Session struct {
	srv *Server
	id  int64

	// guarded by srv.mu (sessions are touched from client retry
	// goroutines and the GC).
	temps  map[string]bool
	closed bool
}

// sessionCounter numbers sessions process-wide; the ID keys the
// per-session accounting series (tango_session_*{session="N"}).
var sessionCounter atomic.Int64

// NewSession registers a new client session.
func (s *Server) NewSession() *Session {
	se := &Session{srv: s, id: sessionCounter.Add(1), temps: map[string]bool{}}
	s.mu.Lock()
	if s.sessions == nil {
		s.sessions = map[*Session]bool{}
	}
	s.sessions[se] = true
	s.mu.Unlock()
	return se
}

// ID returns the session's process-unique identifier (0 for nil).
func (se *Session) ID() int64 {
	if se == nil {
		return 0
	}
	return se.id
}

// RegisterTemp records that the session created a temp table.
func (se *Session) RegisterTemp(name string) {
	if se == nil {
		return
	}
	se.srv.mu.Lock()
	if !se.closed {
		se.temps[name] = true
	}
	se.srv.mu.Unlock()
}

// ForgetTemp records that the session dropped a temp table.
func (se *Session) ForgetTemp(name string) {
	if se == nil {
		return
	}
	se.srv.mu.Lock()
	delete(se.temps, name)
	se.srv.mu.Unlock()
}

// Close ends the session and garbage-collects its orphaned temp
// tables, dropping them directly on the engine (no wire, no faults —
// the connection is gone). It returns the number of tables collected.
func (se *Session) Close() (int, error) {
	if se == nil {
		return 0, nil
	}
	se.srv.mu.Lock()
	if se.closed {
		se.srv.mu.Unlock()
		return 0, nil
	}
	se.closed = true
	var orphans []string
	for name := range se.temps {
		orphans = append(orphans, name)
	}
	se.temps = nil
	delete(se.srv.sessions, se)
	se.srv.mu.Unlock()

	var first error
	collected := 0
	for _, name := range orphans {
		if err := se.srv.db.DropTable(name, true); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		collected++
		se.srv.forgetLoadMark(name)
	}
	return collected, first
}

// forgetLoadMark clears a table's load-dedup mark (the table is gone;
// a future temp table reusing the name must not inherit it).
func (s *Server) forgetLoadMark(table string) {
	s.mu.Lock()
	delete(s.loadSeqs, table)
	s.mu.Unlock()
}

// TempTables lists the transfer temp tables currently present in the
// DBMS (leak detection for the chaos harness).
func (s *Server) TempTables() []string {
	var out []string
	for _, name := range s.db.TableNames() {
		if strings.HasPrefix(name, TempPrefix) {
			out = append(out, name)
		}
	}
	return out
}

// LiveSessions reports the number of open sessions.
func (s *Server) LiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}
