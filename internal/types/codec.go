package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EncodeTuple appends a compact binary encoding of the tuple to dst and
// returns the extended slice. The encoding is self-describing (kind
// tags) and is shared by the storage pages and the client/server wire,
// so that shipping a row across the middleware/DBMS boundary costs real
// serialization work, as it does over JDBC.
func EncodeTuple(dst []byte, t Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = append(dst, byte(v.kind))
		switch v.kind {
		case KindNull:
		case KindInt, KindDate, KindBool:
			dst = binary.AppendVarint(dst, v.n)
		case KindFloat:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f))
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.s)))
			dst = append(dst, v.s...)
		}
	}
	return dst
}

// DecodeTuple decodes one tuple from buf, returning the tuple and the
// number of bytes consumed.
func DecodeTuple(buf []byte) (Tuple, int, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, 0, fmt.Errorf("types: bad tuple header")
	}
	pos := k
	t := make(Tuple, n)
	for i := range t {
		if pos >= len(buf) {
			return nil, 0, fmt.Errorf("types: truncated tuple")
		}
		kind := Kind(buf[pos])
		pos++
		switch kind {
		case KindNull:
			t[i] = Null
		case KindInt, KindDate, KindBool:
			v, k := binary.Varint(buf[pos:])
			if k <= 0 {
				return nil, 0, fmt.Errorf("types: truncated varint")
			}
			pos += k
			t[i] = Value{kind: kind, n: v}
		case KindFloat:
			if pos+8 > len(buf) {
				return nil, 0, fmt.Errorf("types: truncated float")
			}
			t[i] = Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:])))
			pos += 8
		case KindString:
			l, k := binary.Uvarint(buf[pos:])
			if k <= 0 || pos+k+int(l) > len(buf) {
				return nil, 0, fmt.Errorf("types: truncated string")
			}
			pos += k
			t[i] = Str(string(buf[pos : pos+int(l)]))
			pos += int(l)
		default:
			return nil, 0, fmt.Errorf("types: unknown kind %d", kind)
		}
	}
	return t, pos, nil
}

// EncodedSize returns the number of bytes EncodeTuple would produce.
func EncodedSize(t Tuple) int {
	return len(EncodeTuple(nil, t))
}
