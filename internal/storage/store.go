package storage

// Store is the block-device contract the buffer pool and heap files
// run on. Two implementations exist:
//
//   - *Disk: the in-memory page store (the test and benchmark
//     default) — fast, volatile, counts I/O for the cost model;
//   - *FileDisk: the crash-safe, file-backed store — every mutation
//     is written ahead to a checksummed log (see wal.go), data files
//     carry per-page CRC32C checksums, and Recover replays the log
//     after a crash (see filedisk.go).
//
// Sync is the durability barrier: once it returns, every mutation
// issued before the call survives a crash. On the in-memory Disk it
// is a no-op.
type Store interface {
	// CreateFile allocates a new empty file and returns its ID.
	CreateFile() FileID
	// DropFile removes a file and its pages.
	DropFile(id FileID)
	// NumPages returns the number of pages in the file.
	NumPages(id FileID) int
	// AppendPage grows the file by one zero page, returning its number.
	AppendPage(id FileID) (int32, error)
	// ReadPage copies the page into dst.
	ReadPage(pid PageID, dst *Page) error
	// WritePage copies the page back to the device.
	WritePage(pid PageID, src *Page) error
	// Sync is the durability barrier (no-op for the in-memory Disk).
	Sync() error
	// Close releases the store; durable stores checkpoint first.
	Close() error

	// Stats returns the cumulative read and write counts.
	Stats() (reads, writes int64)
	// Snapshot atomically snapshots the I/O counters.
	Snapshot() IOStats
	// ResetStats zeroes the I/O counters.
	ResetStats()

	// FailReadsAfter / FailWritesAfter arm one-shot failure injection
	// for tests (see Disk).
	FailReadsAfter(n int64)
	FailWritesAfter(n int64)
}

var (
	_ Store = (*Disk)(nil)
	_ Store = (*FileDisk)(nil)
	_ Store = (*CrashDisk)(nil)
)
