package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// LatchOrder enforces the declared lock hierarchy. Lock classes are
// declared with //tango:lock-order directives (summary.go): a
// directive on a mutex field names its class, and a standalone chain
// (`//tango:lock-order catalog < bufferpool < store`) declares the
// acquisition partial order. The analyzer simulates each function's
// critical sections in source order and flags:
//
//   - re-entry: acquiring a class that is already held (Go mutexes are
//     not reentrant; class-level re-entry is a self-deadlock on the
//     same instance and an undeclared nesting on different instances);
//   - inversion: acquiring class B while holding A when the declared
//     order says B < A (classes with no declared relation are
//     unconstrained — the order is partial by design);
//   - the same two violations reached *interprocedurally*: a call made
//     with a lock held is charged with every class its transitive
//     effect summary may acquire, witness path included;
//   - malformed directives and cycles in the declared order itself.
//
// The simulation is linear in source order (like walorder): a
// deferred Unlock keeps the class held to the end of the function,
// which matches Go's defer semantics. Conditional acquisitions in one
// branch can over-approximate into a sibling branch; in this codebase
// critical sections are `Lock(); defer Unlock()` at function top, so
// in practice the approximation is exact.
var LatchOrder = &Analyzer{
	Name: "latchorder",
	Doc:  "check lock acquisitions against the //tango:lock-order hierarchy, including through calls",
	Run:  runLatchOrder,
}

// heldLock is one entry of the simulated held set.
type heldLock struct {
	class string
	pos   token.Pos
	rlock bool
}

// simulateHeld replays a function's events in source order,
// maintaining the held-lock set and invoking cb before each event is
// applied.
func simulateHeld(ff *funcFacts, cb func(ev funcEvent, held []heldLock)) {
	var held []heldLock
	for _, ev := range ff.events {
		cb(ev, held)
		switch ev.kind {
		case evAcquire:
			held = append(held, heldLock{class: ev.class, pos: ev.pos, rlock: ev.rlock})
		case evRelease:
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].class == ev.class {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		case evDeferRelease:
			// Deferred releases fire at function exit: the class stays
			// held for the remainder of the simulation.
		}
	}
}

func runLatchOrder(pass *Pass) error {
	// Directive hygiene first: malformed directives and order cycles
	// declared by this package.
	_, edges, malformed := collectLockDirectives(pass.pkg())
	for _, d := range malformed {
		pass.diags = append(pass.diags, Diagnostic{Analyzer: pass.Analyzer.Name, Pos: d.Pos, Message: d.Message})
	}
	for _, e := range edges {
		if e.Less == e.Greater || pass.index.Less(e.Greater, e.Less) {
			pos := parseDirectivePos(e.Pos)
			pass.diags = append(pass.diags, Diagnostic{Analyzer: pass.Analyzer.Name, Pos: pos,
				Message: fmt.Sprintf("lock-order declaration %q < %q closes a cycle in the declared hierarchy", e.Less, e.Greater)})
		}
	}

	for _, ff := range pass.facts.order {
		ff := ff
		simulateHeld(ff, func(ev funcEvent, held []heldLock) {
			switch ev.kind {
			case evAcquire:
				checkAcquire(pass, ff, ev.pos, ev.class, held, nil)
			case evCall:
				eff := pass.index.effects(ev.calleeKey)
				if eff == nil || len(held) == 0 {
					return
				}
				for _, class := range sortedClasses(eff.Acquires) {
					checkAcquire(pass, ff, ev.pos, class, held, eff.Acquires[class])
				}
			}
		})
	}
	return nil
}

// checkAcquire validates acquiring `class` against the held set. A
// non-nil witness marks an interprocedural acquisition (the call at
// pos eventually acquires the class via the witness path).
func checkAcquire(pass *Pass, ff *funcFacts, pos token.Pos, class string, held []heldLock, witness []string) {
	via := ""
	if len(witness) > 0 {
		via = fmt.Sprintf(" via %s", strings.Join(witness, " -> "))
	}
	for _, h := range held {
		if h.class == class {
			pass.Reportf(pos, "%s re-enters lock class %q already held since line %d%s",
				ff.name, class, pass.Fset.Position(h.pos).Line, via)
			return
		}
		if pass.index.Less(class, h.class) {
			pass.Reportf(pos, "%s acquires lock class %q while holding %q (held since line %d)%s: declared order is %s < %s",
				ff.name, class, h.class, pass.Fset.Position(h.pos).Line, via, class, h.class)
			return
		}
	}
}

// sortedClasses returns map keys in deterministic order.
func sortedClasses(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// parseDirectivePos converts a "file:line" witness string back into a
// token.Position for reporting.
func parseDirectivePos(s string) token.Position {
	i := strings.LastIndex(s, ":")
	if i < 0 {
		return token.Position{Filename: s}
	}
	line := 0
	fmt.Sscanf(s[i+1:], "%d", &line)
	return token.Position{Filename: s[:i], Line: line}
}
