// Server-side trace propagation: wire operations that arrive with a
// trace header (see wire.AppendHeader) produce finished "dbms.<op>"
// spans parented under the exact client span — the retry attempt, the
// load, the exec — that issued the request. The spans are filed with
// an attached telemetry.Collector, keyed by trace ID, until the
// middleware takes them back for stitching into the query's span tree.
// Without a collector (or without a header) the ...Hdr variants are
// exactly their plain counterparts.
package server

import (
	"sync/atomic"
	"time"

	"tango/internal/meta"
	"tango/internal/telemetry"
	"tango/internal/wire"
)

// SetCollector attaches (or, with nil, detaches) the trace collector.
func (s *Server) SetCollector(c *telemetry.Collector) { s.collector.Store(c) }

// Collector returns the attached trace collector (nil when server-side
// tracing is off).
func (s *Server) Collector() *telemetry.Collector { return s.collector.Load() }

// BadHeaders reports how many requests carried an undecodable trace
// header (a version-skewed or corrupted peer).
func (s *Server) BadHeaders() int64 { return atomic.LoadInt64(&s.badHeaders) }

// beginOp opens the server-side span of one wire op from its trace
// header. It returns nil — making every downstream call free — when
// tracing is off, the request carries no trace, or the header is
// undecodable (counted, not fatal: a bad header must not fail the op).
func (s *Server) beginOp(op string, hdr []byte) *telemetry.Span {
	if s.collector.Load() == nil || len(hdr) == 0 {
		return nil
	}
	h, err := wire.DecodeHeader(hdr)
	if err != nil {
		atomic.AddInt64(&s.badHeaders, 1)
		return nil
	}
	if !h.Valid() {
		return nil
	}
	sp := telemetry.NewRemoteSpan("dbms."+op, telemetry.SpanContext{TraceID: h.TraceID, SpanID: h.SpanID})
	sp.Set("site", "dbms")
	return sp
}

// endOp finishes a server-side op span and files it with the
// collector for stitching.
func (s *Server) endOp(sp *telemetry.Span, err error) {
	if sp == nil {
		return
	}
	if err != nil {
		sp.Set("error", err.Error())
	}
	sp.Finish()
	s.collector.Load().Collect(sp)
}

// ExecHdr is Exec carrying the caller's trace context.
func (s *Server) ExecHdr(hdr []byte, sql string) (int64, error) {
	sp := s.beginOp("exec", hdr)
	n, err := s.Exec(sql)
	s.endOp(sp, err)
	return n, err
}

// QueryHdr is Query carrying the caller's trace context.
func (s *Server) QueryHdr(hdr []byte, sql string, prefetch int) (*Cursor, error) {
	sp := s.beginOp("query", hdr)
	cur, err := s.Query(sql, prefetch)
	s.endOp(sp, err)
	return cur, err
}

// LoadSeqHdr is LoadSeq carrying the caller's trace context.
func (s *Server) LoadSeqHdr(hdr []byte, table string, payload []byte, seq int64) (int64, error) {
	sp := s.beginOp("load", hdr)
	sp.SetInt("bytes", int64(len(payload)))
	n, err := s.LoadSeq(table, payload, seq)
	sp.SetInt("rows", n)
	s.endOp(sp, err)
	return n, err
}

// InsertRowsHdr is InsertRows carrying the caller's trace context.
func (s *Server) InsertRowsHdr(hdr []byte, table string, payload []byte) (int64, error) {
	sp := s.beginOp("insert", hdr)
	n, err := s.InsertRows(table, payload)
	sp.SetInt("rows", n)
	s.endOp(sp, err)
	return n, err
}

// TableStatsHdr is TableStats carrying the caller's trace context.
func (s *Server) TableStatsHdr(hdr []byte, table string, histogramBuckets int) (*meta.TableStats, error) {
	sp := s.beginOp("stats", hdr)
	st, err := s.TableStats(table, histogramBuckets)
	s.endOp(sp, err)
	return st, err
}

// FetchBatchHdr is FetchBatch carrying the caller's trace context.
func (c *Cursor) FetchBatchHdr(hdr []byte) ([]byte, error) {
	sp := c.srv.beginOp("fetch", hdr)
	payload, err := c.FetchBatch()
	sp.SetInt("bytes", int64(len(payload)))
	c.srv.endOp(sp, err)
	return payload, err
}

// FetchBatchSeqHdr is FetchBatchSeq carrying the caller's trace
// context.
func (c *Cursor) FetchBatchSeqHdr(hdr []byte, seq int64, dst []byte) ([]byte, error) {
	sp := c.srv.beginOp("fetch", hdr)
	sp.SetInt("seq", seq)
	payload, err := c.FetchBatchSeq(seq, dst)
	sp.SetInt("bytes", int64(len(payload)))
	c.srv.endOp(sp, err)
	return payload, err
}

// FetchBatchPipelinedSeqHdr is FetchBatchPipelinedSeq carrying the
// caller's trace context.
func (c *Cursor) FetchBatchPipelinedSeqHdr(hdr []byte, seq int64, dst []byte) ([]byte, time.Duration, error) {
	sp := c.srv.beginOp("fetch", hdr)
	sp.SetInt("seq", seq)
	payload, delay, err := c.FetchBatchPipelinedSeq(seq, dst)
	sp.SetInt("bytes", int64(len(payload)))
	c.srv.endOp(sp, err)
	return payload, delay, err
}
