package client

import (
	"strings"
	"testing"

	"tango/internal/rel"
	"tango/internal/telemetry"
	"tango/internal/types"
)

func sampleTuples(n int) []types.Tuple {
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i)), types.Str("name"), types.Int(int64(i)), types.Int(int64(i + 10))}
	}
	return rows
}

// TestFeedbackFieldsQuery checks Feedback on the pipelined Query path:
// rows, bytes, and elapsed must all be populated once the iterator is
// drained.
func TestFeedbackFieldsQuery(t *testing.T) {
	c := testConn(t)
	rows, err := c.Query("SELECT PosID, T1 FROM POSITION")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rel.Drain(rows); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	fb := rows.Feedback()
	if fb.Rows != 3 {
		t.Errorf("Rows = %d, want 3", fb.Rows)
	}
	if fb.Bytes <= 0 {
		t.Errorf("Bytes = %d, want > 0", fb.Bytes)
	}
	if fb.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", fb.Elapsed)
	}
	if !strings.Contains(fb.SQL, "SELECT") {
		t.Errorf("SQL = %q", fb.SQL)
	}
}

// TestFeedbackFieldsQueryClosedEarly checks that closing before
// draining still yields a valid Elapsed (the cursor is abandoned).
func TestFeedbackFieldsQueryClosedEarly(t *testing.T) {
	c := testConn(t)
	rows, err := c.Query("SELECT PosID FROM POSITION")
	if err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	fb := rows.Feedback()
	if fb.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0 after early close", fb.Elapsed)
	}
	if fb.SQL == "" {
		t.Error("SQL not recorded on early close")
	}
}

// TestFeedbackFieldsQueryAll checks the materializing path.
func TestFeedbackFieldsQueryAll(t *testing.T) {
	c := testConn(t)
	out, fb, err := c.QueryAll("SELECT PosID, EmpName, T1, T2 FROM POSITION")
	if err != nil {
		t.Fatal(err)
	}
	if int64(out.Cardinality()) != fb.Rows {
		t.Errorf("result %d rows but feedback %d", out.Cardinality(), fb.Rows)
	}
	if fb.Bytes <= 0 || fb.Elapsed <= 0 {
		t.Errorf("feedback incomplete: %+v", fb)
	}
}

// TestFeedbackFieldsLoad checks the bulk-load (direct path) feedback.
func TestFeedbackFieldsLoad(t *testing.T) {
	c := testConn(t)
	if err := c.CreateTable("BULK", types.NewSchema(
		types.Column{Name: "G", Kind: types.KindInt},
		types.Column{Name: "N", Kind: types.KindString},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
	)); err != nil {
		t.Fatal(err)
	}
	fb, err := c.Load("BULK", sampleTuples(100))
	if err != nil {
		t.Fatal(err)
	}
	if fb.Rows != 100 {
		t.Errorf("Rows = %d, want 100", fb.Rows)
	}
	if fb.Bytes <= 0 || fb.Elapsed <= 0 {
		t.Errorf("feedback incomplete: %+v", fb)
	}
	if !strings.HasPrefix(fb.SQL, "LOAD ") {
		t.Errorf("SQL = %q, want LOAD prefix (adaptive loop keys on it)", fb.SQL)
	}
}

// TestFeedbackFieldsInsertRows checks the per-row INSERT ablation
// path: same fields, different SQL tag so adaptation can tell the
// paths apart.
func TestFeedbackFieldsInsertRows(t *testing.T) {
	c := testConn(t)
	if err := c.CreateTable("SLOW", types.NewSchema(
		types.Column{Name: "G", Kind: types.KindInt},
		types.Column{Name: "N", Kind: types.KindString},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
	)); err != nil {
		t.Fatal(err)
	}
	fb, err := c.InsertRows("SLOW", sampleTuples(25))
	if err != nil {
		t.Fatal(err)
	}
	if fb.Rows != 25 {
		t.Errorf("Rows = %d, want 25", fb.Rows)
	}
	if fb.Bytes <= 0 || fb.Elapsed <= 0 {
		t.Errorf("feedback incomplete: %+v", fb)
	}
	if !strings.HasPrefix(fb.SQL, "INSERT ") {
		t.Errorf("SQL = %q, want INSERT prefix", fb.SQL)
	}
}

// TestWireMetricsRecorded checks that a connection with a registry
// attached exports the wire series in both directions.
func TestWireMetricsRecorded(t *testing.T) {
	c := testConn(t)
	reg := telemetry.NewRegistry()
	c.Metrics = reg
	if _, _, err := c.QueryAll("SELECT PosID FROM POSITION"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("M", types.NewSchema(
		types.Column{Name: "G", Kind: types.KindInt},
		types.Column{Name: "N", Kind: types.KindString},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load("M", sampleTuples(10)); err != nil {
		t.Fatal(err)
	}
	in := reg.Counter("tango_wire_bytes_total", telemetry.Labels{"dir": "in"}).Value()
	out := reg.Counter("tango_wire_bytes_total", telemetry.Labels{"dir": "out"}).Value()
	if in <= 0 || out <= 0 {
		t.Errorf("wire bytes in=%d out=%d, want both > 0", in, out)
	}
	if n := reg.Counter("tango_client_statements_total", telemetry.Labels{"kind": "query"}).Value(); n != 1 {
		t.Errorf("query statements = %d, want 1", n)
	}
	if n := reg.Counter("tango_client_statements_total", telemetry.Labels{"kind": "load"}).Value(); n != 1 {
		t.Errorf("load statements = %d, want 1", n)
	}
}
