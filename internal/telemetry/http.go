package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry over HTTP:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON exposition
//	/debug/vars    expvar-style JSON (alias of /metrics.json)
//	/debug/pprof/  Go profiling endpoints
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	jsonHandler := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	}
	mux.HandleFunc("/metrics.json", jsonHandler)
	mux.HandleFunc("/debug/vars", jsonHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve exposes the registry on addr (e.g. "localhost:9090" or
// ":0" for an ephemeral port) in a background goroutine. It returns
// the bound address and a shutdown function.
func Serve(addr string, reg *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(reg)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
