package tango_test

import (
	"fmt"

	"tango/internal/engine"
	"tango/internal/server"
	"tango/internal/tango"
	"tango/internal/tsql"
	"tango/internal/wire"
)

// Example shows the complete middleware loop on the paper's running
// example: boot a DBMS, load Figure 3(a), ask the temporal aggregation
// question in temporal SQL, and let the optimizer split the plan.
func Example() {
	db := engine.Open(engine.Config{})
	srv := server.New(db, wire.Latency{})
	mw := tango.Open(srv, tango.Options{HistogramBuckets: 8})

	mw.Conn.Exec("CREATE TABLE POSITION (PosID INTEGER, EmpName VARCHAR(40), T1 INTEGER, T2 INTEGER)")
	mw.Conn.Exec("INSERT INTO POSITION VALUES (1,'Tom',2,20),(1,'Jane',5,25),(2,'Tom',5,10)")

	plan, err := tsql.Parse(`VALIDTIME SELECT PosID, COUNT(PosID)
		FROM POSITION GROUP BY PosID ORDER BY PosID`, mw.Cat)
	if err != nil {
		panic(err)
	}
	result, _, err := mw.Run(plan)
	if err != nil {
		panic(err)
	}
	pos := result.Schema.MustIndex("PosID")
	t1 := result.Schema.MustIndex("T1")
	t2 := result.Schema.MustIndex("T2")
	cnt := result.Schema.MustIndex("COUNTofPosID")
	for _, row := range result.Tuples {
		fmt.Printf("%v [%v,%v) -> %v\n", row[pos], row[t1], row[t2], row[cnt])
	}
	// Output:
	// 1 [2,5) -> 1
	// 1 [5,20) -> 2
	// 1 [20,25) -> 1
	// 2 [5,10) -> 1
}
