// Package sqlast defines the abstract syntax tree for the SQL subset
// understood by the DBMS engine: SELECT (joins, derived tables,
// GROUP BY, ORDER BY, UNION, DISTINCT, hints), CREATE TABLE, DROP
// TABLE, INSERT, CREATE INDEX, and ANALYZE. The middleware's
// Translator-To-SQL emits text that parses back into these nodes.
package sqlast

import (
	"fmt"
	"strings"

	"tango/internal/types"
)

// Statement is any SQL statement.
type Statement interface {
	stmt()
	String() string
}

// Expr is any scalar expression.
type Expr interface {
	expr()
	String() string
}

// --- Expressions ---

// ColumnRef names a column, optionally qualified by a table alias.
type ColumnRef struct {
	Table string // optional
	Name  string
}

// Literal is a constant value.
type Literal struct {
	Value types.Value
}

// Star is the "*" select item (also COUNT(*) argument).
type Star struct{}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	OpEq BinaryOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
)

var binaryOpNames = map[BinaryOp]string{
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
}

// String returns the SQL spelling of the operator.
func (op BinaryOp) String() string { return binaryOpNames[op] }

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op          BinaryOp
	Left, Right Expr
}

// UnaryExpr is NOT x or -x.
type UnaryExpr struct {
	Op      string // "NOT" or "-"
	Operand Expr
}

// FuncCall is a function or aggregate call. Distinct applies to
// aggregates (COUNT(DISTINCT x)).
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr // Star{} allowed for COUNT(*)
	Distinct bool
}

// Between is x BETWEEN lo AND hi (inclusive).
type Between struct {
	Expr   Expr
	Lo, Hi Expr
	Not    bool
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	Expr Expr
	Not  bool
}

func (ColumnRef) expr()  {}
func (Literal) expr()    {}
func (Star) expr()       {}
func (BinaryExpr) expr() {}
func (UnaryExpr) expr()  {}
func (FuncCall) expr()   {}
func (Between) expr()    {}
func (IsNull) expr()     {}

// String renders the column reference.
func (c ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// String renders the literal as SQL.
func (l Literal) String() string { return l.Value.SQL() }

// String renders "*".
func (Star) String() string { return "*" }

// String renders the expression with full parenthesization.
func (b BinaryExpr) String() string {
	return "(" + b.Left.String() + " " + b.Op.String() + " " + b.Right.String() + ")"
}

// String renders the unary expression.
func (u UnaryExpr) String() string {
	if u.Op == "NOT" {
		return "NOT (" + u.Operand.String() + ")"
	}
	return "(" + u.Op + u.Operand.String() + ")"
}

// String renders the call.
func (f FuncCall) String() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return f.Name + "(" + d + strings.Join(args, ", ") + ")"
}

// String renders the BETWEEN predicate.
func (b Between) String() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return "(" + b.Expr.String() + " " + not + "BETWEEN " + b.Lo.String() + " AND " + b.Hi.String() + ")"
}

// String renders the IS NULL predicate.
func (n IsNull) String() string {
	if n.Not {
		return "(" + n.Expr.String() + " IS NOT NULL)"
	}
	return "(" + n.Expr.String() + " IS NULL)"
}

// --- Table references ---

// TableRef is an entry in a FROM clause.
type TableRef interface {
	tableRef()
	String() string
}

// TableName references a base table, optionally aliased.
type TableName struct {
	Name  string
	Alias string // optional
}

// Derived is a parenthesized subquery with an alias.
type Derived struct {
	Select *SelectStmt
	Alias  string
}

func (TableName) tableRef() {}
func (Derived) tableRef()   {}

// String renders the table reference.
func (t TableName) String() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// String renders the derived table.
func (d Derived) String() string {
	return "(" + d.Select.String() + ") " + d.Alias
}

// --- Statements ---

// SelectItem is one entry of the select list.
type SelectItem struct {
	Expr  Expr
	Alias string // optional
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// JoinHint requests a join method, mirroring the Oracle hints the
// paper uses in Query 4.
type JoinHint int

// Join hints.
const (
	HintNone JoinHint = iota
	HintNestedLoop
	HintMerge
	HintHash
)

// SelectStmt is a SELECT, possibly with a UNION chain.
type SelectStmt struct {
	Hint     JoinHint
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr // nil when absent
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	// Union, when non-nil, is the right operand of UNION [ALL]. The
	// ORDER BY of the leftmost SELECT applies to the union result.
	Union    *SelectStmt
	UnionAll bool
	// Limit caps the result row count; 0 means no limit.
	Limit int64
}

// CreateTable defines a new table.
type CreateTable struct {
	Name    string
	Columns []ColumnDef
}

// ColumnDef is one column definition.
type ColumnDef struct {
	Name string
	Kind types.Kind
}

// DropTable removes a table.
type DropTable struct {
	Name     string
	IfExists bool
}

// Insert adds rows to a table. Either Values or Select is set.
type Insert struct {
	Table   string
	Columns []string // optional
	Values  [][]Expr
	Select  *SelectStmt
}

// CreateIndex builds a secondary index on one column.
type CreateIndex struct {
	Name   string
	Table  string
	Column string
}

// Analyze recomputes optimizer statistics for a table.
type Analyze struct {
	Table string
	// HistogramBuckets, when >0, builds height-balanced histograms with
	// that many buckets on every orderable column.
	HistogramBuckets int
}

func (*SelectStmt) stmt()  {}
func (*CreateTable) stmt() {}
func (*DropTable) stmt()   {}
func (*Insert) stmt()      {}
func (*CreateIndex) stmt() {}
func (*Analyze) stmt()     {}

// String renders the SELECT back to SQL.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch s.Hint {
	case HintNestedLoop:
		b.WriteString("/*+ USE_NL */ ")
	case HintMerge:
		b.WriteString("/*+ USE_MERGE */ ")
	case HintHash:
		b.WriteString("/*+ USE_HASH */ ")
	}
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.Expr.String())
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, f := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.String())
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if s.Union != nil {
		if s.UnionAll {
			b.WriteString(" UNION ALL ")
		} else {
			b.WriteString(" UNION ")
		}
		b.WriteString(s.Union.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// String renders the CREATE TABLE statement.
func (c *CreateTable) String() string {
	cols := make([]string, len(c.Columns))
	for i, col := range c.Columns {
		cols[i] = col.Name + " " + col.Kind.String()
	}
	return "CREATE TABLE " + c.Name + " (" + strings.Join(cols, ", ") + ")"
}

// String renders the DROP TABLE statement.
func (d *DropTable) String() string {
	ie := ""
	if d.IfExists {
		ie = "IF EXISTS "
	}
	return "DROP TABLE " + ie + d.Name
}

// String renders the INSERT statement.
func (i *Insert) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO " + i.Table)
	if len(i.Columns) > 0 {
		b.WriteString(" (" + strings.Join(i.Columns, ", ") + ")")
	}
	if i.Select != nil {
		b.WriteString(" " + i.Select.String())
		return b.String()
	}
	b.WriteString(" VALUES ")
	for r, row := range i.Values {
		if r > 0 {
			b.WriteString(", ")
		}
		vals := make([]string, len(row))
		for j, v := range row {
			vals[j] = v.String()
		}
		b.WriteString("(" + strings.Join(vals, ", ") + ")")
	}
	return b.String()
}

// String renders the CREATE INDEX statement.
func (c *CreateIndex) String() string {
	return fmt.Sprintf("CREATE INDEX %s ON %s (%s)", c.Name, c.Table, c.Column)
}

// String renders the ANALYZE statement.
func (a *Analyze) String() string {
	if a.HistogramBuckets > 0 {
		return fmt.Sprintf("ANALYZE %s HISTOGRAM %d", a.Table, a.HistogramBuckets)
	}
	return "ANALYZE " + a.Table
}

// Walk visits every expression node in the tree rooted at e, calling
// fn before descending. fn returning false prunes the subtree.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case BinaryExpr:
		Walk(x.Left, fn)
		Walk(x.Right, fn)
	case UnaryExpr:
		Walk(x.Operand, fn)
	case FuncCall:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case Between:
		Walk(x.Expr, fn)
		Walk(x.Lo, fn)
		Walk(x.Hi, fn)
	case IsNull:
		Walk(x.Expr, fn)
	}
}

// Conjuncts splits a predicate on top-level ANDs.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(BinaryExpr); ok && b.Op == OpAnd {
		return append(Conjuncts(b.Left), Conjuncts(b.Right)...)
	}
	return []Expr{e}
}

// AndAll joins expressions with AND; nil for an empty slice.
func AndAll(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = BinaryExpr{Op: OpAnd, Left: out, Right: e}
		}
	}
	return out
}

// HasAggregate reports whether the expression contains an aggregate
// function call.
func HasAggregate(e Expr) bool {
	found := false
	Walk(e, func(x Expr) bool {
		if f, ok := x.(FuncCall); ok && IsAggregateName(f.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// IsAggregateName reports whether the (upper-case) function name is an
// aggregate.
func IsAggregateName(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}
