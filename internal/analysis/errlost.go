package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrLost flags silently dropped errors from lifecycle and wire calls:
//
//   - a statement-position call to Close/Next/Open (or any function in
//     the wire package) whose error result vanishes, e.g. `it.Close()`
//     as its own statement;
//   - a multi-result assignment that keeps the values but blanks the
//     error, e.g. `t, ok, _ := it.Next()` or `batch, _ :=
//     wire.DecodeBatch(p)`.
//
// Two idioms are deliberately allowed: `defer x.Close()` (a cleanup
// path whose error has no handler to reach) and the explicit
// single-result discard `_ = x.Close()`, which is visible
// acknowledgment. Anything subtler needs handling or a
// //lint:ignore errlost comment explaining why the drop is safe.
//
// Exception to the exception: in durability-tagged packages
// (//tango:durability, the walorder opt-in) `defer x.Close()` IS a
// finding. On a durability path Close is where buffered writes and
// the final fsync surface their failure — deferring it without
// capturing the error (e.g. into a named return) silently reports a
// torn file as committed.
var ErrLost = &Analyzer{
	Name: "errlost",
	Doc:  "check that errors from Close/Next/Open and wire calls are not dropped",
	Run:  runErrLost,
}

// errLostMethods are the lifecycle methods whose errors must not be
// dropped.
var errLostMethods = map[string]bool{"Close": true, "Next": true, "Open": true}

// errLostPkgSuffixes mark whole packages whose exported functions'
// errors must not be dropped (the serialization boundary: a dropped
// decode error silently truncates a transfer).
var errLostPkgSuffixes = []string{"internal/wire"}

func runErrLost(pass *Pass) error {
	durable := hasDurabilityTag(pass.Files)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.DeferStmt:
				if !durable {
					return true
				}
				if name, idx := errLostTarget(pass, s.Call); idx >= 0 && calleeName(pass, s.Call) == "Close" {
					pass.Reportf(s.Call.Pos(), "error returned by deferred %s is silently dropped on a durability path: capture it (e.g. `defer func() { err = f.Close() }()`)", name)
				}
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, idx := errLostTarget(pass, call); idx >= 0 {
					pass.Reportf(call.Pos(), "error returned by %s is silently dropped", name)
				}
			case *ast.AssignStmt:
				checkErrLostAssign(pass, s)
			case *ast.GoStmt:
				if name, idx := errLostTarget(pass, s.Call); idx >= 0 {
					pass.Reportf(s.Call.Pos(), "error returned by %s is silently dropped (go statement)", name)
				}
			}
			return true
		})
	}
	return nil
}

// errLostTarget reports whether the call is one whose error must be
// consumed; it returns a display name and the error result index, or
// -1 when the call is not interesting.
func errLostTarget(pass *Pass, call *ast.CallExpr) (string, int) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return "", -1
	}
	sig, _ := fn.Type().(*types.Signature)
	idx := errResultIndex(sig)
	if idx < 0 {
		return "", -1
	}
	name := fn.Name()
	interesting := false
	if sig.Recv() != nil && errLostMethods[name] {
		interesting = true
		name = recvTypeName(sig) + "." + name
	}
	if fn.Pkg() != nil {
		for _, suffix := range errLostPkgSuffixes {
			if strings.HasSuffix(fn.Pkg().Path(), suffix) {
				interesting = true
				name = fn.Pkg().Name() + "." + fn.Name()
			}
		}
	}
	if !interesting {
		return "", -1
	}
	return name, idx
}

// checkErrLostAssign flags multi-result assignments that blank the
// error while keeping other results.
func checkErrLostAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, idx := errLostTarget(pass, call)
	if idx < 0 || len(as.Lhs) != idx+1 || len(as.Lhs) < 2 {
		// Single-result `_ = x.Close()` is the sanctioned explicit
		// discard; only multi-result blanking is sneaky.
		return
	}
	errLHS, ok := ast.Unparen(as.Lhs[idx]).(*ast.Ident)
	if !ok || errLHS.Name != "_" {
		return
	}
	// If every result is blanked the drop is as explicit as `_ =`.
	allBlank := true
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
			allBlank = false
			break
		}
	}
	if allBlank {
		return
	}
	pass.Reportf(errLHS.Pos(), "error result of %s assigned to _ while other results are kept", name)
}

// calleeName returns the called function's bare name, or "".
func calleeName(pass *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass.Info, call); fn != nil {
		return fn.Name()
	}
	return ""
}

// recvTypeName renders the receiver type name of a method signature.
func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
