// Package suppress exercises the suppression machinery itself:
// file-level //lint:file-ignore directives, used line directives, and
// the stale-suppression check that keeps silenced findings from
// outliving their fix.
//
//lint:file-ignore errlost fixture: every dropped error below is deliberate
package suppress

type res struct{}

func (*res) Close() error             { return nil }
func (*res) Next() (int, bool, error) { return 0, false, nil }

// fileIgnored drops lifecycle errors with impunity: the file-level
// directive covers the whole file, so none of these may surface.
func fileIgnored(r *res) {
	r.Close()
	go r.Close()
	v, ok, _ := r.Next()
	_, _ = v, ok
}

// clean has nothing to suppress, so its directive is stale — but only
// directives naming analyzers in the run set are reported, so the
// walorder one below stays quiet when only errlost runs.
func clean(r *res) error {
	//lint:ignore errlost nothing on the next line drops an error // want `stale suppression`
	err := r.Close()
	//lint:ignore walorder not in the run set, so never reported as stale
	return err
}
