package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// IterClose verifies the Open → Next* → Close lifecycle of iterator
// values (anything shaped like rel.Iterator). For every function-local
// iterator that is opened in a function — or acquired from a
// cursor-opening call such as Conn.Query — the analyzer requires that
// the function either closes it (a call or defer of Close) or hands
// ownership away (returns it, stores it in a field, or passes it to
// another function). It additionally flags:
//
//   - early returns between a non-deferred Open and its Close, which
//     leak the iterator on error paths (the fix is `defer X.Close()`);
//   - calls to Next (or the batch protocol's NextBatch) on an iterator
//     after a loop that exhausted it, without an intervening re-Open.
//
// NextBatch counts as a consuming use exactly like Next, so
// batch-at-a-time consumers and the parallel iterator wrappers
// (prefetchers, partitioned operators) are held to the same lifecycle
// contract as tuple-at-a-time code.
//
// The analysis is intraprocedural, and receiver-field iterators are
// exempt: an iterator stored in a struct field is closed by the
// struct's own Close method, which is checked wherever that struct is
// itself used as a local.
var IterClose = &Analyzer{
	Name: "iterclose",
	Doc:  "check that every opened iterator is closed on all paths",
	Run:  runIterClose,
}

// openerNames are methods whose result is an already-open cursor; a
// local acquired from one must be closed even though no explicit Open
// call appears.
var openerNames = map[string]bool{"Query": true}

func runIterClose(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkIterBody(pass, fn.Body)
				}
				return true
			case *ast.FuncLit:
				checkIterBody(pass, fn.Body)
				return true
			}
			return true
		})
	}
	return nil
}

type iterUseKind uint8

const (
	useOpen iterUseKind = iota
	useClose
	useNext
	useEscape
	useNeutral
)

// iterUse is one classified occurrence of a tracked variable.
type iterUse struct {
	kind    iterUseKind
	method  string // selector name for method-call uses ("Next", "NextBatch", ...)
	pos     token.Pos
	stmtEnd token.Pos // end of the enclosing block-level statement
	defer_  bool
	inLoop  bool
}

// iterTrack is the per-variable lifecycle record.
type iterTrack struct {
	obj        *types.Var
	name       string
	uses       []iterUse
	acquiredAt token.Pos // opening acquisition (Query) site, or NoPos
	acquireEnd token.Pos
}

// checkIterBody analyzes one function body. Nested function literals
// are walked for uses (a close inside a deferred closure counts) but
// their own locals are analyzed in their own pass.
func checkIterBody(pass *Pass, body *ast.BlockStmt) {
	tracks := map[*types.Var]*iterTrack{}
	track := func(obj *types.Var) *iterTrack {
		t, ok := tracks[obj]
		if !ok {
			t = &iterTrack{obj: obj, name: obj.Name()}
			tracks[obj] = t
		}
		return t
	}

	// localIterVar resolves an identifier to a function-local (or
	// parameter) iterator-shaped variable.
	localIterVar := func(id *ast.Ident) *types.Var {
		obj, _ := pass.Info.Uses[id].(*types.Var)
		if obj == nil {
			obj, _ = pass.Info.Defs[id].(*types.Var)
		}
		if obj == nil || obj.IsField() || obj.Parent() == nil || obj.Parent() == pass.Pkg.Scope() {
			return nil
		}
		if !isIteratorLike(obj.Type()) {
			return nil
		}
		return obj
	}

	classify := func(id *ast.Ident, sel *ast.SelectorExpr, call *ast.CallExpr, inDefer, inLoop bool, stmtEnd token.Pos) {
		obj := localIterVar(id)
		if obj == nil {
			return
		}
		t := track(obj)
		kind := useEscape
		method := ""
		if sel != nil && call != nil {
			method = sel.Sel.Name
			switch method {
			case "Open":
				kind = useOpen
			case "Close":
				kind = useClose
			case "Next", "NextBatch":
				// Both the tuple-at-a-time and the batch protocol consume
				// the stream; an exhausted iterator is exhausted for both.
				kind = useNext
			default:
				kind = useNeutral
			}
		}
		t.uses = append(t.uses, iterUse{kind: kind, method: method, pos: id.Pos(), stmtEnd: stmtEnd, defer_: inDefer, inLoop: inLoop})
	}

	// curStmt is the innermost *block-level* statement being visited;
	// stmtEnd anchors "where does this action's statement end", so an
	// open inside `if err := x.Open(); err != nil { return }` spans the
	// whole if (its error-check return is part of the open).
	var curStmt ast.Stmt

	var visit func(n ast.Node, inDefer, inLoop bool)
	visitChildren := func(n ast.Node, inDefer, inLoop bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if c != nil {
				visit(c, inDefer, inLoop)
			}
			return false
		})
	}
	visit = func(n ast.Node, inDefer, inLoop bool) {
		if n == nil {
			return
		}
		switch s := n.(type) {
		case *ast.BlockStmt:
			for _, st := range s.List {
				prev := curStmt
				curStmt = st
				visit(st, inDefer, inLoop)
				curStmt = prev
			}
			return
		case *ast.CaseClause:
			for _, e := range s.List {
				visit(e, inDefer, inLoop)
			}
			for _, st := range s.Body {
				prev := curStmt
				curStmt = st
				visit(st, inDefer, inLoop)
				curStmt = prev
			}
			return
		case *ast.CommClause:
			visit(s.Comm, inDefer, inLoop)
			for _, st := range s.Body {
				prev := curStmt
				curStmt = st
				visit(st, inDefer, inLoop)
				curStmt = prev
			}
			return
		case *ast.DeferStmt:
			visit(s.Call, true, inLoop)
			return
		case *ast.ForStmt:
			visit(s.Init, inDefer, inLoop)
			visit(s.Cond, inDefer, true)
			visit(s.Post, inDefer, true)
			visit(s.Body, inDefer, true)
			return
		case *ast.RangeStmt:
			visit(s.X, inDefer, inLoop)
			visit(s.Body, inDefer, true)
			return
		case *ast.AssignStmt:
			// Plain identifiers on the left are (re)definitions, not
			// uses; complex left-hand sides (fields, indexes) are.
			for _, lhs := range s.Lhs {
				if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
					visit(lhs, inDefer, inLoop)
				}
			}
			for _, rhs := range s.Rhs {
				visit(rhs, inDefer, inLoop)
			}
			return
		case *ast.ValueSpec:
			for _, v := range s.Values {
				visit(v, inDefer, inLoop)
			}
			return
		case *ast.FuncLit:
			// Record uses (closes in closures count); the literal's own
			// lifecycle analysis happens in its own checkIterBody pass.
			visit(s.Body, inDefer, inLoop)
			return
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok {
				if id, ok2 := ast.Unparen(sel.X).(*ast.Ident); ok2 {
					classify(id, sel, s, inDefer, inLoop, stmtEndOr(curStmt, s))
					for _, arg := range s.Args {
						visit(arg, inDefer, inLoop)
					}
					return
				}
			}
			visitChildren(s, inDefer, inLoop)
			return
		case *ast.Ident:
			classify(s, nil, nil, inDefer, inLoop, stmtEndOr(curStmt, s))
			return
		case *ast.SelectorExpr:
			// x.Field / pkg.Name: only the operand can be a local.
			visit(s.X, inDefer, inLoop)
			return
		}
		visitChildren(n, inDefer, inLoop)
	}
	visit(body, false, false)

	// Find opening acquisitions (x, err := c.Query(...)).
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || !openerNames[fn.Name()] {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if obj := localIterVar(id); obj != nil {
			t := track(obj)
			if t.acquiredAt == token.NoPos {
				t.acquiredAt = as.Pos()
				t.acquireEnd = as.End()
			}
		}
		return true
	})

	for _, t := range tracks {
		decideIterTrack(pass, body, t)
	}
}

func stmtEndOr(s ast.Stmt, n ast.Node) token.Pos {
	if s != nil {
		return s.End()
	}
	return n.End()
}

// decideIterTrack reports lifecycle violations for one variable.
func decideIterTrack(pass *Pass, body *ast.BlockStmt, t *iterTrack) {
	var opens, closes, nexts []iterUse
	escaped := false
	for _, u := range t.uses {
		switch u.kind {
		case useOpen:
			opens = append(opens, u)
		case useClose:
			closes = append(closes, u)
		case useNext:
			nexts = append(nexts, u)
		case useEscape:
			escaped = true
		}
	}
	openedAt, openEnd := token.NoPos, token.NoPos
	if len(opens) > 0 {
		openedAt, openEnd = opens[0].pos, opens[0].stmtEnd
	} else if t.acquiredAt != token.NoPos {
		openedAt, openEnd = t.acquiredAt, t.acquireEnd
	}
	if openedAt == token.NoPos {
		return // never opened here: nothing to enforce
	}
	if escaped {
		return // ownership handed away (returned, stored, passed on)
	}
	if len(closes) == 0 {
		pass.Reportf(openedAt, "%s is opened but never closed in this function", t.name)
		return
	}

	deferred := false
	for _, c := range closes {
		if c.defer_ {
			deferred = true
			break
		}
	}
	if !deferred {
		firstClose := closes[0].pos
		for _, c := range closes {
			if c.pos < firstClose {
				firstClose = c.pos
			}
		}
		if firstClose > openEnd {
			if leak := findReturnBetween(body, openEnd, firstClose); leak != token.NoPos {
				pass.Reportf(leak, "return leaks %s: opened at line %d, closed only at line %d (use defer %s.Close())",
					t.name, pass.Fset.Position(openedAt).Line, pass.Fset.Position(firstClose).Line, t.name)
			}
		}
	}

	reportNextAfterLoop(pass, t, opens, nexts)
}

// findReturnBetween locates the first return statement strictly
// between two positions, skipping returns inside function literals and
// the single error-check if that immediately follows the open (`if err
// != nil { return err }`, where the iterator never opened).
func findReturnBetween(body *ast.BlockStmt, after, before token.Pos) token.Pos {
	var skip *ast.IfStmt
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if ifs.Pos() >= after && (skip == nil || ifs.Pos() < skip.Pos()) && isErrCheck(ifs) {
			skip = ifs
		}
		return true
	})
	found := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if ret.Pos() <= after || ret.Pos() >= before {
			return true
		}
		if skip != nil && ret.Pos() >= skip.Pos() && ret.End() <= skip.End() {
			return true // the open's own error check
		}
		if found == token.NoPos || ret.Pos() < found {
			found = ret.Pos()
		}
		return true
	})
	return found
}

// isErrCheck matches `if <cond mentioning an error-ish name> { ...;
// return ... }` with a short body and no else.
func isErrCheck(ifs *ast.IfStmt) bool {
	if ifs.Else != nil || len(ifs.Body.List) == 0 || len(ifs.Body.List) > 2 {
		return false
	}
	if _, ok := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt); !ok {
		return false
	}
	mentions := false
	ast.Inspect(ifs.Cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			name := id.Name
			if name == "err" || name == "ok" || (len(name) > 3 && name[len(name)-3:] == "Err") {
				mentions = true
			}
		}
		return true
	})
	return mentions
}

// reportNextAfterLoop flags Next calls positioned after a loop that
// already consumed the iterator, without a re-Open in between.
func reportNextAfterLoop(pass *Pass, t *iterTrack, opens, nexts []iterUse) {
	for _, consumed := range nexts {
		if !consumed.inLoop {
			continue
		}
		for _, after := range nexts {
			if after.inLoop || after.pos <= consumed.stmtEnd {
				continue
			}
			reopened := false
			for _, o := range opens {
				if o.pos > consumed.pos && o.pos < after.pos {
					reopened = true
					break
				}
			}
			if !reopened {
				pass.Reportf(after.pos, "%s.%s() after the consuming loop at line %d: the iterator is exhausted; re-Open it first",
					t.name, after.method, pass.Fset.Position(consumed.pos).Line)
				return
			}
		}
	}
}
