# TANGO temporal middleware — build / verify targets.

GO ?= go

# Fuzz smoke budget per target (ci runs each fuzzer this long).
FUZZTIME ?= 10s

.PHONY: all build vet lint lint-fix lint-report test race fuzz chaos crash load bench-smoke bench-json ci clean

# Benchmark report written by bench-json.
BENCHOUT ?= BENCH_10.json

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the project-specific analyzers (iterator and span
# lifecycles, dropped errors, mixed atomic/plain field access,
# hand-written operator schemas, and the interprocedural concurrency
# suite: latch order, lock-held I/O, goroutine leaks) over the whole
# tree, with per-package parallelism and a content-hash summary cache
# under .tangolint-cache/ — the stderr summary prints elapsed time and
# how many packages were served from the cache, so a warm rerun shows
# its speedup directly. Exit status 1 means findings.
lint:
	$(GO) run ./cmd/tangolint -cache .tangolint-cache ./...

# lint-fix is lint plus the machine-applyable suggestion attached to
# each finding that has one (e.g. "delete the suppression comment").
lint-fix:
	$(GO) run ./cmd/tangolint -fix -cache .tangolint-cache ./...

# lint-report is the ci form: same gate (a finding fails the build),
# but the machine-readable report is published to lint.json either
# way — stdout is redirected before the exit status is checked.
lint-report:
	$(GO) run ./cmd/tangolint -json -cache .tangolint-cache ./... > lint.json

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz smoke-runs the parser fuzz targets and the fault-schedule
# decoder for FUZZTIME each, seeded from the evaluation workload. Any
# crasher is written to the package's testdata/fuzz corpus and replays
# under plain `go test`.
fuzz:
	$(GO) test ./internal/sqlparser/ -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/tsql/ -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire/ -run='^$$' -fuzz=FuzzParseSchedule -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire/ -run='^$$' -fuzz=FuzzDecodeFrame -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/storage/ -run='^$$' -fuzz=FuzzWALDecode -fuzztime=$(FUZZTIME)

# chaos runs the seeded fault-injection sweep (every seed query under
# drop/stall/partial schedules at both parallelism widths, plus the
# 8-session concurrent sweep sharing one server) and the wire-death
# regression tests under the race detector. -short trims
# the schedule grid so ci stays fast; run `go test ./internal/bench/
# -run Chaos` for the full sweep.
chaos:
	$(GO) test ./internal/bench/ -run 'Chaos' -race -short
	$(GO) test ./internal/client/ -run 'Windowed|Do|Backoff' -race

# crash runs the deterministic crash matrix under the race detector:
# every scripted WAL/page death point in the standard workload is
# swept (strided in -short), plus the concurrent variant — a store
# death mid-T^D-load under 16 live reader sessions — and after each
# the directory is reopened and the recovered state must equal a
# committed pre- or post-load state — never a torn one. Run `go test ./internal/bench/ -run TestCrash`
# for the unstrided sweep.
crash:
	$(GO) test ./internal/bench/ -run 'TestCrash|TestSplitSchedule' -race -short

# load is the TCP serving-path smoke: LOADSESSIONS simulated
# sessions replay the mixed workload over real sockets — through the
# fault-injecting chaos proxy — against an embedded admission-
# controlled server, under the race detector. The run fails on any
# untyped error or leaked cursor/temp-table/session after drain.
# `make load LOADSESSIONS=1024` is the full thousand-session sweep.
LOADSESSIONS ?= 256
load:
	$(GO) run -race ./cmd/tangoload -sessions $(LOADSESSIONS) -ops 2 -retries 8 -op-timeout 2s -deadline 15s -chaos "seed=7;stall=200us;fetch@3=drop"

# bench-smoke runs every benchmark for a single iteration at both
# GOMAXPROCS widths, so ci catches benchmarks that no longer compile
# or crash without paying for real measurement. The Query1 pattern
# also matches Query1Tracing, so ci smokes the tracing-overhead pair
# on every run; GroupCommit smokes the concurrent commit path.
bench-smoke:
	$(GO) test ./internal/bench/ -run '^$$' -bench 'Query1|SortM|GroupCommit' -benchtime 1x -cpu 1,2
	$(GO) test ./internal/wire/ -run '^$$' -bench . -benchtime 1x

# bench-json measures the sequential-vs-parallel query benchmarks
# (-cpu 1,4: 1 = sequential algorithms, 4 = windowed fetch pipeline,
# prefetched transfers, partitioned operators) plus the wire codec
# benchmarks, and archives the parsed numbers — ns/op, B/op,
# allocs/op, rows/s, seq-vs-parallel speedups, and the tracing
# overhead ratio (Query1Tracing vs Query1; bar <= 5%) — in
# $(BENCHOUT). 15 iterations per benchmark keeps the overhead ratio
# above measurement noise on small machines.
# GroupCommit runs 200 commits per session count so the
# fsyncs/commit metric is measured under real contention: the
# archived number must fall below 1 at 8 and 64 sessions.
bench-json:
	{ $(GO) test ./internal/bench/ -run '^$$' -bench 'Query1|SortM' -benchtime 15x -cpu 1,4; \
	  $(GO) test ./internal/bench/ -run '^$$' -bench 'GroupCommit' -benchtime 200x; \
	  $(GO) test ./internal/bench/ -run '^$$' -bench 'TCPLoad' -benchtime 1x; \
	  $(GO) test ./internal/wire/ -run '^$$' -bench . -benchtime 2000x; } | $(GO) run ./cmd/benchjson > $(BENCHOUT)

# ci is the full verification gate: compile everything, vet, run the
# project analyzers (publishing lint.json), smoke the fuzz targets and
# the benchmarks, run the test suite under the race detector (tests
# also planck-check every plan), run the short chaos sweep under
# -race, and sweep the crash-recovery matrix under -race.
ci: build vet lint-report fuzz race chaos crash load bench-smoke

clean:
	$(GO) clean ./...
