package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"tango/internal/types"
)

func TestPageInsertRecord(t *testing.T) {
	var p Page
	p.Reset()
	if p.NumSlots() != 0 {
		t.Fatalf("fresh page has %d slots", p.NumSlots())
	}
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("")}
	// Empty record is not representable as live (length 0 == deleted);
	// use non-empty records.
	recs[2] = []byte("c")
	var slots []int
	for _, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, err := p.Record(s)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(recs[i]) {
			t.Errorf("slot %d = %q, want %q", s, got, recs[i])
		}
	}
}

func TestPageFull(t *testing.T) {
	var p Page
	p.Reset()
	rec := make([]byte, 1000)
	n := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			if err != ErrPageFull {
				t.Fatal(err)
			}
			break
		}
		n++
	}
	// 8KB page, 1000-byte records + 4-byte slots: expect 8 records.
	if n != 8 {
		t.Errorf("inserted %d records, want 8", n)
	}
	if p.FreeSpace() >= 1000 {
		t.Error("page reports space after ErrPageFull")
	}
}

func TestPageDelete(t *testing.T) {
	var p Page
	p.Reset()
	s, _ := p.Insert([]byte("x"))
	if err := p.Delete(s); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Record(s); err != ErrNoRecord {
		t.Errorf("deleted record read: %v", err)
	}
	if err := p.Delete(99); err != ErrNoRecord {
		t.Errorf("out-of-range delete: %v", err)
	}
}

func TestDiskReadWrite(t *testing.T) {
	d := NewDisk()
	f := d.CreateFile()
	no, err := d.AppendPage(f)
	if err != nil || no != 0 {
		t.Fatalf("AppendPage: %d, %v", no, err)
	}
	var p Page
	p.Reset()
	if _, err := p.Insert([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	pid := PageID{File: f, No: 0}
	if err := d.WritePage(pid, &p); err != nil {
		t.Fatal(err)
	}
	var q Page
	if err := d.ReadPage(pid, &q); err != nil {
		t.Fatal(err)
	}
	rec, err := q.Record(0)
	if err != nil || string(rec) != "hello" {
		t.Fatalf("round trip: %q, %v", rec, err)
	}
	r, w := d.Stats()
	if r != 1 || w != 2 { // append + write
		t.Errorf("stats = %d reads, %d writes", r, w)
	}
	if err := d.ReadPage(PageID{File: 99, No: 0}, &q); err == nil {
		t.Error("read of missing file should fail")
	}
}

func TestBufferPoolEviction(t *testing.T) {
	d := NewDisk()
	f := d.CreateFile()
	bp := NewBufferPool(d, 2)
	// Create 3 pages each holding a distinct record, exceeding capacity.
	for i := 0; i < 3; i++ {
		pid, p, err := bp.NewPage(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Insert([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(pid)
	}
	// All three pages must read back correctly despite eviction.
	for i := int32(0); i < 3; i++ {
		pid := PageID{File: f, No: i}
		p, err := bp.Fetch(pid)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := p.Record(0)
		if err != nil || rec[0] != byte('a'+i) {
			t.Fatalf("page %d: %q, %v", i, rec, err)
		}
		bp.Unpin(pid)
	}
	hits, misses := bp.Stats()
	if misses == 0 {
		t.Error("expected misses after eviction")
	}
	_ = hits
}

func TestBufferPoolPinnedExhaustion(t *testing.T) {
	d := NewDisk()
	f := d.CreateFile()
	bp := NewBufferPool(d, 2)
	pids := make([]PageID, 2)
	for i := range pids {
		pid, _, err := bp.NewPage(f)
		if err != nil {
			t.Fatal(err)
		}
		pids[i] = pid
	}
	if _, _, err := bp.NewPage(f); err == nil {
		t.Error("pool with all pages pinned should refuse NewPage")
	}
	bp.Unpin(pids[0])
	if _, _, err := bp.NewPage(f); err != nil {
		t.Errorf("after Unpin NewPage should succeed: %v", err)
	}
}

func tup(vals ...interface{}) types.Tuple {
	t := make(types.Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			t[i] = types.Int(int64(x))
		case string:
			t[i] = types.Str(x)
		case float64:
			t[i] = types.Float(x)
		default:
			panic(fmt.Sprintf("tup: %T", v))
		}
	}
	return t
}

func TestHeapFileInsertScan(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 8)
	h := NewHeapFile(bp)
	const n = 5000
	for i := 0; i < n; i++ {
		if _, err := h.Insert(tup(i, fmt.Sprintf("name-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	sum := int64(0)
	err := h.Scan(func(_ RecordID, tp types.Tuple) bool {
		count++
		sum += tp[0].AsInt()
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan saw %d tuples, want %d", count, n)
	}
	if want := int64(n) * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if h.NumPages() < 2 {
		t.Error("expected multiple pages for 5000 tuples")
	}
}

func TestHeapFileGetDelete(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 4)
	h := NewHeapFile(bp)
	rid, err := h.Insert(tup(7, "seven"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid)
	if err != nil || got[0].AsInt() != 7 || got[1].AsString() != "seven" {
		t.Fatalf("Get: %v, %v", got, err)
	}
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid); err == nil {
		t.Error("Get after Delete should fail")
	}
	seen := 0
	h.Scan(func(RecordID, types.Tuple) bool { seen++; return true })
	if seen != 0 {
		t.Errorf("scan after delete saw %d tuples", seen)
	}
}

func TestBulkLoadEqualsInsert(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 8)
	rng := rand.New(rand.NewSource(3))
	var tuples []types.Tuple
	for i := 0; i < 2000; i++ {
		tuples = append(tuples, tup(int(rng.Int63n(1000)), fmt.Sprintf("v%d", i)))
	}
	h1 := NewHeapFile(bp)
	if err := h1.BulkLoad(tuples); err != nil {
		t.Fatal(err)
	}
	h2 := NewHeapFile(bp)
	for _, tp := range tuples {
		if _, err := h2.Insert(tp); err != nil {
			t.Fatal(err)
		}
	}
	var a, b []int64
	h1.Scan(func(_ RecordID, tp types.Tuple) bool { a = append(a, tp[0].AsInt()); return true })
	h2.Scan(func(_ RecordID, tp types.Tuple) bool { b = append(b, tp[0].AsInt()); return true })
	if len(a) != len(tuples) || len(b) != len(tuples) {
		t.Fatalf("lengths: %d, %d, want %d", len(a), len(b), len(tuples))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	// Bulk load should not use more pages than insert path.
	if h1.NumPages() > h2.NumPages() {
		t.Errorf("bulk load used %d pages, insert %d", h1.NumPages(), h2.NumPages())
	}
}

func TestHeapFileDrop(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 4)
	h := NewHeapFile(bp)
	h.Insert(tup(1, "x"))
	h.Drop()
	if err := h.Scan(func(RecordID, types.Tuple) bool { return true }); err != nil {
		// Scan over a dropped file sees zero pages; either nil error with
		// no tuples or an error is acceptable, but it must not panic.
		t.Logf("scan after drop: %v", err)
	}
}

func TestPageTuplesMatchesScan(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 8)
	h := NewHeapFile(bp)
	const n = 3000
	for i := 0; i < n; i++ {
		if _, err := h.Insert(tup(i, fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var viaScan []int64
	h.Scan(func(_ RecordID, tp types.Tuple) bool {
		viaScan = append(viaScan, tp[0].AsInt())
		return true
	})
	var viaPages []int64
	for p := int32(0); int(p) < h.NumPages(); p++ {
		tuples, err := h.PageTuples(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range tuples {
			viaPages = append(viaPages, tp[0].AsInt())
		}
	}
	if len(viaScan) != len(viaPages) {
		t.Fatalf("lengths: %d vs %d", len(viaScan), len(viaPages))
	}
	for i := range viaScan {
		if viaScan[i] != viaPages[i] {
			t.Fatalf("row %d: %d vs %d", i, viaScan[i], viaPages[i])
		}
	}
	// Deleted tuples are skipped by both paths.
	if err := h.Delete(RecordID{Page: 0, Slot: 0}); err != nil {
		t.Fatal(err)
	}
	tuples, err := h.PageTuples(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples {
		if tp[0].AsInt() == 0 {
			t.Fatal("deleted tuple still visible")
		}
	}
}
