package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"tango/internal/rel"
	"tango/internal/types"
)

// testDB builds the paper's POSITION example (Figure 3a) plus an
// EMP table for join tests.
func testDB(t *testing.T) *DB {
	t.Helper()
	db := Open(Config{})
	mustExec := func(sql string) {
		t.Helper()
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("exec %q: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE POSITION (PosID INTEGER, EmpName VARCHAR(40), T1 INTEGER, T2 INTEGER)")
	mustExec("INSERT INTO POSITION VALUES (1, 'Tom', 2, 20), (1, 'Jane', 5, 25), (2, 'Tom', 5, 10)")
	mustExec("CREATE TABLE EMP (EmpName VARCHAR(40), Addr VARCHAR(60), Salary FLOAT)")
	mustExec("INSERT INTO EMP VALUES ('Tom', '12 Elm St', 30.5), ('Jane', '9 Oak Av', 42.0), ('Bob', '1 Pine Rd', 25.0)")
	return db
}

func queryAll(t *testing.T, db *DB, sql string) *rel.Relation {
	t.Helper()
	r, err := db.QueryAll(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return r
}

func TestSelectWhereOrder(t *testing.T) {
	db := testDB(t)
	r := queryAll(t, db, "SELECT EmpName, T1 FROM POSITION WHERE PosID = 1 ORDER BY T1")
	if r.Cardinality() != 2 {
		t.Fatalf("rows = %d\n%v", r.Cardinality(), r)
	}
	if r.Tuples[0][0].AsString() != "Tom" || r.Tuples[1][0].AsString() != "Jane" {
		t.Errorf("order wrong:\n%v", r)
	}
	if r.Schema.Cols[0].Name != "EmpName" {
		t.Errorf("schema: %v", r.Schema)
	}
}

func TestSelectStar(t *testing.T) {
	db := testDB(t)
	r := queryAll(t, db, "SELECT * FROM POSITION")
	if r.Cardinality() != 3 || r.Schema.Len() != 4 {
		t.Fatalf("star: %v", r)
	}
	if r.Schema.Cols[0].Name != "PosID" {
		t.Errorf("unqualified names expected: %v", r.Schema)
	}
}

func TestExpressions(t *testing.T) {
	db := testDB(t)
	r := queryAll(t, db, "SELECT T2 - T1 AS Dur, GREATEST(T1, 4), LEAST(T2, 21) FROM POSITION WHERE PosID = 2")
	if r.Cardinality() != 1 {
		t.Fatalf("rows: %v", r)
	}
	row := r.Tuples[0]
	if row[0].AsInt() != 5 || row[1].AsInt() != 5 || row[2].AsInt() != 10 {
		t.Errorf("row = %v", row)
	}
	if r.Schema.Cols[0].Name != "Dur" {
		t.Errorf("alias lost: %v", r.Schema)
	}
}

func TestJoinDefault(t *testing.T) {
	db := testDB(t)
	r := queryAll(t, db, `SELECT P.PosID, E.Addr FROM POSITION P, EMP E
		WHERE P.EmpName = E.EmpName ORDER BY P.PosID, E.Addr`)
	if r.Cardinality() != 3 {
		t.Fatalf("join rows = %d\n%v", r.Cardinality(), r)
	}
}

func TestJoinMethodsAgree(t *testing.T) {
	db := testDB(t)
	base := "SELECT P.PosID, P.EmpName, E.Salary FROM POSITION P, EMP E WHERE P.EmpName = E.EmpName"
	want := queryAll(t, db, base)
	for _, hint := range []string{"/*+ USE_NL */", "/*+ USE_MERGE */", "/*+ USE_HASH */"} {
		got := queryAll(t, db, "SELECT "+hint+" P.PosID, P.EmpName, E.Salary FROM POSITION P, EMP E WHERE P.EmpName = E.EmpName")
		if !rel.EqualAsMultisets(want, got) {
			t.Errorf("%s disagrees:\n%v\nvs\n%v", hint, want, got)
		}
	}
}

func TestIndexNestedLoopJoin(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("CREATE INDEX emp_name ON EMP (EmpName)"); err != nil {
		t.Fatal(err)
	}
	want := queryAll(t, db, "SELECT P.PosID, E.Salary FROM POSITION P, EMP E WHERE P.EmpName = E.EmpName")
	got := queryAll(t, db, "SELECT /*+ USE_NL */ P.PosID, E.Salary FROM POSITION P, EMP E WHERE P.EmpName = E.EmpName")
	if !rel.EqualAsMultisets(want, got) {
		t.Errorf("index NL join disagrees:\n%v\nvs\n%v", want, got)
	}
}

func TestThetaJoin(t *testing.T) {
	db := testDB(t)
	// Temporal overlap join (no equality): must fall back to NL.
	r := queryAll(t, db, `SELECT A.EmpName, B.EmpName FROM POSITION A, POSITION B
		WHERE A.PosID = B.PosID AND A.T1 < B.T2 AND A.T2 > B.T1`)
	// Overlapping pairs within PosID 1: (Tom,Tom),(Tom,Jane),(Jane,Tom),(Jane,Jane);
	// PosID 2: (Tom,Tom). Total 5.
	if r.Cardinality() != 5 {
		t.Fatalf("theta join rows = %d\n%v", r.Cardinality(), r)
	}
}

func TestGroupBy(t *testing.T) {
	db := testDB(t)
	r := queryAll(t, db, "SELECT PosID, COUNT(*), MIN(T1), MAX(T2), SUM(T2-T1) FROM POSITION GROUP BY PosID ORDER BY PosID")
	if r.Cardinality() != 2 {
		t.Fatalf("groups: %v", r)
	}
	row := r.Tuples[0]
	if row[0].AsInt() != 1 || row[1].AsInt() != 2 || row[2].AsInt() != 2 || row[3].AsInt() != 25 || row[4].AsInt() != 38 {
		t.Errorf("group 1 = %v", row)
	}
	row = r.Tuples[1]
	if row[0].AsInt() != 2 || row[1].AsInt() != 1 {
		t.Errorf("group 2 = %v", row)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := testDB(t)
	r := queryAll(t, db, "SELECT PosID FROM POSITION GROUP BY PosID HAVING COUNT(*) > 1")
	if r.Cardinality() != 1 || r.Tuples[0][0].AsInt() != 1 {
		t.Fatalf("having: %v", r)
	}
}

func TestGrandAggregate(t *testing.T) {
	db := testDB(t)
	r := queryAll(t, db, "SELECT COUNT(*), AVG(Salary) FROM EMP")
	if r.Cardinality() != 1 || r.Tuples[0][0].AsInt() != 3 {
		t.Fatalf("grand agg: %v", r)
	}
	avg := r.Tuples[0][1].AsFloat()
	if avg < 32.49 || avg > 32.51 {
		t.Errorf("AVG = %v", avg)
	}
	// Empty input still yields one row with COUNT 0.
	r = queryAll(t, db, "SELECT COUNT(*) FROM EMP WHERE Salary > 1000")
	if r.Cardinality() != 1 || r.Tuples[0][0].AsInt() != 0 {
		t.Fatalf("empty grand agg: %v", r)
	}
}

func TestCountDistinct(t *testing.T) {
	db := testDB(t)
	r := queryAll(t, db, "SELECT COUNT(DISTINCT EmpName) FROM POSITION")
	if r.Tuples[0][0].AsInt() != 2 {
		t.Fatalf("count distinct: %v", r)
	}
}

func TestDistinct(t *testing.T) {
	db := testDB(t)
	r := queryAll(t, db, "SELECT DISTINCT EmpName FROM POSITION")
	if r.Cardinality() != 2 {
		t.Fatalf("distinct: %v", r)
	}
}

func TestUnion(t *testing.T) {
	db := testDB(t)
	r := queryAll(t, db, "SELECT T1 AS t FROM POSITION UNION SELECT T2 AS t FROM POSITION ORDER BY t")
	// T1s: 2,5,5; T2s: 20,25,10 → distinct {2,5,10,20,25}.
	if r.Cardinality() != 5 {
		t.Fatalf("union: %v", r)
	}
	if r.Tuples[0][0].AsInt() != 2 || r.Tuples[4][0].AsInt() != 25 {
		t.Errorf("union order: %v", r)
	}
	r = queryAll(t, db, "SELECT T1 AS t FROM POSITION UNION ALL SELECT T2 AS t FROM POSITION")
	if r.Cardinality() != 6 {
		t.Fatalf("union all: %v", r)
	}
}

func TestDerivedTable(t *testing.T) {
	db := testDB(t)
	r := queryAll(t, db, `SELECT X.PosID, X.N FROM
		(SELECT PosID, COUNT(*) AS N FROM POSITION GROUP BY PosID) X
		WHERE X.N > 1`)
	if r.Cardinality() != 1 || r.Tuples[0][0].AsInt() != 1 || r.Tuples[0][1].AsInt() != 2 {
		t.Fatalf("derived: %v", r)
	}
}

func TestTemporalAggregationSQLShape(t *testing.T) {
	// The set-based temporal COUNT aggregation the Translator-To-SQL
	// emits (TAGGR^D): constant intervals from per-group event points,
	// then counting covering tuples.
	db := testDB(t)
	sql := `
	SELECT R.PosID AS PosID, I.TS AS T1, I.TE AS T2, COUNT(*) AS CNT
	FROM (
	  SELECT S.G AS G, S.P AS TS, MIN(E.P) AS TE
	  FROM (SELECT PosID AS G, T1 AS P FROM POSITION UNION SELECT PosID AS G, T2 AS P FROM POSITION) S,
	       (SELECT PosID AS G, T1 AS P FROM POSITION UNION SELECT PosID AS G, T2 AS P FROM POSITION) E
	  WHERE S.G = E.G AND E.P > S.P
	  GROUP BY S.G, S.P
	) I, POSITION R
	WHERE R.PosID = I.G AND R.T1 <= I.TS AND R.T2 >= I.TE
	GROUP BY R.PosID, I.TS, I.TE
	ORDER BY PosID, T1`
	r := queryAll(t, db, sql)
	// Expected (Figure 3c): (1,2,5,1),(1,5,20,2),(1,20,25,1),(2,5,10,1).
	want := [][4]int64{{1, 2, 5, 1}, {1, 5, 20, 2}, {1, 20, 25, 1}, {2, 5, 10, 1}}
	if r.Cardinality() != len(want) {
		t.Fatalf("rows = %d\n%v", r.Cardinality(), r)
	}
	for i, w := range want {
		for j := 0; j < 4; j++ {
			if r.Tuples[i][j].AsInt() != w[j] {
				t.Fatalf("row %d = %v, want %v", i, r.Tuples[i], w)
			}
		}
	}
}

func TestInsertSelectAndCoercion(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("CREATE TABLE COPY (PosID INTEGER, EmpName VARCHAR(40), T1 DATE, T2 DATE)"); err != nil {
		t.Fatal(err)
	}
	n, err := db.Exec("INSERT INTO COPY SELECT * FROM POSITION")
	if err != nil || n != 3 {
		t.Fatalf("insert-select: n=%d err=%v", n, err)
	}
	r := queryAll(t, db, "SELECT T1 FROM COPY WHERE PosID = 2")
	if r.Tuples[0][0].Kind() != types.KindDate {
		t.Errorf("int not coerced to date: %v", r.Tuples[0][0].Kind())
	}
}

func TestIndexRangeScan(t *testing.T) {
	db := Open(Config{})
	if _, err := db.Exec("CREATE TABLE T (K INTEGER, V VARCHAR(10))"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := db.Insert("T", types.Tuple{types.Int(int64(i)), types.Str(fmt.Sprint(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("CREATE INDEX tk ON T (K)"); err != nil {
		t.Fatal(err)
	}
	for _, q := range []struct {
		sql  string
		want int
	}{
		{"SELECT K FROM T WHERE K = 250", 1},
		{"SELECT K FROM T WHERE K < 10", 10},
		{"SELECT K FROM T WHERE K <= 10", 11},
		{"SELECT K FROM T WHERE K > 489", 10},
		{"SELECT K FROM T WHERE K >= 489", 11},
		{"SELECT K FROM T WHERE 489 < K", 10},
		{"SELECT K FROM T WHERE K > 100 AND K < 103", 2},
	} {
		r := queryAll(t, db, q.sql)
		if r.Cardinality() != q.want {
			t.Errorf("%s: %d rows, want %d", q.sql, r.Cardinality(), q.want)
		}
	}
}

func TestAnalyzeStatistics(t *testing.T) {
	db := testDB(t)
	stats, err := db.Analyze("POSITION", 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cardinality != 3 || stats.Blocks < 1 {
		t.Fatalf("stats: %+v", stats)
	}
	cs := stats.Column("PosID")
	if cs == nil || cs.Distinct != 2 || cs.Min.AsInt() != 1 || cs.Max.AsInt() != 2 {
		t.Fatalf("PosID stats: %+v", cs)
	}
	// With histograms.
	stats, err = db.Analyze("POSITION", 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Column("T1").Histogram == nil {
		t.Error("expected histogram on T1")
	}
	if stats.Column("EmpName").Histogram != nil {
		t.Error("no histogram expected on strings")
	}
}

func TestDDLErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("CREATE TABLE POSITION (X INTEGER)"); err == nil {
		t.Error("duplicate create should fail")
	}
	if _, err := db.Exec("DROP TABLE NOPE"); err == nil {
		t.Error("drop missing should fail")
	}
	if _, err := db.Exec("DROP TABLE IF EXISTS NOPE"); err != nil {
		t.Errorf("drop if exists: %v", err)
	}
	if _, err := db.Query("SELECT Nope FROM POSITION"); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := db.Query("SELECT * FROM NOPE"); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := db.Exec("INSERT INTO POSITION VALUES (1)"); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := db.Query("SELECT EmpName, COUNT(*) FROM POSITION GROUP BY PosID"); err == nil {
		t.Error("non-grouped column should fail")
	}
}

func TestDropTableRemovesData(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("DROP TABLE EMP"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT * FROM EMP"); err == nil {
		t.Error("query after drop should fail")
	}
	names := db.TableNames()
	if len(names) != 1 || names[0] != "POSITION" {
		t.Errorf("tables = %v", names)
	}
}

func TestJoinMethodsLargeRandom(t *testing.T) {
	db := Open(Config{})
	db.Exec("CREATE TABLE A (K INTEGER, X INTEGER)")
	db.Exec("CREATE TABLE B (K INTEGER, Y INTEGER)")
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 400; i++ {
		db.Insert("A", types.Tuple{types.Int(rng.Int63n(50)), types.Int(int64(i))})
	}
	for i := 0; i < 300; i++ {
		db.Insert("B", types.Tuple{types.Int(rng.Int63n(50)), types.Int(int64(i))})
	}
	want := queryAll(t, db, "SELECT A.X, B.Y FROM A, B WHERE A.K = B.K")
	for _, hint := range []string{"/*+ USE_NL */", "/*+ USE_MERGE */", "/*+ USE_HASH */"} {
		got := queryAll(t, db, "SELECT "+hint+" A.X, B.Y FROM A, B WHERE A.K = B.K")
		if !rel.EqualAsMultisets(want, got) {
			t.Errorf("%s join disagrees on random data (want %d rows, got %d)",
				hint, want.Cardinality(), got.Cardinality())
		}
	}
	if want.Cardinality() == 0 {
		t.Error("test data produced no join matches")
	}
}

func TestBetweenAndIsNull(t *testing.T) {
	db := testDB(t)
	r := queryAll(t, db, "SELECT EmpName FROM POSITION WHERE T1 BETWEEN 3 AND 6")
	if r.Cardinality() != 2 {
		t.Fatalf("between: %v", r)
	}
	db.Exec("INSERT INTO POSITION (PosID, EmpName) VALUES (3, 'Ann')")
	r = queryAll(t, db, "SELECT EmpName FROM POSITION WHERE T1 IS NULL")
	if r.Cardinality() != 1 || r.Tuples[0][0].AsString() != "Ann" {
		t.Fatalf("is null: %v", r)
	}
	r = queryAll(t, db, "SELECT COUNT(T1) FROM POSITION")
	if r.Tuples[0][0].AsInt() != 3 {
		t.Errorf("COUNT should skip NULLs: %v", r)
	}
}

func TestOrderByDescMulti(t *testing.T) {
	db := testDB(t)
	r := queryAll(t, db, "SELECT PosID, T1 FROM POSITION ORDER BY PosID DESC, T1 ASC")
	if r.Tuples[0][0].AsInt() != 2 {
		t.Fatalf("desc order: %v", r)
	}
	if r.Tuples[1][1].AsInt() != 2 || r.Tuples[2][1].AsInt() != 5 {
		t.Errorf("secondary asc order: %v", r)
	}
}

func TestLimit(t *testing.T) {
	db := testDB(t)
	r := queryAll(t, db, "SELECT T1 FROM POSITION ORDER BY T1 LIMIT 2")
	if r.Cardinality() != 2 || r.Tuples[0][0].AsInt() != 2 || r.Tuples[1][0].AsInt() != 5 {
		t.Fatalf("limit: %v", r)
	}
	// LIMIT larger than the result is a no-op.
	r = queryAll(t, db, "SELECT T1 FROM POSITION LIMIT 100")
	if r.Cardinality() != 3 {
		t.Fatalf("big limit: %v", r)
	}
	// LIMIT over a union applies to the whole result.
	r = queryAll(t, db, "SELECT T1 AS t FROM POSITION UNION ALL SELECT T2 AS t FROM POSITION ORDER BY t LIMIT 4")
	if r.Cardinality() != 4 {
		t.Fatalf("union limit: %v", r)
	}
	if _, err := db.Query("SELECT T1 FROM POSITION LIMIT -1"); err == nil {
		t.Error("negative limit should fail to parse")
	}
}

func TestOrderByOutputAlias(t *testing.T) {
	db := testDB(t)
	r := queryAll(t, db, "SELECT PosID, COUNT(*) AS N FROM POSITION GROUP BY PosID ORDER BY N DESC")
	if r.Cardinality() != 2 || r.Tuples[0][1].AsInt() != 2 {
		t.Fatalf("order by alias: %v", r)
	}
}
