package cost

import (
	"testing"
	"time"

	"tango/internal/algebra"
	"tango/internal/client"
	"tango/internal/engine"
	"tango/internal/meta"
	"tango/internal/server"
	"tango/internal/sqlast"
	"tango/internal/sqlparser"
	"tango/internal/stats"
	"tango/internal/types"
	"tango/internal/wire"
)

// fixedSource serves canned statistics.
type fixedSource map[string]*meta.TableStats

func (s fixedSource) TableStats(table string, _ int) (*meta.TableStats, error) {
	return s[table], nil
}

type fixedCatalog map[string]types.Schema

func (c fixedCatalog) TableSchema(name string) (types.Schema, error) {
	return c[name], nil
}

func testModel() *Model {
	cat := fixedCatalog{
		"POSITION": types.NewSchema(
			types.Column{Name: "PosID", Kind: types.KindInt},
			types.Column{Name: "EmpName", Kind: types.KindString},
			types.Column{Name: "T1", Kind: types.KindInt},
			types.Column{Name: "T2", Kind: types.KindInt},
		),
	}
	src := fixedSource{
		"POSITION": {
			Table: "POSITION", Cardinality: 80000, AvgTupleSize: 40,
			Columns: map[string]*meta.ColumnStats{
				"POSID": {Name: "PosID", Distinct: 2000, Min: types.Int(1), Max: types.Int(2000)},
				"T1":    {Name: "T1", Distinct: 5000, Min: types.Int(0), Max: types.Int(10000)},
				"T2":    {Name: "T2", Distinct: 5000, Min: types.Int(10), Max: types.Int(10100)},
			},
		},
	}
	est := stats.NewEstimator(cat, src)
	return NewModel(est)
}

func taggrPlanDBMS() *algebra.Node {
	taggr := algebra.TAggr(algebra.Scan("POSITION", ""), []string{"PosID"},
		algebra.Agg{Fn: "COUNT", Col: "PosID"})
	return algebra.TM(taggr)
}

func taggrPlanMW() *algebra.Node {
	sorted := algebra.Sort(algebra.Scan("POSITION", ""), "PosID", "T1")
	taggr := algebra.TAggr(algebra.TM(sorted), []string{"PosID"},
		algebra.Agg{Fn: "COUNT", Col: "PosID"})
	return taggr
}

func TestPlanCostPositiveAndOrdered(t *testing.T) {
	m := testModel()
	dbms, err := m.PlanCost(taggrPlanDBMS())
	if err != nil {
		t.Fatal(err)
	}
	mw, err := m.PlanCost(taggrPlanMW())
	if err != nil {
		t.Fatal(err)
	}
	if dbms <= 0 || mw <= 0 {
		t.Fatalf("costs must be positive: dbms=%g mw=%g", dbms, mw)
	}
	// With the default factors (DBMS temporal aggregation an order of
	// magnitude pricier per byte), the middleware plan must win.
	if mw >= dbms {
		t.Errorf("middleware TAggr plan should be cheaper: mw=%g dbms=%g", mw, dbms)
	}
}

func TestTransferCostScalesWithSize(t *testing.T) {
	m := testModel()
	small := algebra.TM(algebra.Select(algebra.Scan("POSITION", ""),
		mustPredExpr(t, "PosID = 1")))
	big := algebra.TM(algebra.Scan("POSITION", ""))
	cs, err := m.PlanCost(small)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := m.PlanCost(big)
	if err != nil {
		t.Fatal(err)
	}
	if cs >= cb {
		t.Errorf("selective transfer should be cheaper: %g vs %g", cs, cb)
	}
}

func TestPredWeight(t *testing.T) {
	if w := predWeight(mustPredExpr(t, "a = 1")); w != 1 {
		t.Errorf("one term: %g", w)
	}
	if w := predWeight(mustPredExpr(t, "a = 1 AND b = 2 AND c = 3")); w != 3 {
		t.Errorf("three terms: %g", w)
	}
}

func TestCalibration(t *testing.T) {
	db := engine.Open(engine.Config{})
	srv := server.New(db, wire.Latency{})
	conn := client.Connect(srv)
	cal := &Calibrator{Conn: conn, Rows: 3000, Seed: 42}
	f, err := cal.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, v float64) {
		if v <= 0 || v != v {
			t.Errorf("factor %s = %g, want positive", name, v)
		}
	}
	check("TM", f.TM)
	check("TD", f.TD)
	check("SortM", f.SortM)
	check("SortD", f.SortD)
	check("JoinM", f.JoinM)
	check("JoinD", f.JoinD)
	check("ScanD", f.ScanD)
	check("TAggrM1", f.TAggrM1)
	check("TAggrM2", f.TAggrM2)
	check("TAggrD1", f.TAggrD1)
	check("TAggrD2", f.TAggrD2)
	// The core asymmetry the paper exploits: DBMS temporal aggregation
	// is far more expensive per byte than the middleware sweep.
	if f.TAggrD1+f.TAggrD2 < (f.TAggrM1+f.TAggrM2)*2 {
		t.Errorf("TAGGR^D (%g+%g) should be clearly pricier than TAGGR^M (%g+%g)",
			f.TAggrD1, f.TAggrD2, f.TAggrM1, f.TAggrM2)
	}
	// No leftover calibration tables.
	for _, name := range db.TableNames() {
		t.Errorf("calibration left table %s", name)
	}
}

func TestAdapt(t *testing.T) {
	f := DefaultFactors()
	orig := f.TM
	f.Adapt(client.Feedback{Bytes: 1000, Elapsed: 10 * time.Millisecond}, false, 0.5)
	// Observed: 10000µs/1000B = 10 µs/B; EWMA with α=.5.
	want := 0.5*10 + 0.5*orig
	if diff := f.TM - want; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("TM after adapt = %g, want %g", f.TM, want)
	}
	before := f.TD
	f.Adapt(client.Feedback{Bytes: 0}, true, 0.5)
	if f.TD != before {
		t.Error("zero-byte feedback must not change factors")
	}
}

func TestSolve2(t *testing.T) {
	// 2*3 + 3*1 = 9; 2*1 + 3*2 = 8.
	p1, p2, ok := solve2(3, 1, 9, 1, 2, 8)
	if !ok || p1 != 2 || p2 != 3 {
		t.Errorf("solve2 = %g, %g, %v", p1, p2, ok)
	}
	if _, _, ok := solve2(1, 1, 5, 2, 2, 10); ok {
		t.Error("singular system should fail")
	}
	if _, _, ok := solve2(1, 0, -5, 0, 1, 3); ok {
		t.Error("negative solution should be rejected")
	}
}

func mustPredExpr(t *testing.T, src string) sqlast.Expr {
	t.Helper()
	sel, err := sqlparser.ParseSelect("SELECT 1 WHERE " + src)
	if err != nil {
		t.Fatal(err)
	}
	return sel.Where
}
