package rel

import (
	"math/rand"
	"testing"

	"tango/internal/types"
)

func sampleRelation() *Relation {
	r := New(types.NewSchema(
		types.Column{Name: "PosID", Kind: types.KindInt},
		types.Column{Name: "EmpName", Kind: types.KindString},
	))
	r.Append(types.Tuple{types.Int(2), types.Str("Tom")})
	r.Append(types.Tuple{types.Int(1), types.Str("Jane")})
	r.Append(types.Tuple{types.Int(1), types.Str("Tom")})
	return r
}

func TestDrainRoundTrip(t *testing.T) {
	r := sampleRelation()
	got, err := Drain(r.Iter())
	if err != nil {
		t.Fatal(err)
	}
	if !EqualAsLists(r, got) {
		t.Errorf("Drain(Iter()) != original:\n%v\nvs\n%v", r, got)
	}
}

func TestIteratorRequiresOpen(t *testing.T) {
	it := sampleRelation().Iter()
	if _, _, err := it.Next(); err == nil {
		t.Error("Next before Open should fail")
	}
}

func TestSortBy(t *testing.T) {
	r := sampleRelation()
	r.SortBy("PosID", "EmpName")
	want := [][2]string{{"1", "Jane"}, {"1", "Tom"}, {"2", "Tom"}}
	for i, w := range want {
		if r.Tuples[i][0].String() != w[0] || r.Tuples[i][1].String() != w[1] {
			t.Fatalf("row %d = %v, want %v", i, r.Tuples[i], w)
		}
	}
	if !r.IsSortedBy([]int{0, 1}) {
		t.Error("IsSortedBy false after SortBy")
	}
	r.Tuples[0], r.Tuples[2] = r.Tuples[2], r.Tuples[0]
	if r.IsSortedBy([]int{0}) {
		t.Error("IsSortedBy should be false after swapping rows")
	}
}

func TestEqualAsListsVsMultisets(t *testing.T) {
	a := sampleRelation()
	b := sampleRelation()
	if !EqualAsLists(a, b) || !EqualAsMultisets(a, b) {
		t.Fatal("copies should be equal both ways")
	}
	// Swap two rows: still multiset-equal, not list-equal.
	b.Tuples[0], b.Tuples[1] = b.Tuples[1], b.Tuples[0]
	if EqualAsLists(a, b) {
		t.Error("reordered lists should not be list-equal")
	}
	if !EqualAsMultisets(a, b) {
		t.Error("reordered lists should be multiset-equal")
	}
	// Change multiplicity: not multiset-equal.
	b.Tuples[2] = b.Tuples[0].Clone()
	if EqualAsMultisets(a, b) {
		t.Error("different multiplicities should not be multiset-equal")
	}
}

func TestMultisetEqualityRandomPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := New(types.NewSchema(types.Column{Name: "V", Kind: types.KindInt}))
	for i := 0; i < 500; i++ {
		r.Append(types.Tuple{types.Int(rng.Int63n(20))})
	}
	p := r.Clone()
	rng.Shuffle(len(p.Tuples), func(i, j int) {
		p.Tuples[i], p.Tuples[j] = p.Tuples[j], p.Tuples[i]
	})
	if !EqualAsMultisets(r, p) {
		t.Error("permutation must stay multiset-equal")
	}
}

func TestNumericKeyNormalization(t *testing.T) {
	a := New(types.NewSchema(types.Column{Name: "V", Kind: types.KindInt}))
	a.Append(types.Tuple{types.Int(2)})
	b := New(a.Schema)
	b.Append(types.Tuple{types.Float(2.0)})
	if !EqualAsMultisets(a, b) {
		t.Error("Int(2) and Float(2.0) tuples should be multiset-equal")
	}
}

func TestDistinctCount(t *testing.T) {
	r := sampleRelation()
	if n := r.DistinctCount("PosID"); n != 2 {
		t.Errorf("DistinctCount(PosID) = %d, want 2", n)
	}
	if n := r.DistinctCount("EmpName"); n != 2 {
		t.Errorf("DistinctCount(EmpName) = %d, want 2", n)
	}
}

func TestSizes(t *testing.T) {
	r := sampleRelation()
	if r.Cardinality() != 3 {
		t.Fatalf("Cardinality = %d", r.Cardinality())
	}
	if r.ByteSize() <= 0 || r.AvgTupleSize() <= 0 {
		t.Error("sizes should be positive")
	}
	empty := New(r.Schema)
	if empty.AvgTupleSize() != 0 {
		t.Error("empty relation avg size should be 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := sampleRelation()
	c := r.Clone()
	c.Tuples[0][0] = types.Int(99)
	if r.Tuples[0][0].AsInt() == 99 {
		t.Error("Clone shares tuple storage")
	}
}
