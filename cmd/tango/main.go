// Command tango is an interactive shell for the temporal middleware:
// it boots an embedded DBMS, loads the synthetic UIS dataset, and
// accepts temporal SQL at a prompt. Regular SQL is forwarded to the
// DBMS untouched; VALIDTIME queries go through the middleware
// optimizer and its split execution.
//
//	tango> VALIDTIME SELECT PosID, COUNT(PosID) FROM POSITION GROUP BY PosID ORDER BY PosID
//	tango> EXPLAIN VALIDTIME SELECT ...
//	tango> EXPLAIN ANALYZE VALIDTIME SELECT ...
//	tango> SELECT COUNT(*) FROM POSITION
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"tango/internal/bench"
	"tango/internal/client"
	"tango/internal/server"
	"tango/internal/rel"
	"tango/internal/storage"
	"tango/internal/tango"
	"tango/internal/telemetry"
	"tango/internal/tsql"
	"tango/internal/wire"
)

func main() {
	posRows := flag.Int("position", 8400, "POSITION rows to generate (0 = paper full size)")
	empRows := flag.Int("employee", 5000, "EMPLOYEE rows to generate (0 = paper full size)")
	calibrate := flag.Int("calibrate", 0, "calibration sample rows (0 = default cost factors)")
	command := flag.String("c", "", "run one statement and exit (scriptable mode)")
	sessions := flag.Int("sessions", 1, "with -c: run the statement concurrently on this many independent sessions and report group-commit amortization (commits, fsyncs, fsyncs/commit, wall time)")
	metricsAddr := flag.String("metrics", "", `serve /metrics, /debug/vars, and /debug/pprof on this address (e.g. "127.0.0.1:9090")`)
	listen := flag.String("listen", "", `serve the framed wire protocol over TCP on this address (e.g. "127.0.0.1:7777"); attack it with tangoload -addr`)
	maxInFlight := flag.Int("max-inflight", 0, "with -listen: admission-control concurrent statement limit (0 = admit everything)")
	maxQueue := flag.Int("max-queue", 256, "with -listen and -max-inflight: admission wait-queue bound")
	checkPlans := flag.Bool("checkplans", true, "validate every optimized plan and executor build with the planck plan checker")
	parallelism := flag.Int("parallelism", 0, "middleware operator fan-out: 0 = GOMAXPROCS, 1 = sequential algorithms")
	retries := flag.Int("retries", client.DefaultRetryPolicy().MaxAttempts, "max attempts per idempotent wire call (1 = no retries, 0 = disable the resilience layer)")
	opTimeout := flag.Duration("op-timeout", client.DefaultRetryPolicy().OpTimeout, "per-attempt deadline for a wire call (0 = none)")
	chaos := flag.String("chaos", "", `inject a deterministic fault schedule into the wire, e.g. "seed=7;stall=2ms;fetch@3=drop;load~partial=0.05"`)
	chaosSeed := flag.Int64("chaos-seed", 0, "override the fault schedule's seed (replays a chaos run; 0 = keep the schedule's own seed)")
	dataDir := flag.String("data-dir", "", "persist the database in this directory (WAL-backed durable store; a directory that already holds a database is recovered and reopened; empty = in-memory)")
	crash := flag.String("crash", "", `kill the store at scripted write points, e.g. "wal@7=torn;page@3=partial" — shares the -chaos grammar; requires -data-dir; restart with the same -data-dir to recover`)
	trace := flag.Bool("trace", true, "end-to-end distributed tracing: stitched client+DBMS span trees, per-query flight recorder (\\trace, \\flight)")
	flightDir := flag.String("flight-dir", "", "persist the flight recorder's last-N query traces to <dir>/flight.jsonl (crash-surviving; implies -trace; defaults to -data-dir when durable)")
	flightSize := flag.Int("flight-size", 64, "query traces retained in the flight recorder ring")
	flag.Parse()

	quiet := *command != ""
	if !quiet {
		fmt.Println("TANGO temporal middleware — loading UIS data...")
	}
	retry := client.RetryPolicy{} // -retries=0 disables the resilience layer
	if *retries > 0 {
		retry = client.DefaultRetryPolicy()
		retry.MaxAttempts = *retries
		retry.OpTimeout = *opTimeout
	}
	var faults *wire.FaultInjector
	var crashPoints []storage.CrashPoint
	if *chaos != "" {
		sched, err := wire.ParseSchedule(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		if *chaosSeed != 0 {
			sched.Seed = *chaosSeed
		}
		// The grammar is shared with the storage crash harness: wire
		// rules feed the injector, wal@/page@ traps feed the store.
		wireSched, points, err := bench.SplitSchedule(sched)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		crashPoints = append(crashPoints, points...)
		faults = wireSched.Injector()
		if !quiet {
			fmt.Printf("chaos: injecting %q\n", sched.String())
		}
	}
	if *crash != "" {
		sched, err := wire.ParseSchedule(*crash)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crash:", err)
			os.Exit(1)
		}
		wireSched, points, err := bench.SplitSchedule(sched)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crash:", err)
			os.Exit(1)
		}
		if len(wireSched.Traps) != 0 || len(wireSched.Probs) != 0 {
			fmt.Fprintln(os.Stderr, "crash: wire faults (exec/query/fetch/load/insert/stats) belong to -chaos")
			os.Exit(1)
		}
		crashPoints = append(crashPoints, points...)
	}
	var crashScript *storage.CrashScript
	if len(crashPoints) > 0 {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "crash: storage crash points require -data-dir (the in-memory store has no write points)")
			os.Exit(1)
		}
		crashScript = storage.NewCrashScript(crashPoints...)
		if !quiet {
			fmt.Printf("crash: %d scripted write point(s) armed; the store dies there — restart with -data-dir %s to recover\n",
				len(crashPoints), *dataDir)
		}
	}
	reg := telemetry.NewRegistry()
	sys, err := bench.NewSystem(bench.Config{
		PositionRows: *posRows,
		EmployeeRows: *empRows,
		Histograms:   20,
		Calibrate:    *calibrate,
		Metrics:      reg,
		Parallelism:  *parallelism,
		Retry:        retry,
		Faults:       faults,
		DataDir:      *dataDir,
		Crash:        crashScript,
		Trace:        *trace || *flightDir != "",
		FlightSize:   *flightSize,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "boot:", err)
		os.Exit(1)
	}
	defer sys.Close()
	sys.MW.CheckPlans = *checkPlans
	if *flightDir != "" && *flightDir != *dataDir {
		// Read the previous run's log (if any) before SetDir truncates it
		// for this process.
		pre, err := telemetry.LoadFlight(filepath.Join(*flightDir, telemetry.FlightFile))
		if err != nil {
			fmt.Fprintln(os.Stderr, "flight-dir:", err)
			os.Exit(1)
		}
		if len(pre) > 0 {
			sys.PreCrashFlight = pre
		}
		if err := sys.Flight.SetDir(*flightDir); err != nil {
			fmt.Fprintln(os.Stderr, "flight-dir:", err)
			os.Exit(1)
		}
	}
	if pre := sys.PreCrashFlight; len(pre) > 0 && !quiet {
		last := pre[len(pre)-1]
		fmt.Printf("flight: recovered %d pre-crash query trace(s); last: trace %s %q",
			len(pre), last.TraceID, last.Query)
		if last.Error != "" {
			fmt.Printf(" (error: %s)", last.Error)
		}
		fmt.Println()
	}
	if st := sys.Recovery; st != nil && !quiet {
		fmt.Printf("data-dir %s: recovered in %v — %d WAL record(s) replayed, %d torn tail(s), %d checksum failure(s) repaired, %d load(s) rolled back, %d temp table(s) collected\n",
			*dataDir, st.Duration.Round(time.Millisecond), st.ReplayedRecords,
			st.TornTails, st.ChecksumFailures, st.RolledBackLoads, sys.GCCollected)
		if sys.Reopened {
			fmt.Println("existing database reopened; UIS load skipped (run ANALYZE output is fresh)")
		}
	}
	if *metricsAddr != "" {
		telemetry.RegisterRuntimeMetrics(reg)
		health := func() error {
			if sys.DB.Durable() && sys.DB.FileDisk().Crashed() {
				return fmt.Errorf("durable store crashed")
			}
			return nil
		}
		addr, stop, err := telemetry.ServeWith(*metricsAddr, reg, health)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		defer stop()
		if !quiet {
			fmt.Printf("metrics on http://%s/metrics (also /metrics.json, /debug/vars, /debug/pprof, /healthz)\n", addr)
		}
	}
	if *listen != "" {
		ts, err := server.ListenAndServe(sys.Srv, *listen, server.TCPConfig{
			Admission: server.AdmissionConfig{
				MaxInFlight: *maxInFlight,
				MaxQueue:    *maxQueue,
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "listen:", err)
			os.Exit(1)
		}
		defer ts.Close() // graceful drain: stop accepting, finish in-flight
		if !quiet {
			fmt.Printf("wire protocol on tcp://%s", ts.Addr())
			if *maxInFlight > 0 {
				fmt.Printf(" (admission: %d in flight, queue %d)", *maxInFlight, *maxQueue)
			}
			fmt.Println()
		}
	}
	if *sessions > 1 && *command == "" {
		fmt.Fprintln(os.Stderr, "-sessions > 1 requires -c (the concurrent mode runs one statement per session)")
		os.Exit(1)
	}
	if *command != "" {
		stmt := strings.TrimSpace(*command)
		var err error
		if *sessions > 1 {
			err = runConcurrent(sys, stmt, *sessions)
		} else {
			err = dispatch(sys, stmt)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("loaded POSITION (%d rows), EMPLOYEE (%d rows)\n", sys.PositionRows, sys.EmployeeRows)
	fmt.Println(`type temporal SQL ("VALIDTIME SELECT ..."), regular SQL, EXPLAIN <query>,`)
	fmt.Println(`EXPLAIN ANALYZE <query> (measured span + operator profile), \tables,`)
	fmt.Println(`\stats <table>, \factors, \trace (last query's spans), \flight (last-N`)
	fmt.Println(`query traces as JSONL), \top (per-session accounting), \metrics, or \q`)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("tango> ")
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit"):
			return
		}
		if err := dispatch(sys, line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

func dispatch(sys *bench.System, line string) error {
	upper := strings.ToUpper(line)
	switch {
	case line == `\tables`:
		for _, name := range sys.DB.TableNames() {
			t, err := sys.DB.Table(name)
			if err != nil {
				return err
			}
			fmt.Printf("%-24s %s\n", name, t.Schema)
		}
		return nil

	case strings.HasPrefix(line, `\stats `):
		table := strings.TrimSpace(line[len(`\stats `):])
		stats, err := sys.MW.Conn.TableStats(table, 20)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d rows, %d blocks, %.1f B/row\n",
			stats.Table, stats.Cardinality, stats.Blocks, stats.AvgTupleSize)
		schema, err := sys.MW.Conn.TableSchema(table)
		if err != nil {
			return err
		}
		for _, col := range schema.Cols {
			cs := stats.Column(col.Name)
			if cs == nil {
				continue
			}
			hist := ""
			if cs.Histogram != nil {
				hist = fmt.Sprintf(", %d-bucket histogram", cs.Histogram.NumBuckets())
			}
			idx := ""
			if cs.HasIndex {
				idx = fmt.Sprintf(", indexed (clustering %d)", cs.ClusteringFactor)
			}
			fmt.Printf("  %-12s min=%v max=%v distinct=%d%s%s\n",
				cs.Name, cs.Min, cs.Max, cs.Distinct, hist, idx)
		}
		return nil

	case line == `\factors`:
		f := sys.MW.Model.F
		fmt.Printf("p_tm=%.5f p_td=%.5f p_sem=%.5f\n", f.TM, f.TD, f.SelM)
		fmt.Printf("p_taggm1=%.5f p_taggm2=%.5f p_taggd1=%.5f p_taggd2=%.5f\n",
			f.TAggrM1, f.TAggrM2, f.TAggrD1, f.TAggrD2)
		fmt.Printf("sortM=%.5f sortD=%.5f joinM=%.5f joinD=%.5f scanD=%.5f\n",
			f.SortM, f.SortD, f.JoinM, f.JoinD, f.ScanD)
		return nil

	case line == `\trace`:
		tr := sys.MW.LastTrace()
		if tr == nil {
			return fmt.Errorf("no traced query yet")
		}
		fmt.Print(tr.Render())
		return nil

	case line == `\metrics`:
		return sys.Metrics.WritePrometheus(os.Stdout)

	case line == `\flight`:
		if sys.Flight == nil {
			return fmt.Errorf("tracing is off (-trace=false); no flight recorder")
		}
		if sys.Flight.Len() == 0 {
			return fmt.Errorf("no recorded query yet")
		}
		return sys.Flight.WriteJSONL(os.Stdout)

	case line == `\top`:
		return printSessionTop(sys)

	case strings.HasPrefix(upper, "EXPLAIN ANALYZE "):
		query := strings.TrimSpace(line[len("EXPLAIN ANALYZE "):])
		plan, err := tsql.Parse(query, sys.MW.Cat)
		if err != nil {
			return err
		}
		report, _, err := sys.MW.ExplainAnalyze(plan)
		if err != nil {
			return err
		}
		fmt.Print(report)
		return nil

	case strings.HasPrefix(upper, "EXPLAIN "):
		query := strings.TrimSpace(line[len("EXPLAIN "):])
		plan, err := tsql.Parse(query, sys.MW.Cat)
		if err != nil {
			return err
		}
		out, err := sys.MW.Explain(plan)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil

	case strings.HasPrefix(upper, "VALIDTIME"):
		plan, err := tsql.Parse(line, sys.MW.Cat)
		if err != nil {
			return err
		}
		start := time.Now()
		out, res, err := sys.MW.Run(plan)
		if err != nil {
			return err
		}
		printRelation(out, 40)
		fmt.Printf("%d rows in %.3fs (optimizer: %d classes, %d elements, plan %s)\n",
			out.Cardinality(), time.Since(start).Seconds(),
			res.Classes, res.Elements, bench.PlanSignature(res.Best))
		return nil

	case strings.HasPrefix(upper, "SELECT"):
		start := time.Now()
		var out *rel.Relation
		err := tracedPassthrough(sys, "passthrough", line, func() error {
			var qerr error
			out, _, qerr = sys.MW.Conn.QueryAll(line)
			return qerr
		})
		if err != nil {
			return err
		}
		printRelation(out, 40)
		fmt.Printf("%d rows in %.3fs (DBMS passthrough)\n", out.Cardinality(), time.Since(start).Seconds())
		return nil

	default:
		// DDL/DML passthrough.
		var n int64
		err := tracedPassthrough(sys, "passthrough", line, func() error {
			var xerr error
			n, xerr = sys.MW.Conn.Exec(line)
			return xerr
		})
		if err != nil {
			return err
		}
		fmt.Printf("ok (%d rows)\n", n)
		return nil
	}
}

// runConcurrent executes one statement simultaneously on n
// independent sessions sharing the embedded server, then reports how
// the engine amortized the commits: total commits, WAL fsyncs, and
// fsyncs per commit (group commit drives the ratio below 1 under
// contention on a durable store).
func runConcurrent(sys *bench.System, stmt string, n int) error {
	upper := strings.ToUpper(stmt)
	isValidtime := strings.HasPrefix(upper, "VALIDTIME")
	isSelect := strings.HasPrefix(upper, "SELECT")
	mws := make([]*tango.Middleware, n)
	for i := range mws {
		mws[i] = sys.NewSessionMW()
		defer mws[i].Conn.Close()
	}
	commits0, _ := sys.DB.CommitStats()
	var fsyncs0 int64
	if sys.DB.Durable() {
		_, _, fsyncs0 = sys.DB.FileDisk().GroupCommitStats()
	}
	start := time.Now()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, mw := range mws {
		wg.Add(1)
		go func(i int, mw *tango.Middleware) {
			defer wg.Done()
			switch {
			case isValidtime:
				plan, err := tsql.Parse(stmt, mw.Cat)
				if err != nil {
					errs[i] = err
					return
				}
				out, _, err := mw.Run(plan)
				if err == nil && i == 0 {
					fmt.Printf("session 0: %d rows\n", out.Cardinality())
				}
				errs[i] = err
			case isSelect:
				out, _, err := mw.Conn.QueryAll(stmt)
				if err == nil && i == 0 {
					fmt.Printf("session 0: %d rows\n", out.Cardinality())
				}
				errs[i] = err
			default:
				_, errs[i] = mw.Conn.Exec(stmt)
			}
		}(i, mw)
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("session %d: %w", i, err)
		}
	}
	commits1, wait := sys.DB.CommitStats()
	commits := commits1 - commits0
	fmt.Printf("%d sessions, %d commit(s) in %.3fs", n, commits, wall.Seconds())
	if sys.DB.Durable() {
		_, _, fsyncs1 := sys.DB.FileDisk().GroupCommitStats()
		fsyncs := fsyncs1 - fsyncs0
		ratio := 0.0
		if commits > 0 {
			ratio = float64(fsyncs) / float64(commits)
		}
		fmt.Printf(", %d fsync(s) = %.2f fsyncs/commit, commit wait %.3fs total", fsyncs, ratio, wait.Seconds())
	}
	fmt.Println()
	return nil
}

// tracedPassthrough wraps a DBMS passthrough statement in a root query
// span so passthrough SQL shows up in the flight recorder and the query
// latency histogram like middleware queries do — in particular, a
// statement that dies on a store crash leaves a durable flight entry.
// With tracing off it just runs f.
func tracedPassthrough(sys *bench.System, kind, sql string, f func() error) error {
	if sys.Flight == nil {
		return f()
	}
	root := telemetry.NewSpan("query")
	root.Set("sql", sql)
	root.Set("kind", kind)
	pop := sys.MW.Conn.PushTrace(root)
	err := f()
	pop()
	if err != nil {
		root.Set("error", err.Error())
	}
	root.Finish()
	telemetry.Stitch(root, sys.MW.Conn.TakeRemoteSpans(root.TraceID()))
	if sys.Metrics != nil {
		sys.Metrics.Histogram("tango_query_seconds", nil, telemetry.LatencyBuckets).
			Observe(root.Elapsed().Seconds())
	}
	sys.Flight.Record(root, kind, err)
	return err
}

// printSessionTop renders the per-session accounting counters
// (tango_session_*) as one row per session: what each connection has
// pulled over the wire and cost the engine so far.
func printSessionTop(sys *bench.System) error {
	if sys.Metrics == nil {
		return fmt.Errorf("metrics are off")
	}
	type acct struct{ rows, bytes, batches, stmts, hits, misses, evics, wal, spill, temp float64 }
	sessions := map[string]*acct{}
	get := func(id string) *acct {
		a, ok := sessions[id]
		if !ok {
			a = &acct{}
			sessions[id] = a
		}
		return a
	}
	for _, s := range sys.Metrics.Snapshot() {
		if !strings.HasPrefix(s.Name, "tango_session_") {
			continue
		}
		id := s.Labels["session"]
		if id == "" {
			continue
		}
		a := get(id)
		switch s.Name {
		case "tango_session_rows_total":
			a.rows += s.Value
		case "tango_session_bytes_total":
			a.bytes += s.Value
		case "tango_session_batches_total":
			a.batches += s.Value
		case "tango_session_statements_total":
			a.stmts += s.Value
		case "tango_session_pool_hits_total":
			a.hits += s.Value
		case "tango_session_pool_misses_total":
			a.misses += s.Value
		case "tango_session_pool_evictions_total":
			a.evics += s.Value
		case "tango_session_wal_bytes_total":
			a.wal += s.Value
		case "tango_session_spill_bytes_total":
			a.spill += s.Value
		case "tango_session_temp_bytes_total":
			a.temp += s.Value
		}
	}
	if len(sessions) == 0 {
		return fmt.Errorf("no session activity recorded yet")
	}
	ids := make([]string, 0, len(sessions))
	for id := range sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Printf("%-8s %10s %12s %8s %6s %10s %10s %6s %12s %12s %12s\n",
		"session", "rows", "bytes", "batches", "stmts", "pool_hit", "pool_miss", "evict", "wal_bytes", "spill_bytes", "temp_bytes")
	for _, id := range ids {
		a := sessions[id]
		fmt.Printf("%-8s %10.0f %12.0f %8.0f %6.0f %10.0f %10.0f %6.0f %12.0f %12.0f %12.0f\n",
			id, a.rows, a.bytes, a.batches, a.stmts, a.hits, a.misses, a.evics, a.wal, a.spill, a.temp)
	}
	return nil
}

func printRelation(r *rel.Relation, limit int) {
	fmt.Println(strings.Join(r.Schema.Names(), " | "))
	for i, t := range r.Tuples {
		if i >= limit {
			fmt.Printf("... (%d more rows)\n", r.Cardinality()-limit)
			return
		}
		parts := make([]string, len(t))
		for j, v := range t {
			parts[j] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
}
