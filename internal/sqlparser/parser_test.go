package sqlparser

import (
	"strings"
	"testing"

	"tango/internal/sqlast"
	"tango/internal/types"
)

func mustSelect(t *testing.T, src string) *sqlast.SelectStmt {
	t.Helper()
	s, err := ParseSelect(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return s
}

func TestSimpleSelect(t *testing.T) {
	s := mustSelect(t, "SELECT PosID, T1 FROM POSITION WHERE PosID = 5 ORDER BY T1 DESC")
	if len(s.Items) != 2 || len(s.From) != 1 || s.Where == nil || len(s.OrderBy) != 1 {
		t.Fatalf("shape: %+v", s)
	}
	if !s.OrderBy[0].Desc {
		t.Error("DESC lost")
	}
	tn := s.From[0].(sqlast.TableName)
	if tn.Name != "POSITION" {
		t.Errorf("table = %q", tn.Name)
	}
}

func TestAliases(t *testing.T) {
	s := mustSelect(t, "SELECT A.PosID AS P, B.EmpName Name FROM TMP A, POSITION AS B")
	if s.Items[0].Alias != "P" || s.Items[1].Alias != "Name" {
		t.Errorf("aliases: %+v", s.Items)
	}
	if s.From[0].(sqlast.TableName).Alias != "A" || s.From[1].(sqlast.TableName).Alias != "B" {
		t.Errorf("from aliases: %+v", s.From)
	}
	cr := s.Items[0].Expr.(sqlast.ColumnRef)
	if cr.Table != "A" || cr.Name != "PosID" {
		t.Errorf("colref: %+v", cr)
	}
}

func TestPaperTransferQuery(t *testing.T) {
	// The execution-ready SQL from Figure 5 of the paper.
	src := `SELECT A.PosID AS PosID, EmpName,
	        GREATEST(A.T1,B.T1) AS T1,
	        LEAST(A.T2,B.T2) AS T2, COUNTofPosID
	        FROM TMP A, POSITION B
	        WHERE A.PosID = B.PosID AND A.T1 < B.T2 AND A.T2 > B.T1
	        ORDER BY PosID`
	s := mustSelect(t, src)
	if len(s.Items) != 5 {
		t.Fatalf("items: %d", len(s.Items))
	}
	g := s.Items[2].Expr.(sqlast.FuncCall)
	if g.Name != "GREATEST" || len(g.Args) != 2 {
		t.Errorf("GREATEST: %+v", g)
	}
	conj := sqlast.Conjuncts(s.Where)
	if len(conj) != 3 {
		t.Errorf("conjuncts: %d", len(conj))
	}
}

func TestOperatorPrecedence(t *testing.T) {
	s := mustSelect(t, "SELECT 1 WHERE a = 1 OR b = 2 AND c = 3")
	or := s.Where.(sqlast.BinaryExpr)
	if or.Op != sqlast.OpOr {
		t.Fatalf("top op = %v", or.Op)
	}
	and := or.Right.(sqlast.BinaryExpr)
	if and.Op != sqlast.OpAnd {
		t.Fatalf("right op = %v", and.Op)
	}
	s2 := mustSelect(t, "SELECT 1 + 2 * 3")
	add := s2.Items[0].Expr.(sqlast.BinaryExpr)
	if add.Op != sqlast.OpAdd {
		t.Fatalf("arith precedence wrong: %v", s2.Items[0].Expr)
	}
}

func TestDateLiteral(t *testing.T) {
	s := mustSelect(t, "SELECT 1 WHERE T1 < DATE '1997-02-08'")
	cmp := s.Where.(sqlast.BinaryExpr)
	lit := cmp.Right.(sqlast.Literal)
	if lit.Value.Kind() != types.KindDate {
		t.Fatalf("kind = %v", lit.Value.Kind())
	}
	if lit.Value.String() != "1997-02-08" {
		t.Errorf("date = %v", lit.Value)
	}
}

func TestAggregatesAndGroupBy(t *testing.T) {
	s := mustSelect(t, "SELECT PosID, COUNT(*), SUM(Pay), COUNT(DISTINCT EmpID) FROM POSITION GROUP BY PosID HAVING COUNT(*) > 2")
	if len(s.GroupBy) != 1 || s.Having == nil {
		t.Fatalf("group shape: %+v", s)
	}
	c := s.Items[1].Expr.(sqlast.FuncCall)
	if c.Name != "COUNT" {
		t.Error("COUNT lost")
	}
	if _, ok := c.Args[0].(sqlast.Star); !ok {
		t.Error("COUNT(*) star lost")
	}
	d := s.Items[3].Expr.(sqlast.FuncCall)
	if !d.Distinct {
		t.Error("DISTINCT lost")
	}
}

func TestDerivedTableAndUnion(t *testing.T) {
	src := `SELECT P.t FROM (SELECT T1 AS t FROM R UNION SELECT T2 AS t FROM R) P WHERE P.t > 3`
	s := mustSelect(t, src)
	d := s.From[0].(sqlast.Derived)
	if d.Alias != "P" {
		t.Fatalf("alias = %q", d.Alias)
	}
	if d.Select.Union == nil || d.Select.UnionAll {
		t.Error("UNION lost or marked ALL")
	}
}

func TestHints(t *testing.T) {
	for src, want := range map[string]sqlast.JoinHint{
		"SELECT /*+ USE_NL */ * FROM A, B":    sqlast.HintNestedLoop,
		"SELECT /*+ USE_MERGE */ * FROM A, B": sqlast.HintMerge,
		"SELECT /*+ USE_HASH */ * FROM A, B":  sqlast.HintHash,
	} {
		if got := mustSelect(t, src).Hint; got != want {
			t.Errorf("%q: hint = %v, want %v", src, got, want)
		}
	}
}

func TestBetweenIsNull(t *testing.T) {
	s := mustSelect(t, "SELECT 1 WHERE x BETWEEN 1 AND 5 AND y IS NOT NULL AND z NOT BETWEEN 2 AND 3")
	conj := sqlast.Conjuncts(s.Where)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if b := conj[0].(sqlast.Between); b.Not {
		t.Error("first BETWEEN should not be negated")
	}
	if n := conj[1].(sqlast.IsNull); !n.Not {
		t.Error("IS NOT NULL lost")
	}
	if b := conj[2].(sqlast.Between); !b.Not {
		t.Error("NOT BETWEEN lost")
	}
}

func TestCreateInsertDropAnalyze(t *testing.T) {
	st, err := Parse("CREATE TABLE POSITION (PosID INTEGER, EmpName VARCHAR(40), Pay FLOAT, T1 DATE, T2 DATE)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*sqlast.CreateTable)
	if len(ct.Columns) != 5 || ct.Columns[1].Kind != types.KindString || ct.Columns[3].Kind != types.KindDate {
		t.Fatalf("create: %+v", ct)
	}

	st, err = Parse("INSERT INTO POSITION VALUES (1, 'Tom', 10.5, DATE '1995-01-01', DATE '1996-01-01'), (2, 'Jane', 9.0, DATE '1995-06-01', DATE '1997-01-01')")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*sqlast.Insert)
	if len(ins.Values) != 2 || len(ins.Values[0]) != 5 {
		t.Fatalf("insert: %+v", ins)
	}

	st, err = Parse("DROP TABLE IF EXISTS TMP17")
	if err != nil {
		t.Fatal(err)
	}
	if d := st.(*sqlast.DropTable); !d.IfExists || d.Name != "TMP17" {
		t.Fatalf("drop: %+v", d)
	}

	st, err = Parse("ANALYZE POSITION HISTOGRAM 20")
	if err != nil {
		t.Fatal(err)
	}
	if a := st.(*sqlast.Analyze); a.HistogramBuckets != 20 {
		t.Fatalf("analyze: %+v", a)
	}
}

func TestInsertSelect(t *testing.T) {
	st, err := Parse("INSERT INTO T2 SELECT * FROM T1 WHERE x > 0")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*sqlast.Insert)
	if ins.Select == nil {
		t.Fatal("INSERT ... SELECT lost")
	}
}

func TestStringEscapes(t *testing.T) {
	s := mustSelect(t, "SELECT 'O''Hara'")
	lit := s.Items[0].Expr.(sqlast.Literal)
	if lit.Value.AsString() != "O'Hara" {
		t.Errorf("string = %q", lit.Value.AsString())
	}
}

func TestRoundTripThroughString(t *testing.T) {
	srcs := []string{
		"SELECT PosID, T1 FROM POSITION WHERE (PosID = 5) ORDER BY T1",
		"SELECT A.PosID AS P FROM TMP A, POSITION B WHERE (A.PosID = B.PosID)",
		"SELECT PosID, COUNT(*) FROM POSITION GROUP BY PosID",
		"SELECT T1 AS t FROM R UNION ALL SELECT T2 AS t FROM R",
		"SELECT * FROM (SELECT PosID FROM POSITION) X WHERE (X.PosID > 2)",
	}
	for _, src := range srcs {
		s1 := mustSelect(t, src)
		s2 := mustSelect(t, s1.String())
		if s1.String() != s2.String() {
			t.Errorf("round trip changed:\n%s\nvs\n%s", s1.String(), s2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM X",
		"SELECT * FROM",
		"SELECT * FROM (SELECT 1)",
		"SELECT 'unterminated",
		"CREATE TABLE T (x NOSUCHTYPE)",
		"SELECT * FROM T WHERE",
		"FROB 1",
		"SELECT 1; SELECT 2",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestComments(t *testing.T) {
	s := mustSelect(t, "SELECT 1 -- trailing\nFROM T /* inline */ WHERE x = 1")
	if len(s.From) != 1 || s.Where == nil {
		t.Fatalf("comments broke parse: %+v", s)
	}
}

func TestLongUnionChain(t *testing.T) {
	parts := make([]string, 10)
	for i := range parts {
		parts[i] = "SELECT 1 AS x FROM T"
	}
	s := mustSelect(t, strings.Join(parts, " UNION ALL "))
	n := 0
	for cur := s; cur != nil; cur = cur.Union {
		n++
	}
	if n != 10 {
		t.Errorf("union chain = %d", n)
	}
}

func TestLimitParsing(t *testing.T) {
	s := mustSelect(t, "SELECT K FROM T ORDER BY K LIMIT 10")
	if s.Limit != 10 {
		t.Fatalf("limit = %d", s.Limit)
	}
	s2 := mustSelect(t, s.String())
	if s2.Limit != 10 {
		t.Fatalf("limit round trip = %d", s2.Limit)
	}
	if _, err := Parse("SELECT K FROM T LIMIT x"); err == nil {
		t.Error("non-numeric LIMIT should fail")
	}
}
