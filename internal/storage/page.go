// Package storage implements the simulated disk under the DBMS engine:
// fixed-size slotted pages, heap files of pages, and an LRU buffer pool
// with I/O accounting. The "disk" is an in-memory page store whose read
// and write counters drive the engine's cost behaviour; it stands in
// for the paper's Oracle storage layer.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PageSize is the size of every page in bytes (8 KB, a common DBMS
// block size; the paper's block-count statistics are in these units).
const PageSize = 8192

// PageID identifies a page within a file.
type PageID struct {
	File FileID
	No   int32
}

// FileID identifies a heap file on the disk.
type FileID int32

// Page is a slotted page: a header with a slot directory growing from
// the front and record data growing from the back.
//
// Layout: [numSlots uint16][freeStart uint16][freeEnd uint16]
// then numSlots slot entries of [offset uint16][length uint16];
// record bytes live at [offset, offset+length).
type Page struct {
	buf   [PageSize]byte
	dirty bool
}

const (
	pageHeaderSize = 6
	slotSize       = 4
)

var (
	// ErrPageFull is returned by Insert when the record does not fit.
	ErrPageFull = errors.New("storage: page full")
	// ErrNoRecord is returned for an empty or out-of-range slot.
	ErrNoRecord = errors.New("storage: no such record")
)

// Reset initializes an empty page.
func (p *Page) Reset() {
	for i := range p.buf[:pageHeaderSize] {
		p.buf[i] = 0
	}
	p.setNumSlots(0)
	p.setFreeStart(pageHeaderSize)
	p.setFreeEnd(PageSize)
	p.dirty = true
}

func (p *Page) numSlots() int      { return int(binary.LittleEndian.Uint16(p.buf[0:])) }
func (p *Page) setNumSlots(n int)  { binary.LittleEndian.PutUint16(p.buf[0:], uint16(n)) }
func (p *Page) freeStart() int     { return int(binary.LittleEndian.Uint16(p.buf[2:])) }
func (p *Page) setFreeStart(n int) { binary.LittleEndian.PutUint16(p.buf[2:], uint16(n)) }
func (p *Page) freeEnd() int       { return int(binary.LittleEndian.Uint16(p.buf[4:])) }
func (p *Page) setFreeEnd(n int) {
	// PageSize does not fit uint16; store PageSize as 0.
	if n == PageSize {
		n = 0
	}
	binary.LittleEndian.PutUint16(p.buf[4:], uint16(n))
}

func (p *Page) getFreeEnd() int {
	n := p.freeEnd()
	if n == 0 {
		return PageSize
	}
	return n
}

func (p *Page) slotAt(i int) (off, length int) {
	base := pageHeaderSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p.buf[base:])),
		int(binary.LittleEndian.Uint16(p.buf[base+2:]))
}

func (p *Page) setSlot(i, off, length int) {
	base := pageHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:], uint16(length))
}

// FreeSpace returns the bytes available for one more record (including
// its slot entry).
func (p *Page) FreeSpace() int {
	n := p.getFreeEnd() - p.freeStart() - slotSize
	if n < 0 {
		return 0
	}
	return n
}

// NumSlots returns the number of slots (including deleted ones).
func (p *Page) NumSlots() int { return p.numSlots() }

// Insert stores a record and returns its slot number.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) > p.FreeSpace() {
		return 0, ErrPageFull
	}
	slot := p.numSlots()
	end := p.getFreeEnd()
	off := end - len(rec)
	copy(p.buf[off:end], rec)
	p.setSlot(slot, off, len(rec))
	p.setNumSlots(slot + 1)
	p.setFreeStart(pageHeaderSize + (slot+1)*slotSize)
	p.setFreeEnd(off)
	p.dirty = true
	return slot, nil
}

// Record returns the bytes of the record in the given slot. The slice
// aliases the page buffer; callers must not retain it across pool
// evictions.
func (p *Page) Record(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.numSlots() {
		return nil, ErrNoRecord
	}
	off, length := p.slotAt(slot)
	if length == 0 {
		return nil, ErrNoRecord
	}
	return p.buf[off : off+length], nil
}

// Delete marks a slot as deleted (length 0). Space is not reclaimed;
// the engine rewrites tables rather than compacting pages.
func (p *Page) Delete(slot int) error {
	if slot < 0 || slot >= p.numSlots() {
		return ErrNoRecord
	}
	off, _ := p.slotAt(slot)
	p.setSlot(slot, off, 0)
	p.dirty = true
	return nil
}

// String summarizes the page for debugging.
func (p *Page) String() string {
	return fmt.Sprintf("Page{slots:%d free:%d}", p.numSlots(), p.FreeSpace())
}
