// The backend seam: everything a connection needs from "the server",
// abstracted so the same client — iterators, retry machinery, fetch
// pipelining, temp-table protocol — runs unchanged over the in-process
// façade (unit tests, benchmarks) and over a real TCP socket
// (internal/client/tcp.go). The surface is exactly the Hdr-carrying
// server entry points the client already called, plus the session
// lifecycle.
package client

import (
	"time"

	"tango/internal/meta"
	"tango/internal/server"
	"tango/internal/telemetry"
	"tango/internal/types"
)

// Backend is one server session as the connection sees it.
type Backend interface {
	// ExecHdr runs a non-SELECT statement.
	ExecHdr(hdr []byte, sql string) (int64, error)
	// QueryHdr opens a cursor over a SELECT.
	QueryHdr(hdr []byte, sql string, prefetch int) (Cursor, error)
	// LoadSeqHdr bulk-loads an encoded batch under a dedup sequence.
	LoadSeqHdr(hdr []byte, table string, payload []byte, seq int64) (int64, error)
	// InsertRowsHdr loads an encoded batch with per-row INSERTs.
	InsertRowsHdr(hdr []byte, table string, payload []byte) (int64, error)
	// TableStatsHdr fetches catalog statistics.
	TableStatsHdr(hdr []byte, table string, histogramBuckets int) (*meta.TableStats, error)
	// TableSchema fetches a table schema.
	TableSchema(table string) (types.Schema, error)
	// RegisterTemp and ForgetTemp maintain the session's temp-table
	// set for server-side GC.
	RegisterTemp(name string)
	ForgetTemp(name string)
	// SessionID is the server-side session identifier.
	SessionID() int64
	// TakeRemoteSpans drains server-collected spans of one trace (may
	// return nil when the transport cannot stitch remotely).
	TakeRemoteSpans(traceID uint64) []*telemetry.Span
	// Close ends the session, returning the temp-table GC count.
	Close() (int, error)
}

// Cursor is one open server cursor as the iterator sees it;
// *server.Cursor satisfies it directly.
type Cursor interface {
	Schema() types.Schema
	FetchBatchHdr(hdr []byte) ([]byte, error)
	FetchBatchSeqHdr(hdr []byte, seq int64, dst []byte) ([]byte, error)
	FetchBatchPipelinedSeqHdr(hdr []byte, seq int64, dst []byte) ([]byte, time.Duration, error)
	Close() error
}

var _ Cursor = (*server.Cursor)(nil)

// inproc is the in-process backend: direct calls into the server
// façade, exactly the pre-TCP behavior.
type inproc struct {
	srv *server.Server
	se  *server.Session
}

func (b *inproc) ExecHdr(hdr []byte, sql string) (int64, error) {
	return b.srv.ExecHdr(hdr, sql)
}

func (b *inproc) QueryHdr(hdr []byte, sql string, prefetch int) (Cursor, error) {
	cur, err := b.srv.QueryHdr(hdr, sql, prefetch)
	if err != nil {
		// Explicit nil: a typed-nil *server.Cursor inside the interface
		// would defeat `cur == nil` checks downstream.
		return nil, err
	}
	return cur, nil
}

func (b *inproc) LoadSeqHdr(hdr []byte, table string, payload []byte, seq int64) (int64, error) {
	return b.srv.LoadSeqHdr(hdr, table, payload, seq)
}

func (b *inproc) InsertRowsHdr(hdr []byte, table string, payload []byte) (int64, error) {
	return b.srv.InsertRowsHdr(hdr, table, payload)
}

func (b *inproc) TableStatsHdr(hdr []byte, table string, histogramBuckets int) (*meta.TableStats, error) {
	return b.srv.TableStatsHdr(hdr, table, histogramBuckets)
}

func (b *inproc) TableSchema(table string) (types.Schema, error) {
	return b.srv.TableSchema(table)
}

func (b *inproc) RegisterTemp(name string) { b.se.RegisterTemp(name) }
func (b *inproc) ForgetTemp(name string)   { b.se.ForgetTemp(name) }
func (b *inproc) SessionID() int64         { return b.se.ID() }

func (b *inproc) TakeRemoteSpans(traceID uint64) []*telemetry.Span {
	return b.srv.Collector().Take(traceID)
}

func (b *inproc) Close() (int, error) { return b.se.Close() }
