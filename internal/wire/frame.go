// Framed binary protocol for the real TCP transport. Every request
// and reply crossing a socket is one length-prefixed frame carrying a
// message type, a multiplexing session ID (many sessions share one
// connection), and a request ID that matches replies to their
// requests when several are in flight. Payload encodings reuse the
// batch/schema/trace-header codecs of this package, so the bytes on a
// real socket are the same bytes the in-process path has always
// exchanged.
//
// Frame layout (protocol version 1), integers big-endian:
//
//	bytes 0-3   uint32  length of the remainder (1+4+8+len(payload))
//	byte  4     message type
//	bytes 5-8   uint32  session ID (0 = connection scope)
//	bytes 9-16  uint64  request ID (echoed verbatim in the reply)
//	bytes 17-   payload
//
// The first frame on a connection must be MsgHello carrying the magic
// and protocol version; the server answers MsgHelloOK or closes. The
// decoder returns typed errors — never panics — for truncated,
// oversized, and garbage input; FuzzDecodeFrame holds it to that.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// ProtocolVersion is the framed-protocol version spoken by this build.
const ProtocolVersion = 1

// Magic opens every MsgHello payload, so a server can reject a
// non-TANGO peer on the first frame instead of mis-parsing garbage.
const Magic = "TNGO"

// frameHeaderLen is the fixed per-frame overhead after the length
// prefix: type (1) + session (4) + request (8).
const frameHeaderLen = 13

// framePrefixLen is the length prefix itself.
const framePrefixLen = 4

// MaxFrameSize caps one frame's encoded remainder. Bulk-load payloads
// are the largest legitimate frames; anything past this is a corrupt
// length prefix or a hostile peer, and the connection is cut rather
// than the allocation attempted.
const MaxFrameSize = 64 << 20

// Message types. Requests flow client → server; MsgOK/MsgErr flow
// back with the request's ID. Payload encodings are documented on the
// Append helpers below.
const (
	MsgHello byte = iota + 1
	MsgHelloOK
	MsgOpenSession  // reply payload: session id (uvarint) + resume token (fixed64)
	MsgResumeSession// payload: session id (uvarint) + resume token (fixed64)
	MsgCloseSession // session scope; reply payload: collected temp tables (uvarint)
	MsgExec         // payload: trace hdr + sql
	MsgQuery        // payload: trace hdr + prefetch (uvarint) + sql; reply: cursor id + commit seq + schema
	MsgFetch        // payload: trace hdr + cursor id (uvarint) + seq (varint); reply: flags + batch
	MsgCloseCursor  // payload: cursor id (uvarint)
	MsgLoad         // payload: trace hdr + load seq (varint) + table + batch
	MsgInsert       // payload: trace hdr + table + batch
	MsgStats        // payload: trace hdr + buckets (varint) + table; reply: JSON stats
	MsgSchema       // payload: table; reply: EncodeSchema
	MsgRegisterTemp // payload: table
	MsgForgetTemp   // payload: table
	MsgOK
	MsgErr
	msgTypeEnd
)

var msgNames = [...]string{
	0:               "invalid",
	MsgHello:        "hello",
	MsgHelloOK:      "hello-ok",
	MsgOpenSession:  "open-session",
	MsgResumeSession: "resume-session",
	MsgCloseSession: "close-session",
	MsgExec:         "exec",
	MsgQuery:        "query",
	MsgFetch:        "fetch",
	MsgCloseCursor:  "close-cursor",
	MsgLoad:         "load",
	MsgInsert:       "insert",
	MsgStats:        "stats",
	MsgSchema:       "schema",
	MsgRegisterTemp: "register-temp",
	MsgForgetTemp:   "forget-temp",
	MsgOK:           "ok",
	MsgErr:          "err",
}

// MsgName renders a message type for diagnostics.
func MsgName(t byte) string {
	if int(t) < len(msgNames) && msgNames[t] != "" {
		return msgNames[t]
	}
	return fmt.Sprintf("msg(%d)", t)
}

// MsgOp maps a request message type to the fault-injection op it
// represents on the wire (ok reports false for messages that are not
// fault-injectable: handshake, session plumbing, replies). The chaos
// proxy uses this to drive the PR-4 schedule grammar against real
// connections.
func MsgOp(t byte) (Op, bool) {
	switch t {
	case MsgExec:
		return OpExec, true
	case MsgQuery:
		return OpQuery, true
	case MsgFetch:
		return OpFetch, true
	case MsgLoad:
		return OpLoad, true
	case MsgInsert:
		return OpInsert, true
	case MsgStats:
		return OpStats, true
	}
	return 0, false
}

// Frame is one decoded protocol frame. Payload aliases the decode
// input; callers that retain it past the next read must copy.
type Frame struct {
	Type    byte
	Session uint32
	Request uint64
	Payload []byte
}

// Typed frame-decode failures. The connection layer treats any of
// them as fatal for the connection (framing is lost), but they are
// ordinary errors — garbage input must never panic.
var (
	// ErrFrameTruncated reports input shorter than its length prefix
	// promises (or shorter than a prefix at all).
	ErrFrameTruncated = errors.New("wire: truncated frame")
	// ErrFrameTooLarge reports a length prefix past MaxFrameSize.
	ErrFrameTooLarge = errors.New("wire: frame exceeds max size")
	// ErrBadFrame reports a structurally invalid frame (zero or unknown
	// message type, impossible remainder length).
	ErrBadFrame = errors.New("wire: malformed frame")
	// ErrBadHandshake reports a Hello with the wrong magic or an
	// unsupported protocol version.
	ErrBadHandshake = errors.New("wire: bad handshake")
)

// AppendFrame appends the encoding of f to dst.
func AppendFrame(dst []byte, f Frame) []byte {
	rest := frameHeaderLen + len(f.Payload)
	dst = binary.BigEndian.AppendUint32(dst, uint32(rest))
	dst = append(dst, f.Type)
	dst = binary.BigEndian.AppendUint32(dst, f.Session)
	dst = binary.BigEndian.AppendUint64(dst, f.Request)
	return append(dst, f.Payload...)
}

// DecodeFrame decodes one frame from the front of data, returning the
// bytes consumed. The returned payload aliases data.
func DecodeFrame(data []byte) (Frame, int, error) {
	if len(data) < framePrefixLen {
		return Frame{}, 0, ErrFrameTruncated
	}
	rest := binary.BigEndian.Uint32(data)
	if rest > MaxFrameSize {
		return Frame{}, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, rest)
	}
	if rest < frameHeaderLen {
		return Frame{}, 0, fmt.Errorf("%w: remainder %d shorter than header", ErrBadFrame, rest)
	}
	if len(data) < framePrefixLen+int(rest) {
		return Frame{}, 0, ErrFrameTruncated
	}
	body := data[framePrefixLen : framePrefixLen+int(rest)]
	f := Frame{
		Type:    body[0],
		Session: binary.BigEndian.Uint32(body[1:5]),
		Request: binary.BigEndian.Uint64(body[5:13]),
		Payload: body[13:],
	}
	if f.Type == 0 || f.Type >= msgTypeEnd {
		return Frame{}, 0, fmt.Errorf("%w: unknown message type %d", ErrBadFrame, f.Type)
	}
	return f, framePrefixLen + int(rest), nil
}

// ReadFrame reads one frame from r, reusing buf (grown as needed) for
// the frame body; the returned payload aliases the returned buffer.
// io.EOF is returned untouched at a clean frame boundary so the
// connection loop can distinguish "peer hung up" from "peer died
// mid-frame" (ErrFrameTruncated).
func ReadFrame(r io.Reader, buf []byte) (Frame, []byte, error) {
	var prefix [framePrefixLen]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = ErrFrameTruncated
		}
		return Frame{}, buf, err
	}
	rest := binary.BigEndian.Uint32(prefix[:])
	if rest > MaxFrameSize {
		return Frame{}, buf, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, rest)
	}
	if rest < frameHeaderLen {
		return Frame{}, buf, fmt.Errorf("%w: remainder %d shorter than header", ErrBadFrame, rest)
	}
	if cap(buf) < int(rest) {
		buf = make([]byte, rest)
	}
	buf = buf[:rest]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = ErrFrameTruncated
		}
		return Frame{}, buf, err
	}
	f := Frame{
		Type:    buf[0],
		Session: binary.BigEndian.Uint32(buf[1:5]),
		Request: binary.BigEndian.Uint64(buf[5:13]),
		Payload: buf[13:],
	}
	if f.Type == 0 || f.Type >= msgTypeEnd {
		return Frame{}, buf, fmt.Errorf("%w: unknown message type %d", ErrBadFrame, f.Type)
	}
	return f, buf, nil
}

// AppendHello appends the MsgHello payload: magic + version.
func AppendHello(dst []byte) []byte {
	dst = append(dst, Magic...)
	return append(dst, ProtocolVersion)
}

// CheckHello validates a MsgHello payload and returns the peer's
// protocol version.
func CheckHello(payload []byte) (byte, error) {
	if len(payload) != len(Magic)+1 || string(payload[:len(Magic)]) != Magic {
		return 0, fmt.Errorf("%w: bad magic", ErrBadHandshake)
	}
	v := payload[len(Magic)]
	if v != ProtocolVersion {
		return 0, fmt.Errorf("%w: protocol version %d, want %d", ErrBadHandshake, v, ProtocolVersion)
	}
	return v, nil
}

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// CutString decodes a length-prefixed string from the front of data,
// returning the remainder.
func CutString(data []byte) (string, []byte, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 || uint64(len(data)-k) < n {
		return "", nil, fmt.Errorf("%w: truncated string", ErrBadFrame)
	}
	return string(data[k : k+int(n)]), data[k+int(n):], nil
}

// AppendBytes appends a length-prefixed byte block (the trace-header
// envelope: an empty block means "no trace").
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// CutBytes decodes a length-prefixed byte block, returning the block
// (aliasing data) and the remainder.
func CutBytes(data []byte) ([]byte, []byte, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 || uint64(len(data)-k) < n {
		return nil, nil, fmt.Errorf("%w: truncated bytes", ErrBadFrame)
	}
	return data[k : k+int(n)], data[k+int(n):], nil
}

// --- typed errors across the wire ---

// ErrCode classifies a MsgErr payload so typed errors survive the
// socket: the client transport reconstructs the same error types the
// in-process path surfaces, keeping the retry classifiers working
// unchanged over TCP.
type ErrCode byte

const (
	// CodeGeneric is a plain (non-retryable) server error: semantic SQL
	// failures, schema mismatches.
	CodeGeneric ErrCode = iota + 1
	// CodeOverloaded is an admission-control shed; the payload carries
	// the server-suggested backoff the client honors before retrying.
	CodeOverloaded
	// CodeFault is an injected wire fault (chaos schedules running
	// server-side) re-surfaced typed.
	CodeFault
	// CodeShutdown is a statement rejected or canceled because the
	// server is draining.
	CodeShutdown
)

// RemoteError is the decoded form of a MsgErr payload.
type RemoteError struct {
	Code    ErrCode
	Msg     string
	Backoff time.Duration // CodeOverloaded: server-suggested retry delay
	Queue   int64         // CodeOverloaded: queue depth at shed time
	Op      Op            // CodeFault
	Kind    FaultKind     // CodeFault
	Index   int64         // CodeFault
}

// Error renders the remote failure.
func (e *RemoteError) Error() string {
	switch e.Code {
	case CodeOverloaded:
		return fmt.Sprintf("wire: server overloaded (retry after %v): %s", e.Backoff, e.Msg)
	case CodeShutdown:
		return "wire: server shutting down: " + e.Msg
	default:
		return e.Msg
	}
}

// AppendRemoteError appends the MsgErr payload encoding of e.
func AppendRemoteError(dst []byte, e RemoteError) []byte {
	dst = append(dst, byte(e.Code))
	dst = binary.AppendUvarint(dst, uint64(e.Backoff))
	dst = binary.AppendVarint(dst, e.Queue)
	dst = append(dst, byte(e.Op), byte(e.Kind))
	dst = binary.AppendVarint(dst, e.Index)
	return AppendString(dst, e.Msg)
}

// DecodeRemoteError decodes a MsgErr payload.
func DecodeRemoteError(payload []byte) (RemoteError, error) {
	if len(payload) < 1 {
		return RemoteError{}, fmt.Errorf("%w: empty error payload", ErrBadFrame)
	}
	e := RemoteError{Code: ErrCode(payload[0])}
	rest := payload[1:]
	backoff, k := binary.Uvarint(rest)
	if k <= 0 {
		return RemoteError{}, fmt.Errorf("%w: truncated error payload", ErrBadFrame)
	}
	e.Backoff = time.Duration(backoff)
	rest = rest[k:]
	queue, k := binary.Varint(rest)
	if k <= 0 {
		return RemoteError{}, fmt.Errorf("%w: truncated error payload", ErrBadFrame)
	}
	e.Queue = queue
	rest = rest[k:]
	if len(rest) < 2 {
		return RemoteError{}, fmt.Errorf("%w: truncated error payload", ErrBadFrame)
	}
	e.Op, e.Kind = Op(rest[0]), FaultKind(rest[1])
	rest = rest[2:]
	idx, k := binary.Varint(rest)
	if k <= 0 {
		return RemoteError{}, fmt.Errorf("%w: truncated error payload", ErrBadFrame)
	}
	e.Index = idx
	rest = rest[k:]
	msg, rest, err := CutString(rest)
	if err != nil {
		return RemoteError{}, err
	}
	if len(rest) != 0 {
		return RemoteError{}, fmt.Errorf("%w: %d trailing error bytes", ErrBadFrame, len(rest))
	}
	e.Msg = msg
	return e, nil
}
