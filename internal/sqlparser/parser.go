package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"tango/internal/sqlast"
	"tango/internal/types"
)

// Parse parses a single SQL statement (an optional trailing semicolon
// is allowed).
func Parse(src string) (sqlast.Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input %q", p.cur().raw)
	}
	return stmt, nil
}

// ParseSelect parses a SELECT statement.
func ParseSelect(src string) (*sqlast.SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlast.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqlparser: not a SELECT: %T", stmt)
	}
	return sel, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.pos++
		return t, nil
	}
	return token{}, p.errorf("expected %q, found %q", text, p.cur().raw)
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sqlparser: %s (at offset %d in %q)",
		fmt.Sprintf(format, args...), p.cur().pos, truncate(p.src, 80))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func (p *parser) statement() (sqlast.Statement, error) {
	switch {
	case p.at(tokIdent, "SELECT"):
		return p.selectStmt()
	case p.at(tokIdent, "CREATE"):
		return p.createStmt()
	case p.at(tokIdent, "DROP"):
		return p.dropTable()
	case p.at(tokIdent, "INSERT"):
		return p.insert()
	case p.at(tokIdent, "ANALYZE"):
		return p.analyze()
	default:
		return nil, p.errorf("unexpected token %q", p.cur().raw)
	}
}

// selectStmt parses a SELECT with optional UNION chain and trailing
// ORDER BY (which binds to the whole union).
func (p *parser) selectStmt() (*sqlast.SelectStmt, error) {
	first, err := p.selectCore()
	if err != nil {
		return nil, err
	}
	cur := first
	for p.accept(tokIdent, "UNION") {
		all := p.accept(tokIdent, "ALL")
		next, err := p.selectCore()
		if err != nil {
			return nil, err
		}
		cur.Union = next
		cur.UnionAll = all
		cur = next
	}
	if p.accept(tokIdent, "ORDER") {
		if _, err := p.expect(tokIdent, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			item := sqlast.OrderItem{Expr: e}
			if p.accept(tokIdent, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokIdent, "ASC")
			}
			first.OrderBy = append(first.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokIdent, "LIMIT") {
		tok, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(tok.text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %q", tok.text)
		}
		first.Limit = n
	}
	return first, nil
}

// selectCore parses one SELECT ... [FROM ... WHERE ... GROUP BY ...
// HAVING ...] block without UNION/ORDER BY.
func (p *parser) selectCore() (*sqlast.SelectStmt, error) {
	if _, err := p.expect(tokIdent, "SELECT"); err != nil {
		return nil, err
	}
	s := &sqlast.SelectStmt{}
	if p.at(tokHint, "") {
		switch p.cur().text {
		case "USE_NL":
			s.Hint = sqlast.HintNestedLoop
		case "USE_MERGE":
			s.Hint = sqlast.HintMerge
		case "USE_HASH":
			s.Hint = sqlast.HintHash
		}
		p.pos++
	}
	if p.accept(tokIdent, "DISTINCT") {
		s.Distinct = true
	} else {
		p.accept(tokIdent, "ALL")
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokIdent, "FROM") {
		for {
			ref, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, ref)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokIdent, "WHERE") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.accept(tokIdent, "GROUP") {
		if _, err := p.expect(tokIdent, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokIdent, "HAVING") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	return s, nil
}

func (p *parser) selectItem() (sqlast.SelectItem, error) {
	if p.accept(tokSymbol, "*") {
		return sqlast.SelectItem{Expr: sqlast.Star{}}, nil
	}
	// tab.* form.
	if p.cur().kind == tokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokSymbol && p.toks[p.pos+2].text == "*" {
		tab := p.cur().raw
		p.pos += 3
		return sqlast.SelectItem{Expr: sqlast.ColumnRef{Table: tab, Name: "*"}}, nil
	}
	e, err := p.expression()
	if err != nil {
		return sqlast.SelectItem{}, err
	}
	item := sqlast.SelectItem{Expr: e}
	if p.accept(tokIdent, "AS") {
		t, err := p.expectIdent()
		if err != nil {
			return sqlast.SelectItem{}, err
		}
		item.Alias = t
	} else if p.cur().kind == tokIdent && !isReserved(p.cur().text) {
		item.Alias = p.cur().raw
		p.pos++
	}
	return item, nil
}

func (p *parser) tableRef() (sqlast.TableRef, error) {
	if p.accept(tokSymbol, "(") {
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		p.accept(tokIdent, "AS")
		alias, err := p.expectIdent()
		if err != nil {
			return nil, fmt.Errorf("sqlparser: derived table requires an alias: %w", err)
		}
		return sqlast.Derived{Select: sub, Alias: alias}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ref := sqlast.TableName{Name: name}
	if p.accept(tokIdent, "AS") {
		a, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ref.Alias = a
	} else if p.cur().kind == tokIdent && !isReserved(p.cur().text) {
		ref.Alias = p.cur().raw
		p.pos++
	}
	return ref, nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tokIdent || isReserved(p.cur().text) {
		return "", p.errorf("expected identifier, found %q", p.cur().raw)
	}
	name := p.cur().raw
	p.pos++
	return name, nil
}

var reserved = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "UNION": true, "ALL": true, "DISTINCT": true,
	"AND": true, "OR": true, "NOT": true, "AS": true, "ON": true,
	"CREATE": true, "TABLE": true, "DROP": true, "INSERT": true, "INTO": true,
	"VALUES": true, "INDEX": true, "ANALYZE": true, "BETWEEN": true, "IS": true,
	"NULL": true, "ASC": true, "DESC": true, "DATE": true, "EXISTS": true, "LIMIT": true,
	"IF": true, "HISTOGRAM": true, "TRUE": true, "FALSE": true,
}

func isReserved(up string) bool { return reserved[up] }

// --- Expressions (precedence climbing) ---

func (p *parser) expression() (sqlast.Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (sqlast.Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = sqlast.BinaryExpr{Op: sqlast.OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) andExpr() (sqlast.Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = sqlast.BinaryExpr{Op: sqlast.OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) notExpr() (sqlast.Expr, error) {
	if p.accept(tokIdent, "NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return sqlast.UnaryExpr{Op: "NOT", Operand: e}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (sqlast.Expr, error) {
	left, err := p.additive()
	if err != nil {
		return nil, err
	}
	// BETWEEN / IS NULL postfix predicates.
	if not := p.atBetween(); not >= 0 {
		if not == 1 {
			p.pos++ // NOT
		}
		p.pos++ // BETWEEN
		lo, err := p.additive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokIdent, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.additive()
		if err != nil {
			return nil, err
		}
		return sqlast.Between{Expr: left, Lo: lo, Hi: hi, Not: not == 1}, nil
	}
	if p.accept(tokIdent, "IS") {
		neg := p.accept(tokIdent, "NOT")
		if _, err := p.expect(tokIdent, "NULL"); err != nil {
			return nil, err
		}
		return sqlast.IsNull{Expr: left, Not: neg}, nil
	}
	ops := map[string]sqlast.BinaryOp{
		"=": sqlast.OpEq, "<>": sqlast.OpNe, "!=": sqlast.OpNe,
		"<": sqlast.OpLt, "<=": sqlast.OpLe, ">": sqlast.OpGt, ">=": sqlast.OpGe,
	}
	if p.cur().kind == tokSymbol {
		if op, ok := ops[p.cur().text]; ok {
			p.pos++
			right, err := p.additive()
			if err != nil {
				return nil, err
			}
			return sqlast.BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

// atBetween returns 1 for NOT BETWEEN, 0 for BETWEEN, -1 otherwise,
// without consuming tokens.
func (p *parser) atBetween() int {
	if p.at(tokIdent, "BETWEEN") {
		return 0
	}
	if p.at(tokIdent, "NOT") && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokIdent && p.toks[p.pos+1].text == "BETWEEN" {
		return 1
	}
	return -1
}

func (p *parser) additive() (sqlast.Expr, error) {
	left, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op sqlast.BinaryOp
		switch {
		case p.at(tokSymbol, "+"):
			op = sqlast.OpAdd
		case p.at(tokSymbol, "-"):
			op = sqlast.OpSub
		default:
			return left, nil
		}
		p.pos++
		right, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		left = sqlast.BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) multiplicative() (sqlast.Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		var op sqlast.BinaryOp
		switch {
		case p.at(tokSymbol, "*"):
			op = sqlast.OpMul
		case p.at(tokSymbol, "/"):
			op = sqlast.OpDiv
		default:
			return left, nil
		}
		p.pos++
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = sqlast.BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) unary() (sqlast.Expr, error) {
	if p.accept(tokSymbol, "-") {
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(sqlast.Literal); ok {
			switch lit.Value.Kind() {
			case types.KindInt:
				return sqlast.Literal{Value: types.Int(-lit.Value.AsInt())}, nil
			case types.KindFloat:
				return sqlast.Literal{Value: types.Float(-lit.Value.AsFloat())}, nil
			}
		}
		return sqlast.UnaryExpr{Op: "-", Operand: e}, nil
	}
	return p.primary()
}

func (p *parser) primary() (sqlast.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return sqlast.Literal{Value: types.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return sqlast.Literal{Value: types.Int(n)}, nil
	case tokString:
		p.pos++
		return sqlast.Literal{Value: types.Str(t.text)}, nil
	case tokSymbol:
		if t.text == "(" {
			p.pos++
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		switch t.text {
		case "NULL":
			p.pos++
			return sqlast.Literal{Value: types.Null}, nil
		case "TRUE":
			p.pos++
			return sqlast.Literal{Value: types.Bool(true)}, nil
		case "FALSE":
			p.pos++
			return sqlast.Literal{Value: types.Bool(false)}, nil
		case "DATE":
			// DATE 'YYYY-MM-DD'
			p.pos++
			lit, err := p.expect(tokString, "")
			if err != nil {
				return nil, err
			}
			day, err := parseDate(lit.text)
			if err != nil {
				return nil, p.errorf("bad date literal %q", lit.text)
			}
			return sqlast.Literal{Value: types.Date(day)}, nil
		}
		// Function call?
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			return p.funcCall()
		}
		if isReserved(t.text) {
			return nil, p.errorf("unexpected keyword %q in expression", t.raw)
		}
		// Column reference, possibly qualified.
		p.pos++
		if p.accept(tokSymbol, ".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return sqlast.ColumnRef{Table: t.raw, Name: col}, nil
		}
		return sqlast.ColumnRef{Name: t.raw}, nil
	}
	return nil, p.errorf("unexpected token %q in expression", t.raw)
}

func (p *parser) funcCall() (sqlast.Expr, error) {
	name := p.cur().text
	p.pos += 2 // name and "("
	call := sqlast.FuncCall{Name: name}
	if p.accept(tokSymbol, ")") {
		return call, nil
	}
	if p.accept(tokIdent, "DISTINCT") {
		call.Distinct = true
	}
	for {
		if p.accept(tokSymbol, "*") {
			call.Args = append(call.Args, sqlast.Star{})
		} else {
			a, err := p.expression()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
		}
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return call, nil
}

func parseDate(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, err
	}
	return t.Unix() / 86400, nil
}

// --- DDL/DML ---

func (p *parser) createStmt() (sqlast.Statement, error) {
	p.pos++ // CREATE
	if p.accept(tokIdent, "INDEX") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokIdent, "ON"); err != nil {
			return nil, err
		}
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &sqlast.CreateIndex{Name: name, Table: table, Column: col}, nil
	}
	if _, err := p.expect(tokIdent, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	ct := &sqlast.CreateTable{Name: name}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		kind, err := p.columnType()
		if err != nil {
			return nil, err
		}
		ct.Columns = append(ct.Columns, sqlast.ColumnDef{Name: col, Kind: kind})
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) columnType() (types.Kind, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return 0, p.errorf("expected type name, found %q", t.raw)
	}
	p.pos++
	var kind types.Kind
	switch t.text {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "NUMBER":
		kind = types.KindInt
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		kind = types.KindFloat
	case "VARCHAR", "CHAR", "TEXT", "STRING", "VARCHAR2":
		kind = types.KindString
	case "BOOLEAN", "BOOL":
		kind = types.KindBool
	case "DATE":
		kind = types.KindDate
	default:
		return 0, p.errorf("unknown type %q", t.raw)
	}
	// Optional (n) or (p, s) length spec, ignored.
	if p.accept(tokSymbol, "(") {
		for !p.accept(tokSymbol, ")") {
			if p.at(tokEOF, "") {
				return 0, p.errorf("unterminated type length")
			}
			p.pos++
		}
	}
	return kind, nil
}

func (p *parser) dropTable() (sqlast.Statement, error) {
	p.pos++ // DROP
	if _, err := p.expect(tokIdent, "TABLE"); err != nil {
		return nil, err
	}
	d := &sqlast.DropTable{}
	if p.accept(tokIdent, "IF") {
		if _, err := p.expect(tokIdent, "EXISTS"); err != nil {
			return nil, err
		}
		d.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d.Name = name
	return d, nil
}

func (p *parser) insert() (sqlast.Statement, error) {
	p.pos++ // INSERT
	if _, err := p.expect(tokIdent, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &sqlast.Insert{Table: name}
	if p.accept(tokSymbol, "(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if p.at(tokIdent, "SELECT") {
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		ins.Select = sel
		return ins, nil
	}
	if _, err := p.expect(tokIdent, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []sqlast.Expr
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		ins.Values = append(ins.Values, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) analyze() (sqlast.Statement, error) {
	p.pos++ // ANALYZE
	p.accept(tokIdent, "TABLE")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	a := &sqlast.Analyze{Table: name}
	if p.accept(tokIdent, "HISTOGRAM") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errorf("bad bucket count %q", t.text)
		}
		a.HistogramBuckets = n
	}
	return a, nil
}
