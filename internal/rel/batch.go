package rel

import "tango/internal/types"

// DefaultBatchSize is the tuple count of one execution batch. It
// matches the wire prefetch default so a middleware batch is exactly
// one fetch batch in the common TRANSFER^M-fed pipeline.
const DefaultBatchSize = 256

// BatchIterator is the optional batch-at-a-time extension of Iterator.
// Operators that implement it move tuples in batches, paying one
// interface call per batch instead of one per tuple; consumers discover
// the fast path by type assertion (or via NextBatch below), so the
// protocol is transparent to the optimizer and to tuple-at-a-time
// operators.
//
// Contract: NextBatch fills dst[:len(dst)] with up to len(dst) tuples
// and returns the number written; n == 0 (with a nil error) means end
// of stream. The tuples placed in dst must remain valid until the next
// NextBatch or Next call on the producer — batch producers hand out
// freshly decoded or owned tuples, never a reused scratch tuple.
// Interleaving Next and NextBatch calls is allowed; both advance the
// same underlying stream.
type BatchIterator interface {
	Iterator
	NextBatch(dst []types.Tuple) (int, error)
}

// NextBatch pulls up to len(dst) tuples from it: the batch fast path
// when the iterator implements BatchIterator, otherwise a
// tuple-at-a-time fallback. The fallback clones each tuple, because the
// plain Iterator contract lets a producer reuse the returned tuple on
// the next call, while a batch must stay valid as a whole; native
// BatchIterator implementations avoid both the clone and the per-tuple
// interface call.
func NextBatch(it Iterator, dst []types.Tuple) (int, error) {
	if b, ok := it.(BatchIterator); ok {
		return b.NextBatch(dst)
	}
	n := 0
	for n < len(dst) {
		t, ok, err := it.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		dst[n] = t.Clone()
		n++
	}
	return n, nil
}

// AsBatch adapts any iterator to the batch protocol: a pass-through
// when it already implements BatchIterator, otherwise a wrapper whose
// NextBatch loops (and clones) over Next.
func AsBatch(it Iterator) BatchIterator {
	if b, ok := it.(BatchIterator); ok {
		return b
	}
	return &batchAdapter{Iterator: it}
}

// batchAdapter lifts a tuple-at-a-time iterator to BatchIterator.
type batchAdapter struct{ Iterator }

func (a *batchAdapter) NextBatch(dst []types.Tuple) (int, error) {
	return NextBatch(a.Iterator, dst)
}

// NextBatch on a materialized relation's iterator copies tuple headers
// straight out of the backing slice — the batch-native fast path for
// in-memory sources (and, through it, SharedSource readers).
func (it *sliceIter) NextBatch(dst []types.Tuple) (int, error) {
	if it.pos < 0 {
		_, _, err := it.Next() // produce the canonical not-opened error
		return 0, err
	}
	n := copy(dst, it.rel.Tuples[it.pos:])
	it.pos += n
	return n, nil
}
