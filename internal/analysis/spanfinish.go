package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanFinish verifies the create → annotate → Finish lifecycle of
// trace spans (anything shaped like telemetry.Span). A span that is
// never Finished is invisible to the collector's leak detector only
// because it never completes: its duration stays open-ended, the
// flight recorder snapshots it as un-Done, and the query latency
// histogram undercounts. For every function-local span acquired in a
// function — from telemetry.NewSpan / telemetry.NewRemoteSpan or from
// a parent's Child call — the analyzer requires that the function
// either finishes it (a call or defer of Finish) or hands ownership
// away (returns it, stores it in a field, or passes it to another
// function, including function literals).
//
// It additionally flags early returns between a non-deferred
// acquisition and its Finish, which leak the span on error paths (the
// fix is `defer sp.Finish()` or an explicit Finish before the return).
//
// AddChild is exempt: it returns an already-finished child used to
// graft pre-measured durations onto a tree, so there is nothing left
// to finish. The analysis is intraprocedural, and spans stored in
// struct fields are exempt — they are finished by whoever owns the
// struct (e.g. the middleware's finish path).
var SpanFinish = &Analyzer{
	Name: "spanfinish",
	Doc:  "check that every created trace span is Finished on all paths",
	Run:  runSpanFinish,
}

// spanMakerNames are package-level constructors whose result is a live
// span the caller must finish.
var spanMakerNames = map[string]bool{"NewSpan": true, "NewRemoteSpan": true}

func runSpanFinish(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkSpanBody(pass, fn.Body)
				}
				return true
			case *ast.FuncLit:
				checkSpanBody(pass, fn.Body)
				return true
			}
			return true
		})
	}
	return nil
}

// spanTrack is the per-variable lifecycle record.
type spanTrack struct {
	obj        *types.Var
	name       string
	acquiredAt token.Pos // NewSpan/NewRemoteSpan/Child site, or NoPos
	acquireEnd token.Pos // end of the acquiring statement
	finishes   []iterUse // Finish calls (reusing the iterclose use record)
	escaped    bool
}

// checkSpanBody analyzes one function body. Nested function literals
// are walked for uses (a Finish inside a deferred closure counts) but
// their own locals are analyzed in their own pass.
func checkSpanBody(pass *Pass, body *ast.BlockStmt) {
	tracks := map[*types.Var]*spanTrack{}
	track := func(obj *types.Var) *spanTrack {
		t, ok := tracks[obj]
		if !ok {
			t = &spanTrack{obj: obj, name: obj.Name()}
			tracks[obj] = t
		}
		return t
	}

	// localSpanVar resolves an identifier to a function-local (or
	// parameter) span-shaped variable.
	localSpanVar := func(id *ast.Ident) *types.Var {
		obj, _ := pass.Info.Uses[id].(*types.Var)
		if obj == nil {
			obj, _ = pass.Info.Defs[id].(*types.Var)
		}
		if obj == nil || obj.IsField() || obj.Parent() == nil || obj.Parent() == pass.Pkg.Scope() {
			return nil
		}
		if !isSpanLike(obj.Type()) {
			return nil
		}
		return obj
	}

	classify := func(id *ast.Ident, sel *ast.SelectorExpr, inDefer bool, stmtEnd token.Pos) {
		obj := localSpanVar(id)
		if obj == nil {
			return
		}
		t := track(obj)
		if sel == nil {
			// Bare use: returned, assigned into a field/slice, passed as
			// an argument — ownership handed away.
			t.escaped = true
			return
		}
		if sel.Sel.Name == "Finish" {
			t.finishes = append(t.finishes, iterUse{kind: useClose, pos: id.Pos(), stmtEnd: stmtEnd, defer_: inDefer})
		}
		// Any other method call (Set, SetInt, Child, Attach, Context,
		// ...) is a neutral annotation of the still-live span.
	}

	var curStmt ast.Stmt
	var visit func(n ast.Node, inDefer bool)
	visitChildren := func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if c != nil {
				visit(c, inDefer)
			}
			return false
		})
	}
	visit = func(n ast.Node, inDefer bool) {
		if n == nil {
			return
		}
		switch s := n.(type) {
		case *ast.BlockStmt:
			for _, st := range s.List {
				prev := curStmt
				curStmt = st
				visit(st, inDefer)
				curStmt = prev
			}
			return
		case *ast.CaseClause:
			for _, e := range s.List {
				visit(e, inDefer)
			}
			for _, st := range s.Body {
				prev := curStmt
				curStmt = st
				visit(st, inDefer)
				curStmt = prev
			}
			return
		case *ast.CommClause:
			visit(s.Comm, inDefer)
			for _, st := range s.Body {
				prev := curStmt
				curStmt = st
				visit(st, inDefer)
				curStmt = prev
			}
			return
		case *ast.DeferStmt:
			visit(s.Call, true)
			return
		case *ast.AssignStmt:
			// Plain identifiers on the left are (re)definitions, not
			// uses; complex left-hand sides (fields, indexes) are.
			for _, lhs := range s.Lhs {
				if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
					visit(lhs, inDefer)
				}
			}
			for _, rhs := range s.Rhs {
				visit(rhs, inDefer)
			}
			return
		case *ast.ValueSpec:
			for _, v := range s.Values {
				visit(v, inDefer)
			}
			return
		case *ast.FuncLit:
			// Record uses (finishes in deferred closures count); the
			// literal's own acquisitions are analyzed in its own pass.
			visit(s.Body, inDefer)
			return
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok {
				if id, ok2 := ast.Unparen(sel.X).(*ast.Ident); ok2 {
					classify(id, sel, inDefer, stmtEndOr(curStmt, s))
					for _, arg := range s.Args {
						visit(arg, inDefer)
					}
					return
				}
			}
			visitChildren(s, inDefer)
			return
		case *ast.Ident:
			classify(s, nil, inDefer, stmtEndOr(curStmt, s))
			return
		case *ast.SelectorExpr:
			visit(s.X, inDefer)
			return
		}
		visitChildren(n, inDefer)
	}
	visit(body, false)

	// Find acquisitions: sp := NewSpan(...) / NewRemoteSpan(...) /
	// parent.Child(...). AddChild returns an already-finished span and
	// is deliberately not an acquisition.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isSpanAcquisition(pass.Info, call) {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if obj := localSpanVar(id); obj != nil {
			t := track(obj)
			if t.acquiredAt == token.NoPos {
				t.acquiredAt = as.Pos()
				t.acquireEnd = as.End()
			}
		}
		return true
	})

	for _, t := range tracks {
		decideSpanTrack(pass, body, t)
	}
}

// isSpanAcquisition reports whether the call mints a live span the
// caller owns: a NewSpan/NewRemoteSpan constructor or a Child method
// call, in either case returning a span-shaped value.
func isSpanAcquisition(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 || !isSpanLike(sig.Results().At(0).Type()) {
		return false
	}
	if sig.Recv() == nil {
		return spanMakerNames[fn.Name()]
	}
	return fn.Name() == "Child"
}

// decideSpanTrack reports lifecycle violations for one variable.
func decideSpanTrack(pass *Pass, body *ast.BlockStmt, t *spanTrack) {
	if t.acquiredAt == token.NoPos {
		return // not created here (e.g. a parameter): nothing to enforce
	}
	if t.escaped {
		return // ownership handed away
	}
	if len(t.finishes) == 0 {
		pass.Reportf(t.acquiredAt, "%s is created but never Finished in this function", t.name)
		return
	}
	deferred := false
	for _, f := range t.finishes {
		if f.defer_ {
			deferred = true
			break
		}
	}
	if deferred {
		return
	}
	firstFinish := t.finishes[0].pos
	for _, f := range t.finishes {
		if f.pos < firstFinish {
			firstFinish = f.pos
		}
	}
	if firstFinish <= t.acquireEnd {
		return
	}
	if leak := findReturnBetween(body, t.acquireEnd, firstFinish); leak != token.NoPos {
		pass.Reportf(leak, "return leaks span %s: created at line %d, Finished only at line %d (use defer %s.Finish())",
			t.name, pass.Fset.Position(t.acquiredAt).Line, pass.Fset.Position(firstFinish).Line, t.name)
	}
}

// isSpanLike reports whether t follows the telemetry.Span contract:
// Finish() (optionally returning the elapsed duration) and
// Child(name string) returning another span. Matching is structural so
// the analyzer works on any package without importing telemetry.
func isSpanLike(t types.Type) bool {
	fin := methodSig(t, "Finish")
	if fin == nil || fin.Params().Len() != 0 || fin.Results().Len() > 1 {
		return false
	}
	child := methodSig(t, "Child")
	if child == nil || child.Params().Len() != 1 || child.Results().Len() != 1 {
		return false
	}
	if b, ok := child.Params().At(0).Type().Underlying().(*types.Basic); !ok || b.Kind() != types.String {
		return false
	}
	return true
}
