// Staffing: the paper's motivating workload at realistic size. Loads
// the synthetic UIS dataset, then answers the §2.2 staffing question
// (per-position headcount over time, joined back to the assignments)
// two ways — the stratum way (everything in the DBMS) and through the
// middleware optimizer — and reports the speedup the middleware's
// internal temporal aggregation delivers.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"tango/internal/algebra"
	"tango/internal/bench"
	"tango/internal/tango"
)

func main() {
	rows := flag.Int("rows", 8400, "POSITION rows")
	flag.Parse()

	fmt.Printf("loading UIS POSITION with %d rows...\n", *rows)
	sys, err := bench.NewSystem(bench.Config{
		PositionRows: *rows,
		EmployeeRows: 100,
		Histograms:   20,
	})
	if err != nil {
		log.Fatal(err)
	}

	initial := bench.Q2Initial(bench.Day(1998, time.January, 1))

	// The stratum approach: leave the initial plan as is — every
	// operator in the DBMS, results shipped up at the end.
	stratum := initial.Clone()
	ex := &tango.Executor{Conn: sys.MW.Conn, Cat: sys.MW.Cat}
	start := time.Now()
	stratumOut, err := ex.Run(stratum)
	if err != nil {
		log.Fatal(err)
	}
	stratumTime := time.Since(start)

	// The middleware approach: optimize, then execute the winner.
	report, err := sys.MW.Optimize(initial)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	mwOut, err := sys.MW.Execute(report.Best)
	if err != nil {
		log.Fatal(err)
	}
	mwTime := time.Since(start)

	fmt.Printf("\nstratum (all in DBMS):   %8.3fs   %6d rows\n", stratumTime.Seconds(), stratumOut.Cardinality())
	fmt.Printf("middleware (optimized):  %8.3fs   %6d rows\n", mwTime.Seconds(), mwOut.Cardinality())
	if mwTime > 0 {
		fmt.Printf("speedup: %.1fx\n\n", float64(stratumTime)/float64(mwTime))
	}
	fmt.Println("optimizer moved these operators into the middleware:")
	report.Best.Walk(func(n *algebra.Node) {
		switch n.Op {
		case algebra.OpTAggr, algebra.OpTJoin, algebra.OpJoin, algebra.OpSort:
			if n.Loc() == algebra.LocMW {
				fmt.Println("  " + n.Label())
			}
		}
	})
	fmt.Printf("\nplan signature: %s\n", bench.PlanSignature(report.Best))
}
