// Package xxl implements the middleware's query-processing algorithms
// as pipelined iterators, in the style of the XXL library the paper
// builds on: external sort, merge join, temporal (overlap) merge join,
// sweep-line temporal aggregation, filtering, projection, duplicate
// elimination, coalescing, and the two transfer algorithms. All
// middleware algorithms are order preserving, which is what lets the
// optimizer use list equivalences for middleware-resident plan parts.
package xxl

import (
	"container/heap"
	"fmt"
	"os"
	"sort"

	"tango/internal/rel"
	"tango/internal/types"
)

// DefaultSortMemory is the number of tuples SORT^M holds in memory
// before spilling a run to disk.
const DefaultSortMemory = 1 << 17 // 128k tuples

// Sort is SORT^M: an external merge sort. Runs of at most MemTuples
// tuples are sorted in memory; larger inputs spill sorted runs to
// temporary files and merge them with a k-way heap.
type Sort struct {
	in        rel.Iterator
	keys      []int
	descs     []bool
	MemTuples int
	// Parallelism bounds the concurrent run-generation workers (chunk
	// sort + spill) and the in-memory chunk sort fan-out. 0 or 1 means
	// sequential. Output order is identical either way: runs merge in
	// chunk order and the merge heap breaks ties on run index, so the
	// sort stays stable no matter which worker finishes first.
	Parallelism int
	// OnStats, when set, receives the parallel shape of the sort
	// (workers, chunks, partition sizes) after Open completes.
	OnStats func(ParallelStats)

	rows    []types.Tuple // in-memory case
	pos     int
	merger  *runMerger // external case
	spilled int64      // bytes written to spill runs by the last Open
}

// NewSort sorts by the given column indexes, ascending.
func NewSort(in rel.Iterator, keys []int) *Sort {
	return &Sort{in: in, keys: keys, MemTuples: DefaultSortMemory}
}

// NewSortDesc sorts with per-key direction control.
func NewSortDesc(in rel.Iterator, keys []int, descs []bool) *Sort {
	return &Sort{in: in, keys: keys, descs: descs, MemTuples: DefaultSortMemory}
}

// Schema returns the input schema.
func (s *Sort) Schema() types.Schema { return s.in.Schema() }

// Open materializes and sorts the input, spilling if necessary. On
// error the input iterator and any spilled run files are released; a
// failed Open used to leak both. With Parallelism > 1, spilled runs
// are sorted and written by a bounded worker pool while the
// coordinator keeps pulling input, and in-memory buffers are
// chunk-sorted concurrently; the output order is identical to the
// sequential sort's.
func (s *Sort) Open() (err error) {
	if s.MemTuples <= 0 {
		s.MemTuples = DefaultSortMemory
	}
	par := s.Parallelism
	if par < 1 {
		par = 1
	}
	if err := s.in.Open(); err != nil {
		return err
	}
	s.rows = nil
	s.pos = 0
	s.merger = nil

	gen := newRunGen(s, par)
	inOpen := true
	defer func() {
		if err == nil {
			return
		}
		if inOpen {
			_ = s.in.Close() // error path: the original error wins
		}
		gen.abort()
	}()
	buf := make([]types.Tuple, 0, 1024)
	spill := func() error {
		buf = gen.spill(buf)
		return gen.err()
	}
	// Pull the input a batch at a time when it supports it; tuples are
	// cloned either way because the sort retains them past the next
	// producer call.
	if b, ok := s.in.(rel.BatchIterator); ok {
		dst := make([]types.Tuple, rel.DefaultBatchSize)
		for {
			n, e := b.NextBatch(dst)
			if e != nil {
				return e
			}
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				buf = append(buf, dst[i].Clone())
				if len(buf) >= s.MemTuples {
					if e := spill(); e != nil {
						return e
					}
				}
			}
		}
	} else {
		for {
			t, ok2, e := s.in.Next()
			if e != nil {
				return e
			}
			if !ok2 {
				break
			}
			buf = append(buf, t.Clone())
			if len(buf) >= s.MemTuples {
				if e := spill(); e != nil {
					return e
				}
			}
		}
	}
	inOpen = false
	if err := s.in.Close(); err != nil {
		return err
	}
	if gen.chunks == 0 {
		// Pure in-memory sort (chunk-parallel when configured).
		s.rows = s.sortParallel(buf, par, &gen.stats)
		s.reportStats(gen, par)
		return nil
	}
	if len(buf) > 0 {
		if e := spill(); e != nil {
			return e
		}
	}
	files, err := gen.finish()
	if err != nil {
		return err
	}
	s.spilled = gen.spilledBytes()
	// newRunMerger owns the files now and cleans up on error.
	m, err := newRunMerger(files, s.keys, s.descs)
	if err != nil {
		return err
	}
	s.merger = m
	s.reportStats(gen, par)
	return nil
}

// reportStats delivers the parallel shape to the OnStats observer.
func (s *Sort) reportStats(gen *runGen, par int) {
	if s.OnStats == nil {
		return
	}
	st := gen.stats
	st.Op = "Sort^M"
	st.Workers = par
	if st.Partitions < st.Workers {
		st.Workers = st.Partitions
	}
	if st.Workers < 1 {
		st.Workers = 1
	}
	s.OnStats(st)
}

func (s *Sort) sortBuf(buf []types.Tuple) {
	sort.SliceStable(buf, func(i, j int) bool {
		return types.CompareTuples(buf[i], buf[j], s.keys, s.descs) < 0
	})
}

// SpilledBytes reports the bytes the last Open wrote to spill runs
// (0 for a fully in-memory sort) — the spill-accounting feed for the
// per-query resource attribution.
func (s *Sort) SpilledBytes() int64 { return s.spilled }

// Next returns tuples in key order.
func (s *Sort) Next() (types.Tuple, bool, error) {
	if s.merger != nil {
		return s.merger.next()
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}

// Close releases memory and temporary files, reporting the first
// temp-file error (a close/remove failure means disk is not being
// reclaimed, which the caller should hear about).
func (s *Sort) Close() error {
	s.rows = nil
	if s.merger != nil {
		err := s.merger.close()
		s.merger = nil
		return err
	}
	return nil
}

// --- run files ---

// writeRun writes a sorted run of tuples to a temp file, returning the
// file and the bytes written.
func writeRun(rows []types.Tuple) (*os.File, int64, error) {
	f, err := os.CreateTemp("", "tango-sort-*.run")
	if err != nil {
		return nil, 0, err
	}
	var written int64
	buf := make([]byte, 0, 1<<16)
	for _, t := range rows {
		buf = types.EncodeTuple(buf, t)
		if len(buf) >= 1<<16 {
			if _, err := f.Write(buf); err != nil {
				removeRuns([]*os.File{f})
				return nil, 0, err
			}
			written += int64(len(buf))
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := f.Write(buf); err != nil {
			removeRuns([]*os.File{f})
			return nil, 0, err
		}
		written += int64(len(buf))
	}
	if _, err := f.Seek(0, 0); err != nil {
		removeRuns([]*os.File{f})
		return nil, 0, err
	}
	return f, written, nil
}

// removeRuns closes and deletes spilled run files on error paths; the
// discarded errors cannot outrank the failure that got us here.
func removeRuns(files []*os.File) {
	for _, f := range files {
		_ = f.Close()
		_ = os.Remove(f.Name())
	}
}

// runReader streams tuples back from a run file.
type runReader struct {
	f    *os.File
	data []byte
	pos  int
}

func newRunReader(f *os.File) (*runReader, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data := make([]byte, info.Size())
	if _, err := f.ReadAt(data, 0); err != nil && info.Size() > 0 {
		return nil, err
	}
	return &runReader{f: f, data: data}, nil
}

func (r *runReader) next() (types.Tuple, bool, error) {
	if r.pos >= len(r.data) {
		return nil, false, nil
	}
	t, n, err := types.DecodeTuple(r.data[r.pos:])
	if err != nil {
		return nil, false, fmt.Errorf("xxl: corrupt sort run: %w", err)
	}
	r.pos += n
	return t, true, nil
}

func (r *runReader) close() error {
	name := r.f.Name()
	err := r.f.Close()
	if rerr := os.Remove(name); err == nil {
		err = rerr
	}
	r.data = nil
	return err
}

// --- k-way merge ---

type mergeItem struct {
	tuple types.Tuple
	src   int
}

type mergeHeap struct {
	items []mergeItem
	keys  []int
	descs []bool
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	c := types.CompareTuples(h.items[i].tuple, h.items[j].tuple, h.keys, h.descs)
	if c != 0 {
		return c < 0
	}
	return h.items[i].src < h.items[j].src // stability across runs
}
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

type runMerger struct {
	readers []*runReader
	h       *mergeHeap
}

func newRunMerger(files []*os.File, keys []int, descs []bool) (*runMerger, error) {
	m := &runMerger{h: &mergeHeap{keys: keys, descs: descs}}
	for i, f := range files {
		r, err := newRunReader(f)
		if err != nil {
			_ = m.close()
			removeRuns(files[i:]) // files not yet wrapped in readers
			return nil, err
		}
		m.readers = append(m.readers, r)
	}
	for i, r := range m.readers {
		t, ok, err := r.next()
		if err != nil {
			_ = m.close()
			return nil, err
		}
		if ok {
			m.h.items = append(m.h.items, mergeItem{tuple: t, src: i})
		}
	}
	heap.Init(m.h)
	return m, nil
}

func (m *runMerger) next() (types.Tuple, bool, error) {
	if m.h.Len() == 0 {
		return nil, false, nil
	}
	top := heap.Pop(m.h).(mergeItem)
	t, ok, err := m.readers[top.src].next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		heap.Push(m.h, mergeItem{tuple: t, src: top.src})
	}
	return top.tuple, true, nil
}

func (m *runMerger) close() error {
	var first error
	for _, r := range m.readers {
		if r == nil {
			continue
		}
		if err := r.close(); first == nil {
			first = err
		}
	}
	m.readers = nil
	return first
}
