// Command tangolint is TANGO's project linter: a multichecker that
// runs the internal/analysis suite — including the interprocedural
// concurrency analyzers (latchorder, lockio, goleak) — over the
// package patterns given on the command line.
//
// Usage:
//
//	go run ./cmd/tangolint [flags] [packages...]
//
// With no patterns it checks ./... . Flags:
//
//	-checks list   comma-separated analyzers to run (default: all)
//	-list          list available analyzers and exit
//	-json          emit a machine-readable report on stdout
//	-fix           print machine-applyable suggestions after findings
//	-dir path      module directory to analyze (default: cwd)
//	-cache path    summary-cache directory ("" disables caching)
//	-p n           packages analyzed in parallel (default: GOMAXPROCS)
//
// Exit status contract (relied on by make lint and CI): 0 means a
// clean run, 1 means findings were reported, 2 means the run itself
// failed (bad flags, load or type-check errors). Findings can be
// suppressed at the source line with
//
//	//lint:ignore <analyzer> <why the finding is safe>
//
// or per file with //lint:file-ignore; the reason is mandatory by
// convention, and a suppression matching no finding is itself reported
// (stalesuppress).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"tango/internal/analysis"
)

// version participates in cache keys: bump it when an analyzer's
// semantics change without a source change in the analyzed tree.
const version = "tangolint-1"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonReport is the -json output schema, consumed by CI (lint.json).
type jsonReport struct {
	Version   string        `json:"version"`
	Tool      string        `json:"tool"`
	Analyzers []string      `json:"analyzers"`
	Packages  int           `json:"packages"`
	Cached    int           `json:"cached"`
	ElapsedMs int64         `json:"elapsedMs"`
	Findings  []jsonFinding `json:"findings"`
}

type jsonFinding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suggestion string `json:"suggestion,omitempty"`
}

// run is the testable driver body; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tangolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated analyzers to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit a machine-readable report on stdout")
	fix := fs.Bool("fix", false, "print machine-applyable suggestions after findings")
	dir := fs.String("dir", "", "module directory to analyze (default: current directory)")
	cacheDir := fs.String("cache", "", "summary-cache directory (empty disables caching)")
	parallel := fs.Int("p", runtime.GOMAXPROCS(0), "packages analyzed in parallel")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tangolint [flags] [packages...]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "tangolint:", err)
		return 2
	}

	start := time.Now()
	pkgs, err := analysis.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "tangolint:", err)
		return 2
	}

	cache := *cacheDir
	if cache != "" && !filepath.IsAbs(cache) && *dir != "" {
		cache = filepath.Join(*dir, cache)
	}
	diags, stats, err := analysis.RunCached(pkgs, analyzers, analysis.RunOptions{
		CacheDir: cache,
		Parallel: *parallel,
		Version:  version,
	})
	if err != nil {
		fmt.Fprintln(stderr, "tangolint:", err)
		return 2
	}
	elapsed := time.Since(start)

	if *jsonOut {
		report := jsonReport{
			Version:   "1",
			Tool:      version,
			Packages:  stats.Packages,
			Cached:    stats.Cached,
			ElapsedMs: elapsed.Milliseconds(),
			Findings:  []jsonFinding{},
		}
		for _, a := range analyzers {
			report.Analyzers = append(report.Analyzers, a.Name)
		}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonFinding{
				Analyzer:   d.Analyzer,
				File:       d.Pos.Filename,
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Message:    d.Message,
				Suggestion: d.Suggestion,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "tangolint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
			if *fix && d.Suggestion != "" {
				fmt.Fprintf(stdout, "\tfix: %s\n", d.Suggestion)
			}
		}
	}

	cachedNote := ""
	if cache != "" {
		cachedNote = fmt.Sprintf(", %d cached", stats.Cached)
	}
	fmt.Fprintf(stderr, "tangolint: %d finding(s) in %d package(s)%s in %s\n",
		len(diags), stats.Packages, cachedNote, elapsed.Round(time.Millisecond))
	if len(diags) > 0 {
		return 1
	}
	return 0
}
