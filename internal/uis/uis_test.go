package uis

import (
	"testing"
	"time"

	"tango/internal/client"
	"tango/internal/engine"
	"tango/internal/server"
	"tango/internal/types"
	"tango/internal/wire"
)

func TestPositionShapeFacts(t *testing.T) {
	g := &Generator{Seed: 1}
	rows := g.Positions(20000)
	if len(rows) != 20000 {
		t.Fatalf("rows = %d", len(rows))
	}
	cut95 := types.DayOf(1995, time.January, 1)
	cut92 := types.DayOf(1992, time.January, 1)
	after95, after92 := 0, 0
	posFreq := map[int64]int{}
	for _, r := range rows {
		if len(r) != 8 {
			t.Fatalf("arity = %d", len(r))
		}
		t1, t2 := r[6].AsInt(), r[7].AsInt()
		if t1 >= t2 {
			t.Fatalf("invalid period: %v", r)
		}
		if t1 >= cut95 {
			after95++
		}
		if t1 >= cut92 {
			after92++
		}
		posFreq[r[0].AsInt()]++
	}
	// ~65% of periods start 1995 or later (§5.2 Query 3).
	frac95 := float64(after95) / float64(len(rows))
	if frac95 < 0.58 || frac95 > 0.72 {
		t.Errorf("fraction starting ≥1995 = %.2f, want ≈ 0.65", frac95)
	}
	// Most data concentrated after 1992 (§5.2 Query 2).
	if frac92 := float64(after92) / float64(len(rows)); frac92 < 0.75 {
		t.Errorf("fraction starting ≥1992 = %.2f, want > 0.75", frac92)
	}
	// Skew: the most frequent PosID should be far above average.
	maxFreq := 0
	for _, f := range posFreq {
		if f > maxFreq {
			maxFreq = f
		}
	}
	avg := float64(len(rows)) / float64(len(posFreq))
	if float64(maxFreq) < 5*avg {
		t.Errorf("PosID distribution not skewed: max %d vs avg %.1f", maxFreq, avg)
	}
}

func TestEmployeeShapeFacts(t *testing.T) {
	g := &Generator{Seed: 1}
	rows := g.Employees(1000)
	schema := EmployeeSchema()
	if schema.Len() != 31 {
		t.Fatalf("EMPLOYEE arity = %d, want 31", schema.Len())
	}
	var total int
	for _, r := range rows {
		if len(r) != 31 {
			t.Fatalf("row arity = %d", len(r))
		}
		total += r.ByteSize()
	}
	avg := float64(total) / float64(len(rows))
	// The paper's EMPLOYEE is ≈276 B/tuple (13.8 MB / 49,972).
	if avg < 180 || avg > 380 {
		t.Errorf("avg tuple size = %.0f B, want ≈ 276", avg)
	}
}

func TestDeterminism(t *testing.T) {
	a := (&Generator{Seed: 7}).Positions(100)
	b := (&Generator{Seed: 7}).Positions(100)
	for i := range a {
		for j := range a[i] {
			if !types.Equal(a[i][j], b[i][j]) {
				t.Fatalf("generation not deterministic at row %d", i)
			}
		}
	}
	c := (&Generator{Seed: 8}).Positions(100)
	same := true
	for i := range a {
		if !types.Equal(a[i][0], c[i][0]) || !types.Equal(a[i][6], c[i][6]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different data")
	}
}

func TestLoadIntoDBMS(t *testing.T) {
	db := engine.Open(engine.Config{})
	srv := server.New(db, wire.Latency{})
	conn := client.Connect(srv)
	tables, err := Load(conn, 2000, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %v", tables)
	}
	stats, err := conn.TableStats("POSITION", 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cardinality != 2000 {
		t.Errorf("POSITION cardinality = %d", stats.Cardinality)
	}
	if stats.Column("T1") == nil || stats.Column("T1").Histogram == nil {
		t.Error("ANALYZE should have built histograms")
	}
	est, err := conn.TableStats("EMPLOYEE", 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.Cardinality != 1000 {
		t.Errorf("EMPLOYEE cardinality = %d", est.Cardinality)
	}
}
