package tango

import (
	"strings"
	"testing"

	"tango/internal/algebra"
	"tango/internal/client"
	"tango/internal/engine"
	"tango/internal/rel"
	"tango/internal/server"
	"tango/internal/sqlparser"
	"tango/internal/types"
	"tango/internal/wire"
)

// setup builds a DBMS with the paper's POSITION relation (Figure 3a).
func setup(t *testing.T) (*client.Conn, *Executor) {
	t.Helper()
	db := engine.Open(engine.Config{})
	srv := server.New(db, wire.Latency{})
	conn := client.Connect(srv)
	mustExec := func(sql string) {
		t.Helper()
		if _, err := conn.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE POSITION (PosID INTEGER, EmpName VARCHAR(40), PayRate FLOAT, T1 INTEGER, T2 INTEGER)")
	mustExec("INSERT INTO POSITION VALUES (1,'Tom',12.0,2,20),(1,'Jane',9.0,5,25),(2,'Tom',12.0,5,10)")
	ex := &Executor{Conn: conn, Cat: ConnCatalog{Conn: conn}}
	return conn, ex
}

// figure3b is the paper's expected query result (with PayRate added to
// POSITION, projected away in the plans).
var figure3b = [][]int64{
	// PosID, T1, T2, COUNT (EmpName checked separately)
	{1, 2, 5, 1},
	{1, 5, 20, 2},
	{1, 5, 20, 2},
	{1, 20, 25, 1},
	{2, 5, 10, 1},
}

// paperPlanAllDBMS is Figure 4(a): everything in the DBMS.
func paperPlanAllDBMS() *algebra.Node {
	a := algebra.ProjectCols(algebra.Scan("POSITION", "A"), "A.PosID", "A.T1", "A.T2")
	taggr := algebra.TAggr(a, []string{"PosID"}, algebra.Agg{Fn: "COUNT", Col: "PosID"})
	b := algebra.ProjectCols(algebra.Scan("POSITION", "B"), "B.PosID", "B.EmpName", "B.T1", "B.T2")
	tj := algebra.TJoin(taggr, b, []string{"PosID"}, []string{"B.PosID"})
	return algebra.TM(algebra.Sort(tj, "PosID", "T1"))
}

// paperPlanMWAggr is Figure 4(b): temporal aggregation in the
// middleware, the join back in the DBMS.
func paperPlanMWAggr() *algebra.Node {
	a := algebra.ProjectCols(algebra.Scan("POSITION", "A"), "A.PosID", "A.T1", "A.T2")
	sorted := algebra.Sort(a, "PosID", "T1") // SORT^D below the T^M
	taggr := algebra.TAggr(algebra.TM(sorted), []string{"PosID"}, algebra.Agg{Fn: "COUNT", Col: "PosID"})
	b := algebra.ProjectCols(algebra.Scan("POSITION", "B"), "B.PosID", "B.EmpName", "B.T1", "B.T2")
	tj := algebra.TJoin(algebra.TD(taggr), b, []string{"PosID"}, []string{"B.PosID"})
	return algebra.TM(algebra.Sort(tj, "PosID", "T1"))
}

// paperPlanAllMW runs aggregation and join in the middleware.
func paperPlanAllMW() *algebra.Node {
	a := algebra.ProjectCols(algebra.Scan("POSITION", "A"), "A.PosID", "A.T1", "A.T2")
	taggr := algebra.TAggr(algebra.TM(algebra.Sort(a, "PosID", "T1")),
		[]string{"PosID"}, algebra.Agg{Fn: "COUNT", Col: "PosID"})
	b := algebra.ProjectCols(algebra.Scan("POSITION", "B"), "B.PosID", "B.EmpName", "B.T1", "B.T2")
	tj := algebra.TJoin(taggr, algebra.TM(algebra.Sort(b, "B.PosID")),
		[]string{"PosID"}, []string{"B.PosID"})
	return algebra.Sort(tj, "PosID", "T1")
}

func checkFigure3b(t *testing.T, got *rel.Relation, plan string) {
	t.Helper()
	if got.Cardinality() != len(figure3b) {
		t.Fatalf("%s: %d rows, want %d\n%v", plan, got.Cardinality(), len(figure3b), got)
	}
	pos := got.Schema.MustIndex("PosID")
	t1 := got.Schema.MustIndex("T1")
	t2 := got.Schema.MustIndex("T2")
	cnt := got.Schema.MustIndex("COUNTofPosID")
	for i, w := range figure3b {
		r := got.Tuples[i]
		if r[pos].AsInt() != w[0] || r[t1].AsInt() != w[1] || r[t2].AsInt() != w[2] || r[cnt].AsInt() != w[3] {
			t.Fatalf("%s row %d = %v, want %v", plan, i, r, w)
		}
	}
	// Tom precedes Jane within [5,20) or vice versa — both valid under
	// the plan's sort keys; just check both names appear.
	names := map[string]bool{}
	ni := got.Schema.ColumnIndex("B.EmpName")
	if ni < 0 {
		ni = got.Schema.MustIndex("EmpName")
	}
	for _, r := range got.Tuples {
		names[r[ni].AsString()] = true
	}
	if !names["Tom"] || !names["Jane"] {
		t.Errorf("%s: names missing: %v", plan, names)
	}
}

func TestPaperQueryAllThreePartitionings(t *testing.T) {
	for _, tc := range []struct {
		name string
		plan func() *algebra.Node
	}{
		{"all-DBMS (Fig 4a)", paperPlanAllDBMS},
		{"MW aggregation (Fig 4b)", paperPlanMWAggr},
		{"all-MW", paperPlanAllMW},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, ex := setup(t)
			got, err := ex.Run(tc.plan())
			if err != nil {
				t.Fatal(err)
			}
			// Results may differ in column order across partitionings but
			// must agree on the Figure 3(b) values.
			got2 := got.Clone()
			got2.SortBy("PosID", "T1", "T2")
			checkFigure3b(t, got2, tc.name)
		})
	}
}

func TestPartitioningsAgreeOnLargerData(t *testing.T) {
	conn, ex := setup(t)
	// Add more rows for a denser event structure.
	if _, err := conn.Exec(`INSERT INTO POSITION VALUES
		(1,'Ann',11.0,8,30),(2,'Ann',11.0,1,7),(3,'Bob',8.0,4,9),
		(3,'Cat',8.5,6,14),(3,'Dan',9.5,2,5),(2,'Eve',10.0,6,22)`); err != nil {
		t.Fatal(err)
	}
	var results []*rel.Relation
	for _, plan := range []func() *algebra.Node{paperPlanAllDBMS, paperPlanMWAggr, paperPlanAllMW} {
		got, err := ex.Run(plan())
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, normalize5(got))
	}
	for i := 1; i < len(results); i++ {
		if !rel.EqualAsMultisets(results[0], results[i]) {
			t.Fatalf("partitioning %d disagrees with 0:\n%v\nvs\n%v", i, results[0], results[i])
		}
	}
	if results[0].Cardinality() < 10 {
		t.Errorf("expected a rich result, got %d rows", results[0].Cardinality())
	}
}

// normalize5 projects a result to (PosID, T1, T2, COUNT, EmpName) and
// sorts it, so partitionings with different column orders compare.
func normalize5(r *rel.Relation) *rel.Relation {
	ni := r.Schema.ColumnIndex("B.EmpName")
	if ni < 0 {
		ni = r.Schema.MustIndex("EmpName")
	}
	idx := []int{
		r.Schema.MustIndex("PosID"), r.Schema.MustIndex("T1"),
		r.Schema.MustIndex("T2"), r.Schema.MustIndex("COUNTofPosID"), ni,
	}
	out := rel.New(r.Schema.Project(idx).Unqualified())
	for _, t := range r.Tuples {
		row := make(types.Tuple, len(idx))
		for i, j := range idx {
			row[i] = t[j]
		}
		out.Append(row)
	}
	out.SortBy("PosID", "T1", "T2", "EmpName")
	return out
}

func TestSelectionInMiddleware(t *testing.T) {
	_, ex := setup(t)
	sel, err := sqlparser.ParseSelect("SELECT 1 WHERE PayRate > 10")
	if err != nil {
		t.Fatal(err)
	}
	plan := algebra.Select(algebra.TM(algebra.Scan("POSITION", "")), sel.Where)
	got, err := ex.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 2 {
		t.Fatalf("FILTER^M: %v", got)
	}
}

func TestSelectionInDBMS(t *testing.T) {
	_, ex := setup(t)
	sel, err := sqlparser.ParseSelect("SELECT 1 WHERE PayRate > 10")
	if err != nil {
		t.Fatal(err)
	}
	plan := algebra.TM(algebra.Select(algebra.Scan("POSITION", ""), sel.Where))
	got, err := ex.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 2 {
		t.Fatalf("FILTER^D: %v", got)
	}
}

func TestTransferFeedbackCollected(t *testing.T) {
	_, ex := setup(t)
	got, err := ex.Run(paperPlanMWAggr())
	if err != nil {
		t.Fatal(err)
	}
	_ = got
	fbs := ex.Feedback()
	if len(fbs) < 2 { // at least one TM and one TD
		t.Fatalf("feedback entries: %d", len(fbs))
	}
	var rows int64
	for _, fb := range fbs {
		rows += fb.Rows
	}
	if rows == 0 {
		t.Error("no rows recorded in feedback")
	}
}

func TestTempTablesDropped(t *testing.T) {
	db := engine.Open(engine.Config{})
	srv := server.New(db, wire.Latency{})
	conn := client.Connect(srv)
	if _, err := conn.Exec("CREATE TABLE POSITION (PosID INTEGER, EmpName VARCHAR(40), PayRate FLOAT, T1 INTEGER, T2 INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("INSERT INTO POSITION VALUES (1,'Tom',12.0,2,20)"); err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Conn: conn, Cat: ConnCatalog{Conn: conn}}
	if _, err := ex.Run(paperPlanMWAggr()); err != nil {
		t.Fatal(err)
	}
	for _, name := range db.TableNames() {
		if strings.HasPrefix(name, "TMP_TANGO_") {
			t.Errorf("temp table %s not dropped", name)
		}
	}
}

func TestPlanValidationErrors(t *testing.T) {
	_, ex := setup(t)
	// Root in DBMS: must be rejected.
	if _, err := ex.Run(algebra.Scan("POSITION", "")); err == nil {
		t.Error("DBMS-resident root should be rejected")
	}
	// Unknown table.
	if _, err := ex.Run(algebra.TM(algebra.Scan("NOPE", ""))); err == nil {
		t.Error("unknown table should fail")
	}
}
