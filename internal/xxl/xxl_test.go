package xxl

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"tango/internal/rel"
	"tango/internal/sqlparser"
	"tango/internal/types"
)

func mkRel(names string, rows ...[]interface{}) *rel.Relation {
	var cols []types.Column
	var fields []string
	for _, f := range splitComma(names) {
		fields = append(fields, f)
	}
	if len(rows) > 0 {
		for i, f := range fields {
			kind := types.KindInt
			switch rows[0][i].(type) {
			case string:
				kind = types.KindString
			case float64:
				kind = types.KindFloat
			}
			cols = append(cols, types.Column{Name: f, Kind: kind})
		}
	} else {
		for _, f := range fields {
			cols = append(cols, types.Column{Name: f, Kind: types.KindInt})
		}
	}
	r := rel.New(types.Schema{Cols: cols})
	for _, row := range rows {
		t := make(types.Tuple, len(row))
		for i, v := range row {
			switch x := v.(type) {
			case int:
				t[i] = types.Int(int64(x))
			case string:
				t[i] = types.Str(x)
			case float64:
				t[i] = types.Float(x)
			case nil:
				t[i] = types.Null
			}
		}
		r.Append(t)
	}
	return r
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

// position is the paper's Figure 3(a) relation.
func position() *rel.Relation {
	return mkRel("PosID,EmpName,T1,T2",
		[]interface{}{1, "Tom", 2, 20},
		[]interface{}{1, "Jane", 5, 25},
		[]interface{}{2, "Tom", 5, 10},
	)
}

func TestTAggrPaperExample(t *testing.T) {
	// Figure 3(c): COUNT per PosID over time.
	in := position().Clone()
	in.SortBy("PosID", "T1")
	out := types.NewSchema(
		types.Column{Name: "PosID", Kind: types.KindInt},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
		types.Column{Name: "COUNTofPosID", Kind: types.KindInt},
	)
	ta := NewTAggr(in.Iter(), []int{0}, 2, 3, []AggSpec{{Kind: AggCount}}, out)
	got, err := rel.Drain(ta)
	if err != nil {
		t.Fatal(err)
	}
	want := [][4]int64{{1, 2, 5, 1}, {1, 5, 20, 2}, {1, 20, 25, 1}, {2, 5, 10, 1}}
	if got.Cardinality() != len(want) {
		t.Fatalf("rows:\n%v", got)
	}
	for i, w := range want {
		for j := 0; j < 4; j++ {
			if got.Tuples[i][j].AsInt() != w[j] {
				t.Fatalf("row %d = %v, want %v", i, got.Tuples[i], w)
			}
		}
	}
}

// bruteTAggr computes temporal aggregation by evaluating every
// candidate interval directly — the correctness oracle.
func bruteTAggr(in *rel.Relation, group, t1, t2 int, agg AggSpec) [][]types.Value {
	type gkey string
	groups := map[gkey][]types.Tuple{}
	var orderKeys []gkey
	for _, t := range in.Tuples {
		k := gkey(t[group].String())
		if _, ok := groups[k]; !ok {
			orderKeys = append(orderKeys, k)
		}
		groups[k] = append(groups[k], t)
	}
	sort.Slice(orderKeys, func(i, j int) bool { return orderKeys[i] < orderKeys[j] })
	var out [][]types.Value
	for _, k := range orderKeys {
		tuples := groups[k]
		pointSet := map[int64]bool{}
		for _, t := range tuples {
			pointSet[t[t1].AsInt()] = true
			pointSet[t[t2].AsInt()] = true
		}
		var points []int64
		for p := range pointSet {
			points = append(points, p)
		}
		sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
		for i := 0; i+1 < len(points); i++ {
			lo, hi := points[i], points[i+1]
			var vals []types.Value
			count := int64(0)
			for _, t := range tuples {
				if t[t1].AsInt() <= lo && t[t2].AsInt() >= hi {
					count++
					if agg.Kind != AggCount {
						vals = append(vals, t[agg.Col])
					}
				}
			}
			if count == 0 {
				continue
			}
			var v types.Value
			switch agg.Kind {
			case AggCount:
				v = types.Int(count)
			case AggSum:
				s := 0.0
				for _, x := range vals {
					s += x.AsFloat()
				}
				v = types.Int(int64(s))
			case AggMin:
				v = vals[0]
				for _, x := range vals {
					if types.Less(x, v) {
						v = x
					}
				}
			case AggMax:
				v = vals[0]
				for _, x := range vals {
					if types.Less(v, x) {
						v = x
					}
				}
			case AggAvg:
				s := 0.0
				for _, x := range vals {
					s += x.AsFloat()
				}
				v = types.Float(s / float64(len(vals)))
			}
			out = append(out, []types.Value{tuples[0][group], types.Int(lo), types.Int(hi), v})
		}
	}
	return out
}

func TestTAggrAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(60)
		in := rel.New(types.NewSchema(
			types.Column{Name: "G", Kind: types.KindInt},
			types.Column{Name: "V", Kind: types.KindInt},
			types.Column{Name: "T1", Kind: types.KindInt},
			types.Column{Name: "T2", Kind: types.KindInt},
		))
		for i := 0; i < n; i++ {
			s := rng.Int63n(40)
			e := s + 1 + rng.Int63n(20)
			in.Append(types.Tuple{
				types.Int(rng.Int63n(4)), types.Int(rng.Int63n(100)),
				types.Int(s), types.Int(e),
			})
		}
		for _, agg := range []AggSpec{
			{Kind: AggCount}, {Kind: AggSum, Col: 1},
			{Kind: AggMin, Col: 1}, {Kind: AggMax, Col: 1},
		} {
			sorted := in.Clone()
			sorted.SortBy("G", "T1")
			out := types.NewSchema(
				types.Column{Name: "G", Kind: types.KindInt},
				types.Column{Name: "T1", Kind: types.KindInt},
				types.Column{Name: "T2", Kind: types.KindInt},
				types.Column{Name: "A", Kind: types.KindInt},
			)
			ta := NewTAggr(sorted.Iter(), []int{0}, 2, 3, []AggSpec{agg}, out)
			got, err := rel.Drain(ta)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteTAggr(sorted, 0, 2, 3, agg)
			if got.Cardinality() != len(want) {
				t.Fatalf("trial %d agg %s: %d rows, want %d\n%v",
					trial, agg.Kind, got.Cardinality(), len(want), got)
			}
			for i := range want {
				for j := 0; j < 4; j++ {
					if types.Compare(got.Tuples[i][j], want[i][j]) != 0 {
						t.Fatalf("trial %d agg %s row %d: %v vs %v",
							trial, agg.Kind, i, got.Tuples[i], want[i])
					}
				}
			}
		}
	}
}

func TestTAggrInvariants(t *testing.T) {
	// Property: within each group, output intervals are disjoint,
	// sorted, and the output cardinality respects the paper's bounds
	// (≤ 2·n − 1 per group).
	rng := rand.New(rand.NewSource(23))
	in := rel.New(types.NewSchema(
		types.Column{Name: "G", Kind: types.KindInt},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
	))
	perGroup := map[int64]int{}
	for i := 0; i < 500; i++ {
		g := rng.Int63n(10)
		s := rng.Int63n(1000)
		in.Append(types.Tuple{types.Int(g), types.Int(s), types.Int(s + 1 + rng.Int63n(50))})
		perGroup[g]++
	}
	in.SortBy("G", "T1")
	out := types.NewSchema(
		types.Column{Name: "G", Kind: types.KindInt},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
		types.Column{Name: "N", Kind: types.KindInt},
	)
	ta := NewTAggr(in.Iter(), []int{0}, 1, 2, []AggSpec{{Kind: AggCount}}, out)
	got, err := rel.Drain(ta)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{}
	var lastG, lastEnd int64 = -1, -1
	for _, row := range got.Tuples {
		g, t1, t2, n := row[0].AsInt(), row[1].AsInt(), row[2].AsInt(), row[3].AsInt()
		if t1 >= t2 {
			t.Fatalf("degenerate interval: %v", row)
		}
		if n < 1 {
			t.Fatalf("zero-count interval emitted: %v", row)
		}
		if g == lastG && t1 < lastEnd {
			t.Fatalf("overlapping intervals in group %d: %v", g, row)
		}
		lastG, lastEnd = g, t2
		counts[g]++
	}
	for g, c := range counts {
		if c > 2*perGroup[g]-1 {
			t.Errorf("group %d: %d intervals exceeds bound %d", g, c, 2*perGroup[g]-1)
		}
	}
}

func TestMergeJoin(t *testing.T) {
	left := mkRel("K,X",
		[]interface{}{1, 10}, []interface{}{1, 11}, []interface{}{2, 20}, []interface{}{4, 40})
	right := mkRel("K,Y",
		[]interface{}{1, 100}, []interface{}{2, 200}, []interface{}{2, 201}, []interface{}{3, 300})
	j := NewMergeJoin(left.Iter(), right.Iter(), []int{0}, []int{0})
	got, err := rel.Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	// 1: 2 left × 1 right = 2; 2: 1×2 = 2. Total 4.
	if got.Cardinality() != 4 {
		t.Fatalf("join rows:\n%v", got)
	}
	// Output preserves left order.
	if got.Tuples[0][1].AsInt() != 10 || got.Tuples[1][1].AsInt() != 11 {
		t.Errorf("left order not preserved:\n%v", got)
	}
}

func TestMergeJoinRandomAgainstHash(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mk := func(n int, name string) *rel.Relation {
		r := rel.New(types.NewSchema(
			types.Column{Name: "K", Kind: types.KindInt},
			types.Column{Name: name, Kind: types.KindInt},
		))
		for i := 0; i < n; i++ {
			r.Append(types.Tuple{types.Int(rng.Int63n(30)), types.Int(int64(i))})
		}
		r.SortBy("K")
		return r
	}
	l, r := mk(200, "X"), mk(150, "Y")
	j := NewMergeJoin(l.Iter(), r.Iter(), []int{0}, []int{0})
	got, err := rel.Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: hash join by hand.
	byKey := map[int64][]types.Tuple{}
	for _, t2 := range r.Tuples {
		byKey[t2[0].AsInt()] = append(byKey[t2[0].AsInt()], t2)
	}
	want := 0
	for _, t1 := range l.Tuples {
		want += len(byKey[t1[0].AsInt()])
	}
	if got.Cardinality() != want {
		t.Fatalf("merge join rows = %d, want %d", got.Cardinality(), want)
	}
}

func TestTJoinPaperQuery(t *testing.T) {
	// Aggregation result ⋈^T POSITION on PosID (the §2.2 example).
	aggr := mkRel("PosID,T1,T2,COUNT",
		[]interface{}{1, 2, 5, 1}, []interface{}{1, 5, 20, 2},
		[]interface{}{1, 20, 25, 1}, []interface{}{2, 5, 10, 1})
	pos := position().Clone()
	pos.SortBy("PosID")
	tj := NewTJoin(aggr.Iter(), pos.Iter(), []int{0}, []int{0}, 1, 2, 2, 3)
	got, err := rel.Drain(tj)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3(b) has 5 rows.
	if got.Cardinality() != 5 {
		t.Fatalf("tjoin rows:\n%v", got)
	}
	// Schema: PosID,T1,T2,COUNT + PosID,EmpName (right minus time).
	if got.Schema.Len() != 6 {
		t.Fatalf("tjoin schema: %v", got.Schema.Names())
	}
	// Check one row: Tom in position 1 over [5,20) with count 2.
	found := false
	for _, row := range got.Tuples {
		if row[0].AsInt() == 1 && row[1].AsInt() == 5 && row[2].AsInt() == 20 &&
			row[3].AsInt() == 2 && row[5].AsString() == "Tom" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing expected row:\n%v", got)
	}
}

func TestFilterAndProject(t *testing.T) {
	in := position()
	sel, err := sqlparser.ParseSelect("SELECT 1 WHERE T1 >= 5")
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFilter(in.Iter(), sel.Where)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rel.Drain(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 2 {
		t.Fatalf("filter: %v", got)
	}
	p := NewProject(got.Iter(), []int{1, 0}, types.NewSchema(
		types.Column{Name: "Name", Kind: types.KindString},
		types.Column{Name: "P", Kind: types.KindInt},
	))
	out, err := rel.Drain(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Cols[0].Name != "Name" || out.Tuples[0][0].AsString() != "Jane" {
		t.Errorf("project: %v", out)
	}
}

func TestDupElim(t *testing.T) {
	in := mkRel("A,B",
		[]interface{}{1, 2}, []interface{}{1, 2}, []interface{}{3, 4}, []interface{}{1, 2})
	d := NewDupElim(in.Iter())
	got, err := rel.Drain(d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 2 {
		t.Fatalf("dupelim: %v", got)
	}
	// Order preserved: first occurrence first.
	if got.Tuples[0][0].AsInt() != 1 || got.Tuples[1][0].AsInt() != 3 {
		t.Errorf("order: %v", got)
	}
}

func TestCoalesce(t *testing.T) {
	in := mkRel("Name,T1,T2",
		[]interface{}{"Tom", 1, 5},
		[]interface{}{"Tom", 5, 9},   // meets → merge
		[]interface{}{"Tom", 8, 12},  // overlaps → merge
		[]interface{}{"Tom", 20, 25}, // gap → new tuple
		[]interface{}{"Jane", 3, 7},
	)
	in.SortBy("Name", "T1")
	c := NewCoalesce(in.Iter(), 1, 2)
	got, err := rel.Drain(c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 3 {
		t.Fatalf("coalesce:\n%v", got)
	}
	for _, row := range got.Tuples {
		if row[0].AsString() == "Tom" && row[1].AsInt() == 1 {
			if row[2].AsInt() != 12 {
				t.Errorf("merged period = %v", row)
			}
		}
	}
}

func TestCoalesceIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	in := rel.New(types.NewSchema(
		types.Column{Name: "G", Kind: types.KindInt},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
	))
	for i := 0; i < 300; i++ {
		s := rng.Int63n(100)
		in.Append(types.Tuple{types.Int(rng.Int63n(5)), types.Int(s), types.Int(s + 1 + rng.Int63n(20))})
	}
	in.SortBy("G", "T1")
	once, err := rel.Drain(NewCoalesce(in.Iter(), 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	twice, err := rel.Drain(NewCoalesce(once.Iter(), 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !rel.EqualAsLists(once, twice) {
		t.Error("coalesce not idempotent")
	}
	// Result must have disjoint non-adjacent periods per group.
	for i := 1; i < twice.Cardinality(); i++ {
		a, b := twice.Tuples[i-1], twice.Tuples[i]
		if a[0].AsInt() == b[0].AsInt() && b[1].AsInt() <= a[2].AsInt() {
			t.Fatalf("rows %d-%d not coalesced: %v %v", i-1, i, a, b)
		}
	}
}

func TestSortSmall(t *testing.T) {
	in := mkRel("A,B", []interface{}{3, 1}, []interface{}{1, 2}, []interface{}{2, 3})
	s := NewSort(in.Iter(), []int{0})
	got, err := rel.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int64{1, 2, 3} {
		if got.Tuples[i][0].AsInt() != want {
			t.Fatalf("sort order: %v", got)
		}
	}
}

func TestSortExternalSpill(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := rel.New(types.NewSchema(
		types.Column{Name: "K", Kind: types.KindInt},
		types.Column{Name: "V", Kind: types.KindString},
	))
	const n = 50000
	for i := 0; i < n; i++ {
		in.Append(types.Tuple{types.Int(rng.Int63n(10000)), types.Str(fmt.Sprintf("v%d", i))})
	}
	s := NewSort(in.Iter(), []int{0})
	s.MemTuples = 1000 // force ~50 spill runs
	got, err := rel.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != n {
		t.Fatalf("spilled sort lost rows: %d", got.Cardinality())
	}
	for i := 1; i < n; i++ {
		if got.Tuples[i-1][0].AsInt() > got.Tuples[i][0].AsInt() {
			t.Fatalf("order violated at %d", i)
		}
	}
	if !rel.EqualAsMultisets(in, got) {
		t.Error("spilled sort changed the multiset")
	}
}

func TestSortStability(t *testing.T) {
	// Stable within memory and deterministic across runs.
	in := mkRel("K,Seq",
		[]interface{}{1, 0}, []interface{}{1, 1}, []interface{}{1, 2}, []interface{}{0, 3})
	s := NewSort(in.Iter(), []int{0})
	got, err := rel.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tuples[1][1].AsInt() != 0 || got.Tuples[2][1].AsInt() != 1 || got.Tuples[3][1].AsInt() != 2 {
		t.Errorf("sort not stable: %v", got)
	}
}

func TestSortDesc(t *testing.T) {
	in := mkRel("A", []interface{}{1}, []interface{}{3}, []interface{}{2})
	s := NewSortDesc(in.Iter(), []int{0}, []bool{true})
	got, err := rel.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tuples[0][0].AsInt() != 3 || got.Tuples[2][0].AsInt() != 1 {
		t.Errorf("desc sort: %v", got)
	}
}

func TestTAggrMinMaxWithDepartures(t *testing.T) {
	// MIN/MAX must recover after the extreme value departs.
	in := mkRel("G,V,T1,T2",
		[]interface{}{1, 100, 0, 10}, // the max, departs at 10
		[]interface{}{1, 5, 0, 20},
	)
	in.SortBy("G", "T1")
	out := types.NewSchema(
		types.Column{Name: "G", Kind: types.KindInt},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
		types.Column{Name: "M", Kind: types.KindInt},
	)
	ta := NewTAggr(in.Iter(), []int{0}, 2, 3, []AggSpec{{Kind: AggMax, Col: 1}}, out)
	got, err := rel.Drain(ta)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 2 {
		t.Fatalf("rows:\n%v", got)
	}
	if got.Tuples[0][3].AsInt() != 100 || got.Tuples[1][3].AsInt() != 5 {
		t.Errorf("max sweep wrong:\n%v", got)
	}
}

func TestTAggrRejectsUnsortedInput(t *testing.T) {
	in := mkRel("G,T1,T2",
		[]interface{}{1, 10, 20},
		[]interface{}{1, 2, 5}, // T1 goes backwards within the group
	)
	out := types.NewSchema(
		types.Column{Name: "G", Kind: types.KindInt},
		types.Column{Name: "T1", Kind: types.KindInt},
		types.Column{Name: "T2", Kind: types.KindInt},
		types.Column{Name: "N", Kind: types.KindInt},
	)
	ta := NewTAggr(in.Iter(), []int{0}, 1, 2, []AggSpec{{Kind: AggCount}}, out)
	if _, err := rel.Drain(ta); err == nil {
		t.Fatal("unsorted input must be rejected")
	}
	// Group order violations are rejected too.
	in2 := mkRel("G,T1,T2",
		[]interface{}{2, 1, 5},
		[]interface{}{1, 1, 5},
	)
	ta2 := NewTAggr(in2.Iter(), []int{0}, 1, 2, []AggSpec{{Kind: AggCount}}, out)
	if _, err := rel.Drain(ta2); err == nil {
		t.Fatal("group order violation must be rejected")
	}
}

func TestMergeJoinRejectsUnsortedInputs(t *testing.T) {
	sorted := mkRel("K,V", []interface{}{1, 1}, []interface{}{2, 2})
	unsorted := mkRel("K,V", []interface{}{2, 2}, []interface{}{1, 1})
	if _, err := rel.Drain(NewMergeJoin(unsorted.Iter(), sorted.Iter(), []int{0}, []int{0})); err == nil {
		t.Fatal("unsorted left input must be rejected")
	}
	if _, err := rel.Drain(NewMergeJoin(sorted.Iter(), unsorted.Iter(), []int{0}, []int{0})); err == nil {
		t.Fatal("unsorted right input must be rejected")
	}
}
