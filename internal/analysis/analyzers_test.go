package analysis

import (
	"strings"
	"testing"
)

func TestIterClose(t *testing.T)   { testAnalyzer(t, IterClose, "iterclose") }
func TestErrLost(t *testing.T)     { testAnalyzer(t, ErrLost, "errlost") }
func TestErrLostDur(t *testing.T)  { testAnalyzer(t, ErrLost, "errlostdur") }
func TestAtomicField(t *testing.T) { testAnalyzer(t, AtomicField, "atomicfield") }
func TestSchemaProp(t *testing.T)  { testAnalyzer(t, SchemaProp, "schemaprop") }
func TestFaultPath(t *testing.T)   { testAnalyzer(t, FaultPath, "faultpath") }
func TestWALOrder(t *testing.T)    { testAnalyzer(t, WALOrder, "walorder") }
func TestSpanFinish(t *testing.T)  { testAnalyzer(t, SpanFinish, "spanfinish") }

func TestLatchOrder(t *testing.T)      { testAnalyzer(t, LatchOrder, "latchorder") }
func TestLatchOrderCycle(t *testing.T) { testAnalyzer(t, LatchOrder, "latchordercycle") }
func TestLockIO(t *testing.T)          { testAnalyzer(t, LockIO, "lockio") }
func TestGoLeak(t *testing.T)          { testAnalyzer(t, GoLeak, "goleak") }

// TestSuppress exercises file-level ignores and the stale-suppression
// check through the regular fixture harness.
func TestSuppress(t *testing.T) { testAnalyzer(t, ErrLost, "suppress") }

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want all %d", len(all), err, len(All()))
	}
	two, err := ByName("iterclose, errlost")
	if err != nil || len(two) != 2 || two[0] != IterClose || two[1] != ErrLost {
		t.Fatalf("ByName(\"iterclose, errlost\") = %v, err %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(\"nosuch\") succeeded; want error")
	}
}

// TestLoadRealPackage proves the go list + export-data loading pipeline
// end to end on a real project package.
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := Load("", "tango/internal/rel")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "tango/internal/rel" {
		t.Fatalf("loaded %d packages, want exactly tango/internal/rel", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Types == nil || pkg.Info == nil || len(pkg.Files) == 0 {
		t.Fatal("loaded package missing types, info, or files")
	}
	obj := pkg.Types.Scope().Lookup("Iterator")
	if obj == nil {
		t.Fatal("rel.Iterator not found in loaded package scope")
	}
	// The analyzers' structural matcher must accept the real interface.
	if !isIteratorLike(obj.Type()) {
		t.Fatal("rel.Iterator does not satisfy isIteratorLike")
	}
}

// TestRunCleanOnRel is a regression guard: the framework must report
// nothing on a known-clean project package.
func TestRunCleanOnRel(t *testing.T) {
	pkgs, err := Load("", "tango/internal/rel")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		msgs := make([]string, len(diags))
		for i, d := range diags {
			msgs[i] = d.String()
		}
		t.Fatalf("unexpected findings on internal/rel:\n%s", strings.Join(msgs, "\n"))
	}
}
