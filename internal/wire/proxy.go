// Proxy is the TCP-aware face of the fault injector: a
// man-in-the-middle that forwards framed protocol traffic between a
// real client and a real server, consulting a FaultInjector for every
// request frame so the PR-4 chaos schedule grammar
// ("seed=7;stall=2ms;fetch@3=drop") drives faults against real
// connections instead of in-process calls:
//
//   - drop:    the connection is severed mid-exchange — both halves
//     are closed, the client sees a reset/EOF, and its transport must
//     reconnect and resume the session.
//   - stall:   the frame is held for the schedule's stall time before
//     forwarding, delaying everything behind it on that connection —
//     exactly how a congested real pipe behaves.
//   - partial: half of the frame's encoded bytes are forwarded and
//     the connection is then severed, so the server reads a torn
//     frame (framing is lost; it must drop the connection without
//     panicking).
//
// Decisions are made on client→server request frames only (the
// direction the schedule grammar's per-op call indexes count);
// server→client bytes are relayed verbatim.
package wire

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Proxy forwards framed TCP traffic through a fault injector.
type Proxy struct {
	lis    net.Listener
	target string
	faults atomic.Pointer[FaultInjector]

	mu     sync.Mutex //tango:lock-order proxy latch
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	severed atomic.Int64
	stalled atomic.Int64
	torn    atomic.Int64
}

// NewProxy starts a proxy on a fresh loopback port, forwarding to
// target. A nil injector forwards everything untouched (attach one
// later with SetFaults).
func NewProxy(target string, f *FaultInjector) (*Proxy, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{lis: lis, target: target, conns: map[net.Conn]struct{}{}}
	p.faults.Store(f)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (dial this instead of the
// real server).
func (p *Proxy) Addr() string { return p.lis.Addr().String() }

// SetFaults swaps the fault injector (nil forwards cleanly).
func (p *Proxy) SetFaults(f *FaultInjector) { p.faults.Store(f) }

// Severed, Stalled, Torn report how many connections the proxy cut,
// how many frames it delayed, and how many frames it truncated.
func (p *Proxy) Severed() int64 { return p.severed.Load() }
func (p *Proxy) Stalled() int64 { return p.stalled.Load() }
func (p *Proxy) Torn() int64    { return p.torn.Load() }

// Close stops accepting, severs every live connection, and waits for
// the relay goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.lis.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	p.wg.Wait()
	return err
}

// track registers a live connection for Close's sweep; it reports
// false (and closes the conn) when the proxy is already closed.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	closed := p.closed
	if !closed {
		p.conns[c] = struct{}{}
	}
	p.mu.Unlock()
	if closed {
		_ = c.Close()
	}
	return !closed
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.lis.Accept()
		if err != nil {
			return
		}
		if !p.track(client) {
			return
		}
		p.wg.Add(1)
		go p.relay(client)
	}
}

// relay serves one proxied connection: dial the target, pump the
// server→client direction verbatim, and run the fault-deciding
// client→server frame loop in this goroutine.
func (p *Proxy) relay(client net.Conn) {
	defer p.wg.Done()
	defer p.untrack(client)
	defer client.Close()
	server, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	if !p.track(server) {
		return
	}
	defer p.untrack(server)
	defer server.Close()

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		_, _ = io.Copy(client, server)
		// Server direction ended (clean close or sever): cut the client
		// half too so the frame loop below unblocks.
		_ = client.Close()
	}()

	var buf []byte
	var out []byte
	for {
		f, rbuf, err := ReadFrame(client, buf)
		if err != nil {
			// Peer gone or framing lost: sever both halves.
			_ = server.Close()
			return
		}
		buf = rbuf
		kind := KindNone
		var stall = DefaultStallTime
		if op, ok := MsgOp(f.Type); ok {
			if inj := p.faults.Load(); inj != nil {
				d := inj.Decide(op)
				kind = d.Kind
				if d.Stall > 0 {
					stall = d.Stall
				}
			}
		}
		out = AppendFrame(out[:0], f)
		switch kind {
		case KindStall:
			p.stalled.Add(1)
			SleepCtx(nil, stall)
		case KindDrop:
			// Sever: the request never reaches the server and the client
			// loses the connection (and every session multiplexed on it —
			// resumption is the transport's problem).
			p.severed.Add(1)
			_ = server.Close()
			_ = client.Close()
			return
		case KindPartial, KindTorn:
			// Truncate: forward half the frame, then sever. The server
			// reads a torn frame and must drop the connection cleanly.
			p.torn.Add(1)
			_, _ = server.Write(out[:len(out)/2])
			_ = server.Close()
			_ = client.Close()
			return
		}
		if _, err := server.Write(out); err != nil {
			_ = client.Close()
			return
		}
	}
}
