package wire

import "testing"

// FuzzParseSchedule fuzzes the fault-schedule decoder: no input may
// panic, and any accepted schedule must render canonically — its
// String() must reparse to an identical rendering (fixed point), and
// the instantiated injector must honor the decoded trap list without
// crashing.
func FuzzParseSchedule(f *testing.F) {
	f.Add("")
	f.Add("seed=7")
	f.Add("fetch@3=drop")
	f.Add("seed=7;stall=5ms;max=3;fetch@2=drop;load@1=partial;exec~stall=0.25")
	f.Add("query@1=stall,insert~partial=0.01")
	f.Add("stats@9=partial;exec@1=drop;exec@2=drop")
	f.Add("fetch~drop=1;fetch~stall=0;fetch~partial=0.5")
	f.Add(";;,,  ;")
	f.Add("fetch@18446744073709551615=drop")
	f.Add("exec~drop=1e-300")
	// Storage ops share the grammar: one seed string drives wire and
	// disk chaos (bench.SplitSchedule routes wal/page to the store).
	f.Add("wal@7=torn")
	f.Add("page@3=partial")
	f.Add("seed=11;wal@7=torn;page@3=partial;fetch@2=drop")
	f.Add("wal@1=drop;wal@2=drop;page@1=torn")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseSchedule(src)
		if err != nil {
			return
		}
		canon := s.String()
		s2, err := ParseSchedule(canon)
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v", canon, err)
		}
		if got := s2.String(); got != canon {
			t.Fatalf("not a fixed point: %q -> %q", canon, got)
		}
		// Instantiation and a few decisions must never crash.
		inj := s.Injector()
		for op := Op(0); op < numOps; op++ {
			for i := 0; i < 3; i++ {
				d := inj.Decide(op)
				if d.Kind != KindNone && d.Stall <= 0 {
					t.Fatalf("fault with non-positive stall: %+v", d)
				}
			}
		}
	})
}
