package tango

import (
	"fmt"
	"math/rand"
	"testing"

	"tango/internal/algebra"
	"tango/internal/client"
	"tango/internal/cost"
	"tango/internal/engine"
	"tango/internal/optimizer"
	"tango/internal/rel"
	"tango/internal/server"
	"tango/internal/sqlparser"
	"tango/internal/stats"
	"tango/internal/wire"
)

// propSystem builds a DBMS with a randomized POSITION relation and the
// full optimizer stack.
func propSystem(t *testing.T, seed int64, rows int) (*client.Conn, *Executor, *optimizer.Optimizer) {
	t.Helper()
	db := engine.Open(engine.Config{})
	srv := server.New(db, wire.Latency{})
	conn := client.Connect(srv)
	if _, err := conn.Exec("CREATE TABLE POSITION (PosID INTEGER, EmpName VARCHAR(40), PayRate FLOAT, T1 INTEGER, T2 INTEGER)"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	names := []string{"Tom", "Jane", "Ann", "Bob", "Eve"}
	for i := 0; i < rows; i++ {
		s := rng.Int63n(50)
		if _, err := conn.Exec(fmt.Sprintf(
			"INSERT INTO POSITION VALUES (%d, '%s', %g, %d, %d)",
			rng.Int63n(6)+1, names[rng.Intn(len(names))],
			float64(rng.Intn(200))/10, s, s+1+rng.Int63n(30))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Exec("ANALYZE POSITION HISTOGRAM 8"); err != nil {
		t.Fatal(err)
	}
	cat := ConnCatalog{Conn: conn}
	est := stats.NewEstimator(cat, conn)
	opt := optimizer.New(cat, cost.NewModel(est))
	ex := &Executor{Conn: conn, Cat: cat}
	return conn, ex, opt
}

// normalizeFor compares relations as multisets after dequalifying
// names and sorting columns positionally.
func asMultisetKeyable(r *rel.Relation) *rel.Relation {
	c := r.Clone()
	c.Schema = c.Schema.Unqualified()
	return c
}

// TestAllCandidatePlansEquivalent is the paper's core correctness
// property: every transformation-rule product must be multiset
// equivalent to the initial plan when executed (and list equivalent
// when a top-level sort pins the order). We execute every enumerated
// candidate of several query shapes over randomized data.
func TestAllCandidatePlansEquivalent(t *testing.T) {
	queries := []struct {
		name string
		plan func() *algebra.Node
	}{
		{"taggr", func() *algebra.Node {
			base := algebra.ProjectCols(algebra.Scan("POSITION", ""), "PosID", "T1", "T2")
			return algebra.TM(algebra.Sort(
				algebra.TAggr(base, []string{"PosID"}, algebra.Agg{Fn: "COUNT", Col: "PosID"}),
				"PosID", "T1"))
		}},
		{"select-taggr", func() *algebra.Node {
			sel, _ := sqlparser.ParseSelect("SELECT 1 WHERE PayRate > 5")
			base := algebra.ProjectCols(
				algebra.Select(algebra.Scan("POSITION", ""), sel.Where),
				"PosID", "T1", "T2")
			return algebra.TM(algebra.Sort(
				algebra.TAggr(base, []string{"PosID"}, algebra.Agg{Fn: "MAX", Col: "PosID"}),
				"PosID", "T1"))
		}},
		{"tjoin", func() *algebra.Node {
			a := algebra.ProjectCols(algebra.Scan("POSITION", "A"), "A.PosID", "A.EmpName", "A.T1", "A.T2")
			b := algebra.ProjectCols(algebra.Scan("POSITION", "B"), "B.PosID", "B.EmpName", "B.T1", "B.T2")
			return algebra.TM(algebra.Sort(
				algebra.TJoin(a, b, []string{"A.PosID"}, []string{"B.PosID"}),
				"A.PosID"))
		}},
		{"join", func() *algebra.Node {
			a := algebra.ProjectCols(algebra.Scan("POSITION", "A"), "A.PosID", "A.PayRate")
			b := algebra.ProjectCols(algebra.Scan("POSITION", "B"), "B.PosID", "B.EmpName")
			return algebra.TM(algebra.Join(a, b, []string{"A.PosID"}, []string{"B.PosID"}))
		}},
	}
	for _, q := range queries {
		q := q
		t.Run(q.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				_, ex, opt := propSystem(t, seed, 40)
				opt.MaxPlans = 64
				res, err := opt.Optimize(q.plan())
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Candidates) < 2 {
					t.Fatalf("seed %d: only %d candidates enumerated", seed, len(res.Candidates))
				}
				ref, err := ex.Run(q.plan())
				if err != nil {
					t.Fatalf("seed %d: reference: %v", seed, err)
				}
				refN := asMultisetKeyable(ref)
				for ci, cand := range res.Candidates {
					got, err := ex.Run(cand.Plan)
					if err != nil {
						t.Fatalf("seed %d candidate %d: %v\n%s", seed, ci, err, cand.Plan)
					}
					if !rel.EqualAsMultisets(refN, asMultisetKeyable(got)) {
						t.Fatalf("seed %d candidate %d not multiset-equivalent (%d vs %d rows)\n%s",
							seed, ci, refN.Cardinality(), got.Cardinality(), cand.Plan)
					}
				}
			}
		})
	}
}

// TestBestPlanListEquivalentUnderTopSort checks the stronger list
// equivalence: when the query pins a total order, the optimizer's best
// plan must deliver rows in that order.
func TestBestPlanListEquivalentUnderTopSort(t *testing.T) {
	_, ex, opt := propSystem(t, 11, 60)
	base := algebra.ProjectCols(algebra.Scan("POSITION", ""), "PosID", "T1", "T2")
	initial := algebra.TM(algebra.Sort(
		algebra.TAggr(base, []string{"PosID"}, algebra.Agg{Fn: "COUNT", Col: "PosID"}),
		"PosID", "T1"))
	res, err := opt.Optimize(initial)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ex.Run(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	pos := got.Schema.MustIndex("PosID")
	t1 := got.Schema.MustIndex("T1")
	for i := 1; i < got.Cardinality(); i++ {
		a, b := got.Tuples[i-1], got.Tuples[i]
		if a[pos].AsInt() > b[pos].AsInt() ||
			(a[pos].AsInt() == b[pos].AsInt() && a[t1].AsInt() > b[t1].AsInt()) {
			t.Fatalf("best plan violates requested order at row %d:\n%s", i, res.Best)
		}
	}
}

// TestNarrowingRulesStayCorrect targets the projection-narrowing rules
// (G4-narrow + T5r + E5): an aggregation over a wide scan must remain
// correct across every enumerated candidate, including the plans where
// the projection was pushed below the DBMS sort.
func TestNarrowingRulesStayCorrect(t *testing.T) {
	for seed := int64(10); seed <= 14; seed++ {
		_, ex, opt := propSystem(t, seed, 50)
		opt.MaxPlans = 96
		// No user projection: the narrowing rule must introduce it.
		initial := algebra.TM(algebra.Sort(
			algebra.TAggr(algebra.Scan("POSITION", ""), []string{"PosID"},
				algebra.Agg{Fn: "COUNT", Col: "PosID"}),
			"PosID", "T1"))
		res, err := opt.Optimize(initial)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := ex.Run(initial.Clone())
		if err != nil {
			t.Fatal(err)
		}
		refN := asMultisetKeyable(ref)
		narrowed := false
		for ci, cand := range res.Candidates {
			cand.Plan.Walk(func(n *algebra.Node) {
				if n.Op == algebra.OpProject && n.Loc() == algebra.LocDBMS {
					narrowed = true
				}
			})
			got, err := ex.Run(cand.Plan)
			if err != nil {
				t.Fatalf("seed %d candidate %d: %v\n%s", seed, ci, err, cand.Plan)
			}
			if !rel.EqualAsMultisets(refN, asMultisetKeyable(got)) {
				t.Fatalf("seed %d candidate %d wrong (%d vs %d rows)\n%s",
					seed, ci, got.Cardinality(), refN.Cardinality(), cand.Plan)
			}
		}
		if !narrowed {
			t.Errorf("seed %d: no candidate pushed a projection into the DBMS", seed)
		}
	}
}
