// TCP chaos sweep: the chaos contract of chaos_test.go, but over a
// real socket with a fault-injecting TCP proxy between client and
// server. The proxy maps the same schedule grammar onto connection-
// level damage — drop severs the pipe, stall delays frames, partial
// truncates a frame mid-write — so the transport's redial + resume +
// replay machinery (not just the in-process injector) is what absorbs
// the faults. Every query must return a result list-equal to the
// clean-TCP reference or fail with a typed error, and no schedule may
// leak cursors, temp tables, sessions, connections, or goroutines.
package bench

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"tango/internal/client"
	"tango/internal/rel"
	"tango/internal/server"
	"tango/internal/tango"
	"tango/internal/tsql"
	"tango/internal/wire"
)

// tcpTypedFailure extends typedFailure with the transport's failure
// vocabulary: lost connections, admission sheds, and server shutdown.
func tcpTypedFailure(err error) bool {
	var cl *client.ErrConnLost
	var ov *server.ErrOverloaded
	return typedFailure(err) || errors.As(err, &cl) || errors.As(err, &ov) ||
		errors.Is(err, server.ErrShutdown)
}

// tcpChaosSchedules is the connection-damage sweep: scripted severs,
// stalls, and truncations on each wire op, plus a persistent-sever
// rule that exhausts the retry budget.
func tcpChaosSchedules(short bool) []string {
	ops := []string{"query", "fetch", "load"}
	kinds := []string{"drop", "partial", "stall"}
	if short {
		ops = []string{"fetch", "load"}
		kinds = []string{"drop", "partial"}
	}
	var out []string
	seed := 100
	for _, op := range ops {
		for _, kind := range kinds {
			seed++
			out = append(out, fmt.Sprintf("seed=%d;stall=1ms;%s@2=%s", seed, op, kind))
		}
	}
	// Persistent sever: every fetch kills the connection; the budget
	// exhausts and the failure must surface typed.
	out = append(out, "seed=199;fetch~drop=1")
	return out
}

// TestTCPChaosSweep runs every workload query over TCP under the
// connection-damage sweep.
func TestTCPChaosSweep(t *testing.T) {
	sys, err := NewSystem(Config{
		PositionRows: 300, EmployeeRows: 120, Histograms: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := server.ListenAndServe(sys.Srv, "127.0.0.1:0", server.TCPConfig{
		ResumeGrace: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	baseSessions := sys.Srv.LiveSessions() // the harness's own session

	// In-process references first, then verify clean TCP matches them
	// exactly — the "matrices pass unchanged over TCP" acceptance leg.
	refs := make([]*rel.Relation, len(SeedQueries))
	for i, q := range SeedQueries {
		plan, err := tsql.Parse(q, sys.MW.Cat)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		out, _, err := sys.MW.Run(plan)
		if err != nil {
			t.Fatalf("in-process %q: %v", q, err)
		}
		refs[i] = out
	}
	mwOpts := tango.Options{HistogramBuckets: 10, CheckPlans: true, Retry: chaosPolicy()}
	runTCP := func(t *testing.T, addr string) {
		t.Helper()
		tr := client.DialTransport(addr)
		conn, err := tr.Conn()
		if err != nil {
			_ = tr.Close()
			t.Fatalf("open TCP session: %v", err)
		}
		mw := tango.OpenConn(conn, mwOpts)
		defer func() {
			_ = mw.Conn.Close()
			_ = tr.Close()
		}()
		for i, q := range SeedQueries {
			plan, err := tsql.Parse(q, mw.Cat)
			if err != nil {
				t.Fatalf("parse %q: %v", q, err)
			}
			out, _, err := mw.Run(plan)
			switch {
			case err != nil:
				if !tcpTypedFailure(err) {
					t.Fatalf("q%d: untyped failure over TCP: %v", i, err)
				}
			case rel.EqualAsLists(out, refs[i]):
				// Redial + resume + replay absorbed the damage.
			case rel.EqualAsMultisets(out, refs[i]):
				// A plan fallback re-sited the query onto a candidate
				// without a pinned output order.
			default:
				t.Fatalf("q%d: wrong result over TCP (%d vs %d rows)",
					i, out.Cardinality(), refs[i].Cardinality())
			}
		}
	}

	t.Run("clean", func(t *testing.T) {
		defer chaosLeakCheck(t)()
		runTCP(t, ts.Addr())
		waitTCPQuiesced(t, sys, ts, baseSessions)
	})

	for _, src := range tcpChaosSchedules(testing.Short()) {
		src := src
		t.Run(src, func(t *testing.T) {
			defer chaosLeakCheck(t)()
			sched, err := wire.ParseSchedule(src)
			if err != nil {
				t.Fatalf("schedule %q: %v", src, err)
			}
			proxy, err := wire.NewProxy(ts.Addr(), sched.Injector())
			if err != nil {
				t.Fatal(err)
			}
			defer proxy.Close()
			runTCP(t, proxy.Addr())
			waitTCPQuiesced(t, sys, ts, baseSessions)
		})
	}
}

// waitTCPQuiesced polls until every TCP-born session is collected —
// severed connections park sessions for the resume grace, so teardown
// is eventually-quiescent, not immediate — then asserts zero leaked
// cursors and temp tables.
func waitTCPQuiesced(t *testing.T, sys *System, ts *server.TCPServer, baseSessions int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ts.LiveRemoteSessions() == 0 && sys.Srv.LiveSessions() == baseSessions {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sessions not collected: %d remote, %d live (want 0, %d)",
				ts.LiveRemoteSessions(), sys.Srv.LiveSessions(), baseSessions)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := sys.Srv.OpenCursors(); n != 0 {
		t.Fatalf("%d cursor(s) leaked", n)
	}
	if temps := sys.Srv.TempTables(); len(temps) != 0 {
		t.Fatalf("temp tables leaked: %v", temps)
	}
}
