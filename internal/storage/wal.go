// Physiological write-ahead log for the durable FileDisk.
//
// Every mutation of the store is described by one LSN-stamped record:
// file create/drop, page append, full page image, load begin/commit
// bracket, or a metadata key write. Records are buffered in memory
// (group commit) and only reach the log file — record by record, each
// framed with a CRC32C — when Sync is called; Sync returns once the
// file is fsynced, which is the store's durability barrier. Recovery
// reads the log sequentially, stops at the first frame whose length or
// checksum does not verify (a torn tail from a crash mid-write), and
// redoes every valid record onto the in-memory page state.
//
// Frame layout (little endian):
//
//	[length uint32][crc32c uint32][body]
//	body = [lsn uint64][type uint8][payload]
//
// length counts the body bytes; the CRC covers the body. Payloads:
//
//	create     file int32
//	drop       file int32
//	append     file int32, pageNo int32
//	image      file int32, pageNo int32, page [PageSize]byte
//	beginLoad  file int32, pagesBefore int32, nameLen uint16, name
//	commitLoad file int32
//	meta       keyLen uint16, key, valLen uint32, val
package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// castagnoli is the CRC32C polynomial table shared by WAL record
// frames and data-page frames.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walRecType enumerates WAL record types.
type walRecType uint8

const (
	recCreate walRecType = iota + 1
	recDrop
	recAppend
	recImage
	recBeginLoad
	recCommitLoad
	recMeta
)

func (t walRecType) String() string {
	switch t {
	case recCreate:
		return "create"
	case recDrop:
		return "drop"
	case recAppend:
		return "append"
	case recImage:
		return "image"
	case recBeginLoad:
		return "begin-load"
	case recCommitLoad:
		return "commit-load"
	case recMeta:
		return "meta"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// walRecord is one decoded log record. Unused fields are zero.
type walRecord struct {
	lsn         uint64
	typ         walRecType
	file        FileID
	pageNo      int32
	pagesBefore int32
	name        string // beginLoad: table being loaded (diagnostics)
	key, val    string // meta
	image       []byte // image: PageSize bytes
}

const (
	walFrameHeader = 8 // length + crc
	walBodyHeader  = 9 // lsn + type
	// maxWALBody bounds a frame's body so a corrupted length field
	// cannot make the reader allocate or skip absurd amounts.
	maxWALBody = walBodyHeader + 16 + PageSize + 1<<16
)

// encodeWALRecord appends the framed record to dst.
func encodeWALRecord(dst []byte, r *walRecord) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	dst = binary.LittleEndian.AppendUint64(dst, r.lsn)
	dst = append(dst, byte(r.typ))
	switch r.typ {
	case recCreate, recDrop, recCommitLoad:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.file))
	case recAppend:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.file))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.pageNo))
	case recImage:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.file))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.pageNo))
		dst = append(dst, r.image...)
	case recBeginLoad:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.file))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.pagesBefore))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.name)))
		dst = append(dst, r.name...)
	case recMeta:
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.key)))
		dst = append(dst, r.key...)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.val)))
		dst = append(dst, r.val...)
	default:
		panic(fmt.Sprintf("storage: encode of unknown WAL record %v", r.typ))
	}
	body := dst[start+walFrameHeader:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(body, castagnoli))
	return dst
}

// decodeWALBody parses one record body (without the frame header). It
// is the fuzz-tested entry point of the decoder.
func decodeWALBody(body []byte) (*walRecord, error) {
	if len(body) < walBodyHeader {
		return nil, fmt.Errorf("storage: wal body too short (%d bytes)", len(body))
	}
	r := &walRecord{
		lsn: binary.LittleEndian.Uint64(body),
		typ: walRecType(body[8]),
	}
	p := body[walBodyHeader:]
	need := func(n int) error {
		if len(p) < n {
			return fmt.Errorf("storage: wal %v record truncated (%d of %d payload bytes)", r.typ, len(p), n)
		}
		return nil
	}
	u32 := func() uint32 {
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return v
	}
	switch r.typ {
	case recCreate, recDrop, recCommitLoad:
		if err := need(4); err != nil {
			return nil, err
		}
		r.file = FileID(u32())
	case recAppend:
		if err := need(8); err != nil {
			return nil, err
		}
		r.file = FileID(u32())
		r.pageNo = int32(u32())
	case recImage:
		if err := need(8 + PageSize); err != nil {
			return nil, err
		}
		r.file = FileID(u32())
		r.pageNo = int32(u32())
		r.image = p[:PageSize]
		p = p[PageSize:]
	case recBeginLoad:
		if err := need(10); err != nil {
			return nil, err
		}
		r.file = FileID(u32())
		r.pagesBefore = int32(u32())
		n := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if err := need(n); err != nil {
			return nil, err
		}
		r.name = string(p[:n])
		p = p[n:]
	case recMeta:
		if err := need(2); err != nil {
			return nil, err
		}
		kn := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if err := need(kn + 4); err != nil {
			return nil, err
		}
		r.key = string(p[:kn])
		p = p[kn:]
		vn := int(u32())
		if err := need(vn); err != nil {
			return nil, err
		}
		r.val = string(p[:vn])
		p = p[vn:]
	default:
		return nil, fmt.Errorf("storage: unknown wal record type %d", body[8])
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("storage: wal %v record has %d trailing bytes", r.typ, len(p))
	}
	return r, nil
}

// readWALRecords decodes the longest valid prefix of a log file's
// bytes. validLen is the byte length of that prefix; torn reports
// whether bytes beyond it exist (a torn tail — the fsync worst case of
// a crash mid-record). Torn tails are expected after a crash and are
// truncated by recovery, never replayed.
func readWALRecords(data []byte) (recs []*walRecord, validLen int, torn bool) {
	off := 0
	for {
		if len(data)-off < walFrameHeader {
			return recs, off, off < len(data)
		}
		length := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length < walBodyHeader || length > maxWALBody || len(data)-off-walFrameHeader < length {
			return recs, off, true
		}
		body := data[off+walFrameHeader : off+walFrameHeader+length]
		if crc32.Checksum(body, castagnoli) != sum {
			return recs, off, true
		}
		r, err := decodeWALBody(body)
		if err != nil {
			return recs, off, true
		}
		recs = append(recs, r)
		off += walFrameHeader + length
	}
}

// wal is the log writer: an append-only file plus the group-commit
// buffer of encoded-but-not-yet-durable records. It is not
// goroutine-safe; FileDisk serializes access under its own lock.
type wal struct {
	path    string
	f       *os.File
	nextLSN uint64

	pending [][]byte // encoded frames awaiting Sync

	// durableBytes/durableRecords count what reached the file since
	// the writer (re)opened — i.e. since the last checkpoint swap.
	durableBytes   int64
	durableRecords int64
}

// openWAL opens (creating if needed) the log file for appending.
func openWAL(path string, nextLSN uint64) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	if nextLSN == 0 {
		nextLSN = 1
	}
	return &wal{path: path, f: f, nextLSN: nextLSN}, nil
}

// append stamps the record with the next LSN and buffers it. Nothing
// reaches the file until sync.
func (w *wal) append(r *walRecord) {
	r.lsn = w.nextLSN
	w.nextLSN++
	w.pending = append(w.pending, encodeWALRecord(nil, r))
}

// sync writes every pending record to the file and fsyncs — the
// durability barrier. Each physical record write consults the crash
// script: on CrashOmit the process image dies before the write, on
// CrashTorn/CrashPartial only the first half of the frame reaches the
// file. In both cases whatever was written is fsynced (the worst case
// a real crash can persist) and ErrCrashed is returned.
func (w *wal) sync(script *CrashScript) error {
	nBytes, nRecs, err := w.writeFrames(w.pending, script)
	w.pending = w.pending[nRecs:]
	w.durableBytes += nBytes
	w.durableRecords += nRecs
	return err
}

// takePending detaches and returns the group-commit buffer. The
// caller owns the returned frames and must account for them via
// writeFrames; FileDisk uses this to move the write+fsync out from
// under its bookkeeping lock so concurrent committers can keep
// appending while a batch is on its way to disk.
func (w *wal) takePending() [][]byte {
	frames := w.pending
	w.pending = nil
	return frames
}

// writeFrames writes previously detached frames to the file and
// fsyncs, consulting the crash script exactly like sync. It returns
// the byte/record counts that became durable so the caller can fold
// them back into durableBytes/durableRecords under its own lock. On a
// scripted crash the unwritten remainder is dropped — the simulated
// process image is dead and the frames were never durable.
func (w *wal) writeFrames(frames [][]byte, script *CrashScript) (nBytes, nRecs int64, err error) {
	for _, frame := range frames {
		switch script.Decide(TargetWAL) {
		case CrashNone:
			if _, werr := w.f.Write(frame); werr != nil {
				return nBytes, nRecs, fmt.Errorf("storage: wal write: %w", werr)
			}
			nBytes += int64(len(frame))
			nRecs++
		case CrashOmit:
			_ = w.f.Sync()
			return nBytes, nRecs, ErrCrashed
		default: // CrashTorn, CrashPartial
			if _, werr := w.f.Write(frame[:len(frame)/2]); werr != nil {
				return nBytes, nRecs, fmt.Errorf("storage: wal torn write: %w", werr)
			}
			_ = w.f.Sync()
			return nBytes, nRecs, ErrCrashed
		}
	}
	if ferr := w.f.Sync(); ferr != nil {
		return nBytes, nRecs, fmt.Errorf("storage: wal fsync: %w", ferr)
	}
	return nBytes, nRecs, nil
}

// close closes the log file; pending records are dropped (they were
// never durable).
func (w *wal) close() error {
	w.pending = nil
	return w.f.Close()
}
