// Package schemaprop seeds the schema-propagation violation: an
// operator constructor that hard-codes its output columns instead of
// deriving them from the input iterators' schemas.
package schemaprop

import "tango/internal/types"

// iter is an iterator-shaped operator over the real algebra's schema
// type, so the analyzer recognizes both halves of the invariant.
type iter struct{ schema types.Schema }

func (i *iter) Schema() types.Schema           { return i.schema }
func (*iter) Open() error                      { return nil }
func (*iter) Close() error                     { return nil }
func (*iter) Next() (types.Tuple, bool, error) { return nil, false, nil }

// NewBad freezes column names at construction time; the schema
// silently diverges as soon as an upstream operator changes.
func NewBad(in *iter) *iter {
	s := types.Schema{Cols: []types.Column{
		{Name: "PosID", Kind: types.KindInt}, // want `operator constructor NewBad hard-codes output column "PosID"`
	}}
	_ = in
	return &iter{schema: s}
}

// NewBadKeyed uses the keyed form; still a literal.
func NewBadKeyed(in *iter) *iter {
	col := types.Column{Name: "Dept", Kind: types.KindString} // want `operator constructor NewBadKeyed hard-codes output column "Dept"`
	return &iter{schema: types.NewSchema(col)}
}

// NewGood derives the output schema from its input, the invariant the
// analyzer protects.
func NewGood(in *iter) *iter {
	return &iter{schema: in.Schema()}
}

// NewConcat derives a join-style schema from both inputs.
func NewConcat(left, right *iter) *iter {
	cols := append([]types.Column{}, left.Schema().Cols...)
	cols = append(cols, right.Schema().Cols...)
	return &iter{schema: types.Schema{Cols: cols}}
}

// NewParam takes a caller-shaped schema, the sanctioned pattern for
// projections and aggregations.
func NewParam(in *iter, out types.Schema) *iter {
	_ = in
	return &iter{schema: out}
}

// buildSchema is not a constructor; literals here are fine.
func buildSchema() types.Schema {
	return types.NewSchema(types.Column{Name: "T1", Kind: types.KindDate})
}

// NewSuppressed documents why its literal is safe; the harness
// verifies the directive keeps the finding quiet.
func NewSuppressed(in *iter) *iter {
	_ = in
	return &iter{schema: types.NewSchema(
		//lint:ignore schemaprop fixture: sentinel column, never read by rewrites
		types.Column{Name: "sentinel", Kind: types.KindInt},
	)}
}
