// Package errlost seeds dropped-error violations for the errlost
// analyzer: statement-position lifecycle calls, go statements, and
// multi-result assignments that blank the error while keeping values.
package errlost

import "tango/internal/wire"

type it struct{}

func (*it) Open() error            { return nil }
func (*it) Close() error           { return nil }
func (*it) Next() (int, bool, error) { return 0, false, nil }

// drops loses lifecycle errors in statement position.
func drops(x *it) {
	x.Open()  // want `error returned by it\.Open is silently dropped`
	x.Close() // want `error returned by it\.Close is silently dropped`
}

// goDrop loses the error through a go statement.
func goDrop(x *it) {
	go x.Close() // want `error returned by it\.Close is silently dropped`
}

// blanks keeps the values but blanks the error.
func blanks(x *it) int {
	v, ok, _ := x.Next() // want `error result of it\.Next assigned to _ while other results are kept`
	if !ok {
		return 0
	}
	return v
}

// wireDrop loses a serialization-boundary error.
func wireDrop(p []byte) {
	wire.DecodeBatch(p) // want `error returned by wire\.DecodeBatch is silently dropped`
}

// wireBlank keeps the batch but blanks the decode error.
func wireBlank(p []byte) int {
	rows, _ := wire.DecodeBatch(p) // want `error result of wire\.DecodeBatch assigned to _`
	return len(rows)
}

// allowed shows the two sanctioned idioms plus handled errors; none of
// these may be flagged.
func allowed(x *it) error {
	defer x.Close() // cleanup path: no handler to reach
	_ = x.Close()   // explicit visible discard
	_, _, _ = x.Next()
	if err := x.Open(); err != nil {
		return err
	}
	_, ok, err := x.Next()
	_ = ok
	return err
}

// suppressedDrop drops an error on purpose with a reasoned directive;
// the harness verifies no diagnostic surfaces here.
func suppressedDrop(x *it) {
	x.Close() //lint:ignore errlost fixture: close error is irrelevant to this test
}
