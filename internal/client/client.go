// Package client is the middleware's connection to the DBMS server —
// the JDBC analogue. Query results arrive as serialized batches and
// are exposed through the shared iterator interface; per-query
// feedback (rows, bytes, wall time) feeds the middleware's adaptive
// cost calibration.
//
// The connection is also the resilience boundary (see retry.go): with
// a RetryPolicy configured, idempotent operations — cursor OPEN,
// sequence-numbered FETCH, deduplicated bulk LOAD, the temp-table
// create/drop protocol, and catalog reads — survive transient wire
// faults via capped, jittered exponential backoff under per-call
// deadlines and context cancellation.
package client

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tango/internal/meta"
	"tango/internal/rel"
	"tango/internal/server"
	"tango/internal/telemetry"
	"tango/internal/types"
	"tango/internal/wire"
)

// Conn is a middleware-side connection.
type Conn struct {
	// be is the session backend every operation goes through: the
	// in-process façade (Connect) or a TCP transport session (Dial).
	be Backend
	// srv is non-nil only on the in-process path; fault-injection
	// tests reach through it to the server.
	srv *server.Server
	// Prefetch is the rows-per-fetch setting (the paper's Oracle
	// row-prefetch); 0 uses the wire default.
	Prefetch int
	// Metrics, when set, receives wire-level series: serialized bytes
	// by direction (tango_wire_bytes_total{dir="in"|"out"}), row
	// counts, statement counters, per-transfer timing histograms, and
	// the resilience counters (retries, op timeouts, give-ups).
	Metrics *telemetry.Registry
	// Retry configures the resilience layer; the zero value disables
	// retries and deadlines entirely.
	Retry RetryPolicy
	// Ctx, when set, bounds every operation on this connection;
	// cancellation aborts in-flight retry loops. nil means Background.
	Ctx context.Context

	jitter  *jitterSrc
	sessLbl string

	// trace is the active trace parent: wire ops create their attempt
	// spans under it and carry its trace ID across the wire. Swapped
	// by PushTrace around each query execution.
	trace atomic.Pointer[telemetry.Span]
}

// record feeds one completed transfer into the wire metrics. dir is
// "in" (DBMS → middleware) or "out" (middleware → DBMS).
func (c *Conn) record(dir, kind string, fb Feedback) {
	reg := c.Metrics
	if reg == nil {
		return
	}
	l := telemetry.Labels{"dir": dir}
	reg.Counter("tango_wire_bytes_total", l).Add(fb.Bytes)
	reg.Counter("tango_wire_rows_total", l).Add(fb.Rows)
	kl := telemetry.Labels{"kind": kind}
	reg.Counter("tango_client_statements_total", kl).Inc()
	reg.Histogram("tango_transfer_seconds", kl, telemetry.DurationBuckets).Observe(fb.Elapsed.Seconds())
	// Per-session attribution, keyed by the server session ID.
	sl := telemetry.Labels{"session": c.sessLbl, "dir": dir}
	reg.Counter("tango_session_rows_total", sl).Add(fb.Rows)
	reg.Counter("tango_session_bytes_total", sl).Add(fb.Bytes)
	reg.Counter("tango_session_batches_total", sl).Add(fb.Batches)
	reg.Counter("tango_session_statements_total", telemetry.Labels{"session": c.sessLbl, "kind": kind}).Inc()
}

// AddSessionStat accumulates one per-session resource counter
// (tango_session_<stat>_total{session}): buffer-pool hits, WAL bytes,
// spill bytes — whatever the executor attributes to the query it just
// ran on this session.
func (c *Conn) AddSessionStat(stat string, n int64) {
	if c.Metrics == nil || n == 0 {
		return
	}
	c.Metrics.Counter("tango_session_"+stat+"_total", telemetry.Labels{"session": c.sessLbl}).Add(n)
}

// SessionID returns the server-side session identifier.
func (c *Conn) SessionID() int64 { return c.be.SessionID() }

// PushTrace installs sp as the connection's active trace parent and
// returns a func restoring the previous one; callers defer it around a
// query execution. A nil sp disables tracing for the window.
func (c *Conn) PushTrace(sp *telemetry.Span) func() {
	prev := c.trace.Swap(sp)
	return func() { c.trace.Store(prev) }
}

// TraceSpan returns the active trace parent (nil when tracing is off).
func (c *Conn) TraceSpan() *telemetry.Span { return c.trace.Load() }

// TakeRemoteSpans drains the server-collected spans of one trace so
// the caller can stitch them into its span tree.
func (c *Conn) TakeRemoteSpans(traceID uint64) []*telemetry.Span {
	return c.be.TakeRemoteSpans(traceID)
}

// traceHeader encodes a span's context as a wire trace header (nil
// when tracing is off, which the server treats as "no trace").
func traceHeader(sp *telemetry.Span) []byte {
	if sp == nil {
		return nil
	}
	return wire.AppendHeader(nil, wire.Header{TraceID: sp.TraceID(), SpanID: sp.SpanID()})
}

// observeOp records one wire attempt's latency into the per-op
// log-scale histogram.
func (c *Conn) observeOp(op string, d time.Duration) {
	if c.Metrics != nil {
		c.Metrics.Histogram("tango_wire_op_seconds", telemetry.Labels{"op": op}, telemetry.LatencyBuckets).Observe(d.Seconds())
	}
}

// Connect opens an in-process connection to a server.
func Connect(srv *server.Server) *Conn {
	c := NewConn(&inproc{srv: srv, se: srv.NewSession()})
	c.srv = srv
	return c
}

// NewConn wraps an already-open backend session in a connection; the
// TCP transport's Conn constructor goes through here.
func NewConn(be Backend) *Conn {
	return &Conn{
		be:      be,
		sessLbl: fmt.Sprintf("%d", be.SessionID()),
		jitter:  newJitterSrc(time.Now().UnixNano()),
	}
}

// Close ends the connection's server session; any temp tables the
// session left behind (a query killed mid-transfer) are
// garbage-collected server-side.
func (c *Conn) Close() error {
	_, err := c.be.Close()
	return err
}

// resilient reports whether any resilience machinery is active.
func (c *Conn) resilient() bool {
	return c.Retry.MaxAttempts > 1 || c.Retry.OpTimeout > 0 || c.Ctx != nil
}

// Feedback summarizes one completed transfer for the adaptive cost
// model.
type Feedback struct {
	SQL     string
	Rows    int64
	Bytes   int64
	Batches int64
	Elapsed time.Duration
}

// Exec runs a non-SELECT statement on the DBMS. Arbitrary statements
// are not known to be idempotent, so Exec never retries; the
// idempotent wrappers (CreateTable, DropTable) do. The single attempt
// still gets a trace span and a latency observation.
func (c *Conn) Exec(sql string) (int64, error) {
	sp := c.TraceSpan().Child("exec")
	start := time.Now()
	n, err := c.be.ExecHdr(traceHeader(sp), sql)
	c.observeOp("exec", time.Since(start))
	if err != nil {
		sp.Set("error_class", errClass(err))
	}
	sp.Finish()
	if err == nil {
		c.AddSessionStat("commits", 1)
	}
	return n, err
}

// Query opens a SELECT on the DBMS and returns a pipelined iterator
// over the deserialized rows. OPEN is idempotent (a lost request
// opens nothing server-side), so it retries; a cursor opened by an
// attempt abandoned at its deadline is closed by the reaper.
func (c *Conn) Query(sql string) (*Rows, error) {
	start := time.Now()
	cur, err := doVal(c, "query",
		func(sp *telemetry.Span) (Cursor, error) {
			return c.be.QueryHdr(traceHeader(sp), sql, c.Prefetch)
		},
		func(abandoned Cursor) {
			if abandoned != nil {
				_ = abandoned.Close()
			}
		})
	if err != nil {
		return nil, err
	}
	// Each open cursor pins one MVCC snapshot server-side; attribute it
	// to the session so the harness leak checks can diff open vs closed.
	c.AddSessionStat("snapshots", 1)
	return &Rows{conn: c, cur: cur, schema: cur.Schema().Unqualified(), start: start, sql: sql}, nil
}

// QueryWindowed is Query with a pipelined fetch window: up to window
// FETCH round trips are outstanding at once, so the wire latency of
// consecutive batches overlaps instead of accumulating (the cursor
// still produces batches strictly in order). window <= 1 degenerates
// to the synchronous Query path.
func (c *Conn) QueryWindowed(sql string, window int) (*Rows, error) {
	r, err := c.Query(sql)
	if err != nil {
		return nil, err
	}
	if window > 1 {
		r.startPipeline(window)
	}
	return r, nil
}

// Rows iterates a query result fetched in batches over the wire.
type Rows struct {
	conn   *Conn
	cur    Cursor
	schema types.Schema
	sql    string

	batch []types.Tuple
	pos   int
	done  bool

	// nextSeq is the statement sequence number of the next batch to
	// request (1-based); retries of one logical fetch reuse it so the
	// server replays rather than re-produces.
	nextSeq int64

	win *fetchPipeline // non-nil in windowed mode

	start time.Time
	fb    Feedback
}

// fetchPipeline is the windowed-fetch machinery: a requester
// goroutine issues sequence-numbered FETCHes back to back against the
// serial cursor (retrying each one through the resilience layer), and
// each reply's wire delay is slept in its own delivery goroutine, so
// up to `window` round trips are in flight concurrently. Replies are
// reassembled in issue order through a queue of single-use futures.
type fetchPipeline struct {
	slots  chan chan inflight // futures, in fetch order
	free   chan []byte        // best-effort encode-buffer recycling
	stop   chan struct{}
	done   chan struct{}
	cancel context.CancelFunc
}

// inflight is one decoded reply.
type inflight struct {
	rows  []types.Tuple
	bytes int
	err   error
}

// startPipeline launches the requester with the given window.
func (r *Rows) startPipeline(window int) {
	p := &fetchPipeline{
		slots: make(chan chan inflight, window),
		free:  make(chan []byte, window+1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	// Tie the requester's retry loops to the pipeline lifetime: Close
	// cancels outstanding backoff sleeps and abandons stalled calls
	// instead of waiting out the whole retry budget.
	ctx, cancel := context.WithCancel(r.conn.baseCtx())
	p.cancel = cancel
	go func() {
		select {
		case <-p.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	r.win = p
	go r.requester(p, ctx)
}

// putFree returns an encode buffer to the pipeline's recycle channel,
// falling back to the global pool when it is full (buffers forfeited
// to deadline-abandoned attempts make the population fluctuate).
func putFree(p *fetchPipeline, buf []byte) {
	select {
	case p.free <- buf[:0]:
	default:
		wire.PutBuf(buf)
	}
}

// takeFree borrows a buffer from the recycle channel or the pool.
func takeFree(p *fetchPipeline) []byte {
	select {
	case buf := <-p.free:
		return buf
	default:
		return wire.GetBuf()
	}
}

// requester drives the pipelined cursor until end of stream, error,
// or stop. It reserves an in-order future, performs the (retried)
// fetch-and-decode, and hands the decoded batch to a delivery
// goroutine that sleeps the reply's wire delay — so consecutive round
// trips overlap while batches stay strictly ordered. The final future
// (nil rows) carries the error/EOS signal, after which the slot queue
// is closed.
func (r *Rows) requester(p *fetchPipeline, ctx context.Context) {
	defer close(p.done)
	var wg sync.WaitGroup
	defer wg.Wait()
	for seq := int64(1); ; seq++ {
		res := make(chan inflight, 1)
		select {
		case <-p.stop:
			return
		case p.slots <- res:
		}
		rows, nbytes, delay, err := r.fetchPipelined(ctx, seq, p)
		if err != nil || rows == nil {
			res <- inflight{err: err}
			close(p.slots)
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Propagation: the reply is on the wire while later fetches
			// are issued and earlier batches are consumed.
			if delay > 0 {
				time.Sleep(delay)
			}
			res <- inflight{rows: rows, bytes: nbytes}
		}()
	}
}

// pipeFetch is one decoded pipelined reply.
type pipeFetch struct {
	rows  []types.Tuple
	bytes int
	delay time.Duration
}

// fetchPipelined performs one logical pipelined fetch (retrying under
// the resilience policy) and returns the decoded batch, its wire
// size, and its propagation delay. rows == nil with nil error is end
// of stream. Each attempt owns its encode buffer, so an attempt
// abandoned at its deadline can never race a retry.
func (r *Rows) fetchPipelined(ctx context.Context, seq int64, p *fetchPipeline) ([]types.Tuple, int, time.Duration, error) {
	out, err := doValCtx(r.conn, ctx, "fetch", func(sp *telemetry.Span) (pipeFetch, error) {
		buf := takeFree(p)
		payload, delay, err := r.cur.FetchBatchPipelinedSeqHdr(traceHeader(sp), seq, buf)
		if err != nil || payload == nil {
			putFree(p, buf)
			return pipeFetch{}, err
		}
		n := len(payload)
		rows, derr := wire.DecodeBatch(payload)
		putFree(p, payload)
		if derr != nil {
			// Truncated reply: retry replays the same sequence number.
			return pipeFetch{}, &corruptReply{err: derr}
		}
		return pipeFetch{rows: rows, bytes: n, delay: delay}, nil
	}, nil)
	if err != nil {
		return nil, 0, 0, err
	}
	return out.rows, out.bytes, out.delay, nil
}

// fetchWindowed installs the next in-order pipelined batch.
func (r *Rows) fetchWindowed() error {
	res, ok := <-r.win.slots
	if !ok {
		r.done = true
		r.finish()
		return nil
	}
	b := <-res
	if b.err != nil {
		return b.err
	}
	if b.rows == nil {
		r.done = true
		r.finish()
		return nil
	}
	r.fb.Bytes += int64(b.bytes)
	r.fb.Batches++
	r.batch = b.rows
	r.pos = 0
	return nil
}

// Schema returns the result schema (unqualified column names, as a
// JDBC ResultSetMetaData would present them).
func (r *Rows) Schema() types.Schema { return r.schema }

// Open is a no-op; the cursor is opened by Query.
func (r *Rows) Open() error { return nil }

// Next returns the next row, fetching a new batch when the current
// one is exhausted.
func (r *Rows) Next() (types.Tuple, bool, error) {
	for {
		if r.pos < len(r.batch) {
			t := r.batch[r.pos]
			r.pos++
			r.fb.Rows++
			return t, true, nil
		}
		if r.done {
			return nil, false, nil
		}
		if err := r.fetch(); err != nil {
			return nil, false, err
		}
		if r.done {
			return nil, false, nil
		}
	}
}

// syncFetch is one decoded synchronous reply.
type syncFetch struct {
	rows  []types.Tuple
	bytes int
}

// fetch pulls and decodes the next wire batch. Sets done at end of
// stream. In windowed mode it takes the next in-order batch from the
// pipeline; otherwise it performs a sequence-numbered fetch through
// the resilience layer (the fast path without any policy reuses the
// row-header slice across fetches as before).
func (r *Rows) fetch() error {
	if r.win != nil {
		return r.fetchWindowed()
	}
	if !r.conn.resilient() {
		return r.fetchFast()
	}
	seq := r.nextSeq + 1
	out, err := doVal(r.conn, "fetch", func(sp *telemetry.Span) (syncFetch, error) {
		// Each attempt owns its buffer: a deadline-abandoned attempt
		// still writing can never race the retry or the consumer.
		buf := wire.GetBuf()
		defer wire.PutBuf(buf)
		payload, err := r.cur.FetchBatchSeqHdr(traceHeader(sp), seq, buf)
		if err != nil || payload == nil {
			return syncFetch{}, err
		}
		rows, derr := wire.DecodeBatch(payload)
		if derr != nil {
			// Truncated reply: retry replays the same sequence number.
			return syncFetch{}, &corruptReply{err: derr}
		}
		return syncFetch{rows: rows, bytes: len(payload)}, nil
	}, nil)
	if err != nil {
		return err
	}
	if out.rows == nil {
		r.done = true
		r.finish()
		return nil
	}
	r.nextSeq = seq
	r.fb.Bytes += int64(out.bytes)
	r.fb.Batches++
	r.batch = out.rows
	r.pos = 0
	return nil
}

// fetchFast is the resilience-free fetch path: the cursor's pooled
// buffer and the row-header slice are reused across fetches (the
// tuples themselves are fresh allocations, so consumers that retain
// them are unaffected).
func (r *Rows) fetchFast() error {
	start := time.Now()
	payload, err := r.cur.FetchBatchHdr(traceHeader(r.conn.TraceSpan()))
	r.conn.observeOp("fetch", time.Since(start))
	if err != nil {
		return err
	}
	if payload == nil {
		r.done = true
		r.finish()
		return nil
	}
	r.fb.Bytes += int64(len(payload))
	r.fb.Batches++
	batch, err := wire.DecodeBatchInto(r.batch[:0], payload)
	if err != nil {
		return err
	}
	r.batch = batch
	r.pos = 0
	return nil
}

// NextBatch exposes the wire fetch granularity to the middleware's
// batch protocol: one call hands over (up to) a whole decoded fetch
// batch, paying zero per-tuple interface calls.
func (r *Rows) NextBatch(dst []types.Tuple) (int, error) {
	for {
		if r.pos < len(r.batch) {
			n := copy(dst, r.batch[r.pos:])
			r.pos += n
			r.fb.Rows += int64(n)
			return n, nil
		}
		if r.done {
			return 0, nil
		}
		if err := r.fetch(); err != nil {
			return 0, err
		}
		if r.done {
			return 0, nil
		}
	}
}

// Close stops the fetch pipeline — canceling in-flight retry loops
// and waiting for the requester and every delivery goroutine to join,
// so the serial cursor is quiescent — recycles its wire buffers, and
// releases the server cursor. Idempotent.
func (r *Rows) Close() error {
	if p := r.win; p != nil {
		r.win = nil
		close(p.stop)
		<-p.done
		p.cancel()
		for {
			select {
			case buf := <-p.free:
				wire.PutBuf(buf)
				continue
			default:
			}
			break
		}
	}
	if !r.done {
		r.done = true
		r.finish()
	}
	return r.cur.Close()
}

func (r *Rows) finish() {
	r.fb.Elapsed = time.Since(r.start)
	r.fb.SQL = r.sql
	if r.conn != nil {
		r.conn.record("in", "query", r.fb)
	}
}

// Feedback returns transfer statistics; valid after the rows are
// drained or closed.
func (r *Rows) Feedback() Feedback { return r.fb }

// QueryAll runs a query and materializes the result, returning the
// transfer feedback.
func (c *Conn) QueryAll(sql string) (*rel.Relation, Feedback, error) {
	rows, err := c.Query(sql)
	if err != nil {
		return nil, Feedback{}, err
	}
	out, err := rel.Drain(rows)
	if err != nil {
		// Drain closes the iterator on every path; this re-close of an
		// idempotent cursor is belt-and-braces only.
		_ = rows.Close()
		return nil, Feedback{}, err
	}
	return out, rows.Feedback(), nil
}

// CreateTable issues a CREATE TABLE for the given schema. Qualified
// column names are mangled ("A.PosID" → "A$PosID") so self-join
// outputs stay unambiguous; SQL generation uses the same mangling.
//
// For transfer temp tables the statement is retried under the
// drop-and-recreate protocol: every attempt first issues DROP TABLE
// IF EXISTS, so a half-applied CREATE from a lost acknowledgment
// cannot wedge the retry. The session registers the table for
// server-side GC.
func (c *Conn) CreateTable(name string, schema types.Schema) error {
	cols := make([]string, schema.Len())
	for i, col := range schema.Cols {
		cols[i] = Mangle(col.Name) + " " + col.Kind.String()
	}
	stmt := "CREATE TABLE " + name + " (" + strings.Join(cols, ", ") + ")"
	isTemp := strings.HasPrefix(name, server.TempPrefix)
	var err error
	if isTemp {
		err = c.do("create", func(sp *telemetry.Span) error {
			if _, derr := c.be.ExecHdr(traceHeader(sp), "DROP TABLE IF EXISTS "+name); derr != nil {
				return derr
			}
			_, cerr := c.be.ExecHdr(traceHeader(sp), stmt)
			return cerr
		})
		if err == nil {
			c.be.RegisterTemp(name)
		}
	} else {
		_, err = c.Exec(stmt)
	}
	return err
}

// Mangle converts a (possibly qualified) algebra column name into a
// valid SQL identifier.
func Mangle(name string) string {
	return strings.ReplaceAll(name, ".", "$")
}

// loadCounter numbers bulk loads; each logical Load carries one
// sequence number across all its retry attempts so the server can
// deduplicate ambiguous deliveries.
var loadCounter atomic.Int64

// Load bulk-loads rows into an existing table via the direct-path
// loader, returning transfer feedback. The load carries a statement
// sequence number, so retries after a lost acknowledgment are
// answered from the server's load mark instead of double-appending.
func (c *Conn) Load(table string, rows []types.Tuple) (Feedback, error) {
	start := time.Now()
	var payload []byte
	pooled := !c.resilient()
	if pooled {
		payload = wire.EncodeBatch(wire.GetBuf(), rows)
		defer wire.PutBuf(payload)
	} else {
		// A deadline-abandoned attempt may still be reading the
		// payload after Load returns; keep it off the pool.
		payload = wire.EncodeBatch(nil, rows)
	}
	seq := loadCounter.Add(1)
	n, err := doVal(c, "load", func(sp *telemetry.Span) (int64, error) {
		return c.be.LoadSeqHdr(traceHeader(sp), table, payload, seq)
	}, nil)
	if err != nil {
		return Feedback{}, err
	}
	fb := Feedback{
		SQL:     "LOAD " + table,
		Rows:    n,
		Bytes:   int64(len(payload)),
		Batches: 1,
		Elapsed: time.Since(start),
	}
	c.AddSessionStat("commits", 1)
	c.record("out", "load", fb)
	return fb, nil
}

// InsertRows loads rows with per-row INSERTs (the slow conventional
// path, for the ablation experiment). Not idempotent; never retried.
func (c *Conn) InsertRows(table string, rows []types.Tuple) (Feedback, error) {
	start := time.Now()
	payload := wire.EncodeBatch(wire.GetBuf(), rows)
	defer wire.PutBuf(payload)
	sp := c.TraceSpan().Child("insert")
	n, err := c.be.InsertRowsHdr(traceHeader(sp), table, payload)
	c.observeOp("insert", time.Since(start))
	if err != nil {
		sp.Set("error_class", errClass(err))
	}
	sp.Finish()
	if err != nil {
		return Feedback{}, err
	}
	fb := Feedback{
		SQL:     "INSERT " + table,
		Rows:    n,
		Bytes:   int64(len(payload)),
		Batches: 1,
		Elapsed: time.Since(start),
	}
	c.record("out", "insert", fb)
	return fb, nil
}

// DropTable drops a table, ignoring missing tables (used to clean up
// transfer temporaries). DROP IF EXISTS is idempotent, so it retries.
func (c *Conn) DropTable(name string) error {
	err := c.do("drop", func(sp *telemetry.Span) error {
		_, derr := c.be.ExecHdr(traceHeader(sp), "DROP TABLE IF EXISTS "+name)
		return derr
	})
	if err == nil {
		c.be.ForgetTemp(name)
	}
	return err
}

// TableStats fetches catalog statistics for the Statistics Collector
// (read-only, hence retried).
func (c *Conn) TableStats(table string, histogramBuckets int) (*meta.TableStats, error) {
	return doVal(c, "stats", func(sp *telemetry.Span) (*meta.TableStats, error) {
		return c.be.TableStatsHdr(traceHeader(sp), table, histogramBuckets)
	}, nil)
}

// TableSchema fetches a table schema.
func (c *Conn) TableSchema(table string) (types.Schema, error) {
	return c.be.TableSchema(table)
}

// tempCounter numbers transfer temp tables; atomic so concurrent
// connections never hand out the same name.
var tempCounter atomic.Int64

// TempName generates a unique temporary table name; the caller must
// drop it when the query completes (as §3.2 of the paper requires).
func (c *Conn) TempName() string {
	return fmt.Sprintf("%s%d", server.TempPrefix, tempCounter.Add(1))
}
