package xxl

import (
	"fmt"

	"tango/internal/client"
	"tango/internal/rel"
	"tango/internal/types"
)

// TransferM is TRANSFER^M: it issues an SQL SELECT to the DBMS via the
// connection and streams the result tuples into the middleware. If the
// SQL references temporary tables produced by TRANSFER^D steps, those
// steps are listed as dependencies and run during Open, matching the
// algorithm-sequence (dashed-line) edges of the paper's Figure 5.
type TransferM struct {
	conn   *client.Conn
	sql    string
	schema types.Schema
	deps   []*TransferD

	// Window is the pipelined fetch window: when > 1, up to Window
	// FETCH round trips are kept in flight so their wire latency
	// overlaps (the parallel executor sets it to its fan-out).
	// <= 1 fetches synchronously.
	Window int

	rows *client.Rows
	fb   client.Feedback
}

// NewTransferM creates a transfer with the expected output schema (the
// algebra's schema for the subtree the SQL computes; column names are
// remapped positionally).
func NewTransferM(conn *client.Conn, sql string, schema types.Schema, deps ...*TransferD) *TransferM {
	return &TransferM{conn: conn, sql: sql, schema: schema, deps: deps}
}

// Schema returns the expected schema.
func (t *TransferM) Schema() types.Schema { return t.schema }

// SQL returns the statement this transfer issues.
func (t *TransferM) SQL() string { return t.sql }

// Open runs dependency loads, then opens the server-side cursor.
func (t *TransferM) Open() error {
	for _, d := range t.deps {
		if err := d.Run(); err != nil {
			return err
		}
	}
	rows, err := t.conn.QueryWindowed(t.sql, t.Window)
	if err != nil {
		return fmt.Errorf("xxl: transfer^M: %w", err)
	}
	if rows.Schema().Len() != t.schema.Len() {
		err := fmt.Errorf("xxl: transfer^M: got %d columns, expected %d (%s)",
			rows.Schema().Len(), t.schema.Len(), t.sql)
		if cerr := rows.Close(); cerr != nil {
			err = fmt.Errorf("%w (close: %v)", err, cerr)
		}
		return err
	}
	t.rows = rows
	return nil
}

// Next streams the next row from the DBMS.
func (t *TransferM) Next() (types.Tuple, bool, error) {
	if t.rows == nil {
		return nil, false, fmt.Errorf("xxl: transfer^M not opened")
	}
	row, ok, err := t.rows.Next()
	if err != nil || !ok {
		if t.rows != nil {
			t.fb = t.rows.Feedback()
		}
		return nil, false, err
	}
	return row, true, nil
}

// Close closes the cursor and drops any dependency temp tables.
func (t *TransferM) Close() error {
	var first error
	if t.rows != nil {
		t.fb = t.rows.Feedback()
		if err := t.rows.Close(); err != nil {
			first = err
		}
		t.rows = nil
	}
	for _, d := range t.deps {
		if err := d.Cleanup(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Feedback returns transfer statistics after the stream is drained.
func (t *TransferM) Feedback() client.Feedback { return t.fb }

// TransferD is TRANSFER^D: its Run (the paper's init()) drains a
// middleware-resident input, creates a uniquely named table in the
// DBMS, and bulk-loads the tuples through the direct-path loader. The
// table name is referenced by the SQL of the enclosing TRANSFER^M and
// must be dropped at the end of the query (§3.2).
type TransferD struct {
	conn  *client.Conn
	in    rel.Iterator
	table string

	ran bool
	fb  client.Feedback
	// UseInserts switches to the conventional per-row INSERT path (for
	// the bulk-load ablation experiment).
	UseInserts bool
}

// NewTransferD creates a transfer into the given temp table name.
func NewTransferD(conn *client.Conn, in rel.Iterator, table string) *TransferD {
	return &TransferD{conn: conn, in: in, table: table}
}

// Table returns the DBMS-side table name.
func (t *TransferD) Table() string { return t.table }

// Schema returns the input schema.
func (t *TransferD) Schema() types.Schema { return t.in.Schema() }

// Run executes the transfer once: drain input, create table, load.
// When the bulk load fails with a transient infrastructure error even
// after the connection's retry budget, Run makes one more full pass
// under the drop-and-recreate protocol — DROP IF EXISTS, CREATE,
// re-load — which is safe because the drop discards whatever subset
// of the first load landed (the per-row INSERT ablation path is not
// idempotent and is never re-run).
func (t *TransferD) Run() error {
	if t.ran {
		return nil
	}
	t.ran = true
	src, err := rel.Drain(t.in)
	if err != nil {
		return fmt.Errorf("xxl: transfer^D: drain: %w", err)
	}
	err = t.createAndLoad(src)
	if err != nil && !t.UseInserts && client.Degradable(err) {
		if derr := t.conn.DropTable(t.table); derr == nil {
			err = t.createAndLoad(src)
		}
	}
	return err
}

// createAndLoad performs one create-table + load pass.
func (t *TransferD) createAndLoad(src *rel.Relation) error {
	if err := t.conn.CreateTable(t.table, src.Schema); err != nil {
		return fmt.Errorf("xxl: transfer^D: %w", err)
	}
	var err error
	if t.UseInserts {
		t.fb, err = t.conn.InsertRows(t.table, src.Tuples)
	} else {
		t.fb, err = t.conn.Load(t.table, src.Tuples)
	}
	if err != nil {
		return fmt.Errorf("xxl: transfer^D: load: %w", err)
	}
	return nil
}

// Cleanup drops the temp table.
func (t *TransferD) Cleanup() error {
	if !t.ran {
		return nil
	}
	return t.conn.DropTable(t.table)
}

// Feedback returns load statistics after Run.
func (t *TransferD) Feedback() client.Feedback { return t.fb }
