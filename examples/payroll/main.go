// Payroll: demonstrates the two "adaptable" ingredients of the
// middleware on a pay-rate history workload —
//
//  1. temporal selectivity estimation (§3.3): the naive
//     independent-predicate estimate vs the StartBefore/EndBefore
//     estimate, with and without histograms, compared against the
//     true result cardinality of an Overlaps selection; and
//  2. cost-factor adaptation: the transfer factor p_tm converging
//     from its default toward the measured byte rate as query
//     feedback arrives.
package main

import (
	"fmt"
	"log"
	"time"

	"tango/internal/algebra"
	"tango/internal/bench"
	"tango/internal/sqlparser"
	"tango/internal/stats"
	"tango/internal/tsql"
)

func main() {
	sys, err := bench.NewSystem(bench.Config{
		PositionRows: 8400,
		EmployeeRows: 100,
		Histograms:   20,
	})
	if err != nil {
		log.Fatal(err)
	}
	mw := sys.MW

	// --- Part 1: selectivity of a temporal selection. ---
	a := bench.Day(1996, time.January, 1)
	b := bench.Day(1996, time.July, 1)
	predSrc := fmt.Sprintf("T1 < %d AND T2 > %d", b, a)
	sel, err := sqlparser.ParseSelect("SELECT 1 WHERE " + predSrc)
	if err != nil {
		log.Fatal(err)
	}

	// True cardinality via the DBMS.
	truth, _, err := mw.Conn.QueryAll(fmt.Sprintf(
		"SELECT COUNT(*) FROM POSITION WHERE T1 < %d AND T2 > %d", b, a))
	if err != nil {
		log.Fatal(err)
	}
	actual := float64(truth.Tuples[0][0].AsInt())

	baseStats, err := mw.Est.Estimate(positionScan())
	if err != nil {
		log.Fatal(err)
	}
	total := baseStats.Card

	naiveEst := &stats.Estimator{Mode: stats.ModeNaive}
	semEst := &stats.Estimator{Mode: stats.ModeSemantic}
	fmt.Println("temporal selection: pay periods overlapping H1 1996")
	fmt.Printf("  %-34s %10s\n", "method", "rows")
	fmt.Printf("  %-34s %10.0f\n", "actual", actual)
	fmt.Printf("  %-34s %10.0f\n", "naive estimate", naiveEst.Selectivity(sel.Where, baseStats)*total)
	fmt.Printf("  %-34s %10.0f\n", "StartBefore/EndBefore + histograms", semEst.Selectivity(sel.Where, baseStats)*total)

	// --- Part 2: cost-factor adaptation from feedback. ---
	fmt.Println("\nadaptive transfer factor p_tm (µs/byte):")
	fmt.Printf("  before any query: %.5f (default)\n", mw.Model.F.TM)
	query := `VALIDTIME SELECT PosID, AVG(PayRate) FROM POSITION GROUP BY PosID ORDER BY PosID`
	for i := 1; i <= 3; i++ {
		plan, err := tsql.Parse(query, mw.Cat)
		if err != nil {
			log.Fatal(err)
		}
		if _, _, err := mw.Run(plan); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  after query %d:    %.5f\n", i, mw.Model.F.TM)
	}
	fmt.Println("\nthe factor converges toward the observed byte rate of this")
	fmt.Println("machine's middleware-DBMS link, refining later plan choices.")
}

// positionScan builds a scan node for statistics derivation.
func positionScan() *algebra.Node { return algebra.Scan("POSITION", "") }
