package cost

import (
	"math"
	"testing"

	"tango/internal/algebra"
)

func taggrObs(micros float64) ObservedOp {
	return ObservedOp{
		Op: algebra.OpTAggr, Loc: algebra.LocMW,
		InBytes: 100000, OutBytes: 150000,
		InCard: 2000, OutCard: 3000,
		Micros: micros,
	}
}

// TestAdaptOpMovesTowardObservation: a measurement slower than the
// prediction must raise the factors; a faster one must lower them, and
// repeated feedback must converge monotonically.
func TestAdaptOpMovesTowardObservation(t *testing.T) {
	f := DefaultFactors()
	pred := f.SortM*100000*log2(2000) + f.TAggrM1*100000 + f.TAggrM2*150000

	slow := f
	if !slow.AdaptOp(taggrObs(pred*4), 0.5) {
		t.Fatal("AdaptOp reported no update")
	}
	if slow.TAggrM1 <= f.TAggrM1 || slow.TAggrM2 <= f.TAggrM2 {
		t.Errorf("slow run must raise TAggr factors: %+v vs %+v", slow, f)
	}

	fast := f
	fast.AdaptOp(taggrObs(pred/4), 0.5)
	if fast.TAggrM1 >= f.TAggrM1 || fast.TAggrM2 >= f.TAggrM2 {
		t.Errorf("fast run must lower TAggr factors")
	}

	// Other factors stay put.
	if slow.JoinM != f.JoinM || slow.TM != f.TM || slow.SortM != f.SortM {
		t.Errorf("unrelated factors changed: %+v", slow)
	}
}

func TestAdaptOpTJoin(t *testing.T) {
	f := DefaultFactors()
	obs := ObservedOp{
		Op: algebra.OpTJoin, Loc: algebra.LocMW,
		InBytes: 200000, OutBytes: 50000,
		InCard: 4000, OutCard: 800,
	}
	pred := f.JoinM * (obs.InBytes + obs.OutBytes)
	obs.Micros = pred * 2
	if !f.AdaptOp(obs, 0.5) {
		t.Fatal("no update for TJoin")
	}
	want := DefaultFactors().JoinM * (1 + 0.5*(2-1))
	if math.Abs(f.JoinM-want) > 1e-12 {
		t.Errorf("JoinM = %g, want %g", f.JoinM, want)
	}
}

// TestAdaptOpClampsRatio: a wildly off measurement must not move a
// factor by more than the 10× / 0.1× clamp allows in one step.
func TestAdaptOpClampsRatio(t *testing.T) {
	f := DefaultFactors()
	obs := ObservedOp{Op: algebra.OpSort, Loc: algebra.LocMW, InBytes: 1000, InCard: 100}
	obs.Micros = f.SortM * 1000 * log2(100) * 1e6 // absurdly slow
	f.AdaptOp(obs, 1)
	if max := DefaultFactors().SortM * 10; f.SortM > max+1e-12 {
		t.Errorf("SortM = %g exceeds clamp %g", f.SortM, max)
	}
}

// TestAdaptOpSkips: transfers, DBMS-resident operators, and degenerate
// measurements must not change anything.
func TestAdaptOpSkips(t *testing.T) {
	base := DefaultFactors()
	cases := []ObservedOp{
		{Op: algebra.OpTM, Loc: algebra.LocMW, InBytes: 1000, Micros: 500},   // transfer: Adapt's job
		{Op: algebra.OpTD, Loc: algebra.LocMW, InBytes: 1000, Micros: 500},   // transfer: Adapt's job
		{Op: algebra.OpSort, Loc: algebra.LocDBMS, InBytes: 1000, Micros: 5}, // DBMS op
		{Op: algebra.OpSort, Loc: algebra.LocMW, InBytes: 1000, Micros: 0},   // no measurement
		{Op: algebra.OpSelect, Loc: algebra.LocMW, InBytes: 0, Micros: 5},    // no volume
		{Op: algebra.OpScan, Loc: algebra.LocDBMS, InBytes: 1000, Micros: 5}, // not a MW algorithm
	}
	for i, obs := range cases {
		f := base
		if f.AdaptOp(obs, 0.5) {
			t.Errorf("case %d: AdaptOp reported an update", i)
		}
		if f != base {
			t.Errorf("case %d: factors changed: %+v", i, f)
		}
	}
}

// TestAdaptOpSelectUsesPredTerms: the selection update must weigh the
// prediction by f(P), matching the cost formula.
func TestAdaptOpSelectUsesPredTerms(t *testing.T) {
	oneTerm := DefaultFactors()
	threeTerms := DefaultFactors()
	obs := ObservedOp{Op: algebra.OpSelect, Loc: algebra.LocMW, InBytes: 10000}
	obs.Micros = DefaultFactors().SelM * 10000 * 3 // exactly 3-term predicted cost
	obs.PredTerms = 1
	oneTerm.AdaptOp(obs, 0.5) // looks 3× slow → raises factor
	obs.PredTerms = 3
	threeTerms.AdaptOp(obs, 0.5) // exact match → unchanged
	if oneTerm.SelM <= threeTerms.SelM {
		t.Errorf("PredTerms not honored: 1-term %g vs 3-term %g", oneTerm.SelM, threeTerms.SelM)
	}
	if math.Abs(threeTerms.SelM-DefaultFactors().SelM) > 1e-12 {
		t.Errorf("exact prediction must not move SelM: %g", threeTerms.SelM)
	}
}
