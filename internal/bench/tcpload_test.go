package bench

import (
	"testing"
	"time"

	"tango/internal/client"
	"tango/internal/server"
)

// loadRetry is a patient retry policy for load runs: the default
// 2-second budget is tuned for interactive chaos recovery, not for
// riding out a deliberately saturated admission queue.
func loadRetry() client.RetryPolicy {
	p := client.DefaultRetryPolicy()
	p.MaxAttempts = 8
	p.OpTimeout = 5 * time.Second
	p.Deadline = 60 * time.Second
	return p
}

// TestLoadHarness is the tier-1 smoke for the load generator: a small
// sweep against an embedded admission-controlled server must finish
// with only typed outcomes and leave the server clean after drain.
func TestLoadHarness(t *testing.T) {
	sys, err := NewSystem(Config{PositionRows: 400, EmployeeRows: 160, Histograms: 10})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := server.ListenAndServe(sys.Srv, "127.0.0.1:0", server.TCPConfig{
		Admission: server.AdmissionConfig{
			MaxInFlight: 16, MaxQueue: 64,
			QueueWait: 250 * time.Millisecond, RetryAfter: time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunLoad(LoadConfig{
		Addr: ts.Addr(), Sessions: 64, Ops: 2, Transports: 8, Retry: loadRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range rep.Untyped {
		t.Errorf("untyped failure: %s", msg)
	}
	if rep.Completed == 0 {
		t.Fatal("no statement completed")
	}
	if err := ts.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := sys.Srv.OpenCursors(); n != 0 {
		t.Fatalf("%d cursor(s) leaked", n)
	}
	if temps := sys.Srv.TempTables(); len(temps) != 0 {
		t.Fatalf("temp tables leaked: %v", temps)
	}
	if n := sys.Srv.LiveSessions(); n > 1 { // the harness's own session
		t.Fatalf("%d session(s) leaked", n-1)
	}
}

// BenchmarkTCPLoad is the archived load number (BENCH_10.json): 1024
// sessions x 2 statements over 16 shared connections against an
// admission-controlled TCP server. The custom metrics carry the
// client-observed latency quantiles and the admission counters.
func BenchmarkTCPLoad(b *testing.B) {
	sys, err := NewSystem(Config{PositionRows: 1000, EmployeeRows: 400, Histograms: 10})
	if err != nil {
		b.Fatal(err)
	}
	ts, err := server.ListenAndServe(sys.Srv, "127.0.0.1:0", server.TCPConfig{
		Admission: server.AdmissionConfig{
			MaxInFlight: 128, MaxQueue: 1024,
			QueueWait: time.Second, RetryAfter: time.Millisecond,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ts.Close()
	var rep *LoadReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = RunLoad(LoadConfig{
			Addr: ts.Addr(), Sessions: 1024, Ops: 2, Retry: loadRetry(),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, msg := range rep.Untyped {
			b.Fatalf("untyped failure: %s", msg)
		}
	}
	b.StopTimer()
	b.ReportMetric(rep.Throughput(), "stmt/s")
	b.ReportMetric(float64(rep.Completed), "completed")
	b.ReportMetric(rep.P50.Seconds()*1e3, "p50-ms")
	b.ReportMetric(rep.P99.Seconds()*1e3, "p99-ms")
	b.ReportMetric(rep.P999.Seconds()*1e3, "p999-ms")
	srv := ts.Server()
	b.ReportMetric(float64(srv.Admitted()), "admitted")
	b.ReportMetric(float64(srv.Queued()), "queued")
	b.ReportMetric(float64(srv.Shed()), "shed")
}
