package engine

import (
	"fmt"
	"strings"

	"tango/internal/rel"
	"tango/internal/sqlast"
	"tango/internal/telemetry"
	"tango/internal/types"
)

// instrument wraps a physical operator with telemetry when a metrics
// registry is attached (see DB.SetMetrics); inputs that are themselves
// instrumented become children in the stats tree. Without a registry
// the iterator is returned untouched, so the hot path pays nothing.
func (db *DB) instrument(op string, it rel.Iterator, inputs ...rel.Iterator) rel.Iterator {
	reg := db.metrics.Load()
	if reg == nil {
		return it
	}
	w := telemetry.Instrument(op, nil, it, inputs...)
	w.Sink = telemetry.SinkTo(reg, "dbms")
	return w
}

// asHeapScan sees through instrumentation wrappers to the concrete
// heap scan (used by index-scan and index-nested-loop rewrites).
func asHeapScan(it rel.Iterator) (*heapScan, bool) {
	if w, ok := it.(interface{ Unwrap() rel.Iterator }); ok {
		it = w.Unwrap()
	}
	hs, ok := it.(*heapScan)
	return hs, ok
}

// planSelect builds an iterator tree for a SELECT statement against
// one pinned catalog version, including any UNION chain and the
// trailing ORDER BY. Table resolution, index choice, and visibility
// bounds all come from v, so the plan reads one consistent snapshot.
func (db *DB) planSelect(v *catalogVersion, s *sqlast.SelectStmt) (rel.Iterator, error) {
	it, err := db.planCore(v, s)
	if err != nil {
		return nil, err
	}
	// UNION chain.
	if s.Union != nil {
		right, err := db.planSelect(v, &sqlast.SelectStmt{
			Hint: s.Union.Hint, Distinct: s.Union.Distinct, Items: s.Union.Items,
			From: s.Union.From, Where: s.Union.Where, GroupBy: s.Union.GroupBy,
			Having: s.Union.Having, Union: s.Union.Union, UnionAll: s.Union.UnionAll,
		})
		if err != nil {
			return nil, err
		}
		if it.Schema().Len() != right.Schema().Len() {
			return nil, fmt.Errorf("engine: UNION arity mismatch: %d vs %d",
				it.Schema().Len(), right.Schema().Len())
		}
		u := db.instrument("union", newUnionAll(it, right), it, right)
		if s.UnionAll {
			it = u
		} else {
			it = db.instrument("distinct", newDistinct(u), u)
		}
	}
	// ORDER BY applies to the whole result.
	if len(s.OrderBy) > 0 {
		sorted, err := applyOrderBy(it, s.OrderBy)
		if err != nil {
			return nil, err
		}
		it = db.instrument("sort", sorted, it)
	}
	if s.Limit > 0 {
		it = db.instrument("limit", &limitIter{in: it, n: s.Limit}, it)
	}
	return it, nil
}

// limitIter caps the result at n rows.
type limitIter struct {
	in   rel.Iterator
	n    int64
	seen int64
}

func (l *limitIter) Schema() types.Schema { return l.in.Schema() }
func (l *limitIter) Open() error          { l.seen = 0; return l.in.Open() }
func (l *limitIter) Close() error         { return l.in.Close() }

func (l *limitIter) Next() (types.Tuple, bool, error) {
	if l.seen >= l.n {
		return nil, false, nil
	}
	t, ok, err := l.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return t, true, nil
}

func applyOrderBy(it rel.Iterator, order []sqlast.OrderItem) (rel.Iterator, error) {
	keys := make([]evalFunc, len(order))
	descs := make([]bool, len(order))
	for i, o := range order {
		k, err := compileExpr(o.Expr, it.Schema())
		if err != nil {
			// The projection strips qualifiers, so "ORDER BY P.PosID"
			// over an output column PosID needs a dequalified retry.
			k2, err2 := compileExpr(stripQualifiers(o.Expr), it.Schema())
			if err2 != nil {
				return nil, err
			}
			k = k2
		}
		keys[i] = k
		descs[i] = o.Desc
	}
	return newSort(it, keys, descs), nil
}

// stripQualifiers removes table qualifiers from every column reference
// in the expression.
func stripQualifiers(e sqlast.Expr) sqlast.Expr {
	switch x := e.(type) {
	case sqlast.ColumnRef:
		return sqlast.ColumnRef{Name: x.Name}
	case sqlast.BinaryExpr:
		return sqlast.BinaryExpr{Op: x.Op, Left: stripQualifiers(x.Left), Right: stripQualifiers(x.Right)}
	case sqlast.UnaryExpr:
		return sqlast.UnaryExpr{Op: x.Op, Operand: stripQualifiers(x.Operand)}
	case sqlast.FuncCall:
		args := make([]sqlast.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = stripQualifiers(a)
		}
		return sqlast.FuncCall{Name: x.Name, Args: args, Distinct: x.Distinct}
	case sqlast.Between:
		return sqlast.Between{Expr: stripQualifiers(x.Expr), Lo: stripQualifiers(x.Lo), Hi: stripQualifiers(x.Hi), Not: x.Not}
	case sqlast.IsNull:
		return sqlast.IsNull{Expr: stripQualifiers(x.Expr), Not: x.Not}
	default:
		return e
	}
}

// planCore plans one SELECT block (no UNION, no ORDER BY).
func (db *DB) planCore(v *catalogVersion, s *sqlast.SelectStmt) (rel.Iterator, error) {
	// 1. FROM sources.
	sources, err := db.planSources(v, s)
	if err != nil {
		return nil, err
	}

	conjuncts := sqlast.Conjuncts(s.Where)
	used := make([]bool, len(conjuncts))

	// 2. Push single-source predicates down.
	for si := range sources {
		var pushed []sqlast.Expr
		for ci, c := range conjuncts {
			if used[ci] {
				continue
			}
			if refersOnly(c, sources[si].Schema()) && !resolvesElsewhere(c, sources, si) {
				pushed = append(pushed, c)
				used[ci] = true
			}
		}
		if len(pushed) > 0 {
			src, err := db.applySelection(sources[si], pushed)
			if err != nil {
				return nil, err
			}
			sources[si] = src
		}
	}

	// 3. Join left-deep in FROM order.
	it := sources[0]
	for si := 1; si < len(sources); si++ {
		joined, err := db.join(s.Hint, it, sources[si], conjuncts, used)
		if err != nil {
			return nil, err
		}
		it = joined
	}

	// 4. Remaining predicates.
	var rest []sqlast.Expr
	for ci, c := range conjuncts {
		if !used[ci] {
			rest = append(rest, c)
		}
	}
	if len(rest) > 0 {
		pred, err := compileExpr(sqlast.AndAll(rest), it.Schema())
		if err != nil {
			return nil, err
		}
		it = db.instrument("filter", newFilter(it, pred), it)
	}

	// 5. Aggregation.
	hasAgg := len(s.GroupBy) > 0 || s.Having != nil
	for _, item := range s.Items {
		if sqlast.HasAggregate(item.Expr) {
			hasAgg = true
		}
	}
	var itemExprs []evalFunc
	var outSchema types.Schema
	if hasAgg {
		grouped, gCtx, err := db.planGroup(it, s)
		if err != nil {
			return nil, err
		}
		it = db.instrument("group", grouped, it)
		// HAVING.
		if s.Having != nil {
			pred, err := gCtx.compile(s.Having)
			if err != nil {
				return nil, err
			}
			it = db.instrument("filter", newFilter(it, pred), it)
		}
		outSchema, itemExprs, err = gCtx.projectItems(s.Items)
		if err != nil {
			return nil, err
		}
	} else {
		outSchema, itemExprs, err = planProjection(s.Items, it.Schema())
		if err != nil {
			return nil, err
		}
	}
	it = db.instrument("project", newProject(it, outSchema, itemExprs), it)

	// 6. DISTINCT.
	if s.Distinct {
		it = db.instrument("distinct", newDistinct(it), it)
	}
	return it, nil
}

// planSources builds one iterator per FROM entry; schemas are
// qualified by alias (or table name).
func (db *DB) planSources(v *catalogVersion, s *sqlast.SelectStmt) ([]rel.Iterator, error) {
	if len(s.From) == 0 {
		// "SELECT expr" with no FROM: one empty row.
		return []rel.Iterator{&dualIter{}}, nil
	}
	sources := make([]rel.Iterator, len(s.From))
	for i, ref := range s.From {
		switch r := ref.(type) {
		case sqlast.TableName:
			t, err := v.table(r.Name)
			if err != nil {
				return nil, err
			}
			q := r.Alias
			if q == "" {
				q = r.Name
			}
			sources[i] = db.instrument("scan("+t.Name+")", newHeapScan(t, q))
		case sqlast.Derived:
			sub, err := db.planSelect(v, r.Select)
			if err != nil {
				return nil, err
			}
			rn := &renameIter{in: sub, schema: sub.Schema().Unqualified().Qualify(r.Alias)}
			sources[i] = db.instrument("derived("+r.Alias+")", rn, sub)
		default:
			return nil, fmt.Errorf("engine: unsupported FROM entry %T", ref)
		}
	}
	return sources, nil
}

// resolvesElsewhere reports whether e's columns could also all resolve
// against a different source (ambiguity guard for unqualified names).
func resolvesElsewhere(e sqlast.Expr, sources []rel.Iterator, self int) bool {
	for i, src := range sources {
		if i == self {
			continue
		}
		if refersOnly(e, src.Schema()) {
			return true
		}
	}
	return false
}

// applySelection applies predicates to a source, using an index range
// scan when the source is a plain table scan and a predicate compares
// an indexed column with a literal.
func (db *DB) applySelection(src rel.Iterator, preds []sqlast.Expr) (rel.Iterator, error) {
	if hs, ok := asHeapScan(src); ok {
		if it, rest, ok2 := tryIndexScan(hs, preds); ok2 {
			preds = rest
			src = db.instrument("indexscan("+hs.table.Name+")", it)
		}
	}
	if len(preds) == 0 {
		return src, nil
	}
	pred, err := compileExpr(sqlast.AndAll(preds), src.Schema())
	if err != nil {
		return nil, err
	}
	return db.instrument("filter", newFilter(src, pred), src), nil
}

// tryIndexScan converts one "col op literal" predicate on an indexed
// column into an index range scan, returning the remaining predicates.
func tryIndexScan(hs *heapScan, preds []sqlast.Expr) (rel.Iterator, []sqlast.Expr, bool) {
	for i, p := range preds {
		b, ok := p.(sqlast.BinaryExpr)
		if !ok {
			continue
		}
		cr, okL := b.Left.(sqlast.ColumnRef)
		lit, okR := b.Right.(sqlast.Literal)
		op := b.Op
		if !okL || !okR {
			// literal op col form
			if lit2, okL2 := b.Left.(sqlast.Literal); okL2 {
				if cr2, okR2 := b.Right.(sqlast.ColumnRef); okR2 {
					cr, lit = cr2, lit2
					op = flipOp(b.Op)
					okL, okR = true, true
				}
			}
		}
		if !okL || !okR {
			continue
		}
		if hs.table.Index(cr.Name) == nil {
			continue
		}
		var lo, hi types.Value
		hiIncl := true
		switch op {
		case sqlast.OpEq:
			lo, hi = lit.Value, lit.Value
		case sqlast.OpLt:
			hi, hiIncl = lit.Value, false
		case sqlast.OpLe:
			hi = lit.Value
		case sqlast.OpGt:
			// Exclusive lower bound is approximated by keeping the
			// predicate as a residual filter over an inclusive scan.
			lo = lit.Value
		case sqlast.OpGe:
			lo = lit.Value
		default:
			continue
		}
		rest := make([]sqlast.Expr, 0, len(preds)-1)
		rest = append(rest, preds[:i]...)
		rest = append(rest, preds[i+1:]...)
		if op == sqlast.OpGt {
			rest = append(rest, p) // residual for exclusivity
		}
		q := strings.SplitN(hs.schema.Cols[0].Name, ".", 2)[0]
		return newIndexScan(hs.table, q, cr.Name, lo, hi, hiIncl), rest, true
	}
	return nil, preds, false
}

func flipOp(op sqlast.BinaryOp) sqlast.BinaryOp {
	switch op {
	case sqlast.OpLt:
		return sqlast.OpGt
	case sqlast.OpLe:
		return sqlast.OpGe
	case sqlast.OpGt:
		return sqlast.OpLt
	case sqlast.OpGe:
		return sqlast.OpLe
	}
	return op
}

// join combines the current tree with the next source, consuming
// applicable conjuncts. The method follows the statement hint, else
// hash join for equi-joins and block nested loop otherwise.
func (db *DB) join(hint sqlast.JoinHint, left, right rel.Iterator, conjuncts []sqlast.Expr, used []bool) (rel.Iterator, error) {
	combined := left.Schema().Concat(right.Schema())
	// Applicable: unresolved so far, resolves on the combined schema.
	var applicable []int
	for ci, c := range conjuncts {
		if !used[ci] && refersOnly(c, combined) {
			applicable = append(applicable, ci)
		}
	}
	// Equi pairs: left expr from left schema, right expr from right.
	type equi struct{ l, r sqlast.Expr }
	var equis []equi
	var equiIdx []int
	var residualIdx []int
	for _, ci := range applicable {
		b, ok := conjuncts[ci].(sqlast.BinaryExpr)
		if ok && b.Op == sqlast.OpEq {
			switch {
			case refersOnly(b.Left, left.Schema()) && refersOnly(b.Right, right.Schema()):
				equis = append(equis, equi{b.Left, b.Right})
				equiIdx = append(equiIdx, ci)
				continue
			case refersOnly(b.Right, left.Schema()) && refersOnly(b.Left, right.Schema()):
				equis = append(equis, equi{b.Right, b.Left})
				equiIdx = append(equiIdx, ci)
				continue
			}
		}
		residualIdx = append(residualIdx, ci)
	}

	compileResidual := func(idx []int) (evalFunc, error) {
		if len(idx) == 0 {
			return nil, nil
		}
		var es []sqlast.Expr
		for _, ci := range idx {
			es = append(es, conjuncts[ci])
		}
		return compileExpr(sqlast.AndAll(es), combined)
	}

	markUsed := func(idx ...[]int) {
		for _, list := range idx {
			for _, ci := range list {
				used[ci] = true
			}
		}
	}

	switch hint {
	case sqlast.HintNestedLoop:
		// Index nested loop when the inner (right) side is a base-table
		// scan with an index on an equi-join column.
		if hs, ok := asHeapScan(right); ok {
			for ei, e := range equis {
				cr, okCR := e.r.(sqlast.ColumnRef)
				if !okCR || hs.table.Index(cr.Name) == nil {
					continue
				}
				outerKey, err := compileExpr(e.l, left.Schema())
				if err != nil {
					return nil, err
				}
				// Other equis plus residuals become the residual filter.
				var others []int
				for k, ci := range equiIdx {
					if k != ei {
						others = append(others, ci)
					}
				}
				others = append(others, residualIdx...)
				residual, err := compileResidual(others)
				if err != nil {
					return nil, err
				}
				markUsed(equiIdx, residualIdx)
				q := strings.SplitN(hs.schema.Cols[0].Name, ".", 2)[0]
				inl := newIndexNLJoin(left, hs.table, q, cr.Name, outerKey, residual)
				return db.instrument("indexnljoin", inl, left), nil
			}
		}
		residual, err := compileResidual(applicable)
		if err != nil {
			return nil, err
		}
		markUsed(applicable)
		return db.instrument("nljoin", newNLJoin(left, right, residual), left, right), nil

	case sqlast.HintMerge:
		if len(equis) > 0 {
			lk, err := compileExpr(equis[0].l, left.Schema())
			if err != nil {
				return nil, err
			}
			rk, err := compileExpr(equis[0].r, right.Schema())
			if err != nil {
				return nil, err
			}
			var others []int
			others = append(others, equiIdx[1:]...)
			others = append(others, residualIdx...)
			residual, err := compileResidual(others)
			if err != nil {
				return nil, err
			}
			markUsed(equiIdx, residualIdx)
			mj := newMergeJoin(left, right, lk, rk, residual)
			return db.instrument("mergejoin", mj, left, right), nil
		}
		// No equi predicate: fall back to nested loop.
		residual, err := compileResidual(applicable)
		if err != nil {
			return nil, err
		}
		markUsed(applicable)
		return db.instrument("nljoin", newNLJoin(left, right, residual), left, right), nil

	default: // HintHash or no hint
		if len(equis) > 0 {
			var lks, rks []evalFunc
			for _, e := range equis {
				lk, err := compileExpr(e.l, left.Schema())
				if err != nil {
					return nil, err
				}
				rk, err := compileExpr(e.r, right.Schema())
				if err != nil {
					return nil, err
				}
				lks = append(lks, lk)
				rks = append(rks, rk)
			}
			residual, err := compileResidual(residualIdx)
			if err != nil {
				return nil, err
			}
			markUsed(equiIdx, residualIdx)
			hj := newHashJoin(left, right, lks, rks, residual)
			return db.instrument("hashjoin", hj, left, right), nil
		}
		residual, err := compileResidual(applicable)
		if err != nil {
			return nil, err
		}
		markUsed(applicable)
		return db.instrument("nljoin", newNLJoin(left, right, residual), left, right), nil
	}
}

// planProjection compiles the select list without aggregation.
func planProjection(items []sqlast.SelectItem, in types.Schema) (types.Schema, []evalFunc, error) {
	var cols []types.Column
	var exprs []evalFunc
	for i, item := range items {
		switch x := item.Expr.(type) {
		case sqlast.Star:
			for ci := range in.Cols {
				idx := ci
				cols = append(cols, types.Column{
					Name: unqualify(in.Cols[ci].Name),
					Kind: in.Cols[ci].Kind,
				})
				exprs = append(exprs, func(t types.Tuple) (types.Value, error) { return t[idx], nil })
			}
		case sqlast.ColumnRef:
			if x.Name == "*" {
				// tab.* form.
				prefix := strings.ToUpper(x.Table) + "."
				found := false
				for ci := range in.Cols {
					if strings.HasPrefix(strings.ToUpper(in.Cols[ci].Name), prefix) {
						idx := ci
						cols = append(cols, types.Column{
							Name: unqualify(in.Cols[ci].Name),
							Kind: in.Cols[ci].Kind,
						})
						exprs = append(exprs, func(t types.Tuple) (types.Value, error) { return t[idx], nil })
						found = true
					}
				}
				if !found {
					return types.Schema{}, nil, fmt.Errorf("engine: no columns for %s.*", x.Table)
				}
				continue
			}
			f, err := compileExpr(x, in)
			if err != nil {
				return types.Schema{}, nil, err
			}
			cols = append(cols, types.Column{Name: outputName(item, i), Kind: inferKind(x, in)})
			exprs = append(exprs, f)
		default:
			f, err := compileExpr(item.Expr, in)
			if err != nil {
				return types.Schema{}, nil, err
			}
			cols = append(cols, types.Column{Name: outputName(item, i), Kind: inferKind(item.Expr, in)})
			exprs = append(exprs, f)
		}
	}
	return types.Schema{Cols: cols}, exprs, nil
}

func unqualify(name string) string {
	if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
		return name[dot+1:]
	}
	return name
}

// --- Grouping context ---

// groupCtx rewrites post-aggregation expressions against the
// groupIter's internal schema.
type groupCtx struct {
	groupKeys []sqlast.Expr
	aggs      []sqlast.FuncCall
	internal  types.Schema
	inSchema  types.Schema
}

// planGroup builds the groupIter for a SELECT with aggregation.
func (db *DB) planGroup(in rel.Iterator, s *sqlast.SelectStmt) (rel.Iterator, *groupCtx, error) {
	inSchema := in.Schema()
	// Collect aggregate calls appearing anywhere downstream.
	var aggCalls []sqlast.FuncCall
	seen := map[string]bool{}
	collect := func(e sqlast.Expr) {
		sqlast.Walk(e, func(x sqlast.Expr) bool {
			if f, ok := x.(sqlast.FuncCall); ok && sqlast.IsAggregateName(f.Name) {
				k := exprKey(f)
				if !seen[k] {
					seen[k] = true
					aggCalls = append(aggCalls, f)
				}
				return false
			}
			return true
		})
	}
	for _, item := range s.Items {
		collect(item.Expr)
	}
	if s.Having != nil {
		collect(s.Having)
	}
	for _, o := range s.OrderBy {
		collect(o.Expr)
	}

	keys := make([]evalFunc, len(s.GroupBy))
	var cols []types.Column
	for i, g := range s.GroupBy {
		k, err := compileExpr(g, inSchema)
		if err != nil {
			return nil, nil, err
		}
		keys[i] = k
		name := g.String()
		if cr, ok := g.(sqlast.ColumnRef); ok {
			name = cr.String()
		}
		cols = append(cols, types.Column{Name: name, Kind: inferKind(g, inSchema)})
	}
	var specs []*aggSpec
	for ai, f := range aggCalls {
		if err := validateAgg(f.Name, len(f.Args)); err != nil {
			return nil, nil, err
		}
		spec := &aggSpec{name: f.Name, distinct: f.Distinct}
		if _, isStar := f.Args[0].(sqlast.Star); !isStar {
			arg, err := compileExpr(f.Args[0], inSchema)
			if err != nil {
				return nil, nil, err
			}
			spec.arg = arg
		}
		specs = append(specs, spec)
		cols = append(cols, types.Column{
			Name: fmt.Sprintf("$agg%d", ai),
			Kind: inferKind(f, inSchema),
		})
	}
	internal := types.Schema{Cols: cols}
	g := newGroup(in, keys, specs, internal)
	return g, &groupCtx{groupKeys: s.GroupBy, aggs: aggCalls, internal: internal, inSchema: inSchema}, nil
}

// compile rewrites an expression against the internal grouped schema:
// group-key expressions and aggregate calls become column references.
func (c *groupCtx) compile(e sqlast.Expr) (evalFunc, error) {
	rewritten, err := c.rewrite(e)
	if err != nil {
		return nil, err
	}
	return compileExpr(rewritten, c.internal)
}

func (c *groupCtx) rewrite(e sqlast.Expr) (sqlast.Expr, error) {
	key := exprKey(e)
	for i, g := range c.groupKeys {
		if exprKey(g) == key {
			return sqlast.ColumnRef{Name: c.internal.Cols[i].Name}, nil
		}
	}
	for j, a := range c.aggs {
		if exprKey(a) == key {
			return sqlast.ColumnRef{Name: fmt.Sprintf("$agg%d", j)}, nil
		}
	}
	switch x := e.(type) {
	case sqlast.Literal:
		return x, nil
	case sqlast.ColumnRef:
		// A bare column must match a group key — including the common
		// case where the key is qualified ("B.PosID") and the select
		// item is not ("PosID"), or vice versa.
		for i, g := range c.groupKeys {
			if gr, ok := g.(sqlast.ColumnRef); ok && strings.EqualFold(gr.Name, x.Name) {
				return sqlast.ColumnRef{Name: c.internal.Cols[i].Name}, nil
			}
		}
		return nil, fmt.Errorf("engine: column %s must appear in GROUP BY or an aggregate", x)
	case sqlast.BinaryExpr:
		l, err := c.rewrite(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.rewrite(x.Right)
		if err != nil {
			return nil, err
		}
		return sqlast.BinaryExpr{Op: x.Op, Left: l, Right: r}, nil
	case sqlast.UnaryExpr:
		o, err := c.rewrite(x.Operand)
		if err != nil {
			return nil, err
		}
		return sqlast.UnaryExpr{Op: x.Op, Operand: o}, nil
	case sqlast.FuncCall:
		args := make([]sqlast.Expr, len(x.Args))
		for i, a := range x.Args {
			ra, err := c.rewrite(a)
			if err != nil {
				return nil, err
			}
			args[i] = ra
		}
		return sqlast.FuncCall{Name: x.Name, Args: args, Distinct: x.Distinct}, nil
	case sqlast.Between:
		ex, err := c.rewrite(x.Expr)
		if err != nil {
			return nil, err
		}
		lo, err := c.rewrite(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := c.rewrite(x.Hi)
		if err != nil {
			return nil, err
		}
		return sqlast.Between{Expr: ex, Lo: lo, Hi: hi, Not: x.Not}, nil
	case sqlast.IsNull:
		ex, err := c.rewrite(x.Expr)
		if err != nil {
			return nil, err
		}
		return sqlast.IsNull{Expr: ex, Not: x.Not}, nil
	default:
		return nil, fmt.Errorf("engine: cannot rewrite %T after GROUP BY", e)
	}
}

// projectItems compiles the select list against the grouped schema.
func (c *groupCtx) projectItems(items []sqlast.SelectItem) (types.Schema, []evalFunc, error) {
	var cols []types.Column
	var exprs []evalFunc
	for i, item := range items {
		if _, ok := item.Expr.(sqlast.Star); ok {
			return types.Schema{}, nil, fmt.Errorf("engine: SELECT * with GROUP BY is not supported")
		}
		f, err := c.compile(item.Expr)
		if err != nil {
			return types.Schema{}, nil, err
		}
		rewritten, _ := c.rewrite(item.Expr)
		kind := inferKind(rewritten, c.internal)
		name := outputName(item, i)
		if item.Alias == "" {
			if cr, ok := item.Expr.(sqlast.ColumnRef); ok {
				name = cr.Name
			} else if fc, ok := item.Expr.(sqlast.FuncCall); ok {
				name = fc.Name
			}
		}
		cols = append(cols, types.Column{Name: name, Kind: kind})
		exprs = append(exprs, f)
	}
	return types.Schema{Cols: cols}, exprs, nil
}

// --- helper iterators ---

// dualIter yields exactly one empty tuple ("SELECT 1").
type dualIter struct{ done bool }

func (dualIter) Schema() types.Schema { return types.Schema{} }
func (d dualIter) Open() error        { return nil }
func (d dualIter) Close() error       { return nil }

func (d *dualIter) Next() (types.Tuple, bool, error) {
	if d.done {
		return nil, false, nil
	}
	d.done = true
	return types.Tuple{}, true, nil
}

// renameIter overrides the schema of its input (used to alias derived
// tables).
type renameIter struct {
	in     rel.Iterator
	schema types.Schema
}

func (r *renameIter) Schema() types.Schema { return r.schema }
func (r *renameIter) Open() error          { return r.in.Open() }
func (r *renameIter) Close() error         { return r.in.Close() }
func (r *renameIter) Next() (types.Tuple, bool, error) {
	return r.in.Next()
}
