package client

import (
	"context"
	"errors"
	"testing"
	"time"

	"tango/internal/wire"
)

// windowRetry is a fast policy for the windowed fault tests.
func windowRetry() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   50 * time.Microsecond,
		MaxDelay:    time.Millisecond,
		Multiplier:  2,
		JitterFrac:  0.2,
		OpTimeout:   250 * time.Millisecond,
		Deadline:    2 * time.Second,
	}
}

// TestQueryWindowedDiesMidWindow is the regression test for the
// delivery-future goroutine leak: when the wire dies partway through
// a pipelined fetch window, the requester's in-flight retry loops,
// the delivery goroutines, and the futures parked in the slot queue
// must all unwind — Close returns promptly and the goroutine count
// returns to baseline. Before the pipeline held its buffers through a
// blocking free-list and had no cancellation path, a consumer that
// stopped draining after the error left delivery futures (and their
// buffers) parked forever.
func TestQueryWindowedDiesMidWindow(t *testing.T) {
	defer leakCheck(t)()
	c := windowConn(t, 4000, wire.Latency{RoundTrip: 200 * time.Microsecond})
	c.Retry = windowRetry()

	rows, err := c.QueryWindowed("SELECT PosID, EmpName, T1, T2 FROM POSITION", 8)
	if err != nil {
		t.Fatal(err)
	}
	// Drain a little so the window is primed with in-flight futures.
	for i := 0; i < 10; i++ {
		if _, ok, err := rows.Next(); err != nil || !ok {
			t.Fatalf("warm-up row %d: ok=%v err=%v", i, ok, err)
		}
	}
	// Kill the wire: every further FETCH drops, on every retry.
	sched, err := wire.ParseSchedule("seed=5;fetch~drop=1")
	if err != nil {
		t.Fatal(err)
	}
	c.srv.SetFaults(sched.Injector())
	var ferr error
	for {
		_, ok, err := rows.Next()
		if err != nil {
			ferr = err
			break
		}
		if !ok {
			t.Fatal("stream ended cleanly under a dead wire")
		}
	}
	var oe *OpError
	if !errors.As(ferr, &oe) || oe.Op != "fetch" {
		t.Fatalf("want a typed fetch OpError, got %v", ferr)
	}
	done := make(chan error, 1)
	go func() { done <- rows.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a dead pipelined window")
	}
	c.srv.SetFaults(nil)
	if n := c.srv.OpenCursors(); n != 0 {
		t.Fatalf("%d cursor(s) leaked", n)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestQueryWindowedCloseAbandonsRetries: closing the iterator while
// the requester is inside a retry/backoff loop must cancel the loop
// instead of waiting out the whole retry budget.
func TestQueryWindowedCloseAbandonsRetries(t *testing.T) {
	defer leakCheck(t)()
	c := windowConn(t, 4000, wire.Latency{})
	// A pathological budget: without cancellation, Close would wait
	// for minutes of backoff.
	c.Retry = RetryPolicy{
		MaxAttempts: 1000,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    time.Second,
		OpTimeout:   time.Second,
		Deadline:    5 * time.Minute,
	}
	sched, err := wire.ParseSchedule("seed=9;fetch~drop=1")
	if err != nil {
		t.Fatal(err)
	}
	c.srv.SetFaults(sched.Injector())
	rows, err := c.QueryWindowed("SELECT PosID FROM POSITION", 4)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the requester enter its retry loop
	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- rows.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close waited out the retry budget instead of canceling it")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v; cancellation should be prompt", elapsed)
	}
	c.srv.SetFaults(nil)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestQueryWindowedConnContextCancel: canceling the connection
// context mid-window surfaces a typed failure and unwinds the
// pipeline.
func TestQueryWindowedConnContextCancel(t *testing.T) {
	defer leakCheck(t)()
	c := windowConn(t, 4000, wire.Latency{RoundTrip: 100 * time.Microsecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Ctx = ctx
	c.Retry = windowRetry()

	rows, err := c.QueryWindowed("SELECT PosID, T1, T2 FROM POSITION", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok, err := rows.Next(); err != nil || !ok {
			t.Fatalf("warm-up row %d: ok=%v err=%v", i, ok, err)
		}
	}
	cancel()
	for {
		_, ok, err := rows.Next()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled in the chain, got %v", err)
			}
			break
		}
		if !ok {
			// The pipeline may have finished the stream before the
			// cancellation landed; that is a clean outcome too.
			break
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
