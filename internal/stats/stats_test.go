package stats

import (
	"math/rand"
	"testing"
	"time"

	"tango/internal/meta"
	"tango/internal/sqlast"
	"tango/internal/sqlparser"
	"tango/internal/types"
)

func day(y int, m time.Month, d int) float64 {
	return float64(types.DayOf(y, m, d))
}

// paperRelation reproduces the §3.3 worked example: 100,000 tuples,
// 7-day periods uniformly distributed over 1995-01-01 .. 2000-01-01.
func paperRelation() *RelStats {
	return &RelStats{
		Card:         100000,
		AvgTupleSize: 50,
		Cols: map[string]*meta.ColumnStats{
			"T1": {
				Name:     "T1",
				Min:      types.DateYMD(1995, time.January, 1),
				Max:      types.DateYMD(1999, time.December, 25),
				Distinct: 1819,
			},
			"T2": {
				Name:     "T2",
				Min:      types.DateYMD(1995, time.January, 8),
				Max:      types.DateYMD(2000, time.January, 1),
				Distinct: 1819,
			},
		},
	}
}

func overlapsPred(t *testing.T) sqlast.Expr {
	t.Helper()
	sel, err := sqlparser.ParseSelect(
		"SELECT 1 WHERE T1 < DATE '1997-02-08' AND T2 > DATE '1997-02-01'")
	if err != nil {
		t.Fatal(err)
	}
	return sel.Where
}

func TestPaperWorkedExample(t *testing.T) {
	in := paperRelation()
	pred := overlapsPred(t)

	naive := &Estimator{Mode: ModeNaive}
	nSel := naive.Selectivity(pred, in)
	// The paper: 42.3% × 58.5% ≈ 24.7% — "a factor of 40 too high".
	if nSel < 0.20 || nSel > 0.30 {
		t.Errorf("naive selectivity = %.3f, want ≈ 0.247", nSel)
	}

	semantic := &Estimator{Mode: ModeSemantic}
	sSel := semantic.Selectivity(pred, in)
	// The paper: ≈ 0.8% (actual is 0.4%–0.8%).
	if sSel < 0.003 || sSel > 0.012 {
		t.Errorf("semantic selectivity = %.4f, want ≈ 0.008", sSel)
	}
	if nSel/sSel < 20 {
		t.Errorf("semantic should be dramatically tighter: naive %.3f vs semantic %.4f", nSel, sSel)
	}
}

func TestSemanticMatchesActualOnSyntheticData(t *testing.T) {
	// Generate the actual relation from the worked example and compare
	// the estimate with the true count.
	rng := rand.New(rand.NewSource(99))
	lo := int64(day(1995, time.January, 1))
	hi := int64(day(1999, time.December, 25))
	a := int64(day(1997, time.February, 1))
	b := int64(day(1997, time.February, 8))
	actual := 0
	const n = 100000
	for i := 0; i < n; i++ {
		s := lo + rng.Int63n(hi-lo+1)
		e := s + 7
		if s < b && e > a {
			actual++
		}
	}
	est := &Estimator{Mode: ModeSemantic}
	sel := est.Selectivity(overlapsPred(t), paperRelation())
	predicted := sel * n
	if predicted < float64(actual)*0.5 || predicted > float64(actual)*2 {
		t.Errorf("semantic estimate %0.f vs actual %d (should be within 2x)", predicted, actual)
	}
	naive := &Estimator{Mode: ModeNaive}
	nPred := naive.Selectivity(overlapsPred(t), paperRelation()) * n
	if nPred < float64(actual)*10 {
		t.Errorf("naive estimate %.0f should be far above actual %d", nPred, actual)
	}
}

func TestTimeslicePattern(t *testing.T) {
	// T1 <= A AND T2 > A: contains point A.
	sel, err := sqlparser.ParseSelect(
		"SELECT 1 WHERE T1 <= DATE '1997-02-01' AND T2 > DATE '1997-02-01'")
	if err != nil {
		t.Fatal(err)
	}
	est := &Estimator{Mode: ModeSemantic}
	s := est.Selectivity(sel.Where, paperRelation())
	// About 383 of 100000 ≈ 0.4%.
	if s < 0.001 || s > 0.01 {
		t.Errorf("timeslice selectivity = %.4f, want ≈ 0.004", s)
	}
}

func TestSimpleSelectivities(t *testing.T) {
	in := &RelStats{
		Card: 1000,
		Cols: map[string]*meta.ColumnStats{
			"PAY": {Name: "Pay", Min: types.Int(0), Max: types.Int(100), Distinct: 100},
		},
	}
	est := &Estimator{Mode: ModeSemantic}
	cases := map[string][2]float64{
		"Pay = 50":              {0.009, 0.011},
		"Pay < 50":              {0.45, 0.55},
		"Pay > 90":              {0.05, 0.12},
		"Pay >= 90":             {0.05, 0.13},
		"Pay BETWEEN 20 AND 39": {0.15, 0.25},
		"Pay <> 50":             {0.98, 1.0},
		"Pay < 25 OR Pay > 75":  {0.4, 0.55},
	}
	for src, want := range cases {
		sel, err := sqlparser.ParseSelect("SELECT 1 WHERE " + src)
		if err != nil {
			t.Fatal(err)
		}
		got := est.Selectivity(sel.Where, in)
		if got < want[0] || got > want[1] {
			t.Errorf("%q: selectivity = %.3f, want in [%.3f, %.3f]", src, got, want[0], want[1])
		}
	}
}

func TestHistogramSharpensSkewedEstimate(t *testing.T) {
	// 90% of T1 values cluster late (like UIS POSITION: most periods
	// start after 1992). The uniform assumption misestimates a cutoff
	// selection; a histogram fixes it.
	rng := rand.New(rand.NewSource(7))
	var t1vals []types.Value
	for i := 0; i < 9000; i++ {
		t1vals = append(t1vals, types.Int(8000+rng.Int63n(3000))) // late
	}
	for i := 0; i < 1000; i++ {
		t1vals = append(t1vals, types.Int(rng.Int63n(8000))) // early
	}
	hist := meta.BuildHistogram(t1vals, 20)
	cutoff := 8000.0
	actual := 0.1 // 10% start before 8000

	csNoHist := &meta.ColumnStats{Name: "T1", Min: types.Int(0), Max: types.Int(11000), Distinct: 5000}
	uniformEst := fractionBelow(cutoff, csNoHist, 10000) / 10000
	csHist := &meta.ColumnStats{Name: "T1", Min: types.Int(0), Max: types.Int(11000), Distinct: 5000, Histogram: hist}
	histEst := fractionBelow(cutoff, csHist, 10000) / 10000

	if histErr, uniErr := abs(histEst-actual), abs(uniformEst-actual); histErr > uniErr/3 {
		t.Errorf("histogram estimate %.3f should beat uniform %.3f (actual %.3f)",
			histEst, uniformEst, actual)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestTAggrCardinalityBounds(t *testing.T) {
	in := &RelStats{
		Card: 1000,
		Cols: map[string]*meta.ColumnStats{
			"G":  {Name: "G", Distinct: 10},
			"T1": {Name: "T1", Distinct: 300},
			"T2": {Name: "T2", Distinct: 300},
		},
	}
	est := TAggrCardinality(in, []string{"G"})
	// Per-group 100 tuples → ≤199 intervals ×10 groups = 1990 max;
	// estimate is 60% of that = 1194.
	if est < 500 || est > 1990 {
		t.Errorf("TAggr estimate = %.0f, want in (500, 1990)", est)
	}
	// Bound: never above 2·card−1.
	if est > 2*in.Card-1 {
		t.Errorf("estimate exceeds hard bound")
	}
	// No grouping: bounded by distinct(T1)+distinct(T2)+1.
	est2 := TAggrCardinality(in, nil)
	if est2 > 601 {
		t.Errorf("ungrouped estimate %.0f exceeds point bound 601", est2)
	}
	// Degenerate.
	if TAggrCardinality(&RelStats{Card: 0}, nil) != 0 {
		t.Error("empty input should estimate 0")
	}
}

func TestEstimatorModesDifferOnlyOnTemporalPairs(t *testing.T) {
	in := paperRelation()
	sel, err := sqlparser.ParseSelect("SELECT 1 WHERE T1 < DATE '1997-06-01'")
	if err != nil {
		t.Fatal(err)
	}
	naive := (&Estimator{Mode: ModeNaive}).Selectivity(sel.Where, in)
	semantic := (&Estimator{Mode: ModeSemantic}).Selectivity(sel.Where, in)
	if abs(naive-semantic) > 1e-9 {
		t.Errorf("single temporal predicate should estimate identically: %v vs %v", naive, semantic)
	}
}
