package engine

import (
	"tango/internal/eval"
	"tango/internal/sqlast"
	"tango/internal/types"
)

// evalFunc evaluates an expression against one input tuple. Expression
// compilation lives in the shared eval package so the middleware's
// FILTER^M algorithm uses exactly the same semantics as the engine.
type evalFunc = eval.Func

func compileExpr(e sqlast.Expr, schema types.Schema) (evalFunc, error) {
	return eval.Compile(e, schema)
}

func inferKind(e sqlast.Expr, schema types.Schema) types.Kind {
	return eval.InferKind(e, schema)
}

func outputName(item sqlast.SelectItem, pos int) string {
	return eval.OutputName(item, pos)
}

func refersOnly(e sqlast.Expr, schema types.Schema) bool {
	return eval.RefersOnly(e, schema)
}

func exprKey(e sqlast.Expr) string { return eval.ExprKey(e) }
