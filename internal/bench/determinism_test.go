package bench

import (
	"fmt"
	"testing"

	"tango/internal/rel"
	"tango/internal/tango"
	"tango/internal/tsql"
)

// TestParallelExecutionDeterministic is the contract behind the
// Parallelism knob: for every query in the evaluation workload, the
// parallel operators (parallel SORT^M run generation, partitioned
// TAGGR^M and merge joins, double-buffered T^M prefetch) must produce
// a result tuple-for-tuple identical — including order — to the
// sequential algorithms. The same optimized plan is executed once with
// Parallelism=1 and once per parallel setting, all under the planck
// plan validator.
func TestParallelExecutionDeterministic(t *testing.T) {
	sys, err := NewSystem(Config{PositionRows: 1200, EmployeeRows: 400, Histograms: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range SeedQueries {
		q := q
		t.Run(fmt.Sprintf("q%d", i), func(t *testing.T) {
			plan, err := tsql.Parse(q, sys.MW.Cat)
			if err != nil {
				t.Fatalf("parse %q: %v", q, err)
			}
			res, err := sys.MW.Optimize(plan)
			if err != nil {
				t.Fatalf("optimize %q: %v", q, err)
			}
			exec := func(parallelism int) *rel.Relation {
				t.Helper()
				ex := &tango.Executor{
					Conn: sys.MW.Conn, Cat: sys.MW.Cat,
					CheckPlans: true, Parallelism: parallelism,
				}
				out, err := ex.Run(res.Best.Clone())
				if err != nil {
					t.Fatalf("parallelism=%d: %v", parallelism, err)
				}
				return out
			}
			seq := exec(1)
			for _, par := range []int{2, 4, 8} {
				got := exec(par)
				if !rel.EqualAsLists(got, seq) {
					t.Fatalf("parallelism=%d result differs from sequential (%d vs %d rows, or order changed)",
						par, got.Cardinality(), seq.Cardinality())
				}
			}
			if seq.Cardinality() == 0 && i < 4 {
				t.Fatalf("suspiciously empty result for workload query %d", i)
			}
		})
	}
}
