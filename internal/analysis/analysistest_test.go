package analysis

// Analyzer tests follow the golang.org/x/tools analysistest
// convention: each analyzer has a package under testdata/src/<name>
// seeded with violations, and every expected finding is marked at the
// source line with a comment of the form
//
//	// want `regexp`
//
// (multiple patterns per line are allowed). The harness loads the
// package with LoadDir, runs one analyzer, and requires a one-to-one
// match between reported diagnostics and want patterns. Lines carrying
// //lint:ignore directives double as suppression tests: their findings
// must NOT surface.

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// testAnalyzer runs one analyzer over testdata/src/<pkgname> and
// checks the findings against the package's want comments.
func testAnalyzer(t *testing.T, a *Analyzer, pkgname string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkgname)
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkg.Fset, pkg)
	for _, d := range diags {
		if !claimWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

// collectWants extracts want patterns from the package's comments.
func collectWants(t *testing.T, fset *token.FileSet, pkg *Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want pattern %q: %v", pos.Filename, pos.Line, rest, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %q: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: compiling want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return out
}

// claimWant marks the first unclaimed want matching the diagnostic.
func claimWant(wants []*want, d Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
