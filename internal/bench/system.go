// Package bench is the experiment harness behind cmd/experiments and
// the repository's benchmarks: it assembles a full system (DBMS +
// middleware) over the synthetic UIS data, defines the paper's four
// evaluation queries with the exact plan alternatives of §5.2, and
// runs the parameter sweeps that regenerate every figure of the
// evaluation section.
package bench

import (
	"fmt"
	"path/filepath"
	"time"

	"tango/internal/algebra"
	"tango/internal/client"
	"tango/internal/engine"
	"tango/internal/rel"
	"tango/internal/server"
	"tango/internal/storage"
	"tango/internal/tango"
	"tango/internal/telemetry"
	"tango/internal/uis"
	"tango/internal/wire"
)

// System is one DBMS-plus-middleware instance loaded with UIS data.
type System struct {
	DB  *engine.DB
	Srv *server.Server
	MW  *tango.Middleware
	// Metrics is the registry wired through every layer (nil when
	// Config.Metrics was nil).
	Metrics *telemetry.Registry
	// Parallelism is forwarded to every executor the harness builds
	// (see tango.Executor.Parallelism; 0 = GOMAXPROCS).
	Parallelism int

	PositionRows int
	EmployeeRows int

	// Flight is the system's flight recorder (nil unless Config.Trace).
	Flight *telemetry.Flight
	// Collector holds DBMS-side spans awaiting stitching (nil unless
	// Config.Trace).
	Collector *telemetry.Collector
	// PreCrashFlight holds the flight entries recovered from a previous
	// process's flight.jsonl when a durable directory was reopened with
	// tracing on (nil otherwise) — the queries that were in flight when
	// the engine died.
	PreCrashFlight []telemetry.FlightEntry

	// Recovery describes what storage recovery did when Config.DataDir
	// reopened an existing database (nil for in-memory systems).
	Recovery *storage.RecoveryStats
	// Reopened reports that DataDir already held the UIS tables: the
	// load was skipped and statistics were recomputed from the
	// recovered heaps.
	Reopened bool
	// GCCollected is the number of orphaned transfer temp tables the
	// startup session GC dropped (durable systems only).
	GCCollected int

	// opts are the middleware options the system was built with, so
	// NewSessionMW can open additional sessions configured identically.
	opts tango.Options
}

// Config sizes and tunes a System.
type Config struct {
	PositionRows int // ≤0: paper full size (83,857)
	EmployeeRows int // ≤0: paper full size (49,972)
	// Latency is the simulated network between middleware and DBMS;
	// zero means in-process speed.
	Latency wire.Latency
	// Histograms controls ANALYZE histogram buckets (0 disables — the
	// Query 2 with/without comparison).
	Histograms int
	// Naive switches the optimizer to the naive temporal selectivity.
	Naive bool
	// Calibrate runs cost-factor calibration (with the given sample
	// rows) after loading.
	Calibrate int
	// Metrics, when set, is wired through every layer: engine operator
	// series and storage gauges, server traffic counters, client wire
	// counters, and middleware operator/optimizer/Q-error series. The
	// middleware's IOProbe is pointed at the embedded engine so query
	// traces carry per-query I/O deltas.
	Metrics *telemetry.Registry
	// Parallelism bounds middleware operator fan-out (0 = GOMAXPROCS,
	// 1 = sequential). Results are identical at any setting.
	Parallelism int
	// Retry configures the client connection's wire resilience layer
	// (retries, per-call deadlines, backoff); zero disables it.
	Retry client.RetryPolicy
	// Faults, when non-nil, is attached to the server as the wire
	// fault injector (after the initial data load, which must run
	// clean); injected faults are exported to Metrics as
	// tango_wire_injected_faults_total{op,kind}.
	Faults *wire.FaultInjector
	// DataDir, when non-empty, opens a durable, crash-recoverable DBMS
	// in the directory instead of the in-memory default. A directory
	// that already holds the UIS tables is reopened: WAL recovery runs,
	// the startup session GC collects orphaned transfer temp tables,
	// the data load is skipped, and statistics are recomputed from the
	// recovered heaps.
	DataDir string
	// CheckpointBytes overrides the durable store's auto-checkpoint
	// WAL threshold (DataDir only); 0 keeps the storage default,
	// negative disables automatic checkpoints.
	CheckpointBytes int64
	// Crash, when non-nil, is armed on the durable store before the
	// load: scripted write points (wal@N, page@N — see SplitSchedule)
	// kill the store mid-workload. Requires DataDir.
	Crash *storage.CrashScript
	// Trace enables end-to-end distributed tracing: a span collector is
	// attached to the server (so DBMS-side op spans are stitched into
	// every query's span tree) and a flight recorder retains the last
	// FlightSize query traces. With DataDir set, the flight log is
	// persisted to <DataDir>/flight.jsonl and a reopen loads the
	// previous process's log into PreCrashFlight, linking it to the
	// recovery span.
	Trace bool
	// FlightSize caps the flight recorder ring (0 = default 64).
	FlightSize int
}

// NewSystem builds, loads, and (optionally) calibrates a system.
func NewSystem(cfg Config) (*System, error) {
	var (
		db     *engine.DB
		rstats *storage.RecoveryStats
	)
	if cfg.DataDir != "" {
		var err error
		db, rstats, err = engine.OpenAt(cfg.DataDir, engine.Config{CheckpointBytes: cfg.CheckpointBytes})
		if err != nil {
			return nil, err
		}
		if cfg.Crash != nil {
			db.FileDisk().SetCrashScript(cfg.Crash)
		}
	} else {
		if cfg.Crash != nil {
			return nil, fmt.Errorf("bench: Config.Crash requires Config.DataDir (crash points target the durable store)")
		}
		db = engine.Open(engine.Config{})
	}
	srv := server.New(db, cfg.Latency)
	opts := tango.Options{
		HistogramBuckets: cfg.Histograms,
		Naive:            cfg.Naive,
		Metrics:          cfg.Metrics,
		Parallelism:      cfg.Parallelism,
		Retry:            cfg.Retry,
		// Every harness-driven run (and therefore every test) validates
		// optimized plans and executor builds with planck.
		CheckPlans: true,
	}
	mw := tango.Open(srv, opts)
	if cfg.Metrics != nil {
		srv.RegisterMetrics(cfg.Metrics)
		mw.IOProbe = func() (storage.IOStats, storage.PoolStats) {
			return db.Disk().Snapshot(), db.Pool().Snapshot()
		}
	}
	var (
		flight    *telemetry.Flight
		collector *telemetry.Collector
		preCrash  []telemetry.FlightEntry
	)
	if cfg.Trace {
		collector = telemetry.NewCollector(0)
		srv.SetCollector(collector)
		flight = telemetry.NewFlight(cfg.FlightSize)
		mw.Flight = flight
		if cfg.DataDir != "" {
			// Read the previous process's flight log (if any) before
			// SetDir truncates the file for this process's log.
			var err error
			preCrash, err = telemetry.LoadFlight(filepath.Join(cfg.DataDir, telemetry.FlightFile))
			if err != nil {
				return nil, err
			}
			if err := flight.SetDir(cfg.DataDir); err != nil {
				return nil, err
			}
		}
	}
	if db.Durable() {
		fd := db.FileDisk()
		mw.WALProbe = func() (int64, int64) { return fd.WALStats() }
	}
	// Restart path (durable stores only): the session GC re-runs at
	// startup — sessions that died with the previous process cannot
	// drop their temp tables themselves — and the recovery outcome is
	// exported as counters and a startup-trace span.
	reopened := false
	gcCollected := 0
	if db.Durable() {
		var err error
		gcCollected, err = srv.StartupGC()
		if err != nil {
			return nil, err
		}
		server.RegisterRecovery(cfg.Metrics, rstats)
		rsp := server.RecoverySpan(rstats, gcCollected)
		// Link the pre-crash flight log into the recovery trace: what
		// the previous process was doing when it died is part of the
		// story of this startup.
		if len(preCrash) > 0 {
			fc := rsp.AddChild("flight", 0)
			fc.SetInt("entries", int64(len(preCrash)))
			last := preCrash[len(preCrash)-1]
			fc.Set("last_trace_id", last.TraceID)
			fc.Set("last_query", last.Query)
			if last.Error != "" {
				fc.Set("last_error", last.Error)
			}
		}
		mw.SetStartupTrace(rsp)
		if _, err := db.Table("POSITION"); err == nil {
			reopened = true
		}
	}
	hb := cfg.Histograms
	if reopened {
		// The data survived the restart; only the statistics (which are
		// not persisted) must be recomputed from the recovered heaps.
		for _, name := range db.TableNames() {
			if _, err := mw.Conn.Exec(fmt.Sprintf("ANALYZE %s HISTOGRAM %d", name, hb)); err != nil {
				return nil, err
			}
		}
	} else if _, err := uis.Load(mw.Conn, cfg.PositionRows, cfg.EmployeeRows, hb); err != nil {
		return nil, err
	}
	if cfg.Calibrate > 0 {
		if err := mw.Calibrate(cfg.Calibrate); err != nil {
			return nil, err
		}
	}
	posRows := cfg.PositionRows
	if posRows <= 0 {
		posRows = uis.PositionRows
	}
	empRows := cfg.EmployeeRows
	if empRows <= 0 {
		empRows = uis.EmployeeRows
	}
	if cfg.Faults != nil {
		// Attach after the (clean) load; export injections as metrics.
		if cfg.Metrics != nil {
			reg := cfg.Metrics
			cfg.Faults.OnFault = func(op wire.Op, kind wire.FaultKind) {
				reg.Counter("tango_wire_injected_faults_total",
					telemetry.Labels{"op": op.String(), "kind": kind.String()}).Inc()
			}
		}
		srv.SetFaults(cfg.Faults)
	}
	return &System{DB: db, Srv: srv, MW: mw, Metrics: cfg.Metrics,
		Parallelism:  cfg.Parallelism,
		PositionRows: posRows, EmployeeRows: empRows,
		Flight: flight, Collector: collector, PreCrashFlight: preCrash,
		Recovery: rstats, Reopened: reopened, GCCollected: gcCollected,
		opts: opts}, nil
}

// NewSessionMW opens an additional middleware instance with its own
// server session on the same DBMS, configured identically to the
// system's primary one. Concurrency tests use it to model independent
// clients sharing one server (and therefore one buffer pool, WAL, and
// catalog). The caller closes the returned middleware's connection.
func (s *System) NewSessionMW() *tango.Middleware {
	return tango.Open(s.Srv, s.opts)
}

// Close ends the middleware session (collecting its temp tables),
// closes the flight recorder's durable file, and closes the DBMS;
// durable stores flush and checkpoint.
func (s *System) Close() error {
	err := s.MW.Conn.Close()
	if ferr := s.Flight.Close(); err == nil {
		err = ferr
	}
	if cerr := s.DB.Close(); err == nil {
		err = cerr
	}
	return err
}

// QueryLatency summarizes the end-to-end query latency histogram
// (tango_query_seconds): count, mean, and log-scale quantiles. Zero
// when metrics are off or no query has completed.
func (s *System) QueryLatency() LatencySummary {
	if s.Metrics == nil {
		return LatencySummary{}
	}
	h := s.Metrics.Histogram("tango_query_seconds", nil, telemetry.LatencyBuckets)
	n := h.Count()
	if n == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		Count: n,
		Mean:  h.Sum() / float64(n),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}

// LatencySummary is a histogram digest: count, mean, and quantiles (in
// seconds).
type LatencySummary struct {
	Count                int64
	Mean, P50, P99, P999 float64
}

// String renders the summary for bench reports.
func (l LatencySummary) String() string {
	if l.Count == 0 {
		return "no queries"
	}
	return fmt.Sprintf("n=%d mean=%.3fms p50=%.3fms p99=%.3fms p999=%.3fms",
		l.Count, l.Mean*1e3, l.P50*1e3, l.P99*1e3, l.P999*1e3)
}

// NamedPlan is one of the plan alternatives of §5.2.
type NamedPlan struct {
	Name string
	Plan *algebra.Node
	// Hint pins the DBMS join method (Query 4's Oracle-hint analogue).
	Hint string
}

// Measurement is one timed plan execution.
type Measurement struct {
	Query   string
	Plan    string
	Param   string // sweep coordinate (size, year, ...)
	Rows    int
	Elapsed time.Duration
	Err     error
}

// Seconds returns the elapsed wall time in seconds.
func (m Measurement) Seconds() float64 { return m.Elapsed.Seconds() }

// RunPlan executes a plan and times it.
func (s *System) RunPlan(np NamedPlan) (*rel.Relation, time.Duration, error) {
	ex := &tango.Executor{Conn: s.MW.Conn, Cat: s.MW.Cat, Hint: np.Hint,
		CheckPlans: true, Parallelism: s.Parallelism}
	start := time.Now()
	out, err := ex.Run(np.Plan.Clone())
	return out, time.Since(start), err
}

// Measure runs a plan under a sweep coordinate.
func (s *System) Measure(query, param string, np NamedPlan) Measurement {
	out, elapsed, err := s.RunPlan(np)
	m := Measurement{Query: query, Plan: np.Name, Param: param, Elapsed: elapsed, Err: err}
	if out != nil {
		m.Rows = out.Cardinality()
	}
	return m
}

// PlanSignature summarizes where the interesting operators of a plan
// execute, e.g. "TAggr^M TJoin^D" — used to match the optimizer's
// choice against the named plan alternatives.
func PlanSignature(p *algebra.Node) string {
	sig := ""
	p.Walk(func(n *algebra.Node) {
		switch n.Op {
		case algebra.OpTAggr, algebra.OpTJoin, algebra.OpJoin:
			loc := "D"
			if n.Loc() == algebra.LocMW {
				loc = "M"
			}
			if sig != "" {
				sig += " "
			}
			sig += fmt.Sprintf("%v^%s", n.Op, loc)
		}
	})
	if sig == "" {
		sig = "(transfer only)"
	}
	return sig
}
