// Fuzz target for the temporal SQL front end. Lives in an external
// test package so it can seed its corpus from the evaluation workload
// in internal/bench (which imports sqlparser, which tsql wraps).
package tsql_test

import (
	"strings"
	"testing"

	"tango/internal/bench"
	"tango/internal/tsql"
	"tango/internal/types"
)

// uisCat mirrors the UIS schema the shell and benchmarks run against,
// so fuzz inputs exercise the same name-resolution paths.
type uisCat map[string]types.Schema

func (c uisCat) TableSchema(name string) (types.Schema, error) {
	if s, ok := c[strings.ToUpper(name)]; ok {
		return s, nil
	}
	return types.Schema{}, &errNoTable{name}
}

type errNoTable struct{ name string }

func (e *errNoTable) Error() string { return "no table " + e.name }

func fuzzCatalog() uisCat {
	return uisCat{
		"POSITION": types.NewSchema(
			types.Column{Name: "PosID", Kind: types.KindInt},
			types.Column{Name: "EmpID", Kind: types.KindInt},
			types.Column{Name: "EmpName", Kind: types.KindString},
			types.Column{Name: "Dept", Kind: types.KindString},
			types.Column{Name: "PayRate", Kind: types.KindFloat},
			types.Column{Name: "T1", Kind: types.KindDate},
			types.Column{Name: "T2", Kind: types.KindDate},
		),
		"EMPLOYEE": types.NewSchema(
			types.Column{Name: "EmpID", Kind: types.KindInt},
			types.Column{Name: "EmpName", Kind: types.KindString},
			types.Column{Name: "Addr", Kind: types.KindString},
			types.Column{Name: "T1", Kind: types.KindDate},
			types.Column{Name: "T2", Kind: types.KindDate},
		),
	}
}

// tsqlSeeds are dialect edge cases beyond the workload: modifier
// combinations, truncated modifiers, and near-miss keywords.
var tsqlSeeds = []string{
	"",
	"VALIDTIME",
	"VALIDTIME SELECT",
	"VALIDTIMESELECT PosID FROM POSITION",
	"VALIDTIME COALESCE",
	"VALIDTIME COALESCE SELECT PosID, T1, T2 FROM POSITION",
	"VALIDTIME AS OF",
	"VALIDTIME AS OF DATE",
	"VALIDTIME AS OF DATE '1996-06-01'",
	"VALIDTIME AS OF DATE '1996-06-01' SELECT PosID FROM POSITION",
	"VALIDTIME AS OF 'not a date' SELECT PosID FROM POSITION",
	"VALIDTIME SELECT PosID FROM POSITION WHERE T1 < DATE '1990-01-01'",
	"VALIDTIME SELECT A.PosID FROM POSITION A, POSITION B WHERE A.PosID = B.PosID",
	"SELECT PosID FROM POSITION",
}

// FuzzParse asserts three properties for arbitrary input: the
// translator never panics; success never yields a nil plan; and every
// plan it does emit passes the algebra's own structural validation
// (transfer-operator legality) — a malformed plan from the front end
// would otherwise surface only deep inside the optimizer.
func FuzzParse(f *testing.F) {
	for _, q := range bench.SeedQueries {
		f.Add(q)
	}
	for _, q := range tsqlSeeds {
		f.Add(q)
	}
	cat := fuzzCatalog()
	f.Fuzz(func(t *testing.T, src string) {
		plan, err := tsql.Parse(src, cat)
		if err != nil {
			return
		}
		if plan == nil {
			t.Fatalf("Parse(%q) returned nil plan and nil error", src)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("Parse(%q) produced an invalid plan: %v\n%s", src, err, plan)
		}
	})
}

// TestSeedQueriesTranslate pins the workload corpus against the UIS
// catalog: every temporal seed must still translate to a valid plan.
func TestSeedQueriesTranslate(t *testing.T) {
	cat := fuzzCatalog()
	for _, q := range bench.SeedQueries {
		if !strings.HasPrefix(strings.ToUpper(q), "VALIDTIME") {
			continue
		}
		plan, err := tsql.Parse(q, cat)
		if err != nil {
			t.Errorf("seed query no longer translates: %q: %v", q, err)
			continue
		}
		if err := plan.Validate(); err != nil {
			t.Errorf("seed query plan invalid: %q: %v", q, err)
		}
	}
}
